// Package pamakv is a slab-class key-value cache library with pluggable
// memory-allocation policies, built around a from-scratch implementation of
// PAMA — the Penalty Aware Memory Allocation scheme for key-value caches
// (Ou, Patton, Moore, Xu, Jiang; ICPP 2015).
//
// A PAMA cache simultaneously weighs the three factors that determine a KV
// cache's request service time — access locality, item size, and miss
// penalty — by pricing every slab-sized chunk of every LRU stack in
// penalty-seconds per window and reallocating slabs toward the classes
// where a slab saves users the most time. The library also ships the
// baseline policies the paper compares against (original Memcached's static
// allocation, PSA, Twemcache's random reassignment, Facebook's LRU-age
// balancer, and pre-PAMA), synthetic workload generators shaped after the
// Facebook Memcached traces, a trace format with a GET-miss→SET penalty
// estimator, a simulation harness that regenerates every figure in the
// paper, and a Memcached-text-protocol server.
//
// Quick start:
//
//	c, err := pamakv.New(pamakv.Config{CacheBytes: 64 << 20}, pamakv.NewPAMA(pamakv.DefaultPAMAConfig()))
//	if err != nil { ... }
//	c.Set("user:42", len(blob), 0.250 /* observed miss penalty, seconds */, 0, blob)
//	val, _, hit := c.Get("user:42", 0, 0, nil)
//
// See examples/ for runnable programs and DESIGN.md for the architecture.
package pamakv

import (
	"time"

	"pamakv/internal/backend"
	"pamakv/internal/cache"
	"pamakv/internal/cluster"
	"pamakv/internal/core"
	"pamakv/internal/gds"
	"pamakv/internal/geom"
	"pamakv/internal/kv"
	"pamakv/internal/overload"
	"pamakv/internal/penalty"
	"pamakv/internal/policy"
	"pamakv/internal/server"
	"pamakv/internal/shard"
	"pamakv/internal/sim"
	"pamakv/internal/singleflight"
	"pamakv/internal/trace"
	"pamakv/internal/workload"
)

// Core cache types.
type (
	// Cache is the slab-class cache engine. Construct with New.
	Cache = cache.Cache
	// Config parameterizes the engine (geometry, size, value storage,
	// window length, segment tracker).
	Config = cache.Config
	// Stats are the engine's monotonic counters.
	Stats = cache.Stats
	// Policy is a slab-allocation scheme plugged into the engine.
	Policy = cache.Policy
	// Geometry is the slab/class size layout.
	Geometry = kv.Geometry
	// TrackerKind selects exact or Bloom-filter segment tracking.
	TrackerKind = cache.TrackerKind
	// PAMAConfig parameterizes the PAMA policy.
	PAMAConfig = core.Config
	// PAMADecisions reports PAMA's reallocation decision counters.
	PAMADecisions = core.Decisions
	// PenaltyModel generates deterministic per-key miss penalties.
	PenaltyModel = penalty.Model
	// WorkloadConfig parameterizes a synthetic workload generator.
	WorkloadConfig = workload.Config
	// WorkloadGenerator produces a request stream.
	WorkloadGenerator = workload.Generator
	// Request is one trace record.
	Request = trace.Request
	// TraceStream produces requests until io.EOF.
	TraceStream = trace.Stream
	// SimSpec describes one simulation experiment.
	SimSpec = sim.Spec
	// SimPolicySpec names a policy inside a SimSpec.
	SimPolicySpec = sim.PolicySpec
	// SimBurstSpec injects the paper §IV-C cold flood into a SimSpec.
	SimBurstSpec = sim.BurstSpec
	// SimResult carries a run's series and counters.
	SimResult = sim.Result
)

// Tracker kinds.
const (
	// TrackerExact computes segment attribution exactly (order-statistics
	// ring).
	TrackerExact = cache.TrackerExact
	// TrackerBloom uses the paper's per-segment Bloom filters.
	TrackerBloom = cache.TrackerBloom
)

// Engine errors.
var (
	// ErrTooLarge reports an item exceeding the largest class slot.
	ErrTooLarge = cache.ErrTooLarge
	// ErrNoSpace reports that no slot could be produced for the class.
	ErrNoSpace = cache.ErrNoSpace
)

// New builds a cache engine bound to a policy.
func New(cfg Config, pol Policy) (*Cache, error) { return cache.New(cfg, pol) }

// DefaultGeometry mirrors Memcached: 1 MiB slabs, 64 B base class, doubling
// slots, 15 classes.
func DefaultGeometry() Geometry { return kv.DefaultGeometry() }

// DefaultPAMAConfig returns the paper's configuration: m=2 reference
// segments, penalty aware, five penalty subclasses.
func DefaultPAMAConfig() PAMAConfig { return core.DefaultConfig() }

// NewPAMA returns the PAMA policy.
func NewPAMA(cfg PAMAConfig) *core.PAMA { return core.New(cfg) }

// NewPrePAMA returns the paper's pre-PAMA reference scheme (PAMA machinery,
// penalty-blind values).
func NewPrePAMA() *core.PAMA { return core.New(core.PrePAMAConfig()) }

// NewStatic returns original Memcached's static allocation.
func NewStatic() *policy.Static { return policy.NewStatic() }

// NewPSA returns periodic slab allocation with the given miss period
// (0 = 1000).
func NewPSA(m uint64) *policy.PSA { return policy.NewPSA(m) }

// NewTwemcache returns Twitter's random-reassignment policy.
func NewTwemcache(seed uint64) *policy.Twemcache { return policy.NewTwemcache(seed) }

// NewFacebookAge returns Facebook's LRU-age balancing policy.
func NewFacebookAge() *policy.FacebookAge { return policy.NewFacebookAge() }

// NewCAMP returns the cost-adaptive multi-queue eviction policy (rounded
// cost/size ratio queues under a GreedyDual inflation clock).
func NewCAMP() *policy.CAMP { return policy.NewCAMP() }

// NewSizeAware returns the frequency-per-byte size-aware eviction baseline.
func NewSizeAware() *policy.SizeAware { return policy.NewSizeAware() }

// NewTableGeometry builds a geometry from an explicit strictly increasing
// slot-size table, e.g. one produced by the adaptive boundary learner.
func NewTableGeometry(slabSize int, slots []int) (Geometry, error) {
	return kv.NewTableGeometry(slabSize, slots)
}

// AdaptiveConfig tunes the online slab-geometry learner; assign one to
// Config.Adaptive to let the cache learn slot boundaries from observed
// sizes and re-slab live. The zero value selects the defaults.
type AdaptiveConfig = geom.Config

// MRCObjective selects what the MRC/LAMA allocators optimize.
type MRCObjective = policy.MRCObjective

// MRC/LAMA objectives.
const (
	// ObjectiveMissRatio targets hit ratio.
	ObjectiveMissRatio = policy.ObjectiveMissRatio
	// ObjectiveAvgTime weights classes by average miss time.
	ObjectiveAvgTime = policy.ObjectiveAvgTime
)

// NewMRC returns the endpoint hill-climbing miss-ratio-curve allocator.
func NewMRC(obj MRCObjective) *policy.MRC { return policy.NewMRC(obj) }

// NewLAMA returns the full miss-ratio-curve allocator (LAMA-style shadow
// stacks + waterfilling; related work §II).
func NewLAMA(obj MRCObjective) *policy.LAMA { return policy.NewLAMA(obj) }

// DefaultPenaltyModel returns the Fig.-1-shaped miss-penalty model.
func DefaultPenaltyModel() PenaltyModel { return penalty.Default() }

// UniformPenaltyModel returns a model where every miss costs p seconds.
func UniformPenaltyModel(p float64) PenaltyModel { return penalty.Uniform(p) }

// ETCWorkload returns the generator configuration modeling the paper's ETC
// trace (general-purpose, small items, heavy skew).
func ETCWorkload() WorkloadConfig { return workload.ETC() }

// APPWorkload returns the generator configuration modeling the paper's APP
// trace (large items, many cold misses).
func APPWorkload() WorkloadConfig { return workload.APP() }

// NewWorkload builds a request generator.
func NewWorkload(cfg WorkloadConfig) (*WorkloadGenerator, error) { return workload.New(cfg) }

// RunSim executes one simulation experiment.
func RunSim(spec SimSpec) (*SimResult, error) { return sim.Run(spec) }

// RunSimMatrix executes experiments concurrently (workers <= 0 selects
// GOMAXPROCS), returning results in spec order.
func RunSimMatrix(specs []SimSpec, workers int) ([]*SimResult, error) {
	return sim.RunMatrix(specs, workers)
}

// Network service and back-end simulation.
type (
	// Server serves a cache over the Memcached ASCII protocol.
	Server = server.Server
	// ServerOptions configure a Server.
	ServerOptions = server.Options
	// ServerStore is the cache surface a Server drives (a *Cache or a
	// *ShardGroup).
	ServerStore = server.Store
	// Backend simulates the database tier a cache shields.
	Backend = backend.Store
	// BackendFaults injects deterministic fetch failures and latency
	// spikes into a Backend (Backend.SetFaults).
	BackendFaults = backend.Faults
	// ServerStats are the server-level counters (connections, error
	// classes, pipelining depth, backend retry/degradation activity) —
	// distinct from the engine-level Stats.
	ServerStats = server.Stats
	// ShardGroup is a hash-sharded set of caches.
	ShardGroup = shard.Group
	// GDSFCache is the item-granularity GreedyDual-Size-Frequency cache
	// (an alternative engine, no slabs).
	GDSFCache = gds.Cache

	// Introspection is one consistent snapshot of the engine's allocation
	// state — per-class slabs, per-subclass stack depths and hit/miss
	// attribution, the src→dst slab-move matrix, and the policy's decision
	// counters (Cache.Introspect, ShardGroup.Introspect).
	Introspection = cache.Introspection
	// PolicyDecisions are the reallocation-decision counters a
	// DecisionReporter policy exposes.
	PolicyDecisions = cache.PolicyDecisions
	// Admin serves the observability endpoints of a Server over HTTP:
	// /metrics (Prometheus), /statsz (JSON), /series (windowed TSV),
	// /healthz, and /debug/pprof.
	Admin = server.Admin
	// AdminStatsz is the /statsz document shape.
	AdminStatsz = server.Statsz
)

// NewSharded splits cfg.CacheBytes across n hash shards (rounded up to a
// power of two), each with its own policy from factory.
func NewSharded(cfg Config, n int, factory func() Policy) (*ShardGroup, error) {
	return shard.New(cfg, n, shard.PolicyFactory(factory))
}

// NewGDSF returns a GreedyDual-Size-Frequency cache bounded by capBytes.
func NewGDSF(capBytes int64, storeValues bool) (*GDSFCache, error) {
	return gds.New(capBytes, storeValues)
}

// NewServer wraps a cache or shard group (built with StoreValues: true) in
// a protocol server.
func NewServer(c ServerStore, opts ServerOptions) *Server { return server.New(c, opts) }

// NewAdmin builds the observability listener for a Server; sampleEvery > 0
// closes one /series window per interval.
func NewAdmin(s *Server, sampleEvery time.Duration) *Admin {
	return server.NewAdmin(s, sampleEvery)
}

// NewBackend returns an accounting-mode simulated back end: Fetch reports
// each key's size, miss penalty, and synthesized value.
func NewBackend(model PenaltyModel, sizer func(keyHash uint64) int) *Backend {
	return backend.New(model, sizer)
}

// NewRealTimeBackend returns a back end whose Fetch sleeps
// penalty*scale wall-clock seconds, making miss penalties felt in demos.
func NewRealTimeBackend(model PenaltyModel, sizer func(keyHash uint64) int, scale float64) *Backend {
	return backend.NewRealTime(model, sizer, scale)
}

// ErrBackendUnavailable is returned by Backend.FetchErr for injected
// failures (BackendFaults).
var ErrBackendUnavailable = backend.ErrUnavailable

// Cluster tier: consistent-hash peer routing, pooled peer clients with
// circuit breaking and penalty-aware hedged reads, and miss deduplication.
type (
	// ClusterPeers is one node's routing table: owner selection plus a
	// pooled client per remote member (ServerOptions.Cluster).
	ClusterPeers = cluster.Peers
	// ClusterConfig describes a node's view of the cluster (self, member
	// list, hashing scheme, client tuning, hedge policy).
	ClusterConfig = cluster.Config
	// ClusterSelector maps keys to owning members ("ring" with virtual
	// nodes, or "rendezvous").
	ClusterSelector = cluster.Selector
	// ClusterClientOptions tune one peer's connection pool, timeouts,
	// retries, and circuit breaker.
	ClusterClientOptions = cluster.ClientOptions
	// ClusterClientStats snapshot one peer client's counters.
	ClusterClientStats = cluster.ClientStats
	// HedgePolicy maps penalty subclasses to hedge delays for peer GETs.
	HedgePolicy = cluster.HedgePolicy
	// HotCacheStats snapshot a node's hot-item mini-cache of forwarded
	// peer hits.
	HotCacheStats = cluster.HotCacheStats
	// SingleflightGroup dedupes concurrent calls per key: one caller
	// runs, the rest share its result.
	SingleflightGroup = singleflight.Group
)

// DefaultVNodes is the ring's virtual-node count per member.
const DefaultVNodes = cluster.DefaultVNodes

// NewClusterPeers validates cfg and builds a node's routing table.
func NewClusterPeers(cfg ClusterConfig) (*ClusterPeers, error) { return cluster.New(cfg) }

// NewClusterSelector builds an owner selector over members: kind "ring"
// (consistent hashing with vnodes virtual nodes, "" and 0 for defaults) or
// "rendezvous".
func NewClusterSelector(kind string, members []string, vnodes int) (ClusterSelector, error) {
	return cluster.NewSelector(kind, members, vnodes)
}

// DefaultHedgePolicy returns the penalty-aware hedge schedule: cheap keys
// never hedge; expensive keys hedge after a few milliseconds.
func DefaultHedgePolicy() HedgePolicy { return cluster.DefaultHedgePolicy() }

// Overload control: penalty-aware admission, adaptive concurrency limiting,
// and load shedding (ServerOptions.Overload).
type (
	// OverloadConfig tunes the admission controller: hard in-flight
	// ceiling, adaptive AIMD limit vs. a latency target, bounded pending
	// queue with a sojourn cutoff, and the penalty subclasses shed first
	// under pressure.
	OverloadConfig = overload.Config
	// OverloadController is the admission controller a server runs when
	// ServerOptions.Overload is set (Server.Overload exposes it).
	OverloadController = overload.Controller
	// OverloadStats snapshot the controller: current limit, occupancy,
	// pressure tier, and shed counts by reason and penalty subclass.
	OverloadStats = overload.Stats
)

// Pressure tiers of the overload controller, escalating from unconstrained
// service to shedding cheap reads and all writes.
const (
	TierNormal   = overload.TierNormal
	TierStrained = overload.TierStrained
	TierShedding = overload.TierShedding
	TierCritical = overload.TierCritical
)

// NewOverloadController builds a standalone admission controller (servers
// build their own from ServerOptions.Overload).
func NewOverloadController(cfg OverloadConfig) *OverloadController { return overload.New(cfg) }

// HashKey returns the 64-bit hash the engine uses for key — the argument
// backend sizers receive.
func HashKey(key string) uint64 { return kv.HashString(key) }

// KeyString encodes a numeric workload key id as the engine's 8-byte key.
func KeyString(id uint64) string { return kv.KeyString(id) }

// DefaultUnknownPenalty is the penalty assumed for keys without an
// observation (paper: 100 ms).
const DefaultUnknownPenalty = penalty.DefaultUnknown
