// Policies: run the complete policy roster — the paper's four schemes, the
// extra baselines, the miss-ratio-curve allocators, and the item-level GDSF
// engine — over one workload and print a ranked comparison.
//
//	go run ./examples/policies
package main

import (
	"fmt"
	"log"
	"sort"

	"pamakv"
)

func main() {
	wl := pamakv.ETCWorkload()
	wl.Keys = 64 * 1024
	const cacheBytes = 48 << 20

	kinds := []string{
		"memcached", "twemcache", "facebook-age", "psa",
		"mrc-hit", "mrc-time", "lama-hit", "lama-time",
		"pre-pama", "pama", "gdsf",
	}
	specs := make([]pamakv.SimSpec, 0, len(kinds))
	for _, kind := range kinds {
		specs = append(specs, pamakv.SimSpec{
			Name:           kind,
			Workload:       wl,
			CacheBytes:     cacheBytes,
			Requests:       400_000,
			MetricsWindow:  100_000,
			Policy:         pamakv.SimPolicySpec{Kind: kind},
			SampleSubClass: -1,
		})
	}
	fmt.Printf("comparing %d policies on %s (%d MiB cache, %d requests each)...\n\n",
		len(kinds), wl.Name, cacheBytes>>20, specs[0].Requests)
	results, err := pamakv.RunSimMatrix(specs, 0)
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(results, func(i, j int) bool {
		return results[i].Series.MeanAvgService() < results[j].Series.MeanAvgService()
	})
	fmt.Printf("%-14s %9s %12s %12s\n", "policy", "hit", "mean svc", "p99 svc")
	for i, r := range results {
		marker := "  "
		if i == 0 {
			marker = "<- best service time"
		}
		fmt.Printf("%-14s %8.2f%% %10.2f ms %10.1f ms  %s\n",
			r.Spec.Name,
			100*r.Series.MeanHitRatio(),
			1e3*r.Series.MeanAvgService(),
			1e3*r.ServiceHist.Quantile(0.99),
			marker)
	}
	fmt.Println("\nNote how the hit-ratio ranking and the service-time ranking disagree:")
	fmt.Println("that disagreement is the paper's whole point.")
}
