// Netserver: run the Memcached-protocol server on a loopback port with a
// read-through simulated database, then exercise it with a small client —
// all in one process, so the demo needs no external tooling. The second act
// turns on backend fault injection and shows the server degrading to
// serve-stale instead of missing.
//
//	go run ./examples/netserver
package main

import (
	"bufio"
	"fmt"
	"log"
	"net"
	"strings"
	"time"

	"pamakv"
)

func main() {
	c, err := pamakv.New(pamakv.Config{
		CacheBytes:  32 << 20,
		StoreValues: true,
		StaleValues: true,      // retain evicted/expired bytes ...
		StaleBytes:  256 << 10, // ... in a 256 KiB serve-stale buffer
	}, pamakv.NewPAMA(pamakv.DefaultPAMAConfig()))
	if err != nil {
		log.Fatal(err)
	}
	wl := pamakv.ETCWorkload()
	// Penalties are slept at 2% of their simulated value, so an expensive
	// key visibly stalls its first GET.
	db := pamakv.NewRealTimeBackend(wl.Penalty, wl.SizeOf, 0.02)
	srv := pamakv.NewServer(c, pamakv.ServerOptions{
		Backend:      db,
		MaxConns:     64,
		ReadTimeout:  time.Minute,
		FetchTimeout: 2 * time.Second,
		FetchRetries: 2,
		FetchBackoff: 5 * time.Millisecond,
		ServeStale:   true,
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Shutdown()
	addr := ln.Addr().String()
	fmt.Printf("pama server listening on %s (read-through, penalties at 2%% real time)\n\n", addr)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)

	send := func(cmd string) {
		if _, err := fmt.Fprintf(conn, "%s\r\n", cmd); err != nil {
			log.Fatal(err)
		}
	}
	recvUntilEnd := func() []string {
		var lines []string
		for {
			l, err := r.ReadString('\n')
			if err != nil {
				log.Fatal(err)
			}
			l = strings.TrimRight(l, "\r\n")
			lines = append(lines, l)
			if l == "END" || l == "STORED" || l == "DELETED" ||
				strings.HasPrefix(l, "VERSION") || strings.HasPrefix(l, "CLIENT_ERROR") {
				return lines
			}
		}
	}

	// A stored value is served instantly.
	send("set motd 0 0 13\r\nhello, pamakv")
	recvUntilEnd()

	timeGet := func(key string) time.Duration {
		start := time.Now()
		send("get " + key)
		recvUntilEnd()
		return time.Since(start)
	}
	fmt.Printf("get motd (cached):          %8s\n", timeGet("motd").Round(time.Microsecond))

	// A cold key is fetched read-through from the simulated database —
	// the first GET pays (2%% of) the key's miss penalty, the second is
	// served from cache.
	cold := "report:2026-q3"
	first := timeGet(cold)
	second := timeGet(cold)
	fmt.Printf("get cold key (read-through): %8s  <- paid the back-end penalty\n", first.Round(time.Microsecond))
	fmt.Printf("get cold key (now cached):   %8s\n\n", second.Round(time.Microsecond))

	// Act two: the database "goes down" (every fetch now fails). A key
	// whose value expired is still answered — from the stale buffer —
	// while a never-seen key is a plain miss.
	db.SetFaults(&pamakv.BackendFaults{ErrRate: 1.0, Seed: 7})
	send("set session:9 0 -1 7\r\nold-val") // expires on arrival
	recvUntilEnd()
	send("get session:9")
	staleLines := recvUntilEnd()
	fmt.Println("backend down, expired key served stale:")
	for _, l := range staleLines {
		fmt.Println("  " + l)
	}
	db.SetFaults(nil) // heal the backend
	fmt.Println()

	send("stats")
	for _, l := range recvUntilEnd() {
		if strings.HasPrefix(l, "STAT get_") || strings.HasPrefix(l, "STAT policy") ||
			strings.HasPrefix(l, "STAT stale_") || strings.HasPrefix(l, "STAT backend_") {
			fmt.Println(l)
		}
	}
}
