// Quickstart: build a PAMA cache, store items with observed miss penalties,
// and watch the engine's counters.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pamakv"
)

func main() {
	// A 16 MiB cache under the paper's PAMA configuration (m=2 reference
	// segments, five penalty subclasses). StoreValues keeps item bodies;
	// leave it off to use the engine as a metadata-only simulator.
	c, err := pamakv.New(pamakv.Config{
		CacheBytes:  16 << 20,
		StoreValues: true,
	}, pamakv.NewPAMA(pamakv.DefaultPAMAConfig()))
	if err != nil {
		log.Fatal(err)
	}

	// Set takes the item's logical size and the miss penalty you observed
	// when producing the value (how long the database query or
	// computation took, in seconds). PAMA uses it to decide which items
	// are worth keeping when memory runs short.
	items := []struct {
		key     string
		value   string
		penalty float64
	}{
		{"session:alice", `{"uid":1,"cart":[7,9]}`, 0.002},    // cheap lookup
		{"timeline:bob", `[...200 posts...]`, 0.180},          // mid-weight query
		{"report:q2-2026", `<32 pages of aggregates>`, 3.500}, // expensive analytics
	}
	for _, it := range items {
		if err := c.Set(it.key, len(it.value), it.penalty, 0, []byte(it.value)); err != nil {
			log.Fatalf("set %s: %v", it.key, err)
		}
	}

	for _, it := range items {
		val, _, hit := c.Get(it.key, 0, 0, nil)
		fmt.Printf("get %-16s hit=%-5v value=%q\n", it.key, hit, val)
	}
	if _, _, hit := c.Get("absent:key", 0, 0, nil); !hit {
		fmt.Println("get absent:key      hit=false (as expected — fetch it from your backend, then Set it with the observed penalty)")
	}

	st := c.Stats()
	fmt.Printf("\nstats: gets=%d hits=%d misses=%d sets=%d items=%d\n",
		st.Gets, st.Hits, st.Misses, st.Sets, c.Items())
	fmt.Printf("slab allocation by class: %v\n", c.SnapshotSlabs())
}
