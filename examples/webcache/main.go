// Webcache: the scenario from the paper's introduction — a cache in front
// of a database whose query costs span milliseconds to seconds. The same
// request stream is served twice, once with PSA's penalty-blind allocation
// and once with PAMA, and the user-visible service times are compared.
//
//	go run ./examples/webcache
package main

import (
	"errors"
	"fmt"
	"log"

	"pamakv"
)

const (
	cacheBytes = 64 << 20
	requests   = 400_000
)

func main() {
	// The ETC workload models a general-purpose Memcached tier: zipfian
	// popularity, mostly tiny items, penalties from a size-correlated
	// model with a heavy 0.5–5 s component (paper Fig. 1).
	wl := pamakv.ETCWorkload()
	wl.Keys = 64 * 1024

	fmt.Printf("database-backed web cache, %d MiB, %d requests\n", cacheBytes>>20, requests)
	fmt.Printf("workload: %d keys, mean item %.0f B\n\n", wl.Keys, wl.MeanSize())

	type outcome struct {
		name string
		hit  float64
		avg  float64
	}
	var outcomes []outcome
	for _, setup := range []struct {
		name string
		pol  pamakv.Policy
	}{
		{"psa", pamakv.NewPSA(0)},
		{"pama", pamakv.NewPAMA(pamakv.DefaultPAMAConfig())},
	} {
		hit, avg := serve(wl, setup.pol)
		outcomes = append(outcomes, outcome{setup.name, hit, avg})
		fmt.Printf("%-5s hit ratio %.3f, avg request service %6.2f ms\n", setup.name, hit, avg*1e3)
	}
	if len(outcomes) == 2 && outcomes[1].avg < outcomes[0].avg {
		fmt.Printf("\nPAMA cut mean service time by %.0f%% versus PSA",
			100*(1-outcomes[1].avg/outcomes[0].avg))
		fmt.Printf(" (hit ratio difference: %+.1f points) —\n", 100*(outcomes[1].hit-outcomes[0].hit))
		fmt.Println("it spends misses on cheap items and keeps the expensive ones resident.")
	}
}

// serve replays the workload against one policy, fetching misses from the
// simulated database and refilling the cache with the observed penalty.
func serve(wl pamakv.WorkloadConfig, pol pamakv.Policy) (hitRatio, avgService float64) {
	c, err := pamakv.New(pamakv.Config{CacheBytes: cacheBytes}, pol)
	if err != nil {
		log.Fatal(err)
	}
	db := pamakv.NewBackend(wl.Penalty, wl.SizeOf)
	gen, err := pamakv.NewWorkload(wl)
	if err != nil {
		log.Fatal(err)
	}

	var gets, hits uint64
	var service float64
	for i := 0; i < requests; i++ {
		r, _ := gen.Next()
		key := pamakv.KeyString(r.Key)
		switch {
		case r.Op.String() == "get":
			gets++
			_, _, hit := c.Get(key, int(r.Size), 0, nil)
			if hit {
				hits++
				service += 0.0005
				continue
			}
			// Miss: pay the database's price, then cache the value
			// with that penalty attached.
			size, pen, _ := db.Fetch(key, false)
			service += pen
			if err := c.Set(key, size, pen, 0, nil); err != nil &&
				!errors.Is(err, pamakv.ErrNoSpace) && !errors.Is(err, pamakv.ErrTooLarge) {
				log.Fatal(err)
			}
		case r.Op.String() == "set":
			size, pen, _ := db.Fetch(key, false)
			if err := c.Set(key, size, pen, 0, nil); err != nil &&
				!errors.Is(err, pamakv.ErrNoSpace) && !errors.Is(err, pamakv.ErrTooLarge) {
				log.Fatal(err)
			}
		default:
			c.Delete(key)
		}
	}
	return float64(hits) / float64(gets), service / float64(gets)
}
