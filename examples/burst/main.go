// Burst: reproduction of the paper's §IV-C experiment as a demo — a flood
// of unpopular items (10% of the cache) is SET into a running cache, and
// the hit-ratio dip and recovery are compared between PSA and PAMA.
//
//	go run ./examples/burst
package main

import (
	"fmt"
	"log"

	"pamakv"
)

func main() {
	wl := pamakv.ETCWorkload()
	wl.Keys = 64 * 1024

	const (
		cacheBytes = 64 << 20
		requests   = 600_000
		burstAt    = 150_000
	)
	fmt.Printf("cold-item burst demo: %d MiB cache, burst of 10%% of cache at request %d\n\n",
		cacheBytes>>20, burstAt)

	for _, kind := range []string{"psa", "pama"} {
		for _, withBurst := range []bool{false, true} {
			spec := pamakv.SimSpec{
				Name:           kind,
				Workload:       wl,
				CacheBytes:     cacheBytes,
				Requests:       requests,
				MetricsWindow:  50_000,
				Policy:         pamakv.SimPolicySpec{Kind: kind},
				SampleSubClass: -1,
			}
			if withBurst {
				spec.Burst = &pamakv.SimBurstSpec{
					At:          burstAt,
					FracOfCache: 0.10,
					Classes:     []int{3, 4, 5},
				}
			}
			res, err := pamakv.RunSim(spec)
			if err != nil {
				log.Fatal(err)
			}
			label := "steady  "
			if withBurst {
				label = "impacted"
			}
			fmt.Printf("%-5s %s  hit-ratio by window:", kind, label)
			for _, p := range res.Series.Points {
				fmt.Printf(" %.3f", p.HitRatio)
			}
			fmt.Printf("   (mean svc %.2f ms)\n", 1e3*res.Series.MeanAvgService())
		}
		fmt.Println()
	}
	fmt.Println("PAMA's dip is shallower and recovers faster: cold items sink to the")
	fmt.Println("bottoms of their stacks, so the impacted classes never look valuable")
	fmt.Println("enough to steal slabs from the classes doing real work.")
}
