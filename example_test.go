package pamakv_test

import (
	"fmt"
	"log"

	"pamakv"
)

// ExampleNew shows the core loop: build a PAMA cache, store values tagged
// with the miss penalty observed when producing them, and read them back.
func ExampleNew() {
	c, err := pamakv.New(pamakv.Config{
		CacheBytes:  16 << 20,
		StoreValues: true,
	}, pamakv.NewPAMA(pamakv.DefaultPAMAConfig()))
	if err != nil {
		log.Fatal(err)
	}
	// The third argument is the observed miss penalty in seconds — how
	// long the value took to compute or fetch. PAMA uses it to decide
	// what stays resident under memory pressure.
	c.Set("session:42", 18, 0.002, 0, []byte(`{"uid":42,"ok":true}`))
	val, _, hit := c.Get("session:42", 0, 0, nil)
	fmt.Println(hit, string(val))
	// Output: true {"uid":42,"ok":true}
}

// ExampleRunSim runs one scaled experiment from the paper's evaluation and
// prints its headline numbers.
func ExampleRunSim() {
	wl := pamakv.ETCWorkload()
	wl.Keys = 8192
	res, err := pamakv.RunSim(pamakv.SimSpec{
		Workload:       wl,
		CacheBytes:     8 << 20,
		Requests:       50_000,
		MetricsWindow:  25_000,
		Policy:         pamakv.SimPolicySpec{Kind: "pama"},
		SampleSubClass: -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Stats.Gets > 0, res.Series.MeanHitRatio() > 0)
	// Output: true true
}

// ExampleNewPSA contrasts two policies on the same traffic.
func ExampleNewPSA() {
	for _, pol := range []pamakv.Policy{pamakv.NewPSA(0), pamakv.NewPAMA(pamakv.DefaultPAMAConfig())} {
		c, err := pamakv.New(pamakv.Config{CacheBytes: 4 << 20}, pol)
		if err != nil {
			log.Fatal(err)
		}
		c.Set("k", 100, 0.050, 0, nil)
		_, _, hit := c.Get("k", 0, 0, nil)
		fmt.Println(pol.Name(), hit)
	}
	// Output:
	// psa true
	// pama true
}
