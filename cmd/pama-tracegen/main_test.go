package main

import (
	"path/filepath"
	"testing"

	"pamakv/internal/trace"
)

func TestRunWritesTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.trace")
	if err := run("etc", 5000, out, 7, 1024); err != nil {
		t.Fatal(err)
	}
	stream, closer, err := trace.OpenFile(out)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	reqs, err := trace.Collect(stream, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 5000 {
		t.Fatalf("got %d records, want 5000", len(reqs))
	}
}

func TestRunWritesGzipCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.csv.gz")
	if err := run("app", 500, out, 0, 0); err != nil {
		t.Fatal(err)
	}
	stream, closer, err := trace.OpenFile(out)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	reqs, err := trace.Collect(stream, -1)
	if err != nil || len(reqs) != 500 {
		t.Fatalf("records=%d err=%v", len(reqs), err)
	}
}

func TestRunRejectsUnknownWorkload(t *testing.T) {
	if err := run("nope", 10, filepath.Join(t.TempDir(), "x"), 0, 0); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestSeedChangesStream(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.trace"), filepath.Join(dir, "b.trace")
	if err := run("etc", 100, a, 1, 1024); err != nil {
		t.Fatal(err)
	}
	if err := run("etc", 100, b, 2, 1024); err != nil {
		t.Fatal(err)
	}
	ra, ca, _ := trace.OpenFile(a)
	defer ca.Close()
	rb, cb, _ := trace.OpenFile(b)
	defer cb.Close()
	qa, _ := trace.Collect(ra, -1)
	qb, _ := trace.Collect(rb, -1)
	same := true
	for i := range qa {
		if qa[i] != qb[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}
