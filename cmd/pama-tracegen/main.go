// Command pama-tracegen materializes a synthetic workload as a trace file
// in the repository's binary format (or CSV), for replay with pama-replay
// or external analysis.
//
// Output format follows the file name: binary by default, ".csv" for CSV,
// and a ".gz" suffix adds gzip compression.
//
// Usage:
//
//	pama-tracegen -workload etc -n 1000000 -out etc.trace
//	pama-tracegen -workload app -n 500000 -out app.csv.gz
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"pamakv/internal/trace"
	"pamakv/internal/workload"
)

func main() {
	wl := flag.String("workload", "etc", "workload model: etc, app, usr, sys, var")
	n := flag.Uint64("n", 1_000_000, "number of requests")
	out := flag.String("out", "", "output path (.csv/.gz select format; default binary to stdout)")
	seed := flag.Uint64("seed", 0, "override workload seed (0 keeps the default)")
	keys := flag.Uint64("keys", 0, "override hot keyspace size (0 keeps the default)")
	flag.Parse()

	if err := run(*wl, *n, *out, *seed, *keys); err != nil {
		fmt.Fprintln(os.Stderr, "pama-tracegen:", err)
		os.Exit(1)
	}
}

func run(wl string, n uint64, out string, seed, keys uint64) error {
	cfg, err := workload.ByName(wl)
	if err != nil {
		return err
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	if keys != 0 {
		cfg.Keys = keys
	}
	gen, err := workload.New(cfg)
	if err != nil {
		return err
	}
	stream := &trace.Limit{S: gen, N: n}
	cfg.Describe(os.Stderr)

	if out == "" {
		tw, err := trace.NewWriter(os.Stdout)
		if err != nil {
			return err
		}
		if err := copyStream(stream, tw.Write); err != nil {
			return err
		}
		return tw.Flush()
	}
	write, closer, err := trace.CreateFile(out)
	if err != nil {
		return err
	}
	if err := copyStream(stream, write); err != nil {
		closer.Close()
		return err
	}
	if err := closer.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d records to %s\n", n, out)
	return nil
}

func copyStream(s trace.Stream, write func(trace.Request) error) error {
	for {
		r, err := s.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		if err := write(r); err != nil {
			return err
		}
	}
}
