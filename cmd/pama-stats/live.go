package main

// Live mode: poll a pama-server admin endpoint and turn cumulative /statsz
// counters into windowed rows, the same shape as the simulator's per-window
// TSV (hit ratio per window of served GETs) but measured off a real socket.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"pamakv/internal/server"
	"pamakv/internal/tenant"
)

// Reconnect tuning: a failed poll is retried with exponential backoff from
// reconnectBase, capped at reconnectCap, for at most reconnectAttempts
// consecutive failures before the poller gives up. Vars, not consts, so
// tests can shrink the waits.
var (
	reconnectBase = 500 * time.Millisecond
	reconnectCap  = 15 * time.Second
)

const reconnectAttempts = 8

// fetchStatsz GETs and decodes one /statsz document.
func fetchStatsz(client *http.Client, url string) (server.Statsz, error) {
	var doc server.Statsz
	resp, err := client.Get(url)
	if err != nil {
		return doc, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return doc, fmt.Errorf("%s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return doc, fmt.Errorf("decoding %s: %w", url, err)
	}
	return doc, nil
}

// runLive polls addr's /statsz every interval and prints one delta row per
// window. samples > 0 stops after that many rows; otherwise it runs until
// the poll fails (e.g. the server went away) or the process is interrupted.
func runLive(w io.Writer, addr string, interval time.Duration, samples int) error {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	url := strings.TrimSuffix(base, "/") + "/statsz"
	client := &http.Client{Timeout: 30 * time.Second}

	prev, err := fetchStatsz(client, url)
	if err != nil {
		return err
	}
	prevT := time.Now()
	fmt.Fprintf(w, "# %s  policy=%s  items=%d  shards' slabs=%v\n",
		url, prev.Policy, prev.Items, prev.Slabs)
	fmt.Fprintf(w, "%10s %10s %8s %8s %10s %12s %12s\n",
		"gets/s", "sets/s", "hit%", "evic/s", "items", "p99get(ms)", "migrations")

	for n := 0; samples <= 0 || n < samples; n++ {
		time.Sleep(interval)
		cur, err := fetchStatsz(client, url)
		if err != nil {
			cur, err = reconnect(w, client, url, err)
			if err != nil {
				return err
			}
			// The server may have restarted and reset its counters: the
			// first poll after a reconnect is a fresh baseline, not a
			// window (a delta across the gap would be garbage or would
			// underflow).
			prev, prevT = cur, time.Now()
			n--
			continue
		}
		now := time.Now()
		dt := now.Sub(prevT).Seconds()
		if dt <= 0 {
			dt = interval.Seconds()
		}
		dGets := cur.Engine.Gets - prev.Engine.Gets
		dHits := cur.Engine.Hits - prev.Engine.Hits
		dSets := cur.Engine.Sets - prev.Engine.Sets
		dEvic := cur.Engine.Evictions - prev.Engine.Evictions
		hitCell := "-" // no GET traffic this window: not 0%, just unknown
		if dGets > 0 {
			hitCell = fmt.Sprintf("%.2f", 100*float64(dHits)/float64(dGets))
		}
		p99 := 0.0
		if lat, ok := cur.Latencies["get"]; ok {
			p99 = lat.P99 * 1e3 // cumulative, not windowed: quantiles need buckets
		}
		fmt.Fprintf(w, "%10.0f %10.0f %8s %8.0f %10d %12.3f %12d\n",
			float64(dGets)/dt, float64(dSets)/dt, hitCell, float64(dEvic)/dt,
			cur.Items, p99, cur.Engine.SlabMigrations)
		writeTenantRows(w, prev, cur, dt)
		writeMemberRows(w, prev, cur, dt)
		prev, prevT = cur, now
	}
	return nil
}

// writeTenantRows prints one indented per-tenant delta row under the main
// window row. Servers predating multi-tenancy (or run without -tenants)
// simply have no tenants section in /statsz, and the live view stays the
// single-tenant one — no flag, no error.
func writeTenantRows(w io.Writer, prev, cur server.Statsz, dt float64) {
	if len(cur.Tenants) == 0 {
		return
	}
	prevBy := make(map[string]tenant.Snapshot, len(prev.Tenants))
	for _, sn := range prev.Tenants {
		prevBy[sn.Name] = sn
	}
	for _, sn := range cur.Tenants {
		p := prevBy[sn.Name] // zero value across a restart: row is a baseline
		dGets := sn.Gets - p.Gets
		hitCell := "-"
		if dGets > 0 {
			hitCell = fmt.Sprintf("%.2f", 100*float64(sn.Hits-p.Hits)/float64(dGets))
		}
		fmt.Fprintf(w, "  · %-14s %8.0f/s %6s%% %8d items %4d slabs (res %d, +%d/-%d)\n",
			sn.Name, float64(dGets)/dt, hitCell, sn.Items,
			sn.Slabs, sn.ReserveSlabs, sn.SlabsIn-p.SlabsIn, sn.SlabsOut-p.SlabsOut)
	}
}

// writeMemberRows prints the cluster-membership block under the window
// row: one epoch/handoff summary line plus one row per member with its
// probe state. Older servers (or nodes run without runtime membership)
// have no membership section in /statsz, and the live view simply omits
// the block — no flag, no error.
func writeMemberRows(w io.Writer, prev, cur server.Statsz, dt float64) {
	ms := cur.Membership
	if ms == nil {
		return
	}
	var sentPrev uint64
	if prev.Membership != nil {
		sentPrev = prev.Membership.Handoff.KeysSent
	}
	handoff := "handoff idle"
	if ms.Handoff.Active {
		handoff = "handoff ACTIVE"
	}
	if d := ms.Handoff.KeysSent - sentPrev; d > 0 {
		handoff += fmt.Sprintf(", %.0f keys/s out", float64(d)/dt)
	}
	drain := ""
	if ms.Draining {
		drain = ", DRAINING"
	}
	fmt.Fprintf(w, "  ∘ membership epoch %d, %d members (%s%s)\n",
		ms.Epoch, len(ms.Members), handoff, drain)
	for _, m := range ms.Members {
		detail := ""
		if m.State == "suspect" {
			detail = fmt.Sprintf(" (%d failed probes)", m.ProbeFails)
		}
		fmt.Fprintf(w, "  ∘ %-21s %s%s\n", m.Addr, m.State, detail)
	}
}

// reconnect retries the poll with capped exponential backoff until one
// fetch succeeds, announcing the outage and the recovery in one line each
// (comment-prefixed, so downstream column parsers skip them). It gives up
// with the last error after reconnectAttempts consecutive failures.
func reconnect(w io.Writer, client *http.Client, url string, cause error) (server.Statsz, error) {
	backoff := reconnectBase
	fmt.Fprintf(w, "# poll failed (%v); retrying with backoff up to %v\n", cause, reconnectCap)
	for attempt := 1; ; attempt++ {
		time.Sleep(backoff)
		doc, err := fetchStatsz(client, url)
		if err == nil {
			fmt.Fprintf(w, "# reconnected after %d attempt(s)\n", attempt)
			return doc, nil
		}
		if attempt >= reconnectAttempts {
			return doc, fmt.Errorf("gave up after %d attempts: %w", attempt, err)
		}
		backoff *= 2
		if backoff > reconnectCap {
			backoff = reconnectCap
		}
	}
}
