package main

// Live mode: poll a pama-server admin endpoint and turn cumulative /statsz
// counters into windowed rows, the same shape as the simulator's per-window
// TSV (hit ratio per window of served GETs) but measured off a real socket.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"pamakv/internal/server"
)

// fetchStatsz GETs and decodes one /statsz document.
func fetchStatsz(client *http.Client, url string) (server.Statsz, error) {
	var doc server.Statsz
	resp, err := client.Get(url)
	if err != nil {
		return doc, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return doc, fmt.Errorf("%s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return doc, fmt.Errorf("decoding %s: %w", url, err)
	}
	return doc, nil
}

// runLive polls addr's /statsz every interval and prints one delta row per
// window. samples > 0 stops after that many rows; otherwise it runs until
// the poll fails (e.g. the server went away) or the process is interrupted.
func runLive(w io.Writer, addr string, interval time.Duration, samples int) error {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	url := strings.TrimSuffix(base, "/") + "/statsz"
	client := &http.Client{Timeout: 30 * time.Second}

	prev, err := fetchStatsz(client, url)
	if err != nil {
		return err
	}
	prevT := time.Now()
	fmt.Fprintf(w, "# %s  policy=%s  items=%d  shards' slabs=%v\n",
		url, prev.Policy, prev.Items, prev.Slabs)
	fmt.Fprintf(w, "%10s %10s %8s %8s %10s %12s %12s\n",
		"gets/s", "sets/s", "hit%", "evic/s", "items", "p99get(ms)", "migrations")

	for n := 0; samples <= 0 || n < samples; n++ {
		time.Sleep(interval)
		cur, err := fetchStatsz(client, url)
		if err != nil {
			return err
		}
		now := time.Now()
		dt := now.Sub(prevT).Seconds()
		if dt <= 0 {
			dt = interval.Seconds()
		}
		dGets := cur.Engine.Gets - prev.Engine.Gets
		dHits := cur.Engine.Hits - prev.Engine.Hits
		dSets := cur.Engine.Sets - prev.Engine.Sets
		dEvic := cur.Engine.Evictions - prev.Engine.Evictions
		hitCell := "-" // no GET traffic this window: not 0%, just unknown
		if dGets > 0 {
			hitCell = fmt.Sprintf("%.2f", 100*float64(dHits)/float64(dGets))
		}
		p99 := 0.0
		if lat, ok := cur.Latencies["get"]; ok {
			p99 = lat.P99 * 1e3 // cumulative, not windowed: quantiles need buckets
		}
		fmt.Fprintf(w, "%10.0f %10.0f %8s %8.0f %10d %12.3f %12d\n",
			float64(dGets)/dt, float64(dSets)/dt, hitCell, float64(dEvic)/dt,
			cur.Items, p99, cur.Engine.SlabMigrations)
		prev, prevT = cur, now
	}
	return nil
}
