// Command pama-stats analyzes a trace file the way the Facebook workload
// study (Atikoglu et al., SIGMETRICS 2012 — the paper's trace source)
// characterizes its workloads: operation mix, key popularity concentration,
// item-size distribution by slab class, the penalty profile the model
// implies, and a reuse-distance (stack-distance) profile that shows how
// much cache the workload can actually use.
//
// With -live it instead attaches to a running pama-server's admin endpoint
// (see pama-server -admin-addr) and renders one windowed row per polling
// interval from /statsz deltas — the live counterpart of the simulator's
// windowed TSV.
//
// Usage:
//
//	pama-tracegen -workload app -n 1000000 -out app.trace
//	pama-stats -trace app.trace
//	pama-stats -live 127.0.0.1:11212 -interval 2s
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"pamakv/internal/kv"
	"pamakv/internal/metrics"
	"pamakv/internal/mrc"
	"pamakv/internal/penalty"
	"pamakv/internal/trace"
	"pamakv/internal/workload"
)

func main() {
	tracePath := flag.String("trace", "", "trace file (binary, .csv, optionally .gz)")
	topN := flag.Int("top", 10, "how many hottest keys to list")
	depth := flag.Int("depth", 64, "reuse-distance profile depth, in 1 MiB slab equivalents")
	fit := flag.Bool("fit", false, "additionally fit a synthetic workload.Config to the trace")
	live := flag.String("live", "", "poll a running server's admin /statsz at this address instead of reading a trace")
	interval := flag.Duration("interval", 2*time.Second, "polling interval in -live mode")
	samples := flag.Int("samples", 0, "stop -live mode after this many windows (0 = until interrupted)")
	flag.Parse()
	var err error
	if *live != "" {
		err = runLive(os.Stdout, *live, *interval, *samples)
	} else {
		err = run(os.Stdout, *tracePath, *topN, *depth, *fit)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pama-stats:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, tracePath string, topN, depth int, fit bool) error {
	if tracePath == "" {
		return errors.New("-trace is required")
	}
	stream, closer, err := trace.OpenFile(tracePath)
	if err != nil {
		return err
	}
	defer closer.Close()

	geom := kv.DefaultGeometry()
	model := penalty.Default()

	var total uint64
	ops := map[kv.Op]uint64{}
	keyCount := map[uint64]uint64{}
	classReqs := make([]uint64, geom.NumClasses)
	classBytes := make([]uint64, geom.NumClasses)
	penHist := metrics.NewHistogram(0.001, 4)
	var sizeSum, sizeMax uint64
	// Reuse distances in bytes-approximating buckets: one shared tracker
	// over item counts scaled by mean size would be wrong per class, so
	// profile in item-granularity with a synthetic "slab" of 4096 items.
	reuse := mrc.NewTracker(4096, depth)

	for {
		r, err := stream.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		total++
		ops[r.Op]++
		keyCount[r.Key]++
		size := int(r.Size)
		if c := geom.ClassFor(size); c >= 0 {
			classReqs[c]++
			classBytes[c] += uint64(size)
		}
		sizeSum += uint64(r.Size)
		if uint64(r.Size) > sizeMax {
			sizeMax = uint64(r.Size)
		}
		key := kv.KeyString(r.Key)
		h := kv.HashString(key)
		penHist.Add(model.Of(h, size))
		if r.Op != kv.Delete {
			reuse.Access(key, h)
		}
	}
	if total == 0 {
		return errors.New("trace is empty")
	}

	fmt.Fprintf(w, "trace %s: %d requests, %d distinct keys\n", tracePath, total, len(keyCount))
	fmt.Fprintf(w, "ops: get=%.3f set=%.3f delete=%.3f\n",
		frac(ops[kv.Get], total), frac(ops[kv.Set], total), frac(ops[kv.Delete], total))
	fmt.Fprintf(w, "item size: mean %.0f B, max %d B\n", float64(sizeSum)/float64(total), sizeMax)

	fmt.Fprintln(w, "\nrequest share by slab class:")
	for c := 0; c < geom.NumClasses; c++ {
		if classReqs[c] == 0 {
			continue
		}
		fmt.Fprintf(w, "  class %2d (<=%7d B): %6.3f of requests, %6.1f MiB touched\n",
			c, geom.SlotSize(c), frac(classReqs[c], total), float64(classBytes[c])/(1<<20))
	}

	type kc struct {
		key uint64
		n   uint64
	}
	hot := make([]kc, 0, len(keyCount))
	for k, n := range keyCount {
		hot = append(hot, kc{k, n})
	}
	sort.Slice(hot, func(i, j int) bool { return hot[i].n > hot[j].n })
	if topN > len(hot) {
		topN = len(hot)
	}
	var topShare uint64
	fmt.Fprintf(w, "\ntop %d keys:\n", topN)
	for i := 0; i < topN; i++ {
		topShare += hot[i].n
		fmt.Fprintf(w, "  key %-12d %8d requests (%.4f)\n", hot[i].key, hot[i].n, frac(hot[i].n, total))
	}
	fmt.Fprintf(w, "  together: %.3f of all requests\n", frac(topShare, total))
	single := 0
	for _, e := range hot {
		if e.n == 1 {
			single++
		}
	}
	fmt.Fprintf(w, "single-access keys: %d (%.3f of keys)\n", single, frac(uint64(single), uint64(len(hot))))

	fmt.Fprintf(w, "\nmodel-implied miss penalties: %s\n", penHist.Summary())

	fmt.Fprintln(w, "\nreuse-distance profile (cumulative hit ratio by working-set depth):")
	curve := reuse.HitCurve()
	finite := curve[len(curve)-1]
	for _, k := range []int{1, 2, 4, 8, 16, 32, depth} {
		if k > reuse.Depth() {
			break
		}
		fmt.Fprintf(w, "  depth %3d x4096 items: %.3f\n", k, curve[k]/float64(total))
	}
	fmt.Fprintf(w, "  beyond profile or first touch: %.3f\n",
		(float64(total)-finite)/float64(total))

	if fit {
		f, closer2, err := trace.OpenFile(tracePath)
		if err != nil {
			return err
		}
		defer closer2.Close()
		cfg, err := workload.FitConfig(f, workload.ETC())
		if err != nil {
			return fmt.Errorf("fitting: %w", err)
		}
		fmt.Fprintln(w, "\nfitted workload.Config (drive the simulator with it):")
		fmt.Fprintf(w, "  Keys:     %d\n", cfg.Keys)
		fmt.Fprintf(w, "  ZipfS:    %.3f\n", cfg.ZipfS)
		fmt.Fprintf(w, "  ColdFrac: %.4f  SetFrac: %.4f  DelFrac: %.4f\n",
			cfg.ColdFrac, cfg.SetFrac, cfg.DelFrac)
		fmt.Fprintf(w, "  ClassWeights: %.4v\n", cfg.ClassWeights)
	}
	return nil
}

func frac(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
