package main

import (
	"errors"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"pamakv/internal/trace"
	"pamakv/internal/workload"
)

func writeTrace(t *testing.T, n uint64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.trace")
	cfg := workload.ETC()
	cfg.Keys = 4096
	gen, err := workload.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	write, closer, err := trace.CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stream := &trace.Limit{S: gen, N: n}
	for {
		r, err := stream.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		write(r)
	}
	closer.Close()
	return path
}

func TestStatsReport(t *testing.T) {
	path := writeTrace(t, 30_000)
	var sb strings.Builder
	if err := run(&sb, path, 5, 16, true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"fitted workload.Config",
		"30000 requests",
		"ops: get=",
		"request share by slab class",
		"class  0",
		"top 5 keys",
		"miss penalties",
		"reuse-distance profile",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	// ETC is a GET-heavy workload; the report must reflect it.
	if !strings.Contains(out, "get=0.9") {
		t.Fatalf("GET share implausible:\n%s", out)
	}
}

func TestStatsErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "", 5, 8, false); err == nil {
		t.Fatal("missing path accepted")
	}
	if err := run(&sb, "/nonexistent.trace", 5, 8, false); err == nil {
		t.Fatal("missing file accepted")
	}
	// Empty trace.
	path := filepath.Join(t.TempDir(), "empty.trace")
	_, closer, err := trace.CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	closer.Close()
	if err := run(&sb, path, 5, 8, false); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestStatsTopNClamped(t *testing.T) {
	path := writeTrace(t, 1000)
	var sb strings.Builder
	if err := run(&sb, path, 1_000_000, 8, false); err != nil {
		t.Fatal(err)
	}
}
