package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pamakv/internal/cache"
	"pamakv/internal/core"
	"pamakv/internal/kv"
	"pamakv/internal/membership"
	"pamakv/internal/server"
	"pamakv/internal/tenant"
)

// newLiveEngine builds a small value-storing engine under the PAMA policy.
func newLiveEngine(t *testing.T) *cache.Cache {
	t.Helper()
	c, err := cache.New(cache.Config{
		Geometry:    kv.Geometry{SlabSize: 1 << 16, Base: 64, NumClasses: 8},
		CacheBytes:  1 << 22,
		StoreValues: true,
	}, core.New(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// stubStatsz serves a /statsz whose counters advance by a fixed step per
// poll, so the delta rows runLive prints are fully predictable.
func stubStatsz(t *testing.T) *httptest.Server {
	t.Helper()
	var polls atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/statsz" {
			http.NotFound(w, r)
			return
		}
		n := polls.Add(1) - 1 // 0 on the baseline poll
		hr := 0.75
		doc := server.Statsz{
			Policy:   "pama",
			Items:    int(100 + n),
			HitRatio: &hr,
			Engine: cache.Stats{
				Gets:           1000 * n,
				Hits:           750 * n,
				Misses:         250 * n,
				Sets:           100 * n,
				Evictions:      10 * n,
				SlabMigrations: n,
			},
			Slabs: []int{3, 2, 1},
			Latencies: map[string]server.LatencySummary{
				"get": {Count: 1000 * n, Mean: 0.0001, P50: 0.0001, P95: 0.0005, P99: 0.002},
			},
		}
		if err := json.NewEncoder(w).Encode(doc); err != nil {
			t.Error(err)
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestRunLiveRendersDeltas(t *testing.T) {
	ts := stubStatsz(t)
	var buf bytes.Buffer
	if err := runLive(&buf, strings.TrimPrefix(ts.URL, "http://"), time.Millisecond, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // banner, header, two windows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "policy=pama") || !strings.Contains(lines[0], "items=100") {
		t.Errorf("banner = %q", lines[0])
	}
	for _, row := range lines[2:] {
		f := strings.Fields(row)
		if len(f) != 7 {
			t.Fatalf("row %q has %d columns, want 7", row, len(f))
		}
		// Each window advances hits by 750 of 1000 gets: hit% is exact
		// regardless of wall-clock jitter in the rates.
		if f[2] != "75.00" {
			t.Errorf("hit%% column = %q, want 75.00", f[2])
		}
		// p99 is rendered in milliseconds: 0.002 s -> 2.000.
		if f[5] != "2.000" {
			t.Errorf("p99 column = %q, want 2.000", f[5])
		}
	}
}

func TestRunLiveNoTrafficWindow(t *testing.T) {
	// A constant document: every window has zero deltas; the hit column
	// must say "-" (unknown), never 0 or NaN.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(server.Statsz{Policy: "pama"})
	}))
	t.Cleanup(ts.Close)
	var buf bytes.Buffer
	if err := runLive(&buf, ts.URL, time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "NaN") {
		t.Fatalf("live output leaks NaN:\n%s", out)
	}
	rows := strings.Split(strings.TrimSpace(out), "\n")
	if f := strings.Fields(rows[len(rows)-1]); f[2] != "-" {
		t.Errorf("idle window hit%% = %q, want -", f[2])
	}
}

func TestRunLiveReconnectsAfterOutage(t *testing.T) {
	// Polls 2 and 3 fail; the poller must back off, reconnect, rebase,
	// and keep printing windows — announcing both phases in # lines.
	oldBase, oldCap := reconnectBase, reconnectCap
	reconnectBase, reconnectCap = time.Millisecond, 4*time.Millisecond
	t.Cleanup(func() { reconnectBase, reconnectCap = oldBase, oldCap })

	var polls atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		n := polls.Add(1)
		if n == 2 || n == 3 {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(server.Statsz{Policy: "pama"})
	}))
	t.Cleanup(ts.Close)

	var buf bytes.Buffer
	if err := runLive(&buf, ts.URL, time.Millisecond, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# poll failed") {
		t.Errorf("no outage notice in:\n%s", out)
	}
	if !strings.Contains(out, "# reconnected after 2 attempt(s)") {
		t.Errorf("no reconnect notice in:\n%s", out)
	}
	// Two real windows still rendered: banner, header, 2 notices, 2 rows.
	if lines := strings.Split(strings.TrimSpace(out), "\n"); len(lines) != 6 {
		t.Errorf("got %d lines, want 6:\n%s", len(lines), out)
	}
}

func TestRunLiveGivesUpWhenServerStaysDown(t *testing.T) {
	oldBase, oldCap := reconnectBase, reconnectCap
	reconnectBase, reconnectCap = time.Microsecond, 2*time.Microsecond
	t.Cleanup(func() { reconnectBase, reconnectCap = oldBase, oldCap })

	var polls atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if polls.Add(1) == 1 {
			json.NewEncoder(w).Encode(server.Statsz{Policy: "pama"})
			return
		}
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	t.Cleanup(ts.Close)

	var buf bytes.Buffer
	err := runLive(&buf, ts.URL, time.Millisecond, 3)
	if err == nil || !strings.Contains(err.Error(), "gave up") {
		t.Fatalf("err = %v, want a give-up error", err)
	}
	// Baseline + the failed poll + reconnectAttempts retries.
	if got := polls.Load(); got != 2+reconnectAttempts {
		t.Errorf("server saw %d polls, want %d", got, 2+reconnectAttempts)
	}
}

func TestRunLiveAgainstRealAdmin(t *testing.T) {
	// Full integration: a real engine behind a real admin handler.
	eng := newLiveEngine(t)
	srv := server.New(eng, server.Options{})
	admin := server.NewAdmin(srv, 0)
	ts := httptest.NewServer(admin.Handler())
	t.Cleanup(ts.Close)

	if err := eng.Set("k", 64, 0.01, 0, []byte("v")); err != nil {
		t.Fatal(err)
	}
	eng.Get("k", 0, 0, nil)
	var buf bytes.Buffer
	if err := runLive(&buf, ts.URL+"/", time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "policy=") {
		t.Fatalf("no banner in:\n%s", buf.String())
	}
}

// TestRunLiveTenantRows: a /statsz with a tenants section gets one indented
// delta row per tenant under each window; a server without the section (the
// pre-tenant document shape) renders exactly the old single-tenant view.
func TestRunLiveTenantRows(t *testing.T) {
	var polls atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		n := polls.Add(1) - 1
		doc := server.Statsz{
			Policy: "pama",
			Engine: cache.Stats{Gets: 1000 * n, Hits: 500 * n},
			Tenants: []tenant.Snapshot{
				{Name: "gold", Gets: 800 * n, Hits: 600 * n, Items: 42, Slabs: 6, ReserveSlabs: 2, SlabsIn: n},
				{Name: "bronze", Gets: 200 * n, Hits: 20 * n, Items: 7, Slabs: 2, ReserveSlabs: 1, SlabsOut: n},
			},
		}
		json.NewEncoder(w).Encode(doc)
	}))
	t.Cleanup(ts.Close)

	var buf bytes.Buffer
	if err := runLive(&buf, ts.URL, time.Millisecond, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"· gold", "· bronze", "42 items", "(res 2, +1/-0)", "(res 1, +0/-1)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tenant view missing %q:\n%s", want, out)
		}
	}
	// Per-tenant hit% is a window delta: gold 600/800, bronze 20/200.
	if !strings.Contains(out, "75.00%") || !strings.Contains(out, "10.00%") {
		t.Fatalf("per-tenant hit ratios wrong:\n%s", out)
	}

	// Fallback: the same poller against a tenantless document — old layout,
	// no tenant rows, no errors.
	old := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(server.Statsz{Policy: "pama"})
	}))
	t.Cleanup(old.Close)
	buf.Reset()
	if err := runLive(&buf, old.URL, time.Millisecond, 2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "·") {
		t.Fatalf("tenantless server rendered tenant rows:\n%s", buf.String())
	}
}

// TestRunLiveMemberRows: a /statsz with a membership section gets the
// epoch/handoff summary plus one row per member under each window; a
// membership-less document (older server, or one run without runtime
// membership) renders exactly the old layout — no flag, no error.
func TestRunLiveMemberRows(t *testing.T) {
	var polls atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		n := polls.Add(1) - 1
		doc := server.Statsz{
			Policy: "pama",
			Engine: cache.Stats{Gets: 1000 * n, Hits: 500 * n},
			Membership: &membership.Stats{
				Self:     "127.0.0.1:11311",
				Epoch:    7,
				Draining: true,
				Members: []membership.MemberStatus{
					{Addr: "127.0.0.1:11311", State: "self"},
					{Addr: "127.0.0.1:11312", State: "alive"},
					{Addr: "127.0.0.1:11313", State: "suspect", ProbeFails: 3},
				},
				Handoff: membership.HandoffStats{Active: true, KeysSent: 500 * n},
			},
		}
		json.NewEncoder(w).Encode(doc)
	}))
	t.Cleanup(ts.Close)

	var buf bytes.Buffer
	if err := runLive(&buf, ts.URL, time.Millisecond, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"∘ membership epoch 7, 3 members",
		"handoff ACTIVE",
		"keys/s out",
		"DRAINING",
		"127.0.0.1:11311", "self",
		"127.0.0.1:11312", "alive",
		"127.0.0.1:11313", "suspect (3 failed probes)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("member view missing %q:\n%s", want, out)
		}
	}

	// Fallback: a membership-less document — old layout, no member rows,
	// no errors.
	old := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(server.Statsz{Policy: "pama"})
	}))
	t.Cleanup(old.Close)
	buf.Reset()
	if err := runLive(&buf, old.URL, time.Millisecond, 2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "∘") {
		t.Fatalf("membership-less server rendered member rows:\n%s", buf.String())
	}
}
