// Command pama-loadgen drives a running pama-server (or any Memcached-
// ASCII-protocol server) over TCP with a synthetic workload and reports
// client-observed throughput, hit ratio, and latency percentiles — the
// memtier/mc-crusher role in this repository's toolbox.
//
// Each connection runs an independent stream of the chosen workload
// (seeded by connection id, so runs are reproducible), issuing GETs and
// SETs in the workload's own proportions; GET misses are followed by a
// client refill SET, the same pattern the paper's penalty estimation
// assumes.
//
// Usage:
//
//	pama-server -addr :11211 -policy pama &
//	pama-loadgen -addr localhost:11211 -workload etc -n 200000 -conns 4
//
// Against a cluster, pass every member: the load generator shards keys
// client-side with the same consistent-hash ring the servers use, so each
// request lands directly on its owner (no forwarding hop):
//
//	pama-loadgen -addr :11211,:11311,:11411 -workload etc -n 200000
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pamakv/internal/cluster"
	"pamakv/internal/kv"
	"pamakv/internal/metrics"
	"pamakv/internal/proto"
	"pamakv/internal/trace"
	"pamakv/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:11211", "server address, or a comma-separated member list for client-side ring sharding")
	wl := flag.String("workload", "etc", "workload model: etc, app, usr, sys, var")
	n := flag.Uint64("n", 100_000, "total requests across all connections")
	conns := flag.Int("conns", 4, "concurrent connections")
	keys := flag.Uint64("keys", 65536, "hot keyspace size")
	valueBytes := flag.Int("value-bytes", 0, "fixed value size (0 = workload sizes, capped at 64 KiB)")
	vnodes := flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per member on the sharding ring (match the servers')")
	tenants := flag.String("tenants", "", `tag keys with tenant prefixes: "name" or weighted "A:3,B:1" (requests split by weight; pair with pama-server -tenants)`)
	storm := flag.Bool("storm", false, "storm mode: pipelined GET bursts, no miss refills, shed replies counted separately — drive N× capacity with high -conns")
	stormBurst := flag.Int("storm-burst", 16, "pipelined GETs per flush in storm mode")
	flag.Parse()
	sched, err := tenantSchedule(*tenants)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pama-loadgen:", err)
		os.Exit(1)
	}
	if err := run(os.Stdout, *addr, *wl, *n, *conns, *keys, *valueBytes, *vnodes, *storm, *stormBurst, sched); err != nil {
		fmt.Fprintln(os.Stderr, "pama-loadgen:", err)
		os.Exit(1)
	}
}

// connStats aggregates one connection's observations.
type connStats struct {
	gets, hits, sets uint64
	sheds            uint64
	errs             uint64
	lat              *metrics.Histogram
	// tenGets/tenHits break GETs down by tenant tag (tenant mode only).
	tenGets, tenHits map[string]uint64
}

// tenantSchedule expands "A:3,B:1" into a round-robin tag schedule whose
// composition matches the weights ("" means untagged single-tenant mode).
func tenantSchedule(spec string) ([]string, error) {
	if spec == "" {
		return nil, nil
	}
	var sched []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weight := part, 1
		if i := strings.IndexByte(part, ':'); i >= 0 {
			name = part[:i]
			w, err := strconv.Atoi(part[i+1:])
			if err != nil || w < 1 || w > 1000 {
				return nil, fmt.Errorf("tenant %q: weight must be an integer in [1,1000]", part)
			}
			weight = w
		}
		if name == "" || strings.ContainsRune(name, '/') {
			return nil, fmt.Errorf("bad tenant name %q", name)
		}
		for i := 0; i < weight; i++ {
			sched = append(sched, name)
		}
	}
	if len(sched) == 0 {
		return nil, fmt.Errorf("empty -tenants spec")
	}
	return sched, nil
}

func run(w io.Writer, addr, wl string, n uint64, conns int, keys uint64, valueBytes, vnodes int, storm bool, stormBurst int, tenants []string) error {
	if conns < 1 {
		conns = 1
	}
	var addrs []string
	for _, a := range strings.Split(addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return fmt.Errorf("no server address")
	}
	// More than one target: shard keys client-side with the same ring the
	// cluster tier uses, so every request lands on its owner directly.
	var sel cluster.Selector
	if len(addrs) > 1 {
		var err error
		if sel, err = cluster.NewSelector("ring", addrs, vnodes); err != nil {
			return err
		}
	}
	cfg, err := workload.ByName(wl)
	if err != nil {
		return err
	}
	cfg.Keys = keys
	perConn := n / uint64(conns)
	if perConn == 0 {
		perConn = 1
	}

	stats := make([]*connStats, conns)
	errs := make([]error, conns)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := cfg
			c.Seed = cfg.Seed + uint64(i)*1e9
			stats[i] = &connStats{lat: metrics.NewHistogram(1e-6, 6)}
			errs[i] = drive(addrs, sel, c, perConn, valueBytes, storm, stormBurst, tenants, stats[i])
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := &connStats{lat: metrics.NewHistogram(1e-6, 6)}
	total.tenGets, total.tenHits = map[string]uint64{}, map[string]uint64{}
	for i, s := range stats {
		if errs[i] != nil {
			return fmt.Errorf("connection %d: %w", i, errs[i])
		}
		total.gets += s.gets
		total.hits += s.hits
		total.sets += s.sets
		total.sheds += s.sheds
		total.errs += s.errs
		total.lat.Merge(s.lat)
		for t, g := range s.tenGets {
			total.tenGets[t] += g
			total.tenHits[t] += s.tenHits[t]
		}
	}
	ops := total.gets + total.sets
	fmt.Fprintf(w, "loadgen: %d ops over %d conns in %s (%.0f ops/s)\n",
		ops, conns, elapsed.Round(time.Millisecond), float64(ops)/elapsed.Seconds())
	hitRatio := 0.0
	if total.gets > 0 {
		hitRatio = float64(total.hits) / float64(total.gets)
	}
	fmt.Fprintf(w, "gets=%d hit-ratio=%.4f sets=%d protocol-errors=%d\n",
		total.gets, hitRatio, total.sets, total.errs)
	if storm || total.sheds > 0 {
		shedRatio := 0.0
		if ops > 0 {
			shedRatio = float64(total.sheds) / float64(ops)
		}
		fmt.Fprintf(w, "sheds=%d shed-ratio=%.4f\n", total.sheds, shedRatio)
	}
	if len(total.tenGets) > 0 {
		names := make([]string, 0, len(total.tenGets))
		for t := range total.tenGets {
			names = append(names, t)
		}
		sort.Strings(names)
		for _, t := range names {
			hr := 0.0
			if g := total.tenGets[t]; g > 0 {
				hr = float64(total.tenHits[t]) / float64(g)
			}
			fmt.Fprintf(w, "tenant %s: gets=%d hit-ratio=%.4f\n", t, total.tenGets[t], hr)
		}
	}
	fmt.Fprintf(w, "client latency: p50<=%.1fus p99<=%.1fus mean=%.1fus\n",
		1e6*total.lat.Quantile(0.50), 1e6*total.lat.Quantile(0.99), 1e6*total.lat.Mean())
	return nil
}

// target is one server's connection within a driver stream. Responses come
// through proto.RespReader — the same pipelined zero-allocation reader
// internal/client uses — so the load generator exercises the exact parse
// path it benchmarks instead of a private hand-rolled scanner.
type target struct {
	conn net.Conn
	rr   *proto.RespReader
	w    *bufio.Writer
}

// drive runs one driver's request stream. With a selector, each key's
// request goes down the connection to its owning member (one lazily dialed
// connection per member); otherwise everything goes to addrs[0]. In storm
// mode every request becomes a GET, issued in pipelined bursts with no miss
// refills — raw read pressure, the way a stampede actually arrives.
func drive(addrs []string, sel cluster.Selector, cfg workload.Config, n uint64, valueBytes int, storm bool, stormBurst int, tenants []string, st *connStats) error {
	gen, err := workload.New(cfg)
	if err != nil {
		return err
	}
	targets := make(map[string]*target, len(addrs))
	defer func() {
		for _, tg := range targets {
			tg.conn.Close()
		}
	}()
	targetFor := func(key string) (*target, error) {
		addr := addrs[0]
		if sel != nil {
			addr = sel.Owner(key)
		}
		if tg, ok := targets[addr]; ok {
			return tg, nil
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		tg := &target{
			conn: conn,
			rr:   proto.NewRespReader(bufio.NewReaderSize(conn, 1<<16)),
			w:    bufio.NewWriterSize(conn, 1<<16),
		}
		targets[addr] = tg
		return tg, nil
	}

	valueOf := func(size int) string {
		if valueBytes > 0 {
			size = valueBytes
		}
		if size > 64<<10 {
			size = 64 << 10
		}
		if size < 1 {
			size = 1
		}
		return strings.Repeat("v", size)
	}
	// In tenant mode each request carries a tenant prefix drawn round-robin
	// from the weighted schedule; each tenant therefore sees the same key
	// distribution over its own namespace, at its weighted share of the
	// request rate.
	st.tenGets, st.tenHits = map[string]uint64{}, map[string]uint64{}
	var reqNo uint64
	curTag := ""
	keyOf := func(id uint64) string {
		if len(tenants) == 0 {
			curTag = ""
			return fmt.Sprintf("lg:%d", id)
		}
		curTag = tenants[reqNo%uint64(len(tenants))]
		reqNo++
		return fmt.Sprintf("%s/lg:%d", curTag, id)
	}

	doSet := func(tg *target, key, val string) error {
		start := time.Now()
		fmt.Fprintf(tg.w, "set %s 0 0 %d\r\n%s\r\n", key, len(val), val)
		if err := tg.w.Flush(); err != nil {
			return err
		}
		resp, err := tg.rr.Next()
		if err != nil {
			return err
		}
		st.lat.Add(time.Since(start).Seconds())
		st.sets++
		switch {
		case resp.IsShed():
			st.sheds++
		case resp.Status == proto.StatusStored, resp.Status == proto.StatusServerError:
			// STORED is success; a non-shed SERVER_ERROR (admission refusal,
			// allocation failure) is an overload outcome, not a protocol error.
		default:
			st.errs++
		}
		return nil
	}
	// readGetResp consumes one GET response: a VALUE block terminated by END,
	// or a single shed/error line.
	readGetResp := func(tg *target) (hit, shed bool, err error) {
		resp, err := tg.rr.Next()
		if err != nil {
			return false, false, err
		}
		switch {
		case resp.IsShed():
			return false, true, nil
		case resp.Status == proto.StatusEnd:
			return len(resp.Values) > 0, false, nil
		default:
			st.errs++
			return false, false, nil
		}
	}
	doGet := func(tg *target, key string, size int) error {
		start := time.Now()
		fmt.Fprintf(tg.w, "get %s\r\n", key)
		if err := tg.w.Flush(); err != nil {
			return err
		}
		hit, shed, err := readGetResp(tg)
		if err != nil {
			return err
		}
		st.lat.Add(time.Since(start).Seconds())
		st.gets++
		if curTag != "" {
			st.tenGets[curTag]++
			if hit {
				st.tenHits[curTag]++
			}
		}
		switch {
		case shed:
			st.sheds++
		case hit:
			st.hits++
		case !storm:
			// Client refill, as a real cache client would. Storm mode
			// never refills — a stampede does not politely repopulate
			// the cache it is crushing.
			return doSet(tg, key, valueOf(size))
		}
		return nil
	}
	// doBurst issues a pipelined burst of GETs with one flush and drains
	// every response; the recorded latency is the whole burst round-trip.
	doBurst := func(tg *target, burst []string) error {
		start := time.Now()
		for _, k := range burst {
			fmt.Fprintf(tg.w, "get %s\r\n", k)
		}
		if err := tg.w.Flush(); err != nil {
			return err
		}
		for range burst {
			hit, shed, err := readGetResp(tg)
			if err != nil {
				return err
			}
			st.gets++
			switch {
			case shed:
				st.sheds++
			case hit:
				st.hits++
			}
		}
		st.lat.Add(time.Since(start).Seconds())
		return nil
	}

	stream := &trace.Limit{S: gen, N: n}
	if storm {
		if stormBurst < 1 {
			stormBurst = 1
		}
		bursts := make(map[*target][]string)
		for {
			req, err := stream.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return err
			}
			key := keyOf(req.Key)
			tg, err := targetFor(key)
			if err != nil {
				return err
			}
			bursts[tg] = append(bursts[tg], key)
			if len(bursts[tg]) >= stormBurst {
				if err := doBurst(tg, bursts[tg]); err != nil {
					return err
				}
				bursts[tg] = bursts[tg][:0]
			}
		}
		for tg, b := range bursts {
			if len(b) > 0 {
				if err := doBurst(tg, b); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for {
		req, err := stream.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		key := keyOf(req.Key)
		tg, err := targetFor(key)
		if err != nil {
			return err
		}
		switch req.Op {
		case kv.Get:
			if err := doGet(tg, key, int(req.Size)); err != nil {
				return err
			}
		case kv.Set:
			if err := doSet(tg, key, valueOf(int(req.Size))); err != nil {
				return err
			}
		case kv.Delete:
			fmt.Fprintf(tg.w, "delete %s noreply\r\n", key)
			if err := tg.w.Flush(); err != nil {
				return err
			}
		}
	}
}
