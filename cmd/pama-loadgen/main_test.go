package main

import (
	"bufio"
	"net"
	"strings"
	"testing"

	"pamakv/internal/cache"
	"pamakv/internal/cluster"
	"pamakv/internal/core"
	"pamakv/internal/proto"
	"pamakv/internal/server"
	"pamakv/internal/tenant"
)

func startTestServer(t *testing.T) string {
	t.Helper()
	c, err := cache.New(cache.Config{
		CacheBytes:  32 << 20,
		StoreValues: true,
		WindowLen:   50_000,
	}, core.New(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(c, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Shutdown)
	return ln.Addr().String()
}

func TestLoadgenAgainstLiveServer(t *testing.T) {
	addr := startTestServer(t)
	var sb strings.Builder
	if err := run(&sb, addr, "etc", 4000, 2, 2048, 128, 0, false, 0, nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"ops/s", "hit-ratio=", "client latency", "protocol-errors=0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	// With a keyspace this hot the second half of the run must hit.
	if strings.Contains(out, "hit-ratio=0.0") {
		t.Fatalf("implausibly cold run:\n%s", out)
	}
}

func TestLoadgenWorkloadSizes(t *testing.T) {
	addr := startTestServer(t)
	var sb strings.Builder
	// value-bytes 0: use (capped) workload sizes.
	if err := run(&sb, addr, "sys", 1000, 1, 512, 0, 0, false, 0, nil); err != nil {
		t.Fatal(err)
	}
}

// TestLoadgenShardsAcrossCluster: a comma-separated -addr list shards keys
// client-side with the same ring the servers use, so every request lands on
// its owner and the cluster never forwards.
func TestLoadgenShardsAcrossCluster(t *testing.T) {
	const vnodes = 64
	lns := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	srvs := make([]*server.Server, 2)
	for i := range srvs {
		p, err := cluster.New(cluster.Config{Self: addrs[i], Members: addrs, VNodes: vnodes})
		if err != nil {
			t.Fatal(err)
		}
		c, err := cache.New(cache.Config{
			CacheBytes:  32 << 20,
			StoreValues: true,
			WindowLen:   50_000,
		}, core.New(core.DefaultConfig()))
		if err != nil {
			t.Fatal(err)
		}
		srvs[i] = server.New(c, server.Options{Cluster: p})
		go srvs[i].Serve(lns[i])
		t.Cleanup(func() { srvs[i].Shutdown(); p.Close() })
	}

	var sb strings.Builder
	if err := run(&sb, addrs[0]+","+addrs[1], "etc", 4000, 2, 2048, 128, vnodes, false, 0, nil); err != nil {
		t.Fatal(err)
	}
	if out := sb.String(); !strings.Contains(out, "protocol-errors=0") {
		t.Fatalf("sharded run had protocol errors:\n%s", out)
	}
	for i, srv := range srvs {
		st := srv.Stats()
		if st.Conns == 0 {
			t.Errorf("node %d received no connections (sharding collapsed)", i)
		}
		// The loadgen's ring agrees with the servers': nothing to relay.
		if st.PeerForwards != 0 {
			t.Errorf("node %d forwarded %d requests; client-side sharding should route to owners", i, st.PeerForwards)
		}
	}
}

// TestLoadgenStormMode: pipelined GET bursts against a server without
// overload control parse cleanly end to end (sheds reported, zero, and no
// protocol errors — the burst framing is the part that can go wrong).
func TestLoadgenStormMode(t *testing.T) {
	addr := startTestServer(t)
	var sb strings.Builder
	if err := run(&sb, addr, "etc", 2000, 2, 1024, 64, 0, true, 8, nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "sheds=0") {
		t.Fatalf("storm report missing shed count:\n%s", out)
	}
	if !strings.Contains(out, "protocol-errors=0") {
		t.Fatalf("storm run had protocol errors:\n%s", out)
	}
}

// sheddingServer is a scripted overloaded server: every nth GET is answered
// with the protocol's shed line, the rest miss cleanly. Storm bursts against
// it interleave sheds mid-pipeline, which is exactly the framing hazard the
// shared response reader must absorb.
func sheddingServer(t *testing.T, n int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				r := bufio.NewReaderSize(nc, 1<<14)
				p := proto.NewParser(r)
				w := bufio.NewWriterSize(nc, 1<<14)
				gets := 0
				var out []byte
				for {
					cmd, err := p.ReadCommand()
					if err != nil {
						return
					}
					out = out[:0]
					switch cmd.Name {
					case "get":
						gets++
						if gets%n == 0 {
							out = proto.AppendShed(out)
						} else {
							out = proto.AppendEnd(out)
						}
					case "set":
						out = proto.AppendLine(out, "STORED")
					default:
						out = proto.AppendLine(out, "ERROR")
					}
					w.Write(out)
					// Flush only when the burst is drained, like a real
					// pipelining server.
					if r.Buffered() == 0 {
						if err := w.Flush(); err != nil {
							return
						}
					}
				}
			}(nc)
		}
	}()
	return ln.Addr().String()
}

// TestLoadgenStormShedMidPipeline: SERVER_ERROR busy replies landing in the
// middle of a pipelined storm burst must be counted as sheds — not protocol
// errors — and must not desynchronize the remaining responses of the burst.
func TestLoadgenStormShedMidPipeline(t *testing.T) {
	addr := sheddingServer(t, 3)
	var sb strings.Builder
	if err := run(&sb, addr, "etc", 3000, 2, 1024, 64, 0, true, 8, nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "protocol-errors=0") {
		t.Fatalf("sheds were miscounted as protocol errors:\n%s", out)
	}
	if strings.Contains(out, "sheds=0 ") || !strings.Contains(out, "sheds=") {
		t.Fatalf("shedding server produced no recorded sheds:\n%s", out)
	}
	// Every third GET shed: the ratio must be in that neighborhood, which
	// only holds if burst framing survived each mid-pipeline shed.
	if !strings.Contains(out, "shed-ratio=0.33") {
		t.Fatalf("shed ratio drifted from the scripted 1/3:\n%s", out)
	}
}

func TestLoadgenErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "127.0.0.1:1", "etc", 100, 1, 128, 64, 0, false, 0, nil); err == nil {
		t.Fatal("unreachable server accepted")
	}
	if err := run(&sb, "127.0.0.1:1", "bogus", 100, 1, 128, 64, 0, false, 0, nil); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestTenantSchedule(t *testing.T) {
	if s, err := tenantSchedule(""); err != nil || s != nil {
		t.Fatalf("empty spec: %v %v", s, err)
	}
	s, err := tenantSchedule("gold:3,bronze:1")
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, n := range s {
		counts[n]++
	}
	if counts["gold"] != 3 || counts["bronze"] != 1 {
		t.Fatalf("schedule composition %v", counts)
	}
	if s, err := tenantSchedule("solo"); err != nil || len(s) != 1 || s[0] != "solo" {
		t.Fatalf("bare name: %v %v", s, err)
	}
	for _, bad := range []string{"a:0", "a:-1", "a:x", "a:1001", "a/b", ":3", ","} {
		if _, err := tenantSchedule(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

// TestLoadgenTenantTagging drives a tenant-routed server with a weighted
// schedule and checks the per-tenant report and the server-side item split.
func TestLoadgenTenantTagging(t *testing.T) {
	reg, err := tenant.NewRegistry([]tenant.Config{{Name: "gold", Weight: 3}, {Name: "bronze"}})
	if err != nil {
		t.Fatal(err)
	}
	stores := make([]tenant.Store, reg.Len())
	members := make([]tenant.Member, reg.Len())
	for id := 0; id < reg.Len(); id++ {
		c, err := cache.New(cache.Config{
			CacheBytes:  16 << 20,
			StoreValues: true,
			WindowLen:   50_000,
			Tenant:      int32(id),
		}, core.New(core.DefaultConfig()))
		if err != nil {
			t.Fatal(err)
		}
		stores[id] = c
		members[id] = tenant.Member{ID: id, Cfg: reg.Config(id), Engines: []*cache.Cache{c}}
	}
	router, err := tenant.NewRouter(reg, stores, members)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(router, server.Options{Tenants: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Shutdown)

	sched, err := tenantSchedule("gold:3,bronze:1")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(&sb, ln.Addr().String(), "etc", 4000, 2, 1024, 64, 0, false, 0, sched); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "tenant gold:") || !strings.Contains(out, "tenant bronze:") {
		t.Fatalf("report missing per-tenant lines:\n%s", out)
	}
	if !strings.Contains(out, "protocol-errors=0") {
		t.Fatalf("tenant run had protocol errors:\n%s", out)
	}
	var gold, bronze int
	for _, sn := range router.TenantSnapshots() {
		switch sn.Name {
		case "gold":
			gold = sn.Items
		case "bronze":
			bronze = sn.Items
		}
	}
	if gold == 0 || bronze == 0 {
		t.Fatalf("tenant partitions empty: gold=%d bronze=%d", gold, bronze)
	}
	if gold <= bronze {
		t.Fatalf("3:1 weighting left gold (%d items) no larger than bronze (%d)", gold, bronze)
	}
}
