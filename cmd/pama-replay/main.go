// Command pama-replay replays a trace file against a cache configuration
// and reports hit ratio and service time, windowed and total.
//
// Penalty source: with -penalty model (default), each key's miss penalty
// comes from the synthetic penalty model, matching what pama-tracegen's
// workloads assume. With -penalty estimate, penalties are estimated from
// the trace itself via the paper's GET-miss→SET gap rule (§IV) — use this
// for traces converted from real systems where the client's refill SETs and
// timestamps are present.
//
// Usage:
//
//	pama-tracegen -workload etc -n 2000000 -out etc.trace
//	pama-replay -trace etc.trace -policy pama -cache 256
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"pamakv/internal/cache"
	"pamakv/internal/kv"
	"pamakv/internal/metrics"
	"pamakv/internal/penalty"
	"pamakv/internal/sim"
	"pamakv/internal/trace"
)

func main() {
	tracePath := flag.String("trace", "", "trace file (binary, .csv, optionally .gz)")
	policyKind := flag.String("policy", "pama", "policy: memcached, psa, pama, pre-pama, twemcache, facebook-age, mrc-hit, mrc-time, lama-hit, lama-time")
	cacheMiB := flag.Int64("cache", 256, "cache size in MiB")
	window := flag.Uint64("window", 200_000, "GETs per reported window")
	penaltySource := flag.String("penalty", "model", "penalty source: model or estimate")
	hitTime := flag.Float64("hit-time", penalty.DefaultHitTime, "service time of a hit, seconds")
	flag.Parse()

	if err := run(*tracePath, *policyKind, *cacheMiB, *window, *penaltySource, *hitTime); err != nil {
		fmt.Fprintln(os.Stderr, "pama-replay:", err)
		os.Exit(1)
	}
}

func run(tracePath, policyKind string, cacheMiB int64, window uint64, penaltySource string, hitTime float64) error {
	if tracePath == "" {
		return errors.New("-trace is required")
	}
	stream, closer, err := trace.OpenFile(tracePath)
	if err != nil {
		return err
	}
	defer closer.Close()

	pol, err := sim.PolicySpec{Kind: policyKind}.Build()
	if err != nil {
		return err
	}
	if pol == nil {
		return fmt.Errorf("policy %q is a simulator-only engine, not a slab policy", policyKind)
	}
	c, err := cache.New(cache.Config{CacheBytes: cacheMiB << 20, WindowLen: window / 2}, pol)
	if err != nil {
		return err
	}

	model := penalty.Default()
	est := trace.NewPenaltyEstimator()
	useEstimator := false
	switch penaltySource {
	case "model":
	case "estimate":
		useEstimator = true
	default:
		return fmt.Errorf("unknown penalty source %q", penaltySource)
	}
	penaltyOf := func(r trace.Request, keyHash uint64) float64 {
		if useEstimator {
			return est.Estimate(r.Key)
		}
		return model.Of(keyHash, int(r.Size))
	}

	var win metrics.Window
	var series metrics.Series
	series.Name = policyKind
	var gets uint64
	hist := metrics.NewHistogram(0.0001, 6)

	fmt.Printf("# replaying %s under %s, cache %d MiB\n", tracePath, policyKind, cacheMiB)
	fmt.Println("gets\thit_ratio\tavg_service_s")
	for {
		r, err := stream.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		key := kv.KeyString(r.Key)
		switch r.Op {
		case kv.Get:
			h := kv.HashString(key)
			pen := penaltyOf(r, h)
			_, _, hit := c.Get(key, int(r.Size), pen, nil)
			svc := hitTime
			if !hit {
				svc = pen
				if useEstimator {
					est.ObserveGetMiss(r.Key, r.Time)
					// The refill SET is expected to appear in the
					// trace itself in estimate mode; in model mode
					// the replayer issues it, as the paper's
					// clients do.
				} else if err := c.Set(key, int(r.Size), pen, 0, nil); err != nil &&
					!errors.Is(err, cache.ErrNoSpace) && !errors.Is(err, cache.ErrTooLarge) {
					return err
				}
			}
			win.Add(hit, svc)
			hist.Add(svc)
			gets++
			if gets%window == 0 {
				fmt.Printf("%d\t%.4f\t%.6f\n", gets, win.HitRatio(), win.AvgService())
				series.Append(metrics.Point{GetsServed: gets, HitRatio: win.HitRatio(), AvgService: win.AvgService()})
				win.Reset()
			}
		case kv.Set:
			h := kv.HashString(key)
			if useEstimator {
				est.ObserveSet(r.Key, r.Time)
			}
			pen := penaltyOf(r, h)
			if err := c.Set(key, int(r.Size), pen, 0, nil); err != nil &&
				!errors.Is(err, cache.ErrNoSpace) && !errors.Is(err, cache.ErrTooLarge) {
				return err
			}
		case kv.Delete:
			c.Delete(key)
		}
	}
	st := c.Stats()
	fmt.Printf("# totals: gets=%d hits=%d misses=%d evictions=%d ghost_hits=%d\n",
		st.Gets, st.Hits, st.Misses, st.Evictions, st.GhostHits)
	fmt.Printf("# mean hit ratio %.4f, mean service %.6fs, service %s\n",
		series.MeanHitRatio(), series.MeanAvgService(), hist.Summary())
	return nil
}
