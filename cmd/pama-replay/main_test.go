package main

import (
	"errors"
	"io"
	"path/filepath"
	"testing"

	"pamakv/internal/trace"
	"pamakv/internal/workload"
)

func writeTestTrace(t *testing.T, n uint64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.trace")
	cfg := workload.ETC()
	cfg.Keys = 8192
	gen, err := workload.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	write, closer, err := trace.CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stream := &trace.Limit{S: gen, N: n}
	for {
		r, err := stream.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := closer.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReplayModelPenalties(t *testing.T) {
	path := writeTestTrace(t, 20_000)
	for _, kind := range []string{"pama", "memcached"} {
		if err := run(path, kind, 8, 5_000, "model", 0.0005); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
}

func TestReplayEstimatedPenalties(t *testing.T) {
	path := writeTestTrace(t, 20_000)
	if err := run(path, "psa", 8, 5_000, "estimate", 0.0005); err != nil {
		t.Fatal(err)
	}
}

func TestReplayErrors(t *testing.T) {
	if err := run("", "pama", 8, 1000, "model", 0.0005); err == nil {
		t.Fatal("missing trace path accepted")
	}
	if err := run("/nonexistent.trace", "pama", 8, 1000, "model", 0.0005); err == nil {
		t.Fatal("missing file accepted")
	}
	path := writeTestTrace(t, 100)
	if err := run(path, "bogus", 8, 1000, "model", 0.0005); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if err := run(path, "pama", 8, 1000, "psychic", 0.0005); err == nil {
		t.Fatal("unknown penalty source accepted")
	}
}
