package main

import "testing"

func TestRunSingleFigure(t *testing.T) {
	// Tiny scale; prints to stdout, which `go test` captures.
	if err := run("9", 0.0005, 1, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunFigurePlots(t *testing.T) {
	if err := run("4", 0.0005, 1, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig6AliasesFig5(t *testing.T) {
	if err := run("6", 0.0002, 1, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run("42", 1, 1, false); err == nil {
		t.Fatal("unknown figure accepted")
	}
}
