// Command pama-bench regenerates the paper's figures: it runs the scaled
// experiment matrix for a figure and prints the series as TSV (one row per
// window), plus a per-run summary. See DESIGN.md §4 for the figure index and
// EXPERIMENTS.md for recorded outputs.
//
// Usage:
//
//	pama-bench -fig 5              # ETC hit ratio + service time matrix
//	pama-bench -fig 1              # penalty-vs-size scatter (model sample)
//	pama-bench -fig all -scale 0.1 # every figure at a tenth of the scale
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"pamakv/internal/kv"
	"pamakv/internal/metrics"
	"pamakv/internal/plot"
	"pamakv/internal/server"
	"pamakv/internal/sim"
	"pamakv/internal/workload"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1,3,4,5,6,7,8,9,10, 'holes' (memory-holes ablation), 'tenants' (multi-tenant arbitration vs static partitions), 'churn' (cold rebalance vs penalty-ordered warm handoff on a node add), 'scaling' (GET-hit throughput vs GOMAXPROCS on the batched read path) or 'all'")
	scale := flag.Float64("scale", 1.0, "request-count scale relative to the 1:100-scaled defaults")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel simulation runs")
	doPlot := flag.Bool("plot", false, "render ASCII charts instead of raw TSV series")
	flag.Parse()

	if err := run(*fig, *scale, *workers, *doPlot); err != nil {
		fmt.Fprintln(os.Stderr, "pama-bench:", err)
		os.Exit(1)
	}
}

func run(fig string, scale float64, workers int, doPlot bool) error {
	ids := []string{fig}
	if fig == "all" {
		// "tenants" is not a matrix figure (it compares N partitioned runs
		// against one arbitrated run), so it rides alongside AllFigureIDs.
		ids = append(append([]string{"1"}, sim.AllFigureIDs()...), "tenants", "churn", "scaling")
	}
	done := map[string]bool{}
	for _, id := range ids {
		if done[id] {
			continue
		}
		done[id] = true
		switch id {
		case "1":
			figure1(doPlot)
		case "tenants":
			if err := figureTenants(scale); err != nil {
				return err
			}
		case "churn":
			if err := figureChurn(scale); err != nil {
				return err
			}
		case "scaling":
			if err := figureScaling(scale); err != nil {
				return err
			}
		case "6":
			id = "5" // figs 5 and 6 come from the same runs
			if done[id] {
				continue
			}
			done[id] = true
			fallthrough
		default:
			if id == "8" {
				id = "7"
				if done[id] {
					continue
				}
				done[id] = true
			}
			f, err := sim.FigureByID(id, scale)
			if err != nil {
				return err
			}
			fmt.Printf("## Figure %s: %s (%d runs, scale %.2f)\n", f.ID, f.Title, len(f.Specs), scale)
			start := time.Now()
			res, err := sim.RunMatrix(f.Specs, workers)
			if err != nil {
				return err
			}
			if doPlot {
				if err := renderPlots(f, res); err != nil {
					return err
				}
			} else if err := f.Render(os.Stdout, res); err != nil {
				return err
			}
			fmt.Printf("# figure %s wall time: %s\n\n", f.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}

// figureTenants runs the multi-tenant comparison: three statically
// partitioned caches against one arbitrated cache at ArbitratedFrac of
// their combined memory, rendered as the fig_tenants TSV.
func figureTenants(scale float64) error {
	fmt.Printf("## Figure tenants: penalty-aware arbitration vs static partitions (scale %.2f)\n", scale)
	start := time.Now()
	r, err := sim.RunTenantsFigure(scale)
	if err != nil {
		return err
	}
	if err := sim.RenderTenants(os.Stdout, r); err != nil {
		return err
	}
	fmt.Printf("# figure tenants wall time: %s\n\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// figureChurn runs the membership churn comparison: one node added to a
// live 3-node ring under cold rebalance, key-ordered warm handoff, and
// penalty-ordered warm handoff, rendered as the fig_churn TSV.
func figureChurn(scale float64) error {
	fmt.Printf("## Figure churn: cold rebalance vs penalty-ordered warm handoff (scale %.2f)\n", scale)
	start := time.Now()
	r, err := sim.RunChurnFigure(scale)
	if err != nil {
		return err
	}
	if err := sim.RenderChurn(os.Stdout, r); err != nil {
		return err
	}
	fmt.Printf("# figure churn wall time: %s\n\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// figureScaling measures served GET-hit throughput against GOMAXPROCS on an
// 8-shard engine with the batched read path (live TCP, pipelined clients —
// not a simulation), prints the sweep as TSV, and writes the committed
// artifacts results/fig_scaling.tsv and results/BENCH_scaling.json. scale
// stretches or shrinks the per-point measurement interval.
func figureScaling(scale float64) error {
	fmt.Printf("## Figure scaling: GET-hit throughput vs GOMAXPROCS, 8 shards, batched read path (scale %.2f, host cores %d)\n",
		scale, runtime.NumCPU())
	start := time.Now()
	opts := server.ScalingOptions{
		Warmup:  time.Duration(250 * scale * float64(time.Millisecond)),
		Measure: time.Duration(scale * float64(time.Second)),
	}
	// GOMAXPROCS above the physical core count is legal; on small hosts the
	// tail points simply go flat, and the host core count in the header says
	// how far the sweep is meaningful.
	rep, err := server.RunScalingSweep([]int{1, 2, 4, 8}, opts)
	if err != nil {
		return err
	}
	if err := server.WriteScalingTSV(os.Stdout, rep); err != nil {
		return err
	}
	if err := os.MkdirAll("results", 0o755); err != nil {
		return err
	}
	var tsv bytes.Buffer
	if err := server.WriteScalingTSV(&tsv, rep); err != nil {
		return err
	}
	if err := os.WriteFile("results/fig_scaling.tsv", tsv.Bytes(), 0o644); err != nil {
		return err
	}
	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("results/BENCH_scaling.json", append(doc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("# wrote results/fig_scaling.tsv and results/BENCH_scaling.json\n")
	fmt.Printf("# figure scaling wall time: %s\n\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// figure1 samples the penalty model over APP-distributed sizes and prints a
// (size, penalty) scatter — the reproduction of paper Fig. 1.
func figure1(doPlot bool) {
	cfg := workload.APP()
	fmt.Println("## Figure 1: miss penalty vs item size (APP penalty model sample)")
	var xs, ys []float64
	if !doPlot {
		fmt.Println("size_bytes\tpenalty_s")
	}
	for i := uint64(0); i < 20_000; i++ {
		h := kv.Mix64(i * 0x9e3779b97f4a7c15)
		size := cfg.SizeOf(h)
		pen := cfg.Penalty.Of(h, size)
		if doPlot {
			xs = append(xs, float64(size))
			ys = append(ys, pen)
		} else {
			fmt.Printf("%d\t%.4f\n", size, pen)
		}
	}
	if doPlot {
		plot.Scatter(os.Stdout, "miss penalty (s) vs item size (bytes), log-log", xs, ys)
	}
	fmt.Println()
}

// renderPlots draws each sub-plot group as two ASCII charts (hit ratio and
// service time), then the summary table.
func renderPlots(f *sim.Figure, res []*sim.Result) error {
	for gi, group := range f.Groups(res) {
		var series []*metrics.Series
		for _, r := range group {
			if r != nil {
				series = append(series, &r.Series)
			}
		}
		title := fmt.Sprintf("Fig %s group %d", f.ID, gi+1)
		if err := plot.Series(os.Stdout, title+" — hit ratio", plot.ColHitRatio, series); err != nil {
			return err
		}
		if err := plot.Series(os.Stdout, title+" — avg service time (s)", plot.ColAvgService, series); err != nil {
			return err
		}
	}
	return sim.WriteSummary(os.Stdout, res)
}
