package main

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"

	"pamakv/internal/cache"
	"pamakv/internal/core"
	"pamakv/internal/server"
)

func startTestServer(t *testing.T) string {
	t.Helper()
	c, err := cache.New(cache.Config{
		CacheBytes:  32 << 20,
		StoreValues: true,
		WindowLen:   50_000,
	}, core.New(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(c, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Shutdown)
	return ln.Addr().String()
}

// fakeRedis is a tiny in-process RESP2 server: enough of SET/GET over a
// string map to benchmark the redis driver without a redis binary.
func fakeRedis(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var mu sync.Mutex
	store := map[string][]byte{}
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				r := bufio.NewReader(nc)
				w := bufio.NewWriter(nc)
				readBulk := func() ([]byte, bool) {
					l, err := r.ReadString('\n')
					if err != nil || len(l) < 2 || l[0] != '$' {
						return nil, false
					}
					n, err := strconv.Atoi(strings.TrimRight(l[1:], "\r\n"))
					if err != nil || n < 0 {
						return nil, false
					}
					buf := make([]byte, n+2)
					if _, err := io.ReadFull(r, buf); err != nil {
						return nil, false
					}
					return buf[:n], true
				}
				for {
					l, err := r.ReadString('\n')
					if err != nil {
						return
					}
					if len(l) < 2 || l[0] != '*' {
						return
					}
					argc, err := strconv.Atoi(strings.TrimRight(l[1:], "\r\n"))
					if err != nil || argc < 1 {
						return
					}
					args := make([][]byte, 0, argc)
					ok := true
					for i := 0; i < argc; i++ {
						a, k := readBulk()
						if !k {
							ok = false
							break
						}
						args = append(args, a)
					}
					if !ok {
						return
					}
					switch strings.ToUpper(string(args[0])) {
					case "SET":
						mu.Lock()
						store[string(args[1])] = append([]byte(nil), args[2]...)
						mu.Unlock()
						w.WriteString("+OK\r\n")
					case "GET":
						mu.Lock()
						v, hit := store[string(args[1])]
						mu.Unlock()
						if hit {
							fmt.Fprintf(w, "$%d\r\n%s\r\n", len(v), v)
						} else {
							w.WriteString("$-1\r\n")
						}
					default:
						w.WriteString("-ERR unknown command\r\n")
					}
					if r.Buffered() == 0 {
						if err := w.Flush(); err != nil {
							return
						}
					}
				}
			}(nc)
		}
	}()
	return ln.Addr().String()
}

func testConfig(protocol, addr string) config {
	return config{
		protocol:   protocol,
		addrs:      []string{addr},
		ops:        []string{"set", "get", "mixed"},
		clients:    4,
		requests:   4000,
		valueSizes: []int{64, 512},
		keyspaces:  []int{512},
		pipeline:   8,
		getRatio:   0.9,
	}
}

// parseCSV splits the harness output into header and rows.
func parseCSV(t *testing.T, out string) (string, [][]string) {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 2 {
		t.Fatalf("csv too short:\n%s", out)
	}
	var rows [][]string
	for _, l := range lines[1:] {
		rows = append(rows, strings.Split(l, ","))
	}
	return lines[0], rows
}

// checkRows asserts the schema and sanity of every data row.
func checkRows(t *testing.T, header string, rows [][]string, wantRows int) {
	t.Helper()
	if header != csvHeader {
		t.Fatalf("header %q, want %q", header, csvHeader)
	}
	nFields := len(strings.Split(csvHeader, ","))
	if len(rows) != wantRows {
		t.Fatalf("%d rows, want %d", len(rows), wantRows)
	}
	for _, r := range rows {
		if len(r) != nFields {
			t.Fatalf("row has %d fields, want %d: %v", len(r), nFields, r)
		}
		ops, err := strconv.ParseFloat(r[6], 64)
		if err != nil || ops <= 0 {
			t.Fatalf("ops_per_sec %q not positive", r[6])
		}
		if errs, err := strconv.Atoi(r[11]); err != nil || errs != 0 {
			t.Fatalf("errors column %q, want 0", r[11])
		}
		if r[1] == "get" {
			hr, err := strconv.ParseFloat(r[10], 64)
			if err != nil || hr < 0.99 {
				t.Fatalf("get hit_ratio %q, want ~1 on a seeded keyspace", r[10])
			}
		}
	}
}

// TestIperfPamakvAndMemcTextIdenticalSchema is the acceptance check: the
// pamakv and memc-txt protocols, driven against the same pama-server, emit
// byte-identical CSV schemas and equally sane rows.
func TestIperfPamakvAndMemcTextIdenticalSchema(t *testing.T) {
	addr := startTestServer(t)

	var pama, memc strings.Builder
	if err := run(&pama, testConfig("pamakv", addr)); err != nil {
		t.Fatal(err)
	}
	if err := run(&memc, testConfig("memc-txt", addr)); err != nil {
		t.Fatal(err)
	}
	const wantRows = 2 * 1 * 3 // sizes × keyspaces × ops
	ph, prows := parseCSV(t, pama.String())
	mh, mrows := parseCSV(t, memc.String())
	checkRows(t, ph, prows, wantRows)
	checkRows(t, mh, mrows, wantRows)
	if ph != mh {
		t.Fatalf("schemas diverge:\n%s\n%s", ph, mh)
	}
	for i := range prows {
		if prows[i][1] != mrows[i][1] || prows[i][3] != mrows[i][3] || prows[i][4] != mrows[i][4] {
			t.Fatalf("row %d keys diverge: %v vs %v", i, prows[i], mrows[i])
		}
	}
}

// TestIperfShardedPamakv drives the pamakv protocol across two servers with
// client-side sharding.
func TestIperfShardedPamakv(t *testing.T) {
	addr1 := startTestServer(t)
	addr2 := startTestServer(t)
	cfg := testConfig("pamakv", "")
	cfg.addrs = []string{addr1, addr2}
	cfg.shard = "ring"
	cfg.valueSizes = []int{64}
	var sb strings.Builder
	if err := run(&sb, cfg); err != nil {
		t.Fatal(err)
	}
	h, rows := parseCSV(t, sb.String())
	checkRows(t, h, rows, 3)
}

// TestIperfRedisDriver runs the redis driver against the fake RESP server.
func TestIperfRedisDriver(t *testing.T) {
	addr := fakeRedis(t)
	cfg := testConfig("redis", addr)
	cfg.valueSizes = []int{64}
	var sb strings.Builder
	if err := run(&sb, cfg); err != nil {
		t.Fatal(err)
	}
	h, rows := parseCSV(t, sb.String())
	checkRows(t, h, rows, 3)
}

// TestIperfNoHeader checks -no-header output appends cleanly.
func TestIperfNoHeader(t *testing.T) {
	addr := startTestServer(t)
	cfg := testConfig("pamakv", addr)
	cfg.noHeader = true
	cfg.ops = []string{"set"}
	cfg.valueSizes = []int{64}
	var sb strings.Builder
	if err := run(&sb, cfg); err != nil {
		t.Fatal(err)
	}
	out := strings.TrimSpace(sb.String())
	if strings.Contains(out, "label,") {
		t.Fatalf("header leaked with noHeader:\n%s", out)
	}
	if lines := strings.Split(out, "\n"); len(lines) != 1 {
		t.Fatalf("want exactly one row, got %d:\n%s", len(lines), out)
	}
}

// TestIperfBadConfig covers the error paths.
func TestIperfBadConfig(t *testing.T) {
	var sb strings.Builder
	cfg := testConfig("nope", "127.0.0.1:1")
	if err := run(&sb, cfg); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	cfg = testConfig("memc-txt", "127.0.0.1:1")
	cfg.addrs = []string{"a", "b"}
	if err := run(&sb, cfg); err == nil {
		t.Fatal("memc-txt with two addrs accepted")
	}
	cfg = testConfig("pamakv", "127.0.0.1:1")
	cfg.ops = []string{"frob"}
	if err := run(&sb, cfg); err == nil {
		t.Fatal("unknown op accepted")
	}
	if _, err := parseIntList("12,x"); err == nil {
		t.Fatal("bad int list accepted")
	}
}
