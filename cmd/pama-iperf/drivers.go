package main

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"pamakv/internal/client"
)

// driverFactory maps -protocol to a per-worker Benchmarker constructor.
//
//   - pamakv: the repo's internal/client — pooled, pipelined, and (with
//     several -addrs) client-side sharded. This is the package under test.
//   - memc-txt: a deliberately minimal hand-rolled Memcached text client on
//     one connection — the neutral baseline every text-protocol server
//     (pamakv included) can be driven through.
//   - redis: a minimal RESP2 client (SET/GET/pipelined GET).
func driverFactory(cfg config) (factory, error) {
	switch cfg.protocol {
	case "pamakv":
		return func() (Benchmarker, error) { return newPamaBench(cfg) }, nil
	case "memc-txt":
		if len(cfg.addrs) != 1 {
			return nil, fmt.Errorf("memc-txt drives one server (got %d addrs)", len(cfg.addrs))
		}
		return func() (Benchmarker, error) { return newMemcText(cfg.addrs[0]) }, nil
	case "redis":
		if len(cfg.addrs) != 1 {
			return nil, fmt.Errorf("redis drives one server (got %d addrs)", len(cfg.addrs))
		}
		return func() (Benchmarker, error) { return newRespBench(cfg.addrs[0]) }, nil
	default:
		return nil, fmt.Errorf("unknown protocol %q (want pamakv, memc-txt, or redis)", cfg.protocol)
	}
}

// pamaBench adapts internal/client. Each worker owns a single-connection
// client so the connection count matches the other drivers; the pipeline
// rides the package's zero-allocation batch path.
type pamaBench struct {
	c *client.Client
	p *client.Pipeline
}

func newPamaBench(cfg config) (*pamaBench, error) {
	c, err := client.New(client.Config{
		Addrs:    cfg.addrs,
		Shard:    cfg.shard,
		VNodes:   cfg.vnodes,
		PoolSize: 1,
		Retries:  -1, // a benchmark reports failures, it does not paper over them
	})
	if err != nil {
		return nil, err
	}
	return &pamaBench{c: c, p: c.Pipeline()}, nil
}

func (b *pamaBench) Set(key string, value []byte) error { return b.c.Set(key, 0, 0, value) }

func (b *pamaBench) Get(key string) (bool, error) {
	_, err := b.c.Get(key)
	if errors.Is(err, client.ErrCacheMiss) {
		return false, nil
	}
	return err == nil, err
}

func (b *pamaBench) GetBatch(keys []string) (int, error) {
	for _, k := range keys {
		b.p.Get(k)
	}
	results, err := b.p.Exec()
	if err != nil {
		return 0, err
	}
	hits := 0
	var firstErr error
	for _, r := range results {
		switch {
		case r.Err == nil:
			hits++
		case errors.Is(r.Err, client.ErrCacheMiss):
		case firstErr == nil:
			firstErr = r.Err
		}
	}
	return hits, firstErr
}

func (b *pamaBench) Close() error {
	b.c.Close()
	return nil
}

// memcText is the baseline text-protocol driver: one connection, one bufio
// pair, the simplest correct parse. It speaks to memcached and pama-server
// alike.
type memcText struct {
	nc net.Conn
	r  *bufio.Reader
	w  *bufio.Writer
}

func newMemcText(addr string) (*memcText, error) {
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &memcText{nc: nc, r: bufio.NewReaderSize(nc, 1<<16), w: bufio.NewWriterSize(nc, 1<<16)}, nil
}

func (m *memcText) line() (string, error) {
	s, err := m.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(s, "\r\n"), nil
}

func (m *memcText) Set(key string, value []byte) error {
	fmt.Fprintf(m.w, "set %s 0 0 %d\r\n", key, len(value))
	m.w.Write(value)
	m.w.WriteString("\r\n")
	if err := m.w.Flush(); err != nil {
		return err
	}
	l, err := m.line()
	if err != nil {
		return err
	}
	if l != "STORED" {
		return fmt.Errorf("set: %s", l)
	}
	return nil
}

func (m *memcText) Get(key string) (bool, error) {
	fmt.Fprintf(m.w, "get %s\r\n", key)
	if err := m.w.Flush(); err != nil {
		return false, err
	}
	return m.readGet()
}

// readGet consumes one get response: zero or one VALUE block, then END.
func (m *memcText) readGet() (bool, error) {
	hit := false
	for {
		l, err := m.line()
		if err != nil {
			return false, err
		}
		switch {
		case l == "END":
			return hit, nil
		case strings.HasPrefix(l, "VALUE "):
			f := strings.Fields(l)
			if len(f) < 4 {
				return false, fmt.Errorf("bad VALUE line %q", l)
			}
			n, err := strconv.Atoi(f[3])
			if err != nil {
				return false, fmt.Errorf("bad VALUE length %q", l)
			}
			if _, err := m.r.Discard(n + 2); err != nil {
				return false, err
			}
			hit = true
		default:
			return false, fmt.Errorf("get: %s", l)
		}
	}
}

func (m *memcText) GetBatch(keys []string) (int, error) {
	for _, k := range keys {
		m.w.WriteString("get ")
		m.w.WriteString(k)
		m.w.WriteString("\r\n")
	}
	if err := m.w.Flush(); err != nil {
		return 0, err
	}
	hits := 0
	for range keys {
		hit, err := m.readGet()
		if err != nil {
			return hits, err
		}
		if hit {
			hits++
		}
	}
	return hits, nil
}

func (m *memcText) Close() error { return m.nc.Close() }

// respBench is a minimal RESP2 client: inline-free, bulk-string SET/GET,
// pipelined multi-GET. Enough protocol to benchmark redis and
// redis-compatible servers without pulling in a dependency.
type respBench struct {
	nc net.Conn
	r  *bufio.Reader
	w  *bufio.Writer
}

func newRespBench(addr string) (*respBench, error) {
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &respBench{nc: nc, r: bufio.NewReaderSize(nc, 1<<16), w: bufio.NewWriterSize(nc, 1<<16)}, nil
}

func (b *respBench) writeCmd(args ...[]byte) {
	fmt.Fprintf(b.w, "*%d\r\n", len(args))
	for _, a := range args {
		fmt.Fprintf(b.w, "$%d\r\n", len(a))
		b.w.Write(a)
		b.w.WriteString("\r\n")
	}
}

func (b *respBench) line() (string, error) {
	s, err := b.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(s, "\r\n"), nil
}

// readReply consumes one RESP reply, reporting whether it was a non-null
// value.
func (b *respBench) readReply() (bool, error) {
	l, err := b.line()
	if err != nil {
		return false, err
	}
	if l == "" {
		return false, fmt.Errorf("empty RESP line")
	}
	switch l[0] {
	case '+', ':':
		return true, nil
	case '-':
		return false, fmt.Errorf("redis: %s", l[1:])
	case '$':
		n, err := strconv.Atoi(l[1:])
		if err != nil {
			return false, fmt.Errorf("bad bulk length %q", l)
		}
		if n < 0 {
			return false, nil // null bulk: a miss
		}
		if _, err := b.r.Discard(n + 2); err != nil {
			return false, err
		}
		return true, nil
	default:
		return false, fmt.Errorf("unexpected RESP reply %q", l)
	}
}

func (b *respBench) Set(key string, value []byte) error {
	b.writeCmd([]byte("SET"), []byte(key), value)
	if err := b.w.Flush(); err != nil {
		return err
	}
	_, err := b.readReply()
	return err
}

func (b *respBench) Get(key string) (bool, error) {
	b.writeCmd([]byte("GET"), []byte(key))
	if err := b.w.Flush(); err != nil {
		return false, err
	}
	return b.readReply()
}

func (b *respBench) GetBatch(keys []string) (int, error) {
	for _, k := range keys {
		b.writeCmd([]byte("GET"), []byte(k))
	}
	if err := b.w.Flush(); err != nil {
		return 0, err
	}
	hits := 0
	for range keys {
		hit, err := b.readReply()
		if err != nil {
			return hits, err
		}
		if hit {
			hits++
		}
	}
	return hits, nil
}

func (b *respBench) Close() error { return b.nc.Close() }
