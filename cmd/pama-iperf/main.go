// Command pama-iperf is an iperf-style cross-backend cache benchmark: it
// drives pamakv, memcached, or redis through one Benchmarker interface and
// emits one CSV row per (operation, value size, keyspace) combination, so a
// single spreadsheet can hold pamakv and its competitors side by side.
//
//	pama-iperf -protocol pamakv   -addrs 127.0.0.1:11211 -value-bytes 100,1024
//	pama-iperf -protocol memc-txt -addrs 127.0.0.1:11212 -value-bytes 100,1024 -no-header
//	pama-iperf -protocol redis    -addrs 127.0.0.1:6379  -value-bytes 100,1024 -no-header
//
// Every protocol answers the same schema:
//
//	label,op,clients,value_bytes,keyspace,pipeline,ops_per_sec,p50_us,p99_us,p999_us,hit_ratio,errors
//
// Latency quantiles are per round trip: with -pipeline > 1 a round trip
// carries that many GETs, which is exactly how the competing servers are
// benchmarked too.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"pamakv/internal/metrics"
)

// csvHeader is the one schema every protocol emits.
const csvHeader = "label,op,clients,value_bytes,keyspace,pipeline,ops_per_sec,p50_us,p99_us,p999_us,hit_ratio,errors"

// Benchmarker is the one surface a backend driver must offer. Each worker
// goroutine owns one instance (its own connection), mirroring how the
// classic memtier/getset harnesses drive every backend.
type Benchmarker interface {
	// Set stores value under key.
	Set(key string, value []byte) error
	// Get reads key, reporting whether it hit.
	Get(key string) (hit bool, err error)
	// GetBatch pipelines the keys on one round trip and reports the hits.
	GetBatch(keys []string) (hits int, err error)
	Close() error
}

// factory builds one Benchmarker per worker.
type factory func() (Benchmarker, error)

// config is one full run: sweeps expand into individual benchCases.
type config struct {
	protocol string
	label    string
	addrs    []string
	shard    string
	vnodes   int

	ops        []string // phases, in order: set, get, mixed
	clients    int
	requests   int
	valueSizes []int
	keyspaces  []int
	pipeline   int
	getRatio   float64
	noHeader   bool
}

// row is one CSV output line.
type row struct {
	label      string
	op         string
	clients    int
	valueBytes int
	keyspace   int
	pipeline   int
	opsPerSec  float64
	p50us      float64
	p99us      float64
	p999us     float64
	hitRatio   float64
	errors     uint64
}

func (r row) csv() string {
	return fmt.Sprintf("%s,%s,%d,%d,%d,%d,%.0f,%.1f,%.1f,%.1f,%.4f,%d",
		r.label, r.op, r.clients, r.valueBytes, r.keyspace, r.pipeline,
		r.opsPerSec, r.p50us, r.p99us, r.p999us, r.hitRatio, r.errors)
}

func main() {
	var cfg config
	var addrs, ops, sizes, keyspaces string
	flag.StringVar(&cfg.protocol, "protocol", "pamakv", "backend protocol: pamakv, memc-txt, or redis")
	flag.StringVar(&cfg.label, "label", "", "CSV label column (defaults to the protocol)")
	flag.StringVar(&addrs, "addrs", "127.0.0.1:11211", "server address, or comma-separated members (pamakv protocol shards client-side)")
	flag.StringVar(&cfg.shard, "shard", "ring", "sharding selector for multi-address pamakv: ring or rendezvous")
	flag.IntVar(&cfg.vnodes, "vnodes", 0, "virtual nodes per ring member (0 = default; match the servers')")
	flag.StringVar(&ops, "ops", "set,get", "benchmark phases, comma-separated: set, get, mixed")
	flag.IntVar(&cfg.clients, "clients", 8, "concurrent client connections")
	flag.IntVar(&cfg.requests, "requests", 100_000, "requests per phase (split across clients)")
	flag.StringVar(&sizes, "value-bytes", "100", "value sizes to sweep, comma-separated")
	flag.StringVar(&keyspaces, "keys", "10000", "keyspace sizes to sweep, comma-separated")
	flag.IntVar(&cfg.pipeline, "pipeline", 1, "GETs per pipelined round trip (1 = no pipelining)")
	flag.Float64Var(&cfg.getRatio, "get-ratio", 0.9, "GET fraction of the mixed phase")
	flag.BoolVar(&cfg.noHeader, "no-header", false, "suppress the CSV header (appending to an existing file)")
	flag.Parse()

	cfg.addrs = strings.Split(addrs, ",")
	cfg.ops = strings.Split(ops, ",")
	var err error
	if cfg.valueSizes, err = parseIntList(sizes); err != nil {
		fmt.Fprintf(os.Stderr, "pama-iperf: -value-bytes: %v\n", err)
		os.Exit(2)
	}
	if cfg.keyspaces, err = parseIntList(keyspaces); err != nil {
		fmt.Fprintf(os.Stderr, "pama-iperf: -keys: %v\n", err)
		os.Exit(2)
	}
	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "pama-iperf: %v\n", err)
		os.Exit(1)
	}
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad entry %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// run executes every (value size, keyspace, op) combination and writes the
// CSV to w. Factored from main for the tests.
func run(w io.Writer, cfg config) error {
	if cfg.label == "" {
		cfg.label = cfg.protocol
	}
	if cfg.clients <= 0 || cfg.requests <= 0 || cfg.pipeline <= 0 {
		return fmt.Errorf("clients, requests, and pipeline must be positive")
	}
	mk, err := driverFactory(cfg)
	if err != nil {
		return err
	}
	if !cfg.noHeader {
		if _, err := fmt.Fprintln(w, csvHeader); err != nil {
			return err
		}
	}
	for _, vs := range cfg.valueSizes {
		for _, ks := range cfg.keyspaces {
			for _, op := range cfg.ops {
				r, err := runCase(cfg, mk, op, vs, ks)
				if err != nil {
					return fmt.Errorf("%s/%s vs=%d ks=%d: %w", cfg.protocol, op, vs, ks, err)
				}
				if _, err := fmt.Fprintln(w, r.csv()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// runCase benchmarks one (op, value size, keyspace) cell: cfg.clients
// workers split cfg.requests operations, each worker on its own driver
// instance, latencies merged across workers.
func runCase(cfg config, mk factory, op string, valueBytes, keyspace int) (row, error) {
	switch op {
	case "set", "get", "mixed":
	default:
		return row{}, fmt.Errorf("unknown op %q", op)
	}
	value := make([]byte, valueBytes)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	// GET and mixed phases read a populated keyspace; seed it first so hit
	// ratio measures the server, not the warmup.
	if op != "set" {
		if err := seed(cfg, mk, value, keyspace); err != nil {
			return row{}, err
		}
	}

	type workerOut struct {
		hist       *metrics.Histogram
		ops        uint64
		gets, hits uint64
		errs       uint64
		err        error
	}
	outs := make([]workerOut, cfg.clients)
	perWorker := cfg.requests / cfg.clients
	if perWorker == 0 {
		perWorker = 1
	}
	var wg sync.WaitGroup
	start := time.Now()
	for wi := 0; wi < cfg.clients; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			out := &outs[wi]
			out.hist = metrics.NewHistogram(1e-6, 7)
			b, err := mk()
			if err != nil {
				out.err = err
				return
			}
			defer b.Close()
			rng := rand.New(rand.NewSource(int64(wi)*7919 + 1))
			batch := make([]string, 0, cfg.pipeline)
			for done := 0; done < perWorker; {
				switch {
				case op == "set" || (op == "mixed" && rng.Float64() >= cfg.getRatio):
					key := benchKey(rng.Intn(keyspace))
					t0 := time.Now()
					err := b.Set(key, value)
					out.hist.Add(time.Since(t0).Seconds())
					out.ops++
					done++
					if err != nil {
						out.errs++
					}
				case cfg.pipeline == 1:
					key := benchKey(rng.Intn(keyspace))
					t0 := time.Now()
					hit, err := b.Get(key)
					out.hist.Add(time.Since(t0).Seconds())
					out.ops++
					out.gets++
					done++
					switch {
					case err != nil:
						out.errs++
					case hit:
						out.hits++
					}
				default:
					n := cfg.pipeline
					if left := perWorker - done; n > left {
						n = left
					}
					batch = batch[:0]
					for i := 0; i < n; i++ {
						batch = append(batch, benchKey(rng.Intn(keyspace)))
					}
					t0 := time.Now()
					hits, err := b.GetBatch(batch)
					out.hist.Add(time.Since(t0).Seconds())
					out.ops += uint64(n)
					out.gets += uint64(n)
					done += n
					if err != nil {
						out.errs++
					}
					out.hits += uint64(hits)
				}
			}
		}(wi)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	total := metrics.NewHistogram(1e-6, 7)
	var ops, gets, hits, errs uint64
	for i := range outs {
		if outs[i].err != nil {
			return row{}, outs[i].err
		}
		if err := total.Merge(outs[i].hist); err != nil {
			return row{}, err
		}
		ops += outs[i].ops
		gets += outs[i].gets
		hits += outs[i].hits
		errs += outs[i].errs
	}
	hitRatio := 0.0
	if gets > 0 {
		hitRatio = float64(hits) / float64(gets)
	}
	return row{
		label:      cfg.label,
		op:         op,
		clients:    cfg.clients,
		valueBytes: valueBytes,
		keyspace:   keyspace,
		pipeline:   cfg.pipeline,
		opsPerSec:  float64(ops) / elapsed,
		p50us:      total.Quantile(0.50) * 1e6,
		p99us:      total.Quantile(0.99) * 1e6,
		p999us:     total.Quantile(0.999) * 1e6,
		hitRatio:   hitRatio,
		errors:     errs,
	}, nil
}

// seed stores every key of the keyspace once, split across a few parallel
// connections so big sweeps warm up quickly.
func seed(cfg config, mk factory, value []byte, keyspace int) error {
	seeders := cfg.clients
	if seeders > 8 {
		seeders = 8
	}
	errs := make([]error, seeders)
	var wg sync.WaitGroup
	for wi := 0; wi < seeders; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			b, err := mk()
			if err != nil {
				errs[wi] = err
				return
			}
			defer b.Close()
			for k := wi; k < keyspace; k += seeders {
				if err := b.Set(benchKey(k), value); err != nil {
					errs[wi] = fmt.Errorf("seed %s: %w", benchKey(k), err)
					return
				}
			}
		}(wi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// benchKey names the i-th key of the keyspace. Fixed width keeps request
// sizes uniform across the sweep.
func benchKey(i int) string { return fmt.Sprintf("iperf%08d", i) }
