package main

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"
)

// testOpts returns the flag defaults scaled down for tests.
func testOpts(addr, policy string, shards int) options {
	return options{
		addr:       addr,
		cacheMiB:   16,
		policyKind: policy,
		shards:     shards,
	}
}

func TestRunRejectsUnknownPolicy(t *testing.T) {
	if err := run(testOpts("127.0.0.1:0", "bogus", 1)); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestRunRejectsBadAddr(t *testing.T) {
	if err := run(testOpts("256.256.256.256:99999", "pama", 1)); err == nil {
		t.Fatal("bad address accepted")
	}
}

// TestRunServesTraffic boots the real binary path (run blocks in
// ListenAndServe, so it runs in a goroutine) on an ephemeral port, then
// talks protocol to it. Shutdown is exercised via the listener teardown at
// process exit; the goroutine is intentionally left serving.
func TestRunServesTraffic(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // free the port for run; a tiny race window is acceptable in tests
	errc := make(chan error, 1)
	go func() { errc <- run(testOpts(addr, "pama", 2)) }()

	var conn net.Conn
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err = net.Dial("tcp", addr)
		if err == nil {
			break
		}
		select {
		case e := <-errc:
			t.Fatalf("server exited early: %v", e)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	conn.Write([]byte("set k 0 0 5\r\nhello\r\nget k\r\n"))
	line, _ := r.ReadString('\n')
	if !strings.HasPrefix(line, "STORED") {
		t.Fatalf("set -> %q", line)
	}
	line, _ = r.ReadString('\n')
	if !strings.HasPrefix(line, "VALUE k 0 5") {
		t.Fatalf("get -> %q", line)
	}
}
