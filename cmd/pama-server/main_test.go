package main

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"
)

// testOpts returns the flag defaults scaled down for tests.
func testOpts(addr, policy string, shards int) options {
	return options{
		addr:       addr,
		cacheMiB:   16,
		policyKind: policy,
		shards:     shards,
	}
}

// TestValidateFlagCombinations is the flag-compatibility table: every
// refused combination must fail fast with a message naming the flags,
// and the legitimate combinations must pass.
func TestValidateFlagCombinations(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(o *options)
		wantErr string // "" = combination is valid
	}{
		{"defaults", func(o *options) {}, ""},
		{"static peers", func(o *options) { o.peers = "a:1,b:2" }, ""},
		{"join", func(o *options) { o.join = "a:1" }, ""},
		{"peers with membership", func(o *options) { o.peers = "a:1,b:2"; o.membershipOn = true }, ""},
		{"tenants alone", func(o *options) { o.tenants = "web:8:1" }, ""},
		{"shards alone", func(o *options) { o.shards = 4 }, ""},
		{"snapshot single shard", func(o *options) { o.snapshot = "/tmp/x" }, ""},
		{"snapshot multi shard", func(o *options) { o.snapshot = "/tmp/x"; o.shards = 2 }, "-snapshot"},
		{"tenants with shards", func(o *options) { o.tenants = "web:8:1"; o.shards = 2 }, "-tenants"},
		{"tenants with snapshot", func(o *options) { o.tenants = "web:8:1"; o.snapshot = "/tmp/x" }, "-snapshot"},
		{"tenants with peers", func(o *options) { o.tenants = "web:8:1"; o.peers = "a:1,b:2" }, "-tenants"},
		{"tenants with join", func(o *options) { o.tenants = "web:8:1"; o.join = "a:1" }, "-tenants"},
		{"tenants with membership only", func(o *options) { o.tenants = "web:8:1"; o.membershipOn = true }, "-tenants"},
		{"join with peers", func(o *options) { o.join = "a:1"; o.peers = "a:1,b:2" }, "-join"},
		{"membership without cluster", func(o *options) { o.membershipOn = true }, "-membership"},
		{"secret with membership", func(o *options) { o.peers = "a:1,b:2"; o.membershipOn = true; o.memSecret = "tok" }, ""},
		{"secret with join", func(o *options) { o.join = "a:1"; o.memSecret = "tok" }, ""},
		{"secret without membership", func(o *options) { o.memSecret = "tok" }, "-membership-secret"},
		{"secret on static peers", func(o *options) { o.peers = "a:1,b:2"; o.memSecret = "tok" }, "-membership-secret"},
		{"secret with whitespace", func(o *options) { o.join = "a:1"; o.memSecret = "bad tok" }, "-membership-secret"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := testOpts("127.0.0.1:0", "pama", 1)
			tc.mutate(&o)
			err := validate(o)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid combination refused: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid combination accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name %q", err, tc.wantErr)
			}
		})
	}
}

// TestNormalizeShardsDefault covers the soft -shards default: NumCPU-many
// shards unless the operator asked otherwise, yielding to single-engine
// features (-snapshot, -tenants) when the count came from the default, and
// standing firm (so validate can refuse) when it was explicit.
func TestNormalizeShardsDefault(t *testing.T) {
	cases := []struct {
		name       string
		mutate     func(o *options)
		wantShards int
		wantErr    bool // from validate(normalize(o))
	}{
		{"default alone keeps core count", func(o *options) { o.shards = 8 }, 8, false},
		{"default yields to snapshot", func(o *options) { o.shards = 8; o.snapshot = "/tmp/x" }, 1, false},
		{"default yields to tenants", func(o *options) { o.shards = 8; o.tenants = "web:8:1" }, 1, false},
		{"explicit survives", func(o *options) { o.shards = 8; o.shardsSet = true }, 8, false},
		{"explicit conflicts with snapshot", func(o *options) { o.shards = 8; o.shardsSet = true; o.snapshot = "/tmp/x" }, 8, true},
		{"explicit conflicts with tenants", func(o *options) { o.shards = 8; o.shardsSet = true; o.tenants = "web:8:1" }, 8, true},
		{"explicit single shard with snapshot", func(o *options) { o.shards = 1; o.shardsSet = true; o.snapshot = "/tmp/x" }, 1, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := testOpts("127.0.0.1:0", "pama", 1)
			tc.mutate(&o)
			o = normalize(o)
			if o.shards != tc.wantShards {
				t.Fatalf("normalize left shards = %d, want %d", o.shards, tc.wantShards)
			}
			if err := validate(o); (err != nil) != tc.wantErr {
				t.Fatalf("validate after normalize: err = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

// TestRunRejectsTenantsWithCluster drives the satellite end to end: the
// full run() path must refuse the combination before binding anything.
func TestRunRejectsTenantsWithCluster(t *testing.T) {
	o := testOpts("127.0.0.1:0", "pama", 1)
	o.tenants = "web:8:1"
	o.peers = "127.0.0.1:11311,127.0.0.1:11312"
	err := run(o)
	if err == nil {
		t.Fatal("-tenants with -peers accepted")
	}
	if !strings.Contains(err.Error(), "-tenants") || !strings.Contains(err.Error(), "cluster") {
		t.Fatalf("error %q does not explain the refusal", err)
	}
}

func TestRunRejectsUnknownPolicy(t *testing.T) {
	if err := run(testOpts("127.0.0.1:0", "bogus", 1)); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestRunRejectsBadAddr(t *testing.T) {
	if err := run(testOpts("256.256.256.256:99999", "pama", 1)); err == nil {
		t.Fatal("bad address accepted")
	}
}

// TestRunServesTraffic boots the real binary path (run blocks in
// ListenAndServe, so it runs in a goroutine) on an ephemeral port, then
// talks protocol to it. Shutdown is exercised via the listener teardown at
// process exit; the goroutine is intentionally left serving.
func TestRunServesTraffic(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // free the port for run; a tiny race window is acceptable in tests
	o := testOpts(addr, "pama", 2)
	o.accessBuffer = 64 // serve through the batched read path
	errc := make(chan error, 1)
	go func() { errc <- run(o) }()

	var conn net.Conn
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err = net.Dial("tcp", addr)
		if err == nil {
			break
		}
		select {
		case e := <-errc:
			t.Fatalf("server exited early: %v", e)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	conn.Write([]byte("set k 0 0 5\r\nhello\r\nget k\r\n"))
	line, _ := r.ReadString('\n')
	if !strings.HasPrefix(line, "STORED") {
		t.Fatalf("set -> %q", line)
	}
	line, _ = r.ReadString('\n')
	if !strings.HasPrefix(line, "VALUE k 0 5") {
		t.Fatalf("get -> %q", line)
	}
}
