// Command pama-server runs the cache as a network service speaking the
// Memcached ASCII protocol, with a selectable allocation policy and an
// optional simulated read-through back end that makes miss penalties felt
// in real (scaled) time.
//
// Usage:
//
//	pama-server -addr :11211 -cache 256 -policy pama
//	pama-server -addr :11211 -readthrough -penalty-scale 0.05
//
// Try it with a plain TCP client:
//
//	printf 'set k 0 0 5\r\nhello\r\nget k\r\nquit\r\n' | nc localhost 11211
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"pamakv/internal/backend"
	"pamakv/internal/cache"
	"pamakv/internal/penalty"
	"pamakv/internal/server"
	"pamakv/internal/shard"
	"pamakv/internal/sim"
	"pamakv/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:11211", "listen address")
	cacheMiB := flag.Int64("cache", 256, "cache size in MiB")
	policyKind := flag.String("policy", "pama", "policy: memcached, psa, pama, pre-pama, twemcache, facebook-age, mrc-hit, mrc-time, lama-hit, lama-time")
	readthrough := flag.Bool("readthrough", false, "serve GET misses from a simulated back end")
	penaltyScale := flag.Float64("penalty-scale", 0.02, "fraction of the simulated penalty slept in real time (read-through mode)")
	shards := flag.Int("shards", 1, "hash shards (rounded up to a power of two)")
	snapshot := flag.String("snapshot", "", "snapshot file: loaded at startup if present, saved at shutdown (single-shard only)")
	flag.Parse()

	if err := run(*addr, *cacheMiB, *policyKind, *readthrough, *penaltyScale, *shards, *snapshot); err != nil {
		fmt.Fprintln(os.Stderr, "pama-server:", err)
		os.Exit(1)
	}
}

func run(addr string, cacheMiB int64, policyKind string, readthrough bool, penaltyScale float64, shards int, snapshot string) error {
	if pol, err := (sim.PolicySpec{Kind: policyKind}).Build(); err != nil {
		return err // validate the kind before building per-shard copies
	} else if pol == nil {
		return fmt.Errorf("policy %q is a simulator-only engine, not a slab policy", policyKind)
	}
	cfg := cache.Config{
		CacheBytes:  cacheMiB << 20,
		StoreValues: true,
		WindowLen:   100_000,
	}
	if snapshot != "" && shards > 1 {
		return fmt.Errorf("-snapshot requires a single shard")
	}
	var c server.Store
	if shards > 1 {
		g, err := shard.New(cfg, shards, func() cache.Policy {
			p, _ := (sim.PolicySpec{Kind: policyKind}).Build()
			return p
		})
		if err != nil {
			return err
		}
		c = g
	} else {
		pol, _ := (sim.PolicySpec{Kind: policyKind}).Build()
		eng, err := cache.New(cfg, pol)
		if err != nil {
			return err
		}
		c = eng
	}
	if snapshot != "" {
		if eng, ok := c.(*cache.Cache); ok {
			if f, err := os.Open(snapshot); err == nil {
				if err := eng.LoadSnapshot(f); err != nil {
					f.Close()
					return fmt.Errorf("loading snapshot: %w", err)
				}
				f.Close()
				log.Printf("pama-server: restored %d items from %s", eng.Items(), snapshot)
			}
		}
	}
	opts := server.Options{Logger: log.New(os.Stderr, "pama-server: ", log.LstdFlags)}
	if readthrough {
		cfg := workload.ETC()
		opts.Backend = backend.NewRealTime(penalty.Default(), cfg.SizeOf, penaltyScale)
	}
	srv := server.New(c, opts)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		log.Println("pama-server: shutting down")
		srv.Shutdown()
		if snapshot != "" {
			if eng, ok := c.(*cache.Cache); ok {
				if f, err := os.Create(snapshot); err == nil {
					if err := eng.SaveSnapshot(f); err != nil {
						log.Printf("pama-server: snapshot save failed: %v", err)
					}
					f.Close()
					log.Printf("pama-server: snapshot saved to %s", snapshot)
				}
			}
		}
	}()

	log.Printf("pama-server: %s policy, %d MiB, %d shard(s), listening on %s (readthrough=%v)",
		policyKind, cacheMiB, shards, addr, readthrough)
	return srv.ListenAndServe(addr)
}
