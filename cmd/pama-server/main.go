// Command pama-server runs the cache as a network service speaking the
// Memcached ASCII protocol, with a selectable allocation policy and an
// optional simulated read-through back end that makes miss penalties felt
// in real (scaled) time.
//
// Usage:
//
//	pama-server -addr :11211 -cache 256 -policy pama
//	pama-server -addr :11211 -readthrough -penalty-scale 0.05
//	pama-server -readthrough -fault-err-rate 0.2 -fetch-retries 2 -serve-stale
//	pama-server -addr :11211 -admin-addr 127.0.0.1:11212   # /metrics, /statsz, pprof
//
// Cluster mode — three nodes sharing one key space by consistent hashing,
// each node run with the full member list and itself as -self:
//
//	pama-server -addr :11211 -peers :11211,:11311,:11411 -self :11211
//	pama-server -addr :11311 -peers :11211,:11311,:11411 -self :11311
//	pama-server -addr :11411 -peers :11211,:11311,:11411 -self :11411
//
// Try it with a plain TCP client:
//
//	printf 'set k 0 0 5\r\nhello\r\nget k\r\nquit\r\n' | nc localhost 11211
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"pamakv/internal/backend"
	"pamakv/internal/cache"
	"pamakv/internal/cluster"
	"pamakv/internal/geom"
	"pamakv/internal/kv"
	"pamakv/internal/membership"
	"pamakv/internal/overload"
	"pamakv/internal/penalty"
	"pamakv/internal/server"
	"pamakv/internal/shard"
	"pamakv/internal/sim"
	"pamakv/internal/tenant"
	"pamakv/internal/workload"
)

// options gathers every flag so run stays testable.
type options struct {
	addr         string
	cacheMiB     int64
	policyKind   string
	adaptiveGeom bool
	readthrough  bool
	penaltyScale float64
	shards       int
	shardsSet    bool // -shards given explicitly (vs. the NumCPU default)
	accessBuffer int
	snapshot     string

	adminAddr      string
	adminSeriesInt time.Duration

	tenants         string
	arbiterInterval time.Duration

	readTimeout  time.Duration
	writeTimeout time.Duration
	maxConns     int
	maxPipeline  int
	drainTimeout time.Duration

	fetchTimeout time.Duration
	fetchRetries int
	fetchBackoff time.Duration
	serveStale   bool
	staleMiB     int64

	overloadOn  bool
	targetP99   time.Duration
	maxInflight int

	faultErrRate    float64
	faultSpikeRate  float64
	faultSpikeSleep time.Duration
	faultSeed       uint64

	peers        string
	self         string
	clusterHash  string
	vnodes       int
	hotCacheMiB  int64
	hotCacheTTL  time.Duration
	peerPool     int
	peerRetries  int
	peerOpTO     time.Duration
	hedgeEnabled bool

	join          string
	membershipOn  bool
	probeInterval time.Duration
	evictAfter    int
	evictCooldown time.Duration
	handoffRate   int
	joinTimeout   time.Duration
	memSecret     string
}

// normalize resolves the soft flag defaults before validation. -shards
// defaults to the core count, but -snapshot and -tenants require a single
// engine; when the operator did not ask for sharding explicitly the default
// quietly yields rather than tripping validate. An explicit -shards N>1 with
// either flag still fails loudly — that conflict is the operator's to resolve.
func normalize(o options) options {
	if !o.shardsSet && (o.snapshot != "" || o.tenants != "") {
		o.shards = 1
	}
	return o
}

// validate rejects flag combinations with undefined behavior before any
// resource is built. Kept as a pure function of options so the rules are
// table-testable.
func validate(o options) error {
	inCluster := o.peers != "" || o.join != "" || o.membershipOn
	switch {
	case o.snapshot != "" && o.shards > 1:
		return fmt.Errorf("-snapshot requires a single shard")
	case o.tenants != "" && o.shards > 1:
		return fmt.Errorf("-tenants and -shards are mutually exclusive (each tenant owns one engine)")
	case o.tenants != "" && o.snapshot != "":
		return fmt.Errorf("-snapshot is not supported with -tenants")
	case o.tenants != "" && inCluster:
		// The ring hashes raw keys while tenants route by prefix; every
		// node would need an identical registry and per-tenant budgets
		// would fight the ring's key placement. Until tenants span
		// nodes (see ROADMAP), the combination is refused rather than
		// left undefined.
		return fmt.Errorf("-tenants cannot be combined with cluster mode (-peers/-join): tenant routing and ring ownership would fight over key placement")
	case o.join != "" && o.peers != "":
		return fmt.Errorf("-join and -peers are mutually exclusive: -join learns the member list from the seed, -peers states it")
	case o.membershipOn && o.peers == "" && o.join == "":
		return fmt.Errorf("-membership requires cluster mode (-peers or -join)")
	case o.memSecret != "" && !o.membershipOn && o.join == "":
		return fmt.Errorf("-membership-secret requires runtime membership (-membership or -join)")
	case strings.ContainsAny(o.memSecret, " \t\r\n"):
		return fmt.Errorf("-membership-secret must not contain whitespace (it rides the control-key wire format as one token)")
	}
	return nil
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:11211", "listen address")
	flag.Int64Var(&o.cacheMiB, "cache", 256, "cache size in MiB")
	flag.StringVar(&o.policyKind, "policy", "pama", "policy: memcached, psa, pama, pre-pama, twemcache, facebook-age, mrc-hit, mrc-time, lama-hit, lama-time, camp, size-aware")
	flag.BoolVar(&o.adaptiveGeom, "adaptive-geometry", false, "learn slab-class boundaries online from observed sizes and re-slab live")
	flag.BoolVar(&o.readthrough, "readthrough", false, "serve GET misses from a simulated back end")
	flag.Float64Var(&o.penaltyScale, "penalty-scale", 0.02, "fraction of the simulated penalty slept in real time (read-through mode)")
	flag.IntVar(&o.shards, "shards", runtime.NumCPU(), "hash shards (rounded up to a power of two; defaults to the core count)")
	flag.IntVar(&o.accessBuffer, "access-buffer", 256, "per-engine deferred-access ring capacity for batched GET-hit maintenance (0 = immediate mode)")
	flag.StringVar(&o.snapshot, "snapshot", "", "snapshot file: loaded at startup if present, saved at shutdown (single-shard only)")
	flag.StringVar(&o.adminAddr, "admin-addr", "", "HTTP observability listener (/metrics, /statsz, /series, /debug/pprof); empty disables")
	flag.DurationVar(&o.adminSeriesInt, "admin-series-interval", 5*time.Second, "sampling window of the admin /series recorder (0 disables the series)")
	flag.StringVar(&o.tenants, "tenants", "", `multi-tenant mode: comma-separated specs "name[:reservedMiB[:weight[:sloClass]]]", or @path to a spec file; keys route by "tenant/" prefix`)
	flag.DurationVar(&o.arbiterInterval, "arbiter-interval", 2*time.Second, "period of the tenant slab arbiter (with -tenants; 0 freezes the initial split)")

	flag.DurationVar(&o.readTimeout, "read-timeout", 5*time.Minute, "per-connection idle deadline (0 = none)")
	flag.DurationVar(&o.writeTimeout, "write-timeout", 30*time.Second, "per-flush write deadline (0 = none)")
	flag.IntVar(&o.maxConns, "max-conns", 1024, "max concurrent connections; excess dials wait in the kernel backlog (0 = unlimited)")
	flag.IntVar(&o.maxPipeline, "max-pipeline", server.DefaultMaxPipeline, "max pipelined requests served per response flush")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", server.DefaultDrainTimeout, "graceful-shutdown drain window before force-closing connections")

	flag.DurationVar(&o.fetchTimeout, "fetch-timeout", 0, "per-attempt backend fetch deadline in read-through mode (0 = none)")
	flag.IntVar(&o.fetchRetries, "fetch-retries", 0, "extra attempts for a failed backend fetch")
	flag.DurationVar(&o.fetchBackoff, "fetch-backoff", 2*time.Millisecond, "sleep before the first fetch retry; doubles per retry")
	flag.BoolVar(&o.serveStale, "serve-stale", false, "serve recently evicted/expired values when the backend fails (read-through mode)")
	flag.Int64Var(&o.staleMiB, "stale-buffer", 1, "serve-stale buffer budget in MiB")

	flag.BoolVar(&o.overloadOn, "overload", false, "penalty-aware admission control: adaptive concurrency limit, bounded queue, load shedding by penalty subclass")
	flag.DurationVar(&o.targetP99, "target-p99", overload.DefaultTarget, "p99 service-latency target the adaptive concurrency limit steers toward (with -overload)")
	flag.IntVar(&o.maxInflight, "max-inflight", overload.DefaultMaxInflight, "hard ceiling on concurrently admitted requests (with -overload)")

	flag.Float64Var(&o.faultErrRate, "fault-err-rate", 0, "inject backend fetch failures at this rate [0,1] (read-through mode)")
	flag.Float64Var(&o.faultSpikeRate, "fault-spike-rate", 0, "inject backend latency spikes at this rate [0,1]")
	flag.DurationVar(&o.faultSpikeSleep, "fault-spike-sleep", 50*time.Millisecond, "extra latency per injected spike")
	flag.Uint64Var(&o.faultSeed, "fault-seed", 1, "deterministic seed for fault injection draws")

	flag.StringVar(&o.peers, "peers", "", "comma-separated cluster member list (enables cluster mode; must include -self)")
	flag.StringVar(&o.self, "self", "", "this node's address as it appears in -peers (defaults to -addr)")
	flag.StringVar(&o.clusterHash, "cluster-hash", "ring", "owner selection scheme: ring or rendezvous")
	flag.IntVar(&o.vnodes, "vnodes", cluster.DefaultVNodes, "virtual nodes per member on the consistent-hash ring")
	flag.Int64Var(&o.hotCacheMiB, "hot-cache", 4, "non-owner hot-item mini-cache budget in MiB (0 disables)")
	flag.DurationVar(&o.hotCacheTTL, "hot-cache-ttl", cluster.DefaultHotCacheTTL, "max staleness of a hot-cached forwarded copy")
	flag.IntVar(&o.peerPool, "peer-pool", cluster.DefaultPoolSize, "idle pooled connections per peer")
	flag.IntVar(&o.peerRetries, "peer-retries", cluster.DefaultRetries, "extra attempts for a failed peer request (-1 disables)")
	flag.DurationVar(&o.peerOpTO, "peer-timeout", cluster.DefaultOpTimeout, "per-attempt peer round-trip deadline")
	flag.BoolVar(&o.hedgeEnabled, "hedge", true, "hedge peer GETs of expensive keys (penalty-aware duplicate reads)")

	flag.StringVar(&o.join, "join", "", "join a live cluster via this seed member's data address (runtime membership; mutually exclusive with -peers)")
	flag.BoolVar(&o.membershipOn, "membership", false, "enable runtime membership (health probes, auto-eviction, warm handoff) on a static -peers cluster; implied by -join")
	flag.DurationVar(&o.probeInterval, "probe-interval", membership.DefaultProbeInterval, "health-probe cadence for runtime membership (<0 disables probing)")
	flag.IntVar(&o.evictAfter, "evict-after", membership.DefaultEvictAfter, "consecutive failed probes before a member is auto-evicted")
	flag.DurationVar(&o.evictCooldown, "evict-cooldown", membership.DefaultEvictCooldown, "minimum gap between auto-evictions proposed by this node")
	flag.IntVar(&o.handoffRate, "handoff-rate", membership.DefaultHandoffRate, "warm-handoff streaming rate in keys/sec (-1 = cold rebalance, no handoff)")
	flag.DurationVar(&o.joinTimeout, "join-timeout", 30*time.Second, "how long -join retries reaching the seed")
	flag.StringVar(&o.memSecret, "membership-secret", "", "shared token gating the mutating membership control keys (apply/join); must match on every member — see the membership trust model")
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "shards" {
			o.shardsSet = true
		}
	})
	o = normalize(o)

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "pama-server:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	if err := validate(o); err != nil {
		return err
	}
	if pol, err := (sim.PolicySpec{Kind: o.policyKind}).Build(); err != nil {
		return err // validate the kind before building per-shard copies
	} else if pol == nil {
		return fmt.Errorf("policy %q is a simulator-only engine, not a slab policy", o.policyKind)
	}
	cfg := cache.Config{
		CacheBytes:   o.cacheMiB << 20,
		StoreValues:  true,
		WindowLen:    100_000,
		AccessBuffer: o.accessBuffer,
	}
	if o.adaptiveGeom {
		cfg.Adaptive = &geom.Config{} // Normalize picks the defaults
	}
	if o.serveStale {
		cfg.StaleValues = true
		cfg.StaleBytes = o.staleMiB << 20
	}
	var reg *tenant.Registry
	var arb *tenant.Arbiter
	var c server.Store
	var engines []*cache.Cache // non-group engines, for maintainer lifecycle
	if o.tenants != "" {
		var specs []tenant.Config
		var err error
		if strings.HasPrefix(o.tenants, "@") {
			specs, err = tenant.ParseSpecFile(o.tenants[1:])
		} else {
			specs, err = tenant.ParseSpecs(o.tenants)
		}
		if err != nil {
			return err
		}
		if reg, err = tenant.NewRegistry(specs); err != nil {
			return err
		}
		shares, err := tenantShares(reg, o.cacheMiB<<20)
		if err != nil {
			return err
		}
		stores := make([]tenant.Store, reg.Len())
		members := make([]tenant.Member, reg.Len())
		for id := 0; id < reg.Len(); id++ {
			tcfg := cfg
			tcfg.CacheBytes = shares[id]
			tcfg.Tenant = int32(id)
			if cfg.Adaptive != nil {
				a := *cfg.Adaptive
				tcfg.Adaptive = &a
			}
			pol, _ := (sim.PolicySpec{Kind: o.policyKind}).Build()
			eng, err := cache.New(tcfg, pol)
			if err != nil {
				return fmt.Errorf("tenant %s: %w", reg.Config(id).Name, err)
			}
			stores[id] = eng
			engines = append(engines, eng)
			members[id] = tenant.Member{ID: id, Cfg: reg.Config(id), Engines: []*cache.Cache{eng}}
			log.Printf("pama-server: tenant %s: %d MiB (reserve %d MiB, weight %g, slo %d)",
				reg.Config(id).Name, shares[id]>>20, reg.Config(id).ReservedBytes>>20,
				reg.Config(id).Weight, reg.Config(id).SLOClass)
		}
		router, err := tenant.NewRouter(reg, stores, members)
		if err != nil {
			return err
		}
		if arb, err = tenant.NewArbiter(members); err != nil {
			return err
		}
		router.SetArbiter(arb)
		if o.arbiterInterval > 0 {
			arb.Start(o.arbiterInterval)
			defer arb.Stop()
		}
		c = router
	} else if o.shards > 1 {
		g, err := shard.New(cfg, o.shards, func() cache.Policy {
			p, _ := (sim.PolicySpec{Kind: o.policyKind}).Build()
			return p
		})
		if err != nil {
			return err
		}
		c = g
	} else {
		pol, _ := (sim.PolicySpec{Kind: o.policyKind}).Build()
		eng, err := cache.New(cfg, pol)
		if err != nil {
			return err
		}
		engines = append(engines, eng)
		c = eng
	}
	if o.accessBuffer > 0 {
		// The background maintainer keeps the coarse expiry clock fresh and
		// drains idle rings; stopping it applies any remaining deferred
		// accesses before the snapshot save in the shutdown goroutine runs
		// (SaveSnapshot drains again on its own, so the order is belt and
		// braces).
		if g, ok := c.(*shard.Group); ok {
			g.StartMaintainers(0)
			defer g.StopMaintainers()
		} else {
			for _, e := range engines {
				e.StartMaintainer(0)
				defer e.StopMaintainer()
			}
		}
	}
	if o.snapshot != "" {
		if eng, ok := c.(*cache.Cache); ok {
			loaded, err := eng.LoadSnapshotFile(o.snapshot)
			if err != nil {
				// A corrupt or truncated snapshot is refused outright:
				// better to start cold than to serve a partial data set.
				return fmt.Errorf("loading snapshot: %w", err)
			}
			if loaded {
				log.Printf("pama-server: restored %d items from %s", eng.Items(), o.snapshot)
			}
		}
	}
	opts := server.Options{
		Tenants:      reg,
		Logger:       log.New(os.Stderr, "pama-server: ", log.LstdFlags),
		ReadTimeout:  o.readTimeout,
		WriteTimeout: o.writeTimeout,
		MaxConns:     o.maxConns,
		MaxPipeline:  o.maxPipeline,
		DrainTimeout: o.drainTimeout,
		FetchTimeout: o.fetchTimeout,
		FetchRetries: o.fetchRetries,
		FetchBackoff: o.fetchBackoff,
		ServeStale:   o.serveStale,
	}
	if o.readthrough {
		wcfg := workload.ETC()
		store := backend.NewRealTime(penalty.Default(), wcfg.SizeOf, o.penaltyScale)
		if o.faultErrRate > 0 || o.faultSpikeRate > 0 {
			store.SetFaults(&backend.Faults{
				ErrRate:    o.faultErrRate,
				SpikeRate:  o.faultSpikeRate,
				SpikeSleep: o.faultSpikeSleep,
				Seed:       o.faultSeed,
			})
			log.Printf("pama-server: fault injection on (err %.2f, spike %.2f @ %v, seed %d)",
				o.faultErrRate, o.faultSpikeRate, o.faultSpikeSleep, o.faultSeed)
		}
		opts.Backend = store
	} else if o.serveStale || o.fetchRetries > 0 || o.fetchTimeout > 0 {
		log.Printf("pama-server: -serve-stale/-fetch-* only apply with -readthrough")
	}
	if o.overloadOn {
		opts.Overload = &overload.Config{
			MaxInflight: o.maxInflight,
			Target:      o.targetP99,
			Quantile:    0.99,
		}
		log.Printf("pama-server: overload control on (target p99 %v, max inflight %d)", o.targetP99, o.maxInflight)
	}
	var peers *cluster.Peers
	var mgr *membership.Manager
	if o.peers != "" || o.join != "" {
		self := o.self
		if self == "" {
			self = o.addr
		}
		var members []string
		if o.join != "" {
			// A joiner bootstraps alone; the seed's view broadcast
			// admits it to the real ring moments after startup.
			members = []string{self}
		} else {
			for _, m := range strings.Split(o.peers, ",") {
				if m = strings.TrimSpace(m); m != "" {
					members = append(members, m)
				}
			}
		}
		hedge := cluster.HedgePolicy{}
		if o.hedgeEnabled {
			hedge = cluster.DefaultHedgePolicy()
		}
		var err error
		peers, err = cluster.New(cluster.Config{
			Self:    self,
			Members: members,
			Hash:    o.clusterHash,
			VNodes:  o.vnodes,
			Client: cluster.ClientOptions{
				PoolSize:  o.peerPool,
				Retries:   o.peerRetries,
				OpTimeout: o.peerOpTO,
			},
			Hedge: hedge,
		})
		if err != nil {
			return err
		}
		defer peers.Close()
		opts.Cluster = peers
		opts.HotCacheTTL = o.hotCacheTTL
		if o.hotCacheMiB <= 0 {
			opts.HotCacheBytes = -1
		} else {
			opts.HotCacheBytes = o.hotCacheMiB << 20
		}
		log.Printf("pama-server: cluster mode, %d members, self=%s, %s hashing",
			len(members), self, o.clusterHash)
		if o.membershipOn || o.join != "" {
			mgr, err = membership.New(membership.Config{
				Self:          self,
				Peers:         peers,
				ProbeInterval: o.probeInterval,
				EvictAfter:    o.evictAfter,
				EvictCooldown: o.evictCooldown,
				HandoffRate:   o.handoffRate,
				Secret:        o.memSecret,
				Logger:        log.New(os.Stderr, "pama-server: ", log.LstdFlags),
			})
			if err != nil {
				return err
			}
			opts.Membership = mgr
			log.Printf("pama-server: runtime membership on (probe %v, evict after %d, handoff %d keys/s)",
				o.probeInterval, o.evictAfter, o.handoffRate)
		}
	}
	srv := server.New(c, opts)
	if mgr != nil {
		mgr.Start()
		if o.join != "" {
			go func() {
				if err := mgr.JoinCluster(o.join, o.joinTimeout); err != nil {
					log.Printf("pama-server: %v", err)
					return
				}
				epoch, members := mgr.View()
				log.Printf("pama-server: joined via %s at epoch %d (%d members)", o.join, epoch, len(members))
			}()
		}
	}

	var admin *server.Admin
	if o.adminAddr != "" {
		admin = server.NewAdmin(srv, o.adminSeriesInt)
		go func() {
			if err := admin.ListenAndServe(o.adminAddr); err != nil {
				log.Printf("pama-server: admin listener: %v", err)
			}
		}()
		log.Printf("pama-server: admin endpoints on http://%s/{metrics,statsz,series,healthz,debug/pprof}", o.adminAddr)
	}

	// Serve returns as soon as shutdown begins; the drain (and snapshot
	// save) happen in the signal goroutine, so the exit path below must
	// wait for it or the process would quit mid-drain.
	var draining atomic.Bool
	shutdownDone := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		defer close(shutdownDone)
		<-sigc
		draining.Store(true)
		log.Println("pama-server: draining connections")
		if mgr != nil {
			mgr.Stop()
		}
		if admin != nil {
			admin.Close()
		}
		srv.Shutdown()
		st := srv.Stats()
		log.Printf("pama-server: drained (%d conns served, %d forced closes)", st.Conns, st.ForcedCloses)
		if o.snapshot != "" {
			if eng, ok := c.(*cache.Cache); ok {
				if err := eng.SaveSnapshotFile(o.snapshot); err != nil {
					log.Printf("pama-server: snapshot save failed: %v", err)
				} else {
					log.Printf("pama-server: snapshot saved to %s", o.snapshot)
				}
			}
		}
	}()

	log.Printf("pama-server: %s policy, %d MiB, %d shard(s), access-buffer %d, listening on %s (readthrough=%v, max-conns=%d)",
		o.policyKind, o.cacheMiB, o.shards, o.accessBuffer, o.addr, o.readthrough, o.maxConns)
	err := srv.ListenAndServe(o.addr)
	if draining.Load() {
		<-shutdownDone
	}
	return err
}

// tenantShares splits the total cache budget across the registry: every
// tenant gets its reserve (at least one slab — an engine cannot run on
// zero), and the remainder is divided by weight. Rounding residue goes to
// the last tenant (the auto-appended default) so the shares sum exactly to
// the configured total.
func tenantShares(reg *tenant.Registry, total int64) ([]int64, error) {
	slabSize := int64(kv.DefaultGeometry().SlabSize)
	n := reg.Len()
	floors := make([]int64, n)
	var sumW float64
	var sumFloor int64
	for i := 0; i < n; i++ {
		c := reg.Config(i)
		floors[i] = c.ReservedBytes
		if floors[i] < slabSize {
			floors[i] = slabSize
		}
		sumFloor += floors[i]
		sumW += c.Weight
	}
	if sumFloor > total {
		return nil, fmt.Errorf("tenant reserves need %d MiB but -cache grants %d MiB",
			(sumFloor+(1<<20)-1)>>20, total>>20)
	}
	rem := total - sumFloor
	shares := make([]int64, n)
	var given int64
	for i := 0; i < n; i++ {
		extra := int64(float64(rem) * reg.Config(i).Weight / sumW)
		shares[i] = floors[i] + extra
		given += extra
	}
	shares[n-1] += rem - given
	return shares, nil
}
