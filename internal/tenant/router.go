package tenant

import (
	"fmt"

	"pamakv/internal/cache"
	"pamakv/internal/kv"
)

// Store is the per-tenant backing store the router dispatches to: the
// server-facing command surface plus the maintenance hooks the server
// discovers by interface assertion. Both *cache.Cache and *shard.Group
// satisfy it.
type Store interface {
	Get(key string, sizeHint int, penHint float64, buf []byte) ([]byte, uint32, bool)
	GetWithCAS(key string, buf []byte) ([]byte, uint32, uint64, bool)
	GetStale(key string, buf []byte) ([]byte, uint32, bool)
	Set(key string, size int, pen float64, flags uint32, value []byte) error
	SetMode(key string, mode cache.SetMode, cas uint64, size int, pen float64, flags uint32, expireAt int64, value []byte) error
	Delete(key string) bool
	Touch(key string, expireAt int64) bool
	Delta(key string, delta uint64, decr bool) (uint64, error)
	Contains(key string) bool
	ReapExpired(max int) int
	Flush()
	Stats() cache.Stats
	Items() int
	SnapshotSlabs() []int
	PolicyName() string
	Introspect() cache.Introspection
	CheckInvariants() error
}

// Router is the multi-tenant store: it resolves each key's tenant from its
// namespace prefix and dispatches to that tenant's own store, so one
// listener serves N isolated caches. It satisfies the server's Store,
// reaper, and introspector interfaces; aggregate views sum over tenants.
type Router struct {
	reg     *Registry
	stores  []Store  // by tenant id
	members []Member // by tenant id (engines, for per-tenant snapshots)
	arb     *Arbiter // optional
}

// NewRouter builds a router over one store per registry tenant (stores[id]
// serves registry tenant id; members[id] lists the engines behind it).
func NewRouter(reg *Registry, stores []Store, members []Member) (*Router, error) {
	if len(stores) != reg.Len() || len(members) != reg.Len() {
		return nil, fmt.Errorf("tenant: %d stores / %d members for %d tenants",
			len(stores), len(members), reg.Len())
	}
	for id, m := range members {
		if m.ID != id {
			return nil, fmt.Errorf("tenant: member %d has id %d", id, m.ID)
		}
		if len(m.Engines) == 0 {
			return nil, fmt.Errorf("tenant: %s has no engines", m.Cfg.Name)
		}
	}
	return &Router{reg: reg, stores: stores, members: members}, nil
}

// SetArbiter attaches the arbiter whose stats the router reports.
func (r *Router) SetArbiter(a *Arbiter) { r.arb = a }

// Registry returns the router's tenant registry.
func (r *Router) Registry() *Registry { return r.reg }

// TenantStore returns tenant id's backing store.
func (r *Router) TenantStore(id int) Store { return r.stores[id] }

func (r *Router) pick(key string) Store { return r.stores[r.reg.Resolve(key)] }

// ---- server.Store ----

func (r *Router) Get(key string, sizeHint int, penHint float64, buf []byte) ([]byte, uint32, bool) {
	return r.pick(key).Get(key, sizeHint, penHint, buf)
}

func (r *Router) GetWithCAS(key string, buf []byte) ([]byte, uint32, uint64, bool) {
	return r.pick(key).GetWithCAS(key, buf)
}

func (r *Router) GetStale(key string, buf []byte) ([]byte, uint32, bool) {
	return r.pick(key).GetStale(key, buf)
}

func (r *Router) Set(key string, size int, pen float64, flags uint32, value []byte) error {
	return r.pick(key).Set(key, size, pen, flags, value)
}

func (r *Router) SetMode(key string, mode cache.SetMode, cas uint64, size int, pen float64, flags uint32, expireAt int64, value []byte) error {
	return r.pick(key).SetMode(key, mode, cas, size, pen, flags, expireAt, value)
}

func (r *Router) Delete(key string) bool { return r.pick(key).Delete(key) }

func (r *Router) Touch(key string, expireAt int64) bool { return r.pick(key).Touch(key, expireAt) }

func (r *Router) Delta(key string, delta uint64, decr bool) (uint64, error) {
	return r.pick(key).Delta(key, delta, decr)
}

func (r *Router) Contains(key string) bool { return r.pick(key).Contains(key) }

func (r *Router) Flush() {
	for _, s := range r.stores {
		s.Flush()
	}
}

// ReapExpired spreads the reap budget across tenants.
func (r *Router) ReapExpired(max int) int {
	per := max / len(r.stores)
	if per == 0 {
		per = 1
	}
	n := 0
	for _, s := range r.stores {
		n += s.ReapExpired(per)
	}
	return n
}

func (r *Router) Stats() cache.Stats {
	var st cache.Stats
	for _, s := range r.stores {
		st = cache.AddStats(st, s.Stats())
	}
	return st
}

func (r *Router) Items() int {
	n := 0
	for _, s := range r.stores {
		n += s.Items()
	}
	return n
}

// SnapshotSlabs sums per-class slab counts over tenants.
func (r *Router) SnapshotSlabs() []int {
	var out []int
	for _, s := range r.stores {
		snap := s.SnapshotSlabs()
		if out == nil {
			out = snap
			continue
		}
		for i := 0; i < len(out) && i < len(snap); i++ {
			out[i] += snap[i]
		}
	}
	return out
}

func (r *Router) PolicyName() string { return r.stores[0].PolicyName() }

// Introspect merges every tenant's engine snapshot, the same fan-in the
// shard group performs.
func (r *Router) Introspect() cache.Introspection {
	in := r.stores[0].Introspect()
	for _, s := range r.stores[1:] {
		in.Merge(s.Introspect())
	}
	return in
}

// CheckInvariants validates every tenant's store and audits isolation:
// each tenant's engines may hold only items stamped with that tenant's id.
func (r *Router) CheckInvariants() error {
	for id, s := range r.stores {
		if err := s.CheckInvariants(); err != nil {
			return fmt.Errorf("tenant %s: %w", r.reg.Config(id).Name, err)
		}
		for _, e := range r.members[id].Engines {
			var stray error
			e.RangeItems(func(it *kv.Item) bool {
				if int(it.Tenant) != id {
					stray = fmt.Errorf("tenant %s: engine holds item %q of tenant %d",
						r.reg.Config(id).Name, it.Key, it.Tenant)
					return false
				}
				return true
			})
			if stray != nil {
				return stray
			}
		}
	}
	return nil
}

// Snapshot is one tenant's accounting for /statsz and the tenant metrics.
type Snapshot struct {
	Name          string  `json:"name"`
	SLOClass      int     `json:"slo_class"`
	Weight        float64 `json:"weight"`
	ReservedBytes int64   `json:"reserved_bytes"`
	ReserveSlabs  int     `json:"reserve_slabs"`
	Slabs         int     `json:"slabs"`
	FreeSlabs     int     `json:"free_slabs"`
	Items         int     `json:"items"`
	UsedBytes     int64   `json:"used_bytes"`
	Gets          uint64  `json:"gets"`
	Hits          uint64  `json:"hits"`
	Misses        uint64  `json:"misses"`
	Evictions     uint64  `json:"evictions"`
	SlabsIn       uint64  `json:"slabs_in"`
	SlabsOut      uint64  `json:"slabs_out"`
	// Incoming and Outgoing are the tenant's marginal slab values at the
	// last arbitration step (zero before the first step or without an
	// arbiter).
	Incoming float64 `json:"incoming"`
	Outgoing float64 `json:"outgoing"`
	// SubHits and SubMisses fold the per-class attribution down to
	// penalty subclasses; EvictedPenaltyBySub is the penalty the tenant's
	// policy chose to pay, per subclass.
	SubHits             []uint64  `json:"subclass_hits,omitempty"`
	SubMisses           []uint64  `json:"subclass_misses,omitempty"`
	EvictedPenaltyBySub []float64 `json:"evicted_penalty_by_sub,omitempty"`
}

// TenantSnapshots returns one accounting row per tenant, in registry order.
func (r *Router) TenantSnapshots() []Snapshot {
	arbBy := map[string]MemberStats{}
	if r.arb != nil {
		for _, m := range r.arb.Stats().Members {
			arbBy[m.Name] = m
		}
	}
	out := make([]Snapshot, len(r.stores))
	for id, s := range r.stores {
		cfg := r.reg.Config(id)
		in := s.Introspect()
		snap := Snapshot{
			Name:          cfg.Name,
			SLOClass:      cfg.SLOClass,
			Weight:        cfg.Weight,
			ReservedBytes: cfg.ReservedBytes,
			Slabs:         in.TotalSlabs,
			FreeSlabs:     in.FreeSlabs,
			Items:         in.Items,
			Gets:          in.Stats.Gets,
			Hits:          in.Stats.Hits,
			Misses:        in.Stats.Misses,
			Evictions:     in.Stats.Evictions,
			SlabsIn:       in.Stats.SlabReceipts,
			SlabsOut:      in.Stats.SlabDonations,
		}
		for cl := 0; cl < in.Classes && cl < len(in.SlotSizes); cl++ {
			snap.UsedBytes += int64(in.UsedSlots[cl]) * int64(in.SlotSizes[cl])
		}
		if in.Subclasses > 0 {
			snap.SubHits = make([]uint64, in.Subclasses)
			snap.SubMisses = make([]uint64, in.Subclasses)
			for cl := 0; cl < in.Classes; cl++ {
				for sb := 0; sb < in.Subclasses; sb++ {
					snap.SubHits[sb] += in.SubHits[cl][sb]
					snap.SubMisses[sb] += in.SubMisses[cl][sb]
				}
			}
		}
		if in.Decisions != nil {
			snap.EvictedPenaltyBySub = append([]float64(nil), in.Decisions.EvictedPenaltyBySub...)
		}
		if m, ok := arbBy[cfg.Name]; ok {
			snap.ReserveSlabs = m.ReserveSlabs
			snap.Incoming = m.Incoming
			snap.Outgoing = m.Outgoing
		}
		out[id] = snap
	}
	return out
}

// ArbiterStats returns the attached arbiter's snapshot, or nil.
func (r *Router) ArbiterStats() *ArbiterStats {
	if r.arb == nil {
		return nil
	}
	st := r.arb.Stats()
	return &st
}
