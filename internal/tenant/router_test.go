package tenant

import (
	"strings"
	"testing"

	"pamakv/internal/cache"
)

// newTestRouter builds a registry {a, b, default} with one engine per tenant.
func newTestRouter(t *testing.T) (*Router, []*cache.Cache) {
	t.Helper()
	reg, err := NewRegistry([]Config{
		{Name: "a", SLOClass: 0, ReservedBytes: 1 << 20},
		{Name: "b", SLOClass: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*cache.Cache, reg.Len())
	stores := make([]Store, reg.Len())
	members := make([]Member, reg.Len())
	for id := 0; id < reg.Len(); id++ {
		engines[id] = newTestEngine(t, 4<<20, int32(id))
		stores[id] = engines[id]
		members[id] = Member{ID: id, Cfg: reg.Config(id), Engines: []*cache.Cache{engines[id]}}
	}
	r, err := NewRouter(reg, stores, members)
	if err != nil {
		t.Fatal(err)
	}
	return r, engines
}

func TestRouterRoutesByPrefix(t *testing.T) {
	r, engines := newTestRouter(t)
	set := func(key string) {
		t.Helper()
		if err := r.Set(key, 100, 0.01, 0, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	set("a/k1")
	set("a/k2")
	set("b/k1") // same suffix as a/k1: isolation means no collision
	set("plain")
	set("nobody/k") // unregistered prefix -> default tenant

	ida, _ := r.Registry().Lookup("a")
	idb, _ := r.Registry().Lookup("b")
	def := r.Registry().DefaultID()
	if got := engines[ida].Items(); got != 2 {
		t.Fatalf("tenant a holds %d items, want 2", got)
	}
	if got := engines[idb].Items(); got != 1 {
		t.Fatalf("tenant b holds %d items, want 1", got)
	}
	if got := engines[def].Items(); got != 2 {
		t.Fatalf("default tenant holds %d items, want 2", got)
	}
	if got := r.Items(); got != 5 {
		t.Fatalf("router Items = %d, want 5", got)
	}
	if _, _, hit := r.Get("a/k1", 0, 0, nil); !hit {
		t.Fatal("a/k1 lost after routing")
	}
	if _, _, hit := r.Get("b/k2", 0, 0, nil); hit {
		t.Fatal("b/k2 hit: keys leaked across tenants")
	}
	if !r.Delete("b/k1") || engines[idb].Items() != 0 {
		t.Fatal("delete did not route to tenant b")
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRouterIsolationAudit(t *testing.T) {
	reg, err := NewRegistry([]Config{{Name: "a"}})
	if err != nil {
		t.Fatal(err)
	}
	// Mis-stamp tenant a's engine with the wrong id: every item it stores
	// violates isolation, and the audit must say so.
	wrong := newTestEngine(t, 4<<20, 99)
	okEng := newTestEngine(t, 4<<20, 1)
	r, err := NewRouter(reg,
		[]Store{wrong, okEng},
		[]Member{
			{ID: 0, Cfg: reg.Config(0), Engines: []*cache.Cache{wrong}},
			{ID: 1, Cfg: reg.Config(1), Engines: []*cache.Cache{okEng}},
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatalf("empty engines should audit clean: %v", err)
	}
	if err := r.Set("a/k", 100, 0.01, 0, nil); err != nil {
		t.Fatal(err)
	}
	err = r.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "tenant a") {
		t.Fatalf("isolation audit missed mis-stamped item: %v", err)
	}
}

func TestRouterValidation(t *testing.T) {
	reg, err := NewRegistry([]Config{{Name: "a"}})
	if err != nil {
		t.Fatal(err)
	}
	eng := newTestEngine(t, 4<<20, 0)
	if _, err := NewRouter(reg, []Store{eng}, nil); err == nil {
		t.Fatal("store/member count mismatch accepted")
	}
	if _, err := NewRouter(reg,
		[]Store{eng, eng},
		[]Member{
			{ID: 1, Cfg: reg.Config(0), Engines: []*cache.Cache{eng}},
			{ID: 0, Cfg: reg.Config(1), Engines: []*cache.Cache{eng}},
		}); err == nil {
		t.Fatal("out-of-order member ids accepted")
	}
}

func TestTenantSnapshots(t *testing.T) {
	r, engines := newTestRouter(t)
	for _, key := range []string{"a/k1", "a/k2", "b/k1"} {
		if err := r.Set(key, 200, 0.05, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	r.Get("a/k1", 0, 0, nil)
	r.Get("a/miss", 0, 0.05, nil)

	arb, err := NewArbiter([]Member{
		{ID: 0, Cfg: r.Registry().Config(0), Engines: []*cache.Cache{engines[0]}},
		{ID: 1, Cfg: r.Registry().Config(1), Engines: []*cache.Cache{engines[1]}},
		{ID: 2, Cfg: r.Registry().Config(2), Engines: []*cache.Cache{engines[2]}},
	})
	if err != nil {
		t.Fatal(err)
	}
	arb.Step()
	r.SetArbiter(arb)

	snaps := r.TenantSnapshots()
	if len(snaps) != r.Registry().Len() {
		t.Fatalf("%d snapshots for %d tenants", len(snaps), r.Registry().Len())
	}
	byName := map[string]Snapshot{}
	for _, s := range snaps {
		byName[s.Name] = s
	}
	a := byName["a"]
	if a.Items != 2 || a.Gets != 2 || a.Hits != 1 || a.Misses != 1 {
		t.Fatalf("tenant a snapshot off: %+v", a)
	}
	if a.UsedBytes <= 0 || a.Slabs <= 0 {
		t.Fatalf("tenant a accounting empty: %+v", a)
	}
	if a.SLOClass != 0 || a.ReservedBytes != 1<<20 || a.ReserveSlabs != 1 {
		t.Fatalf("tenant a contract fields off: %+v", a)
	}
	if b := byName["b"]; b.Items != 1 || b.SLOClass != 2 {
		t.Fatalf("tenant b snapshot off: %+v", b)
	}
	if _, ok := byName[DefaultName]; !ok {
		t.Fatal("default tenant missing from snapshots")
	}
	if st := r.ArbiterStats(); st == nil || st.Steps != 1 {
		t.Fatalf("router arbiter stats: %+v", st)
	}
}
