package tenant

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pamakv/internal/cache"
	"pamakv/internal/kv"
)

// TestConcurrentArbitrationRaceClean is the satellite concurrency oracle:
// tenants churn through the router from many goroutines while the arbiter
// moves slabs between their engines, and the model invariants must hold at
// every sample and at the end — values never corrupt, per-tenant budgets
// never breach reserve floors, the combined budget is conserved (donor-first
// transfers may dip it by at most the one slab in flight), and the isolation
// audit finds no stray items. Run with -race.
func TestConcurrentArbitrationRaceClean(t *testing.T) {
	reg, err := NewRegistry([]Config{
		{Name: "hot", Weight: 2},
		{Name: "bulk", ReservedBytes: 2 << 20, SLOClass: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*cache.Cache, reg.Len())
	stores := make([]Store, reg.Len())
	members := make([]Member, reg.Len())
	for id := 0; id < reg.Len(); id++ {
		engines[id] = newTestEngine(t, 8<<20, int32(id))
		stores[id] = engines[id]
		members[id] = Member{ID: id, Cfg: reg.Config(id), Engines: []*cache.Cache{engines[id]}}
	}
	router, err := NewRouter(reg, stores, members)
	if err != nil {
		t.Fatal(err)
	}
	arb, err := NewArbiter(members)
	if err != nil {
		t.Fatal(err)
	}
	router.SetArbiter(arb)

	total := 0
	for _, e := range engines {
		total += e.SlabBudget()
	}

	var (
		wg       sync.WaitGroup
		stop     atomic.Bool
		corrupts atomic.Uint64
		firstErr atomic.Value
	)

	// The hot tenant thrashes a skewed oversized working set (sizes from
	// the workload generator, no value bytes), creating the slab pressure
	// the arbiter acts on.
	gen, model := newThrasher(t, 41)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300_000 && !stop.Load(); i++ {
			r, err := gen.Next()
			if err != nil {
				return
			}
			key := "hot/" + kv.KeyString(r.Key)
			pen := model.Of(kv.HashString(key), int(r.Size))
			if _, _, hit := router.Get(key, int(r.Size), pen, nil); !hit {
				router.Set(key, int(r.Size), pen, 0, nil)
			}
		}
	}()

	// The bulk and default tenants write self-describing values (value ==
	// key bytes) and verify every hit, so any cross-slab corruption during
	// a concurrent donation drain is caught at the byte level.
	verify := func(prefix string, n int) {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			key := fmt.Sprintf("%s%d", prefix, i%n)
			val, _, hit := router.Get(key, 0, 0.01, nil)
			if hit {
				if !bytes.Equal(val, []byte(key)) {
					corrupts.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Errorf("get %q returned %q", key, val))
					return
				}
			} else if err := router.Set(key, len(key), 0.01, 0, []byte(key)); err != nil &&
				!errors.Is(err, cache.ErrNoSpace) && !errors.Is(err, cache.ErrTooLarge) {
				corrupts.Add(1)
				firstErr.CompareAndSwap(nil, fmt.Errorf("set %q: %w", key, err))
				return
			}
		}
	}
	wg.Add(3)
	go verify("bulk/k:", 3_000)
	go verify("bulk/j:", 3_000)
	go verify("plain:", 3_000)

	// The sampler audits mid-flight state: floors hold at every instant,
	// and the combined budget never strays beyond the one in-flight slab.
	sampleErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			sum := 0
			for id, e := range engines {
				b := e.SlabBudget()
				sum += b
				if b < arb.ReserveSlabs(id) {
					select {
					case sampleErr <- fmt.Errorf("tenant %s budget %d below floor %d",
						reg.Config(id).Name, b, arb.ReserveSlabs(id)):
					default:
					}
					return
				}
			}
			if sum < total-1 || sum > total {
				select {
				case sampleErr <- fmt.Errorf("combined budget %d, want %d or %d", sum, total-1, total):
				default:
				}
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	arb.Start(time.Millisecond)
	time.Sleep(400 * time.Millisecond)
	arb.Stop()
	stop.Store(true)
	wg.Wait()

	select {
	case err := <-sampleErr:
		t.Fatal(err)
	default:
	}
	if n := corrupts.Load(); n != 0 {
		t.Fatalf("%d corrupted or failed operations; first: %v", n, firstErr.Load())
	}
	sum := 0
	for _, e := range engines {
		sum += e.SlabBudget()
	}
	if sum != total {
		t.Fatalf("final combined budget %d != %d", sum, total)
	}
	if err := router.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if st := arb.Stats(); st.Moves == 0 {
		t.Log("warning: storm finished without a slab move (timing-dependent); oracle still checked")
	} else {
		t.Logf("%d slab moves across %d steps under churn", st.Moves, st.Steps)
	}
	// Surviving values must still read back intact after the storm.
	checked := 0
	for i := 0; i < 3_000; i++ {
		key := fmt.Sprintf("bulk/k:%d", i)
		if val, _, hit := router.Get(key, 0, 0, nil); hit {
			checked++
			if !bytes.Equal(val, []byte(key)) {
				t.Fatalf("post-storm corruption: %q -> %q", key, val)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no bulk values survived; integrity sweep checked nothing")
	}
}
