// Package tenant multiplexes one pamakv process across many applications:
// the "millions of users" scenario where a single arbitrated cache replaces
// N siloed memcached pools (ROADMAP; PAPERS.md: Memshare).
//
// Tenant identity rides in the key namespace: a key "billing/user:17"
// belongs to the registered tenant "billing"; keys without a registered
// prefix belong to the default tenant. Each tenant owns its own cache
// engine(s) — isolation is structural, not bookkeeping — and an Arbiter
// periodically rebalances the slab budget between tenants by comparing
// marginal utilities: each tenant's PAMA incoming-slab value (expected
// penalty saved per window were it granted a slab) against donors'
// outgoing-slab values (penalty lost per window giving one up), weighted by
// the tenants' configured shares, never letting a donor breach its reserve.
//
// See DESIGN.md §13 for the model, the arbiter math, and its invariants.
package tenant

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Separator splits the tenant prefix from the rest of the key. proto.CheckKey
// enforces at most one separator per key and a non-empty prefix.
const Separator = '/'

// DefaultName names the tenant that owns every key without a registered
// tenant prefix.
const DefaultName = "default"

// MaxSLOClass bounds SLO classes: 0 is the most protected (premium), higher
// classes shed earlier under overload (see overload.AcquireSLO).
const MaxSLOClass = 3

// DefaultSLOClass is the SLO class assigned when a spec omits one.
const DefaultSLOClass = 1

// Config is one tenant's contract.
type Config struct {
	// Name is the key-namespace prefix ("billing" owns "billing/…").
	Name string
	// ReservedBytes is the memory floor the arbiter never takes from this
	// tenant (rounded up to whole slabs, at least one slab per engine).
	ReservedBytes int64
	// Weight scales the tenant's claim on the shared pool: the arbiter
	// compares weight-scaled marginal utilities, and the initial split of
	// unreserved memory is proportional to weight. Defaults to 1.
	Weight float64
	// SLOClass ranks the tenant under overload: class 0 is shed last,
	// class MaxSLOClass first (overload demotes a request's effective
	// penalty subclass by its tenant's SLO class).
	SLOClass int
}

// Registry maps key prefixes to tenant ids. Ids are dense, 0..Len()-1, in
// registration order; the default tenant is always present. Immutable after
// construction, so lookups need no lock.
type Registry struct {
	cfgs      []Config
	byName    map[string]int
	defaultID int
}

// NewRegistry validates the configs and builds a registry. A "default"
// entry is appended when absent so untagged keys always have an owner.
func NewRegistry(cfgs []Config) (*Registry, error) {
	r := &Registry{byName: make(map[string]int, len(cfgs)+1), defaultID: -1}
	for _, cfg := range cfgs {
		if err := checkName(cfg.Name); err != nil {
			return nil, err
		}
		if _, dup := r.byName[cfg.Name]; dup {
			return nil, fmt.Errorf("tenant: duplicate tenant %q", cfg.Name)
		}
		if cfg.Weight == 0 {
			cfg.Weight = 1
		}
		if cfg.Weight < 0 {
			return nil, fmt.Errorf("tenant: %s: negative weight %g", cfg.Name, cfg.Weight)
		}
		if cfg.ReservedBytes < 0 {
			return nil, fmt.Errorf("tenant: %s: negative reserve %d", cfg.Name, cfg.ReservedBytes)
		}
		if cfg.SLOClass < 0 || cfg.SLOClass > MaxSLOClass {
			return nil, fmt.Errorf("tenant: %s: SLO class %d outside [0,%d]", cfg.Name, cfg.SLOClass, MaxSLOClass)
		}
		if cfg.Name == DefaultName {
			r.defaultID = len(r.cfgs)
		}
		r.byName[cfg.Name] = len(r.cfgs)
		r.cfgs = append(r.cfgs, cfg)
	}
	if r.defaultID < 0 {
		r.defaultID = len(r.cfgs)
		r.byName[DefaultName] = r.defaultID
		r.cfgs = append(r.cfgs, Config{Name: DefaultName, Weight: 1, SLOClass: DefaultSLOClass})
	}
	return r, nil
}

func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("tenant: empty tenant name")
	}
	for i := 0; i < len(name); i++ {
		if c := name[i]; c <= ' ' || c == 0x7f || c == Separator || c == ',' || c == ':' {
			return fmt.Errorf("tenant: name %q contains byte %q", name, c)
		}
	}
	return nil
}

// Len returns the number of tenants, default included.
func (r *Registry) Len() int { return len(r.cfgs) }

// Config returns tenant id's config.
func (r *Registry) Config(id int) Config { return r.cfgs[id] }

// DefaultID returns the default tenant's id.
func (r *Registry) DefaultID() int { return r.defaultID }

// Lookup returns the id of the named tenant.
func (r *Registry) Lookup(name string) (int, bool) {
	id, ok := r.byName[name]
	return id, ok
}

// Resolve returns the id of the tenant owning key: the registered tenant
// named by the prefix before the first separator, or the default tenant
// when the key has no separator or the prefix is not a registered tenant
// (a raw key may legitimately contain the separator byte in binary data).
func (r *Registry) Resolve(key string) int {
	if i := strings.IndexByte(key, Separator); i > 0 {
		if id, ok := r.byName[key[:i]]; ok {
			return id
		}
	}
	return r.defaultID
}

// ResolveBytes is Resolve for byte-slice keys; it does not allocate.
func (r *Registry) ResolveBytes(key []byte) int {
	for i := 1; i < len(key); i++ {
		if key[i] == Separator {
			if id, ok := r.byName[string(key[:i])]; ok {
				return id
			}
			break
		}
	}
	return r.defaultID
}

// SLOOf returns the SLO class of the tenant owning key.
func (r *Registry) SLOOf(key string) int { return r.cfgs[r.Resolve(key)].SLOClass }

// Split separates a key into its tenant prefix and remainder; ok is false
// when the key carries no prefix.
func Split(key string) (prefix, rest string, ok bool) {
	if i := strings.IndexByte(key, Separator); i > 0 {
		return key[:i], key[i+1:], true
	}
	return "", key, false
}

// ParseSpecs parses the -tenants flag syntax: a comma-separated list of
// name[:reservedMiB[:weight[:sloClass]]] entries, e.g.
//
//	billing:64:2:0,search:32:1:1,batch:8:1:2
func ParseSpecs(s string) ([]Config, error) {
	var cfgs []Config
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		cfg, err := parseSpec(field)
		if err != nil {
			return nil, err
		}
		cfgs = append(cfgs, cfg)
	}
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("tenant: empty tenant spec")
	}
	return cfgs, nil
}

// ParseSpecFile parses the file form of -tenants: one spec per line,
// blank lines and #-comments ignored.
func ParseSpecFile(path string) ([]Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var cfgs []Config
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		cfg, err := parseSpec(text)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		cfgs = append(cfgs, cfg)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("tenant: %s defines no tenants", path)
	}
	return cfgs, nil
}

func parseSpec(s string) (Config, error) {
	parts := strings.Split(s, ":")
	if len(parts) > 4 {
		return Config{}, fmt.Errorf("tenant: spec %q has more than 4 fields", s)
	}
	cfg := Config{Name: strings.TrimSpace(parts[0]), Weight: 1, SLOClass: DefaultSLOClass}
	if err := checkName(cfg.Name); err != nil {
		return Config{}, err
	}
	if len(parts) > 1 && parts[1] != "" {
		mib, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || mib < 0 {
			return Config{}, fmt.Errorf("tenant: %s: bad reservedMiB %q", cfg.Name, parts[1])
		}
		cfg.ReservedBytes = int64(mib * (1 << 20))
	}
	if len(parts) > 2 && parts[2] != "" {
		w, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || w <= 0 {
			return Config{}, fmt.Errorf("tenant: %s: bad weight %q", cfg.Name, parts[2])
		}
		cfg.Weight = w
	}
	if len(parts) > 3 && parts[3] != "" {
		slo, err := strconv.Atoi(parts[3])
		if err != nil || slo < 0 || slo > MaxSLOClass {
			return Config{}, fmt.Errorf("tenant: %s: bad SLO class %q", cfg.Name, parts[3])
		}
		cfg.SLOClass = slo
	}
	return cfg, nil
}
