package tenant

import (
	"fmt"
	"sync"
	"time"

	"pamakv/internal/cache"
)

// Member is one tenant's engine set as seen by the arbiter: id and config
// from the registry plus the engines (shards) holding its data.
type Member struct {
	ID      int
	Cfg     Config
	Engines []*cache.Cache
}

// DefaultMinGain is the multiplicative hysteresis on moves: the receiver's
// weighted incoming value must exceed the donor's weighted outgoing value
// by this factor, preventing slab ping-pong between near-equal tenants.
const DefaultMinGain = 1.05

// Arbiter periodically rebalances the slab budget across tenants. Each
// step compares every tenant's weighted marginal gain (best PAMA
// incoming-slab value across its engines × weight) against donors' weighted
// marginal loss (cheapest outgoing value × weight) and moves one slab of
// budget from the cheapest donor to the neediest receiver — the same
// not-worth-it test PAMA's MakeRoom applies within one engine, lifted
// across engines. A donor never drops below its reserve floor.
type Arbiter struct {
	members []Member
	reserve []int // floor, in slabs, per member
	minGain float64

	mu      sync.Mutex
	steps   uint64
	total   uint64
	moves   [][]uint64 // [donor][receiver] slabs moved
	lastIn  []float64
	lastOut []float64

	stop chan struct{}
	done chan struct{}
}

// NewArbiter builds an arbiter over the tenants' engine sets. Every member
// must have at least one engine, and reserves are converted to slab floors
// against the engines' slab size (at least one slab per engine, so every
// engine stays servable).
func NewArbiter(members []Member) (*Arbiter, error) {
	if len(members) < 2 {
		return nil, fmt.Errorf("tenant: arbiter needs >= 2 tenants, got %d", len(members))
	}
	a := &Arbiter{
		members: members,
		reserve: make([]int, len(members)),
		minGain: DefaultMinGain,
		moves:   make([][]uint64, len(members)),
		lastIn:  make([]float64, len(members)),
		lastOut: make([]float64, len(members)),
	}
	for i, m := range members {
		if len(m.Engines) == 0 {
			return nil, fmt.Errorf("tenant: %s has no engines", m.Cfg.Name)
		}
		slabSize := int64(m.Engines[0].Geometry().SlabSize)
		floor := int((m.Cfg.ReservedBytes + slabSize - 1) / slabSize)
		if floor < len(m.Engines) {
			floor = len(m.Engines)
		}
		a.reserve[i] = floor
		a.moves[i] = make([]uint64, len(members))
	}
	return a, nil
}

// ReserveSlabs returns member i's floor in slabs.
func (a *Arbiter) ReserveSlabs(i int) int { return a.reserve[i] }

// memberView is one tenant's marginal utilities gathered for a step.
type memberView struct {
	in, out    float64 // weighted
	rawIn      float64
	rawOut     float64
	slabs      int
	recvEngine *cache.Cache // engine with the best incoming value
	donEngine  *cache.Cache // engine with the cheapest donatable slab
}

// Step runs one arbitration round, reporting whether a slab moved. It is
// safe to call concurrently with traffic; each engine serializes
// internally and the slab transfer is donor-first, so the combined budget
// never exceeds its configured total.
func (a *Arbiter) Step() bool {
	views := make([]memberView, len(a.members))
	for i, m := range a.members {
		v := &views[i]
		for _, e := range m.Engines {
			in, out, can := e.ArbiterValues()
			if in >= v.rawIn {
				v.rawIn, v.recvEngine = in, e
			}
			if can && (v.donEngine == nil || out < v.rawOut) {
				v.rawOut, v.donEngine = out, e
			}
			v.slabs += e.SlabBudget()
		}
		if v.recvEngine == nil {
			v.recvEngine = m.Engines[0]
		}
		v.in = v.rawIn * m.Cfg.Weight
		v.out = v.rawOut * m.Cfg.Weight
	}

	// Receiver first (largest weighted gain), then the cheapest eligible
	// donor among the others — a thrashing tenant can have both the
	// largest incoming value and near-zero outgoing value, and it must
	// not fund itself.
	recv, donor := -1, -1
	for i := range views {
		if v := &views[i]; v.rawIn > 0 && (recv < 0 || v.in > views[recv].in) {
			recv = i
		}
	}
	for i := range views {
		v := &views[i]
		if i == recv || v.donEngine == nil || v.slabs-1 < a.reserve[i] {
			continue
		}
		if donor < 0 || v.out < views[donor].out {
			donor = i
		}
	}
	moved := false
	if recv >= 0 && donor >= 0 &&
		views[recv].in > views[donor].out*a.minGain {
		if err := views[donor].donEngine.DonateSlab(); err == nil {
			views[recv].recvEngine.ReceiveSlab()
			moved = true
		}
	}

	a.mu.Lock()
	a.steps++
	if moved {
		a.total++
		a.moves[donor][recv]++
	}
	for i := range views {
		a.lastIn[i] = views[i].rawIn
		a.lastOut[i] = views[i].rawOut
	}
	a.mu.Unlock()
	return moved
}

// Start launches the periodic arbitration loop. Stop halts it.
func (a *Arbiter) Start(every time.Duration) {
	if every <= 0 {
		every = 2 * time.Second
	}
	a.stop = make(chan struct{})
	a.done = make(chan struct{})
	go func() {
		defer close(a.done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-a.stop:
				return
			case <-t.C:
				a.Step()
			}
		}
	}()
}

// Stop halts the loop started by Start and waits for it to exit.
func (a *Arbiter) Stop() {
	if a.stop == nil {
		return
	}
	close(a.stop)
	<-a.done
	a.stop, a.done = nil, nil
}

// MemberStats is one tenant's arbitration state.
type MemberStats struct {
	Name         string  `json:"name"`
	Weight       float64 `json:"weight"`
	SLOClass     int     `json:"slo_class"`
	ReserveSlabs int     `json:"reserve_slabs"`
	Slabs        int     `json:"slabs"`
	Incoming     float64 `json:"incoming"`
	Outgoing     float64 `json:"outgoing"`
	SlabsIn      uint64  `json:"slabs_in"`
	SlabsOut     uint64  `json:"slabs_out"`
}

// ArbiterStats is a consistent snapshot of the arbiter's counters.
type ArbiterStats struct {
	Steps   uint64        `json:"steps"`
	Moves   uint64        `json:"moves"`
	Members []MemberStats `json:"members"`
	// Matrix[d][r] counts slabs moved from tenant d to tenant r.
	Matrix [][]uint64 `json:"matrix"`
}

// Stats snapshots the arbiter.
func (a *Arbiter) Stats() ArbiterStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := ArbiterStats{
		Steps:   a.steps,
		Moves:   a.total,
		Members: make([]MemberStats, len(a.members)),
		Matrix:  make([][]uint64, len(a.members)),
	}
	for i, m := range a.members {
		var in, out uint64
		slabs := 0
		for _, e := range m.Engines {
			est := e.Stats()
			in += est.SlabReceipts
			out += est.SlabDonations
			slabs += e.SlabBudget()
		}
		st.Members[i] = MemberStats{
			Name:         m.Cfg.Name,
			Weight:       m.Cfg.Weight,
			SLOClass:     m.Cfg.SLOClass,
			ReserveSlabs: a.reserve[i],
			Slabs:        slabs,
			Incoming:     a.lastIn[i],
			Outgoing:     a.lastOut[i],
			SlabsIn:      in,
			SlabsOut:     out,
		}
		st.Matrix[i] = append([]uint64(nil), a.moves[i]...)
	}
	return st
}
