package tenant

import (
	"errors"
	"fmt"
	"testing"

	"pamakv/internal/cache"
	"pamakv/internal/core"
	"pamakv/internal/kv"
	"pamakv/internal/penalty"
	"pamakv/internal/workload"
)

func newTestEngine(t *testing.T, bytes int64, id int32) *cache.Cache {
	t.Helper()
	eng, err := cache.New(cache.Config{
		Geometry:    kv.DefaultGeometry(),
		CacheBytes:  bytes,
		WindowLen:   5_000,
		Tenant:      id,
		StoreValues: true,
	}, core.New(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// churn drives GET-miss-then-SET traffic over n distinct keys so the engine
// accumulates window statistics (misses feed incoming value, hits outgoing).
func churn(t *testing.T, eng *cache.Cache, tag string, n, rounds int) {
	t.Helper()
	for r := 0; r < rounds; r++ {
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("%s:%d", tag, i)
			if _, _, hit := eng.Get(key, 100, 0.01, nil); !hit {
				if err := eng.Set(key, 100, 0.01, 0, nil); err != nil &&
					err != cache.ErrNoSpace && err != cache.ErrTooLarge {
					t.Fatal(err)
				}
			}
		}
	}
}

// thrash drives n skewed GET-miss-then-SET requests from a workload
// generator whose footprint exceeds the engine, so PAMA's candidate stacks
// see would-have-hit reuse and the incoming-slab value grows.
func thrash(t *testing.T, eng *cache.Cache, gen *workload.Generator, model penalty.Model, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		r, err := gen.Next()
		if err != nil {
			t.Fatal(err)
		}
		key := kv.KeyString(r.Key)
		pen := model.Of(kv.HashString(key), int(r.Size))
		if _, _, hit := eng.Get(key, int(r.Size), pen, nil); !hit {
			if err := eng.Set(key, int(r.Size), pen, 0, nil); err != nil &&
				!errors.Is(err, cache.ErrNoSpace) && !errors.Is(err, cache.ErrTooLarge) {
				t.Fatal(err)
			}
		}
	}
}

func newThrasher(t *testing.T, seed uint64) (*workload.Generator, penalty.Model) {
	t.Helper()
	cfg := workload.ETC()
	cfg.Keys = 200_000
	cfg.SetFrac = 0
	cfg.DelFrac = 0
	cfg.Seed = seed
	gen, err := workload.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return gen, cfg.Penalty
}

func TestNewArbiterValidation(t *testing.T) {
	eng := newTestEngine(t, 4<<20, 0)
	if _, err := NewArbiter([]Member{{ID: 0, Cfg: Config{Name: "solo"}, Engines: []*cache.Cache{eng}}}); err == nil {
		t.Fatal("single-member arbiter accepted")
	}
	if _, err := NewArbiter([]Member{
		{ID: 0, Cfg: Config{Name: "a"}, Engines: []*cache.Cache{eng}},
		{ID: 1, Cfg: Config{Name: "b"}},
	}); err == nil {
		t.Fatal("engine-less member accepted")
	}
}

func TestArbiterReserveFloorInSlabs(t *testing.T) {
	a := newTestEngine(t, 8<<20, 0)
	b := newTestEngine(t, 8<<20, 1)
	arb, err := NewArbiter([]Member{
		{ID: 0, Cfg: Config{Name: "a", ReservedBytes: 3<<20 + 1, Weight: 1}, Engines: []*cache.Cache{a}},
		{ID: 1, Cfg: Config{Name: "b", Weight: 1}, Engines: []*cache.Cache{b}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := arb.ReserveSlabs(0); got != 4 {
		t.Fatalf("3MiB+1 reserve at 1MiB slabs = %d floor, want 4", got)
	}
	// The floor never drops below one slab per engine.
	if got := arb.ReserveSlabs(1); got != 1 {
		t.Fatalf("unreserved tenant floor = %d, want 1", got)
	}
}

// TestArbiterMovesTowardPressure is the direction test: a thrashing tenant
// gains slabs from an idle one, budgets are conserved, and the donor never
// drops below its reserve floor.
func TestArbiterMovesTowardPressure(t *testing.T) {
	hot := newTestEngine(t, 8<<20, 0)
	idle := newTestEngine(t, 8<<20, 1)
	arb, err := NewArbiter([]Member{
		{ID: 0, Cfg: Config{Name: "hot", Weight: 1}, Engines: []*cache.Cache{hot}},
		{ID: 1, Cfg: Config{Name: "idle", ReservedBytes: 2 << 20, Weight: 1}, Engines: []*cache.Cache{idle}},
	})
	if err != nil {
		t.Fatal(err)
	}
	total := hot.TotalSlabsBudget() + idle.TotalSlabsBudget()
	hotStart := hot.TotalSlabsBudget()

	// The idle tenant holds a little warm data; the hot tenant thrashes a
	// skewed working set far larger than its budget.
	gen, model := newThrasher(t, 31)
	churn(t, idle, "idle", 200, 3)
	moves := 0
	for round := 0; round < 30; round++ {
		thrash(t, hot, gen, model, 20_000)
		if arb.Step() {
			moves++
		}
		if got := hot.TotalSlabsBudget() + idle.TotalSlabsBudget(); got != total {
			t.Fatalf("round %d: budget not conserved: %d != %d", round, got, total)
		}
		if got := idle.TotalSlabsBudget(); got < arb.ReserveSlabs(1) {
			t.Fatalf("round %d: donor below reserve floor: %d < %d", round, got, arb.ReserveSlabs(1))
		}
	}
	if moves == 0 {
		t.Fatal("arbiter never moved a slab toward the thrashing tenant")
	}
	if hot.TotalSlabsBudget() <= hotStart {
		t.Fatalf("hot tenant budget %d -> %d; pressure did not attract slabs",
			hotStart, hot.TotalSlabsBudget())
	}
	st := arb.Stats()
	if st.Moves != uint64(moves) || st.Steps != 30 {
		t.Fatalf("stats moves=%d steps=%d, want %d/30", st.Moves, st.Steps, moves)
	}
	if st.Matrix[1][0] == 0 {
		t.Fatalf("move matrix records no idle->hot transfer: %v", st.Matrix)
	}
	if st.Members[0].SlabsIn == 0 || st.Members[1].SlabsOut == 0 {
		t.Fatalf("member transfer counters empty: %+v", st.Members)
	}
	if err := hot.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := idle.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestArbiterRespectsFullReserve pins that a tenant whose reserve covers its
// whole allotment is never tapped, no matter the pressure elsewhere.
func TestArbiterRespectsFullReserve(t *testing.T) {
	hot := newTestEngine(t, 8<<20, 0)
	locked := newTestEngine(t, 8<<20, 1)
	arb, err := NewArbiter([]Member{
		{ID: 0, Cfg: Config{Name: "hot", Weight: 4}, Engines: []*cache.Cache{hot}},
		{ID: 1, Cfg: Config{Name: "locked", ReservedBytes: 8 << 20, Weight: 1}, Engines: []*cache.Cache{locked}},
	})
	if err != nil {
		t.Fatal(err)
	}
	gen, model := newThrasher(t, 33)
	churn(t, locked, "locked", 100, 2)
	for round := 0; round < 10; round++ {
		thrash(t, hot, gen, model, 20_000)
		arb.Step()
	}
	if got := locked.TotalSlabsBudget(); got != 8 {
		t.Fatalf("fully-reserved tenant lost slabs: %d != 8", got)
	}
	if st := arb.Stats(); st.Moves != 0 {
		t.Fatalf("%d moves despite only two tenants and one fully reserved", st.Moves)
	}
}
