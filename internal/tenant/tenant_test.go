package tenant

import (
	"os"
	"path/filepath"
	"testing"
)

func TestNewRegistryDefaults(t *testing.T) {
	r, err := NewRegistry([]Config{
		{Name: "billing", ReservedBytes: 1 << 20, SLOClass: 0},
		{Name: "batch", Weight: 2, SLOClass: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (default auto-appended)", r.Len())
	}
	id, ok := r.Lookup(DefaultName)
	if !ok || id != r.DefaultID() {
		t.Fatalf("default tenant lookup = (%d, %v), DefaultID = %d", id, ok, r.DefaultID())
	}
	if w := r.Config(0).Weight; w != 1 {
		t.Fatalf("zero weight not defaulted to 1, got %g", w)
	}
	if w := r.Config(1).Weight; w != 2 {
		t.Fatalf("explicit weight clobbered, got %g", w)
	}
	// An explicit default entry is kept, not duplicated.
	r2, err := NewRegistry([]Config{{Name: DefaultName, SLOClass: 3}, {Name: "x"}})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 2 || r2.Config(r2.DefaultID()).SLOClass != 3 {
		t.Fatalf("explicit default mishandled: len %d, slo %d", r2.Len(), r2.Config(r2.DefaultID()).SLOClass)
	}
}

func TestNewRegistryRejects(t *testing.T) {
	bad := [][]Config{
		{{Name: ""}},
		{{Name: "a/b"}},
		{{Name: "a:b"}},
		{{Name: "a,b"}},
		{{Name: "a b"}},
		{{Name: "dup"}, {Name: "dup"}},
		{{Name: "w", Weight: -1}},
		{{Name: "rsv", ReservedBytes: -1}},
		{{Name: "slo", SLOClass: MaxSLOClass + 1}},
	}
	for _, cfgs := range bad {
		if _, err := NewRegistry(cfgs); err == nil {
			t.Errorf("NewRegistry(%+v) accepted invalid config", cfgs)
		}
	}
}

func TestResolve(t *testing.T) {
	r, err := NewRegistry([]Config{{Name: "billing"}, {Name: "search"}})
	if err != nil {
		t.Fatal(err)
	}
	billing, _ := r.Lookup("billing")
	search, _ := r.Lookup("search")
	def := r.DefaultID()
	cases := []struct {
		key  string
		want int
	}{
		{"billing/user:17", billing},
		{"search/q", search},
		{"billing/", billing}, // empty remainder still routes by prefix
		{"unregistered/x", def},
		{"plainkey", def},
		{"", def},
		{"/leading", def},                      // empty prefix is never a tenant
		{"bill\x2fing-not-a-prefix/wait", def}, // first '/' splits mid-garbage
		{"billing", def},                       // bare name without separator is a plain key
	}
	for _, c := range cases {
		if got := r.Resolve(c.key); got != c.want {
			t.Errorf("Resolve(%q) = %d, want %d", c.key, got, c.want)
		}
		if got := r.ResolveBytes([]byte(c.key)); got != c.want {
			t.Errorf("ResolveBytes(%q) = %d, want %d", c.key, got, c.want)
		}
	}
}

func TestSLOOfAndSplit(t *testing.T) {
	r, err := NewRegistry([]Config{{Name: "prem", SLOClass: 0}, {Name: "bulk", SLOClass: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.SLOOf("prem/k"); got != 0 {
		t.Fatalf("SLOOf(prem/k) = %d", got)
	}
	if got := r.SLOOf("bulk/k"); got != 3 {
		t.Fatalf("SLOOf(bulk/k) = %d", got)
	}
	if got := r.SLOOf("nobody/k"); got != DefaultSLOClass {
		t.Fatalf("SLOOf(nobody/k) = %d, want default class %d", got, DefaultSLOClass)
	}
	if p, rest, ok := Split("a/b/c"); !ok || p != "a" || rest != "b/c" {
		t.Fatalf("Split(a/b/c) = %q %q %v", p, rest, ok)
	}
	if _, rest, ok := Split("plain"); ok || rest != "plain" {
		t.Fatalf("Split(plain) = ok=%v rest=%q", ok, rest)
	}
	if _, _, ok := Split("/x"); ok {
		t.Fatal("Split(/x) claimed a prefix")
	}
}

func TestParseSpecs(t *testing.T) {
	cfgs, err := ParseSpecs("billing:64:2:0, search:32 ,batch:::2,tiny")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 4 {
		t.Fatalf("got %d configs", len(cfgs))
	}
	b := cfgs[0]
	if b.Name != "billing" || b.ReservedBytes != 64<<20 || b.Weight != 2 || b.SLOClass != 0 {
		t.Fatalf("billing parsed as %+v", b)
	}
	if s := cfgs[1]; s.Name != "search" || s.ReservedBytes != 32<<20 || s.Weight != 1 || s.SLOClass != DefaultSLOClass {
		t.Fatalf("search parsed as %+v", s)
	}
	if c := cfgs[2]; c.ReservedBytes != 0 || c.SLOClass != 2 {
		t.Fatalf("batch parsed as %+v", c)
	}
	if c := cfgs[3]; c.Name != "tiny" || c.Weight != 1 {
		t.Fatalf("tiny parsed as %+v", c)
	}
	// Fractional MiB reserves are honoured.
	cfgs, err = ParseSpecs("frac:0.5")
	if err != nil || cfgs[0].ReservedBytes != 1<<19 {
		t.Fatalf("frac parse: %v %+v", err, cfgs)
	}
	for _, bad := range []string{"", " , ", "a:b", "a:-1", "a:1:0", "a:1:1:9", "a:1:1:1:1", "no/slash:1"} {
		if _, err := ParseSpecs(bad); err == nil {
			t.Errorf("ParseSpecs(%q) accepted", bad)
		}
	}
}

func TestParseSpecFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.conf")
	body := "# comment\n\nbilling:64:2:0\n  search:32\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	cfgs, err := ParseSpecFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 2 || cfgs[0].Name != "billing" || cfgs[1].Name != "search" {
		t.Fatalf("parsed %+v", cfgs)
	}
	bad := filepath.Join(t.TempDir(), "bad.conf")
	if err := os.WriteFile(bad, []byte("ok:1\nbroken:x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSpecFile(bad); err == nil {
		t.Fatal("bad spec file accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.conf")
	if err := os.WriteFile(empty, []byte("# nothing\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSpecFile(empty); err == nil {
		t.Fatal("empty spec file accepted")
	}
	if _, err := ParseSpecFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing spec file accepted")
	}
}
