// Package obs provides the lock-free instrumentation primitives behind the
// server's live observability surface: atomic counters and log-scale latency
// histograms that hot paths update without allocating, plus snapshot types
// that merge across shards and subtract into deltas for windowed reporting.
//
// The histogram reuses the bucket scheme of metrics.Histogram (decade
// buckets subdivided 8x over [min, min*10^decades)), so quantiles computed
// from a live server and from the offline simulator are directly comparable.
// Writers race freely: Observe is a few atomic adds; readers take a
// Snapshot, which is consistent enough for monitoring (bucket counts, count,
// and sum are each atomically read, but not as one transaction).
package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"sync/atomic"

	"pamakv/internal/metrics"
)

// Counter is a monotonic atomic counter. The zero value is ready to use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Hist is a concurrency-safe logarithmic histogram over positive values:
// decade buckets subdivided 8x, the same layout as metrics.Histogram.
// Observe performs no allocation.
type Hist struct {
	min     float64
	buckets []atomic.Uint64
	count   atomic.Uint64
	// sumBits holds the float64 bit pattern of the running sum, updated by
	// CAS so Observe stays lock-free.
	sumBits atomic.Uint64
}

// NewHist covers [min, min*10^decades), with one underflow bucket at the
// bottom; values above the range land in the last bucket.
func NewHist(min float64, decades int) *Hist {
	return &Hist{min: min, buckets: make([]atomic.Uint64, decades*8+1)}
}

// bucketOf returns the bucket index for v (shared with metrics.Histogram).
func (h *Hist) bucketOf(v float64) int {
	if !(v > h.min) { // also catches NaN
		return 0
	}
	r := math.Log10(v/h.min) * 8
	// Compare before converting: int(r) on a huge or infinite r overflows.
	if r >= float64(len(h.buckets)-2) {
		return len(h.buckets) - 1
	}
	return int(r) + 1
}

// Observe records one value.
func (h *Hist) Observe(v float64) {
	h.buckets[h.bucketOf(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the number of recorded values.
func (h *Hist) Count() uint64 { return h.count.Load() }

// Snapshot returns a point-in-time copy of the histogram.
func (h *Hist) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Min:     h.min,
		Buckets: make([]uint64, len(h.buckets)),
		Count:   h.count.Load(),
		Sum:     math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is an immutable copy of a Hist, the unit of merging (across
// shards) and subtraction (into per-window deltas).
type HistSnapshot struct {
	Min     float64  `json:"min"`
	Buckets []uint64 `json:"buckets"`
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
}

// UpperBound returns the inclusive upper edge of bucket i: Min for the
// underflow bucket, Min*10^(i/8) above it. The last bucket also absorbs
// values beyond the range, so treat its edge as +Inf when rendering.
func (s HistSnapshot) UpperBound(i int) float64 {
	if i == 0 {
		return s.Min
	}
	return s.Min * math.Pow(10, float64(i)/8)
}

// Mean returns the arithmetic mean of recorded values (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile returns an upper bound for the q-quantile from bucket edges
// (0 when empty), mirroring metrics.Histogram.Quantile.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	target := uint64(q * float64(s.Count))
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum > target {
			return s.UpperBound(i)
		}
	}
	return s.UpperBound(len(s.Buckets) - 1)
}

// Merge folds other into s (shard fan-in); both must share Min and span.
func (s *HistSnapshot) Merge(other HistSnapshot) error {
	if other.Min != s.Min || len(other.Buckets) != len(s.Buckets) {
		return fmt.Errorf("obs: merging incompatible histograms")
	}
	for i, c := range other.Buckets {
		s.Buckets[i] += c
	}
	s.Count += other.Count
	s.Sum += other.Sum
	return nil
}

// Delta returns s minus prev, the histogram of values observed between the
// two snapshots. prev must be an earlier snapshot of the same histogram.
func (s HistSnapshot) Delta(prev HistSnapshot) (HistSnapshot, error) {
	if prev.Min != s.Min || len(prev.Buckets) != len(s.Buckets) {
		return HistSnapshot{}, fmt.Errorf("obs: delta of incompatible histograms")
	}
	d := HistSnapshot{
		Min:     s.Min,
		Buckets: make([]uint64, len(s.Buckets)),
		Count:   s.Count - prev.Count,
		Sum:     s.Sum - prev.Sum,
	}
	for i := range s.Buckets {
		d.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
	}
	return d, nil
}

// Recorder turns cumulative (gets, hits, serviceSum) samples into the
// paper-style windowed metrics.Series the simulator emits: each Sample call
// closes one window whose hit ratio and mean service time are computed from
// the deltas since the previous call. Empty windows (no GET traffic between
// samples) record NaN, which the metrics emitters render as "-" — a live
// server must distinguish "no traffic" from "0% hits".
type Recorder struct {
	mu       sync.Mutex
	series   metrics.Series
	started  bool
	prevGets uint64
	prevHits uint64
	prevSvc  float64
}

// NewRecorder names the series (shown in TSV headers).
func NewRecorder(name string) *Recorder {
	r := &Recorder{}
	r.series.Name = name
	return r
}

// Sample closes a window at the current cumulative counters. The first call
// only sets the baseline and records nothing. slabs, when non-nil, is
// attached to the point as the per-class slab allocation snapshot.
func (r *Recorder) Sample(gets, hits uint64, serviceSum float64, slabs []int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.started {
		r.started = true
		r.prevGets, r.prevHits, r.prevSvc = gets, hits, serviceSum
		return
	}
	dG := gets - r.prevGets
	p := metrics.Point{GetsServed: gets, HitRatio: math.NaN(), AvgService: math.NaN(), Slabs: slabs}
	if dG > 0 {
		p.HitRatio = float64(hits-r.prevHits) / float64(dG)
		p.AvgService = (serviceSum - r.prevSvc) / float64(dG)
	}
	r.prevGets, r.prevHits, r.prevSvc = gets, hits, serviceSum
	r.series.Append(p)
}

// Series returns a copy of the recorded series.
func (r *Recorder) Series() *metrics.Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := metrics.Series{Name: r.series.Name, Points: append([]metrics.Point(nil), r.series.Points...)}
	return &cp
}

// Len returns the number of closed windows.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.series.Points)
}

// ---- Prometheus text exposition ----

// PromWriter renders metrics in the Prometheus text format (version 0.0.4).
// Errors stick: check Err once after writing everything.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Header writes the HELP/TYPE preamble; typ is "counter", "gauge", or
// "histogram". Call once per metric name, before its samples.
func (p *PromWriter) Header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Value writes one sample. labels is the pre-formatted inner label list
// (`class="3",sub="1"`) or empty.
func (p *PromWriter) Value(name, labels string, v float64) {
	if labels == "" {
		p.printf("%s %s\n", name, formatFloat(v))
		return
	}
	p.printf("%s{%s} %s\n", name, labels, formatFloat(v))
}

// Counter writes an unlabeled counter with its header.
func (p *PromWriter) Counter(name, help string, v uint64) {
	p.Header(name, help, "counter")
	p.Value(name, "", float64(v))
}

// Gauge writes an unlabeled gauge with its header.
func (p *PromWriter) Gauge(name, help string, v float64) {
	p.Header(name, help, "gauge")
	p.Value(name, "", v)
}

// Histogram writes one labeled histogram series (cumulative `le` buckets,
// sum, count). Write the Header (type "histogram") once before the first
// series of the name.
func (p *PromWriter) Histogram(name, labels string, s HistSnapshot) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		le := formatFloat(s.UpperBound(i))
		if i == len(s.Buckets)-1 {
			le = "+Inf" // the top bucket absorbs out-of-range values
		}
		p.printf("%s_bucket{%s%sle=%q} %d\n", name, labels, sep, le, cum)
	}
	p.Value(name+"_sum", labels, s.Sum)
	p.printf("%s_count", name)
	if labels != "" {
		p.printf("{%s}", labels)
	}
	p.printf(" %d\n", s.Count)
}

// formatFloat renders a sample value; Prometheus accepts "NaN" and "+Inf".
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
