package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"testing"

	"pamakv/internal/metrics"
)

func TestCounterMergeAcrossShards(t *testing.T) {
	// Shard-merge semantics: the group-level value is the sum of per-shard
	// loads, regardless of how increments were distributed.
	cases := []struct {
		name   string
		shards [][]uint64 // per-shard Add sequences
		want   uint64
	}{
		{"empty", [][]uint64{{}, {}}, 0},
		{"one-shard", [][]uint64{{1, 2, 3}}, 6},
		{"even-split", [][]uint64{{5, 5}, {10}, {0, 20}}, 40},
		{"skewed", [][]uint64{{1}, {}, {1 << 40}}, 1 + 1<<40},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			counters := make([]Counter, len(tc.shards))
			for i, adds := range tc.shards {
				for _, n := range adds {
					counters[i].Add(n)
				}
			}
			var total uint64
			for i := range counters {
				total += counters[i].Load()
			}
			if total != tc.want {
				t.Fatalf("merged counter = %d, want %d", total, tc.want)
			}
		})
	}
}

func TestHistBucketBoundaries(t *testing.T) {
	// The bucket layout must match metrics.Histogram exactly: decade
	// buckets subdivided 8x, underflow in bucket 0, overflow in the last.
	h := NewHist(0.001, 3) // [1ms, 1s), 25 buckets
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0},
		{0.0005, 0},
		{0.001, 0},        // exactly min -> underflow bucket
		{0.00101, 1},      // just above min
		{0.01, 9},         // exactly on a decade edge -> next bucket, as metrics.Histogram
		{0.1, 17},         // two decades, same edge rule
		{0.999, 24},       // just under the top
		{1.0, 24},         // at the top -> clamped to last
		{1e300, 24},       // far out of range -> last, no int overflow
		{math.Inf(1), 24}, // infinite -> last, no int overflow
		{math.NaN(), 0},   // NaN -> underflow bucket, not a panic
	}
	for _, tc := range cases {
		if got := h.bucketOf(tc.v); got != tc.want {
			t.Errorf("bucketOf(%v) = %d, want %d", tc.v, got, tc.want)
		}
	}
	// Every recorded value must land in a bucket whose UpperBound is >= it
	// (except the saturated last bucket), mirroring metrics.Histogram.
	s := h.Snapshot()
	for _, v := range []float64{0.0011, 0.004, 0.03, 0.5} {
		i := h.bucketOf(v)
		if s.UpperBound(i) < v {
			t.Errorf("UpperBound(bucketOf(%v)) = %v < value", v, s.UpperBound(i))
		}
	}
}

func TestHistMatchesMetricsHistogram(t *testing.T) {
	// obs.Hist and metrics.Histogram share one bucket scheme; identical
	// inputs must yield identical counts, means, and quantile bounds.
	h := NewHist(0.0001, 5)
	m := metrics.NewHistogram(0.0001, 5)
	vals := []float64{0.00005, 0.0002, 0.0015, 0.0015, 0.02, 0.3, 4.4, 99}
	for _, v := range vals {
		h.Observe(v)
		m.Add(v)
	}
	s := h.Snapshot()
	if s.Count != m.Count() {
		t.Fatalf("count %d vs metrics %d", s.Count, m.Count())
	}
	if math.Abs(s.Mean()-m.Mean()) > 1e-12 {
		t.Fatalf("mean %v vs metrics %v", s.Mean(), m.Mean())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if got, want := s.Quantile(q), m.Quantile(q); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v, metrics says %v", q, got, want)
		}
	}
}

func TestHistQuantileAgainstExactValues(t *testing.T) {
	// 1000 uniform values in [1ms, 1s): the bucketed quantile must be an
	// upper bound of the exact order statistic and within one subdivision
	// (a factor of 10^(1/8) ≈ 1.33) of it.
	h := NewHist(0.001, 3)
	var exact []float64
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 1000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		v := 0.001 + 0.999*float64(x>>11)/(1<<53)
		exact = append(exact, v)
		h.Observe(v)
	}
	sort.Float64s(exact)
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := s.Quantile(q)
		want := exact[int(q*float64(len(exact)))]
		if got < want {
			t.Errorf("Quantile(%v) = %v below exact %v (must be an upper bound)", q, got, want)
		}
		if got > want*math.Pow(10, 1.0/8)*1.0001 {
			t.Errorf("Quantile(%v) = %v too far above exact %v", q, got, want)
		}
	}
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
}

func TestSnapshotDeltaSemantics(t *testing.T) {
	h := NewHist(0.001, 2)
	h.Observe(0.002)
	h.Observe(0.05)
	before := h.Snapshot()
	h.Observe(0.002)
	h.Observe(0.09)
	h.Observe(0.09)
	after := h.Snapshot()

	d, err := after.Delta(before)
	if err != nil {
		t.Fatal(err)
	}
	if d.Count != 3 {
		t.Fatalf("delta count = %d, want 3", d.Count)
	}
	if math.Abs(d.Sum-(0.002+0.09+0.09)) > 1e-12 {
		t.Fatalf("delta sum = %v", d.Sum)
	}
	var total uint64
	for _, c := range d.Buckets {
		total += c
	}
	if total != 3 {
		t.Fatalf("delta buckets sum to %d, want 3", total)
	}
	// A snapshot is immutable: the earlier one must be unaffected.
	if before.Count != 2 {
		t.Fatalf("before snapshot mutated: count %d", before.Count)
	}
	// Mismatched layouts must refuse to subtract or merge.
	other := NewHist(0.01, 2).Snapshot()
	if _, err := after.Delta(other); err == nil {
		t.Fatal("Delta across layouts succeeded")
	}
	if err := (&other).Merge(after); err == nil {
		t.Fatal("Merge across layouts succeeded")
	}
}

func TestSnapshotMergeAcrossShards(t *testing.T) {
	a, b := NewHist(0.001, 3), NewHist(0.001, 3)
	for _, v := range []float64{0.002, 0.004, 0.5} {
		a.Observe(v)
	}
	for _, v := range []float64{0.03, 0.03} {
		b.Observe(v)
	}
	merged := a.Snapshot()
	if err := merged.Merge(b.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if merged.Count != 5 {
		t.Fatalf("merged count = %d", merged.Count)
	}
	want := 0.002 + 0.004 + 0.5 + 0.03 + 0.03
	if math.Abs(merged.Sum-want) > 1e-12 {
		t.Fatalf("merged sum = %v, want %v", merged.Sum, want)
	}
}

func TestConcurrentWriters(t *testing.T) {
	// Race-detector test: many goroutines hammer one counter and one
	// histogram; totals must balance exactly.
	const workers, perWorker = 8, 5000
	var c Counter
	h := NewHist(1e-6, 7)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(float64(seed*perWorker+i) * 1e-6)
			}
		}(w)
	}
	wg.Wait()
	if c.Load() != workers*perWorker {
		t.Fatalf("counter = %d, want %d", c.Load(), workers*perWorker)
	}
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("hist count = %d, want %d", s.Count, workers*perWorker)
	}
	var bucketTotal uint64
	for _, b := range s.Buckets {
		bucketTotal += b
	}
	if bucketTotal != s.Count {
		t.Fatalf("buckets sum to %d, count says %d", bucketTotal, s.Count)
	}
}

func TestRecorderWindows(t *testing.T) {
	r := NewRecorder("live")
	r.Sample(0, 0, 0, nil) // baseline only
	if r.Len() != 0 {
		t.Fatalf("baseline sample recorded a point")
	}
	r.Sample(100, 80, 2.0, []int{3, 1})
	r.Sample(100, 80, 2.0, nil) // empty window: no traffic
	r.Sample(300, 130, 6.0, nil)
	s := r.Series()
	if len(s.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(s.Points))
	}
	p0, p1, p2 := s.Points[0], s.Points[1], s.Points[2]
	if p0.HitRatio != 0.8 || math.Abs(p0.AvgService-0.02) > 1e-12 || p0.GetsServed != 100 {
		t.Fatalf("window 0 = %+v", p0)
	}
	if len(p0.Slabs) != 2 {
		t.Fatalf("window 0 slabs missing: %+v", p0)
	}
	if !math.IsNaN(p1.HitRatio) || !math.IsNaN(p1.AvgService) {
		t.Fatalf("empty window must record NaN, got %+v", p1)
	}
	if math.Abs(p2.HitRatio-0.25) > 1e-12 || math.Abs(p2.AvgService-0.02) > 1e-12 {
		t.Fatalf("window 2 = %+v", p2)
	}
	// The NaN window must flow through the TSV emitter as "-", not "NaN".
	var sb strings.Builder
	if err := metrics.WriteTSV(&sb, []*metrics.Series{s}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "NaN") {
		t.Fatalf("TSV leaked NaN:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "-") {
		t.Fatalf("TSV did not mark the empty window:\n%s", sb.String())
	}
}

func TestPromWriterFormat(t *testing.T) {
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Counter("pamakv_gets_total", "GET requests served.", 42)
	p.Gauge("pamakv_items", "Resident items.", 7)
	h := NewHist(0.001, 1)
	h.Observe(0.002)
	h.Observe(0.5)
	p.Header("pamakv_req_seconds", "Request latency.", "histogram")
	p.Histogram("pamakv_req_seconds", `cmd="get"`, h.Snapshot())
	p.Histogram("pamakv_req_seconds", "", h.Snapshot())
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE pamakv_gets_total counter",
		"pamakv_gets_total 42",
		"# TYPE pamakv_items gauge",
		"pamakv_items 7",
		"# TYPE pamakv_req_seconds histogram",
		`pamakv_req_seconds_bucket{cmd="get",le="0.001"} 0`,
		`pamakv_req_seconds_bucket{cmd="get",le="+Inf"} 2`,
		`pamakv_req_seconds_count{cmd="get"} 2`,
		`pamakv_req_seconds_bucket{le="+Inf"} 2`,
		"pamakv_req_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	if strings.Contains(out, "{}") {
		t.Errorf("empty label braces leaked:\n%s", out)
	}
	// le buckets must be cumulative and non-decreasing.
	var last uint64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, `pamakv_req_seconds_bucket{cmd="get"`) {
			continue
		}
		var n uint64
		if _, err := fmtSscan(line[strings.LastIndex(line, " ")+1:], &n); err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("buckets not cumulative at %q", line)
		}
		last = n
	}
}

// fmtSscan isolates the fmt dependency used only above.
func fmtSscan(s string, n *uint64) (int, error) {
	var v uint64
	var i int
	for i = 0; i < len(s) && s[i] >= '0' && s[i] <= '9'; i++ {
		v = v*10 + uint64(s[i]-'0')
	}
	*n = v
	return i, nil
}
