package overload

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stubClock is a manually advanced clock for deterministic limiter tests.
type stubClock struct {
	mu  sync.Mutex
	now time.Time
}

func newStubClock() *stubClock { return &stubClock{now: time.Unix(1_000_000, 0)} }

func (s *stubClock) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

func (s *stubClock) Advance(d time.Duration) {
	s.mu.Lock()
	s.now = s.now.Add(d)
	s.mu.Unlock()
}

func TestAcquireReleaseUnderLimit(t *testing.T) {
	c := New(Config{MaxInflight: 8, InitialLimit: 8})
	var rels []func(time.Duration)
	for i := 0; i < 8; i++ {
		ok, reason, rel := c.Acquire(OpRead, 2)
		if !ok {
			t.Fatalf("acquire %d: shed (%v)", i, reason)
		}
		rels = append(rels, rel)
	}
	st := c.Stats()
	if st.Inflight != 8 || st.Admitted != 8 {
		t.Fatalf("inflight=%d admitted=%d, want 8/8", st.Inflight, st.Admitted)
	}
	for _, rel := range rels {
		rel(time.Millisecond)
	}
	if st := c.Stats(); st.Inflight != 0 {
		t.Fatalf("inflight=%d after release, want 0", st.Inflight)
	}
}

func TestReleaseIdempotent(t *testing.T) {
	c := New(Config{MaxInflight: 4})
	_, _, rel := c.Acquire(OpRead, 2)
	rel(time.Millisecond)
	rel(time.Millisecond) // double release must not underflow
	if st := c.Stats(); st.Inflight != 0 {
		t.Fatalf("inflight=%d, want 0", st.Inflight)
	}
}

func TestHardCeilingNeverExceeded(t *testing.T) {
	const ceiling = 16
	c := New(Config{MaxInflight: ceiling, InitialLimit: ceiling, SojournCutoff: 5 * time.Millisecond})
	var wg sync.WaitGroup
	var cur, peak atomic.Int64
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ok, _, rel := c.Acquire(OpRead, 4)
			if !ok {
				return
			}
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
			cur.Add(-1)
			rel(200 * time.Microsecond)
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > ceiling {
		t.Fatalf("observed concurrency %d exceeds ceiling %d", p, ceiling)
	}
	if st := c.Stats(); st.PeakInflight > ceiling {
		t.Fatalf("controller's own peak %d exceeds ceiling %d", st.PeakInflight, ceiling)
	}
}

func TestQueueAdmitsWhenSlotFrees(t *testing.T) {
	c := New(Config{MaxInflight: 1, InitialLimit: 1, MinLimit: 1, SojournCutoff: time.Second})
	ok, _, rel := c.Acquire(OpRead, 2)
	if !ok {
		t.Fatal("first acquire shed")
	}
	got := make(chan bool)
	go func() {
		ok, _, rel2 := c.Acquire(OpRead, 2)
		if ok {
			rel2(time.Millisecond)
		}
		got <- ok
	}()
	// Wait for the second request to actually queue before releasing.
	deadline := time.Now().Add(time.Second)
	for c.Stats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	rel(time.Millisecond)
	if !<-got {
		t.Fatal("queued request was shed instead of admitted")
	}
	if st := c.Stats(); st.QueuedTotal != 1 || st.Sojourn.Count != 1 {
		t.Fatalf("queued_total=%d sojourn_count=%d, want 1/1", st.QueuedTotal, st.Sojourn.Count)
	}
}

func TestSojournCutoffSheds(t *testing.T) {
	c := New(Config{MaxInflight: 1, InitialLimit: 1, MinLimit: 1, SojournCutoff: 10 * time.Millisecond})
	ok, _, rel := c.Acquire(OpRead, 2)
	if !ok {
		t.Fatal("first acquire shed")
	}
	defer rel(time.Millisecond)
	start := time.Now()
	ok, reason, _ := c.Acquire(OpRead, 2)
	if ok {
		t.Fatal("second acquire admitted while the slot was held")
	}
	if reason != ReasonSojourn {
		t.Fatalf("reason = %v, want sojourn", reason)
	}
	if waited := time.Since(start); waited < 10*time.Millisecond {
		t.Fatalf("shed after %v, before the cutoff", waited)
	}
	st := c.Stats()
	if st.ShedByReason["sojourn"] != 1 || st.ShedBySub[2] != 1 {
		t.Fatalf("shed counters = %v / %v, want sojourn=1 sub2=1", st.ShedByReason, st.ShedBySub)
	}
}

func TestQueueFullDisplacesLowestPriority(t *testing.T) {
	c := New(Config{MaxInflight: 1, InitialLimit: 1, MinLimit: 1, QueueLimit: 1, SojournCutoff: time.Second})
	_, _, rel := c.Acquire(OpRead, 4)
	defer rel(time.Millisecond)

	cheapDone := make(chan Reason, 1)
	go func() {
		ok, reason, rel2 := c.Acquire(OpRead, 0) // cheap read queues
		if ok {
			rel2(time.Millisecond)
			reason = ReasonNone
		}
		cheapDone <- reason
	}()
	deadline := time.Now().Add(time.Second)
	for c.Stats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("cheap request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// An expensive read arrives at a full queue: it must displace the
	// cheap waiter, not be dropped.
	expDone := make(chan bool, 1)
	go func() {
		ok, _, rel3 := c.Acquire(OpRead, 4)
		if ok {
			rel3(time.Millisecond)
		}
		expDone <- ok
	}()
	if reason := <-cheapDone; reason != ReasonQueueFull {
		t.Fatalf("cheap waiter reason = %v, want queue_full displacement", reason)
	}
	rel(time.Millisecond)
	if !<-expDone {
		t.Fatal("expensive request was not admitted after displacing the cheap waiter")
	}

	// And an equal-priority arrival against a full queue is itself shed
	// without displacing the waiter already there.
	_, _, rel4 := c.Acquire(OpRead, 4)
	go c.Acquire(OpRead, 4) // fills the queue at high priority
	deadline = time.Now().Add(time.Second)
	for c.Stats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("high-priority request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	ok, reason, _ := c.Acquire(OpRead, 4)
	if ok || reason != ReasonQueueFull {
		t.Fatalf("equal-priority arrival at full queue: ok=%v reason=%v, want shed queue_full", ok, reason)
	}
	rel4(time.Millisecond)
}

func TestTierEscalationAndPolicySheds(t *testing.T) {
	clk := newStubClock()
	c := New(Config{
		MaxInflight: 2, InitialLimit: 2, MinLimit: 1,
		QueueLimit: 8, SojournCutoff: time.Hour, TierHold: time.Minute,
		Now: clk.Now,
	})
	if c.Tier() != TierNormal {
		t.Fatalf("tier = %d at rest, want normal", c.Tier())
	}
	// Saturate the limit: tier 1.
	_, _, rel1 := c.Acquire(OpRead, 4)
	_, _, rel2 := c.Acquire(OpRead, 4)
	if c.Tier() != TierStrained {
		t.Fatalf("tier = %d at limit, want strained (1)", c.Tier())
	}
	// Fill the queue past 25%: tier 2. Queue 2 of 8 = 25%.
	for i := 0; i < 2; i++ {
		go c.Acquire(OpRead, 4)
	}
	waitFor(t, func() bool { return c.Stats().Queued == 2 })
	if c.Tier() != TierShedding {
		t.Fatalf("tier = %d with queue at 25%%, want shedding (2)", c.Tier())
	}
	// At tier 2, a cheap read is shed outright; an expensive one queues.
	ok, reason, _ := c.Acquire(OpRead, 1)
	if ok || reason != ReasonPolicy {
		t.Fatalf("cheap read at tier 2: ok=%v reason=%v, want policy shed", ok, reason)
	}
	// A write still queues at tier 2.
	go c.Acquire(OpWrite, 0)
	waitFor(t, func() bool { return c.Stats().Queued == 3 })

	// Fill to 75%: tier 3. Need queue >= 6.
	for i := 0; i < 3; i++ {
		go c.Acquire(OpRead, 4)
	}
	waitFor(t, func() bool { return c.Stats().Queued == 6 })
	if c.Tier() != TierCritical {
		t.Fatalf("tier = %d with queue at 75%%, want critical (3)", c.Tier())
	}
	// At tier 3 writes and sub<3 reads are shed; sub 3-4 reads queue.
	if ok, reason, _ := c.Acquire(OpWrite, 4); ok || reason != ReasonPolicy {
		t.Fatalf("write at tier 3: ok=%v reason=%v, want policy shed", ok, reason)
	}
	if ok, reason, _ := c.Acquire(OpRead, 2); ok || reason != ReasonPolicy {
		t.Fatalf("sub-2 read at tier 3: ok=%v reason=%v, want policy shed", ok, reason)
	}

	// Close sheds every queued waiter so the test goroutines exit.
	c.Close()
	rel1(time.Millisecond)
	rel2(time.Millisecond)
}

func TestTierDecaysAfterHold(t *testing.T) {
	clk := newStubClock()
	c := New(Config{
		MaxInflight: 2, InitialLimit: 2, MinLimit: 2,
		QueueLimit: 8, TierHold: time.Second, Now: clk.Now,
	})
	// Saturate → tier 1, then go idle.
	_, _, rel1 := c.Acquire(OpRead, 4)
	_, _, rel2 := c.Acquire(OpRead, 4)
	if c.Tier() != TierStrained {
		t.Fatalf("tier = %d at limit, want 1", c.Tier())
	}
	rel1(time.Millisecond)
	rel2(time.Millisecond)
	// Hysteresis: still strained immediately after the pressure lifts.
	if c.Tier() != TierStrained {
		t.Fatalf("tier = %d right after drain, want 1 (hysteresis)", c.Tier())
	}
	clk.Advance(2 * time.Second)
	// Any admission event past TierHold decays the tier.
	_, _, rel3 := c.Acquire(OpRead, 0)
	rel3(time.Millisecond)
	if c.Tier() != TierNormal {
		t.Fatalf("tier = %d after hold elapsed, want 0", c.Tier())
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never reached")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAIMDLimitFollowsLatency(t *testing.T) {
	clk := newStubClock()
	c := New(Config{
		MaxInflight: 64, InitialLimit: 16, MinLimit: 2,
		Target: 10 * time.Millisecond, AdjustEvery: 100 * time.Millisecond,
		Now: clk.Now,
	})
	// Slow window: every request far over target → multiplicative decrease.
	for round := 0; round < 3; round++ {
		var rels []func(time.Duration)
		for i := 0; i < 16; i++ {
			ok, _, rel := c.Acquire(OpRead, 4)
			if !ok {
				break
			}
			rels = append(rels, rel)
		}
		clk.Advance(150 * time.Millisecond)
		for _, rel := range rels {
			rel(50 * time.Millisecond)
		}
	}
	down := c.Limit()
	if down >= 16 {
		t.Fatalf("limit = %d after slow windows, want < 16", down)
	}
	if st := c.Stats(); st.LimitDecreases == 0 {
		t.Fatal("no decrease steps recorded")
	}
	// Fast saturated windows → additive increase.
	for round := 0; round < 20; round++ {
		var rels []func(time.Duration)
		for i := 0; i < c.Limit(); i++ {
			ok, _, rel := c.Acquire(OpRead, 4)
			if !ok {
				break
			}
			rels = append(rels, rel)
		}
		clk.Advance(150 * time.Millisecond)
		for _, rel := range rels {
			rel(time.Millisecond)
		}
	}
	up := c.Limit()
	if up <= down {
		t.Fatalf("limit = %d after fast saturated windows, want > %d", up, down)
	}
	if up > 64 {
		t.Fatalf("limit = %d exceeds MaxInflight", up)
	}
	if st := c.Stats(); st.LimitIncreases == 0 {
		t.Fatal("no increase steps recorded")
	}
}

func TestCloseShedsWaiters(t *testing.T) {
	c := New(Config{MaxInflight: 1, InitialLimit: 1, MinLimit: 1, SojournCutoff: time.Hour})
	_, _, rel := c.Acquire(OpRead, 2)
	defer rel(time.Millisecond)
	done := make(chan Reason, 1)
	go func() {
		_, reason, _ := c.Acquire(OpRead, 2)
		done <- reason
	}()
	waitFor(t, func() bool { return c.Stats().Queued == 1 })
	c.Close()
	if reason := <-done; reason != ReasonClosed {
		t.Fatalf("waiter reason = %v after Close, want closed", reason)
	}
	if ok, reason, _ := c.Acquire(OpRead, 2); ok || reason != ReasonClosed {
		t.Fatalf("acquire after Close: ok=%v reason=%v", ok, reason)
	}
}

func TestOnTierChangeFires(t *testing.T) {
	var mu sync.Mutex
	var seen []int
	c := New(Config{
		MaxInflight: 1, InitialLimit: 1, MinLimit: 1,
		QueueLimit: 4, SojournCutoff: time.Hour, TierHold: time.Hour,
		OnTierChange: func(tier int) {
			mu.Lock()
			seen = append(seen, tier)
			mu.Unlock()
		},
	})
	_, _, rel := c.Acquire(OpRead, 4) // saturates → tier 1
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(seen) > 0 && seen[len(seen)-1] == TierStrained
	})
	rel(time.Millisecond)
	c.Close()
}

func TestPriorityOrdering(t *testing.T) {
	// Reads rank by subclass; writes sit between sub-1 and sub-2 reads.
	if !(priorityFor(OpRead, 0) < priorityFor(OpRead, 1) &&
		priorityFor(OpRead, 1) < priorityFor(OpWrite, 0) &&
		priorityFor(OpWrite, 0) < priorityFor(OpRead, 2) &&
		priorityFor(OpRead, 2) < priorityFor(OpRead, 3) &&
		priorityFor(OpRead, 3) < priorityFor(OpRead, 4)) {
		t.Fatalf("priority ordering broken: r0=%d r1=%d w=%d r2=%d r3=%d r4=%d",
			priorityFor(OpRead, 0), priorityFor(OpRead, 1), priorityFor(OpWrite, 0),
			priorityFor(OpRead, 2), priorityFor(OpRead, 3), priorityFor(OpRead, 4))
	}
}

func TestConcurrentChurnRaceClean(t *testing.T) {
	c := New(Config{MaxInflight: 8, InitialLimit: 4, MinLimit: 2,
		QueueLimit: 16, SojournCutoff: 2 * time.Millisecond,
		Target: time.Millisecond, AdjustEvery: time.Millisecond})
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				op := OpRead
				if g%4 == 0 {
					op = OpWrite
				}
				ok, _, rel := c.Acquire(op, g%5)
				if ok {
					rel(time.Duration(g%3) * time.Millisecond)
				}
				_ = c.Tier()
				if i%10 == 0 {
					_ = c.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Inflight != 0 || st.Queued != 0 {
		t.Fatalf("residual inflight=%d queued=%d", st.Inflight, st.Queued)
	}
	if st.Admitted+st.ShedTotal != 32*50 {
		t.Fatalf("admitted %d + shed %d != %d requests", st.Admitted, st.ShedTotal, 32*50)
	}
	if st.PeakInflight > 8 {
		t.Fatalf("peak inflight %d exceeded ceiling 8", st.PeakInflight)
	}
}
