package overload

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestAcquireSLOCrossTenantOrdering pins the multi-tenant shed ordering at
// each tier: the SLO class demotes a request's effective penalty subclass,
// so at the same true subclass a best-effort tenant sheds where a premium
// tenant queues, while shed attribution keeps the true subclass and counts
// the SLO class.
func TestAcquireSLOCrossTenantOrdering(t *testing.T) {
	clk := newStubClock()
	c := New(Config{
		MaxInflight: 2, InitialLimit: 2, MinLimit: 1,
		QueueLimit: 8, SojournCutoff: time.Hour, TierHold: time.Minute,
		Now: clk.Now,
	})
	// Saturate the limit, then fill the queue past 25%: tier 2.
	_, _, rel1 := c.Acquire(OpRead, 4)
	_, _, rel2 := c.Acquire(OpRead, 4)
	for i := 0; i < 2; i++ {
		go c.Acquire(OpRead, 4)
	}
	waitFor(t, func() bool { return c.Stats().Queued == 2 })
	if c.Tier() != TierShedding {
		t.Fatalf("tier = %d, want shedding (2)", c.Tier())
	}

	// Same true subclass 3: premium (slo 0) queues, best-effort (slo 2) is
	// demoted to effective subclass 1 — cheap — and policy-shed.
	go c.AcquireSLO(OpRead, 3, 0)
	waitFor(t, func() bool { return c.Stats().Queued == 3 })
	ok, reason, _ := c.AcquireSLO(OpRead, 3, 2)
	if ok || reason != ReasonPolicy {
		t.Fatalf("best-effort sub-3 read at tier 2: ok=%v reason=%v, want policy shed", ok, reason)
	}
	st := c.Stats()
	if st.ShedBySub[3] != 1 {
		t.Fatalf("shed attributed to effective, not true, subclass: %v", st.ShedBySub)
	}
	if st.ShedBySLO[2] != 1 {
		t.Fatalf("shed not counted by SLO class: %v", st.ShedBySLO)
	}

	// Escalate to tier 3 (queue >= 75%).
	for i := 0; i < 3; i++ {
		go c.Acquire(OpRead, 4)
	}
	waitFor(t, func() bool { return c.Stats().Queued == 6 })
	if c.Tier() != TierCritical {
		t.Fatalf("tier = %d, want critical (3)", c.Tier())
	}
	// Subclass 4: premium still queues; one SLO class of demotion (slo 2
	// -> effective 2) drops it below the protected band.
	go c.AcquireSLO(OpRead, 4, 0)
	waitFor(t, func() bool { return c.Stats().Queued == 7 })
	if ok, reason, _ := c.AcquireSLO(OpRead, 4, 2); ok || reason != ReasonPolicy {
		t.Fatalf("best-effort sub-4 read at tier 3: ok=%v reason=%v, want policy shed", ok, reason)
	}

	// Fetch suppression mirrors the demotion.
	if c.ShedFetchSLO(4, 0) {
		t.Fatal("premium sub-4 fetch suppressed at tier 3")
	}
	if !c.ShedFetchSLO(4, 2) {
		t.Fatal("best-effort sub-4 fetch not suppressed at tier 3")
	}

	c.Close()
	rel1(time.Millisecond)
	rel2(time.Millisecond)
}

// TestAcquireSLOClamps pins that out-of-range SLO classes are clamped, not
// indexed out of bounds.
func TestAcquireSLOClamps(t *testing.T) {
	c := New(Config{MaxInflight: 4})
	if ok, _, rel := c.AcquireSLO(OpRead, 2, -5); !ok {
		t.Fatal("negative slo rejected")
	} else {
		rel(time.Millisecond)
	}
	if ok, _, rel := c.AcquireSLO(OpRead, 2, 99); !ok {
		t.Fatal("huge slo rejected")
	} else {
		rel(time.Millisecond)
	}
	if c.ShedFetchSLO(0, 99) {
		t.Fatal("huge slo suppressed a fetch at tier 0")
	}
}

// TestOverloadStormShedOrdering is the storm variant: premium (slo 0) and
// best-effort (slo 3) clients hammer a tiny controller concurrently with the
// same true penalty subclass. Under sustained pressure the best-effort
// tenant's shed rate must exceed the premium tenant's — the cross-tenant
// ordering holds statistically under real contention, not just in the
// single-threaded tier walkthrough. Run with -race.
func TestOverloadStormShedOrdering(t *testing.T) {
	c := New(Config{
		MaxInflight: 4, InitialLimit: 4, MinLimit: 2,
		QueueLimit: 8, SojournCutoff: 2 * time.Millisecond,
		TierHold: 10 * time.Second, // once strained, stay strained for the whole storm
	})
	const (
		workers    = 4
		perWorker  = 400
		sub        = 2 // 10-100ms band: shed when demoted, protected when not
		premiumSLO = 0
		bulkSLO    = 3
	)
	var (
		wg                                 sync.WaitGroup
		premOK, premShed, bulkOK, bulkShed atomic.Uint64
		launch                             = make(chan struct{})
	)
	storm := func(slo int, okC, shedC *atomic.Uint64) {
		defer wg.Done()
		<-launch
		for i := 0; i < perWorker; i++ {
			ok, _, rel := c.AcquireSLO(OpRead, sub, slo)
			if ok {
				okC.Add(1)
				time.Sleep(50 * time.Microsecond) // hold the slot: sustain pressure
				rel(50 * time.Microsecond)
			} else {
				shedC.Add(1)
			}
		}
	}
	for i := 0; i < workers; i++ {
		wg.Add(2)
		go storm(premiumSLO, &premOK, &premShed)
		go storm(bulkSLO, &bulkOK, &bulkShed)
	}
	close(launch)
	wg.Wait()

	premTotal := premOK.Load() + premShed.Load()
	bulkTotal := bulkOK.Load() + bulkShed.Load()
	premRate := float64(premShed.Load()) / float64(premTotal)
	bulkRate := float64(bulkShed.Load()) / float64(bulkTotal)
	t.Logf("premium shed %.3f (%d/%d), best-effort shed %.3f (%d/%d), tier %d",
		premRate, premShed.Load(), premTotal, bulkRate, bulkShed.Load(), bulkTotal, c.Tier())
	if bulkShed.Load() == 0 {
		t.Fatal("storm never shed best-effort traffic; no pressure was generated")
	}
	if bulkRate <= premRate {
		t.Fatalf("best-effort shed rate %.3f not above premium %.3f — SLO ordering failed under storm",
			bulkRate, premRate)
	}
	st := c.Stats()
	if st.ShedBySLO[bulkSLO] <= st.ShedBySLO[premiumSLO] {
		t.Fatalf("ShedBySLO ordering wrong: %v", st.ShedBySLO)
	}
	if st.PeakInflight > DefaultMaxInflight {
		t.Fatalf("peak inflight %d exceeded ceiling", st.PeakInflight)
	}
}
