// Package overload is the server's admission controller: the component that
// decides, request by request, whether a saturated cache should serve, queue,
// or shed. It applies the paper's central idea — not all misses cost the
// same — to load shedding: a request whose miss penalty is 1 ms is nearly
// free to drop, one whose penalty is 5 s is a disaster, so under pressure the
// controller sheds cheap-penalty traffic first and protects the expensive
// subclasses, the same asymmetry PAMA exploits for slab pricing.
//
// Three mechanisms compose:
//
//   - An adaptive concurrency limiter: the admitted-in-flight limit follows
//     observed service latency by AIMD against a target quantile — latency
//     above target multiplies the limit down, headroom under a saturated
//     limit adds to it — bounded above by a hard ceiling (MaxInflight) that
//     is never exceeded, whatever the controller has learned.
//   - A bounded pending queue with a CoDel-style sojourn cutoff: requests
//     that cannot run immediately wait, ordered by priority; a request whose
//     queueing delay exceeds SojournCutoff is shed rather than served late
//     (serving a request the client has already timed out on is pure waste).
//     When the queue is full, a new high-priority request displaces the
//     lowest-priority waiter instead of being dropped itself.
//   - A penalty-aware shed policy over pressure tiers: pressure (limit
//     saturation, queue occupancy) maps to tiers 0–3 with hysteresis, and
//     each tier widens the band of traffic shed outright — first nothing
//     (tier 1 only degrades: serve-stale, no hedging, no hot-cache
//     backfill), then cheap-penalty reads, then writes and everything but
//     the expensive read subclasses.
//
// The controller is transport-agnostic: the server calls Acquire before
// dispatching a parsed request and the returned release func after, feeding
// back the observed service latency.
package overload

import (
	"container/heap"
	"sync"
	"sync/atomic"
	"time"

	"pamakv/internal/obs"
)

// Pressure tiers. Tier is recomputed on every admission event and decays one
// level at a time after TierHold without renewed pressure.
const (
	// TierNormal: below the limit, no degradation.
	TierNormal = 0
	// TierStrained: the limit is saturated. Degrade sideways — serve
	// stale aggressively, stop hot-cache backfill, stop hedging — but
	// shed nothing.
	TierStrained = 1
	// TierShedding: the queue is filling. Cheap-penalty reads are shed
	// instead of queued when over limit, their backend fetches are
	// suppressed, and retry budgets halve.
	TierShedding = 2
	// TierCritical: the queue is near full. All writes and all but the
	// expensive read subclasses are shed.
	TierCritical = 3
)

// Op classifies a request for the shed policy.
type Op int

const (
	// OpRead is a retrieval (get/gets).
	OpRead Op = iota
	// OpWrite is a mutation (set/add/replace/cas/incr/decr/delete/touch).
	OpWrite
)

// Reason labels why a request was shed.
type Reason int

const (
	// ReasonNone: not shed.
	ReasonNone Reason = iota
	// ReasonPolicy: the pressure tier sheds this (op, subclass) band
	// outright.
	ReasonPolicy
	// ReasonQueueFull: the pending queue was full of equal-or-higher
	// priority work.
	ReasonQueueFull
	// ReasonSojourn: queued longer than the sojourn cutoff.
	ReasonSojourn
	// ReasonClosed: the controller was closed while the request waited.
	ReasonClosed
	numReasons
)

// String names the reason for counters and logs.
func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonPolicy:
		return "policy"
	case ReasonQueueFull:
		return "queue_full"
	case ReasonSojourn:
		return "sojourn"
	case ReasonClosed:
		return "closed"
	}
	return "unknown"
}

// Defaults. The target latency is deliberately loose — it is the knee where
// the limiter stops growing, not an SLO — and the sojourn cutoff is the
// CoDel-style bound on how stale a queued request may get before serving it
// stops being useful.
const (
	DefaultMaxInflight   = 256
	DefaultMinLimit      = 4
	DefaultTarget        = 25 * time.Millisecond
	DefaultQuantile      = 0.95
	DefaultAdjustEvery   = 100 * time.Millisecond
	DefaultSojournCutoff = 50 * time.Millisecond
	DefaultTierHold      = 500 * time.Millisecond
	// DefaultCheapSub is the highest penalty subclass considered "cheap":
	// subclasses 0 and 1 are misses of at most 10 ms — refusing them under
	// pressure costs each client about what a queued request would have
	// waited anyway.
	DefaultCheapSub = 1
	// DefaultCriticalSub is the lowest subclass still served at
	// TierCritical: subclasses 3 and 4 are 100 ms–5 s misses, the traffic
	// whose loss the paper prices as disasters.
	DefaultCriticalSub = 3
)

// Config tunes a Controller. The zero value of every field selects its
// default.
type Config struct {
	// MaxInflight is the hard ceiling on concurrently admitted requests.
	// The adaptive limit lives in [MinLimit, MaxInflight].
	MaxInflight int
	// MinLimit floors the adaptive limit so a latency spike cannot choke
	// the server to zero.
	MinLimit int
	// InitialLimit seeds the adaptive limit; 0 means MaxInflight/4
	// (clamped to [MinLimit, MaxInflight]).
	InitialLimit int
	// Target is the service-latency goal the limiter steers toward.
	Target time.Duration
	// Quantile is the latency quantile compared against Target.
	Quantile float64
	// AdjustEvery is the limiter's adjustment period.
	AdjustEvery time.Duration
	// QueueLimit bounds the pending queue; 0 means MaxInflight (after
	// defaulting), negative means no queue (immediate shed when over
	// limit and not protected).
	QueueLimit int
	// SojournCutoff bounds how long a request may queue before it is
	// shed instead of served.
	SojournCutoff time.Duration
	// TierHold is the hysteresis window: a tier decays one level only
	// after this long without renewed pressure at that tier.
	TierHold time.Duration
	// CheapSub is the highest penalty subclass shed as "cheap" at
	// TierShedding.
	CheapSub int
	// CriticalSub is the lowest read subclass still served at
	// TierCritical.
	CriticalSub int
	// OnTierChange, when set, is called (outside the controller's lock)
	// whenever the effective tier changes. The server uses it to flip
	// cluster degradation.
	OnTierChange func(tier int)
	// Now stubs time for tests; nil means time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = DefaultMaxInflight
	}
	if c.MinLimit <= 0 {
		c.MinLimit = DefaultMinLimit
	}
	if c.MinLimit > c.MaxInflight {
		c.MinLimit = c.MaxInflight
	}
	if c.InitialLimit <= 0 {
		c.InitialLimit = c.MaxInflight / 4
	}
	if c.InitialLimit < c.MinLimit {
		c.InitialLimit = c.MinLimit
	}
	if c.InitialLimit > c.MaxInflight {
		c.InitialLimit = c.MaxInflight
	}
	if c.Target <= 0 {
		c.Target = DefaultTarget
	}
	if c.Quantile <= 0 || c.Quantile >= 1 {
		c.Quantile = DefaultQuantile
	}
	if c.AdjustEvery <= 0 {
		c.AdjustEvery = DefaultAdjustEvery
	}
	if c.QueueLimit == 0 {
		c.QueueLimit = c.MaxInflight
	}
	if c.QueueLimit < 0 {
		c.QueueLimit = 0
	}
	if c.SojournCutoff <= 0 {
		c.SojournCutoff = DefaultSojournCutoff
	}
	if c.TierHold <= 0 {
		c.TierHold = DefaultTierHold
	}
	if c.CheapSub <= 0 {
		c.CheapSub = DefaultCheapSub
	}
	if c.CriticalSub <= 0 {
		c.CriticalSub = DefaultCriticalSub
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// waiter is one queued request. ready is buffered so the waker never blocks
// on a waiter that timed out concurrently.
type waiter struct {
	pri   int
	seq   uint64
	enq   time.Time
	ready chan bool // true = admitted, false = shed
	index int       // heap index; -1 once removed
}

// waiterQueue is a max-heap by priority, FIFO within a priority.
type waiterQueue []*waiter

func (q waiterQueue) Len() int { return len(q) }
func (q waiterQueue) Less(i, j int) bool {
	if q[i].pri != q[j].pri {
		return q[i].pri > q[j].pri
	}
	return q[i].seq < q[j].seq
}
func (q waiterQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *waiterQueue) Push(x any) {
	w := x.(*waiter)
	w.index = len(*q)
	*q = append(*q, w)
}
func (q *waiterQueue) Pop() any {
	old := *q
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.index = -1
	*q = old[:n-1]
	return w
}

// lowest returns the index of the lowest-priority (then youngest) waiter.
// A heap orders only the top; eviction wants the bottom, so scan — the queue
// is bounded and eviction only happens when it is full.
func (q waiterQueue) lowest() int {
	lo := 0
	for i := 1; i < len(q); i++ {
		w, l := q[i], q[lo]
		if w.pri < l.pri || (w.pri == l.pri && w.seq > l.seq) {
			lo = i
		}
	}
	return lo
}

// Controller is the admission controller. Construct with New; safe for
// concurrent use from every connection goroutine.
type Controller struct {
	cfg Config

	mu       sync.Mutex
	inflight int
	limit    int
	queue    waiterQueue
	seq      uint64
	closed   bool

	// saturated records whether the limit was the binding constraint at
	// any point in the current adjustment window (the limiter only grows
	// a limit that is actually in the way).
	saturated bool
	lastAdj   time.Time

	// tier state under mu; tierAtomic mirrors it for lock-free reads.
	tier       int
	tierSince  time.Time
	tierAtomic atomic.Int32
	// lastNotified is the tier OnTierChange last saw.
	lastNotified int

	// peakInflight is the high-water mark of admitted concurrency — the
	// storm test's proof that the ceiling held.
	peakInflight int

	// lat collects observed service latencies; prevLat is the snapshot at
	// the last adjustment, so each window adjusts on its own delta.
	lat     *obs.Hist
	prevLat obs.HistSnapshot
	// sojourn records queueing delay of every queued request, admitted
	// or shed.
	sojourn *obs.Hist

	admitted  atomic.Uint64
	queuedCum atomic.Uint64
	shedBy    [numReasons]atomic.Uint64
	shedBySub [numSubs]atomic.Uint64
	shedBySLO [numSLO]atomic.Uint64
	incs      atomic.Uint64
	decs      atomic.Uint64
}

// numSubs matches penalty.SubclassBounds; kept literal so the package does
// not import penalty (the caller maps keys to subclasses).
const numSubs = 5

// numSLO matches tenant.MaxSLOClass+1; kept literal so the package does not
// import tenant (the caller maps keys to tenant SLO classes).
const numSLO = 4

// New builds a Controller.
func New(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{
		cfg:     cfg,
		limit:   cfg.InitialLimit,
		lat:     obs.NewHist(1e-6, 7),
		sojourn: obs.NewHist(1e-6, 7),
	}
	c.prevLat = c.lat.Snapshot()
	c.lastAdj = cfg.Now()
	c.tierSince = c.lastAdj
	return c
}

// priorityFor maps (op, subclass) to a scalar queue priority: reads rank by
// penalty subclass, writes sit between the cheap and expensive read bands —
// a write is worth more than re-fetchable cheap data but must yield to reads
// whose miss costs real seconds (and writes shed before reads at the top
// tier).
func priorityFor(op Op, sub int) int {
	if sub < 0 {
		sub = 0
	}
	if sub >= numSubs {
		sub = numSubs - 1
	}
	if op == OpWrite {
		return 13
	}
	return 10 + 2*sub
}

// Acquire asks to admit one request of the given op kind and penalty
// subclass. It returns admit=true with a release func (call it exactly once,
// with the observed service latency), or admit=false with the shed reason.
// Acquire may block up to SojournCutoff while the request queues.
func (c *Controller) Acquire(op Op, sub int) (admit bool, reason Reason, release func(latency time.Duration)) {
	return c.AcquireSLO(op, sub, 0)
}

// AcquireSLO is Acquire for multi-tenant serving: slo is the requesting
// tenant's SLO class (0 = most protected). The shed policy and queue
// priority act on the request's effective subclass, its penalty subclass
// demoted by the SLO class — so under pressure a best-effort tenant's
// expensive reads shed like a premium tenant's cheap ones, and tenant B's
// cheap reads drop before tenant A's expensive ones. Shed attribution
// keeps the true penalty subclass and additionally counts by SLO class.
func (c *Controller) AcquireSLO(op Op, sub, slo int) (admit bool, reason Reason, release func(latency time.Duration)) {
	if sub < 0 {
		sub = 0
	}
	if sub >= numSubs {
		sub = numSubs - 1
	}
	slo = clampSLO(slo)
	eff := sub - slo
	if eff < 0 {
		eff = 0
	}
	now := c.cfg.Now()

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.shedBy[ReasonClosed].Add(1)
		c.shedBySub[sub].Add(1)
		c.shedBySLO[slo].Add(1)
		return false, ReasonClosed, nil
	}
	tier := c.tier
	// TierCritical policy applies before the limit check: the queue is
	// near collapse and even a momentarily free slot should go to
	// protected traffic.
	if tier >= TierCritical && (op == OpWrite || eff < c.cfg.CriticalSub) {
		c.shed(ReasonPolicy, sub, slo)
		c.mu.Unlock()
		c.notifyTier()
		return false, ReasonPolicy, nil
	}
	if c.inflight < c.limit && len(c.queue) == 0 {
		c.admit(now)
		c.mu.Unlock()
		c.notifyTier()
		return true, ReasonNone, c.releaseFunc(sub)
	}
	// Over limit (or behind queued work). At TierShedding and above,
	// cheap-penalty reads are shed rather than queued: the queue's slots
	// are kept for traffic whose miss penalty is worth waiting for. An
	// under-limit cheap read is still admitted above — it may be a
	// nearly-free cache hit.
	if tier >= TierShedding && op == OpRead && eff <= c.cfg.CheapSub {
		c.shed(ReasonPolicy, sub, slo)
		c.mu.Unlock()
		c.notifyTier()
		return false, ReasonPolicy, nil
	}
	// Queue — unless the queue is full of equal-or-better work, in which
	// case the cheapest of (new request, worst waiter) is shed.
	if len(c.queue) >= c.cfg.QueueLimit {
		pri := priorityFor(op, eff)
		if c.cfg.QueueLimit == 0 {
			c.shed(ReasonQueueFull, sub, slo)
			c.mu.Unlock()
			c.notifyTier()
			return false, ReasonQueueFull, nil
		}
		lo := c.queue.lowest()
		if c.queue[lo].pri >= pri {
			c.shed(ReasonQueueFull, sub, slo)
			c.mu.Unlock()
			c.notifyTier()
			return false, ReasonQueueFull, nil
		}
		// Displace the lowest-priority waiter in favor of this one.
		w := c.queue[lo]
		heap.Remove(&c.queue, lo)
		w.ready <- false
		c.shedBy[ReasonQueueFull].Add(1)
		// The displaced waiter's subclass is unknown here; its shed is
		// attributed when its Acquire observes the false send.
	}
	w := &waiter{
		pri:   priorityFor(op, eff),
		seq:   c.seq,
		enq:   now,
		ready: make(chan bool, 1),
	}
	c.seq++
	heap.Push(&c.queue, w)
	c.queuedCum.Add(1)
	c.recomputeTierLocked(now)
	c.mu.Unlock()
	c.notifyTier()

	t := time.NewTimer(c.cfg.SojournCutoff)
	defer t.Stop()
	var ok bool
	select {
	case ok = <-w.ready:
	case <-t.C:
		c.mu.Lock()
		if w.index >= 0 {
			heap.Remove(&c.queue, w.index)
			c.mu.Unlock()
			c.sojourn.Observe(c.cfg.Now().Sub(w.enq).Seconds())
			c.shedBy[ReasonSojourn].Add(1)
			c.shedBySub[sub].Add(1)
			c.shedBySLO[slo].Add(1)
			return false, ReasonSojourn, nil
		}
		// Admitted or displaced in the race with the timer; the send
		// is buffered and already made.
		c.mu.Unlock()
		ok = <-w.ready
	}
	c.sojourn.Observe(c.cfg.Now().Sub(w.enq).Seconds())
	if !ok {
		// Displaced by a higher-priority arrival or closed.
		reason = ReasonQueueFull
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			reason = ReasonClosed
		}
		c.shedBySub[sub].Add(1)
		c.shedBySLO[slo].Add(1)
		return false, reason, nil
	}
	return true, ReasonNone, c.releaseFunc(sub)
}

// ShedFetch reports whether a backend fetch for a missed key of the given
// penalty subclass should be suppressed at the current tier. TierShedding
// suppresses cheap fetches — the miss costs the client less than the
// capacity the fetch would burn — and TierCritical suppresses everything
// below the protected subclasses.
func (c *Controller) ShedFetch(sub int) bool { return c.ShedFetchSLO(sub, 0) }

// ShedFetchSLO is ShedFetch with the key's tenant SLO class demoting its
// effective subclass, mirroring AcquireSLO.
func (c *Controller) ShedFetchSLO(sub, slo int) bool {
	if eff := sub - clampSLO(slo); eff >= 0 {
		sub = eff
	} else {
		sub = 0
	}
	switch t := c.Tier(); {
	case t >= TierCritical:
		return sub < c.cfg.CriticalSub
	case t >= TierShedding:
		return sub <= c.cfg.CheapSub
	default:
		return false
	}
}

func clampSLO(slo int) int {
	if slo < 0 {
		return 0
	}
	if slo >= numSLO {
		return numSLO - 1
	}
	return slo
}

// shed counts one immediate shed under mu.
func (c *Controller) shed(r Reason, sub, slo int) {
	c.shedBy[r].Add(1)
	c.shedBySub[sub].Add(1)
	c.shedBySLO[slo].Add(1)
	c.recomputeTierLocked(c.cfg.Now())
}

// admit records one admission under mu.
func (c *Controller) admit(now time.Time) {
	c.inflight++
	if c.inflight > c.peakInflight {
		c.peakInflight = c.inflight
	}
	if c.inflight >= c.limit {
		c.saturated = true
	}
	c.admitted.Add(1)
	c.recomputeTierLocked(now)
}

// releaseFunc returns the closure handed to an admitted request.
func (c *Controller) releaseFunc(sub int) func(time.Duration) {
	var once sync.Once
	return func(latency time.Duration) {
		once.Do(func() { c.release(latency) })
	}
}

// release returns a slot: observe latency, maybe adjust the limit, wake the
// best waiter if a slot is free.
func (c *Controller) release(latency time.Duration) {
	if latency > 0 {
		c.lat.Observe(latency.Seconds())
	}
	now := c.cfg.Now()
	c.mu.Lock()
	c.inflight--
	if now.Sub(c.lastAdj) >= c.cfg.AdjustEvery {
		c.adjustLocked()
		c.lastAdj = now
	}
	for c.inflight < c.limit && len(c.queue) > 0 {
		w := heap.Pop(&c.queue).(*waiter)
		c.inflight++
		if c.inflight > c.peakInflight {
			c.peakInflight = c.inflight
		}
		if c.inflight >= c.limit {
			c.saturated = true
		}
		c.admitted.Add(1)
		w.ready <- true
	}
	c.recomputeTierLocked(now)
	c.mu.Unlock()
	c.notifyTier()
}

// adjustLocked is one AIMD step: compare the window's latency quantile with
// the target; multiply the limit down when over, add when saturated and
// comfortably under.
func (c *Controller) adjustLocked() {
	cur := c.lat.Snapshot()
	delta, err := cur.Delta(c.prevLat)
	c.prevLat = cur
	if err != nil || delta.Count == 0 {
		return
	}
	q := delta.Quantile(c.cfg.Quantile)
	target := c.cfg.Target.Seconds()
	switch {
	case q > target:
		// Multiplicative decrease toward what was actually running.
		next := c.limit * 9 / 10
		if next >= c.limit {
			next = c.limit - 1
		}
		if next < c.cfg.MinLimit {
			next = c.cfg.MinLimit
		}
		if next != c.limit {
			c.limit = next
			c.decs.Add(1)
		}
	case q < target*8/10 && c.saturated:
		// Additive increase, only when the limit was binding.
		step := c.limit / 10
		if step < 1 {
			step = 1
		}
		next := c.limit + step
		if next > c.cfg.MaxInflight {
			next = c.cfg.MaxInflight
		}
		if next != c.limit {
			c.limit = next
			c.incs.Add(1)
		}
	}
	c.saturated = c.inflight >= c.limit
}

// recomputeTierLocked maps instantaneous pressure to a tier with hysteresis:
// the tier rises immediately and decays one level per TierHold of calm.
func (c *Controller) recomputeTierLocked(now time.Time) {
	inst := TierNormal
	switch {
	case c.cfg.QueueLimit > 0 && len(c.queue)*4 >= c.cfg.QueueLimit*3:
		inst = TierCritical
	case c.cfg.QueueLimit > 0 && len(c.queue)*4 >= c.cfg.QueueLimit:
		inst = TierShedding
	case c.inflight >= c.limit:
		inst = TierStrained
	}
	switch {
	case inst > c.tier:
		c.tier = inst
		c.tierSince = now
	case inst < c.tier && now.Sub(c.tierSince) >= c.cfg.TierHold:
		c.tier--
		c.tierSince = now
	}
	c.tierAtomic.Store(int32(c.tier))
}

// notifyTier invokes OnTierChange outside the lock when the published tier
// moved since the last notification.
func (c *Controller) notifyTier() {
	if c.cfg.OnTierChange == nil {
		return
	}
	t := int(c.tierAtomic.Load())
	c.mu.Lock()
	changed := c.lastNotified != t
	if changed {
		c.lastNotified = t
	}
	c.mu.Unlock()
	if changed {
		c.cfg.OnTierChange(t)
	}
}

// Tier returns the current pressure tier (lock-free).
func (c *Controller) Tier() int { return int(c.tierAtomic.Load()) }

// Limit returns the current adaptive concurrency limit.
func (c *Controller) Limit() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.limit
}

// Close sheds every queued waiter and makes subsequent Acquires fail with
// ReasonClosed. In-flight requests finish normally.
func (c *Controller) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	waiters := make([]*waiter, len(c.queue))
	copy(waiters, c.queue)
	for _, w := range waiters {
		w.index = -1
	}
	c.queue = c.queue[:0]
	c.mu.Unlock()
	for _, w := range waiters {
		w.ready <- false
		c.shedBy[ReasonClosed].Add(1)
	}
}

// Stats is a point-in-time snapshot of the controller.
type Stats struct {
	// Limit is the adaptive concurrency limit; MaxInflight the hard
	// ceiling it lives under.
	Limit       int `json:"limit"`
	MaxInflight int `json:"max_inflight"`
	// Inflight and Queued are the current occupancy; PeakInflight is the
	// admitted-concurrency high-water mark (never exceeds MaxInflight).
	Inflight     int `json:"inflight"`
	Queued       int `json:"queued"`
	PeakInflight int `json:"peak_inflight"`
	// Tier is the current pressure tier (0 normal … 3 critical).
	Tier int `json:"tier"`
	// Admitted counts requests admitted (directly or from the queue);
	// QueuedTotal counts requests that waited in the queue at all.
	Admitted    uint64 `json:"admitted"`
	QueuedTotal uint64 `json:"queued_total"`
	// ShedByReason counts sheds keyed by Reason string; ShedBySub by the
	// request's penalty subclass; ShedBySLO by the requesting tenant's SLO
	// class (all index 0 without multi-tenant serving).
	ShedByReason map[string]uint64 `json:"shed_by_reason"`
	ShedBySub    [numSubs]uint64   `json:"shed_by_sub"`
	ShedBySLO    [numSLO]uint64    `json:"shed_by_slo"`
	// ShedTotal sums ShedByReason.
	ShedTotal uint64 `json:"shed_total"`
	// LimitIncreases and LimitDecreases count AIMD steps.
	LimitIncreases uint64 `json:"limit_increases"`
	LimitDecreases uint64 `json:"limit_decreases"`
	// Sojourn is the queueing-delay histogram of queued requests
	// (admitted and shed alike); Service the observed service latencies
	// feeding the limiter.
	Sojourn obs.HistSnapshot `json:"sojourn"`
	Service obs.HistSnapshot `json:"service"`
}

// Stats snapshots the controller.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	s := Stats{
		Limit:        c.limit,
		MaxInflight:  c.cfg.MaxInflight,
		Inflight:     c.inflight,
		Queued:       len(c.queue),
		PeakInflight: c.peakInflight,
		Tier:         c.tier,
	}
	c.mu.Unlock()
	s.Admitted = c.admitted.Load()
	s.QueuedTotal = c.queuedCum.Load()
	s.ShedByReason = make(map[string]uint64, int(numReasons))
	for r := ReasonPolicy; r < numReasons; r++ {
		n := c.shedBy[r].Load()
		if n > 0 {
			s.ShedByReason[r.String()] = n
		}
		s.ShedTotal += n
	}
	for i := range s.ShedBySub {
		s.ShedBySub[i] = c.shedBySub[i].Load()
	}
	for i := range s.ShedBySLO {
		s.ShedBySLO[i] = c.shedBySLO[i].Load()
	}
	s.LimitIncreases = c.incs.Load()
	s.LimitDecreases = c.decs.Load()
	s.Sojourn = c.sojourn.Snapshot()
	s.Service = c.lat.Snapshot()
	return s
}
