package cluster

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("key:%d", i)
	}
	return out
}

func TestRingDeterministicAcrossNodes(t *testing.T) {
	members := []string{"c:3", "a:1", "b:2"}
	// Two rings built from differently ordered member lists must agree on
	// every owner — each node builds its own ring locally.
	r1 := NewRing(members, 128)
	r2 := NewRing([]string{"b:2", "c:3", "a:1"}, 128)
	for _, k := range keys(10_000) {
		if r1.Owner(k) != r2.Owner(k) {
			t.Fatalf("rings from permuted member lists disagree on %q: %s vs %s",
				k, r1.Owner(k), r2.Owner(k))
		}
	}
}

// TestRingBalance is the ring-distribution acceptance bench: with 128
// vnodes, the keys-per-node imbalance (max deviation from the mean) must
// stay under 10%.
func TestRingBalance(t *testing.T) {
	for _, nodes := range []int{3, 5, 8} {
		members := make([]string, nodes)
		for i := range members {
			members[i] = fmt.Sprintf("10.0.0.%d:11211", i+1)
		}
		r := NewRing(members, 128)
		counts := make(map[string]int, nodes)
		const n = 100_000
		for _, k := range keys(n) {
			counts[r.Owner(k)]++
		}
		mean := float64(n) / float64(nodes)
		for m, c := range counts {
			dev := (float64(c) - mean) / mean
			if dev < 0 {
				dev = -dev
			}
			if dev > 0.10 {
				t.Errorf("%d nodes: member %s owns %d keys, %.1f%% from mean %.0f (want < 10%%)",
					nodes, m, c, 100*dev, mean)
			}
		}
		if len(counts) != nodes {
			t.Errorf("%d nodes: only %d received keys", nodes, len(counts))
		}
	}
}

// TestRingMinimalDisruption checks the consistent-hashing property: removing
// one of N members must move only the removed member's keys — every key
// owned by a survivor keeps its owner.
func TestRingMinimalDisruption(t *testing.T) {
	members := []string{"a:1", "b:2", "c:3"}
	before := NewRing(members, 128)
	after := NewRing([]string{"a:1", "b:2"}, 128)
	moved, total := 0, 0
	for _, k := range keys(50_000) {
		ob, oa := before.Owner(k), after.Owner(k)
		total++
		if ob == "c:3" {
			moved++
			if oa == "c:3" {
				t.Fatalf("removed member still owns %q", k)
			}
			continue
		}
		if ob != oa {
			t.Fatalf("key %q moved from surviving owner %s to %s", k, ob, oa)
		}
	}
	// The removed member should have owned roughly a third of the keys.
	if frac := float64(moved) / float64(total); frac < 0.25 || frac > 0.42 {
		t.Errorf("removal moved %.1f%% of keys, want ~33%%", 100*frac)
	}
}

func TestRendezvousMinimalDisruption(t *testing.T) {
	before := NewRendezvous([]string{"a:1", "b:2", "c:3"})
	after := NewRendezvous([]string{"a:1", "b:2"})
	for _, k := range keys(20_000) {
		if ob := before.Owner(k); ob != "c:3" && ob != after.Owner(k) {
			t.Fatalf("key %q moved from surviving owner %s to %s", k, ob, after.Owner(k))
		}
	}
}

func TestRendezvousBalance(t *testing.T) {
	members := []string{"a:1", "b:2", "c:3", "d:4"}
	r := NewRendezvous(members)
	counts := make(map[string]int)
	const n = 100_000
	for _, k := range keys(n) {
		counts[r.Owner(k)]++
	}
	mean := float64(n) / float64(len(members))
	for m, c := range counts {
		dev := (float64(c) - mean) / mean
		if dev < 0 {
			dev = -dev
		}
		if dev > 0.05 { // HRW balances tighter than a vnode ring
			t.Errorf("member %s owns %d keys, %.1f%% from mean (want < 5%%)", m, c, 100*dev)
		}
	}
}

func TestSelectorKinds(t *testing.T) {
	members := []string{"a:1", "b:2"}
	for _, kind := range []string{"", "ring", "rendezvous"} {
		s, err := NewSelector(kind, members, 0)
		if err != nil {
			t.Fatalf("NewSelector(%q): %v", kind, err)
		}
		if got := s.Owner("k"); got != "a:1" && got != "b:2" {
			t.Fatalf("NewSelector(%q).Owner = %q", kind, got)
		}
		if got := len(s.Members()); got != 2 {
			t.Fatalf("NewSelector(%q).Members len = %d", kind, got)
		}
	}
	if _, err := NewSelector("bogus", members, 0); err == nil {
		t.Fatal("NewSelector(bogus) succeeded, want error")
	}
}

func TestSelectorEdgeCases(t *testing.T) {
	if o := NewRing(nil, 16).Owner("k"); o != "" {
		t.Fatalf("empty ring Owner = %q, want \"\"", o)
	}
	if o := NewRendezvous(nil).Owner("k"); o != "" {
		t.Fatalf("empty rendezvous Owner = %q, want \"\"", o)
	}
	// Duplicates and empty entries are dropped.
	r := NewRing([]string{"a:1", "", "a:1", "b:2"}, 8)
	if got := r.Members(); len(got) != 2 {
		t.Fatalf("Members = %v, want 2 entries", got)
	}
	// A single member owns everything.
	solo := NewRing([]string{"only:1"}, 8)
	for _, k := range keys(100) {
		if solo.Owner(k) != "only:1" {
			t.Fatal("single-member ring missed a key")
		}
	}
}

func BenchmarkRingOwner(b *testing.B) {
	members := make([]string, 8)
	for i := range members {
		members[i] = fmt.Sprintf("10.0.0.%d:11211", i+1)
	}
	r := NewRing(members, 128)
	ks := keys(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Owner(ks[i&1023])
	}
}

func BenchmarkRendezvousOwner(b *testing.B) {
	members := make([]string, 8)
	for i := range members {
		members[i] = fmt.Sprintf("10.0.0.%d:11211", i+1)
	}
	r := NewRendezvous(members)
	ks := keys(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Owner(ks[i&1023])
	}
}

// BenchmarkRingDistribution is the CI ring-distribution bench: it reports
// the keys-per-node imbalance at 128 vnodes as a custom metric
// (imbalance-pct must stay < 10, asserted by TestRingBalance).
func BenchmarkRingDistribution(b *testing.B) {
	members := make([]string, 5)
	for i := range members {
		members[i] = fmt.Sprintf("10.0.0.%d:11211", i+1)
	}
	ks := keys(100_000)
	var worst float64
	for i := 0; i < b.N; i++ {
		r := NewRing(members, 128)
		counts := make(map[string]int, len(members))
		for _, k := range ks {
			counts[r.Owner(k)]++
		}
		mean := float64(len(ks)) / float64(len(members))
		worst = 0
		for _, c := range counts {
			dev := (float64(c) - mean) / mean
			if dev < 0 {
				dev = -dev
			}
			if dev > worst {
				worst = dev
			}
		}
	}
	b.ReportMetric(100*worst, "imbalance-pct")
}
