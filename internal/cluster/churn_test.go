package cluster

import (
	"errors"
	"os"
	"runtime"
	"testing"
	"time"
)

// countFDs returns the number of open file descriptors, or -1 where
// /proc is unavailable (non-Linux).
func countFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}

// waitSteady polls fn until it returns a value <= want or the deadline
// passes, returning the last observation. Connection teardown is
// asynchronous (reader goroutines notice the close), so leak checks
// must tolerate a settling window.
func waitSteady(want int, fn func() int) int {
	deadline := time.Now().Add(2 * time.Second)
	last := fn()
	for last > want && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		last = fn()
	}
	return last
}

// TestSetMembersChurnNoLeaks drives repeated member add/remove cycles
// with live traffic and asserts goroutines and file descriptors return
// to baseline: departed members' clients must close their pooled AND
// in-flight connections promptly, not strand them until GC.
func TestSetMembersChurnNoLeaks(t *testing.T) {
	peerA := newFakePeer(t)
	peerB := newFakePeer(t)
	peerA.set("k", []byte("v"))
	peerB.set("k", []byte("v"))

	p, err := New(Config{Self: "self:0", Members: []string{"self:0", peerA.addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Prime one connection so the baseline includes a warm pool.
	if _, err := p.ClientFor(peerA.addr()).Get("k", false, 0); err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	baseGoros := runtime.NumGoroutine()
	baseFDs := countFDs()

	for i := 0; i < 25; i++ {
		// Add B, touch it so a real connection opens, then drop it again.
		if err := p.SetMembers([]string{"self:0", peerA.addr(), peerB.addr()}); err != nil {
			t.Fatalf("cycle %d add: %v", i, err)
		}
		if _, err := p.ClientFor(peerB.addr()).Get("k", false, 0); err != nil {
			t.Fatalf("cycle %d get via B: %v", i, err)
		}
		if err := p.SetMembers([]string{"self:0", peerA.addr()}); err != nil {
			t.Fatalf("cycle %d remove: %v", i, err)
		}
		if p.ClientFor(peerB.addr()) != nil {
			t.Fatalf("cycle %d: departed member still has a client", i)
		}
	}

	runtime.GC()
	// Allow a little slack: test runtime internals and the fake peers'
	// accept loops fluctuate by a few goroutines.
	if g := waitSteady(baseGoros+3, runtime.NumGoroutine); g > baseGoros+3 {
		t.Errorf("goroutines leaked across churn: %d -> %d", baseGoros, g)
	}
	if baseFDs >= 0 {
		if f := waitSteady(baseFDs+3, countFDs); f > baseFDs+3 {
			t.Errorf("file descriptors leaked across churn: %d -> %d", baseFDs, f)
		}
	}
}

// TestSetMembersClosesInFlight: removing a member must fail that
// member's in-flight requests promptly instead of letting them run to
// their own timeout against a node we no longer route to.
func TestSetMembersClosesInFlight(t *testing.T) {
	peer := newFakePeer(t)
	peer.set("k", []byte("v"))
	p, err := New(Config{Self: "self:0", Members: []string{"self:0", peer.addr()},
		Client: ClientOptions{Retries: -1, OpTimeout: 30 * time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	cl := p.ClientFor(peer.addr())
	if _, err := cl.Get("k", false, 0); err != nil {
		t.Fatal(err) // prime the pool
	}
	peer.delay.Store(int64(10 * time.Second))
	done := make(chan error, 1)
	go func() {
		_, err := cl.Get("k", false, 0)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the request reach the peer
	start := time.Now()
	if err := p.SetMembers([]string{"self:0"}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("in-flight request to a removed member succeeded after close")
		}
		if e := time.Since(start); e > 2*time.Second {
			t.Errorf("in-flight request took %v to fail after removal, want prompt", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request still blocked 5s after member removal")
	}
	// The closed client refuses new work outright.
	if _, err := cl.Get("k", false, 0); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("removed member's client Get = %v, want ErrClientClosed", err)
	}
}

// TestSetMembersSingleNodeRing: shrinking to just self must leave a
// working ring where self owns every key and holds no peer clients.
func TestSetMembersSingleNodeRing(t *testing.T) {
	p, err := New(Config{Self: "a:1", Members: []string{"a:1", "b:2", "c:3"}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.SetMembers([]string{"a:1"}); err != nil {
		t.Fatalf("shrink to single node: %v", err)
	}
	if got := p.Members(); len(got) != 1 || got[0] != "a:1" {
		t.Fatalf("Members = %v, want [a:1]", got)
	}
	for _, k := range keys(200) {
		if !p.IsOwner(k) {
			t.Fatalf("single-node ring does not own %q", k)
		}
	}
	if len(p.Snapshots()) != 0 {
		t.Fatalf("single-node ring still holds peer clients: %v", p.Snapshots())
	}
}

// TestSetMembersDuplicateAddresses: duplicate entries collapse to one
// member with one client, and routing matches the deduplicated list.
func TestSetMembersDuplicateAddresses(t *testing.T) {
	p, err := New(Config{Self: "a:1", Members: []string{"a:1", "b:2"}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.SetMembers([]string{"b:2", "a:1", "b:2", "a:1", "b:2"}); err != nil {
		t.Fatalf("duplicate member list: %v", err)
	}
	if got := p.Members(); len(got) != 2 {
		t.Fatalf("Members = %v, want 2 deduplicated entries", got)
	}
	if len(p.Snapshots()) != 1 {
		t.Fatalf("want exactly one remote client, have %d", len(p.Snapshots()))
	}
	ring := NewRing([]string{"a:1", "b:2"}, DefaultVNodes)
	for _, k := range keys(200) {
		if p.Owner(k) != ring.Owner(k) {
			t.Fatalf("duplicated list routes %q differently from deduplicated ring", k)
		}
	}
}

// TestSetMembersReAddResetsBreaker: a member that left with an open
// circuit breaker must come back with a fresh (closed) one — the old
// failure history belongs to the old incarnation.
func TestSetMembersReAddResetsBreaker(t *testing.T) {
	peer := newFakePeer(t)
	peer.set("k", []byte("v"))
	p, err := New(Config{Self: "self:0", Members: []string{"self:0", peer.addr()},
		Client: ClientOptions{
			Retries:     -1,
			DialTimeout: 200 * time.Millisecond,
			Breaker:     BreakerConfig{Threshold: 2, Cooldown: time.Hour},
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	peer.dropAll.Store(true)
	cl := p.ClientFor(peer.addr())
	for i := 0; i < 2; i++ {
		if _, err := cl.Get("k", false, 0); err == nil {
			t.Fatalf("Get %d succeeded against dropping peer", i)
		}
	}
	if !cl.Stats().BreakerOpen {
		t.Fatal("breaker not open after threshold failures")
	}
	// Remove and re-add: the hour-long cooldown must not follow it back.
	if err := p.SetMembers([]string{"self:0"}); err != nil {
		t.Fatal(err)
	}
	if err := p.SetMembers([]string{"self:0", peer.addr()}); err != nil {
		t.Fatal(err)
	}
	peer.dropAll.Store(false)
	fresh := p.ClientFor(peer.addr())
	if fresh == cl {
		t.Fatal("re-added member reused the departed client")
	}
	if fresh.Stats().BreakerOpen {
		t.Fatal("re-added member inherited an open breaker")
	}
	if _, err := fresh.Get("k", false, 0); err != nil {
		t.Fatalf("re-added member unusable: %v", err)
	}
}
