package cluster

import (
	"sync"
	"time"
)

// BreakerConfig tunes a per-peer circuit breaker.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that opens the circuit;
	// <= 0 means DefaultBreakerThreshold.
	Threshold int
	// Cooldown is how long an open circuit rejects requests before
	// allowing one half-open probe; <= 0 means DefaultBreakerCooldown.
	Cooldown time.Duration
}

// Breaker defaults: five consecutive failures is past bad luck on a healthy
// peer, and a 500ms cooldown keeps a dead peer from adding more than ~2
// failed dials per second of drag while staying quick to re-admit.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 500 * time.Millisecond
)

// breaker is a consecutive-failure circuit breaker. Closed it admits all
// requests; Threshold consecutive failures open it; open it fails fast for
// Cooldown, then admits exactly one half-open probe whose outcome closes or
// re-opens the circuit.
type breaker struct {
	threshold int
	cooldown  time.Duration
	// now is stubbed by tests.
	now func() time.Time

	mu        sync.Mutex
	fails     int
	openUntil time.Time
	probing   bool // a half-open probe is in flight
	opens     uint64
}

func newBreaker(cfg BreakerConfig) *breaker {
	b := &breaker{threshold: cfg.Threshold, cooldown: cfg.Cooldown, now: time.Now}
	if b.threshold <= 0 {
		b.threshold = DefaultBreakerThreshold
	}
	if b.cooldown <= 0 {
		b.cooldown = DefaultBreakerCooldown
	}
	return b
}

// allow reports whether a request may proceed. While open it returns false
// until the cooldown elapses, then true for a single probe at a time.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openUntil.IsZero() {
		return true
	}
	if b.now().Before(b.openUntil) {
		return false
	}
	if b.probing {
		return false
	}
	b.probing = true
	return true
}

// success records a completed request and closes the circuit.
func (b *breaker) success() {
	b.mu.Lock()
	b.fails = 0
	b.openUntil = time.Time{}
	b.probing = false
	b.mu.Unlock()
}

// failure records a failed request, opening the circuit at the threshold or
// re-opening it when a half-open probe fails.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.probing || b.fails >= b.threshold {
		b.probing = false
		if b.openUntil.IsZero() || !b.now().Before(b.openUntil) {
			b.opens++
		}
		b.openUntil = b.now().Add(b.cooldown)
	}
}

// open reports whether the circuit is currently rejecting requests.
func (b *breaker) open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.openUntil.IsZero() && b.now().Before(b.openUntil)
}

// openCount returns how many times the circuit has opened.
func (b *breaker) openCount() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
