package cluster

import (
	"runtime"
	"testing"
	"time"

	"pamakv/internal/proto"
)

// TestShedReplyNotBreakerFailure: a peer that is shedding load answers with
// SERVER_ERROR busy (shed) — a complete, parsed response. Those replies must
// count as breaker successes, not failures: an overloaded-but-alive peer is
// not a dead peer, and tripping the circuit on sheds would turn a load spike
// into a spurious partition.
func TestShedReplyNotBreakerFailure(t *testing.T) {
	peer := newFakePeer(t)
	peer.shedAll.Store(true)
	c := NewClient(peer.addr(), ClientOptions{
		Retries: -1,
		Breaker: BreakerConfig{Threshold: 2, Cooldown: time.Minute},
	})
	defer c.Close()

	for i := 0; i < 20; i++ {
		resp, err := c.Get("k", false, 0)
		if err != nil {
			t.Fatalf("op %d: shed reply surfaced as transport error: %v", i, err)
		}
		if !proto.IsShedResponse(resp) {
			t.Fatalf("op %d: response %q %q is not the shed reply", i, resp.Status, resp.Message)
		}
	}
	st := c.Stats()
	if st.BreakerOpens != 0 || st.BreakerOpen {
		t.Fatalf("breaker tripped on shed replies: opens=%d open=%v", st.BreakerOpens, st.BreakerOpen)
	}
	if st.Errors != 0 {
		t.Fatalf("shed replies counted as errors: %d", st.Errors)
	}

	// The moment the peer stops shedding, the same client serves normally
	// — no cooldown to wait out, because the circuit never opened.
	peer.shedAll.Store(false)
	peer.set("k", []byte("v"))
	resp, err := c.Get("k", false, 0)
	if err != nil || len(resp.Values) != 1 {
		t.Fatalf("recovery get = %+v, %v", resp, err)
	}
}

// TestClientDegradedHalvesRetries: degraded mode must cut the transport
// retry budget in half so an overloaded node does not amplify its own load
// onto struggling peers.
func TestClientDegradedHalvesRetries(t *testing.T) {
	peer := newFakePeer(t)
	peer.dropAll.Store(true)
	c := NewClient(peer.addr(), ClientOptions{Retries: 2, DialTimeout: 200 * time.Millisecond})
	defer c.Close()

	retriesAfter := func() uint64 {
		c.Do([]byte("get k\r\n")) // fails after the retry budget
		return c.Stats().Retries
	}
	if got := retriesAfter(); got != 2 {
		t.Fatalf("healthy op used %d retries, want the full budget of 2", got)
	}
	c.SetDegraded(true)
	if !c.Degraded() {
		t.Fatal("Degraded() = false after SetDegraded(true)")
	}
	if got := retriesAfter() - 2; got != 1 {
		t.Fatalf("degraded op used %d retries, want the halved budget of 1", got)
	}
	c.SetDegraded(false)
	if got := retriesAfter() - 3; got != 2 {
		t.Fatalf("recovered op used %d retries, want 2 again", got)
	}
}

// TestPeersDegradedDisablesHedging: while the local node sheds, hedged peer
// reads are provably off — HedgeDelay returns 0 for every penalty — and the
// flag reaches every client, including ones created by a later SetMembers.
func TestPeersDegradedDisablesHedging(t *testing.T) {
	members := []string{"127.0.0.1:11", "127.0.0.1:12", "127.0.0.1:13"}
	p, err := New(Config{Self: members[0], Members: members, Hedge: DefaultHedgePolicy()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if d := p.HedgeDelay(4.0); d <= 0 {
		t.Fatalf("healthy expensive-penalty hedge delay = %v, want > 0", d)
	}
	p.SetDegraded(true)
	if !p.Degraded() {
		t.Fatal("Degraded() = false after SetDegraded(true)")
	}
	for _, pen := range []float64{0.0005, 0.05, 0.5, 4.0} {
		if d := p.HedgeDelay(pen); d != 0 {
			t.Fatalf("degraded HedgeDelay(%v) = %v, want 0 (hedging off)", pen, d)
		}
	}
	for _, m := range members[1:] {
		if c := p.ClientFor(m); c == nil || !c.Degraded() {
			t.Fatalf("client for %s did not inherit degraded mode", m)
		}
	}

	// A membership change mid-shed: the replacement client must inherit
	// the degraded flag, not reset it.
	added := "127.0.0.1:14"
	if err := p.SetMembers(append(members, added)); err != nil {
		t.Fatal(err)
	}
	if c := p.ClientFor(added); c == nil || !c.Degraded() {
		t.Fatal("client added during shedding did not inherit degraded mode")
	}

	p.SetDegraded(false)
	if d := p.HedgeDelay(4.0); d <= 0 {
		t.Fatalf("hedge delay after recovery = %v, want > 0", d)
	}
	if c := p.ClientFor(added); c.Degraded() {
		t.Fatal("client still degraded after SetDegraded(false)")
	}
}

// TestHedgedNoGoroutineLeak: the hedged result channel is buffered for both
// attempts, so the losing attempt's send never blocks and its goroutine
// always exits. Run enough hedged GETs with a slow peer (every primary loses
// or ties with its hedge) and the goroutine count must return to baseline.
func TestHedgedNoGoroutineLeak(t *testing.T) {
	peer := newFakePeer(t)
	peer.set("k", []byte("v"))
	c := NewClient(peer.addr(), ClientOptions{})

	peer.delay.Store(int64(30 * time.Millisecond))
	before := runtime.NumGoroutine()
	for i := 0; i < 16; i++ {
		if _, err := c.Get("k", false, time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats().Hedges == 0 {
		t.Fatal("no hedges fired; the leak path was never exercised")
	}
	// Closing the client shuts the pooled connections, and with them the
	// fake peer's per-connection goroutines; what remains above baseline
	// can only be leaked hedge attempts stuck sending their result.
	c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after hedged gets: before=%d now=%d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
