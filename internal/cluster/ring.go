// Package cluster turns a set of pama-server processes into one cache tier.
//
// Ownership: every key has exactly one owning node, chosen by a hash-based
// Selector over the member list. The owner is the only node that fills the
// key from the backend; every other node forwards to the owner, so one
// logical cache line exists per key cluster-wide (plus short-lived copies in
// non-owner hot caches). This is the distributed analogue of the paper's
// penalty pricing: a forwarded peer read costs ~100µs, a backend recompute
// costs 1ms–5s, so the tier inserts a cheap level between "local RAM" and
// "recompute".
//
// Two selectors share one interface:
//
//   - Ring: consistent hashing with virtual nodes. Membership change moves
//     only the keys whose arc changed hands (~K/N of them), which is what
//     keeps a node kill from flushing the whole tier.
//   - Rendezvous: highest-random-weight hashing. No vnode tuning and
//     perfect minimal disruption, at O(N) per lookup — fine for small N.
//
// Both are deterministic functions of the member list, so every node (and
// the load generator) computes identical ownership without coordination.
package cluster

import (
	"fmt"
	"sort"
	"strconv"

	"pamakv/internal/kv"
)

// DefaultVNodes is the virtual-node count per member used when a Ring is
// built with vnodes <= 0. 128 keeps the keys-per-node imbalance under ~10%
// for small clusters (see TestRingBalance) while the ring stays a few KiB.
const DefaultVNodes = 128

// Selector picks the owning member for a key. Implementations are immutable
// and safe for concurrent use; membership changes build a new Selector.
type Selector interface {
	// Owner returns the member owning key, or "" for an empty member list.
	Owner(key string) string
	// Members returns the member list (sorted, deduplicated).
	Members() []string
}

// NewSelector builds the named selector kind: "ring" (or "") for consistent
// hashing with vnodes virtual nodes, "rendezvous" for HRW hashing.
func NewSelector(kind string, members []string, vnodes int) (Selector, error) {
	switch kind {
	case "", "ring":
		return NewRing(members, vnodes), nil
	case "rendezvous":
		return NewRendezvous(members), nil
	default:
		return nil, fmt.Errorf("cluster: unknown selector %q (want ring or rendezvous)", kind)
	}
}

// normalize sorts and dedupes a member list, dropping empty entries.
func normalize(members []string) []string {
	out := make([]string, 0, len(members))
	seen := make(map[string]struct{}, len(members))
	for _, m := range members {
		if m == "" {
			continue
		}
		if _, ok := seen[m]; ok {
			continue
		}
		seen[m] = struct{}{}
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// point is one virtual node on the ring: a hash position and the member it
// maps to.
type point struct {
	hash uint64
	node int32
}

// Ring is a consistent-hash ring with virtual nodes.
type Ring struct {
	members []string
	points  []point // sorted by hash
}

// NewRing builds a ring over members with vnodes virtual nodes each
// (DefaultVNodes when vnodes <= 0). The construction is deterministic:
// equal member lists produce identical rings on every node.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	ms := normalize(members)
	r := &Ring{members: ms, points: make([]point, 0, len(ms)*vnodes)}
	for i, m := range ms {
		// Each vnode hashes "member#k"; the strong mixer in HashString
		// spreads the positions even though the inputs share a prefix.
		for k := 0; k < vnodes; k++ {
			h := kv.HashString(m + "#" + strconv.Itoa(k))
			r.points = append(r.points, point{hash: h, node: int32(i)})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties (vanishingly rare) break by member index so the ring
		// is still a pure function of the member list.
		return r.points[a].node < r.points[b].node
	})
	return r
}

// ringProbes is the probe count of multi-probe consistent hashing: each key
// hashes to several candidate positions and the one closest to its clockwise
// successor wins. Min-of-k distance sampling discounts members that happen
// to own long arcs, cutting the keys-per-node imbalance from ~1/sqrt(vnodes)
// (>10% at 128 vnodes) to well under 10% — without growing the ring.
const ringProbes = 8

// Owner returns the member owning key: among ringProbes probe positions
// derived from the key's hash, the vnode with the smallest clockwise
// distance to its probe wins. Removing a member deletes only its vnodes, so
// a key moves only if its winning vnode belonged to the removed member —
// distances to surviving vnodes only shrink or stay equal (minimal
// disruption, checked by TestRingMinimalDisruption).
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := kv.HashString(key)
	var best int32
	bestDist := ^uint64(0)
	for p := 0; p < ringProbes; p++ {
		// Splitmix64 probe sequence: deterministic per key.
		ph := kv.Mix64(h + uint64(p)*0x9e3779b97f4a7c15)
		i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= ph })
		if i == len(r.points) {
			i = 0 // wrap: the ring is circular
		}
		// Clockwise distance; uint64 wraparound handles the wrapped case.
		if d := r.points[i].hash - ph; d < bestDist {
			bestDist, best = d, r.points[i].node
		}
	}
	return r.members[best]
}

// Members returns the ring's member list.
func (r *Ring) Members() []string { return r.members }

// Rendezvous selects owners by highest-random-weight hashing: the owner of
// key is the member maximizing mix(hash(member) ^ hash(key)).
type Rendezvous struct {
	members []string
	hashes  []uint64 // precomputed per-member hash
}

// NewRendezvous builds an HRW selector over members.
func NewRendezvous(members []string) *Rendezvous {
	ms := normalize(members)
	r := &Rendezvous{members: ms, hashes: make([]uint64, len(ms))}
	for i, m := range ms {
		r.hashes[i] = kv.HashString(m)
	}
	return r
}

// Owner returns the highest-weight member for key.
func (r *Rendezvous) Owner(key string) string {
	if len(r.members) == 0 {
		return ""
	}
	kh := kv.HashString(key)
	best, bestW := 0, uint64(0)
	for i, mh := range r.hashes {
		if w := kv.Mix64(mh ^ kh); w > bestW || (w == bestW && i < best) {
			best, bestW = i, w
		}
	}
	return r.members[best]
}

// Members returns the selector's member list.
func (r *Rendezvous) Members() []string { return r.members }
