package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Config describes one node's view of the cluster.
type Config struct {
	// Self is this node's own address as it appears in Members.
	Self string
	// Members is the full member list, Self included.
	Members []string
	// Hash selects the owner-selection scheme: "ring" (default) or
	// "rendezvous".
	Hash string
	// VNodes is the ring's virtual-node count per member (ring only);
	// <= 0 means DefaultVNodes.
	VNodes int
	// Client tunes the per-peer connection pools.
	Client ClientOptions
	// Hedge maps penalty subclasses to hedge delays for peer GETs. The
	// zero value disables hedging; use DefaultHedgePolicy for the
	// penalty-aware schedule.
	Hedge HedgePolicy
}

// Peers is one node's routing table: the owner selector plus a pooled
// client per remote member. Safe for concurrent use; SetMembers may be
// called while requests are in flight.
type Peers struct {
	self  string
	cfg   Config
	hedge HedgePolicy

	// degraded is set while the local node is shedding load: hedging is
	// disabled and every peer client halves its retry budget, so an
	// overloaded node does not amplify its load onto the cluster.
	degraded atomic.Bool

	mu      sync.RWMutex
	sel     Selector
	clients map[string]*Client
}

// New validates cfg and builds the routing table. Self must appear in
// Members; clients for the remote members are created lazily-dialed (no
// connection until first use).
func New(cfg Config) (*Peers, error) {
	members := normalize(cfg.Members)
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Self is required")
	}
	found := false
	for _, m := range members {
		if m == cfg.Self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: self %q not in members %v", cfg.Self, members)
	}
	sel, err := NewSelector(cfg.Hash, members, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	p := &Peers{
		self:    cfg.Self,
		cfg:     cfg,
		hedge:   cfg.Hedge,
		sel:     sel,
		clients: make(map[string]*Client, len(members)),
	}
	for _, m := range members {
		if m != cfg.Self {
			p.clients[m] = NewClient(m, cfg.Client)
		}
	}
	return p, nil
}

// Self returns this node's address.
func (p *Peers) Self() string { return p.self }

// Owner returns the member owning key under the current membership.
func (p *Peers) Owner(key string) string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.sel.Owner(key)
}

// IsOwner reports whether this node owns key.
func (p *Peers) IsOwner(key string) bool { return p.Owner(key) == p.self }

// ClientFor returns the pooled client for a remote member, or nil for self
// and unknown members.
func (p *Peers) ClientFor(addr string) *Client {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.clients[addr]
}

// Members returns the current member list.
func (p *Peers) Members() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.sel.Members()
}

// HedgeDelay returns the hedge delay for a key with the given miss penalty,
// or 0 (no hedge) while the node is degraded — a shedding node must not fire
// duplicate reads at its peers.
func (p *Peers) HedgeDelay(pen float64) time.Duration {
	if p.degraded.Load() {
		return 0
	}
	return p.hedge.DelayFor(pen)
}

// SetDegraded flips the cluster-facing degraded mode: hedging off, retry
// budgets halved, on every current (and future) peer client. Driven by the
// overload controller's tier transitions.
func (p *Peers) SetDegraded(d bool) {
	p.degraded.Store(d)
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, c := range p.clients {
		c.SetDegraded(d)
	}
}

// Degraded reports whether cluster-facing degraded mode is on.
func (p *Peers) Degraded() bool { return p.degraded.Load() }

// SetMembers rebuilds the routing table for a new member list. The
// selector is swapped atomically: keys whose arc changed hands route to
// their new owner on the next request. Clients of departed members are
// closed promptly (pooled and in-flight connections torn down, breaker
// state discarded); surviving clients keep their pools; a re-added member
// gets a fresh client with a closed (allowing) breaker.
//
// Self may be absent from the new list: the node then enters proxy mode —
// it owns no keys and forwards every request to the remaining members.
// This is what a draining node runs while it streams its residents out
// (see internal/membership). An empty list is refused: a node with no
// members at all could not route anything.
func (p *Peers) SetMembers(members []string) error {
	ms := normalize(members)
	if len(ms) == 0 {
		return fmt.Errorf("cluster: empty member list")
	}
	sel, err := NewSelector(p.cfg.Hash, ms, p.cfg.VNodes)
	if err != nil {
		return err
	}
	keep := make(map[string]struct{}, len(ms))
	for _, m := range ms {
		keep[m] = struct{}{}
	}
	p.mu.Lock()
	p.sel = sel
	var closing []*Client
	for addr, c := range p.clients {
		if _, ok := keep[addr]; !ok {
			closing = append(closing, c)
			delete(p.clients, addr)
		}
	}
	for _, m := range ms {
		if m != p.self {
			if _, ok := p.clients[m]; !ok {
				nc := NewClient(m, p.cfg.Client)
				nc.SetDegraded(p.degraded.Load())
				p.clients[m] = nc
			}
		}
	}
	p.mu.Unlock()
	for _, c := range closing {
		c.Close()
	}
	return nil
}

// Snapshots returns per-peer counter snapshots keyed by peer address.
func (p *Peers) Snapshots() map[string]ClientStats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make(map[string]ClientStats, len(p.clients))
	for addr, c := range p.clients {
		out[addr] = c.Stats()
	}
	return out
}

// Close closes every peer client.
func (p *Peers) Close() {
	p.mu.Lock()
	clients := make([]*Client, 0, len(p.clients))
	for _, c := range p.clients {
		clients = append(clients, c)
	}
	p.clients = make(map[string]*Client)
	p.mu.Unlock()
	for _, c := range clients {
		c.Close()
	}
}
