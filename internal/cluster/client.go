package cluster

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pamakv/internal/bufpool"
	"pamakv/internal/obs"
	"pamakv/internal/penalty"
	"pamakv/internal/proto"
)

// ErrPeerDown reports a request rejected without touching the wire because
// the peer's circuit breaker is open.
var ErrPeerDown = errors.New("cluster: peer circuit open")

// ErrClientClosed reports a request on a closed client (the peer left the
// membership).
var ErrClientClosed = errors.New("cluster: peer client closed")

// Client connection defaults. One op spans write + peer-side service (which
// may include the peer's own backend fetch of up to the 5s penalty cap,
// scaled) + read, hence the generous op deadline.
const (
	DefaultPoolSize    = 4
	DefaultDialTimeout = 500 * time.Millisecond
	DefaultOpTimeout   = 3 * time.Second
	DefaultRetries     = 1
)

// ClientOptions tune one peer connection pool.
type ClientOptions struct {
	// PoolSize caps idle pooled connections; <= 0 means DefaultPoolSize.
	// In-flight connections are unbounded (each op holds at most one).
	PoolSize int
	// DialTimeout bounds establishing a connection; <= 0 means
	// DefaultDialTimeout.
	DialTimeout time.Duration
	// OpTimeout is the per-attempt round-trip deadline; <= 0 means
	// DefaultOpTimeout.
	OpTimeout time.Duration
	// Retries is how many extra attempts an op gets after a transport
	// failure (a fresh connection each time); < 0 means none, 0 means
	// DefaultRetries.
	Retries int
	// Breaker tunes the per-peer circuit breaker.
	Breaker BreakerConfig
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.PoolSize <= 0 {
		o.PoolSize = DefaultPoolSize
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = DefaultDialTimeout
	}
	if o.OpTimeout <= 0 {
		o.OpTimeout = DefaultOpTimeout
	}
	if o.Retries == 0 {
		o.Retries = DefaultRetries
	} else if o.Retries < 0 {
		o.Retries = 0
	}
	return o
}

// pconn is one pooled connection with its buffered endpoints.
type pconn struct {
	c net.Conn
	r *bufio.Reader
	w *bufio.Writer
}

// Client is a connection-pooled Memcached-text-protocol client for one peer.
// It is safe for concurrent use; every method may be called from many
// request goroutines at once.
type Client struct {
	addr string
	opts ClientOptions
	idle chan *pconn
	br   *breaker

	closed atomic.Bool
	// degraded halves the retry budget while the local node is shedding:
	// an overloaded node must not amplify load onto its peers.
	degraded atomic.Bool

	// live tracks every open connection, pooled or in flight, so Close
	// can tear all of them down immediately when the member is removed —
	// an in-flight op against a departed peer fails now, not at its op
	// deadline.
	connMu sync.Mutex
	live   map[net.Conn]struct{}

	requests  atomic.Uint64
	errs      atomic.Uint64
	retries   atomic.Uint64
	fastFails atomic.Uint64
	hedges    atomic.Uint64
	hedgeWins atomic.Uint64
	dials     atomic.Uint64
	lat       *obs.Hist
}

// NewClient builds a pooled client for the peer at addr. No connection is
// dialed until the first request.
func NewClient(addr string, opts ClientOptions) *Client {
	opts = opts.withDefaults()
	return &Client{
		addr: addr,
		opts: opts,
		idle: make(chan *pconn, opts.PoolSize),
		br:   newBreaker(opts.Breaker),
		lat:  obs.NewHist(1e-6, 7),
		live: make(map[net.Conn]struct{}),
	}
}

// Addr returns the peer's address.
func (c *Client) Addr() string { return c.addr }

// Close closes every connection — pooled and in flight — immediately.
// In-flight ops fail with a transport error (their reads/writes abort on
// the closed socket); subsequent ops fail with ErrClientClosed. This is
// what membership removal relies on: a departed member's pool must not
// linger until idle-reaped.
func (c *Client) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	for {
		select {
		case pc := <-c.idle:
			c.drop(pc)
		default:
			c.connMu.Lock()
			for conn := range c.live {
				conn.Close()
				delete(c.live, conn)
			}
			c.connMu.Unlock()
			return
		}
	}
}

// get acquires a pooled connection or dials a new one. Closed clients
// refuse immediately, so retry loops of in-flight ops fail fast after a
// member removal instead of re-dialing the departed peer.
func (c *Client) get() (*pconn, error) {
	if c.closed.Load() {
		return nil, ErrClientClosed
	}
	select {
	case pc := <-c.idle:
		return pc, nil
	default:
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	c.dials.Add(1)
	c.connMu.Lock()
	if c.closed.Load() {
		c.connMu.Unlock()
		conn.Close()
		return nil, ErrClientClosed
	}
	c.live[conn] = struct{}{}
	c.connMu.Unlock()
	return &pconn{
		c: conn,
		r: bufio.NewReaderSize(conn, 1<<14),
		w: bufio.NewWriterSize(conn, 1<<14),
	}, nil
}

// drop closes a connection and forgets it. Double-drops (Close racing an
// in-flight op's own error path) are harmless.
func (c *Client) drop(pc *pconn) {
	pc.c.Close()
	c.connMu.Lock()
	delete(c.live, pc.c)
	c.connMu.Unlock()
}

// put returns a healthy connection to the pool, closing it if the pool is
// full or the client is closed.
func (c *Client) put(pc *pconn) {
	if c.closed.Load() {
		c.drop(pc)
		return
	}
	select {
	case c.idle <- pc:
	default:
		c.drop(pc)
	}
}

// roundTrip sends one request and reads one response on a single
// connection. Transport failures close the connection and are retriable;
// a parsed response (even an error response) is final.
func (c *Client) roundTrip(req []byte) (*proto.Response, error) {
	pc, err := c.get()
	if err != nil {
		return nil, err
	}
	pc.c.SetDeadline(time.Now().Add(c.opts.OpTimeout))
	if _, err := pc.w.Write(req); err != nil {
		c.drop(pc)
		return nil, err
	}
	if err := pc.w.Flush(); err != nil {
		c.drop(pc)
		return nil, err
	}
	resp, err := proto.ReadResponse(pc.r)
	if err != nil {
		c.drop(pc)
		return nil, err
	}
	c.put(pc)
	return resp, nil
}

// SetDegraded flips load-amplification avoidance: while degraded, the
// retry budget halves. The server sets this when its overload controller
// leaves TierNormal.
func (c *Client) SetDegraded(d bool) { c.degraded.Store(d) }

// Degraded reports whether the client is in degraded (shedding) mode.
func (c *Client) Degraded() bool { return c.degraded.Load() }

// retryBudget is the transport-retry allowance for one op: the configured
// Retries, halved while degraded.
func (c *Client) retryBudget() int {
	if c.degraded.Load() {
		return c.opts.Retries / 2
	}
	return c.opts.Retries
}

// attempt runs roundTrip with the configured bounded retries. Each retry
// uses a fresh connection (the failed one was closed), which also flushes
// stale pooled connections that the peer idled out.
func (c *Client) attempt(req []byte) (resp *proto.Response, err error) {
	budget := c.retryBudget()
	for try := 0; ; try++ {
		resp, err = c.roundTrip(req)
		if err == nil || try >= budget || c.closed.Load() {
			return resp, err
		}
		c.retries.Add(1)
	}
}

// Do sends one pre-rendered request (see proto.AppendCommand) and returns
// the peer's response. It consults the circuit breaker, applies bounded
// retries, and records per-peer latency. Responses with error status are
// successful round-trips; only transport failures trip the breaker.
func (c *Client) Do(req []byte) (*proto.Response, error) {
	if c.closed.Load() {
		return nil, ErrClientClosed
	}
	if !c.br.allow() {
		c.fastFails.Add(1)
		return nil, ErrPeerDown
	}
	c.requests.Add(1)
	start := time.Now()
	resp, err := c.attempt(req)
	c.lat.Observe(time.Since(start).Seconds())
	if err != nil {
		c.errs.Add(1)
		c.br.failure()
		return nil, err
	}
	c.br.success()
	return resp, nil
}

// Get retrieves one key (gets semantics — the CAS token rides along — when
// withCAS). hedge > 0 arms a hedged duplicate: if the first attempt has not
// answered within hedge, a second identical request races it on another
// connection and the first response wins. GETs are idempotent, so the loser
// is simply discarded when it lands.
func (c *Client) Get(key string, withCAS bool, hedge time.Duration) (*proto.Response, error) {
	verb := "get"
	if withCAS {
		verb = "gets"
	}
	if hedge <= 0 {
		// Non-hedged requests finish before Get returns, so the rendered
		// request can live in a pooled buffer. The hedged path below must
		// not: the losing attempt's goroutine may still be writing req to
		// its connection after the winner has returned, so recycling the
		// buffer would hand its bytes to an unrelated request mid-write.
		reqBuf := bufpool.Get(0)
		b := append((*reqBuf)[:0], verb...)
		b = append(b, ' ')
		b = append(b, key...)
		*reqBuf = append(b, '\r', '\n')
		resp, err := c.Do(*reqBuf)
		bufpool.Put(reqBuf)
		return resp, err
	}
	req := append(append(append([]byte(verb), ' '), key...), '\r', '\n')
	if c.closed.Load() {
		return nil, ErrClientClosed
	}
	if !c.br.allow() {
		c.fastFails.Add(1)
		return nil, ErrPeerDown
	}
	c.requests.Add(1)
	start := time.Now()
	resp, err := c.hedged(req, hedge)
	c.lat.Observe(time.Since(start).Seconds())
	if err != nil {
		c.errs.Add(1)
		c.br.failure()
		return nil, err
	}
	c.br.success()
	return resp, nil
}

// hedged races the primary attempt against a duplicate fired after the
// hedge delay. The first success wins; both failing returns the last error.
func (c *Client) hedged(req []byte, hedge time.Duration) (*proto.Response, error) {
	type result struct {
		resp   *proto.Response
		err    error
		hedged bool
	}
	ch := make(chan result, 2)
	run := func(hedged bool) {
		resp, err := c.attempt(req)
		ch <- result{resp, err, hedged}
	}
	go run(false)
	t := time.NewTimer(hedge)
	defer t.Stop()
	launched := 1
	for {
		select {
		case r := <-ch:
			if r.err == nil {
				if r.hedged {
					c.hedgeWins.Add(1)
				}
				return r.resp, nil
			}
			launched--
			if launched == 0 {
				// Every launched attempt failed.
				return nil, r.err
			}
		case <-t.C:
			if launched == 1 {
				c.hedges.Add(1)
				launched++
				go run(true)
			}
		}
	}
}

// ClientStats is a point-in-time snapshot of one peer client's counters.
type ClientStats struct {
	// Requests counts ops admitted past the breaker.
	Requests uint64 `json:"requests"`
	// Errors counts ops that failed at transport level after retries.
	Errors uint64 `json:"errors"`
	// Retries counts per-attempt transport retries.
	Retries uint64 `json:"retries"`
	// Dials counts new connections established.
	Dials uint64 `json:"dials"`
	// FastFails counts ops rejected by the open breaker without touching
	// the wire.
	FastFails uint64 `json:"fast_fails"`
	// BreakerOpens counts how many times the circuit opened.
	BreakerOpens uint64 `json:"breaker_opens"`
	// BreakerOpen reports whether the circuit is rejecting right now.
	BreakerOpen bool `json:"breaker_open"`
	// Hedges counts hedged duplicates fired; HedgeWins the subset that
	// answered before the primary.
	Hedges    uint64 `json:"hedges"`
	HedgeWins uint64 `json:"hedge_wins"`
	// Latency is the per-op round-trip histogram (hedged ops observe the
	// winning attempt's latency).
	Latency obs.HistSnapshot `json:"latency"`
}

// Stats snapshots the client's counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Requests:     c.requests.Load(),
		Errors:       c.errs.Load(),
		Retries:      c.retries.Load(),
		Dials:        c.dials.Load(),
		FastFails:    c.fastFails.Load(),
		BreakerOpens: c.br.openCount(),
		BreakerOpen:  c.br.open(),
		Hedges:       c.hedges.Load(),
		HedgeWins:    c.hedgeWins.Load(),
		Latency:      c.lat.Snapshot(),
	}
}

// HedgePolicy maps an item's penalty subclass to its hedge delay: how long
// the first peer read may dangle before a duplicate is fired. The policy
// encodes the paper's pricing inverted: a key that is cheap to recompute
// (subclass 0–1, ≤10ms) never hedges — the backend is an acceptable fallback
// and duplicate load buys little — while a 1s–5s recompute (subclass 4)
// hedges after a few milliseconds, because a slow peer read is still two
// orders of magnitude cheaper than the recompute it shields.
type HedgePolicy struct {
	// Delays[sub] is the hedge delay for penalty subclass sub
	// (penalty.SubclassBounds); 0 disables hedging for that subclass.
	Delays [5]time.Duration `json:"delays"`
}

// DefaultHedgePolicy returns the penalty-aware hedge schedule: never for
// cheap keys, progressively earlier as the recompute penalty grows.
func DefaultHedgePolicy() HedgePolicy {
	return HedgePolicy{Delays: [5]time.Duration{
		0,                     // (0,1ms]: recompute is as cheap as a peer read
		0,                     // (1ms,10ms]
		20 * time.Millisecond, // (10ms,100ms]
		8 * time.Millisecond,  // (100ms,1s]
		3 * time.Millisecond,  // (1s,5s]: hedge almost immediately
	}}
}

// DelayFor returns the hedge delay for a key with the given miss penalty in
// seconds.
func (h HedgePolicy) DelayFor(pen float64) time.Duration {
	return h.Delays[penalty.SubclassFor(pen, penalty.SubclassBounds)]
}
