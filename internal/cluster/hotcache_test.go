package cluster

import (
	"fmt"
	"testing"
	"time"
)

func TestHotCacheBasic(t *testing.T) {
	h := NewHotCache(1<<20, time.Minute)
	if _, _, ok := h.Get("k"); ok {
		t.Fatal("empty cache hit")
	}
	h.Put("k", 7, []byte("value"))
	v, flags, ok := h.Get("k")
	if !ok || string(v) != "value" || flags != 7 {
		t.Fatalf("Get = (%q, %d, %v)", v, flags, ok)
	}
	h.Invalidate("k")
	if _, _, ok := h.Get("k"); ok {
		t.Fatal("hit after Invalidate")
	}
	st := h.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Items != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestHotCacheTTL(t *testing.T) {
	h := NewHotCache(1<<20, 50*time.Millisecond)
	now := time.Unix(5000, 0)
	h.now = func() time.Time { return now }
	h.Put("k", 0, []byte("v"))
	if _, _, ok := h.Get("k"); !ok {
		t.Fatal("fresh entry missed")
	}
	now = now.Add(time.Second)
	if _, _, ok := h.Get("k"); ok {
		t.Fatal("expired entry hit")
	}
	if st := h.Stats(); st.Items != 0 || st.Bytes != 0 {
		t.Fatalf("expired entry retained: %+v", st)
	}
}

func TestHotCacheEvictsLRUUnderBudget(t *testing.T) {
	// Budget for ~4 entries of 100B values (plus keys).
	h := NewHotCache(420, time.Minute)
	val := make([]byte, 100)
	for i := 0; i < 8; i++ {
		h.Put(fmt.Sprintf("k%d", i), 0, val)
	}
	st := h.Stats()
	if st.Bytes > 420 {
		t.Fatalf("over budget: %+v", st)
	}
	if st.Evicts == 0 {
		t.Fatal("no evictions despite 2x overcommit")
	}
	// The most recent entry survives; the oldest is gone.
	if _, _, ok := h.Get("k7"); !ok {
		t.Error("most recent entry evicted")
	}
	if _, _, ok := h.Get("k0"); ok {
		t.Error("oldest entry survived 2x overcommit")
	}
	// Oversized values are refused outright.
	h.Put("huge", 0, make([]byte, 1024))
	if _, _, ok := h.Get("huge"); ok {
		t.Error("value above the whole budget was cached")
	}
}

func TestHotCacheValueIsCopied(t *testing.T) {
	h := NewHotCache(1<<20, time.Minute)
	buf := []byte("abc")
	h.Put("k", 0, buf)
	buf[0] = 'X'
	if v, _, _ := h.Get("k"); string(v) != "abc" {
		t.Fatalf("cached value aliased the caller's buffer: %q", v)
	}
}

func TestPeersRoutingAndMembership(t *testing.T) {
	members := []string{"a:1", "b:2", "c:3"}
	p, err := New(Config{Self: "a:1", Members: members, VNodes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if p.Self() != "a:1" {
		t.Fatalf("Self = %q", p.Self())
	}
	if got := p.Members(); len(got) != 3 {
		t.Fatalf("Members = %v", got)
	}
	if p.ClientFor("a:1") != nil {
		t.Fatal("ClientFor(self) should be nil")
	}
	if p.ClientFor("b:2") == nil || p.ClientFor("c:3") == nil {
		t.Fatal("missing remote clients")
	}
	// Ownership must agree with a standalone ring over the same members.
	ring := NewRing(members, 64)
	owned := 0
	for _, k := range keys(1000) {
		if p.Owner(k) != ring.Owner(k) {
			t.Fatalf("Peers and Ring disagree on %q", k)
		}
		if p.IsOwner(k) {
			owned++
		}
	}
	if owned == 0 || owned == 1000 {
		t.Fatalf("self owns %d/1000 keys, want a proper share", owned)
	}

	// Dropping c:3 closes its client and reroutes its keys to survivors.
	cClient := p.ClientFor("c:3")
	if err := p.SetMembers([]string{"a:1", "b:2"}); err != nil {
		t.Fatal(err)
	}
	if p.ClientFor("c:3") != nil {
		t.Fatal("departed member still has a client")
	}
	if _, err := cClient.Get("k", false, 0); err == nil {
		t.Fatal("departed member's client still usable")
	}
	for _, k := range keys(1000) {
		if o := p.Owner(k); o != "a:1" && o != "b:2" {
			t.Fatalf("key %q routed to departed member %q", k, o)
		}
	}
	// Removing self enters proxy mode: the node owns nothing and routes
	// everything to the remaining members (a draining node's state).
	if err := p.SetMembers([]string{"b:2"}); err != nil {
		t.Fatalf("SetMembers without self: %v", err)
	}
	for _, k := range keys(100) {
		if p.IsOwner(k) {
			t.Fatalf("proxy-mode node still owns %q", k)
		}
		if o := p.Owner(k); o != "b:2" {
			t.Fatalf("proxy-mode key %q routed to %q, want b:2", k, o)
		}
	}
	if p.ClientFor("b:2") == nil {
		t.Fatal("proxy-mode node lost its client for the surviving member")
	}
	// An empty member list is refused outright.
	if err := p.SetMembers(nil); err == nil {
		t.Fatal("empty member list accepted")
	}
}

func TestPeersConfigValidation(t *testing.T) {
	if _, err := New(Config{Self: "", Members: []string{"a:1"}}); err == nil {
		t.Fatal("empty Self accepted")
	}
	if _, err := New(Config{Self: "x:9", Members: []string{"a:1"}}); err == nil {
		t.Fatal("Self outside Members accepted")
	}
	if _, err := New(Config{Self: "a:1", Members: []string{"a:1"}, Hash: "nope"}); err == nil {
		t.Fatal("unknown hash kind accepted")
	}
}

func TestPeersSnapshots(t *testing.T) {
	peer := newFakePeer(t)
	p, err := New(Config{Self: "self:0", Members: []string{"self:0", peer.addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	peer.set("k", []byte("v"))
	if _, err := p.ClientFor(peer.addr()).Get("k", false, 0); err != nil {
		t.Fatal(err)
	}
	snaps := p.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("Snapshots = %v", snaps)
	}
	st := snaps[peer.addr()]
	if st.Requests != 1 || st.Latency.Count != 1 {
		t.Fatalf("peer stats %+v", st)
	}
}
