package cluster

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pamakv/internal/proto"
)

// fakePeer is a minimal in-process Memcached peer for client tests: a
// key-value map plus knobs for per-request delay and hard connection drops.
type fakePeer struct {
	ln net.Listener

	mu   sync.Mutex
	data map[string][]byte

	// delay is slept before answering each request.
	delay atomic.Int64 // nanoseconds
	// dropAll makes the peer close every connection on arrival.
	dropAll atomic.Bool
	// dropNext closes the connection (instead of answering) for the next
	// N requests — a transient fault.
	dropNext atomic.Int32
	// shedAll makes the peer answer every request with the overload shed
	// reply instead of serving it.
	shedAll  atomic.Bool
	requests atomic.Uint64
	conns    atomic.Uint64
}

func newFakePeer(t *testing.T) *fakePeer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &fakePeer{ln: ln, data: map[string][]byte{}}
	go p.serve()
	t.Cleanup(func() { ln.Close() })
	return p
}

func (p *fakePeer) addr() string { return p.ln.Addr().String() }

func (p *fakePeer) set(key string, val []byte) {
	p.mu.Lock()
	p.data[key] = val
	p.mu.Unlock()
}

func (p *fakePeer) serve() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.conns.Add(1)
		if p.dropAll.Load() {
			conn.Close()
			continue
		}
		go p.handle(conn)
	}
}

func (p *fakePeer) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		cmd, err := proto.ReadCommand(r)
		if err != nil {
			return
		}
		p.requests.Add(1)
		if d := p.delay.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		if p.dropAll.Load() {
			return
		}
		if n := p.dropNext.Load(); n > 0 && p.dropNext.CompareAndSwap(n, n-1) {
			return
		}
		var out []byte
		if p.shedAll.Load() {
			out = proto.AppendShed(out)
			if _, err := w.Write(out); err != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
			continue
		}
		switch cmd.Name {
		case "get", "gets":
			p.mu.Lock()
			for _, k := range cmd.Keys {
				if v, ok := p.data[k]; ok {
					if cmd.Name == "gets" {
						out = proto.AppendValueCAS(out, k, 0, v, 7)
					} else {
						out = proto.AppendValue(out, k, 0, v)
					}
				}
			}
			p.mu.Unlock()
			out = proto.AppendEnd(out)
		case "set":
			p.set(cmd.Keys[0], cmd.Data)
			out = proto.AppendLine(out, "STORED")
		case "delete":
			p.mu.Lock()
			delete(p.data, cmd.Keys[0])
			p.mu.Unlock()
			out = proto.AppendLine(out, "DELETED")
		default:
			out = proto.AppendLine(out, "ERROR")
		}
		if _, err := w.Write(out); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func TestClientGetAndPoolReuse(t *testing.T) {
	peer := newFakePeer(t)
	peer.set("k", []byte("hello"))
	c := NewClient(peer.addr(), ClientOptions{PoolSize: 2})
	defer c.Close()

	for i := 0; i < 10; i++ {
		resp, err := c.Get("k", false, 0)
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if len(resp.Values) != 1 || string(resp.Values[0].Data) != "hello" {
			t.Fatalf("Get %d: %+v", i, resp)
		}
	}
	if d := c.Stats().Dials; d != 1 {
		t.Errorf("10 sequential gets dialed %d times, want 1 (pool reuse)", d)
	}
	// A miss is a successful round trip with no VALUE blocks.
	resp, err := c.Get("absent", false, 0)
	if err != nil || len(resp.Values) != 0 || resp.Status != "END" {
		t.Fatalf("miss = (%+v, %v), want clean END", resp, err)
	}
}

func TestClientGetsCarriesCAS(t *testing.T) {
	peer := newFakePeer(t)
	peer.set("k", []byte("v"))
	c := NewClient(peer.addr(), ClientOptions{})
	defer c.Close()
	resp, err := c.Get("k", true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Values) != 1 || resp.Values[0].CAS != 7 {
		t.Fatalf("gets = %+v, want CAS 7", resp)
	}
}

func TestClientDoSetDelete(t *testing.T) {
	peer := newFakePeer(t)
	c := NewClient(peer.addr(), ClientOptions{})
	defer c.Close()
	req := proto.AppendCommand(nil, &proto.Command{
		Name: "set", Keys: []string{"k"}, Data: []byte("zzz"),
	})
	resp, err := c.Do(req)
	if err != nil || resp.Status != "STORED" {
		t.Fatalf("set = (%+v, %v)", resp, err)
	}
	resp, err = c.Do(proto.AppendCommand(nil, &proto.Command{Name: "delete", Keys: []string{"k"}}))
	if err != nil || resp.Status != "DELETED" {
		t.Fatalf("delete = (%+v, %v)", resp, err)
	}
}

func TestClientRetriesTransientFailure(t *testing.T) {
	peer := newFakePeer(t)
	peer.set("k", []byte("v"))
	c := NewClient(peer.addr(), ClientOptions{Retries: 2})
	defer c.Close()
	// Seed the pool with a healthy connection, then have the peer drop the
	// next request: the attempt on the now-stale pooled connection fails,
	// the retry dials fresh and succeeds.
	if _, err := c.Get("k", false, 0); err != nil {
		t.Fatal(err)
	}
	peer.dropNext.Store(1)
	resp, err := c.Get("k", false, 0)
	if err != nil {
		t.Fatalf("Get after drop: %v (stats %+v)", err, c.Stats())
	}
	if len(resp.Values) != 1 {
		t.Fatalf("Get after drop: %+v", resp)
	}
	if c.Stats().Retries == 0 {
		t.Error("expected at least one recorded retry")
	}
}

func TestClientBreakerOpensAndRecovers(t *testing.T) {
	peer := newFakePeer(t)
	peer.set("k", []byte("v"))
	c := NewClient(peer.addr(), ClientOptions{
		Retries:     -1, // no retries: each op is one attempt
		DialTimeout: 200 * time.Millisecond,
		Breaker:     BreakerConfig{Threshold: 3, Cooldown: 50 * time.Millisecond},
	})
	defer c.Close()
	peer.dropAll.Store(true)
	// Three consecutive failures open the circuit.
	for i := 0; i < 3; i++ {
		if _, err := c.Get("k", false, 0); err == nil {
			t.Fatalf("Get %d succeeded against dropping peer", i)
		}
	}
	if !c.Stats().BreakerOpen {
		t.Fatal("breaker closed after threshold failures")
	}
	// While open: fast-fail without touching the wire.
	if _, err := c.Get("k", false, 0); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("open-circuit Get = %v, want ErrPeerDown", err)
	}
	wire := peer.conns.Load()
	if _, err := c.Get("k", false, 0); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("open-circuit Get = %v, want ErrPeerDown", err)
	}
	if peer.conns.Load() != wire {
		t.Error("open circuit still dialed the peer")
	}
	// After the cooldown the half-open probe readmits a healthy peer.
	peer.dropAll.Store(false)
	time.Sleep(80 * time.Millisecond)
	resp, err := c.Get("k", false, 0)
	if err != nil || len(resp.Values) != 1 {
		t.Fatalf("post-recovery Get = (%+v, %v)", resp, err)
	}
	st := c.Stats()
	if st.BreakerOpen || st.BreakerOpens == 0 || st.FastFails < 2 {
		t.Errorf("post-recovery stats %+v", st)
	}
}

func TestClientHedgedGetWins(t *testing.T) {
	peer := newFakePeer(t)
	peer.set("k", []byte("v"))
	c := NewClient(peer.addr(), ClientOptions{})
	defer c.Close()
	// Make the peer slow: the hedge fires, and (both attempts being
	// equally slow here) the op still completes with a hedge recorded.
	peer.delay.Store(int64(60 * time.Millisecond))
	start := time.Now()
	resp, err := c.Get("k", false, 5*time.Millisecond)
	if err != nil || len(resp.Values) != 1 {
		t.Fatalf("hedged Get = (%+v, %v)", resp, err)
	}
	if e := time.Since(start); e > 500*time.Millisecond {
		t.Errorf("hedged Get took %v", e)
	}
	if c.Stats().Hedges != 1 {
		t.Errorf("hedges = %d, want 1", c.Stats().Hedges)
	}
	// Fast peer: no hedge fires.
	peer.delay.Store(0)
	if _, err := c.Get("k", false, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Hedges != 1 {
		t.Errorf("fast Get hedged: hedges = %d, want still 1", c.Stats().Hedges)
	}
}

func TestClientClosed(t *testing.T) {
	peer := newFakePeer(t)
	c := NewClient(peer.addr(), ClientOptions{})
	c.Close()
	if _, err := c.Get("k", false, 0); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("closed Get = %v, want ErrClientClosed", err)
	}
}

func TestHedgePolicyDelays(t *testing.T) {
	h := DefaultHedgePolicy()
	if d := h.DelayFor(0.0005); d != 0 {
		t.Errorf("0.5ms penalty hedges after %v, want never", d)
	}
	if d := h.DelayFor(0.005); d != 0 {
		t.Errorf("5ms penalty hedges after %v, want never", d)
	}
	d2 := h.DelayFor(0.05) // subclass 2
	d3 := h.DelayFor(0.5)  // subclass 3
	d4 := h.DelayFor(3.0)  // subclass 4
	if d2 == 0 || d3 == 0 || d4 == 0 {
		t.Fatalf("expensive subclasses must hedge: %v %v %v", d2, d3, d4)
	}
	if !(d4 < d3 && d3 < d2) {
		t.Errorf("hedge delay must shrink as penalty grows: %v %v %v", d2, d3, d4)
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b := newBreaker(BreakerConfig{Threshold: 2, Cooldown: time.Minute})
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }
	b.failure()
	b.failure()
	if b.allow() {
		t.Fatal("open breaker allowed a request inside the cooldown")
	}
	now = now.Add(2 * time.Minute)
	if !b.allow() {
		t.Fatal("breaker refused the half-open probe after cooldown")
	}
	if b.allow() {
		t.Fatal("breaker allowed a second concurrent half-open probe")
	}
	b.failure() // probe failed: re-open
	if b.allow() {
		t.Fatal("breaker closed after a failed probe")
	}
	now = now.Add(2 * time.Minute)
	if !b.allow() {
		t.Fatal("breaker refused the second probe")
	}
	b.success()
	if !b.allow() || b.open() {
		t.Fatal("breaker still open after a successful probe")
	}
	if b.openCount() != 2 {
		t.Errorf("openCount = %d, want 2", b.openCount())
	}
}
