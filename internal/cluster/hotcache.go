package cluster

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"
)

// HotCache defaults: a few MiB catches the hot head of a Zipf workload
// without meaningfully competing with the main engine's slab budget, and a
// one-second TTL bounds how stale a forwarded copy can get when another
// node writes the key.
const (
	DefaultHotCacheBytes = 4 << 20
	DefaultHotCacheTTL   = time.Second
)

// HotCache is a non-owner's mini-cache of forwarded peer hits: a small,
// byte-budgeted LRU with a hard TTL. It absorbs repeat reads of hot remote
// keys, so a skewed workload does not turn the owner of the hottest key
// into the cluster's bottleneck (the Memshare/groupcache "hot item"
// argument). Entries are advisory — a hit may be up to TTL stale relative
// to the owner — so the cache is consulted only for plain GETs, never for
// gets/cas.
type HotCache struct {
	maxBytes int64
	ttl      time.Duration
	// now is stubbed by tests.
	now func() time.Time

	mu    sync.Mutex
	ll    *list.List // front = most recent
	items map[string]*list.Element
	bytes int64

	hits, misses, evicts atomic.Uint64
}

// hotEntry is one cached value with its expiry deadline.
type hotEntry struct {
	key      string
	flags    uint32
	val      []byte
	deadline time.Time
}

// NewHotCache builds a hot cache with the given byte budget and TTL
// (defaults apply for values <= 0).
func NewHotCache(maxBytes int64, ttl time.Duration) *HotCache {
	if maxBytes <= 0 {
		maxBytes = DefaultHotCacheBytes
	}
	if ttl <= 0 {
		ttl = DefaultHotCacheTTL
	}
	return &HotCache{
		maxBytes: maxBytes,
		ttl:      ttl,
		now:      time.Now,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the cached value for key if present and fresh.
func (h *HotCache) Get(key string) (val []byte, flags uint32, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	e, found := h.items[key]
	if !found {
		h.misses.Add(1)
		return nil, 0, false
	}
	ent := e.Value.(*hotEntry)
	if h.now().After(ent.deadline) {
		h.removeLocked(e)
		h.misses.Add(1)
		return nil, 0, false
	}
	h.ll.MoveToFront(e)
	h.hits.Add(1)
	return ent.val, ent.flags, true
}

// Put caches val under key for the TTL, evicting LRU entries past the byte
// budget. Values larger than the whole budget are not cached. The value is
// copied; callers may reuse their buffer.
func (h *HotCache) Put(key string, flags uint32, val []byte) {
	cost := int64(len(key) + len(val))
	if cost > h.maxBytes {
		return
	}
	cp := append([]byte(nil), val...)
	h.mu.Lock()
	defer h.mu.Unlock()
	if e, ok := h.items[key]; ok {
		h.removeLocked(e)
	}
	ent := &hotEntry{key: key, flags: flags, val: cp, deadline: h.now().Add(h.ttl)}
	h.items[key] = h.ll.PushFront(ent)
	h.bytes += cost
	for h.bytes > h.maxBytes {
		back := h.ll.Back()
		if back == nil {
			break
		}
		h.removeLocked(back)
		h.evicts.Add(1)
	}
}

// Invalidate drops key (called when a write or delete for the key passes
// through this node, so the local copy never outlives what this node knows
// changed).
func (h *HotCache) Invalidate(key string) {
	h.mu.Lock()
	if e, ok := h.items[key]; ok {
		h.removeLocked(e)
	}
	h.mu.Unlock()
}

func (h *HotCache) removeLocked(e *list.Element) {
	ent := e.Value.(*hotEntry)
	h.ll.Remove(e)
	delete(h.items, ent.key)
	h.bytes -= int64(len(ent.key) + len(ent.val))
}

// HotCacheStats is a point-in-time snapshot of the hot cache.
type HotCacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Evicts uint64 `json:"evicts"`
	Bytes  int64  `json:"bytes"`
	Items  int    `json:"items"`
}

// Stats snapshots the cache's counters and occupancy.
func (h *HotCache) Stats() HotCacheStats {
	h.mu.Lock()
	bytes, items := h.bytes, h.ll.Len()
	h.mu.Unlock()
	return HotCacheStats{
		Hits:   h.hits.Load(),
		Misses: h.misses.Load(),
		Evicts: h.evicts.Load(),
		Bytes:  bytes,
		Items:  items,
	}
}
