package slab

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pamakv/internal/kv"
)

func testGeom() kv.Geometry {
	return kv.Geometry{SlabSize: 1 << 16, Base: 64, NumClasses: 8}
}

func mustManager(t *testing.T, slabs int) *Manager {
	t.Helper()
	g := testGeom()
	m, err := NewManager(g, int64(slabs)*int64(g.SlabSize))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewManagerRejects(t *testing.T) {
	if _, err := NewManager(testGeom(), 100); err == nil {
		t.Fatal("sub-slab cache size accepted")
	}
	bad := kv.Geometry{SlabSize: 0, Base: 64, NumClasses: 4}
	if _, err := NewManager(bad, 1<<20); err == nil {
		t.Fatal("invalid geometry accepted")
	}
}

// TestNewManagerBoundaryCapacities pins the rounding rule at every edge:
// cacheBytes strictly below one slab is a descriptive error, and partial
// slabs always round down.
func TestNewManagerBoundaryCapacities(t *testing.T) {
	g := testGeom() // SlabSize = 64 KiB
	ss := int64(g.SlabSize)
	cases := []struct {
		name       string
		cacheBytes int64
		wantSlabs  int
		wantErr    bool
	}{
		{"zero bytes", 0, 0, true},
		{"negative bytes", -1, 0, true},
		{"one byte short of a slab", ss - 1, 0, true},
		{"exactly one slab", ss, 1, false},
		{"one byte over a slab", ss + 1, 1, false},
		{"just under two slabs", 2*ss - 1, 1, false},
		{"exactly two slabs", 2 * ss, 2, false},
		{"large uneven", 1000*ss + ss/2, 1000, false},
	}
	for _, c := range cases {
		m, err := NewManager(g, c.cacheBytes)
		if c.wantErr {
			if err == nil {
				t.Errorf("%s: NewManager(%d bytes) accepted", c.name, c.cacheBytes)
			} else if !strings.Contains(err.Error(), "raise the cache size") {
				t.Errorf("%s: error not descriptive: %v", c.name, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if m.TotalSlabs() != c.wantSlabs {
			t.Errorf("%s: got %d slabs, want %d", c.name, m.TotalSlabs(), c.wantSlabs)
		}
	}
}

func TestBudgetTransfer(t *testing.T) {
	g := testGeom()
	donor := mustManager(t, 4)
	recv, err := NewEmpty(g)
	if err != nil {
		t.Fatal(err)
	}
	if recv.TotalSlabs() != 0 || recv.FreeSlabs() != 0 {
		t.Fatalf("NewEmpty: total=%d free=%d", recv.TotalSlabs(), recv.FreeSlabs())
	}
	if err := recv.AllocSlab(0); err == nil {
		t.Fatal("empty manager allocated a slab")
	}
	// Hand over slabs one at a time; the combined budget stays 4.
	for i := 0; i < 4; i++ {
		if err := donor.ShrinkBudget(1); err != nil {
			t.Fatal(err)
		}
		if err := recv.GrowBudget(1); err != nil {
			t.Fatal(err)
		}
		if got := donor.TotalSlabs() + recv.TotalSlabs(); got != 4 {
			t.Fatalf("combined budget %d after transfer %d", got, i+1)
		}
		if err := donor.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if err := recv.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	// Donor is exhausted; occupied slabs cannot leave.
	if err := donor.ShrinkBudget(1); err == nil {
		t.Fatal("shrank an empty budget")
	}
	if err := recv.AllocSlab(2); err != nil {
		t.Fatal(err)
	}
	if err := recv.ShrinkBudget(4); err == nil {
		t.Fatal("shrank past free slabs (one is owned by class 2)")
	}
	if err := recv.ShrinkBudget(-1); err == nil {
		t.Fatal("negative shrink accepted")
	}
	if err := recv.GrowBudget(-1); err == nil {
		t.Fatal("negative growth accepted")
	}
}

func TestAllocRelease(t *testing.T) {
	m := mustManager(t, 4)
	if m.FreeSlabs() != 4 || m.TotalSlabs() != 4 {
		t.Fatalf("fresh manager: free=%d total=%d", m.FreeSlabs(), m.TotalSlabs())
	}
	for i := 0; i < 4; i++ {
		if err := m.AllocSlab(2); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.AllocSlab(2); err == nil {
		t.Fatal("allocation beyond budget accepted")
	}
	if m.Slabs(2) != 4 || m.FreeSlabs() != 0 {
		t.Fatalf("slabs=%d free=%d", m.Slabs(2), m.FreeSlabs())
	}
	if err := m.ReleaseSlab(2); err != nil {
		t.Fatal(err)
	}
	if m.FreeSlabs() != 1 {
		t.Fatal("release did not refill free pool")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseRequiresFreeCapacity(t *testing.T) {
	m := mustManager(t, 2)
	if err := m.AllocSlab(0); err != nil {
		t.Fatal(err)
	}
	spc := m.Geometry().SlotsPerSlab(0)
	for i := 0; i < spc; i++ {
		if err := m.UseSlot(0); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.ReleaseSlab(0); err == nil {
		t.Fatal("released a slab whose slots are occupied")
	}
	if err := m.FreeSlot(0); err != nil {
		t.Fatal(err)
	}
	// Still cannot release: used (spc-1) > (slabs-1)*spc = 0.
	if err := m.ReleaseSlab(0); err == nil {
		t.Fatal("released with residents beyond remaining capacity")
	}
}

func TestReleaseEmptyClass(t *testing.T) {
	m := mustManager(t, 2)
	if err := m.ReleaseSlab(3); err == nil {
		t.Fatal("released from class owning no slabs")
	}
}

func TestUseSlotNeedsCapacity(t *testing.T) {
	m := mustManager(t, 2)
	if err := m.UseSlot(1); err == nil {
		t.Fatal("UseSlot on slabless class accepted")
	}
	if err := m.FreeSlot(1); err == nil {
		t.Fatal("FreeSlot on empty class accepted")
	}
}

func TestMoveSlab(t *testing.T) {
	m := mustManager(t, 3)
	if err := m.AllocSlab(1); err != nil {
		t.Fatal(err)
	}
	if err := m.MoveSlab(1, 5); err != nil {
		t.Fatal(err)
	}
	if m.Slabs(1) != 0 || m.Slabs(5) != 1 || m.Migrations != 1 {
		t.Fatalf("after move: slabs(1)=%d slabs(5)=%d migrations=%d",
			m.Slabs(1), m.Slabs(5), m.Migrations)
	}
	if err := m.MoveSlab(5, 5); err == nil {
		t.Fatal("self-move accepted")
	}
	if err := m.MoveSlab(1, 5); err == nil {
		t.Fatal("move from empty donor accepted")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshot(t *testing.T) {
	m := mustManager(t, 4)
	m.AllocSlab(0)
	m.AllocSlab(0)
	m.AllocSlab(7)
	snap := m.Snapshot()
	if snap[0] != 2 || snap[7] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	snap[0] = 99 // must be a copy
	if m.Slabs(0) != 2 {
		t.Fatal("Snapshot aliases internal state")
	}
}

// TestConservationUnderRandomOps drives random legal operations and checks
// the slab-conservation invariant continuously.
func TestConservationUnderRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := mustManager(&testing.T{}, 16)
		nc := m.Geometry().NumClasses
		for op := 0; op < 2000; op++ {
			c := rng.Intn(nc)
			switch rng.Intn(5) {
			case 0:
				_ = m.AllocSlab(c)
			case 1:
				_ = m.ReleaseSlab(c)
			case 2:
				_ = m.UseSlot(c)
			case 3:
				_ = m.FreeSlot(c)
			case 4:
				_ = m.MoveSlab(c, rng.Intn(nc))
			}
			if m.CheckInvariants() != nil {
				return false
			}
			free := 0
			for cc := 0; cc < nc; cc++ {
				free += m.FreeSlots(cc)
				if m.Used(cc) > m.Capacity(cc) {
					return false
				}
			}
			_ = free
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
