// Package slab implements the Memcached-style slab accounting substrate:
// a fixed budget of equally sized slabs, each owned by at most one size
// class and carved into equal slots sized for that class's items.
//
// The manager is deliberately *logical*: it tracks ownership and occupancy
// and enforces every capacity invariant (a class can never hold more items
// than slabs*slotsPerSlab; slabs move between classes only when the donor
// has a slab's worth of free slots), while item bytes live on the Go heap
// owned by kv.Item. The allocation *policy* — which the paper studies — sees
// exactly the same world it would see over a pointer-bumping arena. See
// DESIGN.md §5.
package slab

import (
	"fmt"

	"pamakv/internal/kv"
)

// Manager tracks slab ownership and slot occupancy across all classes.
type Manager struct {
	geom       kv.Geometry
	totalSlabs int
	freeSlabs  int
	classes    []classState

	// Migrations counts slabs moved between classes (not first
	// allocations from the free pool).
	Migrations uint64
}

type classState struct {
	slabs int // slabs owned
	used  int // occupied slots
}

// NewManager creates a manager for a cache of cacheBytes bytes under the
// given geometry. The slab budget is cacheBytes/SlabSize, rounded down; it
// must be at least one slab.
func NewManager(geom kv.Geometry, cacheBytes int64) (*Manager, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	n := int(cacheBytes / int64(geom.SlabSize))
	if n < 1 {
		return nil, fmt.Errorf(
			"slab: cache of %d bytes holds no %d-byte slab; raise the cache size to at least one slab (%d bytes) or shrink Geometry.SlabSize",
			cacheBytes, geom.SlabSize, geom.SlabSize)
	}
	return &Manager{
		geom:       geom,
		totalSlabs: n,
		freeSlabs:  n,
		classes:    make([]classState, geom.NumClasses),
	}, nil
}

// NewEmpty creates a manager with a zero slab budget. It is the starting
// state of the incoming era during a live re-slab transition: the outgoing
// manager hands slabs over one at a time via ShrinkBudget/GrowBudget so the
// combined budget stays constant.
func NewEmpty(geom kv.Geometry) (*Manager, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	return &Manager{geom: geom, classes: make([]classState, geom.NumClasses)}, nil
}

// GrowBudget adds n slabs to the budget and the free pool (the receiving
// side of a budget transfer).
func (m *Manager) GrowBudget(n int) error {
	if n < 0 {
		return fmt.Errorf("slab: negative budget growth %d", n)
	}
	m.totalSlabs += n
	m.freeSlabs += n
	return nil
}

// ShrinkBudget removes n slabs from the budget; they must all be free (the
// donating side of a budget transfer).
func (m *Manager) ShrinkBudget(n int) error {
	if n < 0 {
		return fmt.Errorf("slab: negative budget shrink %d", n)
	}
	if n > m.freeSlabs {
		return fmt.Errorf("slab: cannot shrink budget by %d, only %d slabs free", n, m.freeSlabs)
	}
	m.totalSlabs -= n
	m.freeSlabs -= n
	return nil
}

// Geometry returns the class geometry.
func (m *Manager) Geometry() kv.Geometry { return m.geom }

// TotalSlabs returns the slab budget.
func (m *Manager) TotalSlabs() int { return m.totalSlabs }

// FreeSlabs returns the number of unassigned slabs.
func (m *Manager) FreeSlabs() int { return m.freeSlabs }

// Slabs returns the number of slabs owned by class c.
func (m *Manager) Slabs(c int) int { return m.classes[c].slabs }

// Used returns the number of occupied slots in class c.
func (m *Manager) Used(c int) int { return m.classes[c].used }

// Capacity returns the total slots of class c (slabs * slots per slab).
func (m *Manager) Capacity(c int) int {
	return m.classes[c].slabs * m.geom.SlotsPerSlab(c)
}

// FreeSlots returns the unoccupied slots in class c.
func (m *Manager) FreeSlots(c int) int { return m.Capacity(c) - m.classes[c].used }

// AllocSlab assigns one free slab to class c. It fails when the free pool is
// empty.
func (m *Manager) AllocSlab(c int) error {
	if m.freeSlabs == 0 {
		return fmt.Errorf("slab: no free slabs for class %d", c)
	}
	m.freeSlabs--
	m.classes[c].slabs++
	return nil
}

// ReleaseSlab returns one slab from class c to the free pool. The class must
// end with enough capacity for its occupied slots — callers evict first.
func (m *Manager) ReleaseSlab(c int) error {
	cs := &m.classes[c]
	if cs.slabs == 0 {
		return fmt.Errorf("slab: class %d owns no slabs", c)
	}
	if cs.used > (cs.slabs-1)*m.geom.SlotsPerSlab(c) {
		return fmt.Errorf("slab: class %d has %d used slots, cannot drop below %d slabs",
			c, cs.used, cs.slabs)
	}
	cs.slabs--
	m.freeSlabs++
	return nil
}

// MoveSlab migrates one slab from class from to class to, counting it in
// Migrations. The donor must have a slab's worth of free slots (its candidate
// segment has been evicted and compacted).
func (m *Manager) MoveSlab(from, to int) error {
	if from == to {
		return fmt.Errorf("slab: move from class %d to itself", from)
	}
	if err := m.ReleaseSlab(from); err != nil {
		return err
	}
	if err := m.AllocSlab(to); err != nil {
		// Unreachable: ReleaseSlab just freed a slab. Restore anyway.
		m.freeSlabs--
		m.classes[from].slabs++
		return err
	}
	m.Migrations++
	return nil
}

// UseSlot marks one slot of class c occupied; it fails when the class is
// full (callers must have allocated a slab or evicted first).
func (m *Manager) UseSlot(c int) error {
	if m.FreeSlots(c) <= 0 {
		return fmt.Errorf("slab: class %d is full (%d slots)", c, m.Capacity(c))
	}
	m.classes[c].used++
	return nil
}

// FreeSlot marks one slot of class c unoccupied.
func (m *Manager) FreeSlot(c int) error {
	if m.classes[c].used == 0 {
		return fmt.Errorf("slab: class %d has no used slots", c)
	}
	m.classes[c].used--
	return nil
}

// Snapshot returns the per-class slab counts (index = class).
func (m *Manager) Snapshot() []int {
	out := make([]int, len(m.classes))
	for i, cs := range m.classes {
		out[i] = cs.slabs
	}
	return out
}

// CheckInvariants verifies conservation (slabs sum to the budget) and
// per-class occupancy bounds; tests call it after mutation sequences.
func (m *Manager) CheckInvariants() error {
	sum := m.freeSlabs
	for c, cs := range m.classes {
		sum += cs.slabs
		if cs.used < 0 || cs.used > cs.slabs*m.geom.SlotsPerSlab(c) {
			return fmt.Errorf("slab: class %d used %d outside [0,%d]", c, cs.used, m.Capacity(c))
		}
	}
	if sum != m.totalSlabs {
		return fmt.Errorf("slab: %d slabs accounted, budget %d", sum, m.totalSlabs)
	}
	return nil
}
