// Package shard partitions a cache across N independent engines by key
// hash, the standard recipe for scaling a mutex-guarded cache across cores
// (and the moral equivalent of running N Memcached instances behind a
// consistent router). Each shard gets an equal slice of the memory budget
// and its own policy instance, so allocation decisions stay local to the
// keys a shard owns — the same isolation a multi-instance deployment has.
package shard

import (
	"errors"
	"fmt"
	"time"

	"pamakv/internal/cache"
	"pamakv/internal/kv"
)

// PolicyFactory builds one policy instance per shard (policies are stateful
// and cannot be shared between engines).
type PolicyFactory func() cache.Policy

// Group is a hash-sharded set of caches.
type Group struct {
	shards []*cache.Cache
	mask   uint64
}

// New builds a group of n shards (rounded up to a power of two, min 1),
// splitting cfg.CacheBytes evenly. Each shard must still hold at least one
// slab.
func New(cfg cache.Config, n int, factory PolicyFactory) (*Group, error) {
	if factory == nil {
		return nil, errors.New("shard: nil policy factory")
	}
	shards := 1
	for shards < n {
		shards <<= 1
	}
	per := cfg.CacheBytes / int64(shards)
	perStale := cfg.StaleBytes / int64(shards)
	g := &Group{mask: uint64(shards - 1)}
	for i := 0; i < shards; i++ {
		scfg := cfg
		scfg.CacheBytes = per
		scfg.StaleBytes = perStale
		c, err := cache.New(scfg, factory())
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		g.shards = append(g.shards, c)
	}
	return g, nil
}

// Shards returns the shard count.
func (g *Group) Shards() int { return len(g.shards) }

// pick routes a key to its shard. The shard selector uses the high hash
// bits so it stays independent of the bucket selector inside each shard's
// index (which uses the low bits).
func (g *Group) pick(key string) *cache.Cache {
	return g.shards[(kv.HashString(key)>>48)&g.mask]
}

// Get routes to the owning shard.
func (g *Group) Get(key string, sizeHint int, penHint float64, buf []byte) ([]byte, uint32, bool) {
	return g.pick(key).Get(key, sizeHint, penHint, buf)
}

// GetWithCAS routes to the owning shard.
func (g *Group) GetWithCAS(key string, buf []byte) ([]byte, uint32, uint64, bool) {
	return g.pick(key).GetWithCAS(key, buf)
}

// Set routes to the owning shard.
func (g *Group) Set(key string, size int, pen float64, flags uint32, value []byte) error {
	return g.pick(key).Set(key, size, pen, flags, value)
}

// SetTTL routes to the owning shard.
func (g *Group) SetTTL(key string, size int, pen float64, flags uint32, expireAt int64, value []byte) error {
	return g.pick(key).SetTTL(key, size, pen, flags, expireAt, value)
}

// SetMode routes to the owning shard.
func (g *Group) SetMode(key string, mode cache.SetMode, cas uint64, size int, pen float64, flags uint32, expireAt int64, value []byte) error {
	return g.pick(key).SetMode(key, mode, cas, size, pen, flags, expireAt, value)
}

// GetStale routes a degraded read to the owning shard.
func (g *Group) GetStale(key string, buf []byte) ([]byte, uint32, bool) {
	return g.pick(key).GetStale(key, buf)
}

// Delete routes to the owning shard.
func (g *Group) Delete(key string) bool { return g.pick(key).Delete(key) }

// Touch routes to the owning shard.
func (g *Group) Touch(key string, expireAt int64) bool { return g.pick(key).Touch(key, expireAt) }

// Delta routes to the owning shard.
func (g *Group) Delta(key string, delta uint64, decr bool) (uint64, error) {
	return g.pick(key).Delta(key, delta, decr)
}

// Contains routes to the owning shard.
func (g *Group) Contains(key string) bool { return g.pick(key).Contains(key) }

// ReapExpired sweeps expired items across shards, up to max in total
// (max <= 0 sweeps everything).
func (g *Group) ReapExpired(max int) int {
	n := 0
	for _, s := range g.shards {
		budget := 0
		if max > 0 {
			budget = max - n
			if budget <= 0 {
				break
			}
		}
		n += s.ReapExpired(budget)
	}
	return n
}

// ScanKeys walks live resident items shard by shard (each shard snapshots
// under its own engine lock and runs fn outside it — see cache.ScanKeys).
// fn returning false stops the scan.
func (g *Group) ScanKeys(fn func(key string, pen float64, size int, expireAt int64) bool) {
	stopped := false
	for _, s := range g.shards {
		if stopped {
			return
		}
		s.ScanKeys(func(key string, pen float64, size int, expireAt int64) bool {
			if !fn(key, pen, size, expireAt) {
				stopped = true
				return false
			}
			return true
		})
	}
}

// Flush flushes every shard.
func (g *Group) Flush() {
	for _, s := range g.shards {
		s.Flush()
	}
}

// Items sums resident items across shards.
func (g *Group) Items() int {
	n := 0
	for _, s := range g.shards {
		n += s.Items()
	}
	return n
}

// Stats sums counters across shards.
func (g *Group) Stats() cache.Stats {
	var t cache.Stats
	for _, s := range g.shards {
		t = cache.AddStats(t, s.Stats())
	}
	return t
}

// Introspect returns the group-wide introspection snapshot: per-shard
// snapshots merged element-wise, so per-class and per-subclass counters
// describe the whole keyspace just as a single engine's would.
func (g *Group) Introspect() cache.Introspection {
	in := g.shards[0].Introspect()
	for _, s := range g.shards[1:] {
		in.Merge(s.Introspect())
	}
	return in
}

// SnapshotSlabs sums per-class slab counts across shards.
func (g *Group) SnapshotSlabs() []int {
	var out []int
	for _, s := range g.shards {
		snap := s.SnapshotSlabs()
		if out == nil {
			out = make([]int, len(snap))
		}
		for i, v := range snap {
			out[i] += v
		}
	}
	return out
}

// PolicyName returns the shards' policy name (identical across shards).
func (g *Group) PolicyName() string { return g.shards[0].PolicyName() }

// AccessBufStats merges the shards' deferred-access counters (zero value
// with Enabled=false when the engines run in immediate mode).
func (g *Group) AccessBufStats() cache.AccessBufStats {
	var t cache.AccessBufStats
	for _, s := range g.shards {
		cache.MergeAccessBufStats(&t, s.AccessBufStats())
	}
	return t
}

// StartMaintainers launches every shard's background maintainer (coarse
// expiry clock refresh + idle-ring drains); pair with StopMaintainers.
func (g *Group) StartMaintainers(interval time.Duration) {
	for _, s := range g.shards {
		s.StartMaintainer(interval)
	}
}

// StopMaintainers stops every shard's maintainer and applies any remaining
// deferred accesses.
func (g *Group) StopMaintainers() {
	for _, s := range g.shards {
		s.StopMaintainer()
	}
}

// Interface note: Group implements server.Store (checked in the server
// package's tests to avoid an import cycle here).

// CheckInvariants validates every shard.
func (g *Group) CheckInvariants() error {
	for i, s := range g.shards {
		if err := s.CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}
