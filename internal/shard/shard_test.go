package shard

import (
	"fmt"
	"sync"
	"testing"

	"pamakv/internal/cache"
	"pamakv/internal/core"
	"pamakv/internal/kv"
	"pamakv/internal/policy"
)

func testCfg() cache.Config {
	return cache.Config{
		Geometry:    kv.Geometry{SlabSize: 4096, Base: 64, NumClasses: 4},
		CacheBytes:  16 * 4096,
		StoreValues: true,
		WindowLen:   1000,
	}
}

func pamaFactory() cache.Policy { return core.New(core.DefaultConfig()) }

func TestNewRoundsToPowerOfTwo(t *testing.T) {
	g, err := New(testCfg(), 3, pamaFactory)
	if err != nil {
		t.Fatal(err)
	}
	if g.Shards() != 4 {
		t.Fatalf("shards = %d, want 4", g.Shards())
	}
	g, _ = New(testCfg(), 0, pamaFactory)
	if g.Shards() != 1 {
		t.Fatalf("shards = %d, want 1", g.Shards())
	}
}

func TestNewRejects(t *testing.T) {
	if _, err := New(testCfg(), 2, nil); err == nil {
		t.Fatal("nil factory accepted")
	}
	cfg := testCfg()
	cfg.CacheBytes = 4096 // one slab split across 4 shards: sub-slab shards
	if _, err := New(cfg, 4, pamaFactory); err == nil {
		t.Fatal("sub-slab shard accepted")
	}
}

func TestRoutingStable(t *testing.T) {
	g, _ := New(testCfg(), 4, pamaFactory)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := g.Set(key, 64, 0.01, uint32(i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i)
		_, flags, hit := g.Get(key, 0, 0, nil)
		if !hit || flags != uint32(i) {
			t.Fatalf("key %s lost or corrupted (hit=%v flags=%d)", key, hit, flags)
		}
	}
	if g.Items() != 200 {
		t.Fatalf("Items = %d, want 200", g.Items())
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestKeysSpreadAcrossShards(t *testing.T) {
	g, _ := New(testCfg(), 4, pamaFactory)
	for i := 0; i < 1000; i++ {
		g.Set(fmt.Sprintf("k%d", i), 64, 0.01, 0, nil)
	}
	for i, s := range g.shards {
		if n := s.Items(); n < 100 {
			t.Fatalf("shard %d holds only %d of 1000 keys: routing is skewed", i, n)
		}
	}
}

func TestOpsRouteConsistently(t *testing.T) {
	g, _ := New(testCfg(), 2, pamaFactory)
	g.Set("n", 64, 0.01, 0, []byte("5"))
	if v, err := g.Delta("n", 3, false); err != nil || v != 8 {
		t.Fatalf("Delta: %d %v", v, err)
	}
	_, _, cas, hit := g.GetWithCAS("n", nil)
	if !hit {
		t.Fatal("GetWithCAS miss")
	}
	if err := g.SetMode("n", cache.ModeCAS, cas, 64, 0.01, 0, 0, []byte("9")); err != nil {
		t.Fatal(err)
	}
	if !g.Touch("n", 1<<40) {
		t.Fatal("Touch failed")
	}
	if !g.Delete("n") || g.Contains("n") {
		t.Fatal("Delete failed")
	}
}

func TestFlushAndStats(t *testing.T) {
	g, _ := New(testCfg(), 2, func() cache.Policy { return policy.NewStatic() })
	for i := 0; i < 50; i++ {
		g.Set(fmt.Sprintf("k%d", i), 64, 0.01, 0, nil)
	}
	g.Get("k1", 0, 0, nil)
	g.Get("absent", 0, 0, nil)
	st := g.Stats()
	if st.Sets != 50 || st.Gets != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats: %+v", st)
	}
	g.Flush()
	if g.Items() != 0 {
		t.Fatal("flush incomplete")
	}
	snap := g.SnapshotSlabs()
	total := 0
	for _, v := range snap {
		total += v
	}
	if total == 0 {
		t.Fatal("slabs should remain assigned after flush")
	}
	if g.PolicyName() != "memcached" {
		t.Fatalf("policy name %q", g.PolicyName())
	}
}

func TestConcurrentShardedTraffic(t *testing.T) {
	g, _ := New(testCfg(), 4, pamaFactory)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("w%d-%d", w, i%100)
				switch i % 4 {
				case 0:
					g.Set(key, 1+i%512, 0.01, 0, []byte("x"))
				case 3:
					g.Delete(key)
				default:
					g.Get(key, 0, 0, nil)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
