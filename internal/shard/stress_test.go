package shard

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"pamakv/internal/cache"
)

// TestConcurrentMixedOps hammers a shard group from many goroutines with the
// full mixed operation set. It exists to run under -race: correctness of
// individual operations is the oracle tests' job; this test asserts the
// group survives contention with coherent per-key values and invariants.
func TestConcurrentMixedOps(t *testing.T) {
	cfg := testCfg()
	cfg.StaleValues = true
	cfg.StaleBytes = 1 << 16
	g, err := New(cfg, 4, pamaFactory)
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		ops     = 3000
		keys    = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("k%d", rng.Intn(keys))
				switch rng.Intn(12) {
				case 0, 1, 2: // set a self-describing value
					v := []byte("val:" + key)
					if err := g.Set(key, len(v)+len(key), 0.01, 7, v); err != nil {
						t.Errorf("set %q: %v", key, err)
						return
					}
				case 3: // conditional stores; preconditions may race, errors are fine
					v := []byte("val:" + key)
					_ = g.SetMode(key, cache.ModeAdd, 0, len(v)+len(key), 0.01, 7, 0, v)
				case 4:
					g.Delete(key)
				case 5: // numeric key namespace for deltas
					nk := fmt.Sprintf("n%d", rng.Intn(keys))
					v := []byte("100")
					if err := g.Set(nk, len(v)+len(nk), 0.01, 0, v); err != nil {
						t.Errorf("set %q: %v", nk, err)
						return
					}
					if _, err := g.Delta(nk, 1, rng.Intn(2) == 0); err != nil &&
						err != cache.ErrNotStored && err != cache.ErrNotNumeric {
						t.Errorf("delta %q: %v", nk, err)
						return
					}
				case 6:
					g.Touch(key, 0)
				case 7: // stale reads race evictions; any outcome but a panic is fine
					if val, _, ok := g.GetStale(key, nil); ok && len(val) == 0 {
						t.Errorf("GetStale(%q) served empty value", key)
						return
					}
				case 8:
					if _, _, cas, hit := g.GetWithCAS(key, nil); hit && cas == 0 {
						t.Errorf("gets %q hit with zero cas", key)
						return
					}
				default:
					// Values are self-describing, so a torn or misrouted
					// read is detectable despite the races.
					if val, flags, hit := g.Get(key, 0, 0, nil); hit {
						if string(val) != "val:"+key || flags != 7 {
							t.Errorf("get %q -> %q flags %d", key, val, flags)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Sets == 0 || st.Gets == 0 {
		t.Fatalf("vacuous run: %+v", st)
	}
	// The numeric namespace must still hold parseable integers.
	for i := 0; i < keys; i++ {
		if val, _, hit := g.Get(fmt.Sprintf("n%d", i), 0, 0, nil); hit {
			if _, err := strconv.ParseUint(string(val), 10, 64); err != nil {
				t.Fatalf("numeric key n%d corrupted to %q", i, val)
			}
		}
	}
}

// TestConcurrentFlushAndWrites races Flush against writers: the group must
// stay invariant-clean and every surviving value coherent.
func TestConcurrentFlushAndWrites(t *testing.T) {
	g, err := New(testCfg(), 2, pamaFactory)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				key := fmt.Sprintf("k%d", (w*1000+i)%64)
				v := []byte("val:" + key)
				_ = g.Set(key, len(v)+len(key), 0.01, 0, v)
				if val, _, hit := g.Get(key, 0, 0, nil); hit && string(val) != "val:"+key {
					t.Errorf("get %q -> %q", key, val)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			g.Flush()
		}
	}()
	wg.Wait()
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
