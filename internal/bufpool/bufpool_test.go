package bufpool

import "testing"

func TestGetLenAndCapacity(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 66, 67, 100, 1024, 1 << 20, 1<<20 + 2} {
		b := Get(n)
		if len(*b) != n {
			t.Fatalf("Get(%d) len = %d", n, len(*b))
		}
		if cap(*b) < n {
			t.Fatalf("Get(%d) cap = %d", n, cap(*b))
		}
		Put(b)
	}
}

func TestTierForCoversProtocolMax(t *testing.T) {
	// A max-size data block plus its CRLF must still land in a tier, or
	// every 1 MiB SET would bypass the pool.
	if tierFor(1<<20+2) < 0 {
		t.Fatal("1 MiB + CRLF does not fit the largest tier")
	}
	if tierFor(1<<20+3) != -1 {
		t.Fatal("oversized request mapped to a tier")
	}
	for n := 0; n <= 1<<20+2; n += 4099 {
		tt := tierFor(n)
		if tt < 0 || tierSize(tt) < n {
			t.Fatalf("tierFor(%d) = %d (size %d)", n, tt, tierSize(tt))
		}
		if tt > 0 && tierSize(tt-1) >= n {
			t.Fatalf("tierFor(%d) = %d not minimal", n, tt)
		}
	}
}

func TestPutRefilesGrownBuffer(t *testing.T) {
	// A buffer that grew past its tier via append is filed under the
	// largest tier it covers, so a future Get of that tier still sees
	// enough capacity.
	b := make([]byte, 0, 5000)
	Put(&b)
	got := Get(4098) // largest tier size <= 5000
	if cap(*got) < 4098 {
		t.Fatalf("cap = %d", cap(*got))
	}
	Put(got)
}

func TestPutDropsTinyAndNil(t *testing.T) {
	Put(nil) // must not panic
	small := make([]byte, 10)
	Put(&small) // below the smallest tier: dropped, must not panic
}

// TestRoundTripAllocs pins the warm-pool Get/Put cycle at zero allocations:
// this is what lets a SET fill cost O(1) pooled allocations instead of one
// make per request.
func TestRoundTripAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector; the pooled-buffer gate cannot hold")
	}
	// Warm one tier.
	for i := 0; i < 16; i++ {
		Put(Get(1000))
	}
	allocs := testing.AllocsPerRun(1000, func() {
		b := Get(1000)
		(*b)[0] = 1
		Put(b)
	})
	// A stray GC may empty the pool once mid-run; anything approaching one
	// allocation per cycle means the round trip itself allocates.
	if allocs > 0.5 {
		t.Fatalf("warm Get/Put allocates %.2f objects per cycle, want ~0", allocs)
	}
}
