// Package bufpool provides tiered byte-buffer pools for the serving path's
// transient buffers: SET data blocks, rendered peer requests, and any other
// short-lived []byte whose size is request-dependent.
//
// The tiers mirror the default slab-class geometry (base 64 bytes, doubling
// per class, topping out at the 1 MiB value cap) so a pooled buffer is the
// same shape as the slot the bytes are headed for; each tier carries two
// bytes of slack for the protocol's CRLF data-block terminator, letting a
// value that exactly fills a slab class still be framed without spilling to
// the next tier.
//
// Buffers travel as *[]byte so a Get/Put round trip performs no allocation
// once the pool is warm (storing a bare []byte in a sync.Pool would box the
// slice header on every Put). Ownership is strict hand-off: after Put the
// caller must not touch the buffer again.
package bufpool

import "sync"

const (
	// baseSize matches kv.DefaultGeometry's class-0 slot (64 bytes).
	baseSize = 64
	// numTiers spans 64 B .. 1 MiB, doubling — one tier per default slab
	// class shape.
	numTiers = 15
	// slack is the CRLF terminator headroom added to every tier.
	slack = 2
)

var tiers [numTiers]sync.Pool

// tierSize returns the capacity of tier t: the slab-class slot size plus
// CRLF slack.
func tierSize(t int) int { return baseSize<<t + slack }

// tierFor returns the smallest tier whose buffers hold n bytes, or -1 when
// n exceeds the largest tier.
func tierFor(n int) int {
	for t := 0; t < numTiers; t++ {
		if n <= tierSize(t) {
			return t
		}
	}
	return -1
}

// Get returns a buffer with len n, drawn from the smallest tier that fits.
// Requests beyond the largest tier are served by a plain allocation (Put
// will drop them). The contents are unspecified — callers overwrite.
func Get(n int) *[]byte {
	t := tierFor(n)
	if t < 0 {
		b := make([]byte, n)
		return &b
	}
	if v := tiers[t].Get(); v != nil {
		b := v.(*[]byte)
		*b = (*b)[:n]
		return b
	}
	b := make([]byte, n, tierSize(t))
	return &b
}

// Put returns b to the pool serving its capacity. A buffer that grew past
// its tier is filed under the largest tier it still covers; buffers smaller
// than the smallest tier (or nil) are dropped for the GC. After Put the
// buffer belongs to the pool: the caller must not retain any view of it.
func Put(b *[]byte) {
	if b == nil {
		return
	}
	c := cap(*b)
	if c < tierSize(0) {
		return
	}
	t := numTiers - 1
	for t > 0 && tierSize(t) > c {
		t--
	}
	*b = (*b)[:0]
	tiers[t].Put(b)
}
