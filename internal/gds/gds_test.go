package gds

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, capBytes int64) *Cache {
	t.Helper()
	c, err := New(capBytes, false)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejects(t *testing.T) {
	if _, err := New(0, false); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestSetGetDelete(t *testing.T) {
	c, _ := New(1<<20, true)
	if err := c.Set("k", 5, 0.1, 7, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	val, flags, hit := c.Get("k", 0, 0, nil)
	if !hit || string(val) != "hello" || flags != 7 {
		t.Fatalf("get: %q %d %v", val, flags, hit)
	}
	if !c.Delete("k") || c.Delete("k") {
		t.Fatal("delete semantics")
	}
	if _, _, hit := c.Get("k", 0, 0, nil); hit {
		t.Fatal("deleted key served")
	}
	st := c.Stats()
	if st.Gets != 2 || st.Hits != 1 || st.Misses != 1 || st.Sets != 1 || st.Deletes != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCapacityEnforced(t *testing.T) {
	c := mustNew(t, 1000)
	for i := 0; i < 100; i++ {
		if err := c.Set(fmt.Sprintf("k%d", i), 100, 0.1, 0, nil); err != nil {
			t.Fatal(err)
		}
		if c.UsedBytes() > 1000 {
			t.Fatalf("over capacity: %d", c.UsedBytes())
		}
	}
	if c.Items() != 10 {
		t.Fatalf("items = %d, want 10", c.Items())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTooLarge(t *testing.T) {
	c := mustNew(t, 100)
	if err := c.Set("big", 500, 0.1, 0, nil); err == nil {
		t.Fatal("oversized item accepted")
	}
	if c.Stats().TooLarge != 1 {
		t.Fatal("TooLarge not counted")
	}
}

func TestEvictsCheapestPerByte(t *testing.T) {
	c := mustNew(t, 300)
	c.Set("cheap", 100, 0.001, 0, nil) // H ~ 0.00001
	c.Set("dear", 100, 1.0, 0, nil)    // H ~ 0.01
	c.Set("mid", 100, 0.1, 0, nil)     // H ~ 0.001
	// Inserting one more forces one eviction: the cheap item must go.
	c.Set("new", 100, 0.1, 0, nil)
	if _, _, hit := c.Get("cheap", 0, 0, nil); hit {
		t.Fatal("cheapest item survived")
	}
	if _, _, hit := c.Get("dear", 0, 0, nil); !hit {
		t.Fatal("most valuable item evicted")
	}
}

func TestFrequencyRaisesPriority(t *testing.T) {
	c := mustNew(t, 200)
	c.Set("a", 100, 0.01, 0, nil)
	c.Set("b", 100, 0.01, 0, nil)
	for i := 0; i < 10; i++ {
		c.Get("a", 0, 0, nil)
	}
	c.Set("new", 100, 0.01, 0, nil) // evicts one of a/b
	if _, _, hit := c.Get("a", 0, 0, nil); !hit {
		t.Fatal("frequently used item evicted")
	}
	if _, _, hit := c.Get("b", 0, 0, nil); hit {
		t.Fatal("cold item survived over hot one")
	}
}

func TestInflationAgesStaleItems(t *testing.T) {
	c := mustNew(t, 200)
	c.Set("old-hot", 100, 1.0, 0, nil)
	for i := 0; i < 50; i++ {
		c.Get("old-hot", 0, 0, nil) // H ≈ 51*1.0/100 ≈ 0.5
	}
	// Churn single-use items through the remaining 100 bytes: every
	// insert evicts the previous churn item and raises L by its H
	// (L + 0.2/100 each round), so L must eventually exceed the stale
	// hot item's priority and evict it — the GDSF aging property.
	for i := 0; i < 2000; i++ {
		c.Set(fmt.Sprintf("churn%d", i), 100, 0.2, 0, nil)
	}
	if c.Inflation() == 0 {
		t.Fatal("inflation never advanced")
	}
	if c.Contains("old-hot") {
		t.Fatalf("stale hot item survived aging (L=%v)", c.Inflation())
	}
}

func TestReplaceAdjustsBytes(t *testing.T) {
	c := mustNew(t, 1000)
	c.Set("k", 100, 0.1, 0, nil)
	c.Set("k", 600, 0.1, 0, nil)
	if c.UsedBytes() != 600 || c.Items() != 1 {
		t.Fatalf("used=%d items=%d", c.UsedBytes(), c.Items())
	}
	c.Set("k", 50, 0.1, 0, nil)
	if c.UsedBytes() != 50 {
		t.Fatalf("shrink not accounted: %d", c.UsedBytes())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroSizeClamped(t *testing.T) {
	c := mustNew(t, 100)
	if err := c.Set("k", 0, 0.1, 0, nil); err != nil {
		t.Fatal(err)
	}
	if c.UsedBytes() != 1 {
		t.Fatalf("zero size should clamp to 1, used=%d", c.UsedBytes())
	}
}

// TestHeapAgainstModel drives random operations and verifies the evicted
// item is always the minimum-H one by checking invariants continuously.
func TestHeapAgainstModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := mustNew(&testing.T{}, 5000)
		for op := 0; op < 2000; op++ {
			key := fmt.Sprintf("k%d", rng.Intn(200))
			switch rng.Intn(10) {
			case 0:
				c.Delete(key)
			case 1, 2, 3:
				size := 1 + rng.Intn(400)
				pen := []float64{0.001, 0.05, 2.0}[rng.Intn(3)]
				c.Set(key, size, pen, 0, nil)
			default:
				c.Get(key, 0, 0, nil)
			}
			if op%100 == 0 {
				if err := c.CheckInvariants(); err != nil {
					return false
				}
			}
		}
		return c.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestValuesCopied(t *testing.T) {
	c, _ := New(1000, true)
	v := []byte("abc")
	c.Set("k", 3, 0.1, 0, v)
	v[0] = 'X'
	got, _, _ := c.Get("k", 0, 0, nil)
	if string(got) != "abc" {
		t.Fatal("stored value aliases caller buffer")
	}
	got[1] = 'Y'
	got2, _, _ := c.Get("k", 0, 0, nil)
	if string(got2) != "abc" {
		t.Fatal("returned value aliases stored buffer")
	}
}

func BenchmarkGDSFMixed(b *testing.B) {
	c, _ := New(64<<20, false)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("k%d", rng.Intn(100000))
		if _, _, hit := c.Get(key, 0, 0, nil); !hit {
			c.Set(key, 1+rng.Intn(4096), 0.05, 0, nil)
		}
	}
}
