// Package gds implements GreedyDual-Size-Frequency (Cherkasova, 1998), the
// classic item-granularity cost-aware replacement family, as an alternative
// engine to the slab-class cache: instead of reallocating slabs between
// size classes, GDSF ranks every item by
//
//	H(item) = L + frequency × cost / size
//
// where cost is the item's miss penalty and L is the "inflation" value —
// the H of the last evicted item — which ages resident items without
// touching them. Eviction always removes the minimum-H item.
//
// GDSF optimizes the same objective as PAMA (penalty-weighted hits per
// byte) but with per-item bookkeeping and no slab constraint, so it is the
// natural upper-ish baseline for how much of PAMA's gap to penalty-blind
// schemes is attributable to penalty awareness versus to slab mechanics.
// BenchmarkExtensionGDSF compares them.
package gds

import (
	"fmt"
	"sync"
)

// entry is one resident item in the heap and index.
type entry struct {
	key     string
	size    int
	penalty float64
	value   []byte
	flags   uint32
	freq    uint64
	h       float64
	heapIdx int
}

// Stats mirror the counters the simulator reports.
type Stats struct {
	Gets, Hits, Misses uint64
	Sets, Deletes      uint64
	Evictions          uint64
	TooLarge           uint64
}

// Cache is a GDSF cache bounded by total bytes. Construct with New; safe
// for concurrent use.
type Cache struct {
	mu        sync.Mutex
	capBytes  int64
	usedBytes int64
	idx       map[string]*entry
	heap      []*entry // min-heap on h
	l         float64  // inflation
	store     bool
	stats     Stats
}

// New returns a cache holding at most capBytes of item payload. storeValues
// keeps bodies (off for simulation).
func New(capBytes int64, storeValues bool) (*Cache, error) {
	if capBytes <= 0 {
		return nil, fmt.Errorf("gds: capacity %d must be positive", capBytes)
	}
	return &Cache{capBytes: capBytes, idx: make(map[string]*entry), store: storeValues}, nil
}

// Get looks key up; a hit bumps frequency and re-prices the item.
func (c *Cache) Get(key string, _ int, _ float64, buf []byte) ([]byte, uint32, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Gets++
	e, ok := c.idx[key]
	if !ok {
		c.stats.Misses++
		return buf, 0, false
	}
	c.stats.Hits++
	e.freq++
	e.h = c.l + float64(e.freq)*e.penalty/float64(e.size)
	c.fix(e.heapIdx)
	if c.store {
		buf = append(buf, e.value...)
	}
	return buf, e.flags, true
}

// Set inserts or replaces key with the given size and miss penalty.
func (c *Cache) Set(key string, size int, pen float64, flags uint32, value []byte) error {
	if size < 1 {
		size = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Sets++
	if int64(size) > c.capBytes {
		c.stats.TooLarge++
		return fmt.Errorf("gds: item of %d bytes exceeds capacity %d", size, c.capBytes)
	}
	if e, ok := c.idx[key]; ok {
		c.usedBytes += int64(size) - int64(e.size)
		e.size = size
		e.penalty = pen
		e.flags = flags
		if c.store {
			e.value = append(e.value[:0], value...)
		}
		e.freq++
		e.h = c.l + float64(e.freq)*pen/float64(size)
		c.fix(e.heapIdx)
		c.evictOver()
		return nil
	}
	e := &entry{key: key, size: size, penalty: pen, flags: flags, freq: 1}
	if c.store {
		e.value = append([]byte(nil), value...)
	}
	e.h = c.l + pen/float64(size)
	c.idx[key] = e
	c.push(e)
	c.usedBytes += int64(size)
	c.evictOver()
	return nil
}

// Delete removes key, reporting whether it was resident.
func (c *Cache) Delete(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Deletes++
	e, ok := c.idx[key]
	if !ok {
		return false
	}
	c.removeEntry(e)
	return true
}

// Contains reports residency without touching frequency or stats.
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.idx[key]
	return ok
}

// Items returns the resident count.
func (c *Cache) Items() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.idx)
}

// UsedBytes returns the current payload footprint.
func (c *Cache) UsedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.usedBytes
}

// Inflation returns the current aging value L.
func (c *Cache) Inflation() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.l
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// CheckInvariants validates heap shape, index agreement, and accounting.
func (c *Cache) CheckInvariants() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.heap) != len(c.idx) {
		return fmt.Errorf("gds: heap %d vs index %d", len(c.heap), len(c.idx))
	}
	var used int64
	for i, e := range c.heap {
		if e.heapIdx != i {
			return fmt.Errorf("gds: entry %q heapIdx %d at position %d", e.key, e.heapIdx, i)
		}
		if c.idx[e.key] != e {
			return fmt.Errorf("gds: entry %q not indexed", e.key)
		}
		if l := 2*i + 1; l < len(c.heap) && c.heap[l].h < e.h {
			return fmt.Errorf("gds: heap order violated at %d", i)
		}
		if r := 2*i + 2; r < len(c.heap) && c.heap[r].h < e.h {
			return fmt.Errorf("gds: heap order violated at %d", i)
		}
		used += int64(e.size)
	}
	if used != c.usedBytes {
		return fmt.Errorf("gds: accounted %d bytes, tracked %d", used, c.usedBytes)
	}
	if c.usedBytes > c.capBytes {
		return fmt.Errorf("gds: over capacity: %d > %d", c.usedBytes, c.capBytes)
	}
	return nil
}

// evictOver evicts minimum-H items until within capacity, inflating L.
func (c *Cache) evictOver() {
	for c.usedBytes > c.capBytes && len(c.heap) > 0 {
		min := c.heap[0]
		c.l = min.h // aging: future insertions start at the evicted value
		c.removeEntry(min)
		c.stats.Evictions++
	}
}

func (c *Cache) removeEntry(e *entry) {
	c.usedBytes -= int64(e.size)
	delete(c.idx, e.key)
	last := len(c.heap) - 1
	i := e.heapIdx
	c.swap(i, last)
	c.heap = c.heap[:last]
	if i < last {
		c.fix(i)
	}
}

// ---- indexed binary min-heap on h ----

func (c *Cache) push(e *entry) {
	e.heapIdx = len(c.heap)
	c.heap = append(c.heap, e)
	c.up(e.heapIdx)
}

func (c *Cache) fix(i int) {
	if !c.down(i) {
		c.up(i)
	}
}

func (c *Cache) swap(i, j int) {
	if i == j {
		return
	}
	c.heap[i], c.heap[j] = c.heap[j], c.heap[i]
	c.heap[i].heapIdx = i
	c.heap[j].heapIdx = j
}

func (c *Cache) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if c.heap[parent].h <= c.heap[i].h {
			return
		}
		c.swap(i, parent)
		i = parent
	}
}

func (c *Cache) down(i int) bool {
	moved := false
	n := len(c.heap)
	for {
		small := i
		if l := 2*i + 1; l < n && c.heap[l].h < c.heap[small].h {
			small = l
		}
		if r := 2*i + 2; r < n && c.heap[r].h < c.heap[small].h {
			small = r
		}
		if small == i {
			return moved
		}
		c.swap(i, small)
		i = small
		moved = true
	}
}
