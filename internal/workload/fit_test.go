package workload

import (
	"math"
	"testing"

	"pamakv/internal/trace"
)

func TestFitConfigRecoversETCShape(t *testing.T) {
	src := ETC()
	src.Keys = 32 * 1024
	gen, err := New(src)
	if err != nil {
		t.Fatal(err)
	}
	fitted, err := FitConfig(&trace.Limit{S: gen, N: 400_000}, ETC())
	if err != nil {
		t.Fatal(err)
	}
	// Operation mix.
	if math.Abs(fitted.SetFrac-src.SetFrac) > 0.01 {
		t.Fatalf("SetFrac fitted %.4f, source %.4f", fitted.SetFrac, src.SetFrac)
	}
	if math.Abs(fitted.DelFrac-src.DelFrac) > 0.005 {
		t.Fatalf("DelFrac fitted %.4f, source %.4f", fitted.DelFrac, src.DelFrac)
	}
	// Class 0 dominance.
	if fitted.ClassWeights[0] < 0.6 || fitted.ClassWeights[0] > 0.85 {
		t.Fatalf("class-0 weight fitted %.3f, source %.3f", fitted.ClassWeights[0], src.ClassWeights[0])
	}
	// Zipf exponent within a plausible band of the source 0.99. The
	// sampler's head flattens slightly under drift, so accept a wide but
	// informative window.
	if fitted.ZipfS < 0.6 || fitted.ZipfS > 1.3 {
		t.Fatalf("ZipfS fitted %.3f, source %.3f", fitted.ZipfS, src.ZipfS)
	}
	// Hot keyspace within 3x of the touched hot set.
	if fitted.Keys == 0 || fitted.Keys > src.Keys*3 {
		t.Fatalf("Keys fitted %d, source %d", fitted.Keys, src.Keys)
	}
	if fitted.Name != "ETC-fitted" {
		t.Fatalf("Name = %q", fitted.Name)
	}
	// The fitted config must itself drive a generator.
	if _, err := New(fitted); err != nil {
		t.Fatal(err)
	}
}

func TestFitConfigTooFewRequests(t *testing.T) {
	gen, _ := New(ETC())
	if _, err := FitConfig(&trace.Limit{S: gen, N: 10}, ETC()); err == nil {
		t.Fatal("tiny trace accepted")
	}
}

func TestFitConfigAllUniqueKeys(t *testing.T) {
	// Every key unique: the cold fraction must be capped so the config
	// stays valid.
	reqs := make([]trace.Request, 1000)
	for i := range reqs {
		reqs[i] = trace.Request{Op: 0, Key: uint64(i), Size: 100}
	}
	cfg, err := FitConfig(&trace.SliceStream{Reqs: reqs}, ETC())
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("fitted config invalid: %v", err)
	}
	if cfg.Keys != 1 {
		t.Fatalf("Keys = %d for hot-less trace", cfg.Keys)
	}
}
