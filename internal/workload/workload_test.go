package workload

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"pamakv/internal/kv"
	"pamakv/internal/trace"
)

func TestZipfRankBounds(t *testing.T) {
	f := func(u float64, skew uint8) bool {
		u = math.Abs(u)
		u -= math.Floor(u) // [0,1)
		s := float64(skew%20) / 10.0
		z := NewZipf(1000, s)
		r := z.Rank(u)
		return r < 1000
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfMonotone(t *testing.T) {
	z := NewZipf(1<<20, 0.99)
	prev := uint64(0)
	for u := 0.0; u < 1.0; u += 0.01 {
		r := z.Rank(u)
		if r < prev {
			t.Fatalf("Rank not monotone in u: Rank(%v)=%d after %d", u, r, prev)
		}
		prev = r
	}
}

func TestZipfSkewConcentrates(t *testing.T) {
	// Higher skew must concentrate more mass in low ranks.
	flat := NewZipf(1<<20, 0.0)
	skewed := NewZipf(1<<20, 0.99)
	if skewed.QuantileRank(0.5) >= flat.QuantileRank(0.5) {
		t.Fatalf("skewed median rank %d should be below uniform median rank %d",
			skewed.QuantileRank(0.5), flat.QuantileRank(0.5))
	}
	// At s=0.99 over 1M keys, half the mass sits in a small head.
	if h := skewed.QuantileRank(0.5); h > 1<<16 {
		t.Fatalf("s=0.99 median rank %d suspiciously deep", h)
	}
}

func TestZipfEmpiricalOrdering(t *testing.T) {
	z := NewZipf(1024, 0.99)
	r := newRNG(7)
	counts := make([]int, 1024)
	for i := 0; i < 200000; i++ {
		counts[z.Rank(r.float())]++
	}
	// Rank 0 must dominate deep ranks decisively.
	if counts[0] < 10*counts[512] {
		t.Fatalf("rank 0 count %d vs rank 512 count %d: insufficient skew", counts[0], counts[512])
	}
	if counts[0] < counts[1] {
		t.Fatalf("rank 0 (%d) should outdraw rank 1 (%d)", counts[0], counts[1])
	}
}

func TestRNGDeterministicAndUniform(t *testing.T) {
	a, b := newRNG(42), newRNG(42)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("rng not deterministic")
		}
	}
	r := newRNG(1)
	mean := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		mean += r.float()
	}
	mean /= n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("rng mean %v, want ~0.5", mean)
	}
}

func TestConfigValidate(t *testing.T) {
	good := ETC()
	if err := good.Validate(); err != nil {
		t.Fatalf("ETC invalid: %v", err)
	}
	if err := APP().Validate(); err != nil {
		t.Fatalf("APP invalid: %v", err)
	}
	bad := []Config{
		{},
		{Keys: 10, ZipfS: -1, BaseSize: 64, ClassWeights: []float64{1}},
		{Keys: 10, BaseSize: 0, ClassWeights: []float64{1}},
		{Keys: 10, BaseSize: 64},
		{Keys: 10, BaseSize: 64, ClassWeights: []float64{1}, ColdFrac: 0.6, SetFrac: 0.5},
		{Keys: 10, BaseSize: 64, ClassWeights: []float64{-1, 2}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestByNameAndVariants(t *testing.T) {
	for _, name := range []string{"etc", "app", "usr", "sys", "var"} {
		cfg, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", name, err)
		}
		g, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.Next(); err != nil {
			t.Fatalf("%s generator: %v", name, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestUSRIsSingleClass(t *testing.T) {
	cfg := USR()
	g, _ := New(cfg)
	for i := 0; i < 5000; i++ {
		r, _ := g.Next()
		if r.Size > uint32(cfg.BaseSize) {
			t.Fatalf("USR item of %d bytes escapes class 0", r.Size)
		}
	}
}

func TestSYSFitsSmallCache(t *testing.T) {
	cfg := SYS()
	if cfg.Footprint() > 64<<20 {
		t.Fatalf("SYS footprint %d should be tiny", cfg.Footprint())
	}
}

func TestVARIsUpdateDominated(t *testing.T) {
	g, _ := New(VAR())
	sets := 0
	const n = 20000
	for i := 0; i < n; i++ {
		r, _ := g.Next()
		if r.Op == kv.Set {
			sets++
		}
	}
	if float64(sets)/n < 0.6 {
		t.Fatalf("VAR set fraction %.2f, want >= 0.6", float64(sets)/n)
	}
}

func TestSizeOfDeterministicAndBanded(t *testing.T) {
	cfg := ETC()
	f := func(h uint64) bool {
		s1, s2 := cfg.SizeOf(h), cfg.SizeOf(h)
		if s1 != s2 || s1 < 1 {
			return false
		}
		return s1 <= cfg.BaseSize<<uint(len(cfg.ClassWeights)-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSizeMixtureMatchesWeights(t *testing.T) {
	cfg := ETC()
	g := kv.Geometry{SlabSize: 1 << 20, Base: cfg.BaseSize, NumClasses: len(cfg.ClassWeights)}
	counts := make([]int, g.NumClasses)
	const n = 200000
	for i := 0; i < n; i++ {
		size := cfg.SizeOf(kv.Mix64(uint64(i) * 0x9e3779b97f4a7c15))
		counts[g.ClassFor(size)]++
	}
	want := cfg.ExpectedClassShare()
	for c := 0; c < 3; c++ { // check the heavy bands tightly
		got := float64(counts[c]) / n
		if math.Abs(got-want[c]) > 0.02 {
			t.Fatalf("class %d share %.3f, want %.3f±0.02", c, got, want[c])
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	g1, err := New(ETC())
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := New(ETC())
	for i := 0; i < 1000; i++ {
		a, _ := g1.Next()
		b, _ := g2.Next()
		if a != b {
			t.Fatalf("request %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestGeneratorOpMix(t *testing.T) {
	cfg := ETC()
	cfg.Keys = 1 << 14
	g, _ := New(cfg)
	var gets, sets, dels, colds int
	const n = 100000
	for i := 0; i < n; i++ {
		r, _ := g.Next()
		switch r.Op {
		case kv.Get:
			gets++
			if r.Key >= coldBase {
				colds++
			}
		case kv.Set:
			sets++
		case kv.Delete:
			dels++
		}
	}
	check := func(name string, got int, want float64) {
		t.Helper()
		if math.Abs(float64(got)/n-want) > 0.01 {
			t.Errorf("%s fraction %.4f, want %.4f", name, float64(got)/n, want)
		}
	}
	check("set", sets, cfg.SetFrac)
	check("delete", dels, cfg.DelFrac)
	check("cold", colds, cfg.ColdFrac)
	check("get", gets, 1-cfg.SetFrac-cfg.DelFrac)
}

func TestGeneratorColdKeysUnique(t *testing.T) {
	cfg := ETC()
	cfg.ColdFrac = 0.5
	g, _ := New(cfg)
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		r, _ := g.Next()
		if r.Key >= coldBase {
			if seen[r.Key] {
				t.Fatalf("cold key %d repeated", r.Key)
			}
			seen[r.Key] = true
		}
	}
	if len(seen) == 0 {
		t.Fatal("no cold keys generated")
	}
}

func TestGeneratorDrift(t *testing.T) {
	cfg := ETC()
	cfg.RotateEvery = 100
	cfg.ColdFrac, cfg.SetFrac, cfg.DelFrac = 0, 0, 0
	g, _ := New(cfg)
	early := map[uint64]int{}
	for i := 0; i < 5000; i++ {
		r, _ := g.Next()
		early[r.Key]++
	}
	for i := 0; i < 2_000_000; i++ {
		g.Next()
	}
	late := map[uint64]int{}
	for i := 0; i < 5000; i++ {
		r, _ := g.Next()
		late[r.Key]++
	}
	// After 2M requests at RotateEvery=100, the phase advanced 20000 keys:
	// the most popular key identities must have moved.
	topOf := func(m map[uint64]int) uint64 {
		var best uint64
		bestN := -1
		for k, n := range m {
			if n > bestN {
				best, bestN = k, n
			}
		}
		return best
	}
	if topOf(early) == topOf(late) {
		t.Fatal("hot set did not drift")
	}
}

func TestGeneratorNoDriftWhenDisabled(t *testing.T) {
	cfg := ETC()
	cfg.RotateEvery = 0
	cfg.ColdFrac, cfg.SetFrac, cfg.DelFrac = 0, 0, 0
	g, _ := New(cfg)
	for i := 0; i < 1000; i++ {
		r, _ := g.Next()
		if r.Key >= cfg.Keys {
			t.Fatalf("key %d outside hot space with drift disabled", r.Key)
		}
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestMeanSizeAndFootprint(t *testing.T) {
	cfg := ETC()
	if app := APP(); app.MeanSize() <= cfg.MeanSize() {
		t.Fatalf("APP mean size (%.0f) should exceed ETC (%.0f)", app.MeanSize(), cfg.MeanSize())
	}
	if cfg.Footprint() <= 0 {
		t.Fatal("footprint must be positive")
	}
	// Empirical mean within 15% of analytic mean.
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += float64(cfg.SizeOf(kv.Mix64(uint64(i) * 31)))
	}
	emp := sum / n
	if an := cfg.MeanSize(); math.Abs(emp-an)/an > 0.15 {
		t.Fatalf("empirical mean %.1f vs analytic %.1f", emp, an)
	}
}

func TestMakeBurst(t *testing.T) {
	bc := BurstConfig{TotalBytes: 1 << 20, Classes: []int{3, 4, 5}, BaseSize: 64, Seed: 1}
	reqs := MakeBurst(bc)
	if len(reqs) == 0 {
		t.Fatal("empty burst")
	}
	var total int64
	for _, r := range reqs {
		if r.Op != kv.Get {
			t.Fatal("burst must be GETs for fresh keys (miss + client refill)")
		}
		if r.Key < coldBase*2 {
			t.Fatal("burst keys must come from the burst space")
		}
		size := int(r.Size)
		if size <= 64<<2 || size > 64<<5 {
			t.Fatalf("burst size %d outside classes 3-5", size)
		}
		total += int64(size)
	}
	if total < bc.TotalBytes {
		t.Fatalf("burst bytes %d below target %d", total, bc.TotalBytes)
	}
	if MakeBurst(BurstConfig{}) != nil {
		t.Fatal("zero burst config should yield nil")
	}
}

func TestDescribe(t *testing.T) {
	var sb strings.Builder
	ETC().Describe(&sb)
	if !strings.Contains(sb.String(), "ETC") {
		t.Fatalf("Describe output: %q", sb.String())
	}
}

func TestGeneratorStreamInterface(t *testing.T) {
	g, _ := New(ETC())
	var s trace.Stream = g
	limited := &trace.Limit{S: s, N: 10}
	got, err := trace.Collect(limited, -1)
	if err != nil || len(got) != 10 {
		t.Fatalf("collect via Stream: %d, %v", len(got), err)
	}
}
