package workload

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"pamakv/internal/kv"
	"pamakv/internal/trace"
)

// FitConfig estimates generator parameters from a finite trace: operation
// mix, hot-keyspace size, cold (single-access) fraction, per-class request
// weights, and the Zipf exponent (least-squares fit of log count against
// log rank over the popular head). Fields the trace cannot reveal —
// penalty model, rotation cadence, seed — are taken from base.
//
// Together with pama-stats this closes the loop for users with real traces:
// analyze, fit, then drive the simulator's experiment matrix with a
// synthetic generator shaped like production.
func FitConfig(s trace.Stream, base Config) (Config, error) {
	geom := kv.Geometry{SlabSize: 1 << 20, Base: base.BaseSize, NumClasses: 15}
	if base.BaseSize <= 0 {
		base.BaseSize = 64
		geom.Base = 64
	}
	counts := map[uint64]uint64{}
	classReqs := make([]float64, geom.NumClasses)
	var total, gets, sets, dels uint64
	for {
		r, err := s.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return Config{}, err
		}
		total++
		switch r.Op {
		case kv.Get:
			gets++
		case kv.Set:
			sets++
		case kv.Delete:
			dels++
		}
		counts[r.Key]++
		if c := geom.ClassFor(int(r.Size)); c >= 0 {
			classReqs[c]++
		}
	}
	if total < 100 {
		return Config{}, fmt.Errorf("workload: %d requests are too few to fit", total)
	}

	cfg := base
	cfg.Name = base.Name + "-fitted"
	cfg.SetFrac = float64(sets) / float64(total)
	cfg.DelFrac = float64(dels) / float64(total)

	// Hot keys recur; single-access keys form the cold stream.
	hot := make([]uint64, 0, len(counts))
	var singles uint64
	for _, n := range counts {
		if n == 1 {
			singles++
		} else {
			hot = append(hot, n)
		}
	}
	cfg.ColdFrac = float64(singles) / float64(total)
	if cfg.ColdFrac+cfg.SetFrac+cfg.DelFrac >= 1 {
		// Degenerate trace (e.g. all unique keys); cap so the config
		// stays valid.
		cfg.ColdFrac = 0.99 - cfg.SetFrac - cfg.DelFrac
	}
	cfg.Keys = uint64(len(hot))
	if cfg.Keys == 0 {
		cfg.Keys = 1
	}

	// Class weights from observed request shares.
	weights := make([]float64, geom.NumClasses)
	var sum float64
	for c, n := range classReqs {
		weights[c] = n
		sum += n
	}
	if sum > 0 {
		for c := range weights {
			weights[c] /= sum
		}
		// Trim trailing zero classes for a tidy config.
		end := len(weights)
		for end > 1 && weights[end-1] == 0 {
			end--
		}
		cfg.ClassWeights = weights[:end]
	}

	// Zipf exponent: regress log(count) on log(rank) over the head.
	sort.Slice(hot, func(i, j int) bool { return hot[i] > hot[j] })
	head := len(hot)
	if head > 10_000 {
		head = 10_000
	}
	if head >= 10 {
		var sx, sy, sxx, sxy float64
		n := 0
		for r := 0; r < head; r++ {
			x := math.Log(float64(r + 1))
			y := math.Log(float64(hot[r]))
			sx += x
			sy += y
			sxx += x * x
			sxy += x * y
			n++
		}
		den := float64(n)*sxx - sx*sx
		if den > 0 {
			slope := (float64(n)*sxy - sx*sy) / den
			s := -slope
			if s < 0 {
				s = 0
			}
			if s > 1.5 {
				s = 1.5
			}
			cfg.ZipfS = s
		}
	}
	return cfg, cfg.Validate()
}
