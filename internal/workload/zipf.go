// Package workload synthesizes request streams with the statistical shape of
// the Facebook Memcached traces the paper evaluates on (ETC and APP from
// Atikoglu et al., SIGMETRICS 2012), which are proprietary. See DESIGN.md §2
// for the substitution argument. The knobs — key popularity skew, item-size
// mixture, cold-miss fraction, popularity drift — are all explicit, so the
// generators double as a general workload toolkit.
package workload

import (
	"math"

	"pamakv/internal/kv"
)

// Zipf samples ranks in [0, N) with P(rank k) ∝ 1/(k+1)^S for any skew
// S ≥ 0, including the S ≤ 1 regime typical of web caches, which the
// standard library's rand.Zipf (S > 1 only) cannot produce.
//
// Sampling inverts the continuous approximation of the cumulative mass,
// H(x) = ∫ x^-s dx, which is exact in the limit and rank-faithful for cache
// studies: the approximation error shifts individual probabilities by
// O(1/N) without disturbing the popularity ordering.
type Zipf struct {
	n    float64
	s    float64
	hN   float64 // generalized harmonic integral at N
	oneS float64 // 1-s, cached
}

// NewZipf returns a sampler over [0,n) with exponent s. n must be >=1;
// s must be >= 0.
func NewZipf(n uint64, s float64) *Zipf {
	z := &Zipf{n: float64(n), s: s, oneS: 1 - s}
	z.hN = z.hInt(z.n)
	return z
}

// hInt is the continuous generalized harmonic: ∫_0.5^x (t)^-s dt shifted so
// rank 0 carries the largest mass.
func (z *Zipf) hInt(x float64) float64 {
	if math.Abs(z.oneS) < 1e-12 {
		return math.Log(x + 0.5)
	}
	return (math.Pow(x+0.5, z.oneS) - math.Pow(0.5, z.oneS)) / z.oneS
}

// invH inverts hInt.
func (z *Zipf) invH(y float64) float64 {
	if math.Abs(z.oneS) < 1e-12 {
		return math.Exp(y) - 0.5
	}
	return math.Pow(y*z.oneS+math.Pow(0.5, z.oneS), 1/z.oneS) - 0.5
}

// Rank maps a uniform variate u in [0,1) to a rank in [0, N), rank 0 being
// the most popular.
func (z *Zipf) Rank(u float64) uint64 {
	x := z.invH(u * z.hN)
	if x < 0 {
		x = 0
	}
	r := uint64(x)
	if r >= uint64(z.n) {
		r = uint64(z.n) - 1
	}
	return r
}

// rng is a splitmix64 PRNG: tiny state, excellent mixing, fully
// deterministic across platforms, and cheaper than rand.Source for the tight
// generation loop.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed ^ 0x9e3779b97f4a7c15} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return kv.Mix64(r.state)
}

// float returns a uniform float64 in [0,1).
func (r *rng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

// intn returns a uniform int in [0,n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }
