package workload

import (
	"fmt"
	"io"
	"math"

	"pamakv/internal/kv"
	"pamakv/internal/penalty"
	"pamakv/internal/trace"
)

// Config parameterizes a synthetic workload. The zero value is invalid; use
// ETC, APP, or fill every field.
type Config struct {
	// Name labels the workload in reports.
	Name string
	// Keys is the hot keyspace size.
	Keys uint64
	// ZipfS is the popularity skew exponent (web caches: 0.9–1.0).
	ZipfS float64
	// BaseSize is the smallest size band's upper edge (class 0 slot, 64).
	BaseSize int
	// ClassWeights[i] is the probability that a key's size falls in band
	// i = (BaseSize<<(i-1), BaseSize<<i] (band 0 is [1, BaseSize]). The
	// weights need not sum to 1; they are normalized.
	ClassWeights []float64
	// ColdFrac is the probability a request targets a fresh,
	// never-to-be-reused key (cold misses; APP has many).
	ColdFrac float64
	// SetFrac and DelFrac are the probabilities of explicit SET and
	// DELETE operations on hot keys; the remainder are GETs.
	SetFrac, DelFrac float64
	// RotateEvery advances the popularity phase by one key every this
	// many requests, modeling diurnal drift of the hot set; 0 disables.
	RotateEvery uint64
	// Seed makes the stream reproducible.
	Seed uint64
	// Penalty is the miss-penalty model for this workload's keys.
	Penalty penalty.Model
}

// ETC models the paper's primary trace: "the most representative of
// large-scale, general-purpose KV stores" — heavily skewed popularity,
// predominantly tiny items (Class 0 receives over 70% of requests, paper
// §IV-A), small footprint relative to APP.
func ETC() Config {
	return Config{
		Name:     "ETC",
		Keys:     1 << 20,
		ZipfS:    0.99,
		BaseSize: 64,
		ClassWeights: []float64{
			0.72, 0.07, 0.05, 0.04, 0.03, 0.025, 0.02, 0.015,
			0.012, 0.006, 0.004, 0.003, 0.002, 0.001, 0.001,
		},
		ColdFrac:    0.010,
		SetFrac:     0.030,
		DelFrac:     0.002,
		RotateEvery: 2048,
		Seed:        1,
		Penalty:     penalty.Default(),
	}
}

// APP models the paper's second trace: a large data set of bigger items
// (the workload of Fig. 1), where "significant misses (around 40% of all
// misses) are cold misses".
func APP() Config {
	return Config{
		Name:     "APP",
		Keys:     400_000,
		ZipfS:    0.90,
		BaseSize: 64,
		ClassWeights: []float64{
			0.02, 0.03, 0.05, 0.08, 0.12, 0.15, 0.16, 0.14,
			0.11, 0.07, 0.04, 0.02, 0.007, 0.002, 0.001,
		},
		ColdFrac:    0.060,
		SetFrac:     0.020,
		DelFrac:     0.001,
		RotateEvery: 4096,
		Seed:        2,
		Penalty:     penalty.Default(),
	}
}

// USR models the trace the paper describes (and excludes) in §IV: "USR has
// two key size values (16B and 21B) and almost only one value size (2B)" —
// effectively a single-class workload where slab reallocation has nothing
// to do; useful as a degenerate-case regression workload.
func USR() Config {
	return Config{
		Name:         "USR",
		Keys:         2 << 20,
		ZipfS:        1.01,
		BaseSize:     64,
		ClassWeights: []float64{1}, // 16/21B keys + 2B values: everything in class 0
		ColdFrac:     0.002,
		SetFrac:      0.002,
		RotateEvery:  8192,
		Seed:         3,
		Penalty:      penalty.Default(),
	}
}

// SYS models §IV's SYS: "very small data set, and a 1G memory can produce
// almost a 100% hit ratio" — a working set far below any tested cache.
func SYS() Config {
	return Config{
		Name:     "SYS",
		Keys:     20_000,
		ZipfS:    0.9,
		BaseSize: 64,
		ClassWeights: []float64{
			0.3, 0.2, 0.15, 0.1, 0.08, 0.07, 0.05, 0.05,
		},
		ColdFrac:    0.0005,
		SetFrac:     0.01,
		RotateEvery: 0,
		Seed:        4,
		Penalty:     penalty.Default(),
	}
}

// VAR models §IV's VAR: "dominated by update requests, such as SET and
// REPLACE" — GET performance is a side show, which is why the paper leaves
// it out of the evaluation.
func VAR() Config {
	return Config{
		Name:     "VAR",
		Keys:     200_000,
		ZipfS:    0.95,
		BaseSize: 64,
		ClassWeights: []float64{
			0.4, 0.2, 0.12, 0.1, 0.08, 0.05, 0.03, 0.02,
		},
		ColdFrac:    0.005,
		SetFrac:     0.70,
		DelFrac:     0.01,
		RotateEvery: 4096,
		Seed:        5,
		Penalty:     penalty.Default(),
	}
}

// MixedSize is the memory-holes ablation trace: item sizes spread across
// several octaves with substantial mass in every occupied band, while the
// upper half of the geometry's size range stays empty. Power-of-two slots
// waste about a quarter of every occupied slot on intra-band spread and
// strand their class budget on bands no item ever reaches; a learned
// geometry reclaims both, which is exactly what results/fig_holes.tsv
// measures.
func MixedSize() Config {
	return Config{
		Name:     "MIXED",
		Keys:     60_000,
		ZipfS:    0.80,
		BaseSize: 64,
		ClassWeights: []float64{
			0.25, 0.20, 0.18, 0.14, 0.10, 0.08, 0.05,
		},
		ColdFrac:    0.010,
		SetFrac:     0.050,
		DelFrac:     0.002,
		RotateEvery: 4096,
		Seed:        9,
		Penalty:     penalty.Default(),
	}
}

// ByName resolves a workload model by its lower-case name.
func ByName(name string) (Config, error) {
	switch name {
	case "etc":
		return ETC(), nil
	case "app":
		return APP(), nil
	case "usr":
		return USR(), nil
	case "sys":
		return SYS(), nil
	case "var":
		return VAR(), nil
	case "mixed-size", "mixed":
		return MixedSize(), nil
	default:
		return Config{}, fmt.Errorf("workload: unknown model %q (etc, app, usr, sys, var, mixed-size)", name)
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Keys == 0:
		return fmt.Errorf("workload: Keys must be positive")
	case c.ZipfS < 0:
		return fmt.Errorf("workload: ZipfS must be >= 0")
	case c.BaseSize <= 0:
		return fmt.Errorf("workload: BaseSize must be positive")
	case len(c.ClassWeights) == 0:
		return fmt.Errorf("workload: ClassWeights must be non-empty")
	case c.ColdFrac < 0 || c.SetFrac < 0 || c.DelFrac < 0 ||
		c.ColdFrac+c.SetFrac+c.DelFrac >= 1:
		return fmt.Errorf("workload: op fractions must be non-negative and sum below 1")
	}
	for _, w := range c.ClassWeights {
		if w < 0 {
			return fmt.Errorf("workload: negative class weight")
		}
	}
	return nil
}

// SizeOf returns the deterministic item size for a key hash: band chosen by
// normalized ClassWeights, size uniform within the band. Both the generator
// and the simulated backend derive sizes through this, so a key always has
// one size.
func (c Config) SizeOf(keyHash uint64) int {
	total := 0.0
	for _, w := range c.ClassWeights {
		total += w
	}
	h := kv.Mix64(keyHash ^ 0x73697a65) // "size"
	u := float64(h>>11) / float64(1<<53) * total
	band := len(c.ClassWeights) - 1
	cum := 0.0
	for i, w := range c.ClassWeights {
		cum += w
		if u < cum {
			band = i
			break
		}
	}
	lo, hi := 1, c.BaseSize
	if band > 0 {
		lo = (c.BaseSize << uint(band-1)) + 1
		hi = c.BaseSize << uint(band)
	}
	span := hi - lo + 1
	return lo + int(kv.Mix64(h)%uint64(span))
}

// MeanSize returns the expected item size under the configuration —
// footprint estimation for experiment sizing.
func (c Config) MeanSize() float64 {
	total := 0.0
	for _, w := range c.ClassWeights {
		total += w
	}
	mean := 0.0
	for i, w := range c.ClassWeights {
		lo, hi := 1.0, float64(c.BaseSize)
		if i > 0 {
			lo = float64(c.BaseSize<<uint(i-1)) + 1
			hi = float64(c.BaseSize << uint(i))
		}
		mean += w / total * (lo + hi) / 2
	}
	return mean
}

// Footprint estimates the total bytes of the hot keyspace.
func (c Config) Footprint() int64 { return int64(c.MeanSize() * float64(c.Keys)) }

// coldBase is the id space for never-reused keys, far above any hot key.
const coldBase = uint64(1) << 40

// Generator produces the request stream; it implements trace.Stream and
// never returns io.EOF on its own (wrap in trace.Limit for a finite run).
type Generator struct {
	cfg   Config
	zipf  *Zipf
	rng   *rng
	clock uint64
	cold  uint64
}

// New validates cfg and returns a Generator.
func New(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Generator{
		cfg:  cfg,
		zipf: NewZipf(cfg.Keys, cfg.ZipfS),
		rng:  newRNG(cfg.Seed),
	}, nil
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// Next implements trace.Stream.
func (g *Generator) Next() (trace.Request, error) {
	g.clock++
	t := g.clock * 50 // synthetic microseconds, ~20k req/s

	u := g.rng.float()
	cfg := &g.cfg
	var op kv.Op
	var id uint64
	switch {
	case u < cfg.ColdFrac:
		op = kv.Get
		id = coldBase + g.cold
		g.cold++
	case u < cfg.ColdFrac+cfg.SetFrac:
		op = kv.Set
		id = g.hotKey()
	case u < cfg.ColdFrac+cfg.SetFrac+cfg.DelFrac:
		op = kv.Delete
		id = g.hotKey()
	default:
		op = kv.Get
		id = g.hotKey()
	}
	size := cfg.SizeOf(kv.HashString(kv.KeyString(id)))
	return trace.Request{Op: op, Key: id, Size: uint32(size), Time: t}, nil
}

// hotKey samples a hot key id under the current popularity phase.
func (g *Generator) hotKey() uint64 {
	rank := g.zipf.Rank(g.rng.float())
	phase := uint64(0)
	if g.cfg.RotateEvery > 0 {
		phase = g.clock / g.cfg.RotateEvery
	}
	return (rank + phase) % g.cfg.Keys
}

// BurstConfig describes the paper's §IV-C cold-item flood: a contiguous run
// of SETs for fresh keys whose total size is a fraction of the cache, with
// sizes restricted to a few "impacted classes".
type BurstConfig struct {
	// TotalBytes is the aggregate size of injected items (paper: 10% of
	// the cache size).
	TotalBytes int64
	// Classes are the impacted size bands (paper: three classes).
	Classes []int
	// BaseSize matches the workload geometry.
	BaseSize int
	// Seed makes the burst reproducible.
	Seed uint64
}

// MakeBurst materializes the burst as a request slice; the ids come from a
// dedicated cold space so they never collide with workload keys. The burst
// is a stream of GETs for never-seen keys — each one misses and is then
// added to the cache by the client's refill SET (paper §IV-C: "a bursty
// stream of requests accessing and adding new KV items"), which is what
// makes miss-driven policies like PSA chase the impacted classes.
func MakeBurst(bc BurstConfig) []trace.Request {
	if bc.TotalBytes <= 0 || len(bc.Classes) == 0 || bc.BaseSize <= 0 {
		return nil
	}
	r := newRNG(bc.Seed ^ 0xb00b1e5)
	var out []trace.Request
	var bytes int64
	burstBase := coldBase * 2
	for i := uint64(0); bytes < bc.TotalBytes; i++ {
		band := bc.Classes[r.intn(len(bc.Classes))]
		lo, hi := 1, bc.BaseSize
		if band > 0 {
			lo = (bc.BaseSize << uint(band-1)) + 1
			hi = bc.BaseSize << uint(band)
		}
		size := lo + r.intn(hi-lo+1)
		out = append(out, trace.Request{Op: kv.Get, Key: burstBase + i, Size: uint32(size)})
		bytes += int64(size)
	}
	return out
}

// Describe prints a human-readable summary of the workload (tools use it).
func (c Config) Describe(w io.Writer) {
	fmt.Fprintf(w, "workload %s: %d keys, zipf s=%.2f, mean item %.0f B, footprint %.1f MiB\n",
		c.Name, c.Keys, c.ZipfS, c.MeanSize(), float64(c.Footprint())/(1<<20))
	fmt.Fprintf(w, "  ops: get=%.3f set=%.3f del=%.3f cold=%.3f; rotate every %d\n",
		1-c.ColdFrac-c.SetFrac-c.DelFrac, c.SetFrac, c.DelFrac, c.ColdFrac, c.RotateEvery)
}

// ExpectedClassShare returns the normalized request share per size band —
// used by tests to confirm the generator honors its mixture.
func (c Config) ExpectedClassShare() []float64 {
	total := 0.0
	for _, w := range c.ClassWeights {
		total += w
	}
	out := make([]float64, len(c.ClassWeights))
	for i, w := range c.ClassWeights {
		out[i] = w / total
	}
	return out
}

// quantileRank returns the rank below which fraction q of the probability
// mass lies; exported for tests via QuantileRank.
func (z *Zipf) quantileRank(q float64) uint64 { return z.Rank(math.Min(q, 1-1e-12)) }

// QuantileRank exposes the popularity concentration of the sampler: the
// smallest rank r such that P(rank <= r) >= q under the continuous
// approximation.
func (z *Zipf) QuantileRank(q float64) uint64 { return z.quantileRank(q) }
