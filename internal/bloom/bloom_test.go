package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pamakv/internal/kv"
)

func TestNoFalseNegatives(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fl := New(256)
		added := make([]uint64, 200)
		for i := range added {
			added[i] = rng.Uint64()
			fl.Add(added[i])
		}
		for _, h := range added {
			if !fl.MayContain(h) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	fl := New(1024)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 1024; i++ {
		fl.Add(rng.Uint64())
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if fl.MayContain(rng.Uint64()) {
			fp++
		}
	}
	// 10 bits/key with k=4 gives ~1.2% theoretical FPR; allow generous slack.
	if rate := float64(fp) / probes; rate > 0.05 {
		t.Fatalf("false positive rate %.4f exceeds 5%%", rate)
	}
}

func TestResetClears(t *testing.T) {
	fl := New(64)
	fl.Add(1)
	fl.Add(2)
	if fl.Count() != 2 {
		t.Fatalf("Count = %d, want 2", fl.Count())
	}
	fl.Reset()
	if fl.Count() != 0 || fl.MayContain(1) || fl.MayContain(2) {
		t.Fatal("Reset did not clear filter")
	}
}

func TestTinyCapacityRoundsUp(t *testing.T) {
	fl := New(1)
	if fl.Bits() < 640 {
		t.Fatalf("minimum filter too small: %d bits", fl.Bits())
	}
	fl.Add(7)
	if !fl.MayContain(7) {
		t.Fatal("lost key in minimum-size filter")
	}
}

func TestSegmentSetLookup(t *testing.T) {
	s := NewSegmentSet(3, 128)
	h := kv.HashString("alpha")
	if s.Lookup(h) != -1 {
		t.Fatal("empty set should not contain key")
	}
	s.AddToSegment(1, h)
	if got := s.Lookup(h); got != 1 {
		t.Fatalf("Lookup = %d, want 1", got)
	}
}

func TestSegmentSetRemovalVeto(t *testing.T) {
	s := NewSegmentSet(2, 128)
	h := kv.HashString("beta")
	s.AddToSegment(0, h)
	s.MarkRemoved(h)
	if got := s.Lookup(h); got != -1 {
		t.Fatalf("removed key still visible in segment %d", got)
	}
}

func TestSegmentSetRemovalClearOnReadd(t *testing.T) {
	s := NewSegmentSet(2, 128)
	h1 := kv.HashString("gamma")
	h2 := kv.HashString("delta")
	s.AddToSegment(0, h1)
	s.MarkRemoved(h1)
	s.MarkRemoved(h2)
	// Re-adding h1 must clear the removal filter (paper rule), making h1
	// visible again; h2's removal record is sacrificed, which is safe
	// because the removal filter only suppresses stale positives. The
	// stale segment-0 entry may win until the next rebuild — only
	// visibility is guaranteed, not the segment index.
	s.AddToSegment(1, h1)
	if got := s.Lookup(h1); got == -1 {
		t.Fatal("re-added key invisible")
	}
	if got := s.Lookup(h2); got != -1 {
		// h2 was never added to any segment, so clearing the removal
		// filter must not make it appear.
		t.Fatalf("never-added key visible in segment %d", got)
	}
}

func TestSegmentSetLowestSegmentWins(t *testing.T) {
	s := NewSegmentSet(3, 128)
	h := kv.HashString("epsilon")
	s.AddToSegment(2, h)
	s.AddToSegment(0, h)
	if got := s.Lookup(h); got != 0 {
		t.Fatalf("Lookup = %d, want lowest segment 0", got)
	}
}

func TestSegmentSetReset(t *testing.T) {
	s := NewSegmentSet(2, 64)
	h := kv.HashString("zeta")
	s.AddToSegment(0, h)
	s.Reset()
	if s.Lookup(h) != -1 {
		t.Fatal("Reset did not clear segment filters")
	}
	if s.Segments() != 2 {
		t.Fatal("Segments changed across Reset")
	}
}

func BenchmarkFilterAdd(b *testing.B) {
	fl := New(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fl.Add(uint64(i) * 0x9e3779b97f4a7c15)
	}
}

func BenchmarkFilterLookup(b *testing.B) {
	fl := New(1 << 16)
	for i := 0; i < 1<<16; i++ {
		fl.Add(uint64(i) * 0x9e3779b97f4a7c15)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fl.MayContain(uint64(i))
	}
}
