// Package bloom implements the Bloom filters PAMA uses to test, in O(1),
// whether an accessed key currently lies in one of the slab-sized segments
// at the bottom of a subclass's LRU stack (paper §III, third challenge).
//
// One filter guards each reference segment. Because a plain Bloom filter
// cannot delete, a shared *removal filter* records keys pulled out of the
// bottom region when they are re-accessed (LRU moves them to the top of the
// stack): a key counts as present in a segment only if the segment filter
// says yes AND the removal filter says no. When a key being added to a
// segment is already in the removal filter the removal filter is cleared,
// preserving its invariant of only naming keys absent from all segments.
//
// Filters hash with the classic double-hashing scheme g_i(x) = h1 + i*h2
// derived from one 64-bit key hash, so membership tests cost no additional
// hashing of the key bytes.
package bloom

import "pamakv/internal/kv"

// Filter is a fixed-size Bloom filter keyed by precomputed 64-bit hashes.
type Filter struct {
	bits []uint64
	mask uint64 // number of bits - 1 (power of two)
	k    int
	n    int // keys added since last reset
}

// New returns a filter sized for approximately capacity keys at roughly 1%
// false-positive rate: 10 bits per key, 4 probes (near-optimal for 10 b/key
// while staying cheap). Capacity below 64 is rounded up.
func New(capacity int) *Filter {
	if capacity < 64 {
		capacity = 64
	}
	bits := 1
	for bits < capacity*10 {
		bits <<= 1
	}
	return &Filter{bits: make([]uint64, bits/64), mask: uint64(bits - 1), k: 4}
}

// Add inserts a key hash.
func (f *Filter) Add(hash uint64) {
	h1, h2 := hash, kv.Mix64(hash)|1
	for i := 0; i < f.k; i++ {
		b := (h1 + uint64(i)*h2) & f.mask
		f.bits[b>>6] |= 1 << (b & 63)
	}
	f.n++
}

// MayContain reports whether the key hash may have been added: false means
// definitely absent; true may be a false positive.
func (f *Filter) MayContain(hash uint64) bool {
	h1, h2 := hash, kv.Mix64(hash)|1
	for i := 0; i < f.k; i++ {
		b := (h1 + uint64(i)*h2) & f.mask
		if f.bits[b>>6]&(1<<(b&63)) == 0 {
			return false
		}
	}
	return true
}

// Reset clears the filter.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.n = 0
}

// Count returns the number of Adds since the last Reset.
func (f *Filter) Count() int { return f.n }

// Bits returns the filter size in bits (diagnostics and tests).
func (f *Filter) Bits() int { return len(f.bits) * 64 }

// SegmentSet bundles the per-segment filters of one LRU stack's bottom
// region with the shared removal filter, implementing the paper's membership
// protocol.
type SegmentSet struct {
	segs    []*Filter
	removal *Filter
}

// NewSegmentSet creates filters for nseg segments of up to segCapacity keys
// each.
func NewSegmentSet(nseg, segCapacity int) *SegmentSet {
	s := &SegmentSet{
		segs:    make([]*Filter, nseg),
		removal: New(segCapacity * nseg),
	}
	for i := range s.segs {
		s.segs[i] = New(segCapacity)
	}
	return s
}

// Segments returns the number of per-segment filters.
func (s *SegmentSet) Segments() int { return len(s.segs) }

// AddToSegment records the key hash as a member of segment i (0 = candidate
// segment at the very bottom). Per the paper, if the key is currently named
// by the removal filter the removal filter is cleared first so it never
// contradicts a true member.
func (s *SegmentSet) AddToSegment(i int, hash uint64) {
	if s.removal.MayContain(hash) {
		s.removal.Reset()
	}
	s.segs[i].Add(hash)
}

// Lookup returns the lowest segment index whose filter claims the key and
// that the removal filter does not veto, or -1 when the key is in no
// segment.
func (s *SegmentSet) Lookup(hash uint64) int {
	for i, f := range s.segs {
		if f.MayContain(hash) {
			if s.removal.MayContain(hash) {
				return -1
			}
			return i
		}
	}
	return -1
}

// MarkRemoved records that the key left the bottom region (it was accessed
// and moved to the top of the stack, or evicted out of band).
func (s *SegmentSet) MarkRemoved(hash uint64) { s.removal.Add(hash) }

// Reset clears every filter; called when the tracker rebuilds segment
// snapshots at a window boundary.
func (s *SegmentSet) Reset() {
	for _, f := range s.segs {
		f.Reset()
	}
	s.removal.Reset()
}
