package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestWindowAccumulates(t *testing.T) {
	var w Window
	w.Add(true, 0.001)
	w.Add(false, 0.5)
	w.Add(true, 0.001)
	if w.Gets != 3 || w.Hits != 2 {
		t.Fatalf("gets=%d hits=%d", w.Gets, w.Hits)
	}
	if got := w.HitRatio(); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("HitRatio = %v", got)
	}
	if got := w.AvgService(); math.Abs(got-0.502/3) > 1e-12 {
		t.Fatalf("AvgService = %v", got)
	}
	w.Reset()
	if w.Gets != 0 || !math.IsNaN(w.HitRatio()) || !math.IsNaN(w.AvgService()) {
		t.Fatal("Reset incomplete: empty window must report NaN, not 0")
	}
}

func TestEmptyWindowIsNaNNotZero(t *testing.T) {
	// "No traffic" must be distinguishable from "0% hits": an empty window
	// reports NaN, a window of pure misses reports exactly 0.
	var empty, allMiss Window
	allMiss.Add(false, 0.1)
	if !math.IsNaN(empty.HitRatio()) || !math.IsNaN(empty.AvgService()) {
		t.Fatalf("empty window: hit=%v svc=%v, want NaN", empty.HitRatio(), empty.AvgService())
	}
	if allMiss.HitRatio() != 0 {
		t.Fatalf("all-miss window HitRatio = %v, want 0", allMiss.HitRatio())
	}
	// Series aggregates skip NaN windows instead of poisoning the mean.
	s := &Series{}
	s.Append(Point{GetsServed: 10, HitRatio: 0.5, AvgService: 0.2})
	s.Append(Point{GetsServed: 10, HitRatio: empty.HitRatio(), AvgService: empty.AvgService()})
	s.Append(Point{GetsServed: 20, HitRatio: 0.7, AvgService: 0.4})
	if got := s.MeanHitRatio(); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("MeanHitRatio = %v, want 0.6 (NaN window skipped)", got)
	}
	if got := s.MeanAvgService(); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("MeanAvgService = %v, want 0.3", got)
	}
	if got := s.TailMeanAvgService(0.5); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("TailMeanAvgService = %v, want 0.4 (tail is {NaN, 0.4})", got)
	}
	// The TSV emitter renders the empty window as "-", never "NaN".
	var sb strings.Builder
	if err := WriteTSV(&sb, []*Series{s}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "NaN") {
		t.Fatalf("WriteTSV leaked NaN:\n%s", sb.String())
	}
	rows := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(rows) != 4 || !strings.Contains(rows[2], "-\t-") {
		t.Fatalf("empty window row not dashed:\n%s", sb.String())
	}
}

func TestSeriesAggregates(t *testing.T) {
	s := &Series{Name: "x"}
	if s.Final().GetsServed != 0 {
		t.Fatal("empty Final should be zero")
	}
	s.Append(Point{GetsServed: 100, HitRatio: 0.5, AvgService: 0.2})
	s.Append(Point{GetsServed: 200, HitRatio: 0.7, AvgService: 0.1})
	s.Append(Point{GetsServed: 300, HitRatio: 0.9, AvgService: 0.3})
	if got := s.MeanHitRatio(); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("MeanHitRatio = %v", got)
	}
	if got := s.MeanAvgService(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("MeanAvgService = %v", got)
	}
	if got := s.Final().GetsServed; got != 300 {
		t.Fatalf("Final gets = %d", got)
	}
	if got := s.TailMeanAvgService(0.3); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("TailMeanAvgService = %v", got)
	}
	if got := s.TailMeanAvgService(1.0); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("TailMeanAvgService(1.0) = %v", got)
	}
}

func TestEmptySeriesAggregates(t *testing.T) {
	s := &Series{}
	if s.MeanHitRatio() != 0 || s.MeanAvgService() != 0 || s.TailMeanAvgService(0.5) != 0 {
		t.Fatal("empty series aggregates should be 0")
	}
}

func TestWriteTSV(t *testing.T) {
	a := &Series{Name: "pama"}
	a.Append(Point{GetsServed: 10, HitRatio: 0.5, AvgService: 0.01})
	a.Append(Point{GetsServed: 20, HitRatio: 0.6, AvgService: 0.02})
	b := &Series{Name: "psa"}
	b.Append(Point{GetsServed: 10, HitRatio: 0.4, AvgService: 0.03})
	var sb strings.Builder
	if err := WriteTSV(&sb, []*Series{a, b}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), sb.String())
	}
	if !strings.HasPrefix(lines[0], "gets\tpama:hit\tpama:svc\tpsa:hit\tpsa:svc") {
		t.Fatalf("bad header: %q", lines[0])
	}
	if !strings.Contains(lines[2], "-") {
		t.Fatal("short series should pad with '-'")
	}
}

func TestWriteSlabTSV(t *testing.T) {
	s := &Series{Name: "x"}
	s.Append(Point{GetsServed: 10, Slabs: []int{3, 1}})
	var sb strings.Builder
	if err := WriteSlabTSV(&sb, s, 3); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "class2") || !strings.Contains(out, "10\t3\t1\t0") {
		t.Fatalf("bad slab TSV:\n%s", out)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(0.001, 4) // 1ms .. 10s
	for i := 0; i < 90; i++ {
		h.Add(0.002)
	}
	for i := 0; i < 10; i++ {
		h.Add(1.5)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if q := h.Quantile(0.5); q > 0.01 {
		t.Fatalf("p50 = %v, want ~2ms bound", q)
	}
	if q := h.Quantile(0.95); q < 1.0 {
		t.Fatalf("p95 = %v, want >=1s", q)
	}
	if m := h.Mean(); math.Abs(m-(90*0.002+10*1.5)/100) > 1e-9 {
		t.Fatalf("Mean = %v", m)
	}
}

func TestHistogramEdges(t *testing.T) {
	h := NewHistogram(0.001, 2)
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report 0")
	}
	h.Add(1e-9) // below min -> bucket 0
	h.Add(1e9)  // above range -> clamped last bucket
	if h.Count() != 2 {
		t.Fatal("count")
	}
	if q := h.Quantile(0.0); q != 0.001 {
		t.Fatalf("Quantile(0) = %v, want min", q)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(0.001, 2), NewHistogram(0.001, 2)
	a.Add(0.01)
	b.Add(0.02)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 2 {
		t.Fatalf("merged count = %d", a.Count())
	}
	c := NewHistogram(0.01, 2)
	if err := a.Merge(c); err == nil {
		t.Fatal("incompatible merge accepted")
	}
}

func TestHistogramSummary(t *testing.T) {
	h := NewHistogram(0.001, 2)
	h.Add(0.01)
	if s := h.Summary(); !strings.Contains(s, "n=1") {
		t.Fatalf("Summary = %q", s)
	}
}

func TestSortedNames(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedNames(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("SortedNames = %v", got)
	}
}
