// Package metrics collects the windowed statistics the paper reports: hit
// ratio and average GET service time per window of served GETs, plus slab
// allocation snapshots, totals, and log-scale latency histograms.
//
// A Window accumulates; a Series records one row per closed window. The
// figure emitters in internal/sim and cmd/pama-bench print Series as TSV.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Window accumulates GET statistics until the window closes.
type Window struct {
	Gets        uint64
	Hits        uint64
	ServiceTime float64 // seconds, summed over GETs
}

// Add records one GET with the given service time.
func (w *Window) Add(hit bool, service float64) {
	w.Gets++
	if hit {
		w.Hits++
	}
	w.ServiceTime += service
}

// HitRatio returns hits/gets, or NaN for an empty window: a window that saw
// no traffic is not a window with 0% hits, and every emitter renders the
// distinction (TSV as "-", JSON as null/omitted).
func (w *Window) HitRatio() float64 {
	if w.Gets == 0 {
		return math.NaN()
	}
	return float64(w.Hits) / float64(w.Gets)
}

// AvgService returns mean service time per GET in seconds, or NaN when the
// window is empty (see HitRatio).
func (w *Window) AvgService() float64 {
	if w.Gets == 0 {
		return math.NaN()
	}
	return w.ServiceTime / float64(w.Gets)
}

// Reset zeroes the window.
func (w *Window) Reset() { *w = Window{} }

// Point is one closed window in a series.
type Point struct {
	// GetsServed is the cumulative GET count at window close (the
	// paper's x-axis, "# of served GET requests").
	GetsServed uint64
	HitRatio   float64
	AvgService float64
	// Slabs is the per-class slab allocation snapshot at window close
	// (nil when not sampled).
	Slabs []int
	// Extra holds policy-specific columns (e.g. per-subclass slabs).
	Extra []float64
}

// Series is an ordered collection of windows for one experiment
// configuration.
type Series struct {
	Name   string
	Points []Point
}

// Append adds a closed window snapshot.
func (s *Series) Append(p Point) { s.Points = append(s.Points, p) }

// Final returns the last point, or a zero Point when empty.
func (s *Series) Final() Point {
	if len(s.Points) == 0 {
		return Point{}
	}
	return s.Points[len(s.Points)-1]
}

// MeanHitRatio averages hit ratio over all non-empty points (unweighted,
// matching the paper's per-window presentation). Empty (NaN) windows carry
// no information and are skipped; all-empty series report 0.
func (s *Series) MeanHitRatio() float64 {
	t, n := 0.0, 0
	for _, p := range s.Points {
		if math.IsNaN(p.HitRatio) {
			continue
		}
		t += p.HitRatio
		n++
	}
	if n == 0 {
		return 0
	}
	return t / float64(n)
}

// MeanAvgService averages the per-window mean service time over non-empty
// points (see MeanHitRatio for the NaN-window rule).
func (s *Series) MeanAvgService() float64 {
	t, n := 0.0, 0
	for _, p := range s.Points {
		if math.IsNaN(p.AvgService) {
			continue
		}
		t += p.AvgService
		n++
	}
	if n == 0 {
		return 0
	}
	return t / float64(n)
}

// TailMeanAvgService averages AvgService over the last frac of points —
// "when the service time curves stabilize" in the paper's wording. Empty
// (NaN) windows inside the tail are skipped.
func (s *Series) TailMeanAvgService(frac float64) float64 {
	n := len(s.Points)
	if n == 0 {
		return 0
	}
	start := n - int(math.Ceil(frac*float64(n)))
	if start < 0 {
		start = 0
	}
	t, k := 0.0, 0
	for _, p := range s.Points[start:] {
		if math.IsNaN(p.AvgService) {
			continue
		}
		t += p.AvgService
		k++
	}
	if k == 0 {
		return 0
	}
	return t / float64(k)
}

// WriteTSV renders several series side by side: one row per window, columns
// gets<TAB>name:hit<TAB>name:svc per series. Series may have differing
// lengths; missing cells print as "-".
func WriteTSV(w io.Writer, series []*Series) error {
	header := []string{"gets"}
	maxLen := 0
	for _, s := range series {
		header = append(header, s.Name+":hit", s.Name+":svc")
		if len(s.Points) > maxLen {
			maxLen = len(s.Points)
		}
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, "\t")); err != nil {
		return err
	}
	for i := 0; i < maxLen; i++ {
		row := make([]string, 0, len(header))
		gets := "-"
		for _, s := range series {
			if i < len(s.Points) {
				gets = fmt.Sprintf("%d", s.Points[i].GetsServed)
				break
			}
		}
		row = append(row, gets)
		for _, s := range series {
			if i < len(s.Points) {
				p := s.Points[i]
				row = append(row, cell(p.HitRatio, "%.4f"), cell(p.AvgService, "%.6f"))
			} else {
				row = append(row, "-", "-")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// cell formats one TSV value, rendering an empty window's NaN as "-".
func cell(v float64, format string) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf(format, v)
}

// WriteSlabTSV renders the per-class slab allocation series of one
// experiment: one row per window, one column per class.
func WriteSlabTSV(w io.Writer, s *Series, numClasses int) error {
	header := []string{"gets"}
	for c := 0; c < numClasses; c++ {
		header = append(header, fmt.Sprintf("class%d", c))
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, "\t")); err != nil {
		return err
	}
	for _, p := range s.Points {
		row := []string{fmt.Sprintf("%d", p.GetsServed)}
		for c := 0; c < numClasses; c++ {
			v := 0
			if c < len(p.Slabs) {
				v = p.Slabs[c]
			}
			row = append(row, fmt.Sprintf("%d", v))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// Histogram is a logarithmic histogram over positive values (decade buckets
// subdivided 8x), used for penalty and service-time distributions.
type Histogram struct {
	min     float64
	buckets []uint64
	count   uint64
	sum     float64
}

// NewHistogram covers [min, min*10^decades).
func NewHistogram(min float64, decades int) *Histogram {
	return &Histogram{min: min, buckets: make([]uint64, decades*8+1)}
}

// Add records a value; values below min land in bucket 0, values above the
// range in the last bucket.
func (h *Histogram) Add(v float64) {
	h.count++
	h.sum += v
	i := 0
	if v > h.min {
		i = int(math.Log10(v/h.min)*8) + 1
		if i >= len(h.buckets) {
			i = len(h.buckets) - 1
		}
	}
	h.buckets[i]++
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the arithmetic mean of recorded values (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns an upper bound for the q-quantile (0<=q<=1) from bucket
// edges.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum > target {
			if i == 0 {
				return h.min
			}
			return h.min * math.Pow(10, float64(i)/8)
		}
	}
	return h.min * math.Pow(10, float64(len(h.buckets)-1)/8)
}

// Summary formats count/mean/p50/p99 on one line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%.4fs p50<=%.4fs p99<=%.4fs",
		h.count, h.Mean(), h.Quantile(0.50), h.Quantile(0.99))
}

// Merge folds other into h; both must share min and decade span.
func (h *Histogram) Merge(other *Histogram) error {
	if other.min != h.min || len(other.buckets) != len(h.buckets) {
		return fmt.Errorf("metrics: merging incompatible histograms")
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	return nil
}

// SortedNames returns map keys in sorted order; a small helper for stable
// report output.
func SortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
