package oracle

import (
	"testing"

	"pamakv/internal/kv"
	"pamakv/internal/penalty"
	"pamakv/internal/trace"
	"pamakv/internal/workload"
)

func get(key uint64, size uint32) trace.Request {
	return trace.Request{Op: kv.Get, Key: key, Size: size}
}

func TestRunRejectsZeroCapacity(t *testing.T) {
	if _, err := Run(nil, 0, penalty.Uniform(0.1), 0.0005, Belady); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestBeladyOnTextbookSequence(t *testing.T) {
	// Capacity 2 items of 100B; sequence A B C A B. At C's arrival the
	// clairvoyant sees C has no future use and evicts it on the spot
	// (equivalently, never caches it), so both re-references of A and B
	// hit — the true MIN outcome for this sequence.
	reqs := []trace.Request{
		get(1, 100), get(2, 100), get(3, 100), get(1, 100), get(2, 100),
	}
	res, err := Run(reqs, 200, penalty.Uniform(0.1), 0.0005, Belady)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits != 2 || res.Misses != 3 {
		t.Fatalf("hits=%d misses=%d, want 2/3", res.Hits, res.Misses)
	}
}

func TestBeladyBeatsLRUOnLoopingScan(t *testing.T) {
	// Cyclic scan over N+1 items with capacity N defeats LRU completely
	// (0 hits) but Belady keeps N-1 of them hot.
	const n = 8
	var reqs []trace.Request
	for round := 0; round < 20; round++ {
		for k := uint64(0); k < n+1; k++ {
			reqs = append(reqs, get(k, 100))
		}
	}
	res, err := Run(reqs, n*100, penalty.Uniform(0.1), 0.0005, Belady)
	if err != nil {
		t.Fatal(err)
	}
	if res.HitRatio < 0.7 {
		t.Fatalf("Belady hit ratio %.3f on looping scan, want high", res.HitRatio)
	}
}

func TestCostBeladyPrefersEvictingCheap(t *testing.T) {
	// Two items contend for one slot; both are re-referenced equally far
	// ahead, but one costs 100x more to miss. The cost variant must keep
	// the expensive one.
	model := penalty.Model{Base: 0, Slope: 0, Sigma: 0, Min: 0.001, Max: 5}
	// Uniform won't differentiate; craft per-key penalties via sizes:
	// penalty model is size-correlated, so give the dear item a big size?
	// Simpler: use the default model and distinct keys; find two keys
	// with very different penalties at equal size.
	model = penalty.Default()
	var cheap, dear uint64
	cheapPen, dearPen := 1e9, 0.0
	for k := uint64(0); k < 200; k++ {
		p := model.Of(kv.HashString(kv.KeyString(k)), 100)
		if p < cheapPen {
			cheap, cheapPen = k, p
		}
		if p > dearPen {
			dear, dearPen = k, p
		}
	}
	if dearPen < 50*cheapPen {
		t.Skipf("model sample too flat: %v vs %v", cheapPen, dearPen)
	}
	var reqs []trace.Request
	reqs = append(reqs, get(cheap, 100), get(dear, 100))
	for i := 0; i < 10; i++ {
		reqs = append(reqs, get(cheap, 100), get(dear, 100))
	}
	res, err := Run(reqs, 100, model, 0.0005, CostBelady)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(reqs, 100, model, 0.0005, Belady)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServiceTime > base.ServiceTime {
		t.Fatalf("cost-aware clairvoyant (%.3fs) worse than Belady (%.3fs)",
			res.ServiceTime, base.ServiceTime)
	}
}

func TestOracleBoundsOnlinePolicy(t *testing.T) {
	cfg := workload.ETC()
	cfg.Keys = 8192
	gen, err := workload.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := trace.Collect(&trace.Limit{S: gen, N: 60_000}, -1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(reqs, 2<<20, cfg.Penalty, 0.0005, Belady)
	if err != nil {
		t.Fatal(err)
	}
	if res.HitRatio <= 0.5 || res.HitRatio > 1 {
		t.Fatalf("implausible clairvoyant hit ratio %.3f", res.HitRatio)
	}
	if res.Evictions == 0 {
		t.Fatal("no eviction pressure in the bound run")
	}
	// The clairvoyant bound must beat a cost-aware online policy (GDSF)
	// replayed over the same requests — checked loosely via hit ratio
	// ordering computed in the extension bench; here just sanity.
	if res.Gets == 0 || res.ServiceTime <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

func TestDeleteReleasesSpace(t *testing.T) {
	reqs := []trace.Request{
		get(1, 100),
		{Op: kv.Delete, Key: 1},
		get(2, 100),
		get(2, 100),
	}
	res, err := Run(reqs, 100, penalty.Uniform(0.1), 0.0005, Belady)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evictions != 0 {
		t.Fatalf("delete should have made room, evictions=%d", res.Evictions)
	}
	if res.Hits != 1 {
		t.Fatalf("hits=%d, want 1 (second access of key 2)", res.Hits)
	}
}

func TestOversizedItemSkipped(t *testing.T) {
	reqs := []trace.Request{get(1, 1000), get(1, 1000)}
	res, err := Run(reqs, 100, penalty.Uniform(0.1), 0.0005, Belady)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits != 0 {
		t.Fatal("oversized item should never be cached")
	}
}
