// Package oracle replays a finite request sequence under clairvoyant
// (Belady/MIN) replacement: on eviction, the resident item whose next use
// lies farthest in the future goes first. With variable item sizes this is
// a (standard) heuristic rather than the provable optimum, but it is the
// usual offline reference: no online policy — PAMA included — can be
// expected to beat it on hit ratio, so it calibrates how much of the
// remaining miss mass is simply unreachable.
//
// Two variants share the machinery:
//
//   - Belady: evict the farthest next use (hit-ratio oriented).
//   - CostBelady: among items never used again, evict all of them first
//     (they are free); otherwise evict the item with the smallest
//     penalty-per-byte-per-step urgency pen/(size·(next-now)) — a greedy
//     cost-aware clairvoyant that targets service time.
//
// The replay is byte-bounded at item granularity (like package gds), so the
// bound is optimistic with respect to slab fragmentation too.
package oracle

import (
	"fmt"

	"pamakv/internal/kv"
	"pamakv/internal/penalty"
	"pamakv/internal/trace"
)

// Variant selects the eviction rule.
type Variant int

const (
	// Belady evicts the farthest next use.
	Belady Variant = iota
	// CostBelady weighs next use by penalty per byte.
	CostBelady
)

// Result summarizes a clairvoyant replay.
type Result struct {
	Gets, Hits, Misses uint64
	Evictions          uint64
	// ServiceTime sums hit time + miss penalties over GETs, seconds.
	ServiceTime float64
	// HitRatio and AvgService are the derived headline numbers.
	HitRatio   float64
	AvgService float64
}

const never = int(^uint(0) >> 1) // sentinel next-use for "no future use"

type entry struct {
	key     string
	size    int
	pen     float64
	next    int // request index of next use, or never
	heapIdx int
}

// Run replays reqs clairvoyantly with capBytes of cache. Penalties come
// from model (by key hash and size); hits cost hitTime seconds.
func Run(reqs []trace.Request, capBytes int64, model penalty.Model, hitTime float64, v Variant) (Result, error) {
	if capBytes <= 0 {
		return Result{}, fmt.Errorf("oracle: capacity %d must be positive", capBytes)
	}
	// Pass 1 (backwards): next-use index for every request position.
	nextUse := make([]int, len(reqs))
	last := make(map[uint64]int, 1024)
	for i := len(reqs) - 1; i >= 0; i-- {
		k := reqs[i].Key
		if j, ok := last[k]; ok {
			nextUse[i] = j
		} else {
			nextUse[i] = never
		}
		last[k] = i
	}

	// Pass 2: simulate with a clairvoyant heap.
	h := &oracleHeap{variant: v}
	idx := make(map[uint64]*entry, 1024)
	var used int64
	var res Result
	for i, r := range reqs {
		key := kv.KeyString(r.Key)
		size := int(r.Size)
		if size < 1 {
			size = 1
		}
		pen := model.Of(kv.HashString(key), size)
		switch r.Op {
		case kv.Get:
			res.Gets++
			e, hit := idx[r.Key]
			if hit {
				res.Hits++
				res.ServiceTime += hitTime
				e.next = nextUse[i]
				h.fix(e, i)
				continue
			}
			res.Misses++
			res.ServiceTime += pen
			fallthrough // miss refill, like the simulator's GET path
		case kv.Set:
			if int64(size) > capBytes {
				continue
			}
			if e, ok := idx[r.Key]; ok {
				used += int64(size) - int64(e.size)
				e.size = size
				e.pen = pen
				e.next = nextUse[i]
				h.fix(e, i)
			} else {
				e := &entry{key: key, size: size, pen: pen, next: nextUse[i]}
				idx[r.Key] = e
				h.push(e, i)
				used += int64(size)
			}
			for used > capBytes {
				victim := h.pop(i)
				delete(idx, kv.KeyID(victim.key))
				used -= int64(victim.size)
				res.Evictions++
			}
		case kv.Delete:
			if e, ok := idx[r.Key]; ok {
				h.remove(e)
				delete(idx, r.Key)
				used -= int64(e.size)
			}
		}
	}
	if res.Gets > 0 {
		res.HitRatio = float64(res.Hits) / float64(res.Gets)
		res.AvgService = res.ServiceTime / float64(res.Gets)
	}
	return res, nil
}

// oracleHeap is a max-heap on "safeness": the safest item to evict first.
type oracleHeap struct {
	items   []*entry
	variant Variant
}

// safer reports whether a should be evicted before b at time now.
func (h *oracleHeap) safer(a, b *entry, now int) bool {
	if h.variant == Belady {
		return a.next > b.next
	}
	// CostBelady: items never reused are free; otherwise lowest urgency
	// pen/(size·distance) first — equivalently highest size·distance/pen.
	an, bn := a.next == never, b.next == never
	if an != bn {
		return an
	}
	if an && bn {
		return a.pen/float64(a.size) < b.pen/float64(b.size)
	}
	av := float64(a.next-now) * float64(a.size) / a.pen
	bv := float64(b.next-now) * float64(b.size) / b.pen
	return av > bv
}

func (h *oracleHeap) push(e *entry, now int) {
	e.heapIdx = len(h.items)
	h.items = append(h.items, e)
	h.up(e.heapIdx, now)
}

func (h *oracleHeap) pop(now int) *entry {
	top := h.items[0]
	h.remove(top)
	_ = now
	return top
}

func (h *oracleHeap) remove(e *entry) {
	lastIdx := len(h.items) - 1
	i := e.heapIdx
	h.swap(i, lastIdx)
	h.items = h.items[:lastIdx]
	if i < lastIdx {
		// Position i may violate either direction; fix both ways with
		// now=0 (ordering is only approximate for CostBelady between
		// rebuilds, which is acceptable for a reference heuristic).
		if !h.down(i, 0) {
			h.up(i, 0)
		}
	}
}

func (h *oracleHeap) fix(e *entry, now int) {
	if !h.down(e.heapIdx, now) {
		h.up(e.heapIdx, now)
	}
}

func (h *oracleHeap) swap(i, j int) {
	if i == j {
		return
	}
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].heapIdx = i
	h.items[j].heapIdx = j
}

func (h *oracleHeap) up(i, now int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.safer(h.items[i], h.items[parent], now) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *oracleHeap) down(i, now int) bool {
	moved := false
	n := len(h.items)
	for {
		best := i
		if l := 2*i + 1; l < n && h.safer(h.items[l], h.items[best], now) {
			best = l
		}
		if r := 2*i + 2; r < n && h.safer(h.items[r], h.items[best], now) {
			best = r
		}
		if best == i {
			return moved
		}
		h.swap(i, best)
		i = best
		moved = true
	}
}
