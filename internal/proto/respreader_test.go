package proto

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

// TestRespReaderPipelined walks one connection's worth of back-to-back
// responses and checks every field, including that scratch reuse between
// Next calls does not bleed one response into the next.
func TestRespReaderPipelined(t *testing.T) {
	wire := "VALUE k 7 5 42\r\nhello\r\nVALUE kk 0 0\r\n\r\nEND\r\n" +
		"STORED\r\n" +
		"END\r\n" +
		"123\r\n" +
		"SERVER_ERROR " + ShedMsg + "\r\n" +
		"CLIENT_ERROR bad  input\r\n" +
		"VERSION pamakv/1.0\r\n" +
		"STAT cmd_get 10\r\nSTAT policy pama lru\r\nEND\r\n"
	rr := NewRespReader(bufio.NewReader(strings.NewReader(wire)))

	r, err := rr.Next()
	if err != nil || r.Status != StatusEnd || len(r.Values) != 2 {
		t.Fatalf("get reply: %+v, %v", r, err)
	}
	if string(r.Values[0].Key) != "k" || r.Values[0].Flags != 7 || r.Values[0].CAS != 42 ||
		string(r.Values[0].Data) != "hello" {
		t.Fatalf("value 0: %+v", r.Values[0])
	}
	if string(r.Values[1].Key) != "kk" || len(r.Values[1].Data) != 0 || r.Values[1].CAS != 0 {
		t.Fatalf("value 1: %+v", r.Values[1])
	}

	if r, err = rr.Next(); err != nil || r.Status != StatusStored {
		t.Fatalf("stored: %+v, %v", r, err)
	}
	if r, err = rr.Next(); err != nil || r.Status != StatusEnd || len(r.Values) != 0 {
		t.Fatalf("miss must not inherit previous values: %+v, %v", r, err)
	}
	if r, err = rr.Next(); err != nil || r.Status != StatusNumber || r.Number != 123 {
		t.Fatalf("number: %+v, %v", r, err)
	}
	if r, err = rr.Next(); err != nil || !r.IsShed() {
		t.Fatalf("shed: %+v, %v", r, err)
	}
	if r, err = rr.Next(); err != nil || r.Status != StatusClientError || string(r.Msg) != "bad input" {
		t.Fatalf("client error (space runs collapse in the join): %+v, %v", r, err)
	}
	if r, err = rr.Next(); err != nil || r.Status != StatusVersion || string(r.Msg) != "pamakv/1.0" {
		t.Fatalf("version: %+v, %v", r, err)
	}
	r, err = rr.Next()
	if err != nil || r.Status != StatusEnd || len(r.Stats) != 2 {
		t.Fatalf("stats: %+v, %v", r, err)
	}
	if string(r.Stats[1][0]) != "policy" || string(r.Stats[1][1]) != "pama lru" {
		t.Fatalf("stat join: %q %q", r.Stats[1][0], r.Stats[1][1])
	}
}

// TestRespReaderStatusWords pins every Status String to the reference
// parser's vocabulary, so client error mapping and the differential fuzz
// comparison stay meaningful.
func TestRespReaderStatusWords(t *testing.T) {
	for st := StatusEnd; st <= StatusNumber; st++ {
		if st == StatusNumber {
			continue // never on the wire as a word
		}
		wire := st.String() + " tail words\r\n"
		r, err := NewRespReader(bufio.NewReader(strings.NewReader(wire))).Next()
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		if r.Status != st {
			t.Fatalf("%q parsed as %v", wire, r.Status)
		}
	}
}

// BenchmarkRespReaderNext measures the pipelined GET-hit read path the
// client package rides, against the allocating reference.
func BenchmarkRespReaderNext(b *testing.B) {
	one := AppendEnd(AppendValue(nil, "key000", 0, bytes.Repeat([]byte("v"), 100)))
	wire := bytes.Repeat(one, 64)
	br := bufio.NewReaderSize(nil, 1<<14)
	rr := NewRespReader(br)
	b.SetBytes(int64(len(one)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%64 == 0 {
			br.Reset(bytes.NewReader(wire))
		}
		r, err := rr.Next()
		if err != nil || len(r.Values) != 1 {
			b.Fatalf("%+v, %v", r, err)
		}
	}
}

func BenchmarkReadResponseReference(b *testing.B) {
	one := AppendEnd(AppendValue(nil, "key000", 0, bytes.Repeat([]byte("v"), 100)))
	wire := bytes.Repeat(one, 64)
	br := bufio.NewReaderSize(nil, 1<<14)
	b.SetBytes(int64(len(one)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%64 == 0 {
			br.Reset(bytes.NewReader(wire))
		}
		r, err := ReadResponse(br)
		if err != nil || len(r.Values) != 1 {
			b.Fatalf("%+v, %v", r, err)
		}
	}
}
