package proto

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
)

// benchRequestStream is a pipelined mix approximating serving traffic: mostly
// single-key gets, some multi-key gets, a store, and a counter bump.
var benchRequestStream, benchStreamCmds = func() ([]byte, int) {
	var b []byte
	body := strings.Repeat("v", 100)
	n := 0
	for i := 0; i < 16; i++ {
		b = append(b, fmt.Sprintf("get key%d\r\n", i)...)
		b = append(b, fmt.Sprintf("get otherkey%d\r\n", i)...)
		b = append(b, fmt.Sprintf("gets key%d key%d key%d\r\n", i, i+1, i+2)...)
		b = append(b, fmt.Sprintf("set key%d 0 60 %d\r\n%s\r\n", i, len(body), body)...)
		b = append(b, "incr counter 1\r\n"...)
		b = append(b, "delete stale noreply\r\n"...)
		n += 6
	}
	return b, n
}()

// BenchmarkParserReadCommand measures the in-place hot-path parser over the
// mixed pipelined stream. One op is one full pass over the stream
// (benchStreamCmds commands).
func BenchmarkParserReadCommand(b *testing.B) {
	src := bytes.NewReader(benchRequestStream)
	br := bufio.NewReaderSize(src, 1<<14)
	p := NewParser(br)
	defer p.Close()
	b.SetBytes(int64(len(benchRequestStream)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reset(benchRequestStream)
		br.Reset(src)
		for {
			if _, err := p.ReadCommand(); err != nil {
				if err == io.EOF {
					break
				}
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkReadCommandReference measures the allocating reference parser over
// the same stream, for the ratio the perf gate enforces.
func BenchmarkReadCommandReference(b *testing.B) {
	src := bytes.NewReader(benchRequestStream)
	br := bufio.NewReaderSize(src, 1<<14)
	b.SetBytes(int64(len(benchRequestStream)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reset(benchRequestStream)
		br.Reset(src)
		for {
			if _, err := ReadCommand(br); err != nil {
				if err == io.EOF {
					break
				}
				b.Fatal(err)
			}
		}
	}
}

// TestParserAllocAdvantage is the perf gate on the parser rewrite: over the
// mixed stream the in-place parser must allocate at most half the bytes and
// objects per op of the reference parser. It runs the two benchmarks under
// the test binary, so a regression fails `go test` — not just a human reading
// benchmark output.
func TestParserAllocAdvantage(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed gate skipped in -short mode")
	}
	ref := testing.Benchmark(BenchmarkReadCommandReference)
	inplace := testing.Benchmark(BenchmarkParserReadCommand)
	refB, newB := ref.AllocedBytesPerOp(), inplace.AllocedBytesPerOp()
	refN, newN := ref.AllocsPerOp(), inplace.AllocsPerOp()
	t.Logf("reference: %d B/op %d allocs/op; in-place: %d B/op %d allocs/op", refB, refN, newB, newN)
	if newB*2 > refB {
		t.Fatalf("in-place parser allocates %d B/op, want <= half of reference's %d B/op", newB, refB)
	}
	if newN*2 > refN {
		t.Fatalf("in-place parser allocates %d allocs/op, want <= half of reference's %d allocs/op", newN, refN)
	}
}
