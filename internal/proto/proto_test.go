package proto

import (
	"bufio"
	"errors"
	"io"
	"strings"
	"testing"
)

func parse(t *testing.T, in string) (*Command, error) {
	t.Helper()
	return ReadCommand(bufio.NewReader(strings.NewReader(in)))
}

func TestParseGet(t *testing.T) {
	cmd, err := parse(t, "get foo bar\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Name != "get" || len(cmd.Keys) != 2 || cmd.Keys[0] != "foo" || cmd.Keys[1] != "bar" {
		t.Fatalf("cmd = %+v", cmd)
	}
}

func TestParseGetLFOnly(t *testing.T) {
	if _, err := parse(t, "get foo\n"); err != nil {
		t.Fatalf("bare-LF line rejected: %v", err)
	}
}

func TestParseSet(t *testing.T) {
	cmd, err := parse(t, "set k 42 0 5\r\nhello\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Name != "set" || cmd.Keys[0] != "k" || cmd.Flags != 42 || cmd.Bytes != 5 {
		t.Fatalf("cmd = %+v", cmd)
	}
	if string(cmd.Data) != "hello" || cmd.NoReply {
		t.Fatalf("data = %q noreply=%v", cmd.Data, cmd.NoReply)
	}
}

func TestParseSetNoReply(t *testing.T) {
	cmd, err := parse(t, "set k 0 0 2 noreply\r\nhi\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if !cmd.NoReply {
		t.Fatal("noreply not parsed")
	}
}

func TestParseSetBinaryData(t *testing.T) {
	// Data containing CR/LF bytes must be read by length, not by line.
	data := "a\r\nb"
	cmd, err := parse(t, "set k 0 0 4\r\n"+data+"\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if string(cmd.Data) != data {
		t.Fatalf("data = %q", cmd.Data)
	}
}

func TestParseDelete(t *testing.T) {
	cmd, err := parse(t, "delete k noreply\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Name != "delete" || cmd.Keys[0] != "k" || !cmd.NoReply {
		t.Fatalf("cmd = %+v", cmd)
	}
}

func TestParseBareCommands(t *testing.T) {
	for _, name := range []string{"stats", "flush_all", "version", "quit"} {
		cmd, err := parse(t, name+"\r\n")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cmd.Name != name {
			t.Fatalf("parsed %q, want %q", cmd.Name, name)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"\r\n",
		"get\r\n",
		"frobnicate k\r\n",
		"set k 0 0\r\n",
		"set k x 0 5\r\nhello\r\n",
		"set k 0 x 5\r\nhello\r\n",
		"set k 0 0 x\r\nhello\r\n",
		"set k 0 0 -1\r\n\r\n",
		"set k 0 0 5\r\nhel\r\n", // short data
		"set k 0 0 5\r\nhelloXX", // missing CRLF
		"delete\r\n",
		"delete k extra junk\r\n",
		"get " + strings.Repeat("x", 251) + "\r\n", // key too long
		"get bad\x01key\r\n",
	}
	for _, in := range cases {
		if _, err := parse(t, in); err == nil {
			t.Errorf("accepted %q", in)
		} else {
			var ce *ClientError
			if !errors.As(err, &ce) {
				t.Errorf("%q: error %v is not a ClientError", in, err)
			}
		}
	}
}

func TestParseEOF(t *testing.T) {
	if _, err := parse(t, ""); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestParseSequence(t *testing.T) {
	r := bufio.NewReader(strings.NewReader("set a 0 0 1\r\nx\r\nget a\r\nquit\r\n"))
	names := []string{"set", "get", "quit"}
	for _, want := range names {
		cmd, err := ReadCommand(r)
		if err != nil {
			t.Fatal(err)
		}
		if cmd.Name != want {
			t.Fatalf("got %q, want %q", cmd.Name, want)
		}
	}
	if _, err := ReadCommand(r); !errors.Is(err, io.EOF) {
		t.Fatal("stream should be exhausted")
	}
}

func TestParseCAS(t *testing.T) {
	cmd, err := parse(t, "cas k 7 0 3 12345\r\nabc\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Name != "cas" || cmd.CasID != 12345 || string(cmd.Data) != "abc" || cmd.Flags != 7 {
		t.Fatalf("cmd = %+v", cmd)
	}
	cmd, err = parse(t, "cas k 0 0 1 5 noreply\r\nx\r\n")
	if err != nil || !cmd.NoReply {
		t.Fatalf("cas noreply: %+v %v", cmd, err)
	}
	if _, err := parse(t, "cas k 0 0 1\r\nx\r\n"); err == nil {
		t.Fatal("cas without token accepted")
	}
	if _, err := parse(t, "cas k 0 0 1 nottoken\r\nx\r\n"); err == nil {
		t.Fatal("bad cas token accepted")
	}
}

func TestParseIncrDecr(t *testing.T) {
	cmd, err := parse(t, "incr counter 5\r\n")
	if err != nil || cmd.Name != "incr" || cmd.Delta != 5 || cmd.Keys[0] != "counter" {
		t.Fatalf("incr: %+v %v", cmd, err)
	}
	cmd, err = parse(t, "decr counter 3 noreply\r\n")
	if err != nil || cmd.Name != "decr" || !cmd.NoReply {
		t.Fatalf("decr: %+v %v", cmd, err)
	}
	if _, err := parse(t, "incr counter\r\n"); err == nil {
		t.Fatal("incr without delta accepted")
	}
	if _, err := parse(t, "incr counter -5\r\n"); err == nil {
		t.Fatal("negative delta accepted")
	}
}

func TestParseTouch(t *testing.T) {
	cmd, err := parse(t, "touch k 300\r\n")
	if err != nil || cmd.Name != "touch" || cmd.Exptime != 300 {
		t.Fatalf("touch: %+v %v", cmd, err)
	}
	if _, err := parse(t, "touch k\r\n"); err == nil {
		t.Fatal("touch without exptime accepted")
	}
	if _, err := parse(t, "touch k soon\r\n"); err == nil {
		t.Fatal("bad exptime accepted")
	}
}

// TestParserRobustCorpus throws random byte soup at the parser: it must
// never panic and must either parse or return a ClientError/IO error.
func TestParserRobustCorpus(t *testing.T) {
	corpus := []string{
		"\x00\x01\x02\r\n",
		"set\r\n",
		"set k\r\n",
		"get \r\n",
		strings.Repeat("a", 100000) + "\r\n",
		"set k 4294967296 0 1\r\nx\r\n", // flags overflow uint32
		"set k 0 99999999999999999999 1\r\nx\r\n",
		"set k 0 0 1048577\r\n",           // beyond MaxDataLen
		"incr k 18446744073709551616\r\n", // overflow uint64
		"cas k 0 0 1 18446744073709551616\r\nx\r\n",
		"get k1 k2 k3 k4 k5 k6 k7 k8 k9 k10\r\n",
		"\r\n\r\n\r\n",
		"touch\r\n",
		"delete  \r\n",
		"GET K\r\n", // upper case verb is accepted, keys case-sensitive
	}
	for _, in := range corpus {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on %q: %v", in, r)
				}
			}()
			r := bufio.NewReader(strings.NewReader(in))
			for {
				_, err := ReadCommand(r)
				if err != nil {
					return
				}
			}
		}()
	}
}

func TestAppendValueCAS(t *testing.T) {
	out := AppendValueCAS(nil, "k", 7, []byte("ab"), 42)
	if string(out) != "VALUE k 7 2 42\r\nab\r\n" {
		t.Fatalf("got %q", out)
	}
}

func TestAppendValue(t *testing.T) {
	out := AppendValue(nil, "k", 7, []byte("abc"))
	out = AppendEnd(out)
	want := "VALUE k 7 3\r\nabc\r\nEND\r\n"
	if string(out) != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

func TestAppendStatAndLine(t *testing.T) {
	out := AppendStat(nil, "hits", 42)
	if string(out) != "STAT hits 42\r\n" {
		t.Fatalf("got %q", out)
	}
	if string(AppendLine(nil, "STORED")) != "STORED\r\n" {
		t.Fatal("AppendLine broken")
	}
}

func TestReadResponseValues(t *testing.T) {
	in := "VALUE a 7 5\r\nhello\r\nVALUE b 0 2 42\r\nhi\r\nEND\r\n"
	resp, err := ReadResponse(bufio.NewReader(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != "END" || len(resp.Values) != 2 {
		t.Fatalf("resp = %+v", resp)
	}
	a, b := resp.Values[0], resp.Values[1]
	if a.Key != "a" || a.Flags != 7 || string(a.Data) != "hello" || a.CAS != 0 {
		t.Fatalf("value a = %+v", a)
	}
	if b.Key != "b" || string(b.Data) != "hi" || b.CAS != 42 {
		t.Fatalf("value b = %+v", b)
	}
}

func TestReadResponseStatuses(t *testing.T) {
	cases := map[string]string{
		"STORED\r\n":             "STORED",
		"NOT_STORED\r\n":         "NOT_STORED",
		"EXISTS\r\n":             "EXISTS",
		"NOT_FOUND\r\n":          "NOT_FOUND",
		"DELETED\r\n":            "DELETED",
		"TOUCHED\r\n":            "TOUCHED",
		"OK\r\n":                 "OK",
		"ERROR\r\n":              "ERROR",
		"END\r\n":                "END",
		"17\r\n":                 "NUMBER",
		"SERVER_ERROR oops\r\n":  "SERVER_ERROR",
		"VERSION pamakv/1.0\r\n": "VERSION",
	}
	for in, want := range cases {
		resp, err := ReadResponse(bufio.NewReader(strings.NewReader(in)))
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if resp.Status != want {
			t.Fatalf("%q -> status %q, want %q", in, resp.Status, want)
		}
	}
	resp, _ := ReadResponse(bufio.NewReader(strings.NewReader("17\r\n")))
	if resp.Number != 17 {
		t.Fatalf("number = %d", resp.Number)
	}
}

func TestReadResponseStats(t *testing.T) {
	in := "STAT cmd_get 3\r\nSTAT policy pama\r\nEND\r\n"
	resp, err := ReadResponse(bufio.NewReader(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Stats) != 2 || resp.Stats[0] != [2]string{"cmd_get", "3"} ||
		resp.Stats[1] != [2]string{"policy", "pama"} {
		t.Fatalf("stats = %v", resp.Stats)
	}
}

func TestReadResponseMalformed(t *testing.T) {
	for _, in := range []string{
		"VALUE k 0 -1\r\n",
		"VALUE k 0 9999999999\r\n",
		"VALUE k 0 5\r\nhel",
		"VALUE\r\n",
		"STAT only\r\n",
		"gibberish here\r\n",
		"99 trailing\r\n",
	} {
		if _, err := ReadResponse(bufio.NewReader(strings.NewReader(in))); err == nil {
			t.Fatalf("%q: accepted", in)
		}
	}
}

func TestLineTooLong(t *testing.T) {
	long := "get " + strings.Repeat("k ", MaxLineLen) + "\r\n"
	_, err := ReadCommand(bufio.NewReader(strings.NewReader(long)))
	if !errors.Is(err, ErrLineTooLong) {
		t.Fatalf("err = %v, want ErrLineTooLong", err)
	}
	// A line at the limit is still parsed.
	okLine := "get " + strings.Repeat("k", 250) + "\r\n"
	if _, err := ReadCommand(bufio.NewReader(strings.NewReader(okLine))); err != nil {
		t.Fatalf("in-bounds line rejected: %v", err)
	}
}

// TestCheckKeyTenantSeparators pins the tenant-qualified key grammar: at
// most one '/', never first. Both parsers share checkKey, so the table also
// runs every key through a full `get` parse on each and cross-checks the
// verdicts.
func TestCheckKeyTenantSeparators(t *testing.T) {
	cases := []struct {
		key string
		ok  bool
	}{
		{"plain", true},
		{"t/k", true},
		{"tenant/deep:key:0", true},
		{"t/", true},        // empty rest: unambiguous tenant, legal
		{"a/b:c.d|e", true}, // separator-free rest may use any key bytes
		{"/k", false},       // empty tenant prefix
		{"/", false},
		{"a/b/c", false}, // second separator: tenant/rest split ambiguous
		{"a//b", false},
		{"t/k/", false},
		{"//", false},
	}
	for _, tc := range cases {
		err := CheckKey(tc.key)
		if (err == nil) != tc.ok {
			t.Errorf("CheckKey(%q) = %v, want ok=%v", tc.key, err, tc.ok)
		}
		var ce *ClientError
		if err != nil && !errors.As(err, &ce) {
			t.Errorf("CheckKey(%q) = %T, want *ClientError", tc.key, err)
		}

		// Reference parser.
		line := "get " + tc.key + "\r\n"
		_, refErr := ReadCommand(bufio.NewReader(strings.NewReader(line)))
		if (refErr == nil) != tc.ok {
			t.Errorf("ReadCommand(get %q) = %v, want ok=%v", tc.key, refErr, tc.ok)
		}
		// In-place parser.
		p := NewParser(bufio.NewReader(strings.NewReader(line)))
		_, ipErr := p.ReadCommand()
		if (ipErr == nil) != tc.ok {
			t.Errorf("Parser.ReadCommand(get %q) = %v, want ok=%v", tc.key, ipErr, tc.ok)
		}
	}
}
