package proto

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"
)

// TestAppendCommandRoundTrip checks that AppendCommand is the inverse of
// ReadCommand over the full command set.
func TestAppendCommandRoundTrip(t *testing.T) {
	cmds := []*Command{
		{Name: "get", Keys: []string{"a"}},
		{Name: "get", Keys: []string{"a", "b", "longer-key"}},
		{Name: "gets", Keys: []string{"x"}},
		{Name: "set", Keys: []string{"k"}, Flags: 7, Exptime: 60, Data: []byte("hello")},
		{Name: "set", Keys: []string{"k"}, Flags: 0, Exptime: 0, Data: []byte{}, NoReply: true},
		{Name: "add", Keys: []string{"k"}, Flags: 1, Exptime: 2, Data: []byte("v")},
		{Name: "replace", Keys: []string{"k"}, Data: []byte("vv")},
		{Name: "append", Keys: []string{"k"}, Data: []byte("tail")},
		{Name: "prepend", Keys: []string{"k"}, Data: []byte("head"), NoReply: true},
		{Name: "cas", Keys: []string{"k"}, Flags: 3, Exptime: 9, CasID: 12345, Data: []byte("w")},
		{Name: "delete", Keys: []string{"k"}},
		{Name: "delete", Keys: []string{"k"}, NoReply: true},
		{Name: "touch", Keys: []string{"k"}, Exptime: 30},
		{Name: "incr", Keys: []string{"n"}, Delta: 5},
		{Name: "decr", Keys: []string{"n"}, Delta: 1, NoReply: true},
		{Name: "stats"},
		{Name: "flush_all"},
		{Name: "version"},
		{Name: "quit"},
	}
	for _, want := range cmds {
		wire := AppendCommand(nil, want)
		got, err := ReadCommand(bufio.NewReader(bytes.NewReader(wire)))
		if err != nil {
			t.Fatalf("%s: re-parse of %q: %v", want.Name, wire, err)
		}
		// ReadCommand records the declared block length; mirror it before
		// comparing.
		want.Bytes = len(want.Data)
		if got.Data == nil {
			got.Data = want.Data // []byte{} vs nil for empty blocks
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: round trip = %+v, want %+v (wire %q)", want.Name, got, want, wire)
		}
	}
}

// TestAppendResponseRoundTrip checks AppendResponse against ReadResponse.
func TestAppendResponseRoundTrip(t *testing.T) {
	resps := []*Response{
		{Status: "END"},
		{Status: "END", Values: []Value{{Key: "k", Flags: 2, Data: []byte("abc")}}},
		{Status: "END", Values: []Value{
			{Key: "a", Flags: 0, Data: []byte("1")},
			{Key: "b", Flags: 9, Data: []byte("22")},
		}},
		{Status: "STORED"},
		{Status: "NOT_FOUND"},
		{Status: "NUMBER", Number: 41},
		{Status: "SERVER_ERROR", Message: "backend unavailable"},
		{Status: "VERSION", Message: "pamakv/1.0"},
		{Status: "END", Stats: [][2]string{{"cmd_get", "10"}, {"policy", "pama"}}},
	}
	for _, want := range resps {
		wire := AppendResponse(nil, want, false)
		got, err := ReadResponse(bufio.NewReader(bytes.NewReader(wire)))
		if err != nil {
			t.Fatalf("%s: re-parse of %q: %v", want.Status, wire, err)
		}
		if got.Status != want.Status || got.Message != want.Message || got.Number != want.Number {
			t.Errorf("%s: round trip = %+v, want %+v", want.Status, got, want)
		}
		if len(got.Values) != len(want.Values) || len(got.Stats) != len(want.Stats) {
			t.Fatalf("%s: block counts %d/%d, want %d/%d",
				want.Status, len(got.Values), len(got.Stats), len(want.Values), len(want.Stats))
		}
		for i := range want.Values {
			if got.Values[i].Key != want.Values[i].Key ||
				got.Values[i].Flags != want.Values[i].Flags ||
				!bytes.Equal(got.Values[i].Data, want.Values[i].Data) {
				t.Errorf("%s: value %d = %+v, want %+v", want.Status, i, got.Values[i], want.Values[i])
			}
		}
	}
}

// TestAppendResponseCAS checks the CAS token survives a gets relay and is
// stripped from a get relay.
func TestAppendResponseCAS(t *testing.T) {
	resp := &Response{Status: "END", Values: []Value{{Key: "k", Flags: 1, CAS: 99, Data: []byte("v")}}}
	withCAS := AppendResponse(nil, resp, true)
	got, err := ReadResponse(bufio.NewReader(bytes.NewReader(withCAS)))
	if err != nil || got.Values[0].CAS != 99 {
		t.Fatalf("gets relay: CAS = %d (err %v), want 99", got.Values[0].CAS, err)
	}
	without := AppendResponse(nil, resp, false)
	got, err = ReadResponse(bufio.NewReader(bytes.NewReader(without)))
	if err != nil || got.Values[0].CAS != 0 {
		t.Fatalf("get relay: CAS = %d (err %v), want 0", got.Values[0].CAS, err)
	}
}
