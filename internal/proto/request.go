package proto

import "strconv"

// Client-side request rendering: the inverse of ReadCommand, used by the
// cluster peer client and the forwarding path to re-emit a parsed command on
// another connection. Responses have a matching encoder, AppendResponse, so
// a node can relay a peer's reply verbatim.

// AppendCommand renders cmd to its wire form, appending to dst. NoReply is
// honored for the commands that accept it; Data supplies storage commands'
// data-block bytes (the Bytes field is ignored — the block length is
// len(Data)).
func AppendCommand(dst []byte, cmd *Command) []byte {
	dst = append(dst, cmd.Name...)
	switch cmd.Name {
	case "get", "gets":
		for _, k := range cmd.Keys {
			dst = append(dst, ' ')
			dst = append(dst, k...)
		}
		return append(dst, '\r', '\n')
	case "set", "add", "replace", "append", "prepend", "cas":
		dst = append(dst, ' ')
		dst = append(dst, cmd.Keys[0]...)
		dst = append(dst, ' ')
		dst = strconv.AppendUint(dst, uint64(cmd.Flags), 10)
		dst = append(dst, ' ')
		dst = strconv.AppendInt(dst, cmd.Exptime, 10)
		dst = append(dst, ' ')
		dst = strconv.AppendInt(dst, int64(len(cmd.Data)), 10)
		if cmd.Name == "cas" {
			dst = append(dst, ' ')
			dst = strconv.AppendUint(dst, cmd.CasID, 10)
		}
		dst = appendNoReply(dst, cmd.NoReply)
		dst = append(dst, '\r', '\n')
		dst = append(dst, cmd.Data...)
		return append(dst, '\r', '\n')
	case "delete":
		dst = append(dst, ' ')
		dst = append(dst, cmd.Keys[0]...)
		dst = appendNoReply(dst, cmd.NoReply)
		return append(dst, '\r', '\n')
	case "touch":
		dst = append(dst, ' ')
		dst = append(dst, cmd.Keys[0]...)
		dst = append(dst, ' ')
		dst = strconv.AppendInt(dst, cmd.Exptime, 10)
		dst = appendNoReply(dst, cmd.NoReply)
		return append(dst, '\r', '\n')
	case "incr", "decr":
		dst = append(dst, ' ')
		dst = append(dst, cmd.Keys[0]...)
		dst = append(dst, ' ')
		dst = strconv.AppendUint(dst, cmd.Delta, 10)
		dst = appendNoReply(dst, cmd.NoReply)
		return append(dst, '\r', '\n')
	default:
		// stats, flush_all, version, quit: the bare verb.
		return append(dst, '\r', '\n')
	}
}

func appendNoReply(dst []byte, noreply bool) []byte {
	if noreply {
		dst = append(dst, " noreply"...)
	}
	return dst
}

// AppendResponse renders resp back to its wire form, appending to dst —
// what a relaying node emits to its own client after ReadResponse parsed
// the owner's reply. withCAS controls whether VALUE blocks carry their CAS
// token (a gets relay keeps it; a get relay must not add one).
func AppendResponse(dst []byte, resp *Response, withCAS bool) []byte {
	for _, v := range resp.Values {
		if withCAS {
			dst = AppendValueCAS(dst, v.Key, v.Flags, v.Data, v.CAS)
		} else {
			dst = AppendValue(dst, v.Key, v.Flags, v.Data)
		}
	}
	for _, st := range resp.Stats {
		dst = AppendLine(dst, "STAT "+st[0]+" "+st[1])
	}
	switch resp.Status {
	case "NUMBER":
		return AppendLine(dst, strconv.FormatUint(resp.Number, 10))
	case "CLIENT_ERROR", "SERVER_ERROR", "VERSION":
		return AppendLine(dst, resp.Status+" "+resp.Message)
	default:
		return AppendLine(dst, resp.Status)
	}
}
