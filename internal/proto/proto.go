// Package proto implements the subset of the Memcached ASCII protocol the
// pama-server speaks: get/gets, the storage commands (set, add, replace,
// append, prepend, cas), delete, incr/decr, touch, stats, flush_all,
// version, and quit. It contains only framing — command parsing and
// response rendering — so the server, the client package, and test clients
// share one codec.
package proto

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Limits mirror Memcached's.
const (
	// MaxKeyLen is the longest accepted key.
	MaxKeyLen = 250
	// MaxDataLen bounds a single value (1 MiB, one slab).
	MaxDataLen = 1 << 20
	// MaxLineLen bounds one command or response line (big enough for a
	// multi-key get of ~30 max-length keys). Longer lines indicate a
	// malformed or malicious peer; without the cap a newline-free stream
	// would grow the line buffer without bound.
	MaxLineLen = 8192
)

// ErrLineTooLong reports a line exceeding MaxLineLen. Framing is lost at
// that point, so servers reply CLIENT_ERROR and close the connection rather
// than resynchronize.
var ErrLineTooLong = errors.New("proto: line exceeds maximum length")

// Command is one parsed client request.
type Command struct {
	// Name is the lower-case verb: get, gets, set, delete, stats,
	// flush_all, version, quit.
	Name string
	// Keys are the operand keys (get may carry several).
	Keys []string
	// Flags, Exptime, and Bytes carry set's storage parameters.
	Flags   uint32
	Exptime int64
	Bytes   int
	// CasID carries cas's token operand.
	CasID uint64
	// Delta carries incr/decr's operand.
	Delta uint64
	// NoReply suppresses the response (set/delete).
	NoReply bool
	// Data is set's value block.
	Data []byte
}

// ClientError is a malformed-request error; the server reports it with
// CLIENT_ERROR and keeps the connection open. Err, when non-nil, preserves
// the underlying I/O cause (e.g. a read deadline expiring inside a data
// block) so servers can tell a slow client from a malformed one.
type ClientError struct {
	Msg string
	Err error
}

// Error implements error.
func (e *ClientError) Error() string { return "proto: " + e.Msg }

// Unwrap exposes the underlying cause for errors.Is checks.
func (e *ClientError) Unwrap() error { return e.Err }

func clientErrf(format string, args ...any) error {
	return &ClientError{Msg: fmt.Sprintf(format, args...)}
}

// ReadCommand parses the next command from r, including set's data block.
// io.EOF is returned verbatim on a cleanly closed connection.
//
// This is the allocating reference parser: every token becomes its own
// string and every data block a fresh slice, so callers own everything the
// Command references. The serving path uses Parser, which tokenizes in
// place over the reader's buffer; the fuzz harness drives both over
// identical streams and requires agreement on every input, keeping this
// implementation the executable spec of the protocol.
func ReadCommand(r *bufio.Reader) (*Command, error) {
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	fields := fieldsSpace(string(line))
	if len(fields) == 0 {
		return nil, clientErrf("empty command")
	}
	cmd := &Command{Name: strings.ToLower(fields[0])}
	args := fields[1:]
	switch cmd.Name {
	case "get", "gets":
		if len(args) == 0 {
			return nil, clientErrf("get requires at least one key")
		}
		for _, k := range args {
			if err := checkKey(k); err != nil {
				return nil, err
			}
		}
		cmd.Keys = args
	case "set", "add", "replace", "append", "prepend", "cas":
		// Storage commands share the grammar; cas carries one extra
		// token operand before the optional noreply.
		want := 4
		if cmd.Name == "cas" {
			want = 5
		}
		if len(args) != want && !(len(args) == want+1 && args[want] == "noreply") {
			return nil, clientErrf("%s requires <key> <flags> <exptime> <bytes>%s [noreply]",
				cmd.Name, map[bool]string{true: " <cas>", false: ""}[cmd.Name == "cas"])
		}
		if err := checkKey(args[0]); err != nil {
			return nil, err
		}
		cmd.Keys = args[:1]
		flags, err := strconv.ParseUint(args[1], 10, 32)
		if err != nil {
			return nil, clientErrf("bad flags %q", args[1])
		}
		cmd.Flags = uint32(flags)
		exp, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil {
			return nil, clientErrf("bad exptime %q", args[2])
		}
		cmd.Exptime = exp
		n, err := strconv.Atoi(args[3])
		if err != nil || n < 0 || n > MaxDataLen {
			return nil, clientErrf("bad bytes %q", args[3])
		}
		cmd.Bytes = n
		if cmd.Name == "cas" {
			id, err := strconv.ParseUint(args[4], 10, 64)
			if err != nil {
				return nil, clientErrf("bad cas token %q", args[4])
			}
			cmd.CasID = id
		}
		cmd.NoReply = len(args) == want+1
		data, err := readData(r, n)
		if err != nil {
			return nil, err
		}
		cmd.Data = data
	case "delete":
		if len(args) != 1 && !(len(args) == 2 && args[1] == "noreply") {
			return nil, clientErrf("delete requires <key> [noreply]")
		}
		if err := checkKey(args[0]); err != nil {
			return nil, err
		}
		cmd.Keys = args[:1]
		cmd.NoReply = len(args) == 2
	case "incr", "decr":
		if len(args) != 2 && !(len(args) == 3 && args[2] == "noreply") {
			return nil, clientErrf("%s requires <key> <delta> [noreply]", cmd.Name)
		}
		if err := checkKey(args[0]); err != nil {
			return nil, err
		}
		cmd.Keys = args[:1]
		d, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			return nil, clientErrf("bad delta %q", args[1])
		}
		cmd.Delta = d
		cmd.NoReply = len(args) == 3
	case "touch":
		if len(args) != 2 && !(len(args) == 3 && args[2] == "noreply") {
			return nil, clientErrf("touch requires <key> <exptime> [noreply]")
		}
		if err := checkKey(args[0]); err != nil {
			return nil, err
		}
		cmd.Keys = args[:1]
		exp, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return nil, clientErrf("bad exptime %q", args[1])
		}
		cmd.Exptime = exp
		cmd.NoReply = len(args) == 3
	case "stats", "flush_all", "version", "quit":
		// No operands used.
	default:
		return nil, clientErrf("unknown command %q", cmd.Name)
	}
	return cmd, nil
}

// readData consumes an n-byte data block plus its CRLF terminator.
func readData(r *bufio.Reader, n int) ([]byte, error) {
	data := make([]byte, n+2)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, &ClientError{Msg: fmt.Sprintf("short data block: %v", err), Err: err}
	}
	if !bytes.HasSuffix(data, []byte("\r\n")) {
		return nil, clientErrf("data block not terminated by CRLF")
	}
	return data[:n], nil
}

// CheckKey validates a key against the protocol's constraints — non-empty,
// at most MaxKeyLen bytes, no space or control bytes. Clients call it before
// rendering a request: a key with an embedded space or newline would not
// just be rejected, it would desynchronize the connection's framing.
func CheckKey(key string) error { return checkKey(key) }

// checkKey validates one key operand; it accepts both the reference
// parser's string tokens and the in-place parser's byte views.
//
// '/' is the tenant namespace separator (see internal/tenant): a leading
// separator would name an empty tenant, and a second one would make the
// tenant/rest split ambiguous, so both are protocol errors. A single
// interior separator — including a trailing one ("t/") — is a well-formed
// qualified key whether or not the server runs multi-tenant.
func checkKey[T ~string | ~[]byte](k T) error {
	if len(k) == 0 || len(k) > MaxKeyLen {
		return clientErrf("key length %d outside (0,%d]", len(k), MaxKeyLen)
	}
	sep := -1
	for i := 0; i < len(k); i++ {
		switch {
		case k[i] <= ' ' || k[i] == 0x7f:
			return clientErrf("key contains control or space byte")
		case k[i] == '/':
			if i == 0 {
				return clientErrf("key has an empty tenant prefix")
			}
			if sep >= 0 {
				return clientErrf("key has a second tenant separator")
			}
			sep = i
		}
	}
	return nil
}

// fieldsSpace splits s on runs of ASCII spaces — the protocol's only token
// separator. Unlike strings.Fields, a tab (or any other whitespace byte) is
// part of its token and will fail verb or key validation, matching the
// in-place tokenizer byte for byte so the two parsers agree on every input.
func fieldsSpace(s string) []string {
	var out []string
	for i := 0; i < len(s); {
		if s[i] == ' ' {
			i++
			continue
		}
		j := i
		for j < len(s) && s[j] != ' ' {
			j++
		}
		out = append(out, s[i:j])
		i = j
	}
	return out
}

// readLine reads one CRLF- (or LF-) terminated line without the terminator,
// rejecting lines longer than MaxLineLen with ErrLineTooLong.
func readLine(r *bufio.Reader) ([]byte, error) {
	var line []byte
	for {
		chunk, err := r.ReadSlice('\n')
		line = append(line, chunk...)
		if err == bufio.ErrBufferFull {
			if len(line) > MaxLineLen {
				return nil, ErrLineTooLong
			}
			continue
		}
		if err != nil {
			if err == io.EOF && len(line) == 0 {
				return nil, io.EOF
			}
			return nil, err
		}
		break
	}
	if len(line) > MaxLineLen+2 { // +2 allows the CRLF terminator itself
		return nil, ErrLineTooLong
	}
	line = bytes.TrimRight(line, "\r\n")
	return line, nil
}

// Response rendering helpers. All append to dst and return it.

// AppendValue renders one VALUE block of a get response.
func AppendValue(dst []byte, key string, flags uint32, data []byte) []byte {
	dst = append(dst, "VALUE "...)
	dst = append(dst, key...)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, uint64(flags), 10)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(len(data)), 10)
	dst = append(dst, '\r', '\n')
	dst = append(dst, data...)
	return append(dst, '\r', '\n')
}

// AppendValueCAS renders one VALUE block of a gets response, with the CAS
// token.
func AppendValueCAS(dst []byte, key string, flags uint32, data []byte, cas uint64) []byte {
	dst = append(dst, "VALUE "...)
	dst = append(dst, key...)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, uint64(flags), 10)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(len(data)), 10)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, cas, 10)
	dst = append(dst, '\r', '\n')
	dst = append(dst, data...)
	return append(dst, '\r', '\n')
}

// AppendEnd terminates a get or stats response.
func AppendEnd(dst []byte) []byte { return append(dst, "END\r\n"...) }

// AppendNumberLine renders an incr/decr result line without allocating.
func AppendNumberLine(dst []byte, n uint64) []byte {
	dst = strconv.AppendUint(dst, n, 10)
	return append(dst, '\r', '\n')
}

// AppendLine appends s + CRLF.
func AppendLine(dst []byte, s string) []byte {
	dst = append(dst, s...)
	return append(dst, '\r', '\n')
}

// AppendStat renders one STAT line.
func AppendStat(dst []byte, name string, value any) []byte {
	return AppendLine(dst, fmt.Sprintf("STAT %s %v", name, value))
}
