//go:build race

package proto

// raceEnabled reports that the race detector is active: sync.Pool drops a
// random quarter of Puts under race to widen interleavings, so pool-backed
// zero-allocation gates cannot hold and are skipped.
const raceEnabled = true
