package proto

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// requestSeeds covers every verb, noreply variants, bad lengths, and
// truncated frames.
var requestSeeds = []string{
	"get k\r\n",
	"gets a b c\r\n",
	"get \r\n",
	"get " + strings.Repeat("k", 300) + "\r\n",
	"set k 0 0 5\r\nhello\r\n",
	"set k 0 0 5 noreply\r\nhello\r\n",
	"set k 4294967295 2592000 0\r\n\r\n",
	"set k -1 0 5\r\nhello\r\n",
	"set k 0 0 -1\r\n",
	"set k 0 0 99999999999\r\n",
	"set k 0 0 5\r\nhel", // truncated data block
	"set k 0 0\r\n",      // missing bytes operand
	"add k 0 0 1\r\nx\r\n",
	"replace k 0 0 1\r\nx\r\n",
	"cas k 0 0 2 42\r\nhi\r\n",
	"cas k 0 0 2 notanumber\r\nhi\r\n",
	"delete k\r\n",
	"delete k noreply\r\n",
	"delete\r\n",
	"incr k 1\r\n",
	"incr k 18446744073709551615\r\n",
	"decr k 2 noreply\r\n",
	"decr k x\r\n",
	"touch k 30\r\n",
	"touch k -1 noreply\r\n",
	"stats\r\n",
	"flush_all\r\n",
	"version\r\n",
	"quit\r\n",
	"bogus stuff\r\n",
	"\r\n",
	"",
	"set k 0 0 3\r\nab\r\nget k\r\n", // CRLF landing inside the count
	"get k\nget j\n",                 // bare-LF lines
	"\x00\x80\xff\r\n",
	strings.Repeat("a", MaxLineLen+10) + "\r\n",
}

func FuzzParseRequest(f *testing.F) {
	for _, s := range requestSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			cmd, err := ReadCommand(r)
			if err != nil {
				var ce *ClientError
				switch {
				case errors.As(err, &ce):
					continue // recoverable: the parser resynchronized
				case errors.Is(err, io.EOF), errors.Is(err, ErrLineTooLong):
					return
				default:
					t.Fatalf("unexpected error class: %v", err)
				}
			}
			if cmd.Name == "" {
				t.Fatal("parsed command with empty name")
			}
			for _, k := range cmd.Keys {
				if len(k) == 0 || len(k) > MaxKeyLen {
					t.Fatalf("accepted key of length %d", len(k))
				}
			}
			if cmd.Bytes < 0 || cmd.Bytes > MaxDataLen {
				t.Fatalf("accepted data length %d", cmd.Bytes)
			}
			if len(cmd.Data) != cmd.Bytes {
				t.Fatalf("data length %d disagrees with bytes operand %d", len(cmd.Data), cmd.Bytes)
			}
		}
	})
}

// responseSeeds covers every reply shape, bad lengths, and truncated frames.
var responseSeeds = []string{
	"END\r\n",
	"VALUE k 0 5\r\nhello\r\nEND\r\n",
	"VALUE k 9 2 77\r\nhi\r\nVALUE j 0 0\r\n\r\nEND\r\n",
	"VALUE k 0 5\r\nhel", // truncated data
	"VALUE k 0 -1\r\n",   // bad length
	"VALUE k 0 2000000\r\n",
	"VALUE k notaflag 2\r\nhi\r\n",
	"VALUE\r\n",
	"STORED\r\n",
	"NOT_STORED\r\n",
	"EXISTS\r\n",
	"NOT_FOUND\r\n",
	"DELETED\r\n",
	"TOUCHED\r\n",
	"OK\r\n",
	"ERROR\r\n",
	"CLIENT_ERROR malformed thing\r\n",
	"SERVER_ERROR backend down\r\n",
	"VERSION pamakv/1.0\r\n",
	"STAT cmd_get 12\r\nSTAT policy pama\r\nEND\r\n",
	"STAT incomplete\r\n",
	"17\r\n",
	"18446744073709551615\r\n",
	"99 trailing\r\n",
	"\r\n",
	"",
	"garbage line\r\n",
	strings.Repeat("V", MaxLineLen+10) + "\r\n",
}

func FuzzParseResponse(f *testing.F) {
	for _, s := range responseSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			resp, err := ReadResponse(r)
			if err != nil {
				var ce *ClientError
				switch {
				case errors.As(err, &ce):
					continue
				case errors.Is(err, io.EOF), errors.Is(err, ErrLineTooLong):
					return
				default:
					t.Fatalf("unexpected error class: %v", err)
				}
			}
			if resp.Status == "" {
				t.Fatal("parsed response with empty status")
			}
			for _, v := range resp.Values {
				if len(v.Data) > MaxDataLen {
					t.Fatalf("accepted value of %d bytes", len(v.Data))
				}
				if len(v.Key) == 0 || len(v.Key) > MaxKeyLen {
					t.Fatalf("accepted key of length %d", len(v.Key))
				}
			}
		}
	})
}
