package proto

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// requestSeeds covers every verb, noreply variants, bad lengths, and
// truncated frames.
var requestSeeds = []string{
	"get k\r\n",
	"gets a b c\r\n",
	"get \r\n",
	"get " + strings.Repeat("k", 300) + "\r\n",
	"set k 0 0 5\r\nhello\r\n",
	"set k 0 0 5 noreply\r\nhello\r\n",
	"set k 4294967295 2592000 0\r\n\r\n",
	"set k -1 0 5\r\nhello\r\n",
	"set k 0 0 -1\r\n",
	"set k 0 0 99999999999\r\n",
	"set k 0 0 5\r\nhel", // truncated data block
	"set k 0 0\r\n",      // missing bytes operand
	"add k 0 0 1\r\nx\r\n",
	"replace k 0 0 1\r\nx\r\n",
	"cas k 0 0 2 42\r\nhi\r\n",
	"cas k 0 0 2 notanumber\r\nhi\r\n",
	"delete k\r\n",
	"delete k noreply\r\n",
	"delete\r\n",
	"incr k 1\r\n",
	"incr k 18446744073709551615\r\n",
	"decr k 2 noreply\r\n",
	"decr k x\r\n",
	"touch k 30\r\n",
	"touch k -1 noreply\r\n",
	"stats\r\n",
	"flush_all\r\n",
	"version\r\n",
	"quit\r\n",
	"bogus stuff\r\n",
	"\r\n",
	"",
	"set k 0 0 3\r\nab\r\nget k\r\n", // CRLF landing inside the count
	"get k\nget j\n",                 // bare-LF lines
	"\x00\x80\xff\r\n",
	strings.Repeat("a", MaxLineLen+10) + "\r\n",
	// Pipelined mixed traffic: the steady-state shape the in-place parser
	// is optimized for.
	"get a\r\nget b\r\nset k 0 0 3\r\nabc\r\nget c\r\n",
	// Tenant-qualified keys: one separator is valid, a leading or second
	// separator is a client error the parsers must agree on.
	"get t/k\r\nset t/k 0 0 1\r\nx\r\n",
	"get /k\r\n",
	"set a/b/c 0 0 1\r\nx\r\n",
	"delete t/\r\n",
	"incr n 1\r\ndecr n 1\r\ntouch k 5\r\ndelete k\r\nstats\r\n",
	// Boundary-length lines around MaxLineLen (the +-1 neighbors come from
	// mutation).
	"get " + strings.Repeat(" ", MaxLineLen-4-250) + strings.Repeat("k", 250) + "\r\n",
	strings.Repeat("g", MaxLineLen) + "\r\n",
	strings.Repeat("g", MaxLineLen+1) + "\r\n",
	// A valid multi-key get longer than the default bufio buffer: the
	// in-place parser must spill and still agree with the reference.
	"get " + strings.Repeat(strings.Repeat("k", 200)+" ", 25) + "\r\nget a\r\n",
	// Tokenizer edges: tabs are token bytes, space runs collapse, verbs
	// match case-insensitively, trailing CRs are trimmed.
	"get\ta\r\n",
	"get   a   b\r\n",
	"SET K 0 0 2\r\nhi\r\n",
	"GeT k\r\n",
	"get k\r\r\n",
	"get " + strings.Repeat("k", 250) + "\r\n",
	"set k +0 +0 +1\r\nx\r\n",
	"append k 0 0 4\r\ntail\r\n",
	"prepend k 0 0 4 noreply\r\nhead\r\n",
	"append k 0 0\r\n",
}

// errKind buckets parser errors into the classes the differential harness
// compares: the two parsers must fail the same way, not with the same prose.
type errKind int

const (
	errNone errKind = iota
	errClient
	errEOF
	errTooLong
	errOther
)

func classifyErr(err error) errKind {
	var ce *ClientError
	switch {
	case err == nil:
		return errNone
	case errors.As(err, &ce):
		return errClient
	case errors.Is(err, io.EOF):
		return errEOF
	case errors.Is(err, ErrLineTooLong):
		return errTooLong
	default:
		return errOther
	}
}

// FuzzParseRequest is a differential harness: the allocating reference
// parser (the executable spec) and the in-place hot-path Parser consume the
// same byte stream through same-sized readers and must agree at every step —
// same error class or a field-for-field identical Command. A ClientError
// leaves both parsers resynchronized at the same stream offset (both consume
// exactly the offending frame), so the comparison continues past it.
func FuzzParseRequest(f *testing.F) {
	for _, s := range requestSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r1 := bufio.NewReaderSize(bytes.NewReader(data), 4096)
		r2 := bufio.NewReaderSize(bytes.NewReader(data), 4096)
		p := NewParser(r2)
		defer p.Close()
		for i := 0; i < 64; i++ {
			c1, err1 := ReadCommand(r1)
			c2, err2 := p.ReadCommand()
			k1, k2 := classifyErr(err1), classifyErr(err2)
			if k1 != k2 {
				t.Fatalf("step %d: parsers disagree on error class: reference %v, in-place %v", i, err1, err2)
			}
			switch k1 {
			case errClient:
				continue // both resynchronized identically
			case errEOF, errTooLong:
				return // framing is gone; servers close the connection here
			case errOther:
				t.Fatalf("step %d: unexpected error class: %v", i, err1)
			}
			if c1.Name != c2.Name || c1.Flags != c2.Flags || c1.Exptime != c2.Exptime ||
				c1.Bytes != c2.Bytes || c1.CasID != c2.CasID || c1.Delta != c2.Delta ||
				c1.NoReply != c2.NoReply {
				t.Fatalf("step %d: commands disagree:\nreference %+v\nin-place  %+v", i, c1, c2)
			}
			if len(c1.Keys) != len(c2.Keys) {
				t.Fatalf("step %d: key counts disagree: %v vs %v", i, c1.Keys, c2.Keys)
			}
			for j := range c1.Keys {
				if c1.Keys[j] != c2.Keys[j] {
					t.Fatalf("step %d: key %d disagrees: %q vs %q", i, j, c1.Keys[j], c2.Keys[j])
				}
			}
			if !bytes.Equal(c1.Data, c2.Data) {
				t.Fatalf("step %d: data disagrees: %q vs %q", i, c1.Data, c2.Data)
			}
			// Shared invariants, checked once (the parsers already agree).
			if c1.Name == "" {
				t.Fatal("parsed command with empty name")
			}
			for _, k := range c1.Keys {
				if len(k) == 0 || len(k) > MaxKeyLen {
					t.Fatalf("accepted key of length %d", len(k))
				}
			}
			if c1.Bytes < 0 || c1.Bytes > MaxDataLen {
				t.Fatalf("accepted data length %d", c1.Bytes)
			}
			if len(c1.Data) != c1.Bytes {
				t.Fatalf("data length %d disagrees with bytes operand %d", len(c1.Data), c1.Bytes)
			}
		}
	})
}

// responseSeeds covers every reply shape, bad lengths, and truncated frames.
var responseSeeds = []string{
	"END\r\n",
	"VALUE k 0 5\r\nhello\r\nEND\r\n",
	"VALUE k 9 2 77\r\nhi\r\nVALUE j 0 0\r\n\r\nEND\r\n",
	"VALUE k 0 5\r\nhel", // truncated data
	"VALUE k 0 -1\r\n",   // bad length
	"VALUE k 0 2000000\r\n",
	"VALUE k notaflag 2\r\nhi\r\n",
	"VALUE\r\n",
	"STORED\r\n",
	"NOT_STORED\r\n",
	"EXISTS\r\n",
	"NOT_FOUND\r\n",
	"DELETED\r\n",
	"TOUCHED\r\n",
	"OK\r\n",
	"ERROR\r\n",
	"CLIENT_ERROR malformed thing\r\n",
	"SERVER_ERROR backend down\r\n",
	"VERSION pamakv/1.0\r\n",
	"STAT cmd_get 12\r\nSTAT policy pama\r\nEND\r\n",
	"STAT incomplete\r\n",
	"17\r\n",
	"18446744073709551615\r\n",
	"99 trailing\r\n",
	"\r\n",
	"",
	"garbage line\r\n",
	strings.Repeat("V", MaxLineLen+10) + "\r\n",
}

// clientRespSeeds extend responseSeeds with the shapes a pipelining client
// sees: back-to-back responses, truncated and oversized blocks, and END
// landing inside a data block rather than on a line of its own.
var clientRespSeeds = []string{
	// Pipelined mixed traffic: the steady-state shape RespReader serves.
	"VALUE k 0 5\r\nhello\r\nEND\r\nSTORED\r\nEND\r\n17\r\nDELETED\r\n",
	"END\r\nEND\r\nEND\r\n",
	"VALUE k 0 3\r\nab",    // truncated mid-data
	"VALUE k 0 3\r\nabc\r", // truncated mid-terminator
	"VALUE k 0 1048577\r\n" + strings.Repeat("x", 64), // oversized block
	// END as data bytes, interleaved with END terminators: framing must
	// come from declared lengths, never from scanning for the word.
	"VALUE a 0 3\r\nEND\r\nVALUE b 0 5\r\nEND\r\n\r\nEND\r\n",
	"VALUE a 0 2\r\nEN\r\nEND extra tokens\r\n",
	"STAT a 1\r\nVALUE k 0 2\r\nhi\r\nSTAT b 2 3\r\nEND\r\n", // interleaved STAT/VALUE
	"VALUE k 1 2 99\r\nhi\r\nEND\r\n",
	"SERVER_ERROR busy (shed)\r\nEND\r\n",
	"VERSION 1.6.21  with   runs\r\n",
	"VALUE " + strings.Repeat("k", 250) + " 0 0\r\n\r\nEND\r\n",
	"VALUE k 0 +1\r\nx\r\nEND\r\n",
}

// FuzzClientReadResponse is the response-side differential harness: the
// allocating ReadResponse (the executable spec) and the in-place pipelined
// RespReader consume the same byte stream through same-sized readers and
// must agree at every step — same error class or a field-for-field identical
// response. A ClientError leaves both at the same stream offset (both
// consume exactly the offending frame), so the comparison continues past it.
func FuzzClientReadResponse(f *testing.F) {
	for _, s := range responseSeeds {
		f.Add([]byte(s))
	}
	for _, s := range clientRespSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r1 := bufio.NewReaderSize(bytes.NewReader(data), 4096)
		r2 := bufio.NewReaderSize(bytes.NewReader(data), 4096)
		rr := NewRespReader(r2)
		for i := 0; i < 64; i++ {
			ref, err1 := ReadResponse(r1)
			got, err2 := rr.Next()
			k1, k2 := classifyErr(err1), classifyErr(err2)
			if k1 != k2 {
				t.Fatalf("step %d: readers disagree on error class: reference %v, in-place %v", i, err1, err2)
			}
			switch k1 {
			case errClient:
				continue // both resynchronized identically
			case errEOF, errTooLong:
				return // framing is gone; clients close the connection here
			case errOther:
				t.Fatalf("step %d: unexpected error class: %v", i, err1)
			}
			if ref.Status != got.Status.String() {
				t.Fatalf("step %d: status %q vs %q", i, ref.Status, got.Status)
			}
			if ref.Message != string(got.Msg) {
				t.Fatalf("step %d: message %q vs %q", i, ref.Message, got.Msg)
			}
			if ref.Number != got.Number {
				t.Fatalf("step %d: number %d vs %d", i, ref.Number, got.Number)
			}
			if len(ref.Values) != len(got.Values) {
				t.Fatalf("step %d: value counts %d vs %d", i, len(ref.Values), len(got.Values))
			}
			for j, v := range ref.Values {
				g := got.Values[j]
				if v.Key != string(g.Key) || v.Flags != g.Flags || v.CAS != g.CAS || !bytes.Equal(v.Data, g.Data) {
					t.Fatalf("step %d: value %d: reference %+v, in-place %+v", i, j, v, g)
				}
			}
			if len(ref.Stats) != len(got.Stats) {
				t.Fatalf("step %d: stat counts %d vs %d", i, len(ref.Stats), len(got.Stats))
			}
			for j, st := range ref.Stats {
				g := got.Stats[j]
				if st[0] != string(g[0]) || st[1] != string(g[1]) {
					t.Fatalf("step %d: stat %d: reference %v, in-place %q/%q", i, j, st, g[0], g[1])
				}
			}
		}
	})
}

func FuzzParseResponse(f *testing.F) {
	for _, s := range responseSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			resp, err := ReadResponse(r)
			if err != nil {
				var ce *ClientError
				switch {
				case errors.As(err, &ce):
					continue
				case errors.Is(err, io.EOF), errors.Is(err, ErrLineTooLong):
					return
				default:
					t.Fatalf("unexpected error class: %v", err)
				}
			}
			if resp.Status == "" {
				t.Fatal("parsed response with empty status")
			}
			for _, v := range resp.Values {
				if len(v.Data) > MaxDataLen {
					t.Fatalf("accepted value of %d bytes", len(v.Data))
				}
				if len(v.Key) == 0 || len(v.Key) > MaxKeyLen {
					t.Fatalf("accepted key of length %d", len(v.Key))
				}
			}
		}
	})
}
