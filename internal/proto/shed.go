package proto

// Overload shedding speaks through the protocol as a SERVER_ERROR with a
// recognizable cause, so peers and load generators can tell "the server
// refused this on purpose" from "the server broke". A shed is not a fault:
// cluster clients must not count it against a peer's circuit breaker, and
// clients should back off rather than retry immediately.

// ShedMsg is the message carried by a shed rejection.
const ShedMsg = "busy (shed)"

// AppendShed renders the shed rejection line.
func AppendShed(dst []byte) []byte {
	return append(dst, "SERVER_ERROR "+ShedMsg+"\r\n"...)
}

// IsShedResponse reports whether a parsed response is a deliberate overload
// shed rather than a genuine server fault.
func IsShedResponse(r *Response) bool {
	return r != nil && r.Status == "SERVER_ERROR" && r.Message == ShedMsg
}
