package proto

import (
	"bufio"
	"strconv"
	"strings"
)

// maxResponseBlocks bounds VALUE/STAT accumulation in one response, so a
// misbehaving server cannot make a client allocate without bound.
const maxResponseBlocks = 1 << 16

// Value is one VALUE block of a retrieval response.
type Value struct {
	Key   string
	Flags uint32
	// CAS is the token from a gets reply; 0 when the block carried none.
	CAS  uint64
	Data []byte
}

// Response is one complete server reply, as a client sees it: the final
// status line plus any VALUE blocks and STAT lines that preceded it.
type Response struct {
	// Status is the terminating line's verb: "END", "STORED",
	// "NOT_STORED", "EXISTS", "NOT_FOUND", "DELETED", "TOUCHED", "OK",
	// "ERROR", "CLIENT_ERROR", "SERVER_ERROR", "VERSION", or "NUMBER"
	// for a bare incr/decr result.
	Status string
	// Message carries the remainder of an error or VERSION line.
	Message string
	// Number is the parsed result when Status == "NUMBER".
	Number uint64
	// Values collects the VALUE blocks of a get/gets reply.
	Values []Value
	// Stats collects STAT name/value pairs of a stats reply.
	Stats [][2]string
}

// ReadResponse parses one complete response from r: a single status line
// (STORED, DELETED, a number, ...), or a block response (VALUE/STAT lines
// terminated by END). Malformed input yields a *ClientError; a line-length
// violation yields ErrLineTooLong. io.EOF is returned verbatim on a cleanly
// closed connection.
func ReadResponse(r *bufio.Reader) (*Response, error) {
	resp := &Response{}
	for {
		line, err := readLine(r)
		if err != nil {
			return nil, err
		}
		fields := fieldsSpace(string(line))
		if len(fields) == 0 {
			return nil, clientErrf("empty response line")
		}
		switch fields[0] {
		case "VALUE":
			if len(resp.Values) >= maxResponseBlocks {
				return nil, clientErrf("response exceeds %d VALUE blocks", maxResponseBlocks)
			}
			v, err := parseValueBlock(r, fields[1:])
			if err != nil {
				return nil, err
			}
			resp.Values = append(resp.Values, v)
		case "STAT":
			if len(resp.Stats) >= maxResponseBlocks {
				return nil, clientErrf("response exceeds %d STAT lines", maxResponseBlocks)
			}
			if len(fields) < 3 {
				return nil, clientErrf("STAT line needs a name and a value")
			}
			resp.Stats = append(resp.Stats, [2]string{fields[1], strings.Join(fields[2:], " ")})
		case "END":
			resp.Status = "END"
			return resp, nil
		case "STORED", "NOT_STORED", "EXISTS", "NOT_FOUND", "DELETED", "TOUCHED", "OK", "ERROR":
			resp.Status = fields[0]
			return resp, nil
		case "CLIENT_ERROR", "SERVER_ERROR", "VERSION":
			resp.Status = fields[0]
			resp.Message = strings.Join(fields[1:], " ")
			return resp, nil
		default:
			if n, err := strconv.ParseUint(fields[0], 10, 64); err == nil && len(fields) == 1 {
				resp.Status = "NUMBER"
				resp.Number = n
				return resp, nil
			}
			return nil, clientErrf("unparseable response line %q", line)
		}
	}
}

// parseValueBlock parses the operands of a VALUE line ("<key> <flags>
// <bytes> [<cas>]") and consumes the data block.
func parseValueBlock(r *bufio.Reader, args []string) (Value, error) {
	if len(args) != 3 && len(args) != 4 {
		return Value{}, clientErrf("VALUE line needs <key> <flags> <bytes> [<cas>]")
	}
	if err := checkKey(args[0]); err != nil {
		return Value{}, err
	}
	flags, err := strconv.ParseUint(args[1], 10, 32)
	if err != nil {
		return Value{}, clientErrf("bad flags %q", args[1])
	}
	n, err := strconv.Atoi(args[2])
	if err != nil || n < 0 || n > MaxDataLen {
		return Value{}, clientErrf("bad bytes %q", args[2])
	}
	v := Value{Key: args[0], Flags: uint32(flags)}
	if len(args) == 4 {
		cas, err := strconv.ParseUint(args[3], 10, 64)
		if err != nil {
			return Value{}, clientErrf("bad cas token %q", args[3])
		}
		v.CAS = cas
	}
	data, err := readData(r, n)
	if err != nil {
		return Value{}, err
	}
	v.Data = data
	return v, nil
}
