package proto

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"unsafe"

	"pamakv/internal/bufpool"
)

// Parser is the hot-path request parser: it tokenizes command lines in
// place over the bufio.Reader's buffer, parses integer operands directly
// from the byte tokens, copies keys into a reusable per-parser buffer, and
// reads SET data blocks into pooled, slab-class-sized buffers. One Parser
// serves one connection; it is not safe for concurrent use.
//
// In steady state ReadCommand performs zero heap allocations for line
// commands (get, delete, incr, ...) and one pooled buffer acquisition for
// storage commands, returned to the pool automatically on the next
// ReadCommand (or Close).
//
// Ownership rules — the price of zero-copy:
//
//   - The returned *Command and everything it references (Name excepted —
//     verbs are canonical package-level constants) are valid only until the
//     next ReadCommand or Close call.
//   - Keys alias the parser's internal key buffer. A caller that stores a
//     key beyond the current request (cache insert, hot-cache fill) must
//     clone it first (strings.Clone); passing one to a map lookup, hash, or
//     comparison is safe.
//   - Data aliases a pooled buffer. Callers must copy the bytes they keep;
//     the buffer returns to the pool on the next ReadCommand.
//
// ReadCommand (the package function) remains the allocating reference
// implementation; the fuzz harness drives both over identical streams and
// requires agreement on every input.
type Parser struct {
	r *bufio.Reader

	cmd  Command
	keys []string // backing for cmd.Keys, reused across commands
	toks [][]byte // token views into the current line, reused

	// keybuf holds the current command's key bytes; Keys are unsafe
	// strings over it. Reset (not freed) per command — it is bounded by
	// MaxLineLen, so retaining it costs at most a few KiB per connection.
	keybuf []byte

	// linebuf is the spill buffer for lines straddling the bufio buffer
	// (only reachable with readers smaller than MaxLineLen).
	linebuf []byte

	// data is the pooled buffer holding the current command's data block,
	// nil when the command has none. Returned to the pool on the next
	// ReadCommand or Close.
	data *[]byte
}

// NewParser returns a Parser reading from r.
func NewParser(r *bufio.Reader) *Parser { return &Parser{r: r} }

// Close releases the parser's pooled resources. The last returned Command
// is invalid afterwards.
func (p *Parser) Close() { p.releaseData() }

func (p *Parser) releaseData() {
	if p.data != nil {
		bufpool.Put(p.data)
		p.data = nil
	}
	p.cmd.Data = nil
}

// Canonical verbs: matching a wire token against this vocabulary both
// validates it and yields an interned name, so cmd.Name never materializes
// a string from the wire bytes.
var verbs = [...]string{
	"get", "gets", "set", "add", "replace", "append", "prepend", "cas",
	"delete", "incr", "decr", "touch",
	"stats", "flush_all", "version", "quit",
}

// internVerb matches tok case-insensitively (ASCII) against the verb
// vocabulary.
func internVerb(tok []byte) (string, bool) {
next:
	for _, v := range verbs {
		if len(tok) != len(v) {
			continue
		}
		for i := 0; i < len(v); i++ {
			c := tok[i]
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c != v[i] {
				continue next
			}
		}
		return v, true
	}
	return "", false
}

var noreplyToken = []byte("noreply")

// ReadCommand parses the next command from the stream. io.EOF is returned
// verbatim on a cleanly closed connection. See the Parser doc for the
// lifetime of the returned Command.
func (p *Parser) ReadCommand() (*Command, error) {
	p.releaseData()
	cmd := &p.cmd
	*cmd = Command{}
	p.keys = p.keys[:0]
	p.keybuf = p.keybuf[:0]

	line, err := p.readLine()
	if err != nil {
		return nil, err
	}
	p.toks = splitTokens(line, p.toks[:0])
	if len(p.toks) == 0 {
		return nil, clientErrf("empty command")
	}
	name, known := internVerb(p.toks[0])
	if !known {
		return nil, clientErrf("unknown command %q", p.toks[0])
	}
	cmd.Name = name
	args := p.toks[1:]
	switch name {
	case "get", "gets":
		if len(args) == 0 {
			return nil, clientErrf("get requires at least one key")
		}
		for _, k := range args {
			if err := checkKey(k); err != nil {
				return nil, err
			}
		}
		for _, k := range args {
			p.keys = append(p.keys, p.internKey(k))
		}
		cmd.Keys = p.keys
	case "set", "add", "replace", "append", "prepend", "cas":
		want := 4
		if name == "cas" {
			want = 5
		}
		if len(args) != want && !(len(args) == want+1 && bytes.Equal(args[want], noreplyToken)) {
			extra := ""
			if name == "cas" {
				extra = " <cas>"
			}
			return nil, clientErrf("%s requires <key> <flags> <exptime> <bytes>%s [noreply]", name, extra)
		}
		if err := checkKey(args[0]); err != nil {
			return nil, err
		}
		p.keys = append(p.keys, p.internKey(args[0]))
		cmd.Keys = p.keys
		flags, ok := parseUintB(args[1], 32)
		if !ok {
			return nil, clientErrf("bad flags %q", args[1])
		}
		cmd.Flags = uint32(flags)
		exp, ok := parseIntB(args[2])
		if !ok {
			return nil, clientErrf("bad exptime %q", args[2])
		}
		cmd.Exptime = exp
		n, ok := parseIntB(args[3])
		if !ok || n < 0 || n > MaxDataLen {
			return nil, clientErrf("bad bytes %q", args[3])
		}
		cmd.Bytes = int(n)
		if name == "cas" {
			id, ok := parseUintB(args[4], 64)
			if !ok {
				return nil, clientErrf("bad cas token %q", args[4])
			}
			cmd.CasID = id
		}
		cmd.NoReply = len(args) == want+1
		// Past this point the line (and p.toks) is dead: readData refills
		// the bufio buffer. Everything line-derived was extracted above.
		if err := p.readData(int(n)); err != nil {
			return nil, err
		}
	case "delete":
		if len(args) != 1 && !(len(args) == 2 && bytes.Equal(args[1], noreplyToken)) {
			return nil, clientErrf("delete requires <key> [noreply]")
		}
		if err := checkKey(args[0]); err != nil {
			return nil, err
		}
		p.keys = append(p.keys, p.internKey(args[0]))
		cmd.Keys = p.keys
		cmd.NoReply = len(args) == 2
	case "incr", "decr":
		if len(args) != 2 && !(len(args) == 3 && bytes.Equal(args[2], noreplyToken)) {
			return nil, clientErrf("%s requires <key> <delta> [noreply]", name)
		}
		if err := checkKey(args[0]); err != nil {
			return nil, err
		}
		p.keys = append(p.keys, p.internKey(args[0]))
		cmd.Keys = p.keys
		d, ok := parseUintB(args[1], 64)
		if !ok {
			return nil, clientErrf("bad delta %q", args[1])
		}
		cmd.Delta = d
		cmd.NoReply = len(args) == 3
	case "touch":
		if len(args) != 2 && !(len(args) == 3 && bytes.Equal(args[2], noreplyToken)) {
			return nil, clientErrf("touch requires <key> <exptime> [noreply]")
		}
		if err := checkKey(args[0]); err != nil {
			return nil, err
		}
		p.keys = append(p.keys, p.internKey(args[0]))
		cmd.Keys = p.keys
		exp, ok := parseIntB(args[1])
		if !ok {
			return nil, clientErrf("bad exptime %q", args[1])
		}
		cmd.Exptime = exp
		cmd.NoReply = len(args) == 3
	default:
		// stats, flush_all, version, quit: no operands used.
	}
	return cmd, nil
}

// internKey copies tok into the parser's key buffer and returns a string
// view over the copy (valid until the next ReadCommand). The copy is
// mandatory even for line-only commands: the token aliases the bufio
// buffer, which the next read overwrites.
func (p *Parser) internKey(tok []byte) string {
	off := len(p.keybuf)
	p.keybuf = append(p.keybuf, tok...)
	return unsafe.String(unsafe.SliceData(p.keybuf[off:]), len(tok))
}

// readData consumes an n-byte data block plus its CRLF terminator into a
// pooled buffer owned by the parser.
func (p *Parser) readData(n int) error {
	p.data = bufpool.Get(n + 2)
	buf := *p.data
	if _, err := io.ReadFull(p.r, buf); err != nil {
		return &ClientError{Msg: fmt.Sprintf("short data block: %v", err), Err: err}
	}
	if buf[n] != '\r' || buf[n+1] != '\n' {
		return clientErrf("data block not terminated by CRLF")
	}
	p.cmd.Data = buf[:n]
	return nil
}

// readLine returns the next CRLF- (or LF-) terminated line without its
// terminator. The fast path returns a view into the bufio buffer (valid
// until the next read); lines straddling the buffer spill into a reusable
// scratch buffer. Semantics mirror the reference readLine exactly.
func (p *Parser) readLine() ([]byte, error) {
	line, spill, err := readLineFrom(p.r, p.linebuf)
	p.linebuf = spill
	return line, err
}

// readLineFrom is the in-place line reader shared by Parser and RespReader:
// the fast path is a view into r's buffer; lines straddling the buffer spill
// into spill (grown as needed and returned for reuse). Semantics mirror the
// reference readLine exactly — the differential fuzz harnesses depend on it.
func readLineFrom(r *bufio.Reader, spill []byte) (line, newSpill []byte, err error) {
	chunk, err := r.ReadSlice('\n')
	if err == nil {
		if len(chunk) > MaxLineLen+2 { // +2 allows the CRLF terminator itself
			return nil, spill, ErrLineTooLong
		}
		return trimCRLF(chunk), spill, nil
	}
	if err != bufio.ErrBufferFull {
		if err == io.EOF && len(chunk) == 0 {
			return nil, spill, io.EOF
		}
		return nil, spill, err
	}
	// Slow path: the line straddles the reader's buffer.
	line = append(spill[:0], chunk...)
	for {
		if len(line) > MaxLineLen {
			return nil, line, ErrLineTooLong
		}
		chunk, err = r.ReadSlice('\n')
		line = append(line, chunk...)
		if err == bufio.ErrBufferFull {
			continue
		}
		if err != nil {
			return nil, line, err
		}
		break
	}
	if len(line) > MaxLineLen+2 {
		return nil, line, ErrLineTooLong
	}
	return trimCRLF(line), line, nil
}

// trimCRLF strips all trailing CR and LF bytes (matching the reference
// parser's bytes.TrimRight(line, "\r\n")).
func trimCRLF(b []byte) []byte {
	for len(b) > 0 && (b[len(b)-1] == '\r' || b[len(b)-1] == '\n') {
		b = b[:len(b)-1]
	}
	return b
}

// splitTokens splits line on runs of ASCII spaces into views over line,
// appending to toks. The space byte is the protocol's only separator: a tab
// stays part of its token (and fails verb or key validation), exactly as in
// fieldsSpace.
func splitTokens(line []byte, toks [][]byte) [][]byte {
	for i := 0; i < len(line); {
		if line[i] == ' ' {
			i++
			continue
		}
		j := i
		for j < len(line) && line[j] != ' ' {
			j++
		}
		toks = append(toks, line[i:j])
		i = j
	}
	return toks
}

// parseUintB parses an unsigned base-10 integer of the given bit size from
// b, matching strconv.ParseUint(string(b), 10, bits): no sign, no empty
// token, overflow rejected.
func parseUintB(b []byte, bits int) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	max := uint64(math.MaxUint64)
	if bits < 64 {
		max = 1<<uint(bits) - 1
	}
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if n > (max-d)/10 {
			return 0, false
		}
		n = n*10 + d
	}
	return n, true
}

// parseIntB parses a signed base-10 64-bit integer from b, matching
// strconv.ParseInt(string(b), 10, 64): optional +/- sign, overflow
// rejected.
func parseIntB(b []byte) (int64, bool) {
	neg := false
	i := 0
	if len(b) > 0 && (b[0] == '+' || b[0] == '-') {
		neg = b[0] == '-'
		i = 1
	}
	if i == len(b) {
		return 0, false
	}
	cutoff := uint64(math.MaxInt64)
	if neg {
		cutoff = uint64(math.MaxInt64) + 1
	}
	var n uint64
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if n > (cutoff-d)/10 {
			return 0, false
		}
		n = n*10 + d
	}
	if neg {
		return -int64(n), true
	}
	return int64(n), true
}
