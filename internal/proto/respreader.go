package proto

import (
	"bufio"
	"fmt"
	"io"
)

// RespReader is the client-side counterpart of Parser: a pipelined response
// reader that parses status lines in place over the bufio.Reader's buffer
// and accumulates VALUE keys and bodies in a reusable arena. One RespReader
// serves one connection; it is not safe for concurrent use.
//
// In steady state Next performs zero heap allocations: line tokens are views
// into the reader's buffer, value keys and data are copied into an arena
// that is reset (not freed) per response, and the Values slice is reused.
//
// Ownership rules — the price of zero-copy:
//
//   - The returned *Resp and everything it references (keys, data, Msg,
//     stats) are valid only until the next Next call.
//   - A caller that keeps a value beyond the current response (cache fill,
//     result set) must copy the bytes first.
//
// ReadResponse remains the allocating reference implementation; the
// FuzzClientReadResponse harness drives both over identical streams and
// requires agreement on every input.
type RespReader struct {
	r *bufio.Reader

	resp   Resp
	toks   [][]byte
	values []RValue
	stats  [][2][]byte

	// arena holds the current response's value keys, bodies, stat lines,
	// and message; views into it are materialized only once the terminal
	// line has been read, so mid-parse growth cannot dangle them.
	arena []byte
	vmeta []rvalMeta
	smeta []statMeta
	msg   span

	// linebuf is the spill buffer for lines straddling the bufio buffer.
	linebuf []byte
}

// span is a half-open interval into the arena.
type span struct{ off, end int }

// rvalMeta records one VALUE block's arena intervals until views can be
// materialized safely.
type rvalMeta struct {
	key, data span
	flags     uint32
	cas       uint64
}

// statMeta records one STAT line's arena intervals.
type statMeta struct{ name, value span }

// Status identifies a response's terminal line.
type Status uint8

// Terminal statuses, in the reference parser's vocabulary. StatusNumber
// stands for a bare incr/decr result line.
const (
	StatusEnd Status = iota
	StatusStored
	StatusNotStored
	StatusExists
	StatusNotFound
	StatusDeleted
	StatusTouched
	StatusOK
	StatusError
	StatusClientError
	StatusServerError
	StatusVersion
	StatusNumber
)

var statusNames = [...]string{
	StatusEnd:         "END",
	StatusStored:      "STORED",
	StatusNotStored:   "NOT_STORED",
	StatusExists:      "EXISTS",
	StatusNotFound:    "NOT_FOUND",
	StatusDeleted:     "DELETED",
	StatusTouched:     "TOUCHED",
	StatusOK:          "OK",
	StatusError:       "ERROR",
	StatusClientError: "CLIENT_ERROR",
	StatusServerError: "SERVER_ERROR",
	StatusVersion:     "VERSION",
	StatusNumber:      "NUMBER",
}

// String returns the status's wire word ("END", "STORED", ... or "NUMBER"
// for a bare numeric line), matching Response.Status exactly.
func (s Status) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// wireStatus matches a terminal-line token against the status vocabulary.
// StatusNumber is excluded: numeric lines are recognized by parsing.
func wireStatus(tok []byte) (Status, bool) {
	for st := StatusEnd; st < StatusNumber; st++ {
		if string(tok) == statusNames[st] {
			return st, true
		}
	}
	return 0, false
}

// RValue is one VALUE block of a response, as views into the reader's arena.
type RValue struct {
	Key   []byte
	Flags uint32
	// CAS is the token from a gets reply; 0 when the block carried none.
	CAS  uint64
	Data []byte
}

// Resp is one complete server reply as RespReader parses it: the terminal
// status plus any VALUE blocks and STAT lines that preceded it. Everything
// it references is valid only until the reader's next Next call.
type Resp struct {
	Status Status
	// Msg carries the remainder of an error or VERSION line.
	Msg []byte
	// Number is the parsed result when Status == StatusNumber.
	Number uint64
	// Values collects the VALUE blocks of a get/gets reply.
	Values []RValue
	// Stats collects STAT name/value pairs of a stats reply.
	Stats [][2][]byte
}

// IsShed reports whether the response is a deliberate overload shed (see
// AppendShed) rather than a genuine server fault.
func (r *Resp) IsShed() bool {
	return r.Status == StatusServerError && string(r.Msg) == ShedMsg
}

// NewRespReader returns a RespReader reading from r.
func NewRespReader(r *bufio.Reader) *RespReader { return &RespReader{r: r} }

// Next parses one complete response from the stream: a single status line
// (STORED, DELETED, a number, ...) or a block response (VALUE/STAT lines
// terminated by END). Malformed input yields a *ClientError; a line-length
// violation yields ErrLineTooLong; io.EOF is returned verbatim on a cleanly
// closed connection — error classes and consumed bytes match ReadResponse
// exactly. See the RespReader doc for the lifetime of the returned Resp.
func (rr *RespReader) Next() (*Resp, error) {
	rr.arena = rr.arena[:0]
	rr.vmeta = rr.vmeta[:0]
	rr.smeta = rr.smeta[:0]
	rr.msg = span{}
	resp := &rr.resp
	*resp = Resp{}
	for {
		line, err := rr.readLine()
		if err != nil {
			return nil, err
		}
		rr.toks = splitTokens(line, rr.toks[:0])
		if len(rr.toks) == 0 {
			return nil, clientErrf("empty response line")
		}
		tok := rr.toks[0]
		switch {
		case string(tok) == "VALUE":
			if len(rr.vmeta) >= maxResponseBlocks {
				return nil, clientErrf("response exceeds %d VALUE blocks", maxResponseBlocks)
			}
			if err := rr.parseValue(rr.toks[1:]); err != nil {
				return nil, err
			}
		case string(tok) == "STAT":
			if len(rr.smeta) >= maxResponseBlocks {
				return nil, clientErrf("response exceeds %d STAT lines", maxResponseBlocks)
			}
			if len(rr.toks) < 3 {
				return nil, clientErrf("STAT line needs a name and a value")
			}
			rr.smeta = append(rr.smeta, statMeta{
				name:  rr.intern(rr.toks[1]),
				value: rr.join(rr.toks[2:]),
			})
		default:
			st, known := wireStatus(tok)
			switch {
			case known && (st == StatusClientError || st == StatusServerError || st == StatusVersion):
				resp.Status = st
				rr.msg = rr.join(rr.toks[1:])
				return rr.finish(), nil
			case known:
				resp.Status = st
				return rr.finish(), nil
			default:
				if n, ok := parseUintB(tok, 64); ok && len(rr.toks) == 1 {
					resp.Status = StatusNumber
					resp.Number = n
					return rr.finish(), nil
				}
				return nil, clientErrf("unparseable response line %q", line)
			}
		}
	}
}

// parseValue parses the operands of a VALUE line ("<key> <flags> <bytes>
// [<cas>]") and consumes the data block into the arena. Validation order and
// consumed bytes mirror parseValueBlock exactly.
func (rr *RespReader) parseValue(args [][]byte) error {
	if len(args) != 3 && len(args) != 4 {
		return clientErrf("VALUE line needs <key> <flags> <bytes> [<cas>]")
	}
	if err := checkKey(args[0]); err != nil {
		return err
	}
	flags, ok := parseUintB(args[1], 32)
	if !ok {
		return clientErrf("bad flags %q", args[1])
	}
	n, ok := parseIntB(args[2])
	if !ok || n < 0 || n > MaxDataLen {
		return clientErrf("bad bytes %q", args[2])
	}
	var cas uint64
	if len(args) == 4 {
		cas, ok = parseUintB(args[3], 64)
		if !ok {
			return clientErrf("bad cas token %q", args[3])
		}
	}
	// The key must be copied before the data read invalidates the line view.
	key := rr.intern(args[0])
	// Read the data block plus CRLF straight into the arena, then trim the
	// terminator back off.
	off := len(rr.arena)
	need := int(n) + 2
	rr.arena = grow(rr.arena, need)
	if _, err := io.ReadFull(rr.r, rr.arena[off:]); err != nil {
		return &ClientError{Msg: fmt.Sprintf("short data block: %v", err), Err: err}
	}
	if rr.arena[off+int(n)] != '\r' || rr.arena[off+int(n)+1] != '\n' {
		return clientErrf("data block not terminated by CRLF")
	}
	rr.arena = rr.arena[:off+int(n)]
	rr.vmeta = append(rr.vmeta, rvalMeta{
		key:   key,
		data:  span{off, off + int(n)},
		flags: uint32(flags),
		cas:   cas,
	})
	return nil
}

// intern copies tok into the arena and returns its interval.
func (rr *RespReader) intern(tok []byte) span {
	off := len(rr.arena)
	rr.arena = append(rr.arena, tok...)
	return span{off, len(rr.arena)}
}

// join copies toks into the arena separated by single spaces (matching
// strings.Join(fields, " ") in the reference parser) and returns the
// interval.
func (rr *RespReader) join(toks [][]byte) span {
	off := len(rr.arena)
	for i, tok := range toks {
		if i > 0 {
			rr.arena = append(rr.arena, ' ')
		}
		rr.arena = append(rr.arena, tok...)
	}
	return span{off, len(rr.arena)}
}

// grow extends b by n bytes, reallocating at most once.
func grow(b []byte, n int) []byte {
	if cap(b)-len(b) < n {
		nb := make([]byte, len(b), len(b)+n)
		copy(nb, b)
		b = nb
	}
	return b[:len(b)+n]
}

// finish materializes the arena views once the response is complete — the
// arena no longer grows, so the slices stay valid until the next Next call.
func (rr *RespReader) finish() *Resp {
	resp := &rr.resp
	resp.Msg = rr.arena[rr.msg.off:rr.msg.end]
	if len(rr.vmeta) > 0 {
		rr.values = rr.values[:0]
		for _, m := range rr.vmeta {
			rr.values = append(rr.values, RValue{
				Key:   rr.arena[m.key.off:m.key.end],
				Flags: m.flags,
				CAS:   m.cas,
				Data:  rr.arena[m.data.off:m.data.end],
			})
		}
		resp.Values = rr.values
	}
	if len(rr.smeta) > 0 {
		rr.stats = rr.stats[:0]
		for _, m := range rr.smeta {
			rr.stats = append(rr.stats, [2][]byte{
				rr.arena[m.name.off:m.name.end],
				rr.arena[m.value.off:m.value.end],
			})
		}
		resp.Stats = rr.stats
	}
	return resp
}

// readLine reads one line via the shared in-place line reader.
func (rr *RespReader) readLine() ([]byte, error) {
	line, spill, err := readLineFrom(rr.r, rr.linebuf)
	rr.linebuf = spill
	return line, err
}
