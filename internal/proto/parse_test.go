package proto

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func newTestParser(input string) *Parser {
	return NewParser(bufio.NewReader(strings.NewReader(input)))
}

// TestParserPipelinedSequence drives one parser over a pipelined stream
// mixing every command family and checks each parsed command in order.
func TestParserPipelinedSequence(t *testing.T) {
	p := newTestParser("get a\r\n" +
		"gets a b c\r\n" +
		"set k 7 30 5\r\nhello\r\n" +
		"cas k 0 0 2 42 noreply\r\nhi\r\n" +
		"delete k noreply\r\n" +
		"incr n 18446744073709551615\r\n" +
		"decr n 2\r\n" +
		"touch k -1\r\n" +
		"version\r\n" +
		"quit\r\n")
	defer p.Close()

	steps := []func(c *Command){
		func(c *Command) {
			if c.Name != "get" || len(c.Keys) != 1 || c.Keys[0] != "a" {
				t.Fatalf("get: %+v", c)
			}
		},
		func(c *Command) {
			if c.Name != "gets" || len(c.Keys) != 3 || c.Keys[0] != "a" || c.Keys[1] != "b" || c.Keys[2] != "c" {
				t.Fatalf("gets: %+v", c)
			}
		},
		func(c *Command) {
			if c.Name != "set" || c.Keys[0] != "k" || c.Flags != 7 || c.Exptime != 30 ||
				c.Bytes != 5 || string(c.Data) != "hello" || c.NoReply {
				t.Fatalf("set: %+v", c)
			}
		},
		func(c *Command) {
			if c.Name != "cas" || c.CasID != 42 || string(c.Data) != "hi" || !c.NoReply {
				t.Fatalf("cas: %+v", c)
			}
		},
		func(c *Command) {
			if c.Name != "delete" || c.Keys[0] != "k" || !c.NoReply {
				t.Fatalf("delete: %+v", c)
			}
		},
		func(c *Command) {
			if c.Name != "incr" || c.Delta != 18446744073709551615 {
				t.Fatalf("incr: %+v", c)
			}
		},
		func(c *Command) {
			if c.Name != "decr" || c.Delta != 2 {
				t.Fatalf("decr: %+v", c)
			}
		},
		func(c *Command) {
			if c.Name != "touch" || c.Exptime != -1 {
				t.Fatalf("touch: %+v", c)
			}
		},
		func(c *Command) {
			if c.Name != "version" {
				t.Fatalf("version: %+v", c)
			}
		},
		func(c *Command) {
			if c.Name != "quit" {
				t.Fatalf("quit: %+v", c)
			}
		},
	}
	for i, check := range steps {
		cmd, err := p.ReadCommand()
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		check(cmd)
	}
	if _, err := p.ReadCommand(); err != io.EOF {
		t.Fatalf("want io.EOF at end of stream, got %v", err)
	}
}

// TestParserTokenizing pins the tokenizer's byte-level behavior: space runs
// collapse, tabs are token bytes (and fail key validation), trailing CRs are
// stripped with the line terminator, and verbs match case-insensitively.
func TestParserTokenizing(t *testing.T) {
	cases := []struct {
		in      string
		name    string
		keys    []string
		wantErr bool
	}{
		{in: "get   a   b\r\n", name: "get", keys: []string{"a", "b"}},
		{in: "  get a\r\n", name: "get", keys: []string{"a"}},
		{in: "GET a\r\n", name: "get", keys: []string{"a"}},
		{in: "GeT a\r\n", name: "get", keys: []string{"a"}},
		{in: "get a\n", name: "get", keys: []string{"a"}},
		{in: "get a\r\r\n", name: "get", keys: []string{"a"}}, // trailing CRs trimmed
		{in: "get\ta\r\n", wantErr: true},                     // tab is not a separator
		{in: "get a\tb\r\n", wantErr: true},                   // tab inside a key
		{in: "get " + strings.Repeat("k", MaxKeyLen) + "\r\n", name: "get",
			keys: []string{strings.Repeat("k", MaxKeyLen)}},
		{in: "get " + strings.Repeat("k", MaxKeyLen+1) + "\r\n", wantErr: true},
		{in: "\r\n", wantErr: true},
		{in: "set k 99999999999 0 2\r\nhi\r\n", wantErr: true}, // flags overflow uint32
	}
	for _, tc := range cases {
		p := newTestParser(tc.in)
		cmd, err := p.ReadCommand()
		if tc.wantErr {
			var ce *ClientError
			if !errors.As(err, &ce) {
				t.Fatalf("%q: want ClientError, got cmd=%+v err=%v", tc.in, cmd, err)
			}
			p.Close()
			continue
		}
		if err != nil {
			t.Fatalf("%q: %v", tc.in, err)
		}
		if cmd.Name != tc.name || len(cmd.Keys) != len(tc.keys) {
			t.Fatalf("%q: got %+v", tc.in, cmd)
		}
		for i := range tc.keys {
			if cmd.Keys[i] != tc.keys[i] {
				t.Fatalf("%q: key %d = %q, want %q", tc.in, i, cmd.Keys[i], tc.keys[i])
			}
		}
		p.Close()
	}
}

// TestParserCommandLifetime verifies the documented ownership rule: a
// command's Keys and Data are valid until the next ReadCommand, and the next
// command does not inherit stale state from the previous one.
func TestParserCommandLifetime(t *testing.T) {
	p := newTestParser("set k1 1 2 3\r\nabc\r\nget other\r\n")
	defer p.Close()
	c1, err := p.ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	key1 := strings.Clone(c1.Keys[0])
	data1 := bytes.Clone(c1.Data)
	c2, err := p.ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	if c2.Name != "get" || c2.Keys[0] != "other" {
		t.Fatalf("second command: %+v", c2)
	}
	if c2.Data != nil || c2.Bytes != 0 || c2.Flags != 0 || c2.NoReply {
		t.Fatalf("second command inherited storage state: %+v", c2)
	}
	if key1 != "k1" || string(data1) != "abc" {
		t.Fatalf("first command's cloned operands corrupted: %q %q", key1, data1)
	}
}

// TestParserLineSpill exercises the slow path where a line straddles the
// bufio buffer: a tiny reader forces the spill buffer on a multi-key get.
func TestParserLineSpill(t *testing.T) {
	keys := make([]string, 40)
	for i := range keys {
		keys[i] = strings.Repeat("k", 100)
	}
	line := "get " + strings.Join(keys, " ") + "\r\n" // ~4 KiB line
	p := NewParser(bufio.NewReaderSize(strings.NewReader(line+"get a\r\n"), 16))
	defer p.Close()
	cmd, err := p.ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cmd.Keys) != len(keys) {
		t.Fatalf("got %d keys, want %d", len(cmd.Keys), len(keys))
	}
	for _, k := range cmd.Keys {
		if k != keys[0] {
			t.Fatalf("corrupted key %q", k)
		}
	}
	cmd, err = p.ReadCommand()
	if err != nil || cmd.Keys[0] != "a" {
		t.Fatalf("command after spill: %+v, %v", cmd, err)
	}
}

// TestParserLineTooLongBoundary pins the exact cutoff: a command line of
// MaxLineLen bytes parses; one byte more is ErrLineTooLong. Padding with
// spaces keeps the key legal while controlling the line length precisely.
func TestParserLineTooLongBoundary(t *testing.T) {
	build := func(lineLen int) string {
		key := strings.Repeat("k", MaxKeyLen)
		pad := lineLen - len("get ") - len(key)
		return "get " + strings.Repeat(" ", pad) + key + "\r\n"
	}
	p := newTestParser(build(MaxLineLen))
	cmd, err := p.ReadCommand()
	if err != nil {
		t.Fatalf("line of exactly MaxLineLen: %v", err)
	}
	if len(cmd.Keys) != 1 || len(cmd.Keys[0]) != MaxKeyLen {
		t.Fatalf("boundary line parsed wrong: %+v", cmd)
	}
	p.Close()

	p = newTestParser(build(MaxLineLen + 1))
	if _, err := p.ReadCommand(); !errors.Is(err, ErrLineTooLong) {
		t.Fatalf("line of MaxLineLen+1: want ErrLineTooLong, got %v", err)
	}
	p.Close()
}

// TestParserGetAllocs gates the tentpole claim at the parser layer: a warm
// parser reads line commands with zero heap allocations per command.
func TestParserGetAllocs(t *testing.T) {
	stream := []byte(strings.Repeat("get somekey012345\r\ngets a b\r\nincr ctr 7\r\ndelete d noreply\r\n", 25))
	src := bytes.NewReader(stream)
	br := bufio.NewReaderSize(src, 1<<14)
	p := NewParser(br)
	defer p.Close()
	allocs := testing.AllocsPerRun(50, func() {
		src.Reset(stream)
		br.Reset(src)
		for {
			if _, err := p.ReadCommand(); err != nil {
				if err == io.EOF {
					return
				}
				t.Fatal(err)
			}
		}
	})
	// 100 commands per run; anything above rounding noise means a per-command
	// allocation crept in.
	if allocs > 0.5 {
		t.Fatalf("line commands allocate %.2f objects per 100-command run, want 0", allocs)
	}
}

// TestParserSetAllocs gates the storage path: a warm parser reads SETs with
// only pooled buffer traffic — no net heap growth per command. A stray GC can
// empty the pool mid-run, so the gate tolerates a refill, not a per-command
// allocation.
func TestParserSetAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector; the pooled-buffer gate cannot hold")
	}
	stream := []byte(strings.Repeat("set k 0 0 100\r\n"+strings.Repeat("v", 100)+"\r\n", 50))
	src := bytes.NewReader(stream)
	br := bufio.NewReaderSize(src, 1<<14)
	p := NewParser(br)
	defer p.Close()
	allocs := testing.AllocsPerRun(50, func() {
		src.Reset(stream)
		br.Reset(src)
		for {
			if _, err := p.ReadCommand(); err != nil {
				if err == io.EOF {
					return
				}
				t.Fatal(err)
			}
		}
	})
	if allocs > 2 {
		t.Fatalf("SETs allocate %.2f objects per 50-command run, want ~0 (pool refills only)", allocs)
	}
}
