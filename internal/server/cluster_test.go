package server

// End-to-end cluster tests: several real servers on real sockets, routing
// to each other through the peer tier. These are the integration proof for
// the cluster subsystem — ownership is exclusive, forwarding works for
// reads and writes (CAS included), a dead node's keys reroute to survivors
// without losing the survivors' data, concurrent remote reads collapse to
// one wire request, and a dead owner degrades to a local backend fetch.

import (
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"pamakv/internal/backend"
	"pamakv/internal/cache"
	"pamakv/internal/cluster"
	"pamakv/internal/core"
	"pamakv/internal/kv"
	"pamakv/internal/penalty"
)

// cnode is one in-process cluster member.
type cnode struct {
	srv   *Server
	peers *cluster.Peers
	addr  string
}

// startCluster boots n servers on loopback listeners that all know each
// other. customize (optional) edits each node's Options after the cluster
// wiring is in place (the Cluster field is already set).
func startCluster(t *testing.T, n int, ccfg cluster.Config, customize func(i int, o *Options)) []*cnode {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*cnode, n)
	for i := range nodes {
		cfg := ccfg
		cfg.Self = addrs[i]
		cfg.Members = addrs
		p, err := cluster.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c, err := cache.New(cache.Config{
			Geometry:    kv.Geometry{SlabSize: 1 << 16, Base: 64, NumClasses: 8},
			CacheBytes:  1 << 22,
			StoreValues: true,
			WindowLen:   10_000,
		}, core.New(core.DefaultConfig()))
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{Cluster: p}
		if customize != nil {
			customize(i, &opts)
		}
		srv := New(c, opts)
		go srv.Serve(lns[i])
		nodes[i] = &cnode{srv: srv, peers: p, addr: addrs[i]}
		t.Cleanup(func() { srv.Shutdown(); p.Close() })
	}
	return nodes
}

// ownerIndex returns which node owns key.
func ownerIndex(t *testing.T, nodes []*cnode, key string) int {
	t.Helper()
	owner := nodes[0].peers.Owner(key)
	for i, n := range nodes {
		if n.addr == owner {
			return i
		}
	}
	t.Fatalf("owner %q of %q is not a cluster member", owner, key)
	return -1
}

// keyOwnedBy finds a key that the given node owns.
func keyOwnedBy(t *testing.T, nodes []*cnode, idx int, tag string) string {
	t.Helper()
	for i := 0; i < 100_000; i++ {
		k := fmt.Sprintf("%s-%d", tag, i)
		if nodes[0].peers.Owner(k) == nodes[idx].addr {
			return k
		}
	}
	t.Fatalf("no key owned by node %d found", idx)
	return ""
}

// getValue runs one get and returns (value, true) or ("", false) on END.
// The body is read by its declared length (backend-synthesized values are
// binary and may contain newlines).
func getValue(t *testing.T, cl *client, key string) (string, bool) {
	t.Helper()
	cl.send(t, "get "+key+"\r\n")
	l := cl.line(t)
	if l == "END" {
		return "", false
	}
	fields := strings.Fields(l) // VALUE key flags len
	if len(fields) != 4 || fields[0] != "VALUE" || fields[1] != key {
		t.Fatalf("get %s -> %q", key, l)
	}
	n, err := strconv.Atoi(fields[3])
	if err != nil {
		t.Fatalf("get %s header length %q", key, fields[3])
	}
	buf := make([]byte, n+2) // body + CRLF
	if _, err := io.ReadFull(cl.r, buf); err != nil {
		t.Fatalf("get %s body: %v", key, err)
	}
	if got := cl.line(t); got != "END" {
		t.Fatalf("get %s end -> %q", key, got)
	}
	return string(buf[:n]), true
}

// TestClusterForwardingSingleOwner: writes and reads through arbitrary
// nodes land on (and only on) each key's owner; every node serves every
// key; CAS round-trips through the relay.
func TestClusterForwardingSingleOwner(t *testing.T) {
	nodes := startCluster(t, 3, cluster.Config{VNodes: 64}, nil)
	clients := make([]*client, len(nodes))
	for i, n := range nodes {
		clients[i] = dial(t, n.addr)
	}

	const keys = 60
	for i := 0; i < keys; i++ {
		key, val := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
		cl := clients[i%len(clients)] // many of these are not the owner
		cl.send(t, fmt.Sprintf("set %s 0 0 %d\r\n%s\r\n", key, len(val), val))
		if got := cl.line(t); got != "STORED" {
			t.Fatalf("set %s via node %d -> %q", key, i%len(clients), got)
		}
	}

	// Every key is readable from every node, owner or not.
	for i := 0; i < keys; i++ {
		key, want := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
		for ni, cl := range clients {
			val, ok := getValue(t, cl, key)
			if !ok || val != want {
				t.Fatalf("get %s via node %d = (%q, %v), want %q", key, ni, val, ok, want)
			}
		}
	}

	// Single-owner placement: each key is resident on exactly one engine
	// (the hot cache is a separate structure and does not count here).
	total := 0
	for _, n := range nodes {
		items := n.srv.c.Items()
		if items == 0 {
			t.Error("one node owns no keys (distribution collapsed)")
		}
		total += items
	}
	if total != keys {
		t.Fatalf("engines hold %d items, want exactly %d (one owner per key)", total, keys)
	}
	var forwards uint64
	for _, n := range nodes {
		forwards += n.srv.Stats().PeerForwards
	}
	if forwards == 0 {
		t.Fatal("no request was forwarded")
	}

	// CAS through the relay: gets via a non-owner carries the owner's
	// token; cas with it succeeds once and only once.
	key := keyOwnedBy(t, nodes, 0, "cas")
	other := clients[1]
	other.send(t, "set "+key+" 0 0 1\r\na\r\n")
	if got := other.line(t); got != "STORED" {
		t.Fatalf("cas setup -> %q", got)
	}
	other.send(t, "gets "+key+"\r\n")
	header := other.line(t)
	fields := strings.Fields(header) // VALUE key flags len cas
	if len(fields) != 5 {
		t.Fatalf("gets header -> %q", header)
	}
	other.line(t) // body
	other.line(t) // END
	cas := fields[4]
	third := clients[2]
	third.send(t, "cas "+key+" 0 0 1 "+cas+"\r\nb\r\n")
	if got := third.line(t); got != "STORED" {
		t.Fatalf("cas with fresh token -> %q", got)
	}
	third.send(t, "cas "+key+" 0 0 1 "+cas+"\r\nc\r\n")
	if got := third.line(t); got != "EXISTS" {
		t.Fatalf("cas with stale token -> %q", got)
	}
}

// TestClusterHotCacheAbsorbsRepeatReads: a non-owner's second plain GET of
// a remote key is served locally from the hot-item mini-cache, and a write
// through the same node invalidates the copy.
func TestClusterHotCacheAbsorbsRepeatReads(t *testing.T) {
	nodes := startCluster(t, 2, cluster.Config{VNodes: 64}, nil)
	key := keyOwnedBy(t, nodes, 1, "hot")
	cl := dial(t, nodes[0].addr) // non-owner

	cl.send(t, "set "+key+" 0 0 1\r\nx\r\n")
	if got := cl.line(t); got != "STORED" {
		t.Fatalf("set -> %q", got)
	}
	for i := 0; i < 3; i++ {
		if val, ok := getValue(t, cl, key); !ok || val != "x" {
			t.Fatalf("read %d = (%q, %v)", i, val, ok)
		}
	}
	st := nodes[0].srv.Stats()
	if st.HotHits < 2 {
		t.Fatalf("HotHits = %d after 3 reads, want >= 2", st.HotHits)
	}
	// A write through this node must drop the local copy: the next read
	// goes back to the owner and sees the new value immediately (not
	// after the TTL).
	cl.send(t, "set "+key+" 0 0 1\r\ny\r\n")
	if got := cl.line(t); got != "STORED" {
		t.Fatalf("overwrite -> %q", got)
	}
	if val, ok := getValue(t, cl, key); !ok || val != "y" {
		t.Fatalf("read after overwrite = (%q, %v), want \"y\"", val, ok)
	}
}

// TestClusterNodeFailureReroutes is the kill-a-node drill: after a member
// dies mid-run and the survivors drop it from the membership, keys reroute
// to the survivors, no write owned by a survivor is lost, and writes keep
// succeeding.
func TestClusterNodeFailureReroutes(t *testing.T) {
	// Hot cache off: the assertion "a dead owner's keys now miss" must
	// not be masked by a surviving replica in a mini-cache.
	nodes := startCluster(t, 3, cluster.Config{VNodes: 64}, func(i int, o *Options) {
		o.HotCacheBytes = -1
	})
	clA, clB := dial(t, nodes[0].addr), dial(t, nodes[1].addr)

	const keys = 90
	owners := make([]int, keys)
	for i := 0; i < keys; i++ {
		key, val := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
		owners[i] = ownerIndex(t, nodes, key)
		cl := clA
		if i%2 == 1 {
			cl = clB
		}
		cl.send(t, fmt.Sprintf("set %s 0 0 %d\r\n%s\r\n", key, len(val), val))
		if got := cl.line(t); got != "STORED" {
			t.Fatalf("set %s -> %q", key, got)
		}
	}

	// Keep read traffic flowing across the kill, as a live workload
	// would; replies stay well-formed throughout (values or END).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl := dial(t, nodes[0].addr)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < 10; i++ {
				getValue(t, cl, fmt.Sprintf("k%d", i))
			}
		}
	}()

	// Node 2 dies; the survivors drop it.
	nodes[2].srv.Shutdown()
	survivors := []string{nodes[0].addr, nodes[1].addr}
	if err := nodes[0].peers.SetMembers(survivors); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].peers.SetMembers(survivors); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	for i := 0; i < keys; i++ {
		key, want := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
		if o := nodes[0].peers.Owner(key); o != nodes[0].addr && o != nodes[1].addr {
			t.Fatalf("key %s still routed to the dead node", key)
		}
		val, ok := getValue(t, clA, key)
		switch owners[i] {
		case 0, 1:
			// The write went to a surviving owner: it must not be lost.
			if !ok || val != want {
				t.Fatalf("survivor-owned key %s = (%q, %v), want %q", key, val, ok, want)
			}
		case 2:
			// The owner died with the data: an honest miss, never a
			// wrong value.
			if ok {
				t.Fatalf("dead-owned key %s returned %q after reroute", key, val)
			}
		}
	}

	// The rerouted arcs spread over both survivors, and writes to them
	// succeed.
	moved := [2]int{}
	for i := 0; i < keys; i++ {
		if owners[i] != 2 {
			continue
		}
		key := fmt.Sprintf("k%d", i)
		ni := ownerIndex(t, nodes[:2], key)
		moved[ni]++
		clB.send(t, "set "+key+" 0 0 2\r\nnv\r\n")
		if got := clB.line(t); got != "STORED" {
			t.Fatalf("post-failure set %s -> %q", key, got)
		}
		if val, ok := getValue(t, clA, key); !ok || val != "nv" {
			t.Fatalf("post-failure get %s = (%q, %v)", key, val, ok)
		}
	}
	if moved[0] == 0 || moved[1] == 0 {
		t.Fatalf("dead node's keys all moved to one survivor: %v", moved)
	}
}

// TestClusterSingleflightCollapsesPeerReads: 64 connections racing a GET of
// one remote key put exactly one request on the wire and cost the owner
// exactly one backend fetch.
func TestClusterSingleflightCollapsesPeerReads(t *testing.T) {
	// The owner's backend sleeps 250ms per fetch (real-time scale 1.0),
	// holding the flight open long enough for every racer to coalesce.
	slow := backend.NewRealTime(penalty.Uniform(0.25), nil, 1.0)
	nodes := startCluster(t, 2, cluster.Config{VNodes: 64}, func(i int, o *Options) {
		if i == 1 {
			o.Backend = slow
		}
	})
	key := keyOwnedBy(t, nodes, 1, "flight")

	const racers = 64
	clients := make([]*client, racers)
	for i := range clients {
		clients[i] = dial(t, nodes[0].addr)
	}
	start := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(racers)
	for _, cl := range clients {
		go func() {
			defer wg.Done()
			<-start
			if val, ok := getValue(t, cl, key); !ok || len(val) != 100 {
				t.Errorf("racer got (%q, %v)", val, ok)
			}
		}()
	}
	close(start)
	wg.Wait()

	if got := slow.Fetches(); got != 1 {
		t.Fatalf("%d concurrent remote GETs cost %d backend fetches, want 1", racers, got)
	}
	snap := nodes[0].peers.Snapshots()[nodes[1].addr]
	if snap.Requests != 1 {
		t.Fatalf("%d concurrent remote GETs put %d requests on the wire, want 1", racers, snap.Requests)
	}
	if st := nodes[0].srv.Stats(); st.PeerHits == 0 {
		t.Fatal("no peer hit recorded")
	}
}

// TestClusterFallbackToLocalBackend: when the owner is unreachable, a GET
// degrades to a local backend fetch instead of a miss.
func TestClusterFallbackToLocalBackend(t *testing.T) {
	// A member that is already gone: reserve a port, then close it.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	store := backend.New(penalty.Uniform(0.001), nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p, err := cluster.New(cluster.Config{
		Self:    ln.Addr().String(),
		Members: []string{ln.Addr().String(), deadAddr},
		VNodes:  64,
		Client:  cluster.ClientOptions{Retries: -1, DialTimeout: 200 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := cache.New(cache.Config{
		Geometry:    kv.Geometry{SlabSize: 1 << 16, Base: 64, NumClasses: 8},
		CacheBytes:  1 << 22,
		StoreValues: true,
		WindowLen:   10_000,
	}, core.New(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(c, Options{Cluster: p, Backend: store})
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Shutdown(); p.Close() })
	nodes := []*cnode{{srv: srv, peers: p, addr: ln.Addr().String()}, {peers: p, addr: deadAddr}}

	key := keyOwnedBy(t, nodes, 1, "fb")
	cl := dial(t, nodes[0].addr)
	val, ok := getValue(t, cl, key)
	if !ok || len(val) != 100 {
		t.Fatalf("degraded get = (%d bytes, %v), want the 100-byte backend value", len(val), ok)
	}
	st := srv.Stats()
	if st.PeerFallbacks != 1 || st.PeerErrors == 0 {
		t.Fatalf("fallbacks=%d errors=%d, want 1 and >0", st.PeerFallbacks, st.PeerErrors)
	}
	if store.Fetches() == 0 {
		t.Fatal("backend was never consulted")
	}
}

// TestClusterAdminExposure: /metrics carries the per-peer labelled series
// and /statsz the cluster document.
func TestClusterAdminExposure(t *testing.T) {
	nodes := startCluster(t, 2, cluster.Config{VNodes: 64}, nil)
	key := keyOwnedBy(t, nodes, 1, "adm")
	cl := dial(t, nodes[0].addr)
	cl.send(t, "set "+key+" 0 0 1\r\nz\r\n")
	if got := cl.line(t); got != "STORED" {
		t.Fatalf("set -> %q", got)
	}
	getValue(t, cl, key)

	admin := NewAdmin(nodes[0].srv, 0)
	rec := httptest.NewRecorder()
	admin.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"pamakv_cluster_forwards_total",
		"pamakv_cluster_peer_hits_total",
		`pamakv_peer_requests_total{peer="` + nodes[1].addr + `"}`,
		`pamakv_peer_breaker_open{peer="` + nodes[1].addr + `"} 0`,
		`pamakv_peer_request_seconds_count{peer="` + nodes[1].addr + `"}`,
		"pamakv_hot_cache_bytes",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	rec = httptest.NewRecorder()
	admin.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/statsz", nil))
	sbody := rec.Body.String()
	for _, want := range []string{
		`"cluster"`,
		`"self": "` + nodes[0].addr + `"`,
		`"` + nodes[1].addr + `"`,
		`"hot_cache"`,
	} {
		if !strings.Contains(sbody, want) {
			t.Errorf("/statsz missing %q", want)
		}
	}
}
