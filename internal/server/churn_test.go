package server

// Churn-storm acceptance suite: live multi-node clusters with runtime
// membership managers, exercised through real sockets while members
// join, drain, and die under load. These are the robustness gates the
// membership tier ships behind:
//
//   - joining a node under storm load loses no acked write, and with
//     warm handoff the hit-ratio dip stays within 25% of steady state
//     (no backend is configured, so a cold moved key is an honest miss
//     — the dip measures exactly what the handoff is for);
//   - a graceful drain streams every resident out before the node goes;
//   - a killed node is auto-evicted by its peers' probes and the
//     survivors converge without serving wrong values.

import (
	"fmt"
	"net"
	"strconv"
	"sync"
	"testing"
	"time"

	"pamakv/internal/cache"
	"pamakv/internal/cluster"
	"pamakv/internal/core"
	"pamakv/internal/kv"
	"pamakv/internal/membership"
)

// churnNode is one cluster member with a live membership manager.
type churnNode struct {
	srv   *Server
	peers *cluster.Peers
	mgr   *membership.Manager
	addr  string
}

// startChurnNode boots one server on ln with a membership manager.
// mcfg.Self and mcfg.Peers are filled in here.
func startChurnNode(t *testing.T, ln net.Listener, members []string, mcfg membership.Config) *churnNode {
	t.Helper()
	addr := ln.Addr().String()
	p, err := cluster.New(cluster.Config{Self: addr, Members: members, VNodes: 64})
	if err != nil {
		t.Fatal(err)
	}
	c, err := cache.New(cache.Config{
		Geometry:    kv.Geometry{SlabSize: 1 << 16, Base: 64, NumClasses: 8},
		CacheBytes:  1 << 22,
		StoreValues: true,
		WindowLen:   10_000,
	}, core.New(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	mcfg.Self = addr
	mcfg.Peers = p
	mgr, err := membership.New(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	// Hot cache off: the hit-ratio gates must measure engine residency,
	// not a stale mini-cache replica of a moved key.
	srv := New(c, Options{Cluster: p, Membership: mgr, HotCacheBytes: -1})
	go srv.Serve(ln)
	mgr.Start()
	t.Cleanup(func() { mgr.Stop(); srv.Shutdown(); p.Close() })
	return &churnNode{srv: srv, peers: p, mgr: mgr, addr: addr}
}

// startChurnCluster boots n nodes that all know each other, with a
// manager per node configured by mcfg.
func startChurnCluster(t *testing.T, n int, mcfg membership.Config) []*churnNode {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*churnNode, n)
	for i := range nodes {
		nodes[i] = startChurnNode(t, lns[i], addrs, mcfg)
	}
	return nodes
}

// waitConverged polls until every manager reports the same epoch and a
// view of want members.
func waitConverged(t *testing.T, mgrs []*membership.Manager, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		epochs := make(map[uint64]bool)
		ok := true
		for _, m := range mgrs {
			e, members := m.View()
			epochs[e] = true
			if len(members) != want {
				ok = false
			}
		}
		if ok && len(epochs) == 1 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	for i, m := range mgrs {
		e, members := m.View()
		t.Logf("manager %d: epoch %d members %v", i, e, members)
	}
	t.Fatalf("managers never converged on a %d-member view", want)
}

// waitHandoffDrained polls until no manager has an active handoff.
func waitHandoffDrained(t *testing.T, mgrs []*membership.Manager, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		active := false
		for _, m := range mgrs {
			if m.Stats().Handoff.Active {
				active = true
			}
		}
		if !active {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("handoff still active at deadline")
}

// readPass reads every key once, returning hit/miss counts, per-read
// latencies, and the observed values.
func readPass(t *testing.T, cl *client, keys []string) (hits, misses int, lats []time.Duration, vals map[string]string) {
	t.Helper()
	vals = make(map[string]string, len(keys))
	for _, k := range keys {
		start := time.Now()
		v, ok := getValue(t, cl, k)
		lats = append(lats, time.Since(start))
		if ok {
			hits++
			vals[k] = v
		} else {
			misses++
		}
	}
	return
}

// ackTracker records, per key, the last acknowledged write sequence and
// the highest sequence ever sent. A read is consistent iff its sequence
// is within [lastAcked, maxSent]: nothing acked may be lost, and nothing
// never-written may appear.
type ackTracker struct {
	mu    sync.Mutex
	acked map[string]int
	sent  map[string]int
}

func newAckTracker() *ackTracker {
	return &ackTracker{acked: map[string]int{}, sent: map[string]int{}}
}

func (a *ackTracker) sending(key string, seq int) {
	a.mu.Lock()
	a.sent[key] = seq
	a.mu.Unlock()
}

func (a *ackTracker) ack(key string, seq int) {
	a.mu.Lock()
	a.acked[key] = seq
	a.mu.Unlock()
}

// check verifies one observed value against the ack window.
func (a *ackTracker) check(t *testing.T, key, val string) {
	t.Helper()
	seq, err := strconv.Atoi(val)
	if err != nil {
		t.Fatalf("key %s holds non-sequence value %q", key, val)
	}
	a.mu.Lock()
	lastAcked, maxSent := a.acked[key], a.sent[key]
	a.mu.Unlock()
	if seq < lastAcked {
		t.Errorf("key %s = seq %d, but seq %d was acked: acked write lost", key, seq, lastAcked)
	}
	if seq > maxSent {
		t.Errorf("key %s = seq %d, but only %d were ever sent", key, seq, maxSent)
	}
}

// churnKeys returns the acceptance workload's key set.
func churnKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("churn-%04d", i)
	}
	return keys
}

// seedKeys writes seq 0 to every key through cl and records the acks.
func seedKeys(t *testing.T, cl *client, keys []string, acks *ackTracker) {
	t.Helper()
	for _, k := range keys {
		acks.sending(k, 0)
		cl.send(t, "set "+k+" 0 0 1\r\n0\r\n")
		if got := cl.line(t); got != "STORED" {
			t.Fatalf("seed %s -> %q", k, got)
		}
		acks.ack(k, 0)
	}
}

// stormWriter keeps rewriting keys round-robin with increasing
// sequences until stop closes, recording every ack.
func stormWriter(t *testing.T, addr string, keys []string, acks *ackTracker, stop chan struct{}, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl := dial(t, addr)
		seq := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			seq++
			k := keys[seq%len(keys)]
			body := strconv.Itoa(seq)
			acks.sending(k, seq)
			cl.send(t, fmt.Sprintf("set %s 0 0 %d\r\n%s\r\n", k, len(body), body))
			if got := cl.line(t); got == "STORED" {
				acks.ack(k, seq)
			}
		}
	}()
}

// stormReader hammers reads round-robin until stop closes. Replies must
// stay well-formed throughout (getValue checks framing).
func stormReader(t *testing.T, addr string, keys []string, stop chan struct{}, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl := dial(t, addr)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			getValue(t, cl, keys[i%len(keys)])
		}
	}()
}

// TestChurnJoinWarmHandoffGate is the node-add gate: a 4th node joins a
// live 3-node cluster under storm load via the real -join handshake. No
// acked write may be lost across the epoch boundary, the moved arc must
// arrive warm at the joiner (measurably: the post-join hit ratio and
// p99 stay within 25% of the steady-state baseline), and every manager
// must converge on the same 4-member view.
func TestChurnJoinWarmHandoffGate(t *testing.T) {
	nodes := startChurnCluster(t, 3, membership.Config{
		ProbeInterval: -1,      // no probing: this test is about the join path
		HandoffRate:   200_000, // warm handoff, effectively unthrottled
	})
	keys := churnKeys(400)
	acks := newAckTracker()
	seedKeys(t, dial(t, nodes[0].addr), keys, acks)

	// Steady-state baseline: three full passes, all hits.
	measure := dial(t, nodes[1].addr)
	var steadyLats []time.Duration
	steadyHits, steadyTotal := 0, 0
	for i := 0; i < 3; i++ {
		h, m, lats, _ := readPass(t, measure, keys)
		steadyHits += h
		steadyTotal += h + m
		steadyLats = append(steadyLats, lats...)
	}
	if steadyHits != steadyTotal {
		t.Fatalf("steady state: %d/%d hits, want all", steadyHits, steadyTotal)
	}
	steadyP99 := p99(steadyLats)

	// Storm: writers and readers through different nodes for the whole
	// join window.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	stormWriter(t, nodes[0].addr, keys, acks, stop, &wg)
	stormWriter(t, nodes[2].addr, keys, acks, stop, &wg)
	stormReader(t, nodes[1].addr, keys, stop, &wg)

	// The 4th node joins through the seed while the storm runs.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	joiner := startChurnNode(t, ln, []string{ln.Addr().String()}, membership.Config{
		ProbeInterval: -1,
		HandoffRate:   200_000,
	})
	joinDone := make(chan error, 1)
	go func() { joinDone <- joiner.mgr.JoinCluster(nodes[0].addr, 10*time.Second) }()

	// Measure reads continuously across the join + handoff window: this
	// is where the dip (if any) lives.
	mgrs := []*membership.Manager{nodes[0].mgr, nodes[1].mgr, nodes[2].mgr, joiner.mgr}
	var churnLats []time.Duration
	churnHits, churnTotal := 0, 0
	deadline := time.Now().Add(15 * time.Second)
	joined := false
	for time.Now().Before(deadline) {
		h, m, lats, _ := readPass(t, measure, keys)
		churnHits += h
		churnTotal += h + m
		churnLats = append(churnLats, lats...)
		if !joined {
			select {
			case err := <-joinDone:
				if err != nil {
					t.Fatalf("join: %v", err)
				}
				joined = true
			default:
				continue
			}
		}
		// Joined: stop once the view converged and all handoffs drained.
		conv := true
		for _, m := range mgrs {
			_, members := m.View()
			if len(members) != 4 {
				conv = false
			}
			if m.Stats().Handoff.Active {
				conv = false
			}
		}
		if conv {
			break
		}
	}
	if !joined {
		t.Fatal("join never completed")
	}
	waitConverged(t, mgrs, 4, 5*time.Second)
	waitHandoffDrained(t, mgrs, 5*time.Second)
	close(stop)
	wg.Wait()

	// The moved arc was streamed, not dropped.
	var handoffKeys uint64
	for _, n := range nodes {
		handoffKeys += n.mgr.Stats().Handoff.KeysSent
	}
	if handoffKeys == 0 {
		t.Fatal("no key was warm-handed to the joiner")
	}

	// Gate: hit-ratio dip within 25% of steady state across the whole
	// churn window. Without a backend every cold moved key is a miss, so
	// this measures the handoff's warmth directly.
	steadyRatio := float64(steadyHits) / float64(steadyTotal)
	churnRatio := float64(churnHits) / float64(churnTotal)
	t.Logf("hit ratio: steady %.4f, churn %.4f; p99: steady %v, churn %v; %d keys handed off",
		steadyRatio, churnRatio, steadyP99, p99(churnLats), handoffKeys)
	if churnRatio < 0.75*steadyRatio {
		t.Errorf("churn hit ratio %.4f dipped more than 25%% below steady %.4f", churnRatio, steadyRatio)
	}
	// Gate: p99 within 25% of baseline, with a scheduler-noise floor so
	// a microsecond-scale baseline doesn't make the gate vacuous-strict.
	if churnP99 := p99(churnLats); churnP99 > steadyP99*5/4 && churnP99 > 25*time.Millisecond {
		t.Errorf("churn p99 %v regressed more than 25%% over steady %v", churnP99, steadyP99)
	}

	// Gate: no lost acked writes. Read every key through an old node and
	// through the joiner; both must agree with the ack window.
	joinerCl := dial(t, joiner.addr)
	for _, cl := range []*client{measure, joinerCl} {
		h, m, _, vals := readPass(t, cl, keys)
		if m != 0 {
			t.Fatalf("%d/%d keys missing after join settled", m, h+m)
		}
		for k, v := range vals {
			acks.check(t, k, v)
		}
	}
}

// TestChurnGracefulDrain: draining a member streams every resident to
// the survivors before the node goes — zero acked writes lost, zero
// misses afterward.
func TestChurnGracefulDrain(t *testing.T) {
	nodes := startChurnCluster(t, 3, membership.Config{
		ProbeInterval: -1,
		HandoffRate:   200_000,
	})
	keys := churnKeys(300)
	acks := newAckTracker()
	seedKeys(t, dial(t, nodes[0].addr), keys, acks)

	// Light storm through the survivors across the drain.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	stormWriter(t, nodes[0].addr, keys, acks, stop, &wg)
	stormReader(t, nodes[1].addr, keys, stop, &wg)

	if err := nodes[2].mgr.Drain(); err != nil {
		t.Fatal(err)
	}
	mgrs := []*membership.Manager{nodes[0].mgr, nodes[1].mgr}
	waitConverged(t, mgrs, 2, 5*time.Second)
	waitHandoffDrained(t, []*membership.Manager{nodes[2].mgr}, 10*time.Second)
	close(stop)
	wg.Wait()

	st := nodes[2].mgr.Stats()
	if !st.Draining {
		t.Fatal("drained node does not report draining")
	}
	if st.Handoff.KeysSent == 0 {
		t.Fatal("drain streamed nothing")
	}
	// The drained node holds nothing: everything moved to the survivors.
	if items := nodes[2].srv.c.Items(); items != 0 {
		t.Errorf("drained node still holds %d items", items)
	}
	// Every key survives with a consistent value, via either survivor.
	for _, n := range nodes[:2] {
		cl := dial(t, n.addr)
		h, m, _, vals := readPass(t, cl, keys)
		if m != 0 {
			t.Fatalf("%d/%d keys lost in drain (via %s)", m, h+m, n.addr)
		}
		for k, v := range vals {
			acks.check(t, k, v)
		}
	}
}

// TestChurnKillNodeAutoEviction: a member that dies cold is detected by
// its peers' probes, auto-evicted with hysteresis, and the survivors
// converge — serving honest misses for the dead arc, correct values for
// their own, and accepting writes throughout.
func TestChurnKillNodeAutoEviction(t *testing.T) {
	nodes := startChurnCluster(t, 3, membership.Config{
		ProbeInterval: 50 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
		SuspectAfter:  2,
		EvictAfter:    4,
		EvictCooldown: 100 * time.Millisecond,
		HandoffRate:   200_000,
	})
	keys := churnKeys(200)
	acks := newAckTracker()
	seedKeys(t, dial(t, nodes[0].addr), keys, acks)
	owners := make(map[string]string, len(keys))
	for _, k := range keys {
		owners[k] = nodes[0].peers.Owner(k)
	}

	// Keep read load flowing across the kill.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	stormReader(t, nodes[0].addr, keys, stop, &wg)

	deadAddr := nodes[2].addr
	nodes[2].mgr.Stop()
	nodes[2].srv.Shutdown()

	// The survivors' probes must notice, gate through suspicion, and
	// evict; then both converge on the 2-member view.
	mgrs := []*membership.Manager{nodes[0].mgr, nodes[1].mgr}
	waitConverged(t, mgrs, 2, 15*time.Second)
	close(stop)
	wg.Wait()

	var evictions, suspects uint64
	for _, m := range mgrs {
		st := m.Stats()
		evictions += st.Evictions
		suspects += st.Suspects
	}
	if evictions == 0 || suspects == 0 {
		t.Fatalf("evictions=%d suspects=%d, want both > 0", evictions, suspects)
	}
	for _, m := range mgrs {
		if m.IsMember(deadAddr) {
			t.Fatal("dead node still in a survivor's view")
		}
	}

	// Survivor-owned keys keep their acked values; dead-owned keys are
	// honest misses, never wrong values; and the ring accepts writes.
	cl := dial(t, nodes[1].addr)
	for _, k := range keys {
		v, ok := getValue(t, cl, k)
		if owners[k] == deadAddr {
			if ok {
				// Possible only if the dead node handed the key off
				// before dying — it did not (it was killed cold).
				t.Errorf("dead-owned key %s returned %q after cold kill", k, v)
			}
			continue
		}
		if !ok {
			t.Errorf("survivor-owned key %s lost in eviction reroute", k)
			continue
		}
		acks.check(t, k, v)
	}
	for i := 0; i < 20; i++ {
		k := keys[i]
		cl.send(t, "set "+k+" 0 0 2\r\nnv\r\n")
		if got := cl.line(t); got != "STORED" {
			t.Fatalf("post-eviction set %s -> %q", k, got)
		}
	}
}
