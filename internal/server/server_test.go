package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"pamakv/internal/backend"
	"pamakv/internal/cache"
	"pamakv/internal/core"
	"pamakv/internal/kv"
	"pamakv/internal/penalty"
	"pamakv/internal/shard"
)

// Both cache implementations satisfy the server's Store surface.
var (
	_ Store = (*cache.Cache)(nil)
	_ Store = (*shard.Group)(nil)
)

func startServer(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	c, err := cache.New(cache.Config{
		Geometry:    kv.Geometry{SlabSize: 1 << 16, Base: 64, NumClasses: 8},
		CacheBytes:  1 << 22,
		StoreValues: true,
		WindowLen:   10_000,
	}, core.New(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(c, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Shutdown)
	return srv, ln.Addr().String()
}

type client struct {
	conn net.Conn
	r    *bufio.Reader
}

func dial(t *testing.T, addr string) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &client{conn: conn, r: bufio.NewReader(conn)}
}

func (c *client) send(t *testing.T, s string) {
	t.Helper()
	if _, err := c.conn.Write([]byte(s)); err != nil {
		t.Fatal(err)
	}
}

func (c *client) line(t *testing.T) string {
	t.Helper()
	l, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimRight(l, "\r\n")
}

func TestSetGetDelete(t *testing.T) {
	_, addr := startServer(t, Options{})
	cl := dial(t, addr)
	cl.send(t, "set greet 9 0 5\r\nhello\r\n")
	if got := cl.line(t); got != "STORED" {
		t.Fatalf("set -> %q", got)
	}
	cl.send(t, "get greet\r\n")
	if got := cl.line(t); got != "VALUE greet 9 5" {
		t.Fatalf("get header -> %q", got)
	}
	if got := cl.line(t); got != "hello" {
		t.Fatalf("get body -> %q", got)
	}
	if got := cl.line(t); got != "END" {
		t.Fatalf("get end -> %q", got)
	}
	cl.send(t, "delete greet\r\n")
	if got := cl.line(t); got != "DELETED" {
		t.Fatalf("delete -> %q", got)
	}
	cl.send(t, "get greet\r\n")
	if got := cl.line(t); got != "END" {
		t.Fatalf("get after delete -> %q", got)
	}
	cl.send(t, "delete greet\r\n")
	if got := cl.line(t); got != "NOT_FOUND" {
		t.Fatalf("second delete -> %q", got)
	}
}

func TestMultiKeyGet(t *testing.T) {
	_, addr := startServer(t, Options{})
	cl := dial(t, addr)
	cl.send(t, "set a 0 0 1\r\nx\r\nset b 0 0 1\r\ny\r\n")
	cl.line(t)
	cl.line(t)
	cl.send(t, "get a missing b\r\n")
	var lines []string
	for {
		l := cl.line(t)
		lines = append(lines, l)
		if l == "END" {
			break
		}
	}
	joined := strings.Join(lines, "|")
	if !strings.Contains(joined, "VALUE a 0 1|x") || !strings.Contains(joined, "VALUE b 0 1|y") {
		t.Fatalf("multi-get response: %v", lines)
	}
	if strings.Contains(joined, "missing") {
		t.Fatal("missing key should be silently omitted")
	}
}

func TestNoReply(t *testing.T) {
	_, addr := startServer(t, Options{})
	cl := dial(t, addr)
	cl.send(t, "set k 0 0 1 noreply\r\nz\r\nget k\r\n")
	if got := cl.line(t); got != "VALUE k 0 1" {
		t.Fatalf("noreply set leaked a response: %q", got)
	}
}

func TestClientErrorKeepsConnection(t *testing.T) {
	_, addr := startServer(t, Options{})
	cl := dial(t, addr)
	cl.send(t, "bogus\r\n")
	if got := cl.line(t); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Fatalf("bad command -> %q", got)
	}
	cl.send(t, "version\r\n")
	if got := cl.line(t); !strings.HasPrefix(got, "VERSION") {
		t.Fatalf("connection unusable after client error: %q", got)
	}
}

func TestStats(t *testing.T) {
	_, addr := startServer(t, Options{})
	cl := dial(t, addr)
	cl.send(t, "set k 0 0 1\r\nx\r\n")
	cl.line(t)
	cl.send(t, "get k\r\nget nope\r\nstats\r\n")
	stats := map[string]string{}
	for {
		l := cl.line(t)
		if l == "END" {
			if len(stats) > 0 {
				break
			}
			continue // END of the get responses
		}
		if strings.HasPrefix(l, "STAT ") {
			parts := strings.SplitN(l[5:], " ", 2)
			stats[parts[0]] = parts[1]
		}
	}
	if stats["get_hits"] != "1" || stats["get_misses"] != "1" || stats["cmd_set"] != "1" {
		t.Fatalf("stats = %v", stats)
	}
	if stats["policy"] != "pama" {
		t.Fatalf("policy stat = %q", stats["policy"])
	}
}

func TestFlushAll(t *testing.T) {
	_, addr := startServer(t, Options{})
	cl := dial(t, addr)
	cl.send(t, "set k 0 0 1\r\nx\r\n")
	cl.line(t)
	cl.send(t, "flush_all\r\n")
	if got := cl.line(t); got != "OK" {
		t.Fatalf("flush_all -> %q", got)
	}
	cl.send(t, "get k\r\n")
	if got := cl.line(t); got != "END" {
		t.Fatalf("get after flush -> %q", got)
	}
}

func TestValueTooLarge(t *testing.T) {
	_, addr := startServer(t, Options{})
	cl := dial(t, addr)
	// Largest class slot is 8 KiB (64<<7); a 32 KiB value cannot be stored.
	big := strings.Repeat("v", 32<<10)
	cl.send(t, fmt.Sprintf("set big 0 0 %d\r\n%s\r\n", len(big), big))
	if got := cl.line(t); !strings.HasPrefix(got, "SERVER_ERROR") {
		t.Fatalf("oversized set -> %q", got)
	}
}

func TestReadThroughBackend(t *testing.T) {
	store := backend.New(penalty.Uniform(0.001), func(uint64) int { return 10 })
	_, addr := startServer(t, Options{Backend: store})
	cl := dial(t, addr)
	cl.send(t, "get warmme\r\n")
	if got := cl.line(t); !strings.HasPrefix(got, "VALUE warmme 0 10") {
		t.Fatalf("read-through get -> %q", got)
	}
	cl.line(t) // body
	if got := cl.line(t); got != "END" {
		t.Fatalf("end -> %q", got)
	}
	if store.Fetches() != 1 {
		t.Fatalf("fetches = %d, want 1", store.Fetches())
	}
	// Second get: served from cache, no new fetch.
	cl.send(t, "get warmme\r\n")
	cl.line(t)
	cl.line(t)
	cl.line(t)
	if store.Fetches() != 1 {
		t.Fatalf("fetches after cached get = %d, want 1", store.Fetches())
	}
}

func TestExptimeSemantics(t *testing.T) {
	now := time.Now().Unix()
	cases := []struct {
		exptime int64
		want    func(int64) bool
	}{
		{0, func(v int64) bool { return v == 0 }},
		{-5, func(v int64) bool { return v == 1 }},
		{60, func(v int64) bool { return v >= now+59 && v <= now+62 }},
		{now + 1e6, func(v int64) bool { return v == now+1e6 }},
	}
	for _, c := range cases {
		if got := expireAt(c.exptime); !c.want(got) {
			t.Errorf("expireAt(%d) = %d", c.exptime, got)
		}
	}
}

func TestSetWithExpiry(t *testing.T) {
	_, addr := startServer(t, Options{})
	cl := dial(t, addr)
	// Flags must be unsigned: the command line is rejected before the
	// data block is consumed, so the stray "x" line then parses as an
	// unknown command — the same recovery real Memcached applies to
	// garbage input.
	cl.send(t, "set gone -1 -1 1\r\nx\r\n")
	if got := cl.line(t); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Fatalf("negative flags accepted: %q", got)
	}
	if got := cl.line(t); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Fatalf("stray data line not rejected: %q", got)
	}
	// Negative exptime: stored but expired on arrival.
	cl.send(t, "set gone 0 -1 1\r\nx\r\n")
	if got := cl.line(t); got != "STORED" {
		t.Fatalf("set -> %q", got)
	}
	cl.send(t, "get gone\r\n")
	if got := cl.line(t); got != "END" {
		t.Fatalf("expired-on-arrival item served: %q", got)
	}
}

func TestCASProtocol(t *testing.T) {
	_, addr := startServer(t, Options{})
	cl := dial(t, addr)
	cl.send(t, "set k 0 0 2\r\nv1\r\n")
	cl.line(t)
	cl.send(t, "gets k\r\n")
	header := cl.line(t)
	parts := strings.Fields(header)
	if len(parts) != 5 || parts[0] != "VALUE" {
		t.Fatalf("gets header: %q", header)
	}
	cas := parts[4]
	cl.line(t) // body
	cl.line(t) // END
	// Wrong token -> EXISTS.
	cl.send(t, "cas k 0 0 2 99999999\r\nxx\r\n")
	if got := cl.line(t); got != "EXISTS" {
		t.Fatalf("stale cas -> %q", got)
	}
	// Right token -> STORED.
	cl.send(t, "cas k 0 0 2 "+cas+"\r\nv2\r\n")
	if got := cl.line(t); got != "STORED" {
		t.Fatalf("cas -> %q", got)
	}
	// Absent key -> NOT_FOUND.
	cl.send(t, "cas nope 0 0 1 1\r\nx\r\n")
	if got := cl.line(t); got != "NOT_FOUND" {
		t.Fatalf("cas absent -> %q", got)
	}
}

func TestAddReplaceProtocol(t *testing.T) {
	_, addr := startServer(t, Options{})
	cl := dial(t, addr)
	cl.send(t, "replace k 0 0 1\r\nx\r\n")
	if got := cl.line(t); got != "NOT_STORED" {
		t.Fatalf("replace absent -> %q", got)
	}
	cl.send(t, "add k 0 0 1\r\na\r\n")
	if got := cl.line(t); got != "STORED" {
		t.Fatalf("add -> %q", got)
	}
	cl.send(t, "add k 0 0 1\r\nb\r\n")
	if got := cl.line(t); got != "NOT_STORED" {
		t.Fatalf("second add -> %q", got)
	}
	cl.send(t, "replace k 0 0 1\r\nc\r\n")
	if got := cl.line(t); got != "STORED" {
		t.Fatalf("replace -> %q", got)
	}
}

func TestAppendPrependProtocol(t *testing.T) {
	_, addr := startServer(t, Options{})
	cl := dial(t, addr)

	// Concat on a missing key is NOT_STORED and must not create the item.
	cl.send(t, "append ghost 0 0 3\r\nxyz\r\n")
	if got := cl.line(t); got != "NOT_STORED" {
		t.Fatalf("append missing -> %q", got)
	}
	cl.send(t, "get ghost\r\n")
	if got := cl.line(t); got != "END" {
		t.Fatalf("append must not create: %q", got)
	}

	cl.send(t, "set k 7 0 3\r\nbar\r\n")
	if got := cl.line(t); got != "STORED" {
		t.Fatalf("set -> %q", got)
	}
	// append concatenates on the right; the operand's flags are ignored and
	// the resident flags survive the rewrite.
	cl.send(t, "append k 999 0 3\r\nbaz\r\n")
	if got := cl.line(t); got != "STORED" {
		t.Fatalf("append -> %q", got)
	}
	cl.send(t, "get k\r\n")
	if got := cl.line(t); got != "VALUE k 7 6" {
		t.Fatalf("get header after append -> %q", got)
	}
	if got := cl.line(t); got != "barbaz" {
		t.Fatalf("get body after append -> %q", got)
	}
	cl.line(t) // END

	// prepend concatenates on the left, noreply stays silent.
	cl.send(t, "prepend k 0 0 3 noreply\r\nfoo\r\nget k\r\n")
	if got := cl.line(t); got != "VALUE k 7 9" {
		t.Fatalf("get header after prepend -> %q", got)
	}
	if got := cl.line(t); got != "foobarbaz" {
		t.Fatalf("get body after prepend -> %q", got)
	}
	cl.line(t) // END

	// The rewrite bumps the CAS token: a gets before the append must lose.
	cl.send(t, "gets k\r\n")
	header := cl.line(t)
	var flags, n int
	var cas uint64
	if _, err := fmt.Sscanf(header, "VALUE k %d %d %d", &flags, &n, &cas); err != nil {
		t.Fatalf("gets header %q: %v", header, err)
	}
	cl.line(t) // body
	cl.line(t) // END
	cl.send(t, "append k 0 0 1\r\n!\r\n")
	if got := cl.line(t); got != "STORED" {
		t.Fatalf("append -> %q", got)
	}
	cl.send(t, fmt.Sprintf("cas k 0 0 1 %d\r\nZ\r\n", cas))
	if got := cl.line(t); got != "EXISTS" {
		t.Fatalf("stale cas after append -> %q", got)
	}
}

func TestIncrDecrProtocol(t *testing.T) {
	_, addr := startServer(t, Options{})
	cl := dial(t, addr)
	cl.send(t, "set n 0 0 2\r\n10\r\n")
	cl.line(t)
	cl.send(t, "incr n 7\r\n")
	if got := cl.line(t); got != "17" {
		t.Fatalf("incr -> %q", got)
	}
	cl.send(t, "decr n 20\r\n")
	if got := cl.line(t); got != "0" {
		t.Fatalf("decr -> %q", got)
	}
	cl.send(t, "incr missing 1\r\n")
	if got := cl.line(t); got != "NOT_FOUND" {
		t.Fatalf("incr missing -> %q", got)
	}
	cl.send(t, "set s 0 0 3\r\nabc\r\nincr s 1\r\n")
	cl.line(t)
	if got := cl.line(t); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Fatalf("incr text -> %q", got)
	}
	cl.send(t, "incr n notanumber\r\n")
	if got := cl.line(t); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Fatalf("bad delta -> %q", got)
	}
}

func TestTouchProtocol(t *testing.T) {
	_, addr := startServer(t, Options{})
	cl := dial(t, addr)
	cl.send(t, "set k 0 0 1\r\nx\r\n")
	cl.line(t)
	cl.send(t, "touch k 100\r\n")
	if got := cl.line(t); got != "TOUCHED" {
		t.Fatalf("touch -> %q", got)
	}
	cl.send(t, "touch missing 100\r\n")
	if got := cl.line(t); got != "NOT_FOUND" {
		t.Fatalf("touch missing -> %q", got)
	}
}

func TestQuitClosesConnection(t *testing.T) {
	_, addr := startServer(t, Options{})
	cl := dial(t, addr)
	cl.send(t, "quit\r\n")
	if _, err := cl.r.ReadString('\n'); err == nil {
		t.Fatal("connection should close after quit")
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr := startServer(t, Options{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("k%d-%d", g, i)
				fmt.Fprintf(conn, "set %s 0 0 3\r\nabc\r\nget %s\r\n", key, key)
				if l, _ := r.ReadString('\n'); !strings.HasPrefix(l, "STORED") {
					t.Errorf("set -> %q", l)
					return
				}
				r.ReadString('\n') // VALUE
				r.ReadString('\n') // body
				r.ReadString('\n') // END
			}
		}(g)
	}
	wg.Wait()
}

func TestServerOverShardGroup(t *testing.T) {
	g, err := shard.New(cache.Config{
		Geometry:    kv.Geometry{SlabSize: 1 << 16, Base: 64, NumClasses: 8},
		CacheBytes:  1 << 22,
		StoreValues: true,
		WindowLen:   10_000,
	}, 4, func() cache.Policy { return core.New(core.DefaultConfig()) })
	if err != nil {
		t.Fatal(err)
	}
	srv := New(g, Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Shutdown)
	cl := dial(t, ln.Addr().String())
	for i := 0; i < 40; i++ {
		cl.send(t, fmt.Sprintf("set sk%d 0 0 1\r\nx\r\n", i))
		if got := cl.line(t); got != "STORED" {
			t.Fatalf("sharded set -> %q", got)
		}
	}
	cl.send(t, "get sk7\r\n")
	if got := cl.line(t); got != "VALUE sk7 0 1" {
		t.Fatalf("sharded get -> %q", got)
	}
	cl.line(t)
	cl.line(t)
	cl.send(t, "stats\r\n")
	found := false
	for {
		l := cl.line(t)
		if l == "END" {
			break
		}
		if l == "STAT cmd_set 40" {
			found = true
		}
	}
	if !found {
		t.Fatal("aggregated shard stats missing")
	}
}

func TestAddrAndDoubleServe(t *testing.T) {
	srv, addr := startServer(t, Options{})
	deadline := time.Now().Add(2 * time.Second)
	for srv.Addr() == "" && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond) // Serve runs in a goroutine; wait for it to bind
	}
	if got := srv.Addr(); got != addr {
		t.Fatalf("Addr = %q, want %q", got, addr)
	}
	srv.Shutdown()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := srv.Serve(ln); err == nil {
		t.Fatal("Serve after Shutdown accepted")
	}
}

func TestListenAndServeBadAddr(t *testing.T) {
	c, err := cache.New(cache.Config{CacheBytes: 2 << 20}, core.New(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(c, Options{})
	if err := srv.ListenAndServe("999.999.999.999:1"); err == nil {
		t.Fatal("bad address accepted")
	}
}

func TestBackgroundReaper(t *testing.T) {
	now := time.Now().Unix()
	c, err := cache.New(cache.Config{
		Geometry:    kv.Geometry{SlabSize: 1 << 16, Base: 64, NumClasses: 8},
		CacheBytes:  1 << 21,
		StoreValues: true,
		WindowLen:   1 << 50,
		Now:         func() int64 { return now + 10_000 }, // everything with a TTL is stale
	}, core.New(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(c, Options{ReapInterval: 5 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Shutdown)
	// Insert items whose deadline is already past the engine clock.
	for i := 0; i < 10; i++ {
		if err := c.SetTTL(fmt.Sprintf("k%d", i), 64, 0.01, 0, now+60, nil); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for c.Items() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("reaper never swept: %d items left", c.Items())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if c.Stats().Expired != 10 {
		t.Fatalf("Expired = %d, want 10", c.Stats().Expired)
	}
}

func TestShutdownUnblocksServe(t *testing.T) {
	srv, addr := startServer(t, Options{})
	cl := dial(t, addr)
	cl.send(t, "version\r\n")
	cl.line(t)
	srv.Shutdown()
	if _, err := net.Dial("tcp", addr); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
}
