package server

import (
	"math"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"pamakv/internal/cache"
	"pamakv/internal/core"
	"pamakv/internal/kv"
	"pamakv/internal/proto"
)

// benchServerBatched is benchServer with the deferred-access read path on.
func benchServerBatched(tb testing.TB, n, ringCap int) (*Server, []string) {
	tb.Helper()
	c, err := cache.New(cache.Config{
		Geometry:     kv.Geometry{SlabSize: 1 << 16, Base: 64, NumClasses: 8},
		CacheBytes:   1 << 24,
		StoreValues:  true,
		WindowLen:    1 << 40,
		AccessBuffer: ringCap,
	}, core.New(core.DefaultConfig()))
	if err != nil {
		tb.Fatal(err)
	}
	keys := make([]string, n)
	body := strings.Repeat("v", 100)
	for i := range keys {
		keys[i] = "key" + string(rune('a'+i))
		if err := c.Set(keys[i], len(keys[i])+len(body)+itemOverhead, 0.01, 0, []byte(body)); err != nil {
			tb.Fatal(err)
		}
	}
	return New(c, Options{}), keys
}

// TestServedGetAllocationsBatched holds the zero-allocation GET-hit gate in
// batched mode: the fast path's ring publish, the inline ring-full drains it
// forces along the way (5000 runs overflow the rings several times), and the
// policy batch hand-off must all stay allocation-free, same as the immediate
// path pinned by TestServedGetAllocations.
func TestServedGetAllocationsBatched(t *testing.T) {
	srv, keys := benchServerBatched(t, 4, 64)
	cmd := &proto.Command{Name: "get", Keys: keys[:1]}
	sc := &connScratch{out: make([]byte, 0, 4096)}
	allocs := testing.AllocsPerRun(5000, func() {
		sc.out = srv.dispatch(sc, sc.out[:0], cmd)
	})
	if allocs > 0.5 {
		t.Fatalf("batched served GET allocates %.2f objects per request, want 0", allocs)
	}
	if !strings.HasPrefix(string(sc.out), "VALUE ") {
		t.Fatalf("dispatch output %q", sc.out)
	}
	abs := srv.c.(*cache.Cache).AccessBufStats()
	if !abs.Enabled || abs.Drained == 0 {
		t.Fatalf("batched path not exercised: %+v", abs)
	}
}

// TestScalingHarnessSmoke keeps the sweep harness honest in the ordinary
// test run: one short point at the host's core count must serve traffic
// through the batched path and report sane numbers.
func TestScalingHarnessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP sweep point")
	}
	pt, err := RunScalingPoint(runtime.GOMAXPROCS(0), ScalingOptions{
		Keys:    512,
		Conns:   2,
		Warmup:  50 * time.Millisecond,
		Measure: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pt.OpsPerSec <= 0 {
		t.Fatalf("sweep point measured %.0f ops/s", pt.OpsPerSec)
	}
	if !pt.AccessBuf.Enabled || pt.AccessBuf.Drained == 0 {
		t.Fatalf("batched path not exercised: %+v", pt.AccessBuf)
	}
}

// TestScalingGate is the CI multi-core scaling gate (set PAMA_SCALING_GATE=1
// to run): on an 8-shard batched configuration, pipelined GET throughput at
// GOMAXPROCS=8 must be at least 2.5x the single-core point. Hosts with fewer
// cores get a proportionally relaxed target so the gate still means something
// on small runners.
func TestScalingGate(t *testing.T) {
	if os.Getenv("PAMA_SCALING_GATE") == "" {
		t.Skip("set PAMA_SCALING_GATE=1 to run the multi-core scaling gate")
	}
	ncpu := runtime.NumCPU()
	procs := []int{1}
	for _, p := range []int{2, 4, 8} {
		if p <= ncpu {
			procs = append(procs, p)
		}
	}
	if len(procs) == 1 {
		t.Skipf("only %d CPUs; the scaling gate needs at least 2", ncpu)
	}
	rep, err := RunScalingSweep(procs, ScalingOptions{Measure: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range rep.Points {
		t.Logf("GOMAXPROCS=%d: %.0f ops/s (%.2fx), drains=%d drained=%d full=%d stale=%d",
			pt.Procs, pt.OpsPerSec, pt.Speedup, pt.AccessBuf.Drains,
			pt.AccessBuf.Drained, pt.AccessBuf.FullDrains, pt.AccessBuf.StaleRefs)
	}
	last := rep.Points[len(rep.Points)-1]
	target := 2.5
	if last.Procs < 8 {
		// Clients and server share the capped cores, so perfect linearity is
		// out of reach; 0.4x per core with a 1.3x floor tracks what the full
		// 8-core target demands proportionally.
		target = math.Max(1.3, 0.4*float64(last.Procs))
	}
	if last.Speedup < target {
		t.Fatalf("throughput at GOMAXPROCS=%d is %.2fx the 1-core point, gate is %.2fx",
			last.Procs, last.Speedup, target)
	}
}
