package server

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pamakv/internal/cache"
	"pamakv/internal/core"
	"pamakv/internal/kv"
	"pamakv/internal/shard"
)

// Multi-core scaling harness: boots a sharded, batched-read-path server on a
// loopback listener and drives it with pipelined GET clients at a fixed
// GOMAXPROCS, measuring sustained hit throughput. It backs the fig_scaling
// figure in cmd/pama-bench and the CI scaling gate (TestScalingGate), so the
// "lock amortization actually buys cores" claim is measured, not asserted.
//
// Clients run in-process, so a point's GOMAXPROCS bounds client and server
// work together — the sweep reports whole-system scaling, the same quantity a
// co-located benchmark loop sees.

// ScalingOptions configures one sweep. The zero value is usable: every field
// picks the default documented on it.
type ScalingOptions struct {
	Shards       int           // engine shards (default 8)
	AccessBuffer int           // deferred-access ring capacity (default 256; <0 = immediate mode)
	Keys         int           // preloaded resident keys (default 4096)
	ValueBytes   int           // value size per key (default 100)
	Conns        int           // concurrent pipelined client connections (default 8)
	Depth        int           // GETs per pipeline batch (default 64)
	Warmup       time.Duration // per-point warmup before counting (default 250ms)
	Measure      time.Duration // per-point measured interval (default 1s)
}

func (o ScalingOptions) withDefaults() ScalingOptions {
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.AccessBuffer == 0 {
		o.AccessBuffer = 256
	} else if o.AccessBuffer < 0 {
		o.AccessBuffer = 0
	}
	if o.Keys <= 0 {
		o.Keys = 4096
	}
	if o.ValueBytes <= 0 {
		o.ValueBytes = 100
	}
	if o.Conns <= 0 {
		o.Conns = 8
	}
	if o.Depth <= 0 {
		o.Depth = 64
	}
	if o.Warmup <= 0 {
		o.Warmup = 250 * time.Millisecond
	}
	if o.Measure <= 0 {
		o.Measure = time.Second
	}
	return o
}

// ScalingPoint is one measured sweep point.
type ScalingPoint struct {
	Procs     int                  `json:"gomaxprocs"`
	OpsPerSec float64              `json:"ops_per_sec"`
	Speedup   float64              `json:"speedup"` // vs the sweep's first point; 0 until a sweep fills it
	AccessBuf cache.AccessBufStats `json:"access_buf"`
}

// ScalingReport is the sweep result serialized into BENCH_scaling.json.
type ScalingReport struct {
	Shards       int            `json:"shards"`
	AccessBuffer int            `json:"access_buffer"`
	Conns        int            `json:"conns"`
	Depth        int            `json:"depth"`
	Keys         int            `json:"keys"`
	Points       []ScalingPoint `json:"points"`
}

// RunScalingPoint measures sustained pipelined GET-hit throughput at the
// given GOMAXPROCS. It restores the previous GOMAXPROCS before returning.
func RunScalingPoint(procs int, opts ScalingOptions) (ScalingPoint, error) {
	o := opts.withDefaults()
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	g, err := shard.New(cache.Config{
		Geometry:     kv.Geometry{SlabSize: 1 << 16, Base: 64, NumClasses: 8},
		CacheBytes:   1 << 26,
		StoreValues:  true,
		WindowLen:    1 << 40,
		AccessBuffer: o.AccessBuffer,
	}, o.Shards, func() cache.Policy { return core.New(core.DefaultConfig()) })
	if err != nil {
		return ScalingPoint{}, err
	}
	keys := make([]string, o.Keys)
	body := bytes.Repeat([]byte{'v'}, o.ValueBytes)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%d", i)
		if err := g.Set(keys[i], len(keys[i])+len(body)+itemOverhead, 0.01, 0, body); err != nil {
			return ScalingPoint{}, err
		}
	}
	if o.AccessBuffer > 0 {
		g.StartMaintainers(0)
		defer g.StopMaintainers()
	}

	srv := New(g, Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return ScalingPoint{}, err
	}
	go srv.Serve(ln)
	defer srv.Shutdown()

	var ops atomic.Uint64
	var stop atomic.Bool
	errc := make(chan error, o.Conns)
	var wg sync.WaitGroup
	for ci := 0; ci < o.Conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			errc <- scalingClient(ln.Addr().String(), keys, ci, o.Depth, &ops, &stop)
		}(ci)
	}

	time.Sleep(o.Warmup)
	base := ops.Load()
	t0 := time.Now()
	time.Sleep(o.Measure)
	delta := ops.Load() - base
	elapsed := time.Since(t0)
	stop.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			return ScalingPoint{}, err
		}
	}
	return ScalingPoint{
		Procs:     procs,
		OpsPerSec: float64(delta) / elapsed.Seconds(),
		AccessBuf: g.AccessBufStats(),
	}, nil
}

// scalingClient drives one connection: writes a pipelined batch of depth
// GETs (each client strides the key space from a different offset so load
// spreads across shards), reads the batch's END markers, and repeats until
// stopped.
func scalingClient(addr string, keys []string, ci, depth int, ops *atomic.Uint64, stop *atomic.Bool) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	var req []byte
	stride := ci*depth + 1
	for i := 0; i < depth; i++ {
		req = append(req, "get "...)
		req = append(req, keys[(stride*(i+1))%len(keys)]...)
		req = append(req, '\r', '\n')
	}
	buf := make([]byte, 1<<16)
	work := make([]byte, 0, len(buf)+4)
	var carry []byte // last <=4 bytes of the previous chunk, for split markers
	marker := []byte("END\r\n")
	readBatch := func() error {
		// Responses are "VALUE ...\r\n<data>\r\nEND\r\n" per GET; counting
		// END\r\n markers frames the batch. A marker can split across two
		// reads, so each count runs over the previous chunk's last 4 bytes
		// plus the new chunk — too short to hold a whole marker on its own,
		// so nothing is counted twice.
		for ends := 0; ends < depth; {
			n, err := conn.Read(buf)
			if err != nil {
				return err
			}
			work = append(append(work[:0], carry...), buf[:n]...)
			ends += bytes.Count(work, marker)
			tail := len(work)
			if tail > 4 {
				tail = 4
			}
			carry = append(carry[:0], work[len(work)-tail:]...)
		}
		return nil
	}
	for !stop.Load() {
		if _, err := conn.Write(req); err != nil {
			return err
		}
		if err := readBatch(); err != nil {
			return err
		}
		ops.Add(uint64(depth))
	}
	return nil
}

// RunScalingSweep measures every GOMAXPROCS in procs (in order) and fills
// Speedup relative to the first point.
func RunScalingSweep(procs []int, opts ScalingOptions) (ScalingReport, error) {
	o := opts.withDefaults()
	rep := ScalingReport{
		Shards:       o.Shards,
		AccessBuffer: o.AccessBuffer,
		Conns:        o.Conns,
		Depth:        o.Depth,
		Keys:         o.Keys,
	}
	for _, p := range procs {
		pt, err := RunScalingPoint(p, o)
		if err != nil {
			return rep, fmt.Errorf("scaling point GOMAXPROCS=%d: %w", p, err)
		}
		if len(rep.Points) > 0 && rep.Points[0].OpsPerSec > 0 {
			pt.Speedup = pt.OpsPerSec / rep.Points[0].OpsPerSec
		} else {
			pt.Speedup = 1
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// WriteScalingTSV renders the sweep as the fig_scaling table.
func WriteScalingTSV(w io.Writer, rep ScalingReport) error {
	if _, err := fmt.Fprintln(w, "gomaxprocs\tops_per_sec\tspeedup\tdrains\tdrained\tfull_drains\tstale_refs"); err != nil {
		return err
	}
	for _, pt := range rep.Points {
		ab := pt.AccessBuf
		if _, err := fmt.Fprintf(w, "%d\t%.0f\t%.2f\t%d\t%d\t%d\t%d\n",
			pt.Procs, pt.OpsPerSec, pt.Speedup, ab.Drains, ab.Drained, ab.FullDrains, ab.StaleRefs); err != nil {
			return err
		}
	}
	return nil
}
