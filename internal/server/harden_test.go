package server

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"pamakv/internal/backend"
	"pamakv/internal/cache"
	"pamakv/internal/core"
	"pamakv/internal/kv"
	"pamakv/internal/penalty"
	"pamakv/internal/shard"
)

// startServerCfg is startServer with full control over the cache config.
func startServerCfg(t *testing.T, cfg cache.Config, opts Options) (*Server, string) {
	t.Helper()
	c, err := cache.New(cfg, core.New(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(c, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Shutdown)
	return srv, ln.Addr().String()
}

func defaultCfg() cache.Config {
	return cache.Config{
		Geometry:    kv.Geometry{SlabSize: 1 << 16, Base: 64, NumClasses: 8},
		CacheBytes:  1 << 22,
		StoreValues: true,
		WindowLen:   10_000,
	}
}

// TestPipelining sends a burst of requests in one write and expects all
// responses, served in fewer flushes than requests.
func TestPipelining(t *testing.T) {
	srv, addr := startServer(t, Options{MaxPipeline: 32})
	cl := dial(t, addr)

	var req strings.Builder
	const n = 20
	for i := 0; i < n; i++ {
		fmt.Fprintf(&req, "set k%d 0 0 2\r\nv%d\r\n", i, i%10)
	}
	cl.send(t, req.String())
	for i := 0; i < n; i++ {
		if got := cl.line(t); got != "STORED" {
			t.Fatalf("set %d -> %q", i, got)
		}
	}
	req.Reset()
	for i := 0; i < n; i++ {
		fmt.Fprintf(&req, "get k%d\r\n", i)
	}
	cl.send(t, req.String())
	for i := 0; i < n; i++ {
		if got := cl.line(t); got != fmt.Sprintf("VALUE k%d 0 2", i) {
			t.Fatalf("get %d header -> %q", i, got)
		}
		cl.line(t) // body
		if got := cl.line(t); got != "END" {
			t.Fatalf("get %d end -> %q", i, got)
		}
	}
	st := srv.Stats()
	if st.BatchedCmds != 2*n {
		t.Fatalf("BatchedCmds = %d, want %d", st.BatchedCmds, 2*n)
	}
	// Each burst arrived in one loopback write; the server must have
	// coalesced at least some of it (strict request-reply would need 2n
	// flushes).
	if st.Batches >= st.BatchedCmds {
		t.Fatalf("no pipelining: %d batches for %d commands", st.Batches, st.BatchedCmds)
	}
}

// TestPipelineCapFlushes verifies MaxPipeline bounds a batch: a burst longer
// than the cap is split across multiple flushes but still fully served.
func TestPipelineCapFlushes(t *testing.T) {
	srv, addr := startServer(t, Options{MaxPipeline: 4})
	cl := dial(t, addr)
	var req strings.Builder
	const n = 10
	for i := 0; i < n; i++ {
		fmt.Fprintf(&req, "version\r\n")
	}
	cl.send(t, req.String())
	for i := 0; i < n; i++ {
		if got := cl.line(t); !strings.HasPrefix(got, "VERSION") {
			t.Fatalf("version %d -> %q", i, got)
		}
	}
	if st := srv.Stats(); st.BatchedCmds != n {
		t.Fatalf("BatchedCmds = %d, want %d", st.BatchedCmds, n)
	}
}

// TestIdleTimeout verifies ReadTimeout reclaims idle connections.
func TestIdleTimeout(t *testing.T) {
	srv, addr := startServer(t, Options{ReadTimeout: 50 * time.Millisecond})
	cl := dial(t, addr)
	cl.send(t, "version\r\n")
	cl.line(t)
	// Stay silent past the deadline: the server must close the
	// connection.
	cl.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := cl.r.ReadByte(); err != io.EOF {
		t.Fatalf("idle connection read -> %v, want EOF", err)
	}
	if st := srv.Stats(); st.IdleTimeouts != 1 {
		t.Fatalf("IdleTimeouts = %d, want 1", st.IdleTimeouts)
	}
}

// TestMaxConnsBackpressure verifies the accept loop holds excess
// connections in the kernel backlog until a slot frees.
func TestMaxConnsBackpressure(t *testing.T) {
	srv, addr := startServer(t, Options{MaxConns: 1})
	cl1 := dial(t, addr)
	cl1.send(t, "version\r\n")
	cl1.line(t)

	// The second dial succeeds at the TCP level but the server must not
	// serve it while cl1 holds the only slot.
	cl2 := dial(t, addr)
	cl2.send(t, "version\r\n")
	cl2.conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	if _, err := cl2.r.ReadByte(); err == nil {
		t.Fatal("second connection served past MaxConns=1")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("second connection read -> %v, want timeout", err)
	}

	// Freeing the slot lets the queued connection through; its buffered
	// request is then served.
	cl1.conn.Close()
	cl2.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if got, err := cl2.r.ReadString('\n'); err != nil || !strings.HasPrefix(got, "VERSION") {
		t.Fatalf("queued connection -> %q, %v", got, err)
	}
	if st := srv.Stats(); st.Conns != 2 {
		t.Fatalf("Conns = %d, want 2", st.Conns)
	}
}

// TestGracefulDrain verifies Shutdown lets an in-flight request finish and
// flush before the connection dies.
func TestGracefulDrain(t *testing.T) {
	// A real-time backend makes the in-flight GET genuinely slow
	// (~100 ms), so Shutdown provably overlaps it.
	store := backend.NewRealTime(penalty.Uniform(0.1), func(uint64) int { return 8 }, 1.0)
	srv, addr := startServer(t, Options{Backend: store, DrainTimeout: 5 * time.Second})
	cl := dial(t, addr)
	cl.send(t, "get slowkey\r\n")
	time.Sleep(20 * time.Millisecond) // let the handler enter the fetch
	done := make(chan struct{})
	go func() {
		srv.Shutdown()
		close(done)
	}()
	// Despite the shutdown racing it, the response must arrive complete.
	cl.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if got := cl.line(t); !strings.HasPrefix(got, "VALUE slowkey") {
		t.Fatalf("drained response -> %q", got)
	}
	cl.line(t) // body
	if got := cl.line(t); got != "END" {
		t.Fatalf("drained end -> %q", got)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not return")
	}
	if st := srv.Stats(); st.ForcedCloses != 0 {
		t.Fatalf("ForcedCloses = %d, want 0 (drain should have sufficed)", st.ForcedCloses)
	}
}

// TestDrainTimeoutForcesClose verifies a connection that outlives the drain
// window is force-closed rather than wedging Shutdown.
func TestDrainTimeoutForcesClose(t *testing.T) {
	store := backend.NewRealTime(penalty.Uniform(2.0), func(uint64) int { return 8 }, 1.0)
	srv, addr := startServer(t, Options{Backend: store, DrainTimeout: 100 * time.Millisecond})
	cl := dial(t, addr)
	cl.send(t, "get verycold\r\n") // fetch sleeps ~2 s, far past the window
	time.Sleep(20 * time.Millisecond)
	start := time.Now()
	srv.Shutdown()
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("Shutdown took %v despite 100ms drain window", elapsed)
	}
	if st := srv.Stats(); st.ForcedCloses != 1 {
		t.Fatalf("ForcedCloses = %d, want 1", st.ForcedCloses)
	}
}

// TestErrorClassification verifies client-caused protocol errors are counted
// apart from server-side failures and do not kill the connection.
func TestErrorClassification(t *testing.T) {
	srv, addr := startServer(t, Options{})
	cl := dial(t, addr)
	cl.send(t, "bogus\r\n")
	if got := cl.line(t); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Fatalf("unknown verb -> %q", got)
	}
	cl.send(t, "set k 0 0 notanumber\r\n")
	if got := cl.line(t); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Fatalf("bad operand -> %q", got)
	}
	cl.send(t, "incr k 1\r\n") // miss, then make it non-numeric
	if got := cl.line(t); got != "NOT_FOUND" {
		t.Fatalf("incr miss -> %q", got)
	}
	cl.send(t, "set k 0 0 3\r\nabc\r\nincr k 1\r\n")
	cl.line(t)
	if got := cl.line(t); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Fatalf("incr non-numeric -> %q", got)
	}
	// The connection survived every client error.
	cl.send(t, "version\r\n")
	if got := cl.line(t); !strings.HasPrefix(got, "VERSION") {
		t.Fatalf("connection dead after client errors: %q", got)
	}
	st := srv.Stats()
	if st.ClientErrors < 3 {
		t.Fatalf("ClientErrors = %d, want >= 3", st.ClientErrors)
	}
	if st.ServerErrors != 0 {
		t.Fatalf("ServerErrors = %d, want 0 (all faults were the client's)", st.ServerErrors)
	}
}

// TestLineTooLongCloses verifies an overlong line draws CLIENT_ERROR and a
// close (framing is unrecoverable).
func TestLineTooLongCloses(t *testing.T) {
	srv, addr := startServer(t, Options{})
	cl := dial(t, addr)
	cl.send(t, "get "+strings.Repeat("k", 9000)+"\r\n")
	cl.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	got, err := cl.r.ReadString('\n')
	if err != nil || !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Fatalf("overlong line -> %q, %v", got, err)
	}
	if _, err := cl.r.ReadByte(); err != io.EOF {
		t.Fatalf("connection alive after framing loss: %v", err)
	}
	if st := srv.Stats(); st.ClientErrors != 1 {
		t.Fatalf("ClientErrors = %d, want 1", st.ClientErrors)
	}
}

// TestBackendRetrySucceeds verifies a transiently failing backend is retried
// and the GET still succeeds.
func TestBackendRetrySucceeds(t *testing.T) {
	store := backend.New(penalty.Uniform(0.001), func(uint64) int { return 8 })
	// ~50% failures per attempt; 5 retries make overall failure odds
	// ~1.6%, and the test key below is chosen to succeed within budget.
	store.SetFaults(&backend.Faults{ErrRate: 0.5, Seed: 42})
	srv, addr := startServer(t, Options{
		Backend:      store,
		FetchRetries: 8,
		FetchBackoff: time.Millisecond,
	})
	cl := dial(t, addr)
	for i := 0; i < 10; i++ {
		cl.send(t, fmt.Sprintf("get retry%d\r\n", i))
		got := cl.line(t)
		if !strings.HasPrefix(got, "VALUE") {
			t.Fatalf("get retry%d -> %q (retries should have carried it)", i, got)
		}
		cl.line(t) // body
		cl.line(t) // END
	}
	if st := srv.Stats(); st.BackendRetries == 0 {
		t.Fatal("no retries recorded under 50% error rate")
	}
	_ = srv
}

// TestServeStale verifies a GET whose backend fetch fails degrades to the
// engine's retained stale copy instead of a miss.
func TestServeStale(t *testing.T) {
	store := backend.New(penalty.Uniform(0.001), func(uint64) int { return 8 })
	cfg := defaultCfg()
	cfg.StaleValues = true
	cfg.StaleBytes = 1 << 16
	srv, addr := startServerCfg(t, cfg, Options{
		Backend:    store,
		ServeStale: true,
	})
	cl := dial(t, addr)

	// Store a value already expired: the next GET lazily reaps it into
	// the stale buffer.
	cl.send(t, "set ghosted 7 -1 5\r\nrelic\r\n")
	if got := cl.line(t); got != "STORED" {
		t.Fatalf("set -> %q", got)
	}

	// Healthy backend: the expired item is reaped, the fetch refills.
	cl.send(t, "get ghosted\r\n")
	if got := cl.line(t); !strings.HasPrefix(got, "VALUE ghosted") {
		t.Fatalf("refill get -> %q", got)
	}
	cl.line(t)
	cl.line(t)

	// Now expire it again and kill the backend outright.
	cl.send(t, "set ghosted 7 -1 5\r\nrelic\r\n")
	cl.line(t)
	store.SetFaults(&backend.Faults{ErrRate: 1.0, Seed: 7})

	cl.send(t, "get ghosted\r\n")
	if got := cl.line(t); got != "VALUE ghosted 7 5" {
		t.Fatalf("stale get header -> %q", got)
	}
	if got := cl.line(t); got != "relic" {
		t.Fatalf("stale get body -> %q", got)
	}
	if got := cl.line(t); got != "END" {
		t.Fatalf("stale get end -> %q", got)
	}
	st := srv.Stats()
	if st.StaleServes == 0 {
		t.Fatal("StaleServes = 0, want > 0")
	}
	if st.BackendFailures == 0 {
		t.Fatal("BackendFailures = 0, want > 0")
	}

	// Without a stale copy the degraded GET is a plain miss, not an
	// error.
	cl.send(t, "get neverseen\r\n")
	if got := cl.line(t); got != "END" {
		t.Fatalf("degraded miss -> %q", got)
	}
}

// TestFetchTimeout verifies a wedged-slow backend attempt is cut off by
// FetchTimeout rather than pinning the connection.
func TestFetchTimeout(t *testing.T) {
	store := backend.NewRealTime(penalty.Uniform(1.0), func(uint64) int { return 8 }, 1.0)
	srv, addr := startServer(t, Options{
		Backend:      store,
		FetchTimeout: 30 * time.Millisecond,
	})
	cl := dial(t, addr)
	start := time.Now()
	cl.send(t, "get gluekey\r\n")
	if got := cl.line(t); got != "END" {
		t.Fatalf("timed-out fetch -> %q, want plain miss", got)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("GET took %v despite 30ms fetch timeout", elapsed)
	}
	st := srv.Stats()
	if st.BackendTimeouts == 0 {
		t.Fatal("BackendTimeouts = 0, want > 0")
	}
	if st.BackendFailures == 0 {
		t.Fatal("BackendFailures = 0, want > 0")
	}
}

// TestFaultSuite is the acceptance scenario: 20% backend error rate plus
// latency spikes, concurrent clients with mixed operations, and the server
// must answer every request within its deadline and then drain cleanly.
func TestFaultSuite(t *testing.T) {
	store := backend.NewRealTime(penalty.Uniform(0.001), func(uint64) int { return 16 }, 1.0)
	store.SetFaults(&backend.Faults{
		ErrRate:    0.20,
		SpikeRate:  0.05,
		SpikeSleep: 5 * time.Millisecond,
		Seed:       1,
	})
	cfg := defaultCfg()
	cfg.StaleValues = true
	cfg.StaleBytes = 1 << 18
	srv, addr := startServerCfg(t, cfg, Options{
		Backend:      store,
		ReadTimeout:  5 * time.Second,
		WriteTimeout: 5 * time.Second,
		MaxConns:     8,
		MaxPipeline:  16,
		FetchTimeout: 250 * time.Millisecond,
		FetchRetries: 2,
		FetchBackoff: time.Millisecond,
		ServeStale:   true,
		DrainTimeout: 10 * time.Second,
	})

	const (
		workers = 8
		ops     = 60
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			rng := rand.New(rand.NewSource(int64(w)))
			readLine := func() (string, error) {
				conn.SetReadDeadline(time.Now().Add(10 * time.Second))
				l, err := r.ReadString('\n')
				return strings.TrimRight(l, "\r\n"), err
			}
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("fk%d", rng.Intn(40))
				switch rng.Intn(10) {
				case 0, 1, 2: // set
					msg := fmt.Sprintf("set %s 0 0 4\r\nbody\r\n", key)
					if _, err := conn.Write([]byte(msg)); err != nil {
						errs <- fmt.Errorf("worker %d op %d write: %w", w, i, err)
						return
					}
					if got, err := readLine(); err != nil || got != "STORED" {
						errs <- fmt.Errorf("worker %d op %d set -> %q, %v", w, i, got, err)
						return
					}
				case 3: // delete
					if _, err := conn.Write([]byte("delete " + key + "\r\n")); err != nil {
						errs <- fmt.Errorf("worker %d op %d write: %w", w, i, err)
						return
					}
					if got, err := readLine(); err != nil || (got != "DELETED" && got != "NOT_FOUND") {
						errs <- fmt.Errorf("worker %d op %d delete -> %q, %v", w, i, got, err)
						return
					}
				case 4: // incr on a non-numeric or missing key: any legal reply
					if _, err := conn.Write([]byte("incr " + key + " 1\r\n")); err != nil {
						errs <- fmt.Errorf("worker %d op %d write: %w", w, i, err)
						return
					}
					got, err := readLine()
					if err != nil {
						errs <- fmt.Errorf("worker %d op %d incr: %v", w, i, err)
						return
					}
					if got != "NOT_FOUND" && !strings.HasPrefix(got, "CLIENT_ERROR") && !isNumber(got) {
						errs <- fmt.Errorf("worker %d op %d incr -> %q", w, i, got)
						return
					}
				default: // get: must terminate with END whatever the backend does
					if _, err := conn.Write([]byte("get " + key + "\r\n")); err != nil {
						errs <- fmt.Errorf("worker %d op %d write: %w", w, i, err)
						return
					}
					for {
						got, err := readLine()
						if err != nil {
							errs <- fmt.Errorf("worker %d op %d get: %v", w, i, err)
							return
						}
						if got == "END" {
							break
						}
						var vk string
						var vf uint32
						var vn int
						if _, err := fmt.Sscanf(got, "VALUE %s %d %d", &vk, &vf, &vn); err != nil {
							errs <- fmt.Errorf("worker %d op %d get line -> %q", w, i, got)
							return
						}
						// Backend-filled bodies are arbitrary bytes;
						// consume exactly <bytes> + CRLF.
						conn.SetReadDeadline(time.Now().Add(10 * time.Second))
						if _, err := io.ReadFull(r, make([]byte, vn+2)); err != nil {
							errs <- fmt.Errorf("worker %d op %d get body: %v", w, i, err)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The backend provably misbehaved and the server absorbed it.
	if store.InjectedErrors() == 0 {
		t.Fatal("fault injection never fired; scenario is vacuous")
	}
	st := srv.Stats()
	if st.IOErrors != 0 {
		t.Fatalf("IOErrors = %d, want 0", st.IOErrors)
	}

	// Shutdown after the storm must drain, not wedge.
	done := make(chan struct{})
	go func() {
		srv.Shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("Shutdown wedged after fault storm")
	}
}

func isNumber(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// TestStatsCommandReportsServerCounters verifies the stats verb surfaces the
// new server-level counters.
func TestStatsCommandReportsServerCounters(t *testing.T) {
	_, addr := startServer(t, Options{})
	cl := dial(t, addr)
	cl.send(t, "bogus\r\n")
	cl.line(t)
	cl.send(t, "stats\r\n")
	stats := map[string]string{}
	for {
		l := cl.line(t)
		if l == "END" {
			break
		}
		parts := strings.SplitN(l, " ", 3)
		if len(parts) == 3 && parts[0] == "STAT" {
			stats[parts[1]] = parts[2]
		}
	}
	for _, want := range []string{
		"curr_connections", "total_connections", "client_errors",
		"server_errors", "idle_timeouts", "response_batches",
		"batched_commands", "backend_failures", "stale_serves",
	} {
		if _, ok := stats[want]; !ok {
			t.Fatalf("stats reply missing %q", want)
		}
	}
	if stats["client_errors"] != "1" {
		t.Fatalf("client_errors = %q, want 1", stats["client_errors"])
	}
	if stats["curr_connections"] != "1" {
		t.Fatalf("curr_connections = %q, want 1", stats["curr_connections"])
	}
}

// TestServerStressShardBacked hammers a live shard-backed server over TCP
// with pipelined mixed operations from many connections. Run under -race;
// the assertions are response coherence and clean invariants after the storm.
func TestServerStressShardBacked(t *testing.T) {
	g, err := shard.New(defaultCfg(), 4, func() cache.Policy { return core.New(core.DefaultConfig()) })
	if err != nil {
		t.Fatal(err)
	}
	srv := New(g, Options{
		ReadTimeout:  5 * time.Second,
		WriteTimeout: 5 * time.Second,
		MaxPipeline:  32,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Shutdown)
	addr := ln.Addr().String()

	const (
		workers = 8
		rounds  = 40
		burst   = 8
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for round := 0; round < rounds; round++ {
				// Build one pipelined burst, then validate every reply
				// in order.
				var req strings.Builder
				var expect []string // "STORED", "get:<key>", "DELETED|NOT_FOUND", "delta"
				for b := 0; b < burst; b++ {
					key := fmt.Sprintf("sk%d", rng.Intn(64))
					switch rng.Intn(6) {
					case 0, 1:
						v := "val:" + key
						fmt.Fprintf(&req, "set %s 3 0 %d\r\n%s\r\n", key, len(v), v)
						expect = append(expect, "STORED")
					case 2:
						fmt.Fprintf(&req, "delete %s\r\n", key)
						expect = append(expect, "DELETED|NOT_FOUND")
					case 3:
						nk := fmt.Sprintf("nk%d", rng.Intn(16))
						fmt.Fprintf(&req, "set %s 0 0 1\r\n5\r\nincr %s 3\r\n", nk, nk)
						expect = append(expect, "STORED", "delta")
					default:
						fmt.Fprintf(&req, "get %s\r\n", key)
						expect = append(expect, "get:"+key)
					}
				}
				if _, err := conn.Write([]byte(req.String())); err != nil {
					errs <- fmt.Errorf("worker %d round %d write: %w", w, round, err)
					return
				}
				conn.SetReadDeadline(time.Now().Add(10 * time.Second))
				for i, want := range expect {
					line, err := r.ReadString('\n')
					if err != nil {
						errs <- fmt.Errorf("worker %d round %d reply %d: %w", w, round, i, err)
						return
					}
					got := strings.TrimRight(line, "\r\n")
					switch {
					case want == "STORED":
						if got != "STORED" {
							errs <- fmt.Errorf("worker %d round %d: set -> %q", w, round, got)
							return
						}
					case want == "DELETED|NOT_FOUND":
						if got != "DELETED" && got != "NOT_FOUND" {
							errs <- fmt.Errorf("worker %d round %d: delete -> %q", w, round, got)
							return
						}
					case want == "delta":
						if !isNumber(got) {
							errs <- fmt.Errorf("worker %d round %d: incr -> %q", w, round, got)
							return
						}
					case strings.HasPrefix(want, "get:"):
						key := want[len("get:"):]
						if got == "END" {
							continue // miss
						}
						if got != fmt.Sprintf("VALUE %s 3 %d", key, len("val:"+key)) {
							errs <- fmt.Errorf("worker %d round %d: get header -> %q", w, round, got)
							return
						}
						body, err := r.ReadString('\n')
						if err != nil || strings.TrimRight(body, "\r\n") != "val:"+key {
							errs <- fmt.Errorf("worker %d round %d: get body -> %q, %v", w, round, body, err)
							return
						}
						end, err := r.ReadString('\n')
						if err != nil || strings.TrimRight(end, "\r\n") != "END" {
							errs <- fmt.Errorf("worker %d round %d: get end -> %q, %v", w, round, end, err)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.IOErrors != 0 || st.ClientErrors != 0 || st.ServerErrors != 0 {
		t.Fatalf("stress run not clean: %+v", st)
	}
	if st.Batches == 0 || st.BatchedCmds <= st.Batches {
		t.Fatalf("no pipelining observed: %+v", st)
	}
}
