package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// readStats runs the in-band `stats` command and returns its key/value map.
func (c *client) readStats(t *testing.T) map[string]string {
	t.Helper()
	c.send(t, "stats\r\n")
	m := map[string]string{}
	for {
		l := c.line(t)
		if l == "END" {
			return m
		}
		parts := strings.SplitN(l, " ", 3)
		if len(parts) != 3 || parts[0] != "STAT" {
			t.Fatalf("bad stats line %q", l)
		}
		m[parts[1]] = parts[2]
	}
}

// httpGet fetches one admin endpoint body.
func httpGet(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	return string(body), resp.Header.Get("Content-Type")
}

// promLine matches one Prometheus text-format sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// TestAdminEndToEnd drives a mixed workload through the TCP port and then
// checks every observability surface agrees: /metrics parses as Prometheus
// text, /statsz round-trips as JSON, and both reconcile with the in-band
// `stats` command.
func TestAdminEndToEnd(t *testing.T) {
	srv, addr := startServer(t, Options{})
	admin := NewAdmin(srv, 0)
	aln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go admin.Serve(aln)
	t.Cleanup(func() { admin.Close() })
	base := "http://" + aln.Addr().String()

	cl := dial(t, addr)
	// Mixed workload: stores across size classes and penalty bands, hits,
	// misses, a delete, a counter.
	for i := 0; i < 40; i++ {
		val := strings.Repeat("x", 20+i*17)
		cl.send(t, fmt.Sprintf("set key%d 0 0 %d\r\n%s\r\n", i, len(val), val))
		if got := cl.line(t); got != "STORED" {
			t.Fatalf("set key%d: %q", i, got)
		}
	}
	hits, misses := 0, 0
	for i := 0; i < 60; i++ {
		cl.send(t, fmt.Sprintf("get key%d\r\n", i))
		if l := cl.line(t); strings.HasPrefix(l, "VALUE ") {
			hits++
			cl.line(t) // body
			if end := cl.line(t); end != "END" {
				t.Fatalf("get tail: %q", end)
			}
		} else if l == "END" {
			misses++
		} else {
			t.Fatalf("get key%d: %q", i, l)
		}
	}
	cl.send(t, "delete key0\r\n")
	if got := cl.line(t); got != "DELETED" {
		t.Fatalf("delete: %q", got)
	}
	cl.send(t, "set n 0 0 1\r\n7\r\nincr n 3\r\n")
	if got := cl.line(t); got != "STORED" {
		t.Fatalf("set n: %q", got)
	}
	if got := cl.line(t); got != "10" {
		t.Fatalf("incr: %q", got)
	}
	if hits != 40 || misses != 20 {
		t.Fatalf("workload shape: %d hits, %d misses", hits, misses)
	}
	stats := cl.readStats(t)

	t.Run("healthz", func(t *testing.T) {
		body, _ := httpGet(t, base+"/healthz")
		if strings.TrimSpace(body) != "ok" {
			t.Fatalf("healthz = %q", body)
		}
	})

	t.Run("metrics", func(t *testing.T) {
		body, ctype := httpGet(t, base+"/metrics")
		if !strings.HasPrefix(ctype, "text/plain") || !strings.Contains(ctype, "0.0.4") {
			t.Errorf("content type %q", ctype)
		}
		samples := map[string]float64{}
		typed := map[string]bool{}
		var lastBucketCum = map[string]float64{}
		for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
			if strings.HasPrefix(line, "# TYPE ") {
				f := strings.Fields(line)
				if len(f) != 4 {
					t.Fatalf("bad TYPE line %q", line)
				}
				if typed[f[2]] {
					t.Errorf("duplicate TYPE for %s", f[2])
				}
				typed[f[2]] = true
				continue
			}
			if strings.HasPrefix(line, "# HELP ") {
				continue
			}
			if strings.HasPrefix(line, "#") || line == "" {
				t.Fatalf("unexpected comment/blank line %q", line)
			}
			if !promLine.MatchString(line) {
				t.Fatalf("line does not parse as a Prometheus sample: %q", line)
			}
			sp := strings.LastIndexByte(line, ' ')
			name, valStr := line[:sp], line[sp+1:]
			v, err := strconv.ParseFloat(valStr, 64)
			if err != nil && valStr != "NaN" && valStr != "+Inf" {
				t.Fatalf("bad sample value in %q: %v", line, err)
			}
			samples[name] = v
			// Cumulative `le` buckets must be non-decreasing per series.
			if i := strings.Index(name, "_bucket{"); i >= 0 {
				series := name[:i] + histSeriesKey(name)
				if v < lastBucketCum[series] {
					t.Errorf("bucket counts decrease in %q", name)
				}
				lastBucketCum[series] = v
			}
		}
		// Every metric family used a TYPE header.
		for name := range samples {
			fam := name
			if i := strings.IndexByte(fam, '{'); i >= 0 {
				fam = fam[:i]
			}
			fam = strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(fam, "_bucket"), "_sum"), "_count")
			if !typed[fam] {
				t.Errorf("sample %q has no TYPE header (family %q)", name, fam)
			}
		}
		// The acceptance surface: engine counters, per-class slabs,
		// subclass attribution, and the GET latency histogram.
		wantGets := float64(hits + misses)
		if samples["pamakv_gets_total"] != wantGets {
			t.Errorf("pamakv_gets_total = %v, want %v", samples["pamakv_gets_total"], wantGets)
		}
		if samples["pamakv_hits_total"] != float64(hits) {
			t.Errorf("pamakv_hits_total = %v, want %d", samples["pamakv_hits_total"], hits)
		}
		for _, want := range []string{
			`pamakv_slabs{class="0"}`,
			`pamakv_request_seconds_count{cmd="get"}`,
			`pamakv_request_seconds_bucket{cmd="get",le="+Inf"}`,
		} {
			if _, ok := samples[want]; !ok {
				t.Errorf("missing sample %s", want)
			}
		}
		var subHits float64
		for name, v := range samples {
			if strings.HasPrefix(name, "pamakv_subclass_hits_total{") {
				subHits += v
			}
		}
		if subHits != float64(hits) {
			t.Errorf("sum of pamakv_subclass_hits_total = %v, want %d", subHits, hits)
		}
		// GET latency histogram observed one sample per GET (and the
		// cumulative +Inf bucket equals the count).
		getCount := samples[`pamakv_request_seconds_count{cmd="get"}`]
		if getCount != wantGets {
			t.Errorf("request_seconds_count{get} = %v, want %v", getCount, wantGets)
		}
		if inf := samples[`pamakv_request_seconds_bucket{cmd="get",le="+Inf"}`]; inf != getCount {
			t.Errorf("+Inf bucket %v != count %v", inf, getCount)
		}
	})

	t.Run("statsz", func(t *testing.T) {
		body, ctype := httpGet(t, base+"/statsz")
		if !strings.HasPrefix(ctype, "application/json") {
			t.Errorf("content type %q", ctype)
		}
		var doc Statsz
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("unmarshal /statsz: %v", err)
		}
		// Round trip: re-encoding must be stable (no NaN can have slipped
		// in; json.Marshal would have failed already on the server side).
		again, err := json.Marshal(doc)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		var doc2 Statsz
		if err := json.Unmarshal(again, &doc2); err != nil {
			t.Fatalf("re-unmarshal: %v", err)
		}
		if doc2.Engine != doc.Engine {
			t.Errorf("engine stats changed across round trip")
		}

		// Reconciliation with the in-band stats command.
		if got := strconv.FormatUint(doc.Engine.Gets, 10); got != stats["cmd_get"] {
			t.Errorf("statsz gets %s != stats cmd_get %s", got, stats["cmd_get"])
		}
		if got := strconv.FormatUint(doc.Engine.Hits, 10); got != stats["get_hits"] {
			t.Errorf("statsz hits %s != stats get_hits %s", got, stats["get_hits"])
		}
		if got := strconv.FormatUint(doc.Engine.Misses, 10); got != stats["get_misses"] {
			t.Errorf("statsz misses %s != stats get_misses %s", got, stats["get_misses"])
		}
		if doc.Engine.Hits+doc.Engine.Misses != doc.Engine.Gets {
			t.Errorf("hits %d + misses %d != gets %d", doc.Engine.Hits, doc.Engine.Misses, doc.Engine.Gets)
		}
		if doc.HitRatio == nil {
			t.Fatal("hit_ratio omitted despite traffic")
		}
		if want := float64(doc.Engine.Hits) / float64(doc.Engine.Gets); *doc.HitRatio != want {
			t.Errorf("hit_ratio = %v, want %v", *doc.HitRatio, want)
		}
		if doc.Introspection == nil {
			t.Fatal("introspection missing for *cache.Cache store")
		}
		in := doc.Introspection
		var subHits uint64
		for _, row := range in.SubHits {
			for _, n := range row {
				subHits += n
			}
		}
		if subHits != doc.Engine.Hits {
			t.Errorf("introspection sum(SubHits) = %d, want %d", subHits, doc.Engine.Hits)
		}
		if doc.Latencies["get"].Count != doc.Engine.Gets {
			t.Errorf("latency get count = %d, want %d", doc.Latencies["get"].Count, doc.Engine.Gets)
		}
		if doc.Latencies["get"].P99 <= 0 || doc.Latencies["get"].Mean <= 0 {
			t.Errorf("degenerate get latency summary: %+v", doc.Latencies["get"])
		}
		// Slabs per class must agree with the stats command's slabs_class_N.
		for cl, n := range doc.Slabs {
			key := "slabs_class_" + strconv.Itoa(cl)
			if n == 0 {
				if _, ok := stats[key]; ok {
					t.Errorf("stats has %s but statsz reports 0", key)
				}
				continue
			}
			if stats[key] != strconv.Itoa(n) {
				t.Errorf("%s = %s in stats, %d in statsz", key, stats[key], n)
			}
		}
	})

	t.Run("series", func(t *testing.T) {
		admin.Sample() // baseline
		cl.send(t, "get key1\r\n")
		cl.line(t)     // VALUE
		cl.line(t)     // body
		cl.line(t)     // END
		admin.Sample() // closes a window containing one GET hit
		body, _ := httpGet(t, base+"/series")
		lines := strings.Split(strings.TrimSpace(body), "\n")
		if len(lines) < 2 {
			t.Fatalf("series has no data rows:\n%s", body)
		}
		row := lines[len(lines)-1]
		if !strings.Contains(row, "1.0000") {
			t.Errorf("window hit ratio row = %q, want 1.0000 (one hit, one get)", row)
		}
		if strings.Contains(body, "NaN") {
			t.Errorf("series leaks NaN:\n%s", body)
		}
	})

	t.Run("pprof", func(t *testing.T) {
		body, _ := httpGet(t, base+"/debug/pprof/cmdline")
		if len(body) == 0 {
			t.Error("pprof cmdline empty")
		}
	})
}

// histSeriesKey extracts the label set minus `le` so buckets of one series
// are compared against each other only.
func histSeriesKey(name string) string {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return ""
	}
	labels := strings.TrimSuffix(name[i+1:], "}")
	var keep []string
	for _, l := range strings.Split(labels, ",") {
		if !strings.HasPrefix(l, "le=") {
			keep = append(keep, l)
		}
	}
	return strings.Join(keep, ",")
}

// TestAdminSamplerClosesWindows checks the background sampler fills /series
// without manual Sample calls.
func TestAdminSamplerClosesWindows(t *testing.T) {
	srv, addr := startServer(t, Options{})
	admin := NewAdmin(srv, 5*time.Millisecond)
	aln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go admin.Serve(aln)
	t.Cleanup(func() { admin.Close() })

	cl := dial(t, addr)
	cl.send(t, "set k 0 0 3\r\nabc\r\n")
	if got := cl.line(t); got != "STORED" {
		t.Fatalf("set: %q", got)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		body, _ := httpGet(t, "http://"+aln.Addr().String()+"/series")
		if len(strings.Split(strings.TrimSpace(body), "\n")) >= 3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("sampler closed no windows:\n%s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAdminStatszEmptyServer checks the no-traffic document: hit_ratio is
// omitted (not NaN, not 0) and the JSON still decodes.
func TestAdminStatszEmptyServer(t *testing.T) {
	srv, _ := startServer(t, Options{})
	admin := NewAdmin(srv, 0)
	aln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go admin.Serve(aln)
	t.Cleanup(func() { admin.Close() })

	body, _ := httpGet(t, "http://"+aln.Addr().String()+"/statsz")
	if strings.Contains(body, "NaN") {
		t.Fatalf("statsz leaks NaN:\n%s", body)
	}
	var doc Statsz
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.HitRatio != nil {
		t.Errorf("hit_ratio = %v on an idle server, want omitted", *doc.HitRatio)
	}
	if doc.Latencies["get"].Count != 0 {
		t.Errorf("latency count = %d on an idle server", doc.Latencies["get"].Count)
	}
}
