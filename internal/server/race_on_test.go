//go:build race

package server

// raceEnabled reports whether the race detector is instrumenting this build.
// Timing-sensitive acceptance tests widen their latency allowances under it:
// the detector multiplies per-operation cost, which inflates queueing delay
// in ways production never sees.
const raceEnabled = true
