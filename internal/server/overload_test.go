package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pamakv/internal/backend"
	"pamakv/internal/cluster"
	"pamakv/internal/overload"
	"pamakv/internal/penalty"
	"pamakv/internal/proto"
)

// readOneGetResponse consumes one GET response from r: VALUE blocks up to
// END, or a single shed/error line. It reports what the response was and
// fails on torn frames (a VALUE header whose body never arrives).
func readOneGetResponse(t *testing.T, r *bufio.Reader) (kind string, err error) {
	t.Helper()
	hit := false
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return "", err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case strings.HasPrefix(line, "VALUE "):
			var key string
			var flags, n int
			if _, err := fmt.Sscanf(line, "VALUE %s %d %d", &key, &flags, &n); err != nil {
				t.Fatalf("malformed VALUE header %q", line)
			}
			if _, err := io.CopyN(io.Discard, r, int64(n)+2); err != nil {
				t.Fatalf("torn VALUE body after %q: %v", line, err)
			}
			hit = true
		case line == "END":
			if hit {
				return "hit", nil
			}
			return "miss", nil
		case line == "SERVER_ERROR "+proto.ShedMsg:
			return "shed", nil
		case strings.HasPrefix(line, "SERVER_ERROR"):
			return "error", nil
		default:
			t.Fatalf("unexpected response line %q", line)
		}
	}
}

// bucketKeys scans synthetic keys and buckets them by the penalty subclass
// the server itself would assign, until each bucket reaches its quota.
func bucketKeys(t *testing.T, store *backend.Store, cheapN, expN int, expLo, expHi float64) (cheap, expensive []string) {
	t.Helper()
	for i := 0; i < 200_000 && (len(cheap) < cheapN || len(expensive) < expN); i++ {
		k := fmt.Sprintf("storm:%d", i)
		p := store.PenaltyOf(k)
		sub := penalty.SubclassFor(p, penalty.SubclassBounds)
		switch {
		case sub <= 1 && len(cheap) < cheapN:
			cheap = append(cheap, k)
		case sub == 4 && p >= expLo && p <= expHi && len(expensive) < expN:
			expensive = append(expensive, k)
		}
	}
	if len(cheap) < cheapN || len(expensive) < expN {
		t.Fatalf("key scan exhausted: %d cheap (want %d), %d expensive (want %d)",
			len(cheap), cheapN, len(expensive), expN)
	}
	return cheap, expensive
}

func p99(samples []time.Duration) time.Duration {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := int(float64(len(samples))*0.99) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(samples) {
		idx = len(samples) - 1
	}
	return samples[idx]
}

// TestOverloadStorm is the acceptance scenario: a read stampede at far above
// admission capacity. The server must shed (cheap classes first), never
// exceed the hard in-flight ceiling, and keep the protected highest-penalty
// subclass within 20% of its unloaded baseline for both p99 latency and
// success rate.
func TestOverloadStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second storm")
	}
	// Penalty-true backend: expensive keys (subclass 4, 1.5–4.5 s modeled
	// penalty) cost 12–36 ms per fetch at this scale; cheap keys are
	// sub-millisecond.
	const scale = 0.008
	store := backend.NewRealTime(penalty.Default(), func(uint64) int { return 64 }, scale)
	const (
		maxInflight = 16
		baseKeys    = 60 // distinct expensive keys for the unloaded baseline
		stormKeys   = 80 // distinct expensive keys probed during the storm
	)
	// The cheap pool must outrun the cache: with only a few hundred keys
	// one storm pass fills the cache and the stampede degenerates into
	// microsecond hits that never saturate admission. Tens of thousands
	// of distinct keys keep misses (and evictions) flowing.
	cheap, expensive := bucketKeys(t, store, 30_000, baseKeys+stormKeys, 1.5, 4.5)

	srv, addr := startServer(t, Options{
		Backend: store,
		Overload: &overload.Config{
			MaxInflight:   maxInflight,
			InitialLimit:  maxInflight,
			MinLimit:      4,
			Target:        150 * time.Millisecond,
			Quantile:      0.99,
			QueueLimit:    16,
			SojournCutoff: 250 * time.Millisecond,
			TierHold:      200 * time.Millisecond,
		},
	})

	// getExpensive runs sequential GETs for distinct expensive keys on
	// one connection, recording per-request latency; every response must
	// be a hit (read-through fill) for the request to count as a success.
	getExpensive := func(keys []string) (lats []time.Duration, failures int) {
		cl := dial(t, addr)
		for _, k := range keys {
			start := time.Now()
			cl.send(t, "get "+k+"\r\n")
			kind, err := readOneGetResponse(t, cl.r)
			if err != nil {
				t.Errorf("expensive get %s: %v", k, err)
				failures++
				continue
			}
			lats = append(lats, time.Since(start))
			if kind != "hit" {
				failures++
			}
		}
		return lats, failures
	}

	// Unloaded baseline: two connections, sequential expensive misses.
	var baseMu sync.Mutex
	var baseLats []time.Duration
	baseFailures := 0
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(keys []string) {
			defer wg.Done()
			lats, fails := getExpensive(keys)
			baseMu.Lock()
			baseLats = append(baseLats, lats...)
			baseFailures += fails
			baseMu.Unlock()
		}(expensive[i*baseKeys/2 : (i+1)*baseKeys/2])
	}
	wg.Wait()
	if baseFailures != 0 {
		t.Fatalf("baseline had %d failures; unloaded expensive gets must all hit", baseFailures)
	}
	baseP99 := p99(baseLats)

	// The storm: 40 connections of pipelined cheap-GET bursts — hundreds
	// of outstanding requests against a 16-slot ceiling.
	stop := make(chan struct{})
	var stormWG sync.WaitGroup
	for i := 0; i < 40; i++ {
		stormWG.Add(1)
		go func(seed int) {
			defer stormWG.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			const burst = 8
			for n := seed; ; n += burst {
				select {
				case <-stop:
					return
				default:
				}
				var req strings.Builder
				for j := 0; j < burst; j++ {
					req.WriteString("get " + cheap[(n+j)%len(cheap)] + "\r\n")
				}
				conn.SetDeadline(time.Now().Add(10 * time.Second))
				if _, err := conn.Write([]byte(req.String())); err != nil {
					return
				}
				for j := 0; j < burst; j++ {
					if _, err := readOneGetResponse(t, r); err != nil {
						return
					}
				}
			}
		}(i * 751) // disjoint strides through the cheap pool
	}
	// Let the stampede build pressure before probing.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Overload().Stats().ShedTotal == 0 {
		if time.Now().After(deadline) {
			close(stop)
			stormWG.Wait()
			t.Fatal("storm produced no sheds within 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Probe the protected class mid-storm: four connections of distinct
	// expensive keys.
	var stormMu sync.Mutex
	var stormLats []time.Duration
	stormFailures := 0
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(keys []string) {
			defer wg.Done()
			lats, fails := getExpensive(keys)
			stormMu.Lock()
			stormLats = append(stormLats, lats...)
			stormFailures += fails
			stormMu.Unlock()
		}(expensive[baseKeys+i*stormKeys/4 : baseKeys+(i+1)*stormKeys/4])
	}
	wg.Wait()
	close(stop)
	stormWG.Wait()

	st := srv.Overload().Stats()
	if st.ShedTotal == 0 {
		t.Fatal("storm at >4x capacity shed nothing")
	}
	if st.PeakInflight > maxInflight {
		t.Fatalf("peak inflight %d exceeded the hard ceiling %d", st.PeakInflight, maxInflight)
	}
	if cheapSheds := st.ShedBySub[0] + st.ShedBySub[1]; cheapSheds == 0 {
		t.Fatalf("no cheap-subclass sheds; shed-by-sub = %v", st.ShedBySub)
	}
	// Protected class: success within 20% of the (100%) baseline.
	if maxFails := stormKeys / 5; stormFailures > maxFails {
		t.Fatalf("protected class failed %d/%d during storm (allowed %d)",
			stormFailures, stormKeys, maxFails)
	}
	// Protected class: p99 within 20% of unloaded baseline. The race
	// detector multiplies per-request bookkeeping cost across the 40
	// storm connections, so grant it a fixed scheduling allowance — still
	// far below the hundreds of milliseconds an unprotected stampede
	// would cost the expensive class.
	limit := baseP99 + baseP99/5
	if raceEnabled {
		limit += 30 * time.Millisecond
	}
	stormP99 := p99(stormLats)
	if stormP99 > limit {
		t.Fatalf("protected-class p99 %v under storm, want <= %v (baseline %v + 20%%)",
			stormP99, limit, baseP99)
	}
	t.Logf("baseline p99=%v storm p99=%v sheds=%d by-sub=%v peak-inflight=%d",
		baseP99, stormP99, st.ShedTotal, st.ShedBySub, st.PeakInflight)
}

// TestOverloadDrainMidBurst: Shutdown lands in the middle of pipelined
// bursts while the admission queue holds waiters. Every accepted request
// must be answered (served or shed) or its connection closed cleanly at a
// response boundary — never a torn frame, never a waiter left blocked on
// admission.
func TestOverloadDrainMidBurst(t *testing.T) {
	store := backend.NewRealTime(penalty.Uniform(0.05), func(uint64) int { return 8 }, 1.0)
	srv, addr := startServer(t, Options{
		Backend:      store,
		DrainTimeout: 10 * time.Second,
		Overload: &overload.Config{
			MaxInflight:   4,
			InitialLimit:  4,
			Target:        time.Second,
			QueueLimit:    8,
			SojournCutoff: 5 * time.Second,
		},
	})

	const conns, perConn = 6, 10
	var answered, cleanEOF atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(30 * time.Second))
			var req strings.Builder
			for j := 0; j < perConn; j++ {
				fmt.Fprintf(&req, "get drain:%d:%d\r\n", i, j)
			}
			if _, err := conn.Write([]byte(req.String())); err != nil {
				return
			}
			r := bufio.NewReader(conn)
			for j := 0; j < perConn; j++ {
				if _, err := readOneGetResponse(t, r); err != nil {
					// readOneGetResponse fails the test itself on a
					// torn frame; an error here is EOF at a response
					// boundary — a clean close.
					cleanEOF.Add(1)
					return
				}
				answered.Add(1)
			}
		}(i)
	}

	time.Sleep(40 * time.Millisecond) // bursts in flight, queue populated
	done := make(chan struct{})
	go func() {
		srv.Shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("Shutdown wedged with queued admissions outstanding")
	}
	wg.Wait()
	if answered.Load() == 0 {
		t.Fatal("no responses before shutdown; the drain overlapped nothing")
	}
	t.Logf("answered=%d clean-eofs=%d forced-closes=%d",
		answered.Load(), cleanEOF.Load(), srv.Stats().ForcedCloses)
}

// TestOverloadTierDrivesClusterDegraded: the server's tier transitions must
// flip the cluster into degraded mode (hedging off, retries halved) the
// moment pressure appears, and back once it subsides.
func TestOverloadTierDrivesClusterDegraded(t *testing.T) {
	store := backend.NewRealTime(penalty.Uniform(0.3), func(uint64) int { return 8 }, 1.0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	self := ln.Addr().String()
	ln.Close()
	peers, err := cluster.New(cluster.Config{
		Self:    self,
		Members: []string{self},
		Hedge:   cluster.DefaultHedgePolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer peers.Close()

	_, addr := startServer(t, Options{
		Backend: store,
		Cluster: peers,
		Overload: &overload.Config{
			MaxInflight:   1,
			MinLimit:      1,
			InitialLimit:  1,
			Target:        time.Second,
			QueueLimit:    4,
			SojournCutoff: 5 * time.Second,
			TierHold:      50 * time.Millisecond,
		},
	})
	if peers.Degraded() {
		t.Fatal("degraded before any pressure")
	}

	// One slow fetch occupies the single slot; a second request finds the
	// server saturated, which is tier strained — hedging must flip off.
	slow := dial(t, addr)
	slow.send(t, "get tier:slow\r\n") // ~300ms fetch
	time.Sleep(20 * time.Millisecond)
	queued := dial(t, addr)
	queued.send(t, "get tier:queued\r\n")
	deadline := time.Now().Add(2 * time.Second)
	for !peers.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("pressure did not degrade the cluster tier")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if d := peers.HedgeDelay(4.0); d != 0 {
		t.Fatalf("HedgeDelay = %v while strained, want 0", d)
	}

	// Both responses complete; with the pressure gone and the hold
	// elapsed, calm traffic must walk the tier back down and re-enable
	// hedging.
	for _, cl := range []*client{slow, queued} {
		if kind, err := readOneGetResponse(t, cl.r); err != nil || kind != "hit" {
			t.Fatalf("pressured get = %q, %v", kind, err)
		}
	}
	probe := dial(t, addr)
	deadline = time.Now().Add(5 * time.Second)
	for peers.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("cluster still degraded after pressure subsided")
		}
		time.Sleep(20 * time.Millisecond)
		probe.send(t, "get tier:probe\r\n")
		if _, err := readOneGetResponse(t, probe.r); err != nil {
			t.Fatal(err)
		}
	}
	if d := peers.HedgeDelay(4.0); d <= 0 {
		t.Fatalf("HedgeDelay = %v after recovery, want > 0", d)
	}
}
