// Package server exposes the cache engine over the Memcached ASCII protocol
// (package proto) on a TCP listener, one goroutine per connection.
//
// The serving path is built to stay predictable when clients or the backend
// misbehave:
//
//   - Pipelining: a connection's already-buffered requests are parsed and
//     dispatched as one batch and answered with a single flush, instead of
//     strict request-reply lockstep (one write syscall per burst).
//   - Deadlines: per-connection read (idle) and write (flush) deadlines
//     bound how long a stalled peer can pin a goroutine.
//   - Backpressure: MaxConns caps concurrent connections; the accept loop
//     blocks when the cap is reached, leaving excess dials in the kernel
//     backlog instead of admitting unbounded goroutines.
//   - Graceful shutdown: Shutdown stops accepting, wakes idle connections,
//     lets in-flight batches complete and flush, and only force-closes
//     connections that outlive the drain window.
//
// The server can optionally run in read-through mode with a simulated
// back-end store: a GET miss fetches the value from the backend (paying its
// scaled miss penalty in real time), refills the cache with the penalty
// attached, and serves the value — the GET-miss → SET pattern the paper's
// penalty estimation is built on, live on a socket. Backend fetches can be
// bounded by a per-attempt timeout, retried with exponential backoff, and —
// when the engine retains stale values (cache.Config.StaleValues) — degraded
// to serve-stale instead of surfacing a miss when the backend stays down.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pamakv/internal/backend"
	"pamakv/internal/bufpool"
	"pamakv/internal/cache"
	"pamakv/internal/cluster"
	"pamakv/internal/membership"
	"pamakv/internal/obs"
	"pamakv/internal/overload"
	"pamakv/internal/penalty"
	"pamakv/internal/proto"
	"pamakv/internal/singleflight"
	"pamakv/internal/tenant"
)

// Command families for latency attribution. Reads and writes have different
// latency floors (a GET miss may pay a backend fetch; a SET never does), so
// one merged histogram would hide exactly the effect the paper prices.
const (
	famGet = iota
	famSet
	famDelete
	famDelta
	famOther
	numFams
)

// famNames label the families in Latencies() and /metrics.
var famNames = [numFams]string{"get", "set", "delete", "delta", "other"}

// famOf maps a protocol command to its latency family.
func famOf(name string) uint8 {
	switch name {
	case "get", "gets":
		return famGet
	case "set", "add", "replace", "append", "prepend", "cas":
		return famSet
	case "delete":
		return famDelete
	case "incr", "decr":
		return famDelta
	default:
		return famOther
	}
}

// itemOverhead approximates per-item metadata charged to the slab slot, as
// Memcached charges its item header.
const itemOverhead = 56

// Defaults for the hardening knobs (chosen, not magic: a 64-deep batch
// bounds response buffering at ~64 MiB worst case; 5 s is the common
// load-balancer drain budget).
const (
	DefaultMaxPipeline  = 64
	DefaultDrainTimeout = 5 * time.Second
)

// Per-connection scratch sizing. Buffers start small and grow to the
// workload; after each flush any buffer that outgrew maxRetainedScratch is
// released, so one 1 MiB value does not pin a megabyte on every idle
// connection for the rest of its life.
const (
	initialScratch     = 4 << 10
	maxRetainedScratch = 64 << 10
)

// pending records one pipelined request awaiting its batch flush: latency
// is observed once the shared flush lands.
type pending struct {
	fam   uint8
	start time.Time
}

// connScratch is a connection's reusable serving state. Together with the
// proto.Parser it makes the request→response path allocation-free in steady
// state: the response accumulates in out, engine values are copied into
// val, and both buffers live for the connection (capacity-capped after each
// flush).
type connScratch struct {
	out  []byte    // response batch buffer
	val  []byte    // engine value copy target (Get/GetWithCAS/GetStale)
	lats []pending // per-batch latency records, preallocated at MaxPipeline
}

// capScratch releases oversized buffers after a flush.
func (sc *connScratch) capScratch() {
	if cap(sc.out) > maxRetainedScratch {
		sc.out = make([]byte, 0, initialScratch)
	}
	if cap(sc.val) > maxRetainedScratch {
		sc.val = nil
	}
}

// ErrFetchTimeout reports a backend fetch attempt cut off by
// Options.FetchTimeout.
var ErrFetchTimeout = errors.New("server: backend fetch timed out")

// Store is the cache surface the server drives: satisfied by both
// *cache.Cache (one engine) and *shard.Group (hash-sharded engines).
type Store interface {
	Get(key string, sizeHint int, penHint float64, buf []byte) ([]byte, uint32, bool)
	GetWithCAS(key string, buf []byte) ([]byte, uint32, uint64, bool)
	GetStale(key string, buf []byte) ([]byte, uint32, bool)
	Set(key string, size int, pen float64, flags uint32, value []byte) error
	SetMode(key string, mode cache.SetMode, cas uint64, size int, pen float64, flags uint32, expireAt int64, value []byte) error
	Delete(key string) bool
	Touch(key string, expireAt int64) bool
	Delta(key string, delta uint64, decr bool) (uint64, error)
	Flush()
	Stats() cache.Stats
	Items() int
	SnapshotSlabs() []int
	PolicyName() string
}

// Options configure a Server.
type Options struct {
	// Backend enables read-through on GET misses.
	Backend *backend.Store
	// Logger receives connection-level errors; nil disables logging.
	Logger *log.Logger
	// ReapInterval runs a background expiry crawler this often (the
	// engine's expiry is otherwise lazy); 0 disables it.
	ReapInterval time.Duration

	// ReadTimeout is the idle deadline: the longest the server waits for
	// the next request (or the rest of a partially sent one) before
	// closing the connection. 0 waits forever.
	ReadTimeout time.Duration
	// WriteTimeout bounds flushing one response batch to a slow reader.
	// 0 waits forever.
	WriteTimeout time.Duration
	// MaxConns caps concurrent connections; at the cap the accept loop
	// blocks (kernel-backlog backpressure) instead of admitting more.
	// 0 means unlimited.
	MaxConns int
	// MaxPipeline caps how many pipelined requests are served before the
	// write buffer is flushed; 0 means DefaultMaxPipeline.
	MaxPipeline int
	// DrainTimeout bounds graceful shutdown: connections still busy after
	// this window are force-closed. 0 means DefaultDrainTimeout.
	DrainTimeout time.Duration

	// FetchTimeout bounds one backend fetch attempt; 0 waits for the
	// backend however long it takes.
	FetchTimeout time.Duration
	// FetchRetries is how many extra attempts a failed backend fetch
	// gets before the GET degrades.
	FetchRetries int
	// FetchBackoff is slept before the first retry and doubles per
	// retry; 0 retries immediately.
	FetchBackoff time.Duration
	// ServeStale degrades a GET whose backend fetch failed to a
	// recently evicted/expired value (requires the engine to be built
	// with cache.Config.StaleValues) instead of reporting a miss.
	ServeStale bool

	// Overload enables penalty-aware admission control: each data command
	// passes through an overload.Controller before dispatch, and under
	// pressure the server degrades in tiers (aggressive serve-stale, no
	// hot-cache backfill, suppressed cheap fetches, shed cheap reads and
	// writes) instead of queueing without bound. Nil disables admission
	// control entirely.
	Overload *overload.Config

	// Tenants is the tenant registry for multi-tenant serving. When set,
	// each key's namespace prefix resolves its tenant, the tenant's SLO
	// class demotes the request's effective penalty subclass at admission
	// (best-effort tenants shed before premium ones), and per-tenant
	// accounting appears in /statsz and the metrics endpoint when the
	// store is a tenant.Router. Nil serves single-tenant.
	Tenants *tenant.Registry

	// Cluster enables the peer tier: keys this node does not own are
	// forwarded to their owning peer (GETs with penalty-aware hedging,
	// writes verbatim), and only the owner fills from the backend. The
	// server does not take ownership of the Peers — the caller closes it
	// after Shutdown.
	Cluster *cluster.Peers
	// HotCacheBytes bounds the non-owner mini-cache of forwarded GET
	// hits (cluster mode only); 0 means cluster.DefaultHotCacheBytes,
	// negative disables the hot cache.
	HotCacheBytes int64
	// HotCacheTTL bounds the staleness of a hot-cached forwarded copy;
	// 0 means cluster.DefaultHotCacheTTL.
	HotCacheTTL time.Duration

	// Membership is the runtime membership manager (cluster mode only;
	// nil keeps the member list static). The server intercepts the
	// manager's control keys ahead of admission control and routing,
	// binds the engine as the warm-handoff source, and feeds the
	// overload tier into handoff pacing. The caller owns the manager's
	// lifecycle (Start/Stop).
	Membership *membership.Manager
}

// Stats are server-level counters — connections and serving-path health, as
// opposed to the engine-level cache.Stats. All monotonic except CurrConns.
type Stats struct {
	// Conns counts connections ever accepted; CurrConns is the number
	// open now.
	Conns, CurrConns uint64
	// ClientErrors counts malformed requests (the client's fault:
	// protocol errors, oversized lines, bad operands).
	ClientErrors uint64
	// ServerErrors counts SERVER_ERROR replies (the server's fault: the
	// engine rejected an operation it should have handled).
	ServerErrors uint64
	// IOErrors counts socket read/write failures other than clean EOF
	// and idle timeouts.
	IOErrors uint64
	// IdleTimeouts counts connections closed by ReadTimeout.
	IdleTimeouts uint64
	// ForcedCloses counts connections killed because they outlived the
	// shutdown drain window.
	ForcedCloses uint64
	// Batches counts response flushes; BatchedCmds counts requests
	// served across them (BatchedCmds/Batches = mean pipeline depth).
	Batches, BatchedCmds uint64
	// BackendRetries counts backend fetch re-attempts; BackendTimeouts
	// counts attempts cut by FetchTimeout; BackendFailures counts fetch
	// chains that exhausted their retries.
	BackendRetries, BackendTimeouts, BackendFailures uint64
	// StaleServes counts GETs answered from the stale buffer, after a
	// backend failure or preemptively under overload pressure.
	StaleServes uint64
	// Sheds counts requests refused at admission with SERVER_ERROR busy
	// (shed) by the overload controller.
	Sheds uint64
	// FetchSheds counts GET misses whose backend fetch was suppressed by
	// the overload tier (the miss was served as a miss instead of paying
	// the fetch).
	FetchSheds uint64
	// PeerSheds counts forwarded requests the owning peer refused with a
	// shed reply (served as a miss / relayed verbatim, never retried
	// against the backend).
	PeerSheds uint64
	// PeerForwards counts requests relayed to an owning peer (cluster
	// mode); PeerHits the forwarded GETs the peer answered with a value.
	PeerForwards, PeerHits uint64
	// PeerErrors counts forwards that failed at transport level (after
	// the peer client's retries and hedging); PeerFallbacks the subset
	// of failed GET forwards that degraded to a local backend fetch.
	PeerErrors, PeerFallbacks uint64
	// HotHits counts GETs of remote-owned keys answered from the local
	// hot-item mini-cache without touching the owner.
	HotHits uint64
}

// nstats is Stats with atomic fields, updated lock-free on the hot path.
type nstats struct {
	conns, currConns     atomic.Uint64
	clientErrors         atomic.Uint64
	serverErrors         atomic.Uint64
	ioErrors             atomic.Uint64
	idleTimeouts         atomic.Uint64
	forcedCloses         atomic.Uint64
	batches, batchedCmds atomic.Uint64
	backendRetries       atomic.Uint64
	backendTimeouts      atomic.Uint64
	backendFailures      atomic.Uint64
	staleServes          atomic.Uint64
	sheds                atomic.Uint64
	fetchSheds           atomic.Uint64
	peerSheds            atomic.Uint64
	peerForwards         atomic.Uint64
	peerHits             atomic.Uint64
	peerErrors           atomic.Uint64
	peerFallbacks        atomic.Uint64
	hotHits              atomic.Uint64
}

// Server serves the cache over TCP. Construct with New.
type Server struct {
	c    Store
	opts Options

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
	reapC  chan struct{}

	// doneC closes when Shutdown begins; handlers treat it as the drain
	// signal.
	doneC chan struct{}
	// sem is the MaxConns semaphore (nil = unlimited).
	sem chan struct{}

	st nstats

	// peers is the cluster routing table (nil outside cluster mode); hot
	// is the non-owner mini-cache of forwarded hits; mem is the runtime
	// membership manager (nil with a static member list).
	peers *cluster.Peers
	hot   *cluster.HotCache
	mem   *membership.Manager
	// flight dedupes concurrent peer fetches for one key (the
	// backend-fetch path dedupes inside backend.FetchSharedErr).
	flight singleflight.Group

	// ctrl is the overload admission controller (nil when disabled). Its
	// tier transitions also drive the peers' degraded mode.
	ctrl *overload.Controller

	// lat holds one request-latency histogram per command family, measured
	// from command parse to response flush (the client-visible interval
	// minus the wire). Buckets span [1µs, 10s) on a log scale.
	lat [numFams]*obs.Hist
}

// reaper is implemented by stores that support proactive expiry
// (*cache.Cache does; a shard group reaps per shard through Flush-like
// fan-out when it adopts the method).
type reaper interface{ ReapExpired(max int) int }

// New returns a Server for the given store (a single engine or a shard
// group), which should have been built with StoreValues: true; without it
// GETs return empty bodies.
func New(c Store, opts Options) *Server {
	s := &Server{c: c, opts: opts, conns: make(map[net.Conn]struct{}), doneC: make(chan struct{})}
	if opts.MaxConns > 0 {
		s.sem = make(chan struct{}, opts.MaxConns)
	}
	for i := range s.lat {
		s.lat[i] = obs.NewHist(1e-6, 7)
	}
	if opts.Cluster != nil {
		s.peers = opts.Cluster
		if opts.HotCacheBytes >= 0 {
			s.hot = cluster.NewHotCache(opts.HotCacheBytes, opts.HotCacheTTL)
		}
	}
	if opts.Membership != nil && s.peers != nil {
		s.mem = opts.Membership
		// The engine is the warm-handoff source when it can be scanned
		// (single engines and shard groups can; without it, membership
		// changes degrade to cold rebalances).
		if src, ok := c.(membership.Source); ok {
			s.mem.BindSource(src)
		}
		s.mem.BindTier(s.overloadTier)
	}
	if opts.Overload != nil {
		cfg := *opts.Overload
		inner := cfg.OnTierChange
		cfg.OnTierChange = func(tier int) {
			// Leaving TierNormal flips the cluster into degraded mode:
			// no hedging, halved retry budgets — a shedding node must
			// not amplify its load onto peers.
			if s.peers != nil {
				s.peers.SetDegraded(tier >= overload.TierStrained)
			}
			if inner != nil {
				inner(tier)
			}
		}
		s.ctrl = overload.New(cfg)
	}
	return s
}

// Overload returns the admission controller, or nil when overload control is
// disabled.
func (s *Server) Overload() *overload.Controller { return s.ctrl }

// overloadTier is the current pressure tier (TierNormal when overload
// control is off).
func (s *Server) overloadTier() int {
	if s.ctrl == nil {
		return overload.TierNormal
	}
	return s.ctrl.Tier()
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown. It returns nil after a
// clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	if s.opts.ReapInterval > 0 && s.reapC == nil {
		if r, ok := s.c.(reaper); ok {
			s.reapC = make(chan struct{})
			s.wg.Add(1)
			go s.reapLoop(r)
		}
	}
	s.mu.Unlock()
	for {
		if s.sem != nil {
			// Accept-loop backpressure: do not even accept past
			// MaxConns; excess dials queue in the kernel backlog.
			select {
			case s.sem <- struct{}{}:
			case <-s.doneC:
				return nil
			}
		}
		conn, err := ln.Accept()
		if err != nil {
			if s.sem != nil {
				<-s.sem
			}
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			if s.sem != nil {
				<-s.sem
			}
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.st.conns.Add(1)
		s.st.currConns.Add(1)
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// Addr returns the bound listener address ("" before Serve).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Stats returns a copy of the server-level counters.
func (s *Server) Stats() Stats {
	return Stats{
		Conns:           s.st.conns.Load(),
		CurrConns:       s.st.currConns.Load(),
		ClientErrors:    s.st.clientErrors.Load(),
		ServerErrors:    s.st.serverErrors.Load(),
		IOErrors:        s.st.ioErrors.Load(),
		IdleTimeouts:    s.st.idleTimeouts.Load(),
		ForcedCloses:    s.st.forcedCloses.Load(),
		Batches:         s.st.batches.Load(),
		BatchedCmds:     s.st.batchedCmds.Load(),
		BackendRetries:  s.st.backendRetries.Load(),
		BackendTimeouts: s.st.backendTimeouts.Load(),
		BackendFailures: s.st.backendFailures.Load(),
		StaleServes:     s.st.staleServes.Load(),
		Sheds:           s.st.sheds.Load(),
		FetchSheds:      s.st.fetchSheds.Load(),
		PeerSheds:       s.st.peerSheds.Load(),
		PeerForwards:    s.st.peerForwards.Load(),
		PeerHits:        s.st.peerHits.Load(),
		PeerErrors:      s.st.peerErrors.Load(),
		PeerFallbacks:   s.st.peerFallbacks.Load(),
		HotHits:         s.st.hotHits.Load(),
	}
}

// HotCacheStats snapshots the hot-item mini-cache; ok is false outside
// cluster mode (or when the hot cache is disabled).
func (s *Server) HotCacheStats() (st cluster.HotCacheStats, ok bool) {
	if s.hot == nil {
		return cluster.HotCacheStats{}, false
	}
	return s.hot.Stats(), true
}

// Latencies snapshots the per-family request-latency histograms, keyed by
// family name ("get", "set", "delete", "delta", "other"). Latency is
// measured from command parse to response flush; pipelined requests in one
// batch share a flush, so each carries its queueing delay behind its batch
// mates — the client's view.
func (s *Server) Latencies() map[string]obs.HistSnapshot {
	m := make(map[string]obs.HistSnapshot, numFams)
	for i, h := range s.lat {
		m[famNames[i]] = h.Snapshot()
	}
	return m
}

// draining reports whether Shutdown has begun.
func (s *Server) draining() bool {
	select {
	case <-s.doneC:
		return true
	default:
		return false
	}
}

// Shutdown stops accepting and drains: idle connections are woken and
// closed, in-flight batches complete and flush their responses, and
// connections still busy after DrainTimeout are force-closed. Safe to call
// more than once.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	close(s.doneC)
	if s.ln != nil {
		s.ln.Close()
	}
	if s.reapC != nil {
		close(s.reapC)
		s.reapC = nil
	}
	conns := make([]net.Conn, 0, len(s.conns))
	for conn := range s.conns {
		conns = append(conns, conn)
	}
	s.mu.Unlock()

	// Flush the admission queue: waiters are shed (their connections get a
	// shed reply and drain), in-flight requests finish normally.
	if s.ctrl != nil {
		s.ctrl.Close()
	}

	// Wake handlers blocked waiting for a request: an expired read
	// deadline unblocks them, they notice the drain and exit after
	// flushing whatever they owe. Handlers mid-batch are not reading and
	// finish their batch first.
	now := time.Now()
	for _, conn := range conns {
		conn.SetReadDeadline(now)
	}

	drain := s.opts.DrainTimeout
	if drain <= 0 {
		drain = DefaultDrainTimeout
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	t := time.NewTimer(drain)
	defer t.Stop()
	select {
	case <-done:
	case <-t.C:
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
			s.st.forcedCloses.Add(1)
		}
		s.mu.Unlock()
		<-done
	}
}

// reapLoop periodically sweeps expired items until Shutdown.
func (s *Server) reapLoop(r reaper) {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.ReapInterval)
	defer t.Stop()
	s.mu.Lock()
	done := s.reapC
	s.mu.Unlock()
	for {
		select {
		case <-done:
			return
		case <-t.C:
			if n := r.ReapExpired(4096); n > 0 {
				s.logf("server: reaped %d expired items", n)
			}
		}
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logger != nil {
		s.opts.Logger.Printf(format, args...)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		s.st.currConns.Add(^uint64(0))
		if s.sem != nil {
			<-s.sem
		}
	}()
	r := bufio.NewReaderSize(conn, 1<<16)
	w := bufio.NewWriterSize(conn, 1<<16)
	maxBatch := s.opts.MaxPipeline
	if maxBatch <= 0 {
		maxBatch = DefaultMaxPipeline
	}
	// The parser and scratch are the connection's reusable hot-path state:
	// commands tokenize in place, data blocks land in pooled buffers, and
	// responses accumulate in one buffer reused across every batch of the
	// connection's life (capacity-capped after each flush).
	p := proto.NewParser(r)
	defer p.Close()
	sc := &connScratch{
		out:  make([]byte, 0, initialScratch),
		lats: make([]pending, 0, maxBatch),
	}
	for {
		// Block for the next request under the idle deadline.
		if s.opts.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.opts.ReadTimeout))
		}
		cmd, err := p.ReadCommand()
		if err != nil {
			if fatal := s.readError(conn, w, err); fatal {
				return
			}
			// Recoverable protocol error: reply and keep serving.
			sc.out = proto.AppendLine(sc.out[:0], "CLIENT_ERROR "+clientMsg(err))
			if !s.flush(conn, w, sc.out) {
				return
			}
			continue
		}
		sc.lats = append(sc.lats[:0], pending{famOf(cmd.Name), time.Now()})
		sc.out = s.serve(sc, sc.out[:0], cmd)
		quit := cmd.Name == "quit"
		batch := 1

		// Pipelining: serve every request the client already sent
		// before paying for a flush, so an N-deep burst costs one
		// write syscall. Bounded by maxBatch to cap response
		// buffering.
		var batchErr error
		for !quit && batch < maxBatch && r.Buffered() > 0 {
			cmd, err = p.ReadCommand()
			if err != nil {
				var ce *proto.ClientError
				if errors.As(err, &ce) && !errors.Is(err, os.ErrDeadlineExceeded) {
					s.st.clientErrors.Add(1)
					sc.out = proto.AppendLine(sc.out, "CLIENT_ERROR "+ce.Msg)
					continue
				}
				batchErr = err
				break
			}
			sc.lats = append(sc.lats, pending{famOf(cmd.Name), time.Now()})
			sc.out = s.serve(sc, sc.out, cmd)
			batch++
			quit = cmd.Name == "quit"
		}
		s.st.batches.Add(1)
		s.st.batchedCmds.Add(uint64(batch))
		if !s.flush(conn, w, sc.out) {
			return
		}
		sc.capScratch()
		// The flush is the moment the whole batch became visible to the
		// client; observe every request against it.
		now := time.Now()
		for _, pd := range sc.lats {
			s.lat[pd.fam].Observe(now.Sub(pd.start).Seconds())
		}
		if quit {
			return
		}
		if batchErr != nil {
			if fatal := s.readError(conn, w, batchErr); fatal {
				return
			}
			sc.out = proto.AppendLine(sc.out[:0], "CLIENT_ERROR "+clientMsg(batchErr))
			if !s.flush(conn, w, sc.out) {
				return
			}
		}
		if s.draining() && r.Buffered() == 0 {
			return
		}
	}
}

// flush writes and flushes out under the write deadline, reporting whether
// the connection is still usable. Empty output flushes whatever the writer
// buffered earlier (a no-op when none).
func (s *Server) flush(conn net.Conn, w *bufio.Writer, out []byte) bool {
	if s.opts.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
	}
	if len(out) > 0 {
		if _, err := w.Write(out); err != nil {
			s.st.ioErrors.Add(1)
			return false
		}
	}
	if err := w.Flush(); err != nil {
		s.st.ioErrors.Add(1)
		return false
	}
	return true
}

// readError classifies a ReadCommand failure, updates counters, and reports
// whether the connection must close. A false return means the error was a
// recoverable client mistake: the caller replies CLIENT_ERROR and continues.
func (s *Server) readError(conn net.Conn, w *bufio.Writer, err error) (fatal bool) {
	var ce *proto.ClientError
	switch {
	case s.draining():
		// The drain deadline (or any error racing it) ends the
		// connection; everything owed was already flushed.
		return true
	case errors.Is(err, io.EOF):
		return true
	case errors.Is(err, os.ErrDeadlineExceeded):
		// Idle or stalled past ReadTimeout.
		s.st.idleTimeouts.Add(1)
		return true
	case errors.Is(err, proto.ErrLineTooLong):
		// Framing is unrecoverable; tell the client whose fault it
		// was, then close.
		s.st.clientErrors.Add(1)
		s.flush(conn, w, []byte("CLIENT_ERROR line too long\r\n"))
		return true
	case errors.As(err, &ce):
		s.st.clientErrors.Add(1)
		return false
	case errors.Is(err, net.ErrClosed):
		return true
	default:
		s.st.ioErrors.Add(1)
		s.logf("server: read from %v: %v", conn.RemoteAddr(), err)
		return true
	}
}

// clientMsg extracts the CLIENT_ERROR text from a recoverable parse error.
func clientMsg(err error) string {
	var ce *proto.ClientError
	if errors.As(err, &ce) {
		return ce.Msg
	}
	return err.Error()
}

// admissible reports whether a command is subject to admission control.
// Administrative commands (stats, version, flush_all, quit) always pass — an
// operator must be able to observe a server precisely when it is overloaded.
func admissible(name string) bool {
	switch name {
	case "get", "gets", "set", "add", "replace", "append", "prepend", "cas", "incr", "decr", "delete", "touch":
		return true
	}
	return false
}

// classify maps a parsed command to the shed policy's (op, penalty subclass,
// tenant SLO class): reads vs writes, and the key's backend miss penalty
// bucketed into the paper's subclasses. A multi-key get takes its most
// expensive key and its most protected tenant — shedding the command sheds
// every key in it, so it is priced at the worst loss. Without a backend
// every key prices at penalty.DefaultUnknown; without a tenant registry
// every key serves at SLO class 0 (no demotion).
func (s *Server) classify(cmd *proto.Command) (overload.Op, int, int) {
	op := overload.OpWrite
	if cmd.Name == "get" || cmd.Name == "gets" {
		op = overload.OpRead
	}
	pen := penalty.DefaultUnknown
	if b := s.opts.Backend; b != nil {
		pen = 0
		for _, k := range cmd.Keys {
			if p := b.PenaltyOf(k); p > pen {
				pen = p
			}
		}
	}
	slo := 0
	if r := s.opts.Tenants; r != nil {
		slo = tenant.MaxSLOClass
		for _, k := range cmd.Keys {
			if c := r.SLOOf(k); c < slo {
				slo = c
			}
		}
	}
	return op, penalty.SubclassFor(pen, penalty.SubclassBounds), slo
}

// subclassOf buckets a key's backend miss penalty into its penalty subclass
// (requires Options.Backend).
func (s *Server) subclassOf(key string) int {
	return penalty.SubclassFor(s.opts.Backend.PenaltyOf(key), penalty.SubclassBounds)
}

// sloOf resolves a key's tenant SLO class (0 without a tenant registry).
func (s *Server) sloOf(key string) int {
	if s.opts.Tenants == nil {
		return 0
	}
	return s.opts.Tenants.SLOOf(key)
}

// serve admits one request through the overload controller (when configured)
// and dispatches it, feeding the observed service time back to the limiter.
// A shed request is answered SERVER_ERROR busy (shed) without touching the
// engine.
func (s *Server) serve(sc *connScratch, out []byte, cmd *proto.Command) []byte {
	if len(cmd.Keys) > 0 && membership.IsControlKey(cmd.Keys[0]) {
		// Membership control traffic bypasses admission control and peer
		// routing entirely: view pushes and probes must land precisely
		// when the node is shedding or mid-reroute. The bypass means any
		// client that can reach the data port can speak membership — a
		// stronger capability than cache writes — so the port is assumed
		// to sit on a trusted segment; where it does not, the mutating
		// control keys are gated by a shared secret (Manager.Authorize,
		// -membership-secret). See the membership package's trust model.
		return s.doMembership(out, cmd)
	}
	if s.ctrl == nil || !admissible(cmd.Name) {
		return s.dispatch(sc, out, cmd)
	}
	op, sub, slo := s.classify(cmd)
	ok, _, release := s.ctrl.AcquireSLO(op, sub, slo)
	if !ok {
		s.st.sheds.Add(1)
		if cmd.NoReply {
			return out
		}
		return proto.AppendShed(out)
	}
	start := time.Now()
	out = s.dispatch(sc, out, cmd)
	release(time.Since(start))
	return out
}

// dispatch routes one parsed command. cmd and everything it references obey
// the proto.Parser ownership rules: keys and data alias per-connection
// scratch, so any path that retains a key beyond this call (engine insert,
// hot-cache fill) clones it first.
func (s *Server) dispatch(sc *connScratch, out []byte, cmd *proto.Command) []byte {
	if s.peers != nil {
		switch cmd.Name {
		case "set", "add", "replace", "append", "prepend", "cas", "delete", "touch", "incr", "decr":
			// Single-owner writes: mutations of a key this node does
			// not own are relayed to the owner, so one authoritative
			// copy exists cluster-wide. (GETs route per key inside
			// doGet — a multi-key get may span owners.)
			if owner := s.peers.Owner(cmd.Keys[0]); owner != "" && owner != s.peers.Self() {
				return s.forward(out, cmd, owner)
			}
		}
	}
	switch cmd.Name {
	case "get", "gets":
		return s.doGet(sc, out, cmd)
	case "set", "add", "replace", "cas":
		return s.doSet(out, cmd)
	case "append", "prepend":
		return s.doConcat(sc, out, cmd)
	case "incr", "decr":
		return s.doDelta(out, cmd)
	case "touch":
		ok := s.c.Touch(cmd.Keys[0], expireAt(cmd.Exptime))
		if cmd.NoReply {
			return out
		}
		if ok {
			return proto.AppendLine(out, "TOUCHED")
		}
		return proto.AppendLine(out, "NOT_FOUND")
	case "delete":
		ok := s.c.Delete(cmd.Keys[0])
		if cmd.NoReply {
			return out
		}
		if ok {
			return proto.AppendLine(out, "DELETED")
		}
		return proto.AppendLine(out, "NOT_FOUND")
	case "stats":
		return s.doStats(out)
	case "flush_all":
		s.c.Flush()
		return proto.AppendLine(out, "OK")
	case "version":
		return proto.AppendLine(out, "VERSION pamakv/1.0")
	case "quit":
		return out
	default:
		s.st.clientErrors.Add(1)
		return proto.AppendLine(out, "ERROR")
	}
}

// doMembership serves the membership control keys (see internal/membership):
// view pushes and join requests arrive as SETs on reserved keys, the
// current view reads back as a GET. Nodes without a membership manager
// refuse them — a static cluster (or a standalone server) must not store
// control traffic as data.
func (s *Server) doMembership(out []byte, cmd *proto.Command) []byte {
	reply := func(line string) []byte {
		if cmd.NoReply {
			return out
		}
		return proto.AppendLine(out, line)
	}
	m := s.mem
	if m == nil {
		s.st.serverErrors.Add(1)
		return reply("SERVER_ERROR membership not enabled")
	}
	switch {
	case cmd.Name == "set" && cmd.Keys[0] == membership.KeyApply:
		body, err := m.Authorize(cmd.Data)
		var epoch uint64
		var members []string
		if err == nil {
			epoch, members, err = membership.ParseView(body)
		}
		if err == nil {
			err = m.Apply(epoch, members, "peer push")
		}
		if err != nil {
			return reply("SERVER_ERROR " + err.Error())
		}
		return reply("STORED")
	case cmd.Name == "set" && cmd.Keys[0] == membership.KeyJoin:
		body, err := m.Authorize(cmd.Data)
		if err == nil {
			err = m.Join(strings.TrimSpace(string(body)))
		}
		if err != nil {
			return reply("SERVER_ERROR " + err.Error())
		}
		return reply("STORED")
	case (cmd.Name == "get" || cmd.Name == "gets") && cmd.Keys[0] == membership.KeyView:
		epoch, members := m.View()
		out = proto.AppendValue(out, membership.KeyView, 0, membership.EncodeView(epoch, members))
		return proto.AppendLine(out, "END")
	default:
		s.st.clientErrors.Add(1)
		return reply("CLIENT_ERROR unknown membership control key")
	}
}

// forward relays a mutating command verbatim to the key's owning peer and
// echoes the owner's reply. The local hot-cache copy (if any) is dropped
// first, so this node never serves a value it just knows changed. A failed
// forward (breaker open, transport error after retries) is a SERVER_ERROR:
// a write must not silently apply to a non-authoritative copy.
func (s *Server) forward(out []byte, cmd *proto.Command, owner string) []byte {
	s.st.peerForwards.Add(1)
	if s.hot != nil {
		s.hot.Invalidate(cmd.Keys[0])
	}
	cl := s.peers.ClientFor(owner)
	if cl == nil {
		s.st.peerErrors.Add(1)
		if cmd.NoReply {
			return out
		}
		s.st.serverErrors.Add(1)
		return proto.AppendLine(out, "SERVER_ERROR no client for peer "+owner)
	}
	// Forward without noreply so the owner's outcome is observable here,
	// then honor the client's noreply on the relay side. The rendered
	// request rides a pooled buffer: Do is synchronous, so the buffer can
	// return to the pool as soon as it answers.
	fwd := *cmd
	fwd.NoReply = false
	reqBuf := bufpool.Get(0)
	*reqBuf = proto.AppendCommand((*reqBuf)[:0], &fwd)
	resp, err := cl.Do(*reqBuf)
	bufpool.Put(reqBuf)
	if err != nil {
		s.st.peerErrors.Add(1)
		if cmd.NoReply {
			return out
		}
		s.st.serverErrors.Add(1)
		return proto.AppendLine(out, "SERVER_ERROR peer "+owner+" unavailable")
	}
	if proto.IsShedResponse(resp) {
		// The owner refused under overload; the shed relays verbatim so
		// the client sees the same signal a local shed would send.
		s.st.peerSheds.Add(1)
	}
	if cmd.NoReply {
		return out
	}
	return proto.AppendResponse(out, resp, cmd.Name == "gets")
}

// peerValue is one peer GET outcome shared across a singleflight.
type peerValue struct {
	val   []byte
	flags uint32
	cas   uint64
	hit   bool
	// shed marks a deliberate overload refusal from the owner — served as
	// a miss, never retried against the local backend.
	shed bool
}

// peerGet serves one GET key owned by a remote peer: hot cache (plain GETs
// only), then a singleflight-deduped, penalty-hedged peer read, then — if
// the peer is unreachable — a local backend fetch as a degraded fallback
// (the value is correct, only the single-owner fill discipline is bent, and
// the owner still never learns a wrong copy).
func (s *Server) peerGet(out []byte, key, owner string, withCAS bool) []byte {
	if !withCAS && s.hot != nil {
		if val, flags, ok := s.hot.Get(key); ok {
			s.st.hotHits.Add(1)
			return proto.AppendValue(out, key, flags, val)
		}
	}
	cl := s.peers.ClientFor(owner)
	if cl == nil {
		s.st.peerErrors.Add(1)
		return out
	}
	s.st.peerForwards.Add(1)
	// Dedupe concurrent reads of one remote key: N goroutines racing the
	// same miss put one request on the wire. gets and get fly separately
	// (different response shape).
	fkey := "g:" + key
	if withCAS {
		fkey = "G:" + key
	}
	var hedge time.Duration
	if s.opts.Backend != nil {
		hedge = s.peers.HedgeDelay(s.opts.Backend.PenaltyOf(key))
	}
	v, err, _ := s.flight.Do(fkey, func() (any, error) {
		resp, err := cl.Get(key, withCAS, hedge)
		if err != nil {
			return nil, err
		}
		var pv peerValue
		if proto.IsShedResponse(resp) {
			pv.shed = true
			return pv, nil
		}
		for _, val := range resp.Values {
			if val.Key == key {
				pv = peerValue{val: val.Data, flags: val.Flags, cas: val.CAS, hit: true}
				break
			}
		}
		return pv, nil
	})
	if err == nil {
		pv := v.(peerValue)
		if pv.shed {
			// The owner refused under overload. Treat it as a miss and
			// do NOT regenerate from the local backend — that would
			// amplify exactly the load the owner just shed.
			s.st.peerSheds.Add(1)
			return out
		}
		if !pv.hit {
			// Authoritative miss from the owner.
			return out
		}
		s.st.peerHits.Add(1)
		if withCAS {
			return proto.AppendValueCAS(out, key, pv.flags, pv.val, pv.cas)
		}
		if s.hot != nil && s.overloadTier() < overload.TierStrained {
			// Hot-cache backfill stops under pressure: copying bytes
			// into the mini-cache is work the strained node can skip.
			// The hot cache retains the key, so the parser-owned key
			// must be cloned.
			s.hot.Put(strings.Clone(key), pv.flags, pv.val)
		}
		return proto.AppendValue(out, key, pv.flags, pv.val)
	}
	s.st.peerErrors.Add(1)
	if s.opts.Backend == nil {
		return out
	}
	// Peer unreachable: regenerate locally rather than miss. The reply
	// carries CAS 0 for gets — a degraded token must not win a cas race
	// against the owner's copy.
	_, _, body, ferr := s.fetchBackend(key)
	if ferr != nil {
		return out
	}
	s.st.peerFallbacks.Add(1)
	if withCAS {
		return proto.AppendValueCAS(out, key, 0, body, 0)
	}
	if s.hot != nil && s.overloadTier() < overload.TierStrained {
		s.hot.Put(strings.Clone(key), 0, body)
	}
	return proto.AppendValue(out, key, 0, body)
}

// fetchOnce runs one backend fetch attempt under FetchTimeout. All attempts
// go through the backend's per-key singleflight, so concurrent misses of
// one key — across connections and retry chains — collapse onto a single
// backend call. On timeout the fetch goroutine is abandoned (it completes
// and its result is discarded); the backend simulates a database, so there
// is no external resource to cancel.
func (s *Server) fetchOnce(key string) (size int, pen float64, body []byte, err error) {
	b := s.opts.Backend
	if s.opts.FetchTimeout <= 0 {
		return b.FetchSharedErr(key, true)
	}
	type result struct {
		size int
		pen  float64
		body []byte
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		var r result
		r.size, r.pen, r.body, r.err = b.FetchSharedErr(key, true)
		ch <- r
	}()
	t := time.NewTimer(s.opts.FetchTimeout)
	defer t.Stop()
	select {
	case r := <-ch:
		return r.size, r.pen, r.body, r.err
	case <-t.C:
		s.st.backendTimeouts.Add(1)
		return 0, 0, nil, ErrFetchTimeout
	}
}

// fetchBackend runs a bounded retry-with-backoff chain of fetch attempts.
// While the overload tier is shedding, the retry budget halves: retries
// amplify backend load exactly when there is least capacity to spare.
func (s *Server) fetchBackend(key string) (size int, pen float64, body []byte, err error) {
	backoff := s.opts.FetchBackoff
	retries := s.opts.FetchRetries
	if s.overloadTier() >= overload.TierShedding {
		retries /= 2
	}
	for attempt := 0; ; attempt++ {
		size, pen, body, err = s.fetchOnce(key)
		if err == nil {
			return size, pen, body, nil
		}
		if attempt >= retries || s.draining() {
			break
		}
		s.st.backendRetries.Add(1)
		if backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
	}
	s.st.backendFailures.Add(1)
	return 0, 0, nil, err
}

func (s *Server) doGet(sc *connScratch, out []byte, cmd *proto.Command) []byte {
	withCAS := cmd.Name == "gets"
	for _, key := range cmd.Keys {
		if s.peers != nil {
			if owner := s.peers.Owner(key); owner != "" && owner != s.peers.Self() {
				out = s.peerGet(out, key, owner, withCAS)
				continue
			}
		}
		// The engine copies the value into the connection's scratch
		// buffer — the one allocation the old path paid per hit, now
		// amortized over the connection's life.
		var val []byte
		var flags uint32
		var cas uint64
		var hit bool
		if withCAS {
			val, flags, cas, hit = s.c.GetWithCAS(key, sc.val[:0])
		} else {
			val, flags, hit = s.c.Get(key, 0, 0, sc.val[:0])
		}
		sc.val = val[:0]
		if !hit && s.opts.Backend != nil {
			tier := s.overloadTier()
			if tier >= overload.TierStrained && s.opts.ServeStale {
				// Tier 1+: prefer a resident stale copy to paying a
				// backend fetch at all — freshness is the first thing
				// traded away under pressure.
				if sval, sflags, ok := s.c.GetStale(key, sc.val[:0]); ok {
					s.st.staleServes.Add(1)
					val, flags, cas, hit = sval, sflags, 0, true
					sc.val = sval[:0]
				}
			}
			if !hit && tier >= overload.TierShedding && s.ctrl.ShedFetchSLO(s.subclassOf(key), s.sloOf(key)) {
				// Tier 2+: a cheap-penalty miss is not worth a backend
				// fetch while the queue is filling; serve the miss.
				s.st.fetchSheds.Add(1)
				continue
			}
		}
		if !hit && s.opts.Backend != nil {
			size, pen, body, ferr := s.fetchBackend(key)
			switch {
			case ferr == nil:
				// The engine retains the key of an inserted item, and
				// cmd's keys alias parser scratch — clone for the fill.
				skey := strings.Clone(key)
				if err := s.c.Set(skey, size+len(skey)+itemOverhead, pen, 0, body); err == nil {
					val, flags, hit = body, 0, true
					if withCAS {
						_, _, cas, _ = s.c.GetWithCAS(key, nil)
					}
				} else {
					// The fetch worked but the engine refused the
					// refill (e.g. item larger than any class):
					// still serve the value this once.
					s.st.serverErrors.Add(1)
					val, flags, hit = body, 0, true
				}
			case s.opts.ServeStale:
				// Backend down: degrade to the engine's retained
				// stale copy, if any. The reply carries no CAS
				// token (a stale value must not win a cas race).
				if sval, sflags, ok := s.c.GetStale(key, sc.val[:0]); ok {
					s.st.staleServes.Add(1)
					val, flags, cas, hit = sval, sflags, 0, true
					sc.val = sval[:0]
				}
			}
		}
		if hit {
			if withCAS {
				out = proto.AppendValueCAS(out, key, flags, val, cas)
			} else {
				out = proto.AppendValue(out, key, flags, val)
			}
		}
	}
	return proto.AppendEnd(out)
}

func (s *Server) doDelta(out []byte, cmd *proto.Command) []byte {
	next, err := s.c.Delta(cmd.Keys[0], cmd.Delta, cmd.Name == "decr")
	if cmd.NoReply {
		return out
	}
	switch {
	case errors.Is(err, cache.ErrNotStored):
		return proto.AppendLine(out, "NOT_FOUND")
	case errors.Is(err, cache.ErrNotNumeric):
		s.st.clientErrors.Add(1)
		return proto.AppendLine(out, "CLIENT_ERROR cannot increment or decrement non-numeric value")
	case err != nil:
		s.st.serverErrors.Add(1)
		return proto.AppendLine(out, fmt.Sprintf("SERVER_ERROR %v", err))
	}
	return proto.AppendNumberLine(out, next)
}

func (s *Server) doSet(out []byte, cmd *proto.Command) []byte {
	// The engine retains the stored key; the parsed key aliases the
	// connection's parser scratch, so the fill path clones it — the O(1)
	// allocation a SET is budgeted (the value itself is copied from the
	// pooled data buffer into the item's reused slot).
	key := strings.Clone(cmd.Keys[0])
	pen := penalty.DefaultUnknown
	if s.opts.Backend != nil {
		pen = s.opts.Backend.Penalty(key, len(cmd.Data))
	}
	size := len(key) + len(cmd.Data) + itemOverhead
	mode := cache.ModeSet
	switch cmd.Name {
	case "add":
		mode = cache.ModeAdd
	case "replace":
		mode = cache.ModeReplace
	case "cas":
		mode = cache.ModeCAS
	}
	err := s.c.SetMode(key, mode, cmd.CasID, size, pen, cmd.Flags, expireAt(cmd.Exptime), cmd.Data)
	if cmd.NoReply {
		return out
	}
	switch {
	case err == nil:
		return proto.AppendLine(out, "STORED")
	case errors.Is(err, cache.ErrCASMismatch):
		return proto.AppendLine(out, "EXISTS")
	case errors.Is(err, cache.ErrNotStored) && cmd.Name == "cas":
		return proto.AppendLine(out, "NOT_FOUND")
	case errors.Is(err, cache.ErrNotStored):
		return proto.AppendLine(out, "NOT_STORED")
	default:
		s.st.serverErrors.Add(1)
		return proto.AppendLine(out, fmt.Sprintf("SERVER_ERROR %v", err))
	}
}

// concatRetries bounds the optimistic-concurrency loop in doConcat. Eight
// consecutive CAS losses on one key means a hotter writer owns it; give up
// rather than spin.
const concatRetries = 8

// doConcat implements append and prepend as a CAS loop over the engine's
// existing primitives: read the resident value with its CAS token, build the
// concatenation, and store it back with ModeCAS so a racing writer makes the
// store miss and the loop re-reads. Memcached semantics are preserved where
// the engine allows: a missing key answers NOT_STORED, flags are carried
// over from the resident item, and the operands' flags/exptime are ignored.
// One deliberate divergence: the rewritten item's expiry resets to "never",
// because the engine does not expose the resident deadline for re-arming.
func (s *Server) doConcat(sc *connScratch, out []byte, cmd *proto.Command) []byte {
	key := strings.Clone(cmd.Keys[0])
	for try := 0; try < concatRetries; try++ {
		val, flags, cas, hit := s.c.GetWithCAS(key, sc.val[:0])
		sc.val = val[:0]
		if !hit {
			if cmd.NoReply {
				return out
			}
			return proto.AppendLine(out, "NOT_STORED")
		}
		var combined []byte
		if cmd.Name == "append" {
			// val aliases sc.val's backing array; appending may grow it in
			// place or reallocate — either way SetMode copies it out before
			// the scratch is reused.
			combined = append(val, cmd.Data...)
		} else {
			combined = make([]byte, 0, len(cmd.Data)+len(val))
			combined = append(combined, cmd.Data...)
			combined = append(combined, val...)
		}
		pen := penalty.DefaultUnknown
		if s.opts.Backend != nil {
			pen = s.opts.Backend.Penalty(key, len(combined))
		}
		size := len(key) + len(combined) + itemOverhead
		err := s.c.SetMode(key, cache.ModeCAS, cas, size, pen, flags, 0, combined)
		switch {
		case err == nil:
			if cmd.NoReply {
				return out
			}
			return proto.AppendLine(out, "STORED")
		case errors.Is(err, cache.ErrCASMismatch):
			continue // racing writer; re-read and retry
		case errors.Is(err, cache.ErrNotStored):
			// The item vanished between the read and the store.
			if cmd.NoReply {
				return out
			}
			return proto.AppendLine(out, "NOT_STORED")
		default:
			s.st.serverErrors.Add(1)
			if cmd.NoReply {
				return out
			}
			return proto.AppendLine(out, fmt.Sprintf("SERVER_ERROR %v", err))
		}
	}
	s.st.serverErrors.Add(1)
	if cmd.NoReply {
		return out
	}
	return proto.AppendLine(out, "SERVER_ERROR concat contention")
}

// expireAt converts Memcached exptime semantics to a unix deadline: 0 means
// never; values up to 30 days are relative seconds; larger values are
// absolute unix times; negative means already expired.
func expireAt(exptime int64) int64 {
	const thirtyDays = 60 * 60 * 24 * 30
	switch {
	case exptime == 0:
		return 0
	case exptime < 0:
		return 1 // epoch+1: expired on arrival
	case exptime <= thirtyDays:
		return time.Now().Unix() + exptime
	default:
		return exptime
	}
}

func (s *Server) doStats(out []byte) []byte {
	st := s.c.Stats()
	out = proto.AppendStat(out, "cmd_get", st.Gets)
	out = proto.AppendStat(out, "get_hits", st.Hits)
	out = proto.AppendStat(out, "get_misses", st.Misses)
	out = proto.AppendStat(out, "cmd_set", st.Sets)
	out = proto.AppendStat(out, "cmd_delete", st.Deletes)
	out = proto.AppendStat(out, "evictions", st.Evictions)
	out = proto.AppendStat(out, "ghost_hits", st.GhostHits)
	out = proto.AppendStat(out, "stale_gets", st.StaleGets)
	out = proto.AppendStat(out, "curr_items", s.c.Items())
	out = proto.AppendStat(out, "policy", s.c.PolicyName())
	ss := s.Stats()
	out = proto.AppendStat(out, "curr_connections", ss.CurrConns)
	out = proto.AppendStat(out, "total_connections", ss.Conns)
	out = proto.AppendStat(out, "client_errors", ss.ClientErrors)
	out = proto.AppendStat(out, "server_errors", ss.ServerErrors)
	out = proto.AppendStat(out, "io_errors", ss.IOErrors)
	out = proto.AppendStat(out, "idle_timeouts", ss.IdleTimeouts)
	out = proto.AppendStat(out, "response_batches", ss.Batches)
	out = proto.AppendStat(out, "batched_commands", ss.BatchedCmds)
	out = proto.AppendStat(out, "backend_retries", ss.BackendRetries)
	out = proto.AppendStat(out, "backend_timeouts", ss.BackendTimeouts)
	out = proto.AppendStat(out, "backend_failures", ss.BackendFailures)
	out = proto.AppendStat(out, "stale_serves", ss.StaleServes)
	if s.ctrl != nil {
		os := s.ctrl.Stats()
		out = proto.AppendStat(out, "overload_tier", os.Tier)
		out = proto.AppendStat(out, "overload_limit", os.Limit)
		out = proto.AppendStat(out, "overload_inflight", os.Inflight)
		out = proto.AppendStat(out, "overload_queued", os.Queued)
		out = proto.AppendStat(out, "overload_peak_inflight", os.PeakInflight)
		out = proto.AppendStat(out, "overload_admitted", os.Admitted)
		out = proto.AppendStat(out, "sheds", ss.Sheds)
		out = proto.AppendStat(out, "shed_fetches", ss.FetchSheds)
		out = proto.AppendStat(out, "peer_sheds", ss.PeerSheds)
	}
	if s.peers != nil {
		out = proto.AppendStat(out, "peer_forwards", ss.PeerForwards)
		out = proto.AppendStat(out, "peer_hits", ss.PeerHits)
		out = proto.AppendStat(out, "peer_errors", ss.PeerErrors)
		out = proto.AppendStat(out, "peer_fallbacks", ss.PeerFallbacks)
		out = proto.AppendStat(out, "hot_hits", ss.HotHits)
	}
	for cl, n := range s.c.SnapshotSlabs() {
		if n > 0 {
			out = proto.AppendStat(out, fmt.Sprintf("slabs_class_%d", cl), n)
		}
	}
	return proto.AppendEnd(out)
}
