// Package server exposes the cache engine over the Memcached ASCII protocol
// (package proto) on a TCP listener, one goroutine per connection.
//
// The server can optionally run in read-through mode with a simulated
// back-end store: a GET miss fetches the value from the backend (paying its
// scaled miss penalty in real time), refills the cache with the penalty
// attached, and serves the value — the GET-miss → SET pattern the paper's
// penalty estimation is built on, live on a socket.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"pamakv/internal/backend"
	"pamakv/internal/cache"
	"pamakv/internal/penalty"
	"pamakv/internal/proto"
)

// itemOverhead approximates per-item metadata charged to the slab slot, as
// Memcached charges its item header.
const itemOverhead = 56

// Store is the cache surface the server drives: satisfied by both
// *cache.Cache (one engine) and *shard.Group (hash-sharded engines).
type Store interface {
	Get(key string, sizeHint int, penHint float64, buf []byte) ([]byte, uint32, bool)
	GetWithCAS(key string, buf []byte) ([]byte, uint32, uint64, bool)
	Set(key string, size int, pen float64, flags uint32, value []byte) error
	SetMode(key string, mode cache.SetMode, cas uint64, size int, pen float64, flags uint32, expireAt int64, value []byte) error
	Delete(key string) bool
	Touch(key string, expireAt int64) bool
	Delta(key string, delta uint64, decr bool) (uint64, error)
	Flush()
	Stats() cache.Stats
	Items() int
	SnapshotSlabs() []int
	PolicyName() string
}

// Options configure a Server.
type Options struct {
	// Backend enables read-through on GET misses.
	Backend *backend.Store
	// Logger receives connection-level errors; nil disables logging.
	Logger *log.Logger
	// ReapInterval runs a background expiry crawler this often (the
	// engine's expiry is otherwise lazy); 0 disables it.
	ReapInterval time.Duration
}

// Server serves the cache over TCP. Construct with New.
type Server struct {
	c    Store
	opts Options

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
	reapC  chan struct{}
}

// reaper is implemented by stores that support proactive expiry
// (*cache.Cache does; a shard group reaps per shard through Flush-like
// fan-out when it adopts the method).
type reaper interface{ ReapExpired(max int) int }

// New returns a Server for the given store (a single engine or a shard
// group), which should have been built with StoreValues: true; without it
// GETs return empty bodies.
func New(c Store, opts Options) *Server {
	return &Server{c: c, opts: opts, conns: make(map[net.Conn]struct{})}
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown. It returns nil after a
// clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	if s.opts.ReapInterval > 0 && s.reapC == nil {
		if r, ok := s.c.(reaper); ok {
			s.reapC = make(chan struct{})
			s.wg.Add(1)
			go s.reapLoop(r)
		}
	}
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// Addr returns the bound listener address ("" before Serve).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown stops accepting, closes every connection, and waits for handlers
// to drain.
func (s *Server) Shutdown() {
	s.mu.Lock()
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	if s.reapC != nil {
		close(s.reapC)
		s.reapC = nil
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// reapLoop periodically sweeps expired items until Shutdown.
func (s *Server) reapLoop(r reaper) {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.ReapInterval)
	defer t.Stop()
	s.mu.Lock()
	done := s.reapC
	s.mu.Unlock()
	for {
		select {
		case <-done:
			return
		case <-t.C:
			if n := r.ReapExpired(4096); n > 0 {
				s.logf("server: reaped %d expired items", n)
			}
		}
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logger != nil {
		s.opts.Logger.Printf(format, args...)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReaderSize(conn, 1<<16)
	w := bufio.NewWriterSize(conn, 1<<16)
	var out []byte
	for {
		cmd, err := proto.ReadCommand(r)
		if err != nil {
			var ce *proto.ClientError
			switch {
			case errors.Is(err, io.EOF):
				return
			case errors.As(err, &ce):
				out = proto.AppendLine(out[:0], "CLIENT_ERROR "+ce.Msg)
				if _, werr := w.Write(out); werr != nil || w.Flush() != nil {
					return
				}
				continue
			default:
				s.logf("server: read from %v: %v", conn.RemoteAddr(), err)
				return
			}
		}
		out = s.dispatch(out[:0], cmd)
		if cmd.Name == "quit" {
			w.Write(out)
			w.Flush()
			return
		}
		if len(out) > 0 {
			if _, err := w.Write(out); err != nil {
				return
			}
		}
		// Flush when no further command is already buffered (simple
		// pipelining support).
		if r.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

func (s *Server) dispatch(out []byte, cmd *proto.Command) []byte {
	switch cmd.Name {
	case "get", "gets":
		return s.doGet(out, cmd)
	case "set", "add", "replace", "cas":
		return s.doSet(out, cmd)
	case "incr", "decr":
		return s.doDelta(out, cmd)
	case "touch":
		ok := s.c.Touch(cmd.Keys[0], expireAt(cmd.Exptime))
		if cmd.NoReply {
			return out
		}
		if ok {
			return proto.AppendLine(out, "TOUCHED")
		}
		return proto.AppendLine(out, "NOT_FOUND")
	case "delete":
		ok := s.c.Delete(cmd.Keys[0])
		if cmd.NoReply {
			return out
		}
		if ok {
			return proto.AppendLine(out, "DELETED")
		}
		return proto.AppendLine(out, "NOT_FOUND")
	case "stats":
		return s.doStats(out)
	case "flush_all":
		s.c.Flush()
		return proto.AppendLine(out, "OK")
	case "version":
		return proto.AppendLine(out, "VERSION pamakv/1.0")
	case "quit":
		return out
	default:
		return proto.AppendLine(out, "ERROR")
	}
}

func (s *Server) doGet(out []byte, cmd *proto.Command) []byte {
	withCAS := cmd.Name == "gets"
	for _, key := range cmd.Keys {
		var val []byte
		var flags uint32
		var cas uint64
		var hit bool
		if withCAS {
			val, flags, cas, hit = s.c.GetWithCAS(key, nil)
		} else {
			val, flags, hit = s.c.Get(key, 0, 0, nil)
		}
		if !hit && s.opts.Backend != nil {
			size, pen, body := s.opts.Backend.Fetch(key, true)
			if err := s.c.Set(key, size+len(key)+itemOverhead, pen, 0, body); err == nil {
				val, flags, hit = body, 0, true
				if withCAS {
					_, _, cas, _ = s.c.GetWithCAS(key, nil)
				}
			}
		}
		if hit {
			if withCAS {
				out = proto.AppendValueCAS(out, key, flags, val, cas)
			} else {
				out = proto.AppendValue(out, key, flags, val)
			}
		}
	}
	return proto.AppendEnd(out)
}

func (s *Server) doDelta(out []byte, cmd *proto.Command) []byte {
	next, err := s.c.Delta(cmd.Keys[0], cmd.Delta, cmd.Name == "decr")
	if cmd.NoReply {
		return out
	}
	switch {
	case errors.Is(err, cache.ErrNotStored):
		return proto.AppendLine(out, "NOT_FOUND")
	case errors.Is(err, cache.ErrNotNumeric):
		return proto.AppendLine(out, "CLIENT_ERROR cannot increment or decrement non-numeric value")
	case err != nil:
		return proto.AppendLine(out, fmt.Sprintf("SERVER_ERROR %v", err))
	}
	return proto.AppendLine(out, fmt.Sprintf("%d", next))
}

func (s *Server) doSet(out []byte, cmd *proto.Command) []byte {
	key := cmd.Keys[0]
	pen := penalty.DefaultUnknown
	if s.opts.Backend != nil {
		pen = s.opts.Backend.Penalty(key, len(cmd.Data))
	}
	size := len(key) + len(cmd.Data) + itemOverhead
	mode := cache.ModeSet
	switch cmd.Name {
	case "add":
		mode = cache.ModeAdd
	case "replace":
		mode = cache.ModeReplace
	case "cas":
		mode = cache.ModeCAS
	}
	err := s.c.SetMode(key, mode, cmd.CasID, size, pen, cmd.Flags, expireAt(cmd.Exptime), cmd.Data)
	if cmd.NoReply {
		return out
	}
	switch {
	case err == nil:
		return proto.AppendLine(out, "STORED")
	case errors.Is(err, cache.ErrCASMismatch):
		return proto.AppendLine(out, "EXISTS")
	case errors.Is(err, cache.ErrNotStored) && cmd.Name == "cas":
		return proto.AppendLine(out, "NOT_FOUND")
	case errors.Is(err, cache.ErrNotStored):
		return proto.AppendLine(out, "NOT_STORED")
	default:
		return proto.AppendLine(out, fmt.Sprintf("SERVER_ERROR %v", err))
	}
}

// expireAt converts Memcached exptime semantics to a unix deadline: 0 means
// never; values up to 30 days are relative seconds; larger values are
// absolute unix times; negative means already expired.
func expireAt(exptime int64) int64 {
	const thirtyDays = 60 * 60 * 24 * 30
	switch {
	case exptime == 0:
		return 0
	case exptime < 0:
		return 1 // epoch+1: expired on arrival
	case exptime <= thirtyDays:
		return time.Now().Unix() + exptime
	default:
		return exptime
	}
}

func (s *Server) doStats(out []byte) []byte {
	st := s.c.Stats()
	out = proto.AppendStat(out, "cmd_get", st.Gets)
	out = proto.AppendStat(out, "get_hits", st.Hits)
	out = proto.AppendStat(out, "get_misses", st.Misses)
	out = proto.AppendStat(out, "cmd_set", st.Sets)
	out = proto.AppendStat(out, "cmd_delete", st.Deletes)
	out = proto.AppendStat(out, "evictions", st.Evictions)
	out = proto.AppendStat(out, "ghost_hits", st.GhostHits)
	out = proto.AppendStat(out, "curr_items", s.c.Items())
	out = proto.AppendStat(out, "policy", s.c.PolicyName())
	for cl, n := range s.c.SnapshotSlabs() {
		if n > 0 {
			out = proto.AppendStat(out, fmt.Sprintf("slabs_class_%d", cl), n)
		}
	}
	return proto.AppendEnd(out)
}
