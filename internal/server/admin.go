package server

// The admin listener is the live observability surface: a second, plain-HTTP
// port (never the cache port — monitoring must not compete with the data
// path's accept queue) exposing
//
//	/metrics       Prometheus text format 0.0.4
//	/statsz        JSON superset of the in-band `stats` command
//	/series        paper-style windowed TSV (hit ratio / service time per
//	               sampling window, the live analogue of the simulator's
//	               figure data)
//	/healthz       liveness probe
//	/debug/pprof/  the standard Go profiler endpoints
//
// Everything here is cold-path: snapshots are taken under the engine lock
// exactly as the `stats` command takes them, and nothing is accumulated that
// the serving path does not already maintain.

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pamakv/internal/cache"
	"pamakv/internal/cluster"
	"pamakv/internal/membership"
	"pamakv/internal/metrics"
	"pamakv/internal/obs"
	"pamakv/internal/overload"
	"pamakv/internal/tenant"
)

// introspector is optionally implemented by stores that expose the engine's
// full introspection snapshot (*cache.Cache does; *shard.Group merges its
// shards'). Stores without it still serve /metrics and /statsz, minus the
// per-subclass and slab-move detail.
type introspector interface{ Introspect() cache.Introspection }

// accessBufStatser is optionally implemented by stores running the
// lock-amortized read path (*cache.Cache, and *shard.Group merging its
// shards'). Immediate-mode stores report Enabled=false and the section is
// omitted.
type accessBufStatser interface{ AccessBufStats() cache.AccessBufStats }

// tenantStatser is optionally implemented by multi-tenant stores
// (*tenant.Router): per-tenant accounting rows and the arbiter snapshot.
// Single-tenant stores simply lack the section.
type tenantStatser interface {
	TenantSnapshots() []tenant.Snapshot
	ArbiterStats() *tenant.ArbiterStats
}

// Admin serves the observability endpoints for one Server. Construct with
// NewAdmin; it does not listen until Serve or ListenAndServe.
type Admin struct {
	srv   *Server
	rec   *obs.Recorder
	every time.Duration
	mux   *http.ServeMux
	hs    *http.Server

	mu      sync.Mutex
	ln      net.Listener
	stopC   chan struct{}
	started bool
	wg      sync.WaitGroup
}

// NewAdmin builds the admin surface for srv. sampleEvery > 0 runs a
// background sampler that closes one /series window per interval; 0 disables
// the series (the other endpoints are snapshot-on-demand and need no
// sampler).
func NewAdmin(srv *Server, sampleEvery time.Duration) *Admin {
	a := &Admin{
		srv:   srv,
		rec:   obs.NewRecorder("live"),
		every: sampleEvery,
		mux:   http.NewServeMux(),
	}
	a.mux.HandleFunc("/metrics", a.handleMetrics)
	a.mux.HandleFunc("/statsz", a.handleStatsz)
	a.mux.HandleFunc("/series", a.handleSeries)
	a.mux.HandleFunc("/membershipz", a.handleMembershipz)
	a.mux.HandleFunc("/membership/add", a.handleMembershipAdd)
	a.mux.HandleFunc("/membership/remove", a.handleMembershipRemove)
	a.mux.HandleFunc("/membership/drain", a.handleMembershipDrain)
	a.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	// pprof registers on http.DefaultServeMux via init; wire it into this
	// private mux explicitly so the admin port works even when the default
	// mux is never served.
	a.mux.HandleFunc("/debug/pprof/", pprof.Index)
	a.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	a.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	a.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	a.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	a.hs = &http.Server{Handler: a.mux, ReadHeaderTimeout: 5 * time.Second}
	return a
}

// Handler returns the admin HTTP handler (for embedding in an existing mux
// or driving with httptest).
func (a *Admin) Handler() http.Handler { return a.mux }

// ListenAndServe listens on addr and serves until Close.
func (a *Admin) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return a.Serve(ln)
}

// Serve serves admin requests on ln until Close. A clean Close returns nil.
func (a *Admin) Serve(ln net.Listener) error {
	a.mu.Lock()
	a.ln = ln
	if a.every > 0 && !a.started {
		a.started = true
		a.stopC = make(chan struct{})
		a.wg.Add(1)
		go a.sampleLoop()
	}
	a.mu.Unlock()
	err := a.hs.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Addr returns the bound admin address ("" before Serve).
func (a *Admin) Addr() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.ln == nil {
		return ""
	}
	return a.ln.Addr().String()
}

// Close stops the listener and the sampler. Safe to call more than once.
func (a *Admin) Close() error {
	a.mu.Lock()
	if a.stopC != nil {
		close(a.stopC)
		a.stopC = nil
	}
	a.mu.Unlock()
	err := a.hs.Close()
	a.wg.Wait()
	return err
}

// Sample closes one /series window immediately (the sampler does this on a
// timer; tests and the stats poller may force it).
func (a *Admin) Sample() {
	st := a.srv.c.Stats()
	svc := 0.0
	if b := a.srv.opts.Backend; b != nil {
		svc = b.TotalPenalty()
	}
	a.rec.Sample(st.Gets, st.Hits, svc, a.srv.c.SnapshotSlabs())
}

func (a *Admin) sampleLoop() {
	defer a.wg.Done()
	a.mu.Lock()
	done := a.stopC
	a.mu.Unlock()
	t := time.NewTicker(a.every)
	defer t.Stop()
	a.Sample() // baseline, so the first tick closes a real window
	for {
		select {
		case <-done:
			return
		case <-t.C:
			a.Sample()
		}
	}
}

// handleMetrics renders the Prometheus exposition. Matrix cells with zero
// counts are skipped (a classes×classes move matrix is mostly zeros; an
// absent sample and a zero counter read the same to Prometheus rate()).
func (a *Admin) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := obs.NewPromWriter(w)

	st := a.srv.c.Stats()
	p.Counter("pamakv_gets_total", "GET requests served by the engine.", st.Gets)
	p.Counter("pamakv_hits_total", "GET requests answered from cache.", st.Hits)
	p.Counter("pamakv_misses_total", "GET requests not resident.", st.Misses)
	p.Counter("pamakv_sets_total", "Store operations accepted.", st.Sets)
	p.Counter("pamakv_deletes_total", "Delete operations.", st.Deletes)
	p.Counter("pamakv_evictions_total", "Items evicted to make room.", st.Evictions)
	p.Counter("pamakv_ghost_hits_total", "Misses whose key was in a ghost region.", st.GhostHits)
	p.Counter("pamakv_expired_total", "Items removed by TTL expiry.", st.Expired)
	p.Counter("pamakv_stale_gets_total", "Reads answered from the stale buffer.", st.StaleGets)
	p.Counter("pamakv_slab_migrations_total", "Cross-class slab moves.", st.SlabMigrations)
	p.Gauge("pamakv_items", "Resident items.", float64(a.srv.c.Items()))

	if ab, ok := a.srv.c.(accessBufStatser); ok {
		if abs := ab.AccessBufStats(); abs.Enabled {
			p.Gauge("pamakv_accessbuf_depth", "Deferred access records currently buffered in the MPSC rings.", float64(abs.Depth))
			p.Gauge("pamakv_accessbuf_ring_capacity", "Per-ring record capacity times rings per engine.", float64(abs.Rings*abs.RingCap))
			p.Counter("pamakv_accessbuf_drains_total", "Batched drain passes that applied at least one record.", abs.Drains)
			p.Counter("pamakv_accessbuf_drained_records_total", "Deferred access records applied under the engine lock.", abs.Drained)
			p.Gauge("pamakv_accessbuf_max_batch", "Largest single drain pass (records per lock acquisition).", float64(abs.MaxBatch))
			p.Counter("pamakv_accessbuf_full_drains_total", "Drains forced by a producer finding its ring full.", abs.FullDrains)
			p.Counter("pamakv_accessbuf_lock_wait_ns_total", "Lock wait paid by the read path on full-ring drains.", abs.LockWaitNs)
			p.Counter("pamakv_accessbuf_stale_refs_total", "Drained records skipped by the incarnation check.", abs.StaleRefs)
		}
	}

	if in, ok := a.srv.c.(introspector); ok {
		a.writeIntrospection(p, in.Introspect())
	} else {
		p.Header("pamakv_slabs", "Slabs owned per size class.", "gauge")
		for cl, n := range a.srv.c.SnapshotSlabs() {
			p.Value("pamakv_slabs", `class="`+strconv.Itoa(cl)+`"`, float64(n))
		}
	}

	ss := a.srv.Stats()
	p.Counter("pamakv_connections_total", "Connections ever accepted.", ss.Conns)
	p.Gauge("pamakv_connections", "Connections open now.", float64(ss.CurrConns))
	p.Counter("pamakv_client_errors_total", "Malformed requests.", ss.ClientErrors)
	p.Counter("pamakv_server_errors_total", "SERVER_ERROR replies.", ss.ServerErrors)
	p.Counter("pamakv_io_errors_total", "Socket failures.", ss.IOErrors)
	p.Counter("pamakv_idle_timeouts_total", "Connections closed by the idle deadline.", ss.IdleTimeouts)
	p.Counter("pamakv_response_batches_total", "Pipelined response flushes.", ss.Batches)
	p.Counter("pamakv_batched_commands_total", "Requests served across batches.", ss.BatchedCmds)
	p.Counter("pamakv_stale_serves_total", "GETs degraded to a stale value.", ss.StaleServes)

	p.Header("pamakv_request_seconds", "Request latency from parse to flush, by command family.", "histogram")
	for fam, snap := range a.srv.Latencies() {
		p.Histogram("pamakv_request_seconds", `cmd="`+fam+`"`, snap)
	}

	if b := a.srv.opts.Backend; b != nil {
		p.Counter("pamakv_backend_fetches_total", "Backend fetches (read-through misses).", b.Fetches())
		p.Counter("pamakv_backend_retries_total", "Backend fetch re-attempts.", ss.BackendRetries)
		p.Counter("pamakv_backend_timeouts_total", "Backend attempts cut by FetchTimeout.", ss.BackendTimeouts)
		p.Counter("pamakv_backend_failures_total", "Fetch chains that exhausted retries.", ss.BackendFailures)
		p.Header("pamakv_backend_fetch_seconds", "Wall-clock backend fetch latency.", "histogram")
		p.Histogram("pamakv_backend_fetch_seconds", "", b.FetchLatency())
		p.Gauge("pamakv_backend_penalty_seconds_total", "Accumulated simulated miss penalty.", b.TotalPenalty())
	}

	if c := a.srv.ctrl; c != nil {
		a.writeOverloadMetrics(p, c.Stats(), ss)
	}
	if a.srv.peers != nil {
		a.writeClusterMetrics(p, ss)
	}
	if ts, ok := a.srv.c.(tenantStatser); ok {
		a.writeTenantMetrics(p, ts)
	}
	if m := a.srv.mem; m != nil {
		a.writeMembershipMetrics(p, m.Stats())
	}
	_ = p.Err() // the peer hung up; nothing to do
}

// writeTenantMetrics renders the multi-tenant accounting: one labelled series
// per tenant for occupancy, traffic, and arbitration flow, plus the arbiter's
// own counters and its tenant-to-tenant move matrix. Slab moves are the
// observable core of the scheme — pamakv_tenant_slabs_{in,out}_total and the
// matrix prove memory is actually flowing toward the needier tenant.
func (a *Admin) writeTenantMetrics(p *obs.PromWriter, ts tenantStatser) {
	snaps := ts.TenantSnapshots()
	gauge := func(name, help string, get func(tenant.Snapshot) float64) {
		p.Header(name, help, "gauge")
		for _, s := range snaps {
			p.Value(name, `tenant="`+s.Name+`"`, get(s))
		}
	}
	counter := func(name, help string, get func(tenant.Snapshot) float64) {
		p.Header(name, help, "counter")
		for _, s := range snaps {
			p.Value(name, `tenant="`+s.Name+`"`, get(s))
		}
	}
	gauge("pamakv_tenant_slabs", "Slabs currently budgeted to the tenant.",
		func(s tenant.Snapshot) float64 { return float64(s.Slabs) })
	gauge("pamakv_tenant_reserve_slabs", "Slab floor the arbiter never breaches.",
		func(s tenant.Snapshot) float64 { return float64(s.ReserveSlabs) })
	gauge("pamakv_tenant_free_slabs", "Tenant slabs not yet granted to a class.",
		func(s tenant.Snapshot) float64 { return float64(s.FreeSlabs) })
	gauge("pamakv_tenant_items", "Resident items owned by the tenant.",
		func(s tenant.Snapshot) float64 { return float64(s.Items) })
	gauge("pamakv_tenant_used_bytes", "Slot bytes occupied by the tenant's items.",
		func(s tenant.Snapshot) float64 { return float64(s.UsedBytes) })
	gauge("pamakv_tenant_reserved_bytes", "Configured memory reserve.",
		func(s tenant.Snapshot) float64 { return float64(s.ReservedBytes) })
	gauge("pamakv_tenant_weight", "Arbitration weight.",
		func(s tenant.Snapshot) float64 { return s.Weight })
	gauge("pamakv_tenant_slo_class", "Overload SLO class (0 = most protected).",
		func(s tenant.Snapshot) float64 { return float64(s.SLOClass) })
	counter("pamakv_tenant_gets_total", "GETs routed to the tenant.",
		func(s tenant.Snapshot) float64 { return float64(s.Gets) })
	counter("pamakv_tenant_hits_total", "GET hits in the tenant's engines.",
		func(s tenant.Snapshot) float64 { return float64(s.Hits) })
	counter("pamakv_tenant_misses_total", "GET misses in the tenant's engines.",
		func(s tenant.Snapshot) float64 { return float64(s.Misses) })
	counter("pamakv_tenant_evictions_total", "Items evicted from the tenant's engines.",
		func(s tenant.Snapshot) float64 { return float64(s.Evictions) })
	counter("pamakv_tenant_slabs_in_total", "Slabs received from other tenants by arbitration.",
		func(s tenant.Snapshot) float64 { return float64(s.SlabsIn) })
	counter("pamakv_tenant_slabs_out_total", "Slabs donated to other tenants by arbitration.",
		func(s tenant.Snapshot) float64 { return float64(s.SlabsOut) })
	gauge("pamakv_tenant_incoming_value", "Marginal penalty saved per window were the tenant granted one slab (last arbiter step).",
		func(s tenant.Snapshot) float64 { return s.Incoming })
	gauge("pamakv_tenant_outgoing_value", "Marginal penalty paid per window giving one slab up (last arbiter step).",
		func(s tenant.Snapshot) float64 { return s.Outgoing })

	if ast := ts.ArbiterStats(); ast != nil {
		p.Counter("pamakv_tenant_arbiter_steps_total", "Arbitration rounds run.", ast.Steps)
		p.Counter("pamakv_tenant_arbiter_moves_total", "Slabs moved between tenants.", ast.Moves)
		p.Header("pamakv_tenant_slab_moves_total", "Slabs moved by donor and receiver tenant.", "counter")
		for d, row := range ast.Matrix {
			for r, n := range row {
				if n != 0 && d < len(ast.Members) && r < len(ast.Members) {
					p.Value("pamakv_tenant_slab_moves_total",
						`donor="`+ast.Members[d].Name+`",receiver="`+ast.Members[r].Name+`"`, float64(n))
				}
			}
		}
	}
}

// writeOverloadMetrics renders the admission controller: the adaptive limit
// under its hard ceiling, live occupancy, the pressure tier, shed counters by
// reason and by penalty subclass, and the queue-sojourn and service-latency
// histograms the limiter steers on.
func (a *Admin) writeOverloadMetrics(p *obs.PromWriter, os overload.Stats, ss Stats) {
	p.Gauge("pamakv_overload_limit", "Adaptive concurrency limit.", float64(os.Limit))
	p.Gauge("pamakv_overload_max_inflight", "Hard in-flight ceiling.", float64(os.MaxInflight))
	p.Gauge("pamakv_overload_inflight", "Requests admitted and in flight.", float64(os.Inflight))
	p.Gauge("pamakv_overload_queued", "Requests waiting for admission.", float64(os.Queued))
	p.Gauge("pamakv_overload_peak_inflight", "High-water mark of admitted concurrency.", float64(os.PeakInflight))
	p.Gauge("pamakv_overload_tier", "Pressure tier (0 normal .. 3 critical).", float64(os.Tier))
	p.Counter("pamakv_overload_admitted_total", "Requests admitted past the controller.", os.Admitted)
	p.Counter("pamakv_overload_queued_total", "Requests that waited in the admission queue.", os.QueuedTotal)
	p.Counter("pamakv_overload_limit_increases_total", "AIMD limit raises.", os.LimitIncreases)
	p.Counter("pamakv_overload_limit_decreases_total", "AIMD limit cuts.", os.LimitDecreases)
	p.Counter("pamakv_sheds_total", "Requests refused at admission with a shed reply.", ss.Sheds)
	p.Counter("pamakv_shed_fetches_total", "Backend fetches suppressed by the overload tier.", ss.FetchSheds)
	p.Counter("pamakv_peer_sheds_total", "Forwards the owning peer refused with a shed reply.", ss.PeerSheds)
	p.Header("pamakv_overload_sheds_total", "Sheds by reason.", "counter")
	reasons := make([]string, 0, len(os.ShedByReason))
	for r := range os.ShedByReason {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		p.Value("pamakv_overload_sheds_total", `reason="`+r+`"`, float64(os.ShedByReason[r]))
	}
	p.Header("pamakv_overload_sheds_by_sub_total", "Sheds by penalty subclass.", "counter")
	for sub, n := range os.ShedBySub {
		if n != 0 {
			p.Value("pamakv_overload_sheds_by_sub_total", `sub="`+strconv.Itoa(sub)+`"`, float64(n))
		}
	}
	p.Header("pamakv_overload_sheds_by_slo_total", "Sheds by the requesting tenant's SLO class.", "counter")
	for slo, n := range os.ShedBySLO {
		if n != 0 {
			p.Value("pamakv_overload_sheds_by_slo_total", `slo="`+strconv.Itoa(slo)+`"`, float64(n))
		}
	}
	p.Header("pamakv_overload_sojourn_seconds", "Admission-queue waiting time.", "histogram")
	p.Histogram("pamakv_overload_sojourn_seconds", "", os.Sojourn)
	p.Header("pamakv_overload_service_seconds", "Observed service latency feeding the limiter.", "histogram")
	p.Histogram("pamakv_overload_service_seconds", "", os.Service)
}

// writeClusterMetrics renders the cluster tier: forwarding outcomes, the
// hot-item mini-cache, and a labelled series per remote peer (requests,
// failure modes, hedging, breaker state, round-trip latency). Peers are
// emitted in sorted address order so scrapes diff cleanly.
func (a *Admin) writeClusterMetrics(p *obs.PromWriter, ss Stats) {
	p.Counter("pamakv_cluster_forwards_total", "Requests relayed to an owning peer.", ss.PeerForwards)
	p.Counter("pamakv_cluster_peer_hits_total", "Forwarded GETs the owner answered with a value.", ss.PeerHits)
	p.Counter("pamakv_cluster_peer_errors_total", "Forwards failed at transport level.", ss.PeerErrors)
	p.Counter("pamakv_cluster_fallbacks_total", "Failed GET forwards degraded to a local backend fetch.", ss.PeerFallbacks)
	if hc, ok := a.srv.HotCacheStats(); ok {
		p.Counter("pamakv_hot_cache_hits_total", "Remote-owned GETs served from the hot-item mini-cache.", hc.Hits)
		p.Counter("pamakv_hot_cache_misses_total", "Hot-cache lookups that fell through to the owner.", hc.Misses)
		p.Counter("pamakv_hot_cache_evictions_total", "Hot-cache entries evicted past the byte budget.", hc.Evicts)
		p.Gauge("pamakv_hot_cache_bytes", "Bytes resident in the hot-item mini-cache.", float64(hc.Bytes))
		p.Gauge("pamakv_hot_cache_items", "Entries resident in the hot-item mini-cache.", float64(hc.Items))
	}

	snaps := a.srv.peers.Snapshots()
	addrs := make([]string, 0, len(snaps))
	for addr := range snaps {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)

	counter := func(name, help string, get func(cluster.ClientStats) uint64) {
		p.Header(name, help, "counter")
		for _, addr := range addrs {
			p.Value(name, `peer="`+addr+`"`, float64(get(snaps[addr])))
		}
	}
	counter("pamakv_peer_requests_total", "Ops admitted past the peer's circuit breaker.",
		func(s cluster.ClientStats) uint64 { return s.Requests })
	counter("pamakv_peer_errors_total", "Ops failed at transport level after retries.",
		func(s cluster.ClientStats) uint64 { return s.Errors })
	counter("pamakv_peer_retries_total", "Per-attempt transport retries.",
		func(s cluster.ClientStats) uint64 { return s.Retries })
	counter("pamakv_peer_dials_total", "Connections established to the peer.",
		func(s cluster.ClientStats) uint64 { return s.Dials })
	counter("pamakv_peer_fast_fails_total", "Ops rejected by the open breaker without touching the wire.",
		func(s cluster.ClientStats) uint64 { return s.FastFails })
	counter("pamakv_peer_breaker_opens_total", "Times the peer's circuit opened.",
		func(s cluster.ClientStats) uint64 { return s.BreakerOpens })
	counter("pamakv_peer_hedges_total", "Hedged duplicate reads fired.",
		func(s cluster.ClientStats) uint64 { return s.Hedges })
	counter("pamakv_peer_hedge_wins_total", "Hedged duplicates that answered before the primary.",
		func(s cluster.ClientStats) uint64 { return s.HedgeWins })
	p.Header("pamakv_peer_breaker_open", "Whether the peer's circuit is rejecting right now.", "gauge")
	for _, addr := range addrs {
		v := 0.0
		if snaps[addr].BreakerOpen {
			v = 1.0
		}
		p.Value("pamakv_peer_breaker_open", `peer="`+addr+`"`, v)
	}
	p.Header("pamakv_peer_request_seconds", "Peer round-trip latency (hedged ops observe the winner).", "histogram")
	for _, addr := range addrs {
		p.Histogram("pamakv_peer_request_seconds", `peer="`+addr+`"`, snaps[addr].Latency)
	}
}

// writeIntrospection renders the engine's allocation state: the per-class
// slab series behind the paper's Fig. 3, per-subclass stack depths (Fig. 4),
// penalty-band hit/miss attribution, the src→dst move matrix, and the
// policy's decision counters.
func (a *Admin) writeIntrospection(p *obs.PromWriter, in cache.Introspection) {
	p.Header("pamakv_slabs", "Slabs owned per size class.", "gauge")
	for cl, n := range in.Slabs {
		p.Value("pamakv_slabs", `class="`+strconv.Itoa(cl)+`"`, float64(n))
	}
	p.Gauge("pamakv_free_slabs", "Slabs not yet granted to any class.", float64(in.FreeSlabs))
	p.Gauge("pamakv_total_slabs", "Slab budget.", float64(in.TotalSlabs))
	p.Header("pamakv_used_slots", "Occupied slots per size class.", "gauge")
	for cl, n := range in.UsedSlots {
		p.Value("pamakv_used_slots", `class="`+strconv.Itoa(cl)+`"`, float64(n))
	}

	p.Header("pamakv_holes_bytes", "Internal fragmentation per size class: slot bytes occupied by residents but unused.", "gauge")
	var holesTotal int64
	for cl, n := range in.BytesHoles {
		holesTotal += n
		if n != 0 {
			p.Value("pamakv_holes_bytes", `class="`+strconv.Itoa(cl)+`"`, float64(n))
		}
	}
	p.Gauge("pamakv_holes_bytes_total", "Internal fragmentation across all classes.", float64(holesTotal))
	p.Counter("pamakv_reslabs_total", "Live geometry transitions begun.", in.Stats.Reslabs)
	p.Counter("pamakv_reslab_moved_total", "Items migrated across geometry transitions.", in.Stats.ReslabMoved)
	reslabActive := 0.0
	if in.ReslabActive {
		reslabActive = 1
	}
	p.Gauge("pamakv_reslab_active", "1 while a geometry transition is draining the outgoing era.", reslabActive)

	p.Header("pamakv_subclass_items", "Resident items per (class, penalty subclass) LRU stack.", "gauge")
	for cl, row := range in.SubLens {
		for sub, n := range row {
			if n != 0 {
				p.Value("pamakv_subclass_items", subLabels(cl, sub), float64(n))
			}
		}
	}
	p.Header("pamakv_subclass_hits_total", "GET hits by (class, penalty subclass).", "counter")
	for cl, row := range in.SubHits {
		for sub, n := range row {
			if n != 0 {
				p.Value("pamakv_subclass_hits_total", subLabels(cl, sub), float64(n))
			}
		}
	}
	p.Header("pamakv_subclass_misses_total", "Attributed GET misses by would-be (class, penalty subclass).", "counter")
	for cl, row := range in.SubMisses {
		for sub, n := range row {
			if n != 0 {
				p.Value("pamakv_subclass_misses_total", subLabels(cl, sub), float64(n))
			}
		}
	}
	p.Header("pamakv_slab_moves_total", "Cross-class slab moves by donor and receiver class.", "counter")
	for src, row := range in.SlabMoves {
		for dst, n := range row {
			if n != 0 {
				p.Value("pamakv_slab_moves_total",
					`src="`+strconv.Itoa(src)+`",dst="`+strconv.Itoa(dst)+`"`, float64(n))
			}
		}
	}

	if d := in.Decisions; d != nil {
		p.Counter("pamakv_policy_migrations_total", "Slab migrations the policy performed.", d.Migrations)
		p.Counter("pamakv_policy_same_class_total", "Replacements kept in-class (cheapest candidate was local).", d.SameClass)
		p.Counter("pamakv_policy_not_worth_it_total", "Migrations declined on price (incoming <= outgoing value).", d.NotWorthIt)
		p.Counter("pamakv_policy_forced_total", "Migrations forced by an empty class.", d.Forced)
		if len(d.EvictsBySub) > 0 {
			p.Header("pamakv_policy_evictions_total", "Evictions by penalty subclass.", "counter")
			for sub, n := range d.EvictsBySub {
				p.Value("pamakv_policy_evictions_total", `sub="`+strconv.Itoa(sub)+`"`, float64(n))
			}
		}
		if len(d.EvictedPenaltyBySub) > 0 {
			p.Header("pamakv_policy_evicted_penalty_seconds_total", "Summed miss penalty of evicted items by subclass.", "counter")
			for sub, v := range d.EvictedPenaltyBySub {
				p.Value("pamakv_policy_evicted_penalty_seconds_total", `sub="`+strconv.Itoa(sub)+`"`, v)
			}
		}
	}
}

func subLabels(cl, sub int) string {
	return `class="` + strconv.Itoa(cl) + `",sub="` + strconv.Itoa(sub) + `"`
}

// LatencySummary is the JSON rendering of one latency histogram: count plus
// derived points, all finite (zero when the histogram is empty).
type LatencySummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean_seconds"`
	P50   float64 `json:"p50_seconds"`
	P95   float64 `json:"p95_seconds"`
	P99   float64 `json:"p99_seconds"`
}

func summarize(s obs.HistSnapshot) LatencySummary {
	return LatencySummary{
		Count: s.Count,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P95:   s.Quantile(0.95),
		P99:   s.Quantile(0.99),
	}
}

// BackendStatsz is the backend section of /statsz.
type BackendStatsz struct {
	Fetches             uint64         `json:"fetches"`
	TotalPenaltySeconds float64        `json:"total_penalty_seconds"`
	InjectedErrors      uint64         `json:"injected_errors"`
	InjectedSpikes      uint64         `json:"injected_spikes"`
	FetchLatency        LatencySummary `json:"fetch_latency"`
}

// PeerStatsz is one remote peer's section of /statsz: the raw counters plus
// a summarized latency view (the full histogram rides on /metrics).
type PeerStatsz struct {
	Requests     uint64         `json:"requests"`
	Errors       uint64         `json:"errors"`
	Retries      uint64         `json:"retries"`
	Dials        uint64         `json:"dials"`
	FastFails    uint64         `json:"fast_fails"`
	BreakerOpens uint64         `json:"breaker_opens"`
	BreakerOpen  bool           `json:"breaker_open"`
	Hedges       uint64         `json:"hedges"`
	HedgeWins    uint64         `json:"hedge_wins"`
	Latency      LatencySummary `json:"latency"`
}

// OverloadStatsz is the overload section of /statsz: the controller's
// snapshot flattened next to the server-side shed counters, with the
// histograms summarized (the full curves ride on /metrics).
type OverloadStatsz struct {
	Tier           int               `json:"tier"`
	Limit          int               `json:"limit"`
	MaxInflight    int               `json:"max_inflight"`
	Inflight       int               `json:"inflight"`
	Queued         int               `json:"queued"`
	PeakInflight   int               `json:"peak_inflight"`
	Admitted       uint64            `json:"admitted"`
	QueuedTotal    uint64            `json:"queued_total"`
	ShedTotal      uint64            `json:"shed_total"`
	ShedByReason   map[string]uint64 `json:"shed_by_reason"`
	ShedBySub      [5]uint64         `json:"shed_by_sub"`
	ShedBySLO      [4]uint64         `json:"shed_by_slo"`
	LimitIncreases uint64            `json:"limit_increases"`
	LimitDecreases uint64            `json:"limit_decreases"`
	Sheds          uint64            `json:"sheds"`
	FetchSheds     uint64            `json:"shed_fetches"`
	PeerSheds      uint64            `json:"peer_sheds"`
	Sojourn        LatencySummary    `json:"sojourn"`
	Service        LatencySummary    `json:"service"`
}

// ClusterStatsz is the cluster section of /statsz.
type ClusterStatsz struct {
	Self          string                 `json:"self"`
	Members       []string               `json:"members"`
	Forwards      uint64                 `json:"forwards"`
	PeerHits      uint64                 `json:"peer_hits"`
	PeerErrors    uint64                 `json:"peer_errors"`
	PeerFallbacks uint64                 `json:"peer_fallbacks"`
	HotHits       uint64                 `json:"hot_hits"`
	HotCache      *cluster.HotCacheStats `json:"hot_cache,omitempty"`
	Peers         map[string]PeerStatsz  `json:"peers"`
}

// Statsz is the /statsz document: everything the in-band `stats` command
// reports plus the structures it cannot carry (matrices, histograms). All
// numbers are finite — "no traffic" ratios are omitted, never NaN, because
// encoding/json refuses NaN.
type Statsz struct {
	Policy   string      `json:"policy"`
	Items    int         `json:"items"`
	HitRatio *float64    `json:"hit_ratio,omitempty"`
	Engine   cache.Stats `json:"engine"`
	Server   Stats       `json:"server"`
	Slabs    []int       `json:"slabs"`

	Latencies     map[string]LatencySummary `json:"latencies"`
	Backend       *BackendStatsz            `json:"backend,omitempty"`
	Overload      *OverloadStatsz           `json:"overload,omitempty"`
	Cluster       *ClusterStatsz            `json:"cluster,omitempty"`
	Membership    *membership.Stats         `json:"membership,omitempty"`
	Introspection *cache.Introspection      `json:"introspection,omitempty"`

	// Tenants and Arbiter appear when the store is a tenant.Router: one
	// accounting row per tenant and the arbiter's counters and move matrix.
	Tenants []tenant.Snapshot    `json:"tenants,omitempty"`
	Arbiter *tenant.ArbiterStats `json:"arbiter,omitempty"`

	// AccessBuf appears when the store runs the lock-amortized read path:
	// ring depth, drain batching, and staleness counters (see
	// cache.AccessBufStats).
	AccessBuf *cache.AccessBufStats `json:"access_buf,omitempty"`
}

// statsz assembles the document (shared by the HTTP handler and tests).
func (a *Admin) statsz() Statsz {
	st := a.srv.c.Stats()
	doc := Statsz{
		Policy: a.srv.c.PolicyName(),
		Items:  a.srv.c.Items(),
		Engine: st,
		Server: a.srv.Stats(),
		Slabs:  a.srv.c.SnapshotSlabs(),
	}
	if st.Gets > 0 {
		hr := float64(st.Hits) / float64(st.Gets)
		if !math.IsNaN(hr) {
			doc.HitRatio = &hr
		}
	}
	if ab, ok := a.srv.c.(accessBufStatser); ok {
		if abs := ab.AccessBufStats(); abs.Enabled {
			doc.AccessBuf = &abs
		}
	}
	doc.Latencies = make(map[string]LatencySummary, numFams)
	for fam, snap := range a.srv.Latencies() {
		doc.Latencies[fam] = summarize(snap)
	}
	if b := a.srv.opts.Backend; b != nil {
		doc.Backend = &BackendStatsz{
			Fetches:             b.Fetches(),
			TotalPenaltySeconds: b.TotalPenalty(),
			InjectedErrors:      b.InjectedErrors(),
			InjectedSpikes:      b.InjectedSpikes(),
			FetchLatency:        summarize(b.FetchLatency()),
		}
	}
	if c := a.srv.ctrl; c != nil {
		os := c.Stats()
		ss := doc.Server
		doc.Overload = &OverloadStatsz{
			Tier:           os.Tier,
			Limit:          os.Limit,
			MaxInflight:    os.MaxInflight,
			Inflight:       os.Inflight,
			Queued:         os.Queued,
			PeakInflight:   os.PeakInflight,
			Admitted:       os.Admitted,
			QueuedTotal:    os.QueuedTotal,
			ShedTotal:      os.ShedTotal,
			ShedByReason:   os.ShedByReason,
			ShedBySub:      os.ShedBySub,
			ShedBySLO:      os.ShedBySLO,
			LimitIncreases: os.LimitIncreases,
			LimitDecreases: os.LimitDecreases,
			Sheds:          ss.Sheds,
			FetchSheds:     ss.FetchSheds,
			PeerSheds:      ss.PeerSheds,
			Sojourn:        summarize(os.Sojourn),
			Service:        summarize(os.Service),
		}
	}
	if ps := a.srv.peers; ps != nil {
		ss := doc.Server
		cs := &ClusterStatsz{
			Self:          ps.Self(),
			Members:       ps.Members(),
			Forwards:      ss.PeerForwards,
			PeerHits:      ss.PeerHits,
			PeerErrors:    ss.PeerErrors,
			PeerFallbacks: ss.PeerFallbacks,
			HotHits:       ss.HotHits,
			Peers:         make(map[string]PeerStatsz),
		}
		if hc, ok := a.srv.HotCacheStats(); ok {
			cs.HotCache = &hc
		}
		for addr, st := range ps.Snapshots() {
			cs.Peers[addr] = PeerStatsz{
				Requests:     st.Requests,
				Errors:       st.Errors,
				Retries:      st.Retries,
				Dials:        st.Dials,
				FastFails:    st.FastFails,
				BreakerOpens: st.BreakerOpens,
				BreakerOpen:  st.BreakerOpen,
				Hedges:       st.Hedges,
				HedgeWins:    st.HedgeWins,
				Latency:      summarize(st.Latency),
			}
		}
		doc.Cluster = cs
	}
	if m := a.srv.mem; m != nil {
		ms := m.Stats()
		doc.Membership = &ms
	}
	if in, ok := a.srv.c.(introspector); ok {
		snap := in.Introspect()
		doc.Introspection = &snap
	}
	if ts, ok := a.srv.c.(tenantStatser); ok {
		doc.Tenants = ts.TenantSnapshots()
		doc.Arbiter = ts.ArbiterStats()
	}
	return doc
}

func (a *Admin) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(a.statsz()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (a *Admin) handleSeries(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/tab-separated-values")
	_ = metrics.WriteTSV(w, []*metrics.Series{a.rec.Series()})
}

// membership returns the node's membership manager, writing a 404 when
// runtime membership is not enabled (static -peers list or no cluster).
func (a *Admin) membership(w http.ResponseWriter) *membership.Manager {
	m := a.srv.mem
	if m == nil {
		http.Error(w, "runtime membership not enabled", http.StatusNotFound)
	}
	return m
}

// handleMembershipz reports the membership state machine: epoch, member
// health, probe and handoff progress counters.
func (a *Admin) handleMembershipz(w http.ResponseWriter, _ *http.Request) {
	m := a.membership(w)
	if m == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m.Stats()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// membershipMutation runs one admin-seeded membership change (POST only).
func (a *Admin) membershipMutation(w http.ResponseWriter, r *http.Request, fn func(m *membership.Manager) error) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	m := a.membership(w)
	if m == nil {
		return
	}
	if err := fn(m); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	epoch, members := m.View()
	fmt.Fprintf(w, "ok epoch=%d members=%s\n", epoch, strings.Join(members, ","))
}

// handleMembershipAdd admits a node: POST /membership/add?addr=host:port.
func (a *Admin) handleMembershipAdd(w http.ResponseWriter, r *http.Request) {
	a.membershipMutation(w, r, func(m *membership.Manager) error {
		addr := r.URL.Query().Get("addr")
		if addr == "" {
			return errors.New("addr parameter required")
		}
		return m.Join(addr)
	})
}

// handleMembershipRemove evicts a node: POST /membership/remove?addr=....
func (a *Admin) handleMembershipRemove(w http.ResponseWriter, r *http.Request) {
	a.membershipMutation(w, r, func(m *membership.Manager) error {
		addr := r.URL.Query().Get("addr")
		if addr == "" {
			return errors.New("addr parameter required")
		}
		return m.Remove(addr)
	})
}

// handleMembershipDrain removes this node from the ring and streams its
// residents to the new owners. Poll /membershipz until handoff.active is
// false, then shut the process down.
func (a *Admin) handleMembershipDrain(w http.ResponseWriter, r *http.Request) {
	a.membershipMutation(w, r, func(m *membership.Manager) error {
		return m.Drain()
	})
}

// writeMembershipMetrics renders the membership state machine for Prom
// scrapes: the epoch and per-member health gauges plus probe, apply, and
// warm-handoff progress counters (the dip diagnostics: handoff seconds and
// bytes tell you how long the post-change warmth gap lasted).
func (a *Admin) writeMembershipMetrics(p *obs.PromWriter, ms membership.Stats) {
	p.Gauge("pamakv_member_epoch", "Current membership epoch.", float64(ms.Epoch))
	p.Gauge("pamakv_members", "Members in the current view.", float64(len(ms.Members)))
	draining := 0.0
	if ms.Draining {
		draining = 1.0
	}
	p.Gauge("pamakv_member_draining", "Whether this node is outside the ring, draining.", draining)
	p.Header("pamakv_member_state", "Per-member health: 0 self, 1 alive, 2 suspect.", "gauge")
	for _, m := range ms.Members {
		v := 0.0
		switch m.State {
		case membership.StateAlive:
			v = 1.0
		case membership.StateSuspect:
			v = 2.0
		}
		p.Value("pamakv_member_state", `member="`+m.Addr+`"`, v)
	}
	p.Counter("pamakv_member_applies_total", "Views applied (epoch advanced).", ms.Applies)
	p.Counter("pamakv_member_refusals_total", "Stale or conflicting views refused.", ms.Refusals)
	p.Counter("pamakv_member_joins_total", "Join proposals originated here.", ms.Joins)
	p.Counter("pamakv_member_suspects_total", "Alive-to-suspect transitions observed.", ms.Suspects)
	p.Counter("pamakv_member_evictions_total", "Auto-evictions proposed by this node.", ms.Evictions)
	p.Counter("pamakv_member_probes_total", "Health probes sent.", ms.Probes)
	p.Counter("pamakv_member_probe_failures_total", "Health probes failed.", ms.ProbeFailures)
	p.Header("pamakv_member_probe_seconds", "Health-probe round-trip latency.", "histogram")
	p.Histogram("pamakv_member_probe_seconds", "", ms.ProbeLatency)

	h := ms.Handoff
	active := 0.0
	if h.Active {
		active = 1.0
	}
	p.Gauge("pamakv_handoff_active", "Whether a warm handoff is streaming now.", active)
	p.Counter("pamakv_handoff_runs_total", "Warm-handoff runs started.", h.Runs)
	p.Counter("pamakv_handoff_keys_planned_total", "Keys scheduled for streaming.", h.KeysPlanned)
	p.Counter("pamakv_handoff_keys_total", "Keys streamed to their new owner.", h.KeysSent)
	p.Counter("pamakv_handoff_bytes_total", "Value bytes streamed to new owners.", h.BytesSent)
	p.Counter("pamakv_handoff_errors_total", "Keys whose stream attempt failed.", h.Errors)
	p.Counter("pamakv_handoff_aborts_total", "Handoff runs aborted by a newer view.", h.Aborts)
	p.Header("pamakv_handoff_seconds", "Wall-clock duration of completed handoff runs.", "histogram")
	p.Histogram("pamakv_handoff_seconds", "", h.Duration)
}
