package server

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"strings"
	"testing"

	"pamakv/internal/cache"
	"pamakv/internal/core"
	"pamakv/internal/kv"
	"pamakv/internal/proto"
)

// benchServer builds a value-storing PAMA engine preloaded with n keys.
func benchServer(tb testing.TB, n int) (*Server, []string) {
	tb.Helper()
	c, err := cache.New(cache.Config{
		Geometry:    kv.Geometry{SlabSize: 1 << 16, Base: 64, NumClasses: 8},
		CacheBytes:  1 << 24,
		StoreValues: true,
		WindowLen:   1 << 40,
	}, core.New(core.DefaultConfig()))
	if err != nil {
		tb.Fatal(err)
	}
	keys := make([]string, n)
	body := strings.Repeat("v", 100)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%d", i)
		if err := c.Set(keys[i], len(keys[i])+len(body)+itemOverhead, 0.01, 0, []byte(body)); err != nil {
			tb.Fatal(err)
		}
	}
	return New(c, Options{}), keys
}

// TestServedGetAllocations pins the dispatch path of a GET hit (parse
// already done, response appended to a reused buffer) at zero steady-state
// allocations: the connection scratch supplies the value buffer the engine
// copies into, and the latency instrumentation and attribution counters must
// not add to it. AllocsPerRun's warm-up call grows the scratch once.
func TestServedGetAllocations(t *testing.T) {
	srv, keys := benchServer(t, 4)
	cmd := &proto.Command{Name: "get", Keys: keys[:1]}
	sc := &connScratch{out: make([]byte, 0, 4096)}
	allocs := testing.AllocsPerRun(5000, func() {
		sc.out = srv.dispatch(sc, sc.out[:0], cmd)
	})
	if allocs > 0.5 {
		t.Fatalf("served GET allocates %.2f objects per request, want 0", allocs)
	}
	if !strings.HasPrefix(string(sc.out), "VALUE ") {
		t.Fatalf("dispatch output %q", sc.out)
	}
}

// BenchmarkServerGetRoundTrip measures a full client round trip — request
// bytes on a real TCP socket, parse, engine hit, response flush, client
// read — one GET per round trip (no pipelining).
func BenchmarkServerGetRoundTrip(b *testing.B) {
	srv, keys := benchServer(b, 1<<10)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Shutdown()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fmt.Fprintf(conn, "get %s\r\n", keys[i&(len(keys)-1)]); err != nil {
			b.Fatal(err)
		}
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				b.Fatal(err)
			}
			if strings.HasPrefix(line, "END") {
				break
			}
		}
	}
}

// BenchmarkServerPipelinedGetHit measures the steady-state serving path the
// way a batching client drives it: 64 GETs per socket write, one flushed
// response batch per read. ns/op and allocs/op are per GET, not per batch.
func BenchmarkServerPipelinedGetHit(b *testing.B) {
	const depth = 64
	srv, keys := benchServer(b, 1<<10)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Shutdown()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	var req []byte
	for i := 0; i < depth; i++ {
		req = append(req, "get "...)
		req = append(req, keys[i]...)
		req = append(req, '\r', '\n')
	}
	r := bufio.NewReaderSize(conn, 1<<16)
	readBatch := func() {
		for ends := 0; ends < depth; {
			line, err := r.ReadSlice('\n')
			if err != nil {
				b.Fatal(err)
			}
			if bytes.HasPrefix(line, []byte("END")) {
				ends++
			}
		}
	}
	// Warm the connection so the server's scratch buffers are grown.
	if _, err := conn.Write(req); err != nil {
		b.Fatal(err)
	}
	readBatch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += depth {
		if _, err := conn.Write(req); err != nil {
			b.Fatal(err)
		}
		readBatch()
	}
}

// BenchmarkServerSetFill measures the store path: pipelined overwrite SETs of
// a 100-byte body into resident keys, so slot reuse (not eviction) dominates.
func BenchmarkServerSetFill(b *testing.B) {
	const depth = 64
	srv, keys := benchServer(b, depth)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Shutdown()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	body := strings.Repeat("w", 100)
	var req []byte
	for i := 0; i < depth; i++ {
		req = append(req, fmt.Sprintf("set %s 0 0 %d\r\n%s\r\n", keys[i], len(body), body)...)
	}
	r := bufio.NewReaderSize(conn, 1<<16)
	readBatch := func() {
		for n := 0; n < depth; n++ {
			line, err := r.ReadSlice('\n')
			if err != nil {
				b.Fatal(err)
			}
			if !bytes.HasPrefix(line, []byte("STORED")) {
				b.Fatalf("unexpected reply %q", line)
			}
		}
	}
	if _, err := conn.Write(req); err != nil {
		b.Fatal(err)
	}
	readBatch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += depth {
		if _, err := conn.Write(req); err != nil {
			b.Fatal(err)
		}
		readBatch()
	}
}
