package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"

	"pamakv/internal/cache"
	"pamakv/internal/core"
	"pamakv/internal/kv"
	"pamakv/internal/proto"
)

// benchServer builds a value-storing PAMA engine preloaded with n keys.
func benchServer(tb testing.TB, n int) (*Server, []string) {
	tb.Helper()
	c, err := cache.New(cache.Config{
		Geometry:    kv.Geometry{SlabSize: 1 << 16, Base: 64, NumClasses: 8},
		CacheBytes:  1 << 24,
		StoreValues: true,
		WindowLen:   1 << 40,
	}, core.New(core.DefaultConfig()))
	if err != nil {
		tb.Fatal(err)
	}
	keys := make([]string, n)
	body := strings.Repeat("v", 100)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%d", i)
		if err := c.Set(keys[i], len(keys[i])+len(body)+itemOverhead, 0.01, 0, []byte(body)); err != nil {
			tb.Fatal(err)
		}
	}
	return New(c, Options{}), keys
}

// TestServedGetAllocations pins the dispatch path of a GET hit (parse
// already done, response appended to a reused buffer) at its current
// allocation count: one, the value buffer the engine hands back. The latency
// instrumentation and attribution counters must not add to it.
func TestServedGetAllocations(t *testing.T) {
	srv, keys := benchServer(t, 4)
	cmd := &proto.Command{Name: "get", Keys: keys[:1]}
	out := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(5000, func() {
		out = srv.dispatch(out[:0], cmd)
	})
	if allocs > 1 {
		t.Fatalf("served GET allocates %.1f objects per request, want <= 1", allocs)
	}
	if !strings.HasPrefix(string(out), "VALUE ") {
		t.Fatalf("dispatch output %q", out)
	}
}

// BenchmarkServerGetRoundTrip measures a full client round trip — request
// bytes on a real TCP socket, parse, engine hit, response flush, client
// read — one GET per round trip (no pipelining).
func BenchmarkServerGetRoundTrip(b *testing.B) {
	srv, keys := benchServer(b, 1<<10)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Shutdown()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fmt.Fprintf(conn, "get %s\r\n", keys[i&(len(keys)-1)]); err != nil {
			b.Fatal(err)
		}
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				b.Fatal(err)
			}
			if strings.HasPrefix(line, "END") {
				break
			}
		}
	}
}
