//go:build !race

package server

// raceEnabled reports whether the race detector is instrumenting this build.
const raceEnabled = false
