// Package singleflight suppresses duplicate concurrent work: when N callers
// ask for the same key while one call is already in flight, the late callers
// wait for the leader's result instead of repeating the work. This is the
// thundering-herd guard on both miss-fill paths — N concurrent GET misses of
// one key cost one backend fetch (or one peer forward), not N.
//
// The design follows the well-known golang.org/x/sync/singleflight shape,
// reimplemented here so the repository stays dependency-free. Results are
// shared by reference: callers must treat a shared value as immutable.
package singleflight

import "sync"

// call is one in-flight (or completed) unit of work.
type call struct {
	wg  sync.WaitGroup
	val any
	err error
	// dups counts the callers that joined after the leader.
	dups int
}

// Group dedupes function calls by key. The zero value is ready to use.
type Group struct {
	mu sync.Mutex
	m  map[string]*call
}

// Do runs fn once per key among concurrent callers: the first caller (the
// leader) executes fn; callers arriving while it runs block and receive the
// leader's result. shared reports whether the result was delivered to more
// than one caller. Sequential calls (no overlap) each run fn.
func (g *Group) Do(key string, fn func() (any, error)) (v any, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*call)
	}
	if c, ok := g.m[key]; ok {
		c.dups++
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &call{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	shared = c.dups > 0
	g.mu.Unlock()
	c.wg.Done()
	return c.val, c.err, shared
}

// Forget drops the in-flight call for key, so the next Do starts fresh
// instead of joining it. Waiters already joined still receive the old
// result. Use after learning a result would be poisoned (e.g. the flight
// outlived a membership change).
func (g *Group) Forget(key string) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
}
