package singleflight

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoSequentialRunsEachCall(t *testing.T) {
	var g Group
	var calls atomic.Int32
	for i := 0; i < 3; i++ {
		v, err, shared := g.Do("k", func() (any, error) {
			calls.Add(1)
			return "v", nil
		})
		if err != nil || v.(string) != "v" || shared {
			t.Fatalf("Do = (%v, %v, %v), want (v, nil, false)", v, err, shared)
		}
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("sequential calls ran fn %d times, want 3", n)
	}
}

func TestDoCollapsesConcurrentCalls(t *testing.T) {
	var g Group
	var calls atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})

	const waiters = 64
	var wg sync.WaitGroup
	var sharedCount atomic.Int32
	results := make([]any, waiters)
	// Leader blocks inside fn until every waiter has had a chance to join.
	go func() {
		g.Do("k", func() (any, error) {
			calls.Add(1)
			close(started)
			<-release
			return 42, nil
		})
	}()
	<-started
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, shared := g.Do("k", func() (any, error) {
				calls.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			if shared {
				sharedCount.Add(1)
			}
			results[i] = v
		}(i)
	}
	// Give the waiters a moment to join the flight, then release the leader.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("%d concurrent callers ran fn %d times, want 1", waiters+1, n)
	}
	if n := sharedCount.Load(); n != waiters {
		t.Fatalf("shared reported by %d waiters, want %d", n, waiters)
	}
	for i, v := range results {
		if v.(int) != 42 {
			t.Fatalf("waiter %d got %v, want 42", i, v)
		}
	}
}

func TestDoSharesErrors(t *testing.T) {
	var g Group
	boom := errors.New("boom")
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		g.Do("k", func() (any, error) {
			close(started)
			<-release
			return nil, boom
		})
	}()
	<-started
	done := make(chan error, 1)
	go func() {
		_, err, _ := g.Do("k", func() (any, error) { return nil, nil })
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(release)
	if err := <-done; !errors.Is(err, boom) {
		t.Fatalf("waiter error = %v, want boom", err)
	}
}

func TestForgetStartsFreshFlight(t *testing.T) {
	var g Group
	var calls atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		g.Do("k", func() (any, error) {
			calls.Add(1)
			close(started)
			<-release
			return 1, nil
		})
	}()
	<-started
	g.Forget("k")
	// A fresh Do must not join the forgotten flight.
	v, _, _ := g.Do("k", func() (any, error) {
		calls.Add(1)
		return 2, nil
	})
	close(release)
	if v.(int) != 2 {
		t.Fatalf("post-Forget Do returned %v, want 2", v)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("fn ran %d times, want 2", n)
	}
}
