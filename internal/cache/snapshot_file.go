package cache

import (
	"fmt"
	"os"
	"path/filepath"
)

// SaveSnapshotFile writes the snapshot crash-safely: the bytes go to a
// temporary file in the same directory, are fsynced, and only then renamed
// over path (with a best-effort directory sync so the rename itself survives
// a crash). A reader of path therefore sees either the previous complete
// snapshot or the new complete snapshot, never a torn write — a process
// killed mid-save leaves at worst an orphaned temp file.
func (c *Cache) SaveSnapshotFile(path string) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("cache: creating snapshot temp file: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = c.SaveSnapshot(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("cache: syncing snapshot: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("cache: closing snapshot: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("cache: publishing snapshot: %w", err)
	}
	if d, derr := os.Open(dir); derr == nil {
		// Not every platform supports fsync on a directory; the rename
		// is still atomic without it, just not yet durable.
		d.Sync()
		d.Close()
	}
	return nil
}

// LoadSnapshotFile restores a snapshot saved by SaveSnapshotFile. A missing
// file is a clean cold start (loaded=false, nil error); a present but
// corrupt or truncated snapshot is an error — the cache refuses to serve a
// silently partial data set.
func (c *Cache) LoadSnapshotFile(path string) (loaded bool, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	defer f.Close()
	if err := c.LoadSnapshot(f); err != nil {
		return false, err
	}
	return true, nil
}
