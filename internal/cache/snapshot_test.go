package cache

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	pol := &nullPolicy{bounds: []float64{0.01, 5}}
	src, err := New(Config{
		Geometry:    smallGeom(),
		CacheBytes:  4 * 4096,
		StoreValues: true,
		WindowLen:   1 << 50,
	}, pol)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		v := fmt.Sprintf("value-%d", i)
		if err := src.Set(fmt.Sprintf("k%d", i), len(v), 0.02, uint32(i), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	dst, err := New(Config{
		Geometry:    smallGeom(),
		CacheBytes:  4 * 4096,
		StoreValues: true,
		WindowLen:   1 << 50,
	}, &nullPolicy{bounds: []float64{0.01, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.Items() != 50 {
		t.Fatalf("restored %d items, want 50", dst.Items())
	}
	for i := 0; i < 50; i++ {
		val, flags, hit := dst.Get(fmt.Sprintf("k%d", i), 0, 0, nil)
		if !hit || string(val) != fmt.Sprintf("value-%d", i) || flags != uint32(i) {
			t.Fatalf("k%d restored wrong: hit=%v val=%q flags=%d", i, hit, val, flags)
		}
	}
	if err := dst.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotPreservesLRUOrder(t *testing.T) {
	src := newTestCache(t, 1, &nullPolicy{})
	for i := 0; i < 64; i++ {
		src.Set(fmt.Sprintf("k%d", i), 50, 0.02, 0, nil)
	}
	src.Get("k0", 0, 0, nil) // refresh the oldest item
	var buf bytes.Buffer
	if err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := newTestCache(t, 1, &nullPolicy{})
	if err := dst.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// One insert must evict the restored LRU item: k1 (k0 was refreshed
	// before the save, so it must survive).
	dst.Set("new", 50, 0.02, 0, nil)
	if dst.Contains("k1") {
		t.Fatal("restored LRU order lost: k1 should have been evicted first")
	}
	if !dst.Contains("k0") {
		t.Fatal("refreshed item did not survive restore+evict")
	}
}

func TestSnapshotIntoSmallerCache(t *testing.T) {
	src := newTestCache(t, 4, &nullPolicy{})
	for i := 0; i < 200; i++ {
		src.Set(fmt.Sprintf("k%d", i), 50, 0.02, 0, nil)
	}
	var buf bytes.Buffer
	if err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := newTestCache(t, 1, &nullPolicy{}) // quarter the capacity
	if err := dst.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.Items() != 64 {
		t.Fatalf("restored %d items into 64 slots", dst.Items())
	}
	// The survivors must be the most recent tail of the snapshot.
	if !dst.Contains("k199") || dst.Contains("k0") {
		t.Fatal("wrong survivors after shrinking restore")
	}
	if err := dst.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotTTLPreserved(t *testing.T) {
	now := int64(1000)
	mk := func() *Cache {
		c, err := New(Config{
			Geometry:    smallGeom(),
			CacheBytes:  2 * 4096,
			StoreValues: true,
			WindowLen:   1 << 50,
			Now:         func() int64 { return now },
		}, &nullPolicy{})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	src := mk()
	src.SetTTL("mortal", 50, 0.02, 0, 1500, []byte("x"))
	src.Set("immortal", 50, 0.02, 0, []byte("y"))
	var buf bytes.Buffer
	if err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := mk()
	if err := dst.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	now = 2000
	if _, _, hit := dst.Get("mortal", 0, 0, nil); hit {
		t.Fatal("TTL lost in snapshot: expired item served")
	}
	if _, _, hit := dst.Get("immortal", 0, 0, nil); !hit {
		t.Fatal("immortal item lost")
	}
}

func TestLoadSnapshotRejectsGarbage(t *testing.T) {
	c := newTestCache(t, 1, &nullPolicy{})
	if err := c.LoadSnapshot(strings.NewReader("not a snapshot")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Truncated: valid header then nothing.
	var buf bytes.Buffer
	src := newTestCache(t, 1, &nullPolicy{})
	src.Set("k", 50, 0.02, 0, nil)
	src.SaveSnapshot(&buf)
	data := buf.Bytes()[:buf.Len()-4]
	if err := c.LoadSnapshot(bytes.NewReader(data)); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

func TestSnapshotEmptyCache(t *testing.T) {
	src := newTestCache(t, 1, &nullPolicy{})
	var buf bytes.Buffer
	if err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := newTestCache(t, 1, &nullPolicy{})
	if err := dst.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.Items() != 0 {
		t.Fatal("phantom items from empty snapshot")
	}
}
