package cache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func fillSnapshotCache(t *testing.T, n int) *Cache {
	t.Helper()
	c := newTestCache(t, 4, &nullPolicy{})
	for i := 0; i < n; i++ {
		if err := c.Set(fmt.Sprintf("k%d", i), 50, 0.02, uint32(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	src := fillSnapshotCache(t, 40)
	if err := src.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	dst := newTestCache(t, 4, &nullPolicy{})
	loaded, err := dst.LoadSnapshotFile(path)
	if err != nil || !loaded {
		t.Fatalf("LoadSnapshotFile = %v, %v", loaded, err)
	}
	if dst.Items() != src.Items() {
		t.Fatalf("restored %d items, want %d", dst.Items(), src.Items())
	}
	// Saving again replaces the file atomically and leaves no temp litter.
	if err := src.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("snapshot dir has %d entries, want just the snapshot: %v", len(ents), ents)
	}
}

func TestSnapshotFileMissingIsColdStart(t *testing.T) {
	c := newTestCache(t, 1, &nullPolicy{})
	loaded, err := c.LoadSnapshotFile(filepath.Join(t.TempDir(), "absent.snap"))
	if err != nil {
		t.Fatalf("missing snapshot should be a clean cold start, got %v", err)
	}
	if loaded {
		t.Fatal("loaded=true for a missing file")
	}
}

// TestSnapshotFileKillMidWrite emulates a writer killed at every stage of a
// save. With the temp-file + rename discipline, a death before the rename
// leaves only an orphaned temp file — the published snapshot still loads in
// full. The same partial bytes written over the snapshot path directly (what
// the old in-place writer would leave behind) must be refused with an error,
// never half-loaded.
func TestSnapshotFileKillMidWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.snap")
	old := fillSnapshotCache(t, 30)
	if err := old.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}

	// The byte stream a crashed second save would have been writing.
	next := fillSnapshotCache(t, 60)
	var full bytes.Buffer
	if err := next.SaveSnapshot(&full); err != nil {
		t.Fatal(err)
	}
	cuts := []int{0, 1, 7, 8, 9, 16, full.Len() / 3, full.Len() / 2, full.Len() - 1}
	for _, cut := range cuts {
		partial := full.Bytes()[:cut]

		// Death before the rename: the partial bytes sit in a temp file.
		tmp := filepath.Join(dir, "cache.snap.tmp-orphan")
		if err := os.WriteFile(tmp, partial, 0o644); err != nil {
			t.Fatal(err)
		}
		dst := newTestCache(t, 4, &nullPolicy{})
		loaded, err := dst.LoadSnapshotFile(path)
		if err != nil || !loaded {
			t.Fatalf("cut %d: published snapshot unreadable past orphan temp: %v", cut, err)
		}
		if dst.Items() != old.Items() {
			t.Fatalf("cut %d: restored %d items, want the old snapshot's %d", cut, dst.Items(), old.Items())
		}
		os.Remove(tmp)

		// The same death with in-place writing: the snapshot itself is
		// torn and must be refused.
		torn := filepath.Join(dir, "torn.snap")
		if err := os.WriteFile(torn, partial, 0o644); err != nil {
			t.Fatal(err)
		}
		dst = newTestCache(t, 4, &nullPolicy{})
		if _, err := dst.LoadSnapshotFile(torn); err == nil {
			t.Fatalf("cut %d: truncated snapshot accepted", cut)
		}
		os.Remove(torn)
	}
}

func TestSnapshotFileRefusesTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	src := fillSnapshotCache(t, 20)
	if err := src.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	dst := newTestCache(t, 4, &nullPolicy{})
	if _, err := dst.LoadSnapshotFile(path); err == nil {
		t.Fatal("truncated snapshot file accepted")
	}
}
