package cache

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"pamakv/internal/geom"
	"pamakv/internal/kv"
)

// mustTable builds a table geometry or fails the test.
func mustTable(t testing.TB, slabSize int, slots []int) kv.Geometry {
	t.Helper()
	g, err := kv.NewTableGeometry(slabSize, slots)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestReslabBasicTransition fills a cache, transitions to a learned-style
// slot table, pumps the transition to completion, and verifies every value
// survives intact with accounting clean and holes reduced.
func TestReslabBasicTransition(t *testing.T) {
	c := newTestCache(t, 8, &nullPolicy{})
	// 100-byte items land in the 128-byte class of smallGeom: 28 hole
	// bytes each.
	const n = 100
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := c.Set(key, 100, 0.01, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	before := c.HolesTotal()
	if before != int64(n*(128-100)) {
		t.Fatalf("holes before = %d, want %d", before, n*(128-100))
	}

	target := mustTable(t, 4096, []int{100, 512})
	if err := c.BeginReslab(target); err != nil {
		t.Fatal(err)
	}
	if !c.ReslabActive() {
		t.Fatal("transition did not start")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("mid-transition: %v", err)
	}
	steps := 0
	for {
		_, done := c.ReslabStep(16)
		steps++
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("after step %d: %v", steps, err)
		}
		if done {
			break
		}
		if steps > 1000 {
			t.Fatal("transition did not terminate")
		}
	}
	if c.ReslabActive() {
		t.Fatal("transition still active after done")
	}
	if !c.Geometry().Equal(target) {
		t.Fatalf("geometry = %+v, want target", c.Geometry())
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%d", i)
		if !c.Contains(key) {
			t.Fatalf("key %q lost in transition (cache had room for all)", key)
		}
	}
	if after := c.HolesTotal(); after != 0 {
		t.Fatalf("holes after = %d, want 0 (items fit the 100-byte slot exactly)", after)
	}
	if st := c.Stats(); st.Reslabs != 1 || st.ReslabMoved != n {
		t.Fatalf("stats: reslabs=%d moved=%d, want 1/%d", st.Reslabs, st.ReslabMoved, n)
	}
}

func TestBeginReslabRejects(t *testing.T) {
	c := newTestCache(t, 4, &nullPolicy{})
	if err := c.Set("a", 100, 0.01, 0, nil); err != nil {
		t.Fatal(err)
	}
	// Equal geometry: no-op, no transition.
	if err := c.BeginReslab(smallGeom()); err != nil {
		t.Fatal(err)
	}
	if c.ReslabActive() {
		t.Fatal("equal-geometry transition should be a no-op")
	}
	// Different slab size: rejected.
	if err := c.BeginReslab(mustTable(t, 8192, []int{100, 512})); err == nil {
		t.Fatal("slab-size change accepted")
	}
	// Invalid geometry: rejected.
	if err := c.BeginReslab(kv.Geometry{SlabSize: 4096, NumClasses: 2, Slots: []int{512, 100}}); err == nil {
		t.Fatal("invalid geometry accepted")
	}
	// Double transition: rejected while one is active.
	if err := c.BeginReslab(mustTable(t, 4096, []int{100, 512})); err != nil {
		t.Fatal(err)
	}
	if !c.ReslabActive() {
		t.Fatal("transition should be running")
	}
	if err := c.BeginReslab(mustTable(t, 4096, []int{200, 512})); err != ErrReslabActive {
		t.Fatalf("second BeginReslab -> %v, want ErrReslabActive", err)
	}
}

// TestReslabPropertyOracle is the ISSUE's headline test: a seeded random op
// stream (SET/GET/CAS/Delete/expiry) runs against the map+LRU model oracle
// while geometry transitions fire concurrently. The cache is sized so the
// working set always fits, making "no lost or corrupted values" exact; the
// holes/slot/byte accounting is checked continuously via CheckInvariants.
func TestReslabPropertyOracle(t *testing.T) {
	seed := time.Now().UnixNano()
	if s := os.Getenv("PAMA_MODEL_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad PAMA_MODEL_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("reslab oracle seed %d (rerun with PAMA_MODEL_SEED=%d)", seed, seed)
	rng := rand.New(rand.NewSource(seed))
	for round := 0; round < 4; round++ {
		reslabOracleRound(t, rng.Int63())
	}
}

func reslabOracleRound(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	now := int64(1_000_000)

	// 64 slabs of 4 KiB against a 60-key working set of <=500-byte items:
	// even the most wasteful geometry (one slab holding 8 512-byte slots
	// would need 8 slabs for 60 items) never forces an eviction.
	c, err := New(Config{
		Geometry:    smallGeom(),
		CacheBytes:  64 * 4096,
		StoreValues: true,
		WindowLen:   257,
		Now:         func() int64 { return now },
	}, &nullPolicy{bounds: []float64{0.01, 5}, nseg: 2, gseg: 2})
	if err != nil {
		t.Fatal(err)
	}

	// The geometry schedule: every transition keeps SlabSize and a max slot
	// >= 512 so all items keep fitting.
	geometries := []kv.Geometry{
		mustTable(t, 4096, []int{100, 300, 512}),
		mustTable(t, 4096, []int{50, 120, 260, 512}),
		smallGeom(),
		mustTable(t, 4096, []int{512}),
		mustTable(t, 4096, []int{90, 512, 2048}),
	}
	nextGeom := 0
	transitions := 0

	model := map[string]*modelItem{}
	expiry := map[string]int64{}
	keyOf := func() string { return fmt.Sprintf("k%d", rng.Intn(60)) }
	randSize := func() int { return 20 + rng.Intn(480) }
	expired := func(key string) bool {
		e := expiry[key]
		return e != 0 && e <= now
	}
	drop := func(key string) {
		delete(model, key)
		delete(expiry, key)
	}

	const ops = 3000
	for op := 0; op < ops; op++ {
		// Fire a transition roughly every 400 ops — >= 5 per round, far
		// beyond the acceptance bar of 3 — at arbitrary points in the
		// op stream.
		if op%400 == 199 {
			g := geometries[nextGeom%len(geometries)]
			nextGeom++
			err := c.BeginReslab(g)
			if err == ErrReslabActive {
				// Legitimate: the previous transition is still draining.
			} else if err != nil {
				t.Fatalf("seed %d op %d: BeginReslab: %v", seed, op, err)
			} else {
				transitions++
			}
		}
		if rng.Intn(30) == 0 {
			now += int64(1 + rng.Intn(3))
		}
		key := keyOf()
		switch rng.Intn(10) {
		case 0, 1, 2: // set (occasionally with TTL)
			v := fmt.Sprintf("v%d-%d", op, rng.Intn(1000))
			size := randSize()
			var exp int64
			if rng.Intn(8) == 0 {
				exp = now + int64(1+rng.Intn(5))
			}
			if err := c.SetTTL(key, size, 0.01, 0, exp, []byte(v)); err != nil {
				t.Fatalf("seed %d op %d: set: %v", seed, op, err)
			}
			_, _, cas, ok := c.GetWithCAS(key, nil)
			if !ok {
				t.Fatalf("seed %d op %d: stored key unreadable", seed, op)
			}
			model[key] = &modelItem{value: v, cas: cas}
			if exp != 0 {
				expiry[key] = exp
			} else {
				delete(expiry, key)
			}
		case 3: // cas with correct token
			m, present := model[key]
			if !present || expired(key) {
				continue
			}
			v := fmt.Sprintf("c%d", op)
			if err := c.SetMode(key, ModeCAS, m.cas, randSize(), 0.01, 0, 0, []byte(v)); err != nil {
				t.Fatalf("seed %d op %d: cas: %v", seed, op, err)
			}
			_, _, cas, _ := c.GetWithCAS(key, nil)
			m.value, m.cas = v, cas
			delete(expiry, key)
		case 4: // cas with stale token must fail
			m, present := model[key]
			if !present || expired(key) {
				continue
			}
			if err := c.SetMode(key, ModeCAS, m.cas+7, 30, 0.01, 0, 0, []byte("x")); err == nil {
				t.Fatalf("seed %d op %d: stale cas succeeded", seed, op)
			}
		case 5: // delete
			got := c.Delete(key)
			_, present := model[key]
			// An expired-but-unreaped item answers true; one already reaped
			// by the migration pump answers false. Both are legal when the
			// key's TTL has passed.
			if got != present && !expired(key) {
				t.Fatalf("seed %d op %d: delete -> %v, model %v", seed, op, got, present)
			}
			drop(key)
		default: // get
			val, _, cas, hit := c.GetWithCAS(key, nil)
			m, present := model[key]
			switch {
			case present && !expired(key):
				if !hit || string(val) != m.value || cas != m.cas {
					t.Fatalf("seed %d op %d: get %q -> (%q, cas %d, hit=%v), want (%q, cas %d)",
						seed, op, key, val, cas, hit, m.value, m.cas)
				}
			default:
				if hit {
					t.Fatalf("seed %d op %d: get of dead key %q hit", seed, op, key)
				}
				if present {
					drop(key) // lazily reaped
				}
			}
		}
		if op%128 == 127 {
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("seed %d op %d: %v", seed, op, err)
			}
		}
	}
	if transitions < 3 {
		t.Fatalf("seed %d: only %d transitions fired, want >= 3", seed, transitions)
	}
	// Drain any transition still in flight, then do the final sweep.
	for {
		if _, done := c.ReslabStep(256); done {
			break
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("seed %d: final invariants: %v", seed, err)
	}
	live := 0
	for key, m := range model {
		if expired(key) {
			continue
		}
		live++
		val, _, cas, hit := c.GetWithCAS(key, nil)
		if !hit || string(val) != m.value || cas != m.cas {
			t.Fatalf("seed %d: final get %q -> (%q, cas %d, hit=%v), want (%q, cas %d)",
				seed, key, val, cas, hit, m.value, m.cas)
		}
	}
	if got := c.Items(); got < live {
		t.Fatalf("seed %d: engine holds %d items, model has %d live", seed, got, live)
	}
}

// TestReslabUnderPressure runs transitions under constant eviction pressure
// (cache far smaller than the working set). Values may be evicted, but the
// engine must never serve bytes that differ from the last store of a key,
// and accounting must stay exact.
func TestReslabUnderPressure(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	// A minimal working policy: on exhaustion, steal a slab from the class
	// owning the most (Twemcache-style), so every class can always grow.
	pol := &nullPolicy{}
	pol.makeRoom = func(class, _ int) {
		best, bestN := -1, 0
		for cl := 0; cl < pol.c.NumClasses(); cl++ {
			if cl != class && pol.c.Slabs(cl) > bestN {
				best, bestN = cl, pol.c.Slabs(cl)
			}
		}
		if best >= 0 {
			_ = pol.c.MigrateSlab(best, 0, class)
		}
	}
	c, err := New(Config{
		Geometry:    smallGeom(),
		CacheBytes:  4 * 4096, // 4 slabs vs 200 keys: heavy pressure
		StoreValues: true,
		WindowLen:   509,
	}, pol)
	if err != nil {
		t.Fatal(err)
	}
	last := map[string]string{}
	geometries := []kv.Geometry{
		mustTable(t, 4096, []int{80, 256, 512}),
		smallGeom(),
		mustTable(t, 4096, []int{64, 512}),
	}
	transitions := 0
	for op := 0; op < 6000; op++ {
		if op%700 == 350 {
			if err := c.BeginReslab(geometries[transitions%len(geometries)]); err == nil {
				transitions++
			}
		}
		key := fmt.Sprintf("k%d", rng.Intn(200))
		if rng.Intn(3) == 0 {
			v := fmt.Sprintf("v%d", op)
			if err := c.Set(key, 30+rng.Intn(400), 0.01, 0, []byte(v)); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			last[key] = v
		} else {
			val, _, hit := c.Get(key, 0, 0, nil)
			if hit && string(val) != last[key] {
				t.Fatalf("op %d: served %q for %q, last stored %q", op, val, key, last[key])
			}
		}
		if op%256 == 255 {
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if transitions < 3 {
		t.Fatalf("only %d transitions fired", transitions)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestReslabConcurrentRace hammers the engine from several goroutines while
// transitions fire — meaningful under -race (the engine serializes on one
// lock; this asserts no path escapes it).
func TestReslabConcurrentRace(t *testing.T) {
	c, err := New(Config{
		Geometry:    smallGeom(),
		CacheBytes:  16 * 4096,
		StoreValues: true,
		WindowLen:   251,
	}, &nullPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("k%d", rng.Intn(100))
				switch rng.Intn(4) {
				case 0:
					_ = c.Set(key, 20+rng.Intn(400), 0.01, 0, []byte("v"))
				case 1:
					c.Delete(key)
				default:
					_, _, _ = c.Get(key, 0, 0, nil)
				}
			}
		}(w)
	}
	geometries := []kv.Geometry{
		mustTable(t, 4096, []int{100, 300, 512}),
		smallGeom(),
		mustTable(t, 4096, []int{64, 200, 512, 1024}),
	}
	for i := 0; i < 9; i++ {
		_ = c.BeginReslab(geometries[i%len(geometries)])
		for c.ReslabActive() {
			c.ReslabStep(64)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("transition %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestReslabAdaptiveEndToEnd wires the learner through Config.Adaptive and
// checks the engine converges to a tighter geometry on its own, cutting
// holes bytes.
func TestReslabAdaptiveEndToEnd(t *testing.T) {
	c, err := New(Config{
		Geometry:   smallGeom(),
		CacheBytes: 32 * 4096,
		WindowLen:  1 << 40,
		Adaptive: &geom.Config{
			Classes:    4,
			MinSamples: 256,
			Every:      512,
			MinGain:    0.10,
			StepItems:  32,
		},
	}, &nullPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	// All items 90 bytes: power-of-two wastes 38 each in the 128-byte slot.
	for op := 0; op < 4000; op++ {
		key := fmt.Sprintf("k%d", rng.Intn(300))
		if err := c.Set(key, 90, 0.01, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Drain any in-flight transition.
	for {
		if _, done := c.ReslabStep(256); done {
			break
		}
	}
	st := c.Stats()
	if st.Reslabs == 0 {
		t.Fatal("adaptive engine never re-slabbed on a 90-byte-only workload")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	items := int64(c.Items())
	if items == 0 {
		t.Fatal("no residents")
	}
	perItem := c.HolesTotal() / items
	if perItem >= 38 {
		t.Fatalf("holes %d bytes/item not reduced from power-of-two's 38", perItem)
	}
}
