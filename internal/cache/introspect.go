package cache

// This file is the engine's introspection surface: one consistent snapshot
// of everything the paper's figures are drawn from — per-class slab counts
// (Fig. 3), per-subclass stack depths (Fig. 4), penalty-band hit/miss
// attribution, and the src→dst slab-move matrix behind the allocation
// trajectories. The live admin endpoints (/metrics, /statsz) and the shard
// group's merged view are both built on it.

// PolicyDecisions are the reallocation-decision counters a policy exposes
// for introspection: how often it migrated, replaced in place because the
// cheapest candidate was local (paper scenario 2), or declined because the
// incoming value could not pay for the donor's loss (scenario 1).
type PolicyDecisions struct {
	// Migrations counts cross-class slab moves the policy performed.
	Migrations uint64 `json:"migrations"`
	// SameClass counts in-place replacements chosen because the cheapest
	// candidate slab was already in the requesting class.
	SameClass uint64 `json:"same_class"`
	// NotWorthIt counts migrations declined on price (incoming value <=
	// cheapest outgoing value).
	NotWorthIt uint64 `json:"not_worth_it"`
	// Forced counts migrations forced because the requesting class owned
	// no slabs at all.
	Forced uint64 `json:"forced"`
	// EvictsBySub histograms evictions by penalty subclass (nil for
	// single-stack policies).
	EvictsBySub []uint64 `json:"evicts_by_sub,omitempty"`
	// EvictedPenaltyBySub sums the miss penalties of evicted items per
	// subclass — the cost the policy chose to pay.
	EvictedPenaltyBySub []float64 `json:"evicted_penalty_by_sub,omitempty"`
}

// merge folds other into d element-wise (shard fan-in).
func (d *PolicyDecisions) merge(other PolicyDecisions) {
	d.Migrations += other.Migrations
	d.SameClass += other.SameClass
	d.NotWorthIt += other.NotWorthIt
	d.Forced += other.Forced
	for i := range other.EvictsBySub {
		if i < len(d.EvictsBySub) {
			d.EvictsBySub[i] += other.EvictsBySub[i]
		}
	}
	for i := range other.EvictedPenaltyBySub {
		if i < len(d.EvictedPenaltyBySub) {
			d.EvictedPenaltyBySub[i] += other.EvictedPenaltyBySub[i]
		}
	}
}

// MergeDecisions combines per-shard decision snapshots into one (exported
// for the shard group; element-wise sums).
func MergeDecisions(dst *PolicyDecisions, src PolicyDecisions) { dst.merge(src) }

// DecisionReporter is optionally implemented by policies that track their
// reallocation decisions (PAMA does; the baselines report move counts).
// ReportDecisions is called with the engine lock held and must not call
// back into the engine.
type DecisionReporter interface {
	ReportDecisions() PolicyDecisions
}

// Introspection is one consistent, deep-copied snapshot of the engine's
// allocation state and attribution counters, taken under the engine lock.
type Introspection struct {
	// Policy names the attached allocation policy.
	Policy string `json:"policy"`
	// Classes and Subclasses give the matrix dimensions below.
	Classes    int `json:"classes"`
	Subclasses int `json:"subclasses"`
	// SlotSizes is the item-size ceiling of each class, in bytes.
	SlotSizes []int `json:"slot_sizes"`
	// SubclassBounds are the penalty edges dividing subclasses, in seconds
	// (nil for single-subclass policies).
	SubclassBounds []float64 `json:"subclass_bounds,omitempty"`

	// Slabs is the per-class slab allocation (the paper's Fig. 3 series);
	// FreeSlabs and TotalSlabs complete the budget.
	Slabs      []int `json:"slabs"`
	FreeSlabs  int   `json:"free_slabs"`
	TotalSlabs int   `json:"total_slabs"`
	// UsedSlots is per-class slot occupancy.
	UsedSlots []int `json:"used_slots"`

	// SubLens[class][sub] is each subclass LRU stack's resident depth
	// (Fig. 4's per-subclass allocation, in items).
	SubLens [][]int `json:"subclass_lens"`
	// SubHits and SubMisses attribute GET hits and misses to the
	// (class, penalty-band) they landed in. Misses are only attributed
	// when the engine can locate the would-be home (ghost hit or size
	// hint), so the matrix undercounts cold misses by design.
	SubHits   [][]uint64 `json:"subclass_hits"`
	SubMisses [][]uint64 `json:"subclass_misses"`

	// SlabMoves[src][dst] counts cross-class slab migrations by donor and
	// receiver class, whatever policy performed them.
	SlabMoves [][]uint64 `json:"slab_moves"`

	// BytesHoles is per-class internal fragmentation — bytes of slot
	// capacity occupied by residents but unused (the memory-holes gauge).
	BytesHoles []int64 `json:"bytes_holes"`

	// ReslabActive reports a live geometry transition in progress;
	// ReslabOldItems counts residents still awaiting migration out of the
	// outgoing era (0 when inactive).
	ReslabActive   bool `json:"reslab_active,omitempty"`
	ReslabOldItems int  `json:"reslab_old_items,omitempty"`

	// Items is the resident item count; Stats the engine counters.
	Items int   `json:"items"`
	Stats Stats `json:"stats"`

	// Decisions is the policy's own decision counters, when it reports
	// them (nil otherwise).
	Decisions *PolicyDecisions `json:"decisions,omitempty"`
}

// Introspect snapshots the engine. Everything is copied: the caller may
// hold the result indefinitely and no engine state escapes.
func (c *Cache) Introspect() Introspection {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Apply deferred accesses so the attribution matrices and window
	// counters reflect every access that returned before this call.
	c.drainLocked()
	nc := c.geom.NumClasses
	ns := len(c.classes[0].subs)
	in := Introspection{
		Policy:         c.policy.Name(),
		Classes:        nc,
		Subclasses:     ns,
		SlotSizes:      make([]int, nc),
		SubclassBounds: append([]float64(nil), c.bounds...),
		Slabs:          c.slabs.Snapshot(),
		FreeSlabs:      c.slabs.FreeSlabs(),
		TotalSlabs:     c.slabs.TotalSlabs(),
		UsedSlots:      make([]int, nc),
		SubLens:        make([][]int, nc),
		SubHits:        make([][]uint64, nc),
		SubMisses:      make([][]uint64, nc),
		SlabMoves:      make([][]uint64, nc),
		BytesHoles:     append([]int64(nil), c.holes...),
		Items:          c.index.Len(),
		Stats:          c.stats,
	}
	in.Stats.SlabMigrations = c.slabs.Migrations
	if c.old != nil {
		in.ReslabActive = true
		in.ReslabOldItems = c.old.items
		in.Stats.SlabMigrations += c.old.mgr.Migrations
	}
	for ci := 0; ci < nc; ci++ {
		in.SlotSizes[ci] = c.geom.SlotSize(ci)
		in.UsedSlots[ci] = c.slabs.Used(ci)
		in.SubLens[ci] = make([]int, ns)
		for si := 0; si < ns; si++ {
			in.SubLens[ci][si] = c.classes[ci].subs[si].list.Len()
		}
		in.SubHits[ci] = append([]uint64(nil), c.subHits[ci]...)
		in.SubMisses[ci] = append([]uint64(nil), c.subMiss[ci]...)
		in.SlabMoves[ci] = append([]uint64(nil), c.moves[ci]...)
	}
	if dr, ok := c.policy.(DecisionReporter); ok {
		d := dr.ReportDecisions()
		in.Decisions = &d
	}
	return in
}

// Merge folds another engine's snapshot into this one (the shard group's
// fan-in). Both snapshots must come from engines with identical geometry
// and policy; mismatched shapes are merged where they overlap.
func (in *Introspection) Merge(other Introspection) {
	in.FreeSlabs += other.FreeSlabs
	in.TotalSlabs += other.TotalSlabs
	in.Items += other.Items
	addInts := func(dst, src []int) {
		for i := range src {
			if i < len(dst) {
				dst[i] += src[i]
			}
		}
	}
	addU64 := func(dst, src []uint64) {
		for i := range src {
			if i < len(dst) {
				dst[i] += src[i]
			}
		}
	}
	addInts(in.Slabs, other.Slabs)
	addInts(in.UsedSlots, other.UsedSlots)
	for i := range other.BytesHoles {
		if i < len(in.BytesHoles) {
			in.BytesHoles[i] += other.BytesHoles[i]
		}
	}
	in.ReslabActive = in.ReslabActive || other.ReslabActive
	in.ReslabOldItems += other.ReslabOldItems
	for ci := range other.SubLens {
		if ci >= len(in.SubLens) {
			break
		}
		addInts(in.SubLens[ci], other.SubLens[ci])
		addU64(in.SubHits[ci], other.SubHits[ci])
		addU64(in.SubMisses[ci], other.SubMisses[ci])
		addU64(in.SlabMoves[ci], other.SlabMoves[ci])
	}
	in.Stats = addStats(in.Stats, other.Stats)
	if in.Decisions != nil && other.Decisions != nil {
		in.Decisions.merge(*other.Decisions)
	}
}

// addStats sums two engine counter sets field by field.
func addStats(a, b Stats) Stats {
	return Stats{
		Gets:            a.Gets + b.Gets,
		Hits:            a.Hits + b.Hits,
		Misses:          a.Misses + b.Misses,
		Sets:            a.Sets + b.Sets,
		Deletes:         a.Deletes + b.Deletes,
		Evictions:       a.Evictions + b.Evictions,
		GhostHits:       a.GhostHits + b.GhostHits,
		Expired:         a.Expired + b.Expired,
		StaleGets:       a.StaleGets + b.StaleGets,
		TooLarge:        a.TooLarge + b.TooLarge,
		NoSpace:         a.NoSpace + b.NoSpace,
		FallbackEvicts:  a.FallbackEvicts + b.FallbackEvicts,
		WindowRollovers: a.WindowRollovers + b.WindowRollovers,
		SlabMigrations:  a.SlabMigrations + b.SlabMigrations,
		SlabDonations:   a.SlabDonations + b.SlabDonations,
		SlabReceipts:    a.SlabReceipts + b.SlabReceipts,
		Reslabs:         a.Reslabs + b.Reslabs,
		ReslabMoved:     a.ReslabMoved + b.ReslabMoved,
	}
}

// AddStats sums engine counter sets (exported for the shard group).
func AddStats(a, b Stats) Stats { return addStats(a, b) }
