package cache

import (
	"encoding/json"
	"fmt"
	"testing"
)

// reportingPolicy is a nullPolicy that also reports decision counters, so
// the snapshot's Decisions plumbing can be exercised without importing a
// real policy (which would cycle).
type reportingPolicy struct {
	nullPolicy
	dec PolicyDecisions
}

func (r *reportingPolicy) ReportDecisions() PolicyDecisions { return r.dec }

func TestIntrospectAttributesHitsAndMisses(t *testing.T) {
	// Three penalty subclasses: (0, 0.01], (0.01, 0.1], and everything above
	// (the last bound is a catch-all in penalty.SubclassFor).
	pol := &nullPolicy{bounds: []float64{0.01, 0.1, 1e9}}
	c := newTestCache(t, 8, pol)

	// Two items in class 0 (size 10 < 64), different penalty bands, and one
	// in class 2 (size 200).
	mustSet := func(key string, size int, pen float64) {
		t.Helper()
		if err := c.Set(key, size, pen, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	mustSet("cheap", 10, 0.001) // sub 0
	mustSet("dear", 10, 1.0)    // sub 2
	mustSet("big", 200, 0.05)   // class 2, sub 1

	for i := 0; i < 3; i++ {
		c.Get("cheap", 10, 0.001, nil)
	}
	c.Get("dear", 10, 1.0, nil)
	c.Get("big", 200, 0.05, nil)
	// Attributed misses: size+penalty hints locate the would-be home.
	c.Get("absent-cheap", 10, 0.001, nil)
	c.Get("absent-dear", 10, 1.0, nil)
	// Unattributed miss: no size hint, no ghost.
	c.Get("absent-cold", 0, 0, nil)

	in := c.Introspect()
	if in.Classes != 4 || in.Subclasses != 3 {
		t.Fatalf("dims = (%d,%d), want (4,3)", in.Classes, in.Subclasses)
	}
	wantHits := [][]uint64{{3, 0, 1}, {0, 0, 0}, {0, 1, 0}, {0, 0, 0}}
	for ci := range wantHits {
		for si := range wantHits[ci] {
			if got := in.SubHits[ci][si]; got != wantHits[ci][si] {
				t.Errorf("SubHits[%d][%d] = %d, want %d", ci, si, got, wantHits[ci][si])
			}
		}
	}
	if in.SubMisses[0][0] != 1 || in.SubMisses[0][2] != 1 {
		t.Errorf("SubMisses[0] = %v, want [1 0 1]", in.SubMisses[0])
	}
	// Attribution must reconcile with the engine counters: every hit lands
	// in exactly one cell, misses only when locatable.
	var subHitSum, subMissSum uint64
	for ci := range in.SubHits {
		for si := range in.SubHits[ci] {
			subHitSum += in.SubHits[ci][si]
			subMissSum += in.SubMisses[ci][si]
		}
	}
	if subHitSum != in.Stats.Hits {
		t.Errorf("sum(SubHits) = %d, want Stats.Hits = %d", subHitSum, in.Stats.Hits)
	}
	if subMissSum > in.Stats.Misses {
		t.Errorf("sum(SubMisses) = %d exceeds Stats.Misses = %d", subMissSum, in.Stats.Misses)
	}
	// SubLens must agree with resident items.
	var lenSum int
	for ci := range in.SubLens {
		for _, n := range in.SubLens[ci] {
			lenSum += n
		}
	}
	if lenSum != in.Items || in.Items != 3 {
		t.Errorf("sum(SubLens) = %d, Items = %d, want both 3", lenSum, in.Items)
	}
	if in.Decisions != nil {
		t.Errorf("Decisions = %+v for non-reporting policy, want nil", in.Decisions)
	}
	// Snapshot must not emit NaN/Inf through JSON (the /statsz contract).
	if _, err := json.Marshal(in); err != nil {
		t.Fatalf("json.Marshal(Introspection): %v", err)
	}
}

func TestIntrospectSlabMoveMatrix(t *testing.T) {
	c := newTestCache(t, 8, &nullPolicy{})
	if err := c.Set("a", 10, 0, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("b", 200, 0, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.MigrateSlab(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.MigrateSlab(2, 0, 1); err != nil {
		t.Fatal(err)
	}
	in := c.Introspect()
	if in.SlabMoves[0][1] != 1 || in.SlabMoves[2][1] != 1 {
		t.Errorf("SlabMoves = %v, want [0][1]=1 and [2][1]=1", in.SlabMoves)
	}
	var moveSum uint64
	for _, row := range in.SlabMoves {
		for _, v := range row {
			moveSum += v
		}
	}
	if moveSum != in.Stats.SlabMigrations {
		t.Errorf("sum(SlabMoves) = %d, want Stats.SlabMigrations = %d", moveSum, in.Stats.SlabMigrations)
	}
}

func TestIntrospectReportsPolicyDecisions(t *testing.T) {
	pol := &reportingPolicy{dec: PolicyDecisions{
		Migrations:          7,
		SameClass:           3,
		EvictsBySub:         []uint64{1, 2},
		EvictedPenaltyBySub: []float64{0.5, 1.5},
	}}
	c := newTestCache(t, 4, pol)
	in := c.Introspect()
	if in.Decisions == nil {
		t.Fatal("Decisions = nil for reporting policy")
	}
	if in.Decisions.Migrations != 7 || in.Decisions.SameClass != 3 {
		t.Errorf("Decisions = %+v", *in.Decisions)
	}
}

func TestIntrospectionMerge(t *testing.T) {
	build := func(keys ...string) *Cache {
		c := newTestCache(t, 8, &reportingPolicy{dec: PolicyDecisions{Migrations: 2, EvictsBySub: []uint64{4}}})
		for _, k := range keys {
			if err := c.Set(k, 10, 0, 0, nil); err != nil {
				t.Fatal(err)
			}
			c.Get(k, 10, 0, nil)
		}
		c.Get("absent", 10, 0, nil)
		return c
	}
	a := build("a1", "a2")
	b := build("b1", "b2", "b3")
	in := a.Introspect()
	in.Merge(b.Introspect())
	if in.Items != 5 {
		t.Errorf("merged Items = %d, want 5", in.Items)
	}
	if in.Stats.Gets != 7 || in.Stats.Hits != 5 || in.Stats.Misses != 2 {
		t.Errorf("merged Stats = %+v, want Gets=7 Hits=5 Misses=2", in.Stats)
	}
	if in.SubHits[0][0] != 5 {
		t.Errorf("merged SubHits[0][0] = %d, want 5", in.SubHits[0][0])
	}
	if in.SubMisses[0][0] != 2 {
		t.Errorf("merged SubMisses[0][0] = %d, want 2", in.SubMisses[0][0])
	}
	if in.Slabs[0] != a.Slabs(0)+b.Slabs(0) {
		t.Errorf("merged Slabs[0] = %d, want %d", in.Slabs[0], a.Slabs(0)+b.Slabs(0))
	}
	if in.Decisions == nil || in.Decisions.Migrations != 4 || in.Decisions.EvictsBySub[0] != 8 {
		t.Errorf("merged Decisions = %+v, want Migrations=4 EvictsBySub=[8]", in.Decisions)
	}
	// Merged totals must still reconcile.
	if got := fmt.Sprint(in.TotalSlabs); got != fmt.Sprint(a.TotalSlabsBudget()+b.TotalSlabsBudget()) {
		t.Errorf("merged TotalSlabs = %s", got)
	}
}
