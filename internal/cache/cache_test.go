package cache

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"pamakv/internal/kv"
)

// nullPolicy is a configurable do-nothing policy for engine tests.
type nullPolicy struct {
	bounds []float64
	nseg   int
	gseg   int
	c      *Cache

	hits      []int // segments seen by OnHit
	ghostSegs []int // segments seen by OnMiss ghost hits
	evicts    int
	windows   int
	makeRoom  func(class, sub int)
}

func (n *nullPolicy) Name() string              { return "null" }
func (n *nullPolicy) SubclassBounds() []float64 { return n.bounds }
func (n *nullPolicy) Segments() int             { return n.nseg }
func (n *nullPolicy) GhostSegments() int        { return n.gseg }
func (n *nullPolicy) Attach(c *Cache)           { n.c = c }
func (n *nullPolicy) MakeRoom(class, sub int) {
	if n.makeRoom != nil {
		n.makeRoom(class, sub)
	}
}
func (n *nullPolicy) OnHit(_ *kv.Item, seg int) { n.hits = append(n.hits, seg) }
func (n *nullPolicy) OnMiss(_, _ int, ghost *kv.Item, gseg int) {
	if ghost != nil {
		n.ghostSegs = append(n.ghostSegs, gseg)
	}
}
func (n *nullPolicy) OnInsert(*kv.Item) {}
func (n *nullPolicy) OnEvict(*kv.Item)  { n.evicts++ }
func (n *nullPolicy) OnWindow()         { n.windows++ }

// smallGeom: 4 KiB slabs, classes 64/128/256/512 B.
func smallGeom() kv.Geometry { return kv.Geometry{SlabSize: 4096, Base: 64, NumClasses: 4} }

func newTestCache(t *testing.T, slabs int, pol Policy) *Cache {
	t.Helper()
	c, err := New(Config{
		Geometry:   smallGeom(),
		CacheBytes: int64(slabs) * 4096,
		WindowLen:  1 << 50, // effectively no rollovers unless the test wants them
	}, pol)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewDefaults(t *testing.T) {
	c, err := New(Config{CacheBytes: 1 << 21}, &nullPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Geometry().Equal(kv.DefaultGeometry()) {
		t.Fatal("zero geometry should default")
	}
	if c.NumSubclasses() != 1 {
		t.Fatal("nil bounds should give one subclass")
	}
}

func TestNewRejectsTinyCache(t *testing.T) {
	if _, err := New(Config{Geometry: smallGeom(), CacheBytes: 100}, &nullPolicy{}); err == nil {
		t.Fatal("cache smaller than one slab accepted")
	}
}

func TestSetGetRoundTrip(t *testing.T) {
	pol := &nullPolicy{}
	c := newTestCache(t, 4, pol)
	if err := c.Set("k1", 50, 0.01, 7, nil); err != nil {
		t.Fatal(err)
	}
	_, flags, hit := c.Get("k1", 0, 0, nil)
	if !hit || flags != 7 {
		t.Fatalf("hit=%v flags=%d", hit, flags)
	}
	if _, _, hit := c.Get("absent", 0, 0, nil); hit {
		t.Fatal("phantom hit")
	}
	st := c.Stats()
	if st.Gets != 2 || st.Hits != 1 || st.Misses != 1 || st.Sets != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestValuesStoredAndCopied(t *testing.T) {
	c, err := New(Config{Geometry: smallGeom(), CacheBytes: 4 * 4096, StoreValues: true, WindowLen: 1 << 50}, &nullPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	val := []byte("hello world")
	if err := c.Set("k", len(val), 0.01, 0, val); err != nil {
		t.Fatal(err)
	}
	val[0] = 'X' // caller's buffer must not alias the stored value
	got, _, hit := c.Get("k", 0, 0, nil)
	if !hit || string(got) != "hello world" {
		t.Fatalf("got %q hit=%v", got, hit)
	}
	got[1] = 'Y' // returned copy must not alias either
	got2, _, _ := c.Get("k", 0, 0, nil)
	if string(got2) != "hello world" {
		t.Fatal("returned slice aliases stored value")
	}
}

func TestSetTooLarge(t *testing.T) {
	c := newTestCache(t, 2, &nullPolicy{})
	err := c.Set("big", 4096, 0.1, 0, nil) // > largest class slot (512)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	if c.Stats().TooLarge != 1 {
		t.Fatal("TooLarge not counted")
	}
}

func TestClassPlacement(t *testing.T) {
	c := newTestCache(t, 4, &nullPolicy{})
	c.Set("a", 64, 0.1, 0, nil)  // class 0
	c.Set("b", 65, 0.1, 0, nil)  // class 1
	c.Set("d", 512, 0.1, 0, nil) // class 3
	if c.UsedSlots(0) != 1 || c.UsedSlots(1) != 1 || c.UsedSlots(3) != 1 {
		t.Fatalf("placement: %v %v %v", c.UsedSlots(0), c.UsedSlots(1), c.UsedSlots(3))
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSubclassPlacement(t *testing.T) {
	pol := &nullPolicy{bounds: []float64{0.01, 0.1, 5.0}}
	c := newTestCache(t, 4, pol)
	c.Set("cheap", 64, 0.005, 0, nil)
	c.Set("mid", 64, 0.05, 0, nil)
	c.Set("dear", 64, 2.0, 0, nil)
	if c.SubLen(0, 0) != 1 || c.SubLen(0, 1) != 1 || c.SubLen(0, 2) != 1 {
		t.Fatalf("sub lens: %d %d %d", c.SubLen(0, 0), c.SubLen(0, 1), c.SubLen(0, 2))
	}
}

func TestReplaceChangesClass(t *testing.T) {
	c := newTestCache(t, 4, &nullPolicy{})
	c.Set("k", 64, 0.1, 0, nil)
	c.Set("k", 200, 0.1, 0, nil) // moves class 0 -> 2
	if c.UsedSlots(0) != 0 || c.UsedSlots(2) != 1 {
		t.Fatalf("replace did not move classes: used0=%d used2=%d", c.UsedSlots(0), c.UsedSlots(2))
	}
	if c.Items() != 1 {
		t.Fatalf("Items = %d, want 1", c.Items())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDelete(t *testing.T) {
	c := newTestCache(t, 4, &nullPolicy{})
	c.Set("k", 64, 0.1, 0, nil)
	if !c.Delete("k") {
		t.Fatal("Delete should report removal")
	}
	if c.Delete("k") {
		t.Fatal("second Delete should report false")
	}
	if c.Contains("k") || c.UsedSlots(0) != 0 {
		t.Fatal("item still accounted after delete")
	}
}

func TestGrowthPhaseGrantsFreeSlabs(t *testing.T) {
	c := newTestCache(t, 3, &nullPolicy{})
	// 64 items of class 0 fit in one slab (4096/64 = 64 slots).
	for i := 0; i < 65; i++ {
		if err := c.Set(fmt.Sprintf("k%d", i), 50, 0.1, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	if c.Slabs(0) != 2 {
		t.Fatalf("class 0 slabs = %d, want 2 after overflow", c.Slabs(0))
	}
	if c.FreeSlabs() != 1 {
		t.Fatalf("free slabs = %d, want 1", c.FreeSlabs())
	}
}

func TestEngineFallbackEvictsWhenPolicyIdle(t *testing.T) {
	pol := &nullPolicy{} // MakeRoom does nothing
	c := newTestCache(t, 1, pol)
	// Fill the single slab (64 slots), then one more.
	for i := 0; i < 65; i++ {
		if err := c.Set(fmt.Sprintf("k%d", i), 50, 0.1, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.FallbackEvicts != 1 || st.Evictions != 1 {
		t.Fatalf("fallback=%d evictions=%d, want 1/1", st.FallbackEvicts, st.Evictions)
	}
	// k0 (the LRU) must be gone.
	if c.Contains("k0") {
		t.Fatal("LRU item survived eviction")
	}
	if !c.Contains("k64") {
		t.Fatal("new item missing")
	}
}

func TestNoSpaceWhenClassEmptyAndMemoryExhausted(t *testing.T) {
	pol := &nullPolicy{}
	c := newTestCache(t, 1, pol)
	for i := 0; i < 64; i++ {
		c.Set(fmt.Sprintf("k%d", i), 50, 0.1, 0, nil)
	}
	// Class 3 owns nothing and the policy won't migrate: SET must fail.
	err := c.Set("big", 512, 0.1, 0, nil)
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	if c.Stats().NoSpace != 1 {
		t.Fatal("NoSpace not counted")
	}
}

func TestPolicyMakeRoomCanMigrate(t *testing.T) {
	pol := &nullPolicy{}
	pol.makeRoom = func(class, sub int) {
		pol.c.MigrateSlab(0, 0, class)
	}
	c := newTestCache(t, 1, pol)
	for i := 0; i < 64; i++ {
		c.Set(fmt.Sprintf("k%d", i), 50, 0.1, 0, nil)
	}
	if err := c.Set("big", 512, 0.1, 0, nil); err != nil {
		t.Fatal(err)
	}
	if c.Slabs(0) != 0 || c.Slabs(3) != 1 {
		t.Fatalf("migration failed: slabs0=%d slabs3=%d", c.Slabs(0), c.Slabs(3))
	}
	if c.Stats().Evictions != 64 {
		t.Fatalf("evictions = %d, want 64 (whole donor slab)", c.Stats().Evictions)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentAttributionOnHit(t *testing.T) {
	pol := &nullPolicy{nseg: 1}
	c := newTestCache(t, 2, pol)
	// 64 slots per slab in class 0; fill 70 items across 2 slabs. With a
	// single tracked segment, only the bottom 64 attribute.
	for i := 0; i < 70; i++ {
		c.Set(fmt.Sprintf("k%d", i), 50, 0.1, 0, nil)
	}
	pol.hits = nil
	c.Get("k0", 0, 0, nil) // bottom item -> candidate segment 0
	c.Get("k69", 0, 0, nil)
	if len(pol.hits) != 2 || pol.hits[0] != 0 {
		t.Fatalf("hits = %v, want first segment 0", pol.hits)
	}
	if pol.hits[1] != -1 {
		t.Fatalf("top-of-stack hit reported segment %d, want -1", pol.hits[1])
	}
}

func TestGhostRegionAttribution(t *testing.T) {
	pol := &nullPolicy{gseg: 2}
	c := newTestCache(t, 1, pol)
	for i := 0; i < 64; i++ {
		c.Set(fmt.Sprintf("k%d", i), 50, 0.1, 0, nil)
	}
	// Evict k0..k2 by inserting three more.
	for i := 64; i < 67; i++ {
		c.Set(fmt.Sprintf("k%d", i), 50, 0.1, 0, nil)
	}
	_, _, hit := c.Get("k0", 0, 0, nil)
	if hit {
		t.Fatal("evicted key should miss")
	}
	if len(pol.ghostSegs) != 1 || pol.ghostSegs[0] != 0 {
		t.Fatalf("ghostSegs = %v, want [0] (receiving segment)", pol.ghostSegs)
	}
	if c.Stats().GhostHits != 1 {
		t.Fatal("GhostHits not counted")
	}
	// Refill removes the ghost: a second miss on the key after re-eviction
	// of others must not be a ghost hit for k0.
	c.Set("k0", 50, 0.1, 0, nil)
	pol.ghostSegs = nil
	c.Delete("k0")
	c.Get("k0", 0, 0, nil)
	if len(pol.ghostSegs) != 0 {
		t.Fatalf("deleted key still ghost-attributed: %v", pol.ghostSegs)
	}
}

func TestGhostCapacityBounded(t *testing.T) {
	pol := &nullPolicy{gseg: 1}
	c := newTestCache(t, 1, pol)
	// Fill one slab then churn 500 more items: ghosts must stay <= 64.
	for i := 0; i < 564; i++ {
		c.Set(fmt.Sprintf("k%d", i), 50, 0.1, 0, nil)
	}
	// Very old eviction: ghost should have aged out.
	c.Get("k0", 0, 0, nil)
	if c.Stats().GhostHits != 0 {
		t.Fatal("ancient ghost survived capacity bound")
	}
	// Recent eviction: ghost hit expected.
	c.Get("k499", 0, 0, nil)
	if c.Stats().GhostHits != 1 {
		t.Fatal("recent ghost missing")
	}
}

func TestWindowRollover(t *testing.T) {
	pol := &nullPolicy{}
	c, err := New(Config{Geometry: smallGeom(), CacheBytes: 4 * 4096, WindowLen: 10}, pol)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		c.Get("x", 0, 0, nil)
	}
	if pol.windows != 2 {
		t.Fatalf("windows = %d, want 2", pol.windows)
	}
	if c.Stats().WindowRollovers != 2 {
		t.Fatal("rollover stat mismatch")
	}
}

func TestWindowCountersAttribution(t *testing.T) {
	pol := &nullPolicy{}
	c := newTestCache(t, 4, pol)
	c.Set("k", 64, 0.1, 0, nil)
	c.Get("k", 0, 0, nil)         // hit -> class 0 req
	c.Get("nope", 200, 0.05, nil) // classed miss -> class 2 req+miss
	c.Get("nohint", 0, 0, nil)    // unclassed miss -> nothing
	if c.WindowReqs(0) != 1 || c.WindowReqs(2) != 1 || c.WindowMisses(2) != 1 {
		t.Fatalf("window counters: reqs0=%d reqs2=%d miss2=%d",
			c.WindowReqs(0), c.WindowReqs(2), c.WindowMisses(2))
	}
}

func TestSnapshotSubSlabs(t *testing.T) {
	pol := &nullPolicy{bounds: []float64{0.01, 5.0}}
	c := newTestCache(t, 2, pol)
	for i := 0; i < 32; i++ {
		c.Set(fmt.Sprintf("a%d", i), 50, 0.001, 0, nil) // sub 0
	}
	for i := 0; i < 16; i++ {
		c.Set(fmt.Sprintf("b%d", i), 50, 1.0, 0, nil) // sub 1
	}
	shares := c.SnapshotSubSlabs(0)
	if len(shares) != 2 || shares[0] != 0.5 || shares[1] != 0.25 {
		t.Fatalf("shares = %v, want [0.5 0.25]", shares)
	}
}

func TestLRUOrderWithinSub(t *testing.T) {
	c := newTestCache(t, 1, &nullPolicy{})
	for i := 0; i < 64; i++ {
		c.Set(fmt.Sprintf("k%d", i), 50, 0.1, 0, nil)
	}
	c.Get("k0", 0, 0, nil) // refresh the LRU item
	c.Set("new", 50, 0.1, 0, nil)
	if !c.Contains("k0") {
		t.Fatal("recently touched item evicted")
	}
	if c.Contains("k1") {
		t.Fatal("true LRU item survived")
	}
}

// TestInvariantsUnderRandomTraffic fuzzes the engine with all features on
// (subclasses, segments, ghosts) against a resident-set model, checking
// accounting invariants throughout.
func TestInvariantsUnderRandomTraffic(t *testing.T) {
	for _, tk := range []TrackerKind{TrackerExact, TrackerBloom} {
		tk := tk
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			pol := &nullPolicy{bounds: []float64{0.01, 0.1, 5}, nseg: 3, gseg: 3}
			pol.makeRoom = func(class, sub int) {
				// Randomly migrate or evict.
				if rng.Intn(2) == 0 {
					for d := 0; d < 4; d++ {
						if d != class && pol.c.Slabs(d) > 0 {
							pol.c.MigrateSlab(d, rng.Intn(3), class)
							return
						}
					}
				}
				pol.c.EvictOneInClass(class)
			}
			c, err := New(Config{
				Geometry:   smallGeom(),
				CacheBytes: 4 * 4096,
				WindowLen:  97,
				Tracker:    tk,
			}, pol)
			if err != nil {
				return false
			}
			model := map[string]bool{}
			for op := 0; op < 3000; op++ {
				key := fmt.Sprintf("k%d", rng.Intn(300))
				switch rng.Intn(10) {
				case 0:
					c.Delete(key)
					delete(model, key)
				case 1, 2, 3:
					size := 1 + rng.Intn(512)
					pen := []float64{0.001, 0.05, 2.0}[rng.Intn(3)]
					if c.Set(key, size, pen, 0, nil) == nil {
						model[key] = true
					}
				default:
					_, _, hit := c.Get(key, 64, 0.05, nil)
					if hit && !model[key] {
						return false // hit on a key never set
					}
				}
				if op%200 == 0 {
					if err := c.CheckInvariants(); err != nil {
						t.Logf("invariant violation (tracker %v): %v", tk, err)
						return false
					}
				}
			}
			return c.CheckInvariants() == nil
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
			t.Fatalf("tracker %v: %v", tk, err)
		}
	}
}

func TestTTLExpiry(t *testing.T) {
	now := int64(1000)
	pol := &nullPolicy{}
	c, err := New(Config{
		Geometry:   smallGeom(),
		CacheBytes: 4 * 4096,
		WindowLen:  1 << 50,
		Now:        func() int64 { return now },
	}, pol)
	if err != nil {
		t.Fatal(err)
	}
	c.SetTTL("soon", 50, 0.1, 0, 1010, nil)
	c.SetTTL("later", 50, 0.1, 0, 2000, nil)
	c.Set("never", 50, 0.1, 0, nil)
	if _, _, hit := c.Get("soon", 0, 0, nil); !hit {
		t.Fatal("unexpired item missed")
	}
	now = 1010 // deadline is inclusive: expireAt <= now means dead
	if _, _, hit := c.Get("soon", 0, 0, nil); hit {
		t.Fatal("expired item served")
	}
	if c.Stats().Expired != 1 {
		t.Fatalf("Expired = %d, want 1", c.Stats().Expired)
	}
	if _, _, hit := c.Get("later", 0, 0, nil); !hit {
		t.Fatal("later item should survive")
	}
	if _, _, hit := c.Get("never", 0, 0, nil); !hit {
		t.Fatal("no-TTL item should survive")
	}
	// The reaped item freed its slot.
	if c.UsedSlots(0) != 2 {
		t.Fatalf("used slots = %d, want 2", c.UsedSlots(0))
	}
	// Re-set over an expired-but-unreaped item works.
	c.SetTTL("soon", 50, 0.1, 0, 3000, nil)
	if _, _, hit := c.Get("soon", 0, 0, nil); !hit {
		t.Fatal("re-set item missed")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTTLWallClockDefault(t *testing.T) {
	// Without Config.Now the engine uses real time: a deadline in the
	// past expires immediately, one far in the future does not.
	c := newTestCache(t, 2, &nullPolicy{})
	c.SetTTL("old", 50, 0.1, 0, 1, nil)
	c.SetTTL("new", 50, 0.1, 0, 1<<40, nil)
	if _, _, hit := c.Get("old", 0, 0, nil); hit {
		t.Fatal("epoch-1 deadline should be expired")
	}
	if _, _, hit := c.Get("new", 0, 0, nil); !hit {
		t.Fatal("far-future deadline should live")
	}
}

func TestFlush(t *testing.T) {
	pol := &nullPolicy{bounds: []float64{0.01, 5}, nseg: 2, gseg: 2}
	c := newTestCache(t, 2, pol)
	// 150 items into 128 slots: the last 22 evict, populating ghosts.
	for i := 0; i < 150; i++ {
		c.Set(fmt.Sprintf("k%d", i), 50, 0.001, 0, nil)
	}
	slabsBefore := c.Slabs(0)
	c.Flush()
	if c.Items() != 0 {
		t.Fatalf("items after flush = %d", c.Items())
	}
	if c.UsedSlots(0) != 0 {
		t.Fatal("slots still accounted after flush")
	}
	if c.Slabs(0) != slabsBefore {
		t.Fatal("flush must not return slabs to the pool (Memcached semantics)")
	}
	// Ghosts are gone: no ghost attribution on miss.
	pol.ghostSegs = nil
	c.Get("k0", 0, 0, nil)
	if len(pol.ghostSegs) != 0 {
		t.Fatal("ghost memory survived flush")
	}
	// Cache is fully usable afterwards.
	if err := c.Set("fresh", 50, 0.001, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccessSafe(t *testing.T) {
	c := newTestCache(t, 4, &nullPolicy{})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		g := g
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("g%d-%d", g, i%50)
				switch i % 3 {
				case 0:
					c.Set(key, 64, 0.01, 0, nil)
				case 1:
					c.Get(key, 0, 0, nil)
				case 2:
					c.Delete(key)
				}
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
