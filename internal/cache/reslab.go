package cache

// Live re-slabbing: applying a new slab-class geometry to a running cache
// without losing or corrupting a single item.
//
// The engine runs two "eras" during a transition. The cache's primary
// fields (geom, slabs, classes, holes) become the *target* era the moment
// BeginReslab succeeds; the outgoing geometry's structures move wholesale
// into an oldEra value. The shared hash index spans both eras — a lookup
// never misses because of a transition — and an item's Gen tag says which
// era's class indices its Class/Sub fields refer to. Every operation pumps
// a bounded slice of migration work (tick → reslabStepLocked), draining the
// outgoing era MRU-first, so the transition finishes in O(items/StepItems)
// operations with no stop-the-world phase. Slab budget moves between the
// two slab managers one fully-freed slab at a time; the sum is invariant
// (CheckInvariants enforces it).
//
// During a transition the policy is quiesced: its per-class state describes
// the outgoing geometry, so the engine suppresses every hook and handles
// memory pressure itself by draining the outgoing era. finishReslabLocked
// re-Attaches the policy, which rebuilds its state for the new class count
// (all policies' Attach methods are re-entrant by contract).
//
// See DESIGN.md §12 for the full safety argument.

import (
	"errors"
	"fmt"

	"pamakv/internal/kv"
	"pamakv/internal/segment"
	"pamakv/internal/slab"
)

// ErrReslabActive reports a BeginReslab while a transition is running.
var ErrReslabActive = errors.New("cache: re-slab transition already active")

// oldEra is the outgoing side of a live re-slab transition. Its trackers
// and ghost regions are torn down at Begin (ghost class indices would be
// meaningless under the new geometry); only plain LRU lists and slab
// accounting remain while it drains.
type oldEra struct {
	geom    kv.Geometry
	mgr     *slab.Manager
	classes []class
	holes   []int64
	items   int // residents remaining in this era
	drain   int // lowest class that may still hold items
}

// eraRef locates the structures owning one resident item.
type eraRef struct {
	classes []class
	mgr     *slab.Manager
	holes   []int64
	geom    kv.Geometry
	old     bool
}

// eraFor returns the era owning it. Outside a transition everything is the
// primary era; inside one, the Gen tag decides.
func (c *Cache) eraFor(it *kv.Item) eraRef {
	if c.old != nil && it.Gen != c.gen {
		return eraRef{classes: c.old.classes, mgr: c.old.mgr, holes: c.old.holes, geom: c.old.geom, old: true}
	}
	return eraRef{classes: c.classes, mgr: c.slabs, holes: c.holes, geom: c.geom}
}

// touchResident moves a hit item to its stack's MRU end and returns the
// tracked segment (-1 when untracked) plus the class index to attribute the
// hit under — old-era items are attributed to the target-era class their
// size maps to, so window statistics stay dimensioned for one geometry.
func (c *Cache) touchResident(it *kv.Item) (seg, acl int) {
	e := c.eraFor(it)
	s := &e.classes[it.Class].subs[it.Sub]
	seg = -1
	if s.tr != nil {
		seg = s.tr.Touch(it)
	} else {
		s.list.MoveToFront(it)
	}
	acl = it.Class
	if e.old {
		if acl = c.geom.ClassFor(it.Size); acl < 0 {
			acl = c.geom.NumClasses - 1
		}
	}
	return seg, acl
}

// ---- Policy quiesce wrappers ----
// During a transition the policy's per-class state belongs to the outgoing
// geometry; every hook is suppressed until finishReslabLocked re-Attaches.

func (c *Cache) polOnHit(it *kv.Item, seg int) {
	if c.old == nil {
		c.policy.OnHit(it, seg)
	}
}

func (c *Cache) polOnMiss(class, sub int, ghost *kv.Item, gseg int) {
	if c.old == nil {
		c.policy.OnMiss(class, sub, ghost, gseg)
	}
}

func (c *Cache) polOnInsert(it *kv.Item) {
	if c.old == nil {
		c.policy.OnInsert(it)
	}
}

func (c *Cache) polOnEvict(it *kv.Item) {
	if c.old == nil {
		c.policy.OnEvict(it)
	}
}

// RemovalObserver is optionally implemented by policies that mirror
// resident items in their own structures (policy.CAMP). OnRemove fires,
// with the engine lock held, when a resident item leaves the cache by any
// path that is not an eviction already reported through OnEvict: explicit
// delete, TTL expiry, replacement by a new store, or flush.
type RemovalObserver interface {
	OnRemove(it *kv.Item)
}

func (c *Cache) polOnRemove(it *kv.Item) {
	if c.old != nil {
		return
	}
	if ro, ok := c.policy.(RemovalObserver); ok {
		ro.OnRemove(it)
	}
}

// ---- Transition control ----

// BeginReslab starts a live transition to a new geometry. The slab size
// must match (slabs are physical); an equal geometry is a no-op. Fails if a
// transition is already running.
func (c *Cache) BeginReslab(target kv.Geometry) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.beginReslabLocked(target)
}

// ReslabActive reports whether a transition is in progress.
func (c *Cache) ReslabActive() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.old != nil
}

// ReslabStep manually pumps up to maxItems of migration work (tests; the
// engine also pumps on every operation). done reports that no transition
// remains active.
func (c *Cache) ReslabStep(maxItems int) (migrated int, done bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reslabStepLocked(maxItems)
}

func (c *Cache) beginReslabLocked(target kv.Geometry) error {
	if c.old != nil {
		return ErrReslabActive
	}
	// Deferred accesses reference items by the class/sub indices the era
	// swap is about to redefine; apply them all before any structure moves.
	c.drainLocked()
	if err := target.Validate(); err != nil {
		return err
	}
	if target.SlabSize != c.geom.SlabSize {
		return fmt.Errorf("cache: re-slab cannot change slab size (%d -> %d)",
			c.geom.SlabSize, target.SlabSize)
	}
	if target.Equal(c.geom) {
		return nil
	}

	// Ghost entries carry class/subclass indices of the outgoing geometry;
	// drop them all rather than translate (they are advisory memory).
	for ci := range c.classes {
		for si := range c.classes[ci].subs {
			s := &c.classes[ci].subs[si]
			if s.gcap == 0 {
				continue
			}
			for g := s.ghost.PopFront(); g != nil; g = s.ghost.PopFront() {
				s.gring.Remove(g)
				c.gindex.Delete(g.Hash, g.Key)
				c.releaseRaw(g)
			}
			s.gcap = 0
			s.gring = nil
		}
	}
	items := 0
	for ci := range c.classes {
		for si := range c.classes[ci].subs {
			s := &c.classes[ci].subs[si]
			items += s.list.Len()
			// The outgoing era only ever removes items (from arbitrary
			// positions); trackers are rank structures for policy decisions
			// the quiesced policy will not make. Drop them.
			s.tr = nil
		}
	}

	c.old = &oldEra{
		geom:    c.geom,
		mgr:     c.slabs,
		classes: c.classes,
		holes:   c.holes,
		items:   items,
	}
	c.gen++
	c.geom = target
	mgr, err := slab.NewEmpty(target)
	if err != nil {
		// Unreachable: target validated above.
		c.restoreFromOldLocked()
		return err
	}
	c.slabs = mgr
	nsub := len(c.bounds)
	if nsub == 0 {
		nsub = 1
	}
	// Target-era stacks run without segment trackers until the transition
	// finishes (migrated items enter at the LRU end, which the exact
	// tracker's rank order cannot absorb); ghost regions work immediately.
	c.classes = buildClasses(target, nsub, c.policy.Segments(), c.policy.GhostSegments(), c.cfg.Tracker, false)
	c.holes = make([]int64, target.NumClasses)
	c.resetAttribution(nsub)
	c.stats.Reslabs++

	// Unowned budget transfers immediately.
	c.harvestOldLocked()
	if c.old.items == 0 {
		c.finishReslabLocked()
	}
	return nil
}

// restoreFromOldLocked rolls the primary fields back (only reachable on an
// internal error between era swap and completion of Begin).
func (c *Cache) restoreFromOldLocked() {
	o := c.old
	c.geom, c.slabs, c.classes, c.holes = o.geom, o.mgr, o.classes, o.holes
	c.old = nil
	c.gen--
}

// reslabStepLocked migrates up to maxItems residents from the outgoing era
// into the target era, evicting any that cannot be placed, then finishes
// the transition when the outgoing era is empty.
func (c *Cache) reslabStepLocked(maxItems int) (migrated int, done bool) {
	o := c.old
	if o == nil {
		return 0, true
	}
	for migrated < maxItems && o.items > 0 {
		it := o.take(true)
		if it == nil {
			break
		}
		o.holes[it.Class] -= int64(o.geom.SlotSize(it.Class) - it.Size)
		_ = o.mgr.FreeSlot(it.Class)
		o.items--
		migrated++
		if c.expired(it) {
			c.pushStaleLocked(it)
			c.index.Delete(it.Hash, it.Key)
			c.stats.Expired++
			c.release(it)
			continue
		}
		if !c.reslabPlaceLocked(it) {
			// The target era has no room for this item right now: evict it
			// honestly rather than stall the transition. No ghost entry —
			// ghosts describe target-era stacks this item never joined.
			c.pushStaleLocked(it)
			c.index.Delete(it.Hash, it.Key)
			c.stats.Evictions++
			c.release(it)
		}
	}
	c.harvestOldLocked()
	if o.items == 0 {
		c.finishReslabLocked()
		return migrated, true
	}
	return migrated, false
}

// reslabPlaceLocked re-slots one migrating item into the target era,
// reporting success. On success the item keeps its identity (key, value,
// CAS, penalty, expiry) and lands at the LRU end of its new stack — within
// one donor stack MRU items migrate first, so relative recency among
// migrated items is preserved at the eviction tail.
func (c *Cache) reslabPlaceLocked(it *kv.Item) bool {
	cl := c.geom.ClassFor(it.Size)
	if cl < 0 {
		return false
	}
	if c.slabs.FreeSlots(cl) == 0 {
		if c.slabs.FreeSlabs() == 0 {
			c.harvestOldLocked()
		}
		if c.slabs.FreeSlabs() == 0 {
			return false
		}
		if c.slabs.AllocSlab(cl) != nil {
			return false
		}
	}
	_ = c.slabs.UseSlot(cl)
	it.Class = cl
	it.Gen = c.gen
	c.holes[cl] += int64(c.geom.SlotSize(cl) - it.Size)
	c.classes[cl].subs[it.Sub].list.PushBack(it)
	c.stats.ReslabMoved++
	return true
}

// take removes and returns one resident from the outgoing era — the MRU
// item (front=true) or LRU item of the lowest class still holding any.
func (o *oldEra) take(front bool) *kv.Item {
	for ; o.drain < len(o.classes); o.drain++ {
		for si := range o.classes[o.drain].subs {
			s := &o.classes[o.drain].subs[si]
			var it *kv.Item
			if front {
				it = s.list.PopFront()
			} else {
				it = s.list.PopBack()
			}
			if it != nil {
				return it
			}
		}
	}
	return nil
}

// harvestOldLocked releases every fully-freed outgoing slab and transfers
// the outgoing era's whole free pool to the target era's budget.
func (c *Cache) harvestOldLocked() {
	o := c.old
	if o == nil {
		return
	}
	for ci := range o.classes {
		spc := o.geom.SlotsPerSlab(ci)
		for o.mgr.Slabs(ci) > 0 && o.mgr.FreeSlots(ci) >= spc {
			if o.mgr.ReleaseSlab(ci) != nil {
				break
			}
		}
	}
	if n := o.mgr.FreeSlabs(); n > 0 {
		_ = o.mgr.ShrinkBudget(n)
		_ = c.slabs.GrowBudget(n)
	}
}

// reclaimOldForSpaceLocked evicts outgoing-era residents (LRU-first) until
// at least one slab's budget has moved to the target era, or the outgoing
// era is empty. Called when a store needs room mid-transition.
func (c *Cache) reclaimOldForSpaceLocked() {
	o := c.old
	for o != nil && o.items > 0 && c.slabs.FreeSlabs() == 0 {
		it := o.take(false)
		if it == nil {
			break
		}
		o.holes[it.Class] -= int64(o.geom.SlotSize(it.Class) - it.Size)
		_ = o.mgr.FreeSlot(it.Class)
		o.items--
		c.pushStaleLocked(it)
		c.index.Delete(it.Hash, it.Key)
		c.stats.Evictions++
		c.stats.FallbackEvicts++
		c.release(it)
		c.harvestOldLocked()
	}
	if o != nil && o.items == 0 {
		c.harvestOldLocked()
		c.finishReslabLocked()
	}
}

// finishReslabLocked completes the transition: the outgoing era must be
// empty. Remaining budget transfers, segment trackers are rebuilt over the
// (now fully migrated) target stacks, and the policy is re-Attached so it
// rebuilds its per-class state for the new geometry.
func (c *Cache) finishReslabLocked() {
	o := c.old
	if o == nil {
		return
	}
	c.harvestOldLocked()
	c.old = nil
	if nseg := c.policy.Segments(); nseg > 0 {
		for ci := range c.classes {
			cl := &c.classes[ci]
			for si := range cl.subs {
				s := &cl.subs[si]
				if s.tr != nil {
					continue
				}
				switch c.cfg.Tracker {
				case TrackerBloom:
					s.tr = segment.NewBloom(&s.list, cl.spc, nseg)
				default:
					s.tr = segment.NewExact(&s.list, cl.spc, nseg)
				}
				// Register existing items bottom-up — the same order the
				// exact tracker's own compaction uses, so ranks are exact;
				// a Rollover seeds the Bloom variant's segment snapshot.
				s.list.AscendFromBack(func(it *kv.Item) bool {
					s.tr.Insert(it)
					return true
				})
				s.tr.Rollover()
			}
		}
	}
	c.policy.Attach(c)
}

// ---- Policy-facing primitives (engine lock held) ----

// EvictKey evicts the resident item holding key with full eviction
// bookkeeping (stale push, stats, OnEvict, ghost entry), reporting whether
// an item was evicted. Items still in the outgoing era of a transition are
// not policy-visible and are left alone.
func (c *Cache) EvictKey(key string) bool {
	h := kv.HashString(key)
	it := c.index.Get(h, key)
	if it == nil {
		return false
	}
	if c.old != nil && it.Gen != c.gen {
		return false
	}
	c.evictResidentLocked(it, &c.classes[it.Class].subs[it.Sub])
	return true
}

// RangeItems iterates all resident items (both eras). Policies use it to
// rebuild mirrors in Attach; the callback must not mutate engine state and
// must not retain items.
func (c *Cache) RangeItems(fn func(it *kv.Item) bool) {
	c.index.Range(fn)
}

// ---- Holes gauges ----

// BytesHoles returns the current era's per-class internal fragmentation in
// bytes (slot capacity held by resident items but unused).
func (c *Cache) BytesHoles() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int64(nil), c.holes...)
}

// HolesTotal returns total bytes lost to holes across both eras.
func (c *Cache) HolesTotal() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t int64
	for _, h := range c.holes {
		t += h
	}
	if c.old != nil {
		for _, h := range c.old.holes {
			t += h
		}
	}
	return t
}
