package cache

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"testing/quick"
	"time"
)

// modelItem mirrors what the engine should remember about a key.
type modelItem struct {
	value string
	cas   uint64
}

// TestOpsAgainstMapModel drives Set/SetMode/Get/GetWithCAS/Delete/Delta
// against a plain map model. Eviction is avoided (cache big enough), so the
// engine must agree with the model exactly.
func TestOpsAgainstMapModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := New(Config{
			Geometry:    smallGeom(),
			CacheBytes:  64 * 4096, // far larger than the 40-key working set
			StoreValues: true,
			WindowLen:   131,
		}, &nullPolicy{bounds: []float64{0.01, 5}, nseg: 2, gseg: 2})
		if err != nil {
			return false
		}
		model := map[string]*modelItem{}
		keyOf := func() string { return fmt.Sprintf("k%d", rng.Intn(40)) }
		for op := 0; op < 2000; op++ {
			key := keyOf()
			switch rng.Intn(8) {
			case 0: // set
				v := fmt.Sprintf("v%d", op)
				if c.Set(key, len(v), 0.01, 0, []byte(v)) != nil {
					return false
				}
				_, _, cas, _ := c.GetWithCAS(key, nil)
				model[key] = &modelItem{value: v, cas: cas}
			case 1: // add
				v := fmt.Sprintf("a%d", op)
				err := c.SetMode(key, ModeAdd, 0, len(v), 0.01, 0, 0, []byte(v))
				if _, exists := model[key]; exists {
					if err == nil {
						return false
					}
				} else {
					if err != nil {
						return false
					}
					_, _, cas, _ := c.GetWithCAS(key, nil)
					model[key] = &modelItem{value: v, cas: cas}
				}
			case 2: // replace
				v := fmt.Sprintf("r%d", op)
				err := c.SetMode(key, ModeReplace, 0, len(v), 0.01, 0, 0, []byte(v))
				if m, exists := model[key]; exists {
					if err != nil {
						return false
					}
					_, _, cas, _ := c.GetWithCAS(key, nil)
					m.value, m.cas = v, cas
				} else if err == nil {
					return false
				}
			case 3: // cas with the model's (correct) token
				if m, exists := model[key]; exists {
					v := fmt.Sprintf("c%d", op)
					if c.SetMode(key, ModeCAS, m.cas, len(v), 0.01, 0, 0, []byte(v)) != nil {
						return false
					}
					_, _, cas, _ := c.GetWithCAS(key, nil)
					m.value, m.cas = v, cas
				}
			case 4: // cas with a stale token
				if m, exists := model[key]; exists {
					if c.SetMode(key, ModeCAS, m.cas+1, 3, 0.01, 0, 0, []byte("xxx")) == nil {
						return false
					}
				}
			case 5: // delete
				removed := c.Delete(key)
				if _, exists := model[key]; exists != removed {
					return false
				}
				delete(model, key)
			case 6: // delta over a numeric value
				v := fmt.Sprintf("%d", rng.Intn(1000))
				c.Set(key, len(v), 0.01, 0, []byte(v))
				_, _, cas, _ := c.GetWithCAS(key, nil)
				model[key] = &modelItem{value: v, cas: cas}
				n, err := c.Delta(key, 7, false)
				if err != nil {
					return false
				}
				model[key].value = fmt.Sprintf("%d", n)
			default: // get
				val, _, hit := c.Get(key, 0, 0, nil)
				m, exists := model[key]
				if hit != exists {
					return false
				}
				if exists && string(val) != m.value {
					return false
				}
			}
		}
		// Final agreement sweep.
		for key, m := range model {
			val, _, cas, hit := c.GetWithCAS(key, nil)
			if !hit || string(val) != m.value {
				return false
			}
			// Delta rewrites in place without changing CAS in this
			// engine; the model tracks CAS only at store time, so just
			// require a token exists.
			if cas == 0 {
				return false
			}
		}
		return c.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// ---- Randomized oracle: full command set vs a map + LRU-order reference ----
//
// The engine is configured for exact LRU (one subclass, no segment tracker,
// do-nothing policy), so its behavior — including which key an over-capacity
// store evicts — is exactly predictable from a map plus an access-order
// list. The oracle drives Set/Add/Replace/CAS/Get/Gets/Delete/Delta/Touch/
// Flush/ReapExpired with a controllable clock and checks full agreement.

// oracleEntry mirrors one resident item.
type oracleEntry struct {
	value    string
	cas      uint64 // 0 while the entry is expired-on-arrival (never read)
	expireAt int64
}

// oracleModel is the reference: entries + exact LRU order.
type oracleModel struct {
	entries map[string]*oracleEntry
	order   []string // order[0] = MRU, last = LRU victim
}

func (m *oracleModel) removeOrder(key string) {
	for i, k := range m.order {
		if k == key {
			m.order = append(m.order[:i], m.order[i+1:]...)
			return
		}
	}
}

func (m *oracleModel) pushFront(key string) {
	m.order = append([]string{key}, m.order...)
}

func (m *oracleModel) touchFront(key string) {
	m.removeOrder(key)
	m.pushFront(key)
}

// store mirrors SetTTL: replace frees the old incarnation first (so a
// replace never evicts), a fresh insert at capacity evicts the LRU tail.
func (m *oracleModel) store(key, value string, cas uint64, expireAt int64, capacity int) (evicted string) {
	if _, ok := m.entries[key]; ok {
		m.removeOrder(key)
		delete(m.entries, key)
	} else if len(m.order) >= capacity {
		evicted = m.order[len(m.order)-1]
		m.order = m.order[:len(m.order)-1]
		delete(m.entries, evicted)
	}
	m.entries[key] = &oracleEntry{value: value, cas: cas, expireAt: expireAt}
	m.pushFront(key)
	return evicted
}

func (m *oracleModel) delete(key string) bool {
	if _, ok := m.entries[key]; !ok {
		return false
	}
	delete(m.entries, key)
	m.removeOrder(key)
	return true
}

// TestOracleFullCommandSet is the seeded oracle run. Rerun a failure with
// PAMA_MODEL_SEED=<logged seed>.
func TestOracleFullCommandSet(t *testing.T) {
	seed := time.Now().UnixNano()
	if s := os.Getenv("PAMA_MODEL_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad PAMA_MODEL_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("oracle seed %d (rerun with PAMA_MODEL_SEED=%d)", seed, seed)
	rng := rand.New(rand.NewSource(seed))
	for round := 0; round < 6; round++ {
		oracleRound(t, rng.Int63())
	}
}

func oracleRound(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	now := int64(1_000_000)

	// One 4 KiB slab of 64-byte slots: capacity 64, against ~96 keys, so
	// the run lives under constant eviction pressure.
	const capacity = 64
	const itemSize = 32
	c, err := New(Config{
		Geometry:    smallGeom(),
		CacheBytes:  4096,
		StoreValues: true,
		StaleValues: true,
		StaleBytes:  4096,
		WindowLen:   997,
		Now:         func() int64 { return now },
	}, &nullPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	model := &oracleModel{entries: map[string]*oracleEntry{}}
	// history records every value ever stored per key; GetStale must never
	// serve bytes outside it.
	history := map[string]map[string]bool{}
	recordHistory := func(key, value string) {
		if history[key] == nil {
			history[key] = map[string]bool{}
		}
		history[key][value] = true
	}
	keyOf := func() string { return fmt.Sprintf("k%d", rng.Intn(96)) }
	expiredNow := func(e *oracleEntry) bool { return e.expireAt != 0 && e.expireAt <= now }
	randomTTL := func() int64 {
		switch rng.Intn(10) {
		case 0: // already expired on arrival
			return now - 1
		case 1, 2: // expires soon
			return now + int64(1+rng.Intn(8))
		default: // never
			return 0
		}
	}
	// learnCAS reads the freshly stored token. The extra GetWithCAS is
	// harmless to LRU order (the key is already at the front) but would
	// reap an expired-on-arrival item, so those keep cas 0 unread.
	learnCAS := func(key string) uint64 {
		_, _, cas, ok := c.GetWithCAS(key, nil)
		if !ok {
			t.Fatalf("seed %d: stored key %q unreadable", seed, key)
		}
		return cas
	}

	for op := 0; op < 4000; op++ {
		if rng.Intn(20) == 0 {
			now += int64(1 + rng.Intn(4)) // let TTLs pass
		}
		key := keyOf()
		switch rng.Intn(16) {
		case 0, 1, 2: // set
			v := fmt.Sprintf("v%d", op)
			exp := randomTTL()
			if err := c.SetTTL(key, itemSize, 0.01, 0, exp, []byte(v)); err != nil {
				t.Fatalf("seed %d op %d: set: %v", seed, op, err)
			}
			e := &oracleEntry{value: v, expireAt: exp}
			model.store(key, v, 0, exp, capacity)
			if !expiredNow(e) {
				model.entries[key].cas = learnCAS(key)
			}
			recordHistory(key, v)
		case 3: // add
			v := fmt.Sprintf("a%d", op)
			err := c.SetMode(key, ModeAdd, 0, itemSize, 0.01, 0, 0, []byte(v))
			e, present := model.entries[key]
			if present && !expiredNow(e) {
				if err == nil {
					t.Fatalf("seed %d op %d: add over live key succeeded", seed, op)
				}
			} else {
				if err != nil {
					t.Fatalf("seed %d op %d: add: %v", seed, op, err)
				}
				model.store(key, v, 0, 0, capacity)
				model.entries[key].cas = learnCAS(key)
				recordHistory(key, v)
			}
		case 4: // replace
			v := fmt.Sprintf("r%d", op)
			err := c.SetMode(key, ModeReplace, 0, itemSize, 0.01, 0, 0, []byte(v))
			e, present := model.entries[key]
			if present && !expiredNow(e) {
				if err != nil {
					t.Fatalf("seed %d op %d: replace: %v", seed, op, err)
				}
				model.store(key, v, 0, 0, capacity)
				model.entries[key].cas = learnCAS(key)
				recordHistory(key, v)
			} else if err == nil {
				t.Fatalf("seed %d op %d: replace of absent key succeeded", seed, op)
			}
		case 5: // cas with the correct token
			e, present := model.entries[key]
			if !present || expiredNow(e) {
				continue
			}
			v := fmt.Sprintf("c%d", op)
			if err := c.SetMode(key, ModeCAS, e.cas, itemSize, 0.01, 0, 0, []byte(v)); err != nil {
				t.Fatalf("seed %d op %d: cas: %v", seed, op, err)
			}
			model.store(key, v, 0, 0, capacity)
			model.entries[key].cas = learnCAS(key)
			recordHistory(key, v)
		case 6: // cas with a stale token / against a dead key
			e, present := model.entries[key]
			var want error
			switch {
			case !present || expiredNow(e):
				want = ErrNotStored
			default:
				want = ErrCASMismatch
			}
			tok := uint64(1)
			if present {
				tok = e.cas + 1
			}
			err := c.SetMode(key, ModeCAS, tok, itemSize, 0.01, 0, 0, []byte("x"))
			if !errorsIs(err, want) {
				t.Fatalf("seed %d op %d: bad-cas -> %v, want %v", seed, op, err, want)
			}
		case 7: // delete (true even for expired-but-unreaped items)
			got := c.Delete(key)
			if want := model.delete(key); got != want {
				t.Fatalf("seed %d op %d: delete -> %v, want %v", seed, op, got, want)
			}
		case 8: // touch
			exp := randomTTL()
			got := c.Touch(key, exp)
			e, present := model.entries[key]
			want := present && !expiredNow(e)
			if got != want {
				t.Fatalf("seed %d op %d: touch -> %v, want %v", seed, op, got, want)
			}
			if want {
				e.expireAt = exp // no LRU move
			}
		case 9: // incr/decr
			decr := rng.Intn(2) == 0
			delta := uint64(rng.Intn(1000))
			n, err := c.Delta(key, delta, decr)
			e, present := model.entries[key]
			switch {
			case !present || expiredNow(e):
				if !errorsIs(err, ErrNotStored) {
					t.Fatalf("seed %d op %d: delta on dead key -> %v", seed, op, err)
				}
			default:
				cur, perr := strconv.ParseUint(e.value, 10, 64)
				if perr != nil {
					if !errorsIs(err, ErrNotNumeric) {
						t.Fatalf("seed %d op %d: delta non-numeric -> %v", seed, op, err)
					}
					continue
				}
				if err != nil {
					t.Fatalf("seed %d op %d: delta: %v", seed, op, err)
				}
				var want uint64
				if decr {
					if delta > cur {
						want = 0
					} else {
						want = cur - delta
					}
				} else {
					want = cur + delta
				}
				if n != want {
					t.Fatalf("seed %d op %d: delta -> %d, want %d", seed, op, n, want)
				}
				e.value = strconv.FormatUint(want, 10) // in place: no LRU move, no CAS bump
				recordHistory(key, e.value)
			}
		case 10: // numeric seed for future deltas
			v := strconv.Itoa(rng.Intn(100000))
			if err := c.Set(key, itemSize, 0.01, 0, []byte(v)); err != nil {
				t.Fatalf("seed %d op %d: set: %v", seed, op, err)
			}
			model.store(key, v, 0, 0, capacity)
			model.entries[key].cas = learnCAS(key)
			recordHistory(key, v)
		case 11: // stale read: never fabricates bytes
			val, _, ok := c.GetStale(key, nil)
			if e, present := model.entries[key]; present {
				if !ok || string(val) != e.value {
					t.Fatalf("seed %d op %d: GetStale of resident %q -> %q ok=%v, want %q",
						seed, op, key, val, ok, e.value)
				}
			} else if ok && !history[key][string(val)] {
				t.Fatalf("seed %d op %d: GetStale served never-stored bytes %q for %q",
					seed, op, val, key)
			}
		case 12: // proactive reap
			if rng.Intn(4) != 0 {
				continue
			}
			c.ReapExpired(0)
			for k, e := range model.entries {
				if expiredNow(e) {
					model.delete(k)
				}
			}
		case 13: // flush (rare)
			if rng.Intn(8) != 0 {
				continue
			}
			c.Flush()
			model.entries = map[string]*oracleEntry{}
			model.order = nil
			if _, _, ok := c.GetStale(key, nil); ok {
				t.Fatalf("seed %d op %d: stale copy survived flush_all", seed, op)
			}
		default: // get / gets
			e, present := model.entries[key]
			if rng.Intn(2) == 0 {
				val, _, hit := c.Get(key, 0, 0, nil)
				switch {
				case present && !expiredNow(e):
					if !hit || string(val) != e.value {
						t.Fatalf("seed %d op %d: get %q -> %q hit=%v, want %q",
							seed, op, key, val, hit, e.value)
					}
					model.touchFront(key)
				default:
					if hit {
						t.Fatalf("seed %d op %d: get of dead key %q hit", seed, op, key)
					}
					if present { // lazily reaped by this get
						model.delete(key)
					}
				}
			} else {
				val, _, cas, hit := c.GetWithCAS(key, nil)
				switch {
				case present && !expiredNow(e):
					if !hit || string(val) != e.value || cas != e.cas {
						t.Fatalf("seed %d op %d: gets %q -> (%q, cas %d, hit=%v), want (%q, cas %d)",
							seed, op, key, val, cas, hit, e.value, e.cas)
					}
					model.touchFront(key)
				default:
					if hit {
						t.Fatalf("seed %d op %d: gets of dead key %q hit", seed, op, key)
					}
					if present {
						model.delete(key)
					}
				}
			}
		}
		if op%512 == 511 {
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("seed %d op %d: %v", seed, op, err)
			}
			if got, want := c.Items(), len(model.entries); got != want {
				t.Fatalf("seed %d op %d: Items() = %d, model holds %d", seed, op, got, want)
			}
		}
	}

	// Final full-agreement sweep: every model entry must be served exactly
	// (or reaped as expired), and the engine must hold nothing beyond the
	// model.
	if got, want := c.Items(), len(model.entries); got != want {
		t.Fatalf("seed %d: final Items() = %d, model holds %d", seed, got, want)
	}
	for key, e := range model.entries {
		val, _, cas, hit := c.GetWithCAS(key, nil)
		if expiredNow(e) {
			if hit {
				t.Fatalf("seed %d: final gets of expired %q hit", seed, key)
			}
			continue
		}
		if !hit || string(val) != e.value || cas != e.cas {
			t.Fatalf("seed %d: final gets %q -> (%q, cas %d, hit=%v), want (%q, cas %d)",
				seed, key, val, cas, hit, e.value, e.cas)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("seed %d: final invariants: %v", seed, err)
	}
}

// errorsIs avoids importing errors under a name colliding with test locals.
func errorsIs(err, target error) bool {
	for err != nil {
		if err == target {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
