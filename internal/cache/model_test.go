package cache

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// modelItem mirrors what the engine should remember about a key.
type modelItem struct {
	value string
	cas   uint64
}

// TestOpsAgainstMapModel drives Set/SetMode/Get/GetWithCAS/Delete/Delta
// against a plain map model. Eviction is avoided (cache big enough), so the
// engine must agree with the model exactly.
func TestOpsAgainstMapModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := New(Config{
			Geometry:    smallGeom(),
			CacheBytes:  64 * 4096, // far larger than the 40-key working set
			StoreValues: true,
			WindowLen:   131,
		}, &nullPolicy{bounds: []float64{0.01, 5}, nseg: 2, gseg: 2})
		if err != nil {
			return false
		}
		model := map[string]*modelItem{}
		keyOf := func() string { return fmt.Sprintf("k%d", rng.Intn(40)) }
		for op := 0; op < 2000; op++ {
			key := keyOf()
			switch rng.Intn(8) {
			case 0: // set
				v := fmt.Sprintf("v%d", op)
				if c.Set(key, len(v), 0.01, 0, []byte(v)) != nil {
					return false
				}
				_, _, cas, _ := c.GetWithCAS(key, nil)
				model[key] = &modelItem{value: v, cas: cas}
			case 1: // add
				v := fmt.Sprintf("a%d", op)
				err := c.SetMode(key, ModeAdd, 0, len(v), 0.01, 0, 0, []byte(v))
				if _, exists := model[key]; exists {
					if err == nil {
						return false
					}
				} else {
					if err != nil {
						return false
					}
					_, _, cas, _ := c.GetWithCAS(key, nil)
					model[key] = &modelItem{value: v, cas: cas}
				}
			case 2: // replace
				v := fmt.Sprintf("r%d", op)
				err := c.SetMode(key, ModeReplace, 0, len(v), 0.01, 0, 0, []byte(v))
				if m, exists := model[key]; exists {
					if err != nil {
						return false
					}
					_, _, cas, _ := c.GetWithCAS(key, nil)
					m.value, m.cas = v, cas
				} else if err == nil {
					return false
				}
			case 3: // cas with the model's (correct) token
				if m, exists := model[key]; exists {
					v := fmt.Sprintf("c%d", op)
					if c.SetMode(key, ModeCAS, m.cas, len(v), 0.01, 0, 0, []byte(v)) != nil {
						return false
					}
					_, _, cas, _ := c.GetWithCAS(key, nil)
					m.value, m.cas = v, cas
				}
			case 4: // cas with a stale token
				if m, exists := model[key]; exists {
					if c.SetMode(key, ModeCAS, m.cas+1, 3, 0.01, 0, 0, []byte("xxx")) == nil {
						return false
					}
				}
			case 5: // delete
				removed := c.Delete(key)
				if _, exists := model[key]; exists != removed {
					return false
				}
				delete(model, key)
			case 6: // delta over a numeric value
				v := fmt.Sprintf("%d", rng.Intn(1000))
				c.Set(key, len(v), 0.01, 0, []byte(v))
				_, _, cas, _ := c.GetWithCAS(key, nil)
				model[key] = &modelItem{value: v, cas: cas}
				n, err := c.Delta(key, 7, false)
				if err != nil {
					return false
				}
				model[key].value = fmt.Sprintf("%d", n)
			default: // get
				val, _, hit := c.Get(key, 0, 0, nil)
				m, exists := model[key]
				if hit != exists {
					return false
				}
				if exists && string(val) != m.value {
					return false
				}
			}
		}
		// Final agreement sweep.
		for key, m := range model {
			val, _, cas, hit := c.GetWithCAS(key, nil)
			if !hit || string(val) != m.value {
				return false
			}
			// Delta rewrites in place without changing CAS in this
			// engine; the model tracks CAS only at store time, so just
			// require a token exists.
			if cas == 0 {
				return false
			}
		}
		return c.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
