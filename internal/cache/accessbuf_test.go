package cache

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"pamakv/internal/accessbuf"
	"pamakv/internal/kv"
)

// newBatchedCache builds an engine with the lock-amortized read path on.
func newBatchedCache(t *testing.T, slabs, ringCap int, pol Policy) *Cache {
	t.Helper()
	c, err := New(Config{
		Geometry:     smallGeom(),
		CacheBytes:   int64(slabs) * 4096,
		WindowLen:    1 << 50,
		AccessBuffer: ringCap,
	}, pol)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestBatchedModeDefersThenApplies: a fast-path hit leaves policy and window
// state untouched until a drain applies it.
func TestBatchedModeDefersThenApplies(t *testing.T) {
	pol := &nullPolicy{nseg: 2}
	c := newBatchedCache(t, 8, 64, pol)
	if !c.Batched() {
		t.Fatal("AccessBuffer > 0 but Batched() = false")
	}
	if err := c.Set("k", 100, 1.0, 0, nil); err != nil {
		t.Fatal(err)
	}
	clock0 := c.Clock()
	for i := 0; i < 5; i++ {
		if _, _, hit := c.Get("k", 0, 0, nil); !hit {
			t.Fatal("get missed")
		}
	}
	if got := len(pol.hits); got != 0 {
		t.Fatalf("policy saw %d hits before any drain", got)
	}
	if c.Clock() != clock0 {
		t.Fatalf("clock advanced on the fast path: %d -> %d", clock0, c.Clock())
	}
	if got := c.buffered(); got != 5 {
		t.Fatalf("buffered = %d, want 5", got)
	}
	st := c.AccessBufStats() // reporting path drains
	if st.Drained != 5 || st.StaleRefs != 0 {
		t.Fatalf("drained %d records (%d stale), want 5 (0)", st.Drained, st.StaleRefs)
	}
	if got := len(pol.hits); got != 5 {
		t.Fatalf("policy saw %d hits after drain, want 5", got)
	}
	if c.Clock() != clock0+5 {
		t.Fatalf("clock after drain = %d, want %d", c.Clock(), clock0+5)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRingFillDrainsInline: pushing past the ring capacity forces the
// producer to drain, so nothing is ever lost and stats see every access.
func TestRingFillDrainsInline(t *testing.T) {
	pol := &nullPolicy{}
	c := newBatchedCache(t, 8, 8, pol) // tiny rings
	if err := c.Set("k", 100, 1.0, 0, nil); err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		if _, _, hit := c.Get("k", 0, 0, nil); !hit {
			t.Fatal("get missed")
		}
	}
	st := c.AccessBufStats()
	if st.Drained != n {
		t.Fatalf("drained %d records, want %d", st.Drained, n)
	}
	if st.FullDrains == 0 {
		t.Fatal("500 hits through one 8-slot ring never forced a full-ring drain")
	}
	if got := len(pol.hits); got != n {
		t.Fatalf("policy saw %d hits, want %d", got, n)
	}
	if s := c.Stats(); s.Gets != n+0 || s.Hits != n {
		t.Fatalf("stats gets/hits = %d/%d, want %d/%d", s.Gets, s.Hits, n, n)
	}
}

// TestBatchedConvergesToImmediate runs the same seeded get-through workload
// against an immediate-mode and a batched-mode engine under real eviction
// pressure and requires the hit ratios to agree within epsilon = 0.5% —
// the tentpole's stated policy-equivalence bound for deferred recency.
func TestBatchedConvergesToImmediate(t *testing.T) {
	run := func(ringCap int) float64 {
		pol := &nullPolicy{bounds: []float64{0.01, 5}, nseg: 2, gseg: 2}
		c, err := New(Config{
			Geometry:     smallGeom(),
			CacheBytes:   8 * 4096, // well under the working set: evictions matter
			WindowLen:    997,
			AccessBuffer: ringCap,
		}, pol)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		zipf := rand.NewZipf(rng, 1.2, 1, 599)
		for op := 0; op < 60_000; op++ {
			k := fmt.Sprintf("k%d", zipf.Uint64())
			if _, _, hit := c.Get(k, 0, 0, nil); !hit {
				size := 64 + int(zipf.Uint64())%440
				pen := 0.001 * float64(1+rng.Intn(1000))
				if err := c.Set(k, size, pen, 0, nil); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		st := c.Stats()
		return float64(st.Hits) / float64(st.Gets)
	}
	immediate := run(0)
	batched := run(256)
	if diff := immediate - batched; diff > 0.005 || diff < -0.005 {
		t.Fatalf("hit ratios diverged: immediate %.4f vs batched %.4f (|diff| > 0.5%%)",
			immediate, batched)
	}
}

// TestDrainSkipsStaleRefs injects records whose items died between access
// and drain — delete, eviction-to-ghost, and pool reuse — and requires the
// drain to skip every one via the CAS incarnation check.
func TestDrainSkipsStaleRefs(t *testing.T) {
	pol := &nullPolicy{gseg: 2}
	c := newBatchedCache(t, 8, 64, pol)
	if err := c.Set("dead", 100, 1.0, 0, nil); err != nil {
		t.Fatal(err)
	}

	c.mu.Lock()
	it := c.index.Get(kv.HashString("dead"), "dead")
	cas := it.CAS
	c.mu.Unlock()

	// The key dies; its item is reset into the pool (ghost regions get a
	// separate check below) and may be reincarnated as another key.
	c.Delete("dead")
	if err := c.Set("reuse", 100, 1.0, 0, nil); err != nil {
		t.Fatal(err)
	}

	// A record from before the delete arrives late (the unpublished-slot
	// race): the drain must not touch whatever the pointer now holds.
	c.rings[0].Push(accessbuf.Record{It: it, CAS: cas, Pen: 1.0})
	st := c.AccessBufStats()
	if st.StaleRefs != 1 {
		t.Fatalf("StaleRefs = %d, want 1", st.StaleRefs)
	}
	if got := len(pol.hits); got != 0 {
		t.Fatalf("policy saw %d hits from a stale record", got)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Ghosted item: evicted entries keep their CAS token, so the Ghost flag
	// must catch them.
	if err := c.Set("ghosted", 100, 2.0, 0, nil); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	git := c.index.Get(kv.HashString("ghosted"), "ghosted")
	gcas := git.CAS
	c.evictResidentLocked(git, &c.classes[git.Class].subs[git.Sub])
	if !git.Ghost {
		t.Fatal("eviction with ghost regions on did not ghost the item")
	}
	c.mu.Unlock()
	c.rings[0].Push(accessbuf.Record{It: git, CAS: gcas, Pen: 2.0})
	st = c.AccessBufStats()
	if st.StaleRefs != 2 {
		t.Fatalf("StaleRefs = %d, want 2", st.StaleRefs)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDrainReslabDrainInterleaving is the satellite's forced
// drain -> reslab -> drain sequence: records buffered across a live
// geometry transition must either follow their item into the new era
// (CAS preserved by migration) or be skipped (evicted mid-transition),
// never corrupt accounting.
func TestDrainReslabDrainInterleaving(t *testing.T) {
	pol := &nullPolicy{}
	c := newBatchedCache(t, 8, 256, pol)
	keys := make([]string, 40)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
		if err := c.Set(keys[i], 64+i*11, 1.0, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	// First drain: everything applies cleanly.
	for _, k := range keys {
		c.Get(k, 0, 0, nil)
	}
	if st := c.AccessBufStats(); st.StaleRefs != 0 || st.Drained != uint64(len(keys)) {
		t.Fatalf("pre-reslab drain: %d drained, %d stale", st.Drained, st.StaleRefs)
	}

	// Buffer a second round of accesses, then start a transition while they
	// sit in the rings. BeginReslab drains first by design — so to force
	// records to *cross* the era boundary, capture item refs now and
	// re-inject them after the transition begins.
	type ref struct {
		it  *kv.Item
		cas uint64
	}
	var refs []ref
	c.mu.Lock()
	for _, k := range keys {
		if it := c.index.Get(kv.HashString(k), k); it != nil {
			refs = append(refs, ref{it, it.CAS})
		}
	}
	c.mu.Unlock()

	target := kv.Geometry{SlabSize: 4096, Base: 96, NumClasses: 4}
	if err := c.BeginReslab(target); err != nil {
		t.Fatal(err)
	}
	// Inject mid-transition: some items are still old-era, some already
	// migrated; the era-aware drain must handle both.
	for i, r := range refs {
		c.rings[i&3].Push(accessbuf.Record{It: r.it, CAS: r.cas, Pen: 1.0})
	}
	st := c.AccessBufStats() // drains; also pumps the transition via tick()
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("mid-transition drain broke invariants: %v", err)
	}

	// Finish the transition, then inject the same (now definitely stale or
	// migrated) refs once more.
	for !func() bool { _, done := c.ReslabStep(1 << 20); return done }() {
	}
	for i, r := range refs {
		c.rings[i&3].Push(accessbuf.Record{It: r.it, CAS: r.cas, Pen: 1.0})
	}
	st = c.AccessBufStats()
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("post-transition drain broke invariants: %v", err)
	}
	// Every record either applied to a still-live incarnation or was
	// counted stale; nothing may vanish.
	if st.Drained == 0 {
		t.Fatal("no records drained across the transition")
	}
	// Survivors must still be servable.
	alive := 0
	for _, k := range keys {
		if _, _, hit := c.Get(k, 0, 0, nil); hit {
			alive++
		}
	}
	if alive == 0 {
		t.Fatal("transition lost every item")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMaintainerDrainsAndShutsDownCleanly covers the maintainer lifecycle:
// it must drain idle rings without any mutating op, and Stop must not leak
// its goroutine (satellite c).
func TestMaintainerDrainsAndShutsDownCleanly(t *testing.T) {
	before := runtime.NumGoroutine()
	pol := &nullPolicy{}
	c := newBatchedCache(t, 8, 1024, pol)
	if err := c.Set("k", 100, 1.0, 0, nil); err != nil {
		t.Fatal(err)
	}
	c.StartMaintainer(time.Millisecond)
	c.StartMaintainer(time.Millisecond) // idempotent while running

	for i := 0; i < 10; i++ {
		c.Get("k", 0, 0, nil)
	}
	deadline := time.Now().Add(2 * time.Second)
	for c.buffered() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("maintainer never drained the rings")
		}
		time.Sleep(time.Millisecond)
	}

	c.StopMaintainer()
	c.StopMaintainer() // idempotent after stop
	if got := c.nowCache.Load(); got != 0 {
		t.Fatalf("coarse clock not reset on maintainer stop: %d", got)
	}

	deadline = time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoarseExpiryClock verifies the expired() precedence chain: injected
// Config.Now wins; otherwise a warm coarse clock is consulted without any
// wall-clock read; a cold cache (0) falls back to the real clock.
func TestCoarseExpiryClock(t *testing.T) {
	pol := &nullPolicy{}
	c := newBatchedCache(t, 8, 64, pol)
	// An item whose TTL has already passed in wall time. With a coarse
	// clock deliberately frozen before the deadline, the fast path must
	// still serve it — the proof that the cached second, not a wall-clock
	// read, is being consulted. (Fast-path hits never drain, so nothing
	// refreshes the frozen value mid-test.)
	now := time.Now().Unix()
	if err := c.SetTTL("k", 100, 1.0, 0, now-10, nil); err != nil {
		t.Fatal(err)
	}
	c.nowCache.Store(now - 100)
	if _, _, hit := c.Get("k", 0, 0, nil); !hit {
		t.Fatal("coarse clock ignored: expiry check read the wall clock")
	}
	// Cold cache (0) falls back to the real clock: now the item is dead.
	c.nowCache.Store(0)
	if _, _, hit := c.Get("k", 0, 0, nil); hit {
		t.Fatal("expired item served through the real-time fallback")
	}
	if s := c.Stats(); s.Expired != 1 {
		t.Fatalf("Expired = %d, want 1", s.Expired)
	}

	// An injected test clock bypasses the cache entirely.
	fake := int64(1000)
	c2, err := New(Config{
		Geometry:     smallGeom(),
		CacheBytes:   8 * 4096,
		WindowLen:    1 << 50,
		AccessBuffer: 64,
		Now:          func() int64 { return fake },
	}, &nullPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.SetTTL("k", 100, 1.0, 0, 2000, nil); err != nil {
		t.Fatal(err)
	}
	c2.nowCache.Store(5000) // must be ignored: cfg.Now wins
	if _, _, hit := c2.Get("k", 0, 0, nil); !hit {
		t.Fatal("injected clock ignored in favor of coarse cache")
	}
	fake = 3000
	if _, _, hit := c2.Get("k", 0, 0, nil); hit {
		t.Fatal("item survived past injected-clock expiry")
	}
}

// TestConcurrentBatchedTraffic is the -race regression for the deferred
// counters: concurrent getters on the fast path, a writer churning keys, a
// maintainer, and reporting readers (Stats/Introspect/AccessBufStats) all
// run together; invariants must hold and no access may be lost.
func TestConcurrentBatchedTraffic(t *testing.T) {
	pol := &nullPolicy{bounds: []float64{0.01, 5}, nseg: 2, gseg: 2}
	c := newBatchedCache(t, 16, 128, pol)
	c.StartMaintainer(time.Millisecond)
	defer c.StopMaintainer()

	const nKeys = 200
	for i := 0; i < nKeys; i++ {
		if err := c.Set(fmt.Sprintf("k%d", i), 64+i, 0.5, 0, nil); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var gets [4]uint64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Get(fmt.Sprintf("k%d", rng.Intn(nKeys)), 0, 0, nil)
				gets[g]++
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := fmt.Sprintf("k%d", rng.Intn(nKeys))
			if i%7 == 0 {
				c.Delete(k)
			} else {
				c.Set(k, 64+rng.Intn(800), 0.5, 0, nil)
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = c.Stats()
			_ = c.Introspect()
			_ = c.AccessBufStats()
			_, _, _ = c.ArbiterValues()
		}
	}()

	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var want uint64
	for _, g := range gets {
		want += g
	}
	if st := c.Stats(); st.Gets < want {
		t.Fatalf("stats lost gets: counted %d, issued at least %d", st.Gets, want)
	}
}

// ---- Benches: the coarse clock keeps the wall-clock read off the GET path ----

func benchGetHitTTL(b *testing.B, ringCap int, warmClock bool) {
	c, err := New(Config{
		Geometry:     smallGeom(),
		CacheBytes:   16 * 4096,
		WindowLen:    1 << 50,
		AccessBuffer: ringCap,
	}, &nullPolicy{})
	if err != nil {
		b.Fatal(err)
	}
	far := time.Now().Unix() + 1_000_000
	if err := c.SetTTL("k", 100, 1.0, 0, far, nil); err != nil {
		b.Fatal(err)
	}
	if warmClock {
		c.StartMaintainer(time.Millisecond)
		defer c.StopMaintainer()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, hit := c.Get("k", 0, 0, nil); !hit {
			b.Fatal("miss")
		}
	}
}

// BenchmarkGetHitTTLSyscallClock is the old path: every expiry check reads
// the wall clock.
func BenchmarkGetHitTTLSyscallClock(b *testing.B) { benchGetHitTTL(b, 0, false) }

// BenchmarkGetHitTTLCoarseClock is the batched path with a maintainer
// keeping the coarse second fresh: no wall-clock read per check.
func BenchmarkGetHitTTLCoarseClock(b *testing.B) { benchGetHitTTL(b, 4096, true) }
