package cache

// Lock-amortized read path (Config.AccessBuffer > 0): a GET hit serves the
// value under a short critical section — lookup, coarse expiry check,
// hit/get counters, value copy — and defers all policy maintenance (LRU
// surgery, segment tracking, window attribution, policy OnHit) by recording
// the access into a lock-free MPSC ring after releasing the engine lock.
// The accumulated records are applied in one lock acquisition ("drain")
// when a ring fills, at the head of the next mutating operation, before any
// state-reporting operation (Stats, Introspect, snapshot, handoff scan,
// re-slab begin, tenant slab donation), or by the background maintainer.
// This is the BP-Wrapper recipe (also Memcached's lru-maintainer design):
// lock traffic amortizes by the batch size while policy decisions stay
// equivalent modulo a bounded reordering window (at most the ring capacity
// of accesses between occurrence and application).
//
// Safety at the seams:
//
//   - Stale references. A drained record's item pointer may have been
//     deleted, evicted (into a ghost entry or the pool), replaced, expired,
//     or re-slabbed since the access. Every record carries the item's CAS
//     token — an incarnation id issued from the engine's monotonic
//     casCounter, zeroed by Item.Reset on release — so the drain skips any
//     record whose item is a ghost or whose token no longer matches. A
//     pooled item reused for a new key carries a strictly newer token, so
//     ABA through the item pool is impossible.
//   - Window rollovers. Deferred policy hits are flushed inside tick()
//     immediately before Policy.OnWindow, so batched hits are attributed to
//     the same window they would reach in immediate mode at drain time.
//   - Re-slab transitions. beginReslabLocked drains first, and records
//     published during a transition drain through the era-aware
//     touchResident; policy hits are suppressed exactly as on the immediate
//     path (the policy is quiesced).
//   - Reporting. Every read of deferred counters (winReqs/winMiss,
//     subHits/subMiss, Stats, Introspect, ArbiterValues, snapshots) drains
//     first, so reports never run behind the rings.

import (
	"sync"
	"time"

	"pamakv/internal/accessbuf"
	"pamakv/internal/kv"
)

// numAccessRings is the per-engine ring count; producers spread by key hash
// so concurrent getters rarely contend on one head counter.
const numAccessRings = 4

// BatchHit is one deferred GET hit handed to a BatchRecorder: the resident
// item (revalidated by the engine before batching) and the tracked bottom
// segment it landed in (-1 when untracked).
type BatchHit struct {
	It  *kv.Item
	Seg int
}

// BatchRecorder is optionally implemented by policies that accept deferred
// hits in batches. RecordBatch is called with the engine lock held and must
// be observably equivalent to calling OnHit(h.It, h.Seg) for each entry in
// order — it exists so a policy can amortize per-hit overhead, not to change
// semantics. Policies without it receive the same hits through OnHit.
type BatchRecorder interface {
	RecordBatch(hits []BatchHit)
}

// AccessBufStats reports the deferred-access machinery's counters (zero
// value with Enabled=false when Config.AccessBuffer is 0).
type AccessBufStats struct {
	// Enabled reports batched mode; Rings and RingCap give the layout.
	Enabled bool `json:"enabled"`
	Rings   int  `json:"rings"`
	RingCap int  `json:"ring_cap"`
	// Depth is the instantaneous number of buffered records.
	Depth int `json:"depth"`
	// Drains counts drain passes that applied at least one record; Drained
	// the records applied; MaxBatch the largest single pass.
	Drains   uint64 `json:"drains"`
	Drained  uint64 `json:"drained"`
	MaxBatch uint64 `json:"max_batch"`
	// FullDrains counts drains forced by a producer finding its ring full —
	// the only time the read path waits for the engine lock; LockWaitNs is
	// the total wait it paid there.
	FullDrains uint64 `json:"full_drains"`
	LockWaitNs uint64 `json:"lock_wait_ns"`
	// StaleRefs counts drained records skipped because the item was freed,
	// replaced, or ghosted between access and drain.
	StaleRefs uint64 `json:"stale_refs"`
}

// MergeAccessBufStats folds src into dst (shard fan-in): counters sum,
// layout fields take the max so a mixed group still reports sensibly.
func MergeAccessBufStats(dst *AccessBufStats, src AccessBufStats) {
	dst.Enabled = dst.Enabled || src.Enabled
	if src.Rings > dst.Rings {
		dst.Rings = src.Rings
	}
	if src.RingCap > dst.RingCap {
		dst.RingCap = src.RingCap
	}
	dst.Depth += src.Depth
	dst.Drains += src.Drains
	dst.Drained += src.Drained
	if src.MaxBatch > dst.MaxBatch {
		dst.MaxBatch = src.MaxBatch
	}
	dst.FullDrains += src.FullDrains
	dst.LockWaitNs += src.LockWaitNs
	dst.StaleRefs += src.StaleRefs
}

// accessState is the engine-side half of the machinery; embedded in Cache.
type accessState struct {
	// rings are fixed at New; nil in immediate mode. Producers push without
	// the engine lock; Drain runs only under it.
	rings    []*accessbuf.Ring
	ringMask uint64
	// pendingHits accumulates revalidated hits within one drain pass for a
	// single BatchRecorder call; always empty between drains.
	pendingHits []BatchHit
	// Counters behind AccessBufStats; all mutated under c.mu.
	abDrains, abDrained, abMaxBatch uint64
	abFullDrains, abLockWaitNs      uint64
	abStaleRefs                     uint64

	// maintMu guards maintainer start/stop; maintStop is non-nil while the
	// maintainer goroutine runs.
	maintMu   sync.Mutex
	maintStop chan struct{}
	maintWG   sync.WaitGroup
}

// initAccessBuf wires the rings when cfg.AccessBuffer > 0 (called by New).
func (c *Cache) initAccessBuf(capacity int) {
	if capacity <= 0 {
		return
	}
	c.rings = make([]*accessbuf.Ring, numAccessRings)
	for i := range c.rings {
		c.rings[i] = accessbuf.New(capacity)
	}
	c.ringMask = numAccessRings - 1
	c.pendingHits = make([]BatchHit, 0, numAccessRings*c.rings[0].Cap())
}

// Batched reports whether the engine defers read-path policy maintenance.
func (c *Cache) Batched() bool { return c.rings != nil }

// record publishes one deferred access. Called WITHOUT c.mu held (the fast
// path unlocks first); h is the item's key hash captured under the lock.
// When the target ring is full the producer becomes the drainer: it takes
// the engine lock once and applies everyone's backlog — this is the only
// point where the batched read path waits on the lock, and the wait is
// measured into LockWaitNs.
func (c *Cache) record(h uint64, rec accessbuf.Record) {
	r := c.rings[(h>>32)&c.ringMask]
	for !r.Push(rec) {
		t0 := time.Now()
		c.mu.Lock()
		wait := time.Since(t0)
		c.abFullDrains++
		c.abLockWaitNs += uint64(wait.Nanoseconds())
		c.drainLocked()
		c.mu.Unlock()
	}
}

// buffered returns the approximate backlog across all rings (no lock).
func (c *Cache) buffered() int {
	n := 0
	for _, r := range c.rings {
		n += r.Len()
	}
	return n
}

// drainLocked applies every buffered access record. Caller holds c.mu.
// No-op in immediate mode, and cheap (4 atomic loads) when rings are empty,
// so every mutating/reporting operation calls it unconditionally at entry.
func (c *Cache) drainLocked() {
	if c.rings == nil {
		return
	}
	c.refreshNowLocked()
	n := 0
	for _, r := range c.rings {
		n += r.Drain(c.applyAccessLocked)
	}
	if n == 0 {
		return
	}
	c.flushPolicyHitsLocked()
	c.abDrains++
	c.abDrained += uint64(n)
	if uint64(n) > c.abMaxBatch {
		c.abMaxBatch = uint64(n)
	}
}

// applyAccessLocked replays one deferred access as the immediate path would
// have run it: advance the access clock (which may pump a re-slab step or
// roll the window), then — if the item is still the same incarnation —
// touch recency/segment state and attribute the hit.
func (c *Cache) applyAccessLocked(rec accessbuf.Record) {
	c.tick()
	it := rec.It
	if it.Ghost || it.CAS != rec.CAS {
		c.abStaleRefs++
		return
	}
	seg, acl := c.touchResident(it)
	it.LastAccess = c.clock
	c.winReqs[acl]++
	c.subHits[acl][it.Sub]++
	if c.old == nil {
		c.pendingHits = append(c.pendingHits, BatchHit{It: it, Seg: seg})
	}
}

// flushPolicyHitsLocked hands accumulated hits to the policy — one
// RecordBatch call when the policy batches, a per-hit OnHit loop otherwise.
// Called at the end of a drain pass and by tick() immediately before
// Policy.OnWindow, so deferred hits never straddle a rollover. The slice is
// detached before the calls so policy hooks that re-enter the flush (none
// do today) cannot double-apply.
func (c *Cache) flushPolicyHitsLocked() {
	if len(c.pendingHits) == 0 {
		return
	}
	hits := c.pendingHits
	c.pendingHits = c.pendingHits[:0]
	if br, ok := c.policy.(BatchRecorder); ok {
		br.RecordBatch(hits)
		return
	}
	for i := range hits {
		c.policy.OnHit(hits[i].It, hits[i].Seg)
	}
}

// AccessBufStats snapshots the deferred-access counters. Like every other
// reporting path it drains first, so Drained/StaleRefs include everything
// buffered at the time of the call.
func (c *Cache) AccessBufStats() AccessBufStats {
	if c.rings == nil {
		return AccessBufStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drainLocked()
	return AccessBufStats{
		Enabled:    true,
		Rings:      len(c.rings),
		RingCap:    c.rings[0].Cap(),
		Depth:      c.buffered(),
		Drains:     c.abDrains,
		Drained:    c.abDrained,
		MaxBatch:   c.abMaxBatch,
		FullDrains: c.abFullDrains,
		LockWaitNs: c.abLockWaitNs,
		StaleRefs:  c.abStaleRefs,
	}
}

// ---- Coarse expiry clock ----

// refreshNowLocked re-reads the wall clock into the coarse cache; called
// once per drain so TTL checks on the read path stay syscall-free between
// drains. Engines with an injected Config.Now never populate the cache.
func (c *Cache) refreshNowLocked() {
	if c.cfg.Now != nil {
		return
	}
	c.nowCache.Store(time.Now().Unix())
}

// ---- Background maintainer ----

// StartMaintainer launches the engine's background maintainer goroutine: it
// refreshes the coarse expiry clock and drains idle rings every interval
// (default 10ms), so deferred state is applied even when traffic stops
// below the ring-fill threshold. Idempotent while running; pair with
// StopMaintainer.
func (c *Cache) StartMaintainer(interval time.Duration) {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	c.maintMu.Lock()
	defer c.maintMu.Unlock()
	if c.maintStop != nil {
		return
	}
	if c.cfg.Now == nil {
		c.nowCache.Store(time.Now().Unix())
	}
	stop := make(chan struct{})
	c.maintStop = stop
	c.maintWG.Add(1)
	go func() {
		defer c.maintWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if c.cfg.Now == nil {
					c.nowCache.Store(time.Now().Unix())
				}
				if c.rings != nil && c.buffered() > 0 {
					c.mu.Lock()
					c.drainLocked()
					c.mu.Unlock()
				}
			}
		}
	}()
}

// StopMaintainer stops the maintainer goroutine and waits for it to exit,
// then applies any remaining backlog and resets the coarse clock (so an
// engine without a maintainer falls back to per-check wall-clock reads
// instead of serving TTLs against a frozen timestamp).
func (c *Cache) StopMaintainer() {
	c.maintMu.Lock()
	stop := c.maintStop
	c.maintStop = nil
	c.maintMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	c.maintWG.Wait()
	if c.rings != nil {
		c.mu.Lock()
		c.drainLocked()
		c.mu.Unlock()
	}
	// Reset after the final drain (which refreshes the cache as a side
	// effect); the next drain or maintainer re-warms it.
	c.nowCache.Store(0)
}
