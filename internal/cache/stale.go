package cache

import (
	"pamakv/internal/kv"
)

// The stale buffer retains the bytes of recently dead items — evicted under
// space pressure or reaped by TTL expiry — in a bounded side structure, so a
// read-through server whose backend is failing can degrade to serving a
// recently valid value instead of erroring (serve-stale). It is independent
// of the policy ghost regions: ghosts exist only for policies that request
// them and deliberately drop value bytes; the stale buffer is a pure
// reliability feature gated by Config.StaleValues.
//
// All methods are called with c.mu held unless noted.

// staleOverhead approximates per-entry bookkeeping charged to the buffer
// budget on top of key and value bytes.
const staleOverhead = 64

func staleCost(it *kv.Item) int64 {
	return int64(len(it.Key)+len(it.Value)) + staleOverhead
}

// pushStaleLocked copies a dying item's key, flags, and value into the stale
// buffer, evicting the oldest entries past the byte budget. No-op when the
// buffer is disabled or the item carries no bytes.
func (c *Cache) pushStaleLocked(it *kv.Item) {
	if c.staleIdx == nil || len(it.Value) == 0 {
		return
	}
	e := c.acquire()
	e.Key = it.Key
	e.Hash = it.Hash
	e.Flags = it.Flags
	e.Value = append(e.Value[:0], it.Value...)
	if old := c.staleIdx.Put(e); old != nil {
		c.staleLst.Remove(old)
		c.staleSize -= staleCost(old)
		c.releaseRaw(old)
	}
	c.staleLst.PushFront(e)
	c.staleSize += staleCost(e)
	for c.staleSize > c.cfg.StaleBytes {
		oldest := c.staleLst.PopBack()
		if oldest == nil {
			break
		}
		c.staleIdx.Delete(oldest.Hash, oldest.Key)
		c.staleSize -= staleCost(oldest)
		c.releaseRaw(oldest)
	}
}

// dropStaleLocked forgets any stale copy of key: a fresh store or an
// explicit delete supersedes it.
func (c *Cache) dropStaleLocked(h uint64, key string) {
	if c.staleIdx == nil {
		return
	}
	if e := c.staleIdx.Delete(h, key); e != nil {
		c.staleLst.Remove(e)
		c.staleSize -= staleCost(e)
		c.releaseRaw(e)
	}
}

// flushStaleLocked empties the buffer (flush_all semantics: stale copies of
// flushed data must not survive).
func (c *Cache) flushStaleLocked() {
	if c.staleIdx == nil {
		return
	}
	for e := c.staleLst.PopFront(); e != nil; e = c.staleLst.PopFront() {
		c.staleIdx.Delete(e.Hash, e.Key)
		c.releaseRaw(e)
	}
	c.staleSize = 0
}

// GetStale serves a degraded read: the current value if the key is resident
// (even when expired), else a retained copy from the stale buffer. It does
// not touch LRU state, does not count as a Get, and never read-throughs —
// it exists for the server's serve-stale-on-backend-failure mode. The
// returned bool reports whether anything could be served.
func (c *Cache) GetStale(key string, buf []byte) (val []byte, flags uint32, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.cfg.StoreValues {
		return buf, 0, false
	}
	h := kv.HashString(key)
	if it := c.index.Get(h, key); it != nil {
		c.stats.StaleGets++
		return append(buf, it.Value...), it.Flags, true
	}
	if c.staleIdx != nil {
		if e := c.staleIdx.Get(h, key); e != nil {
			c.stats.StaleGets++
			return append(buf, e.Value...), e.Flags, true
		}
	}
	return buf, 0, false
}

// StaleBytes returns the bytes currently held by the stale buffer (tests and
// stats).
func (c *Cache) StaleBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.staleSize
}
