// Package cache implements the slab-class key-value cache engine that all
// allocation policies plug into: a Memcached-style store with per-class slab
// accounting (package slab), per-subclass LRU stacks, optional bottom-region
// segment tracking (package segment), and ghost regions that remember
// recently evicted keys for incoming-value estimation (paper §III).
//
// The engine owns mechanism; policy packages own decisions. A Policy
// declares how stacks are organized (penalty subclass bounds, segments to
// track, ghost depth) and reacts to engine events (hits with segment
// attribution, misses with ghost attribution, inserts, evictions, window
// rollovers). When a SET needs a slot in a full class the engine first
// grabs a free slab if one exists; only when memory is exhausted does it
// delegate to Policy.MakeRoom, which is where the paper's schemes differ.
package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pamakv/internal/accessbuf"
	"pamakv/internal/geom"
	"pamakv/internal/hashtable"
	"pamakv/internal/kv"
	"pamakv/internal/lru"
	"pamakv/internal/penalty"
	"pamakv/internal/rank"
	"pamakv/internal/segment"
	"pamakv/internal/slab"
)

// Sentinel errors returned by Set.
var (
	// ErrTooLarge reports an item exceeding the largest class slot.
	ErrTooLarge = errors.New("cache: item larger than largest slab class")
	// ErrNoSpace reports that no slot could be produced for the item's
	// class (class owns no slabs and nothing can be reallocated).
	ErrNoSpace = errors.New("cache: no space available for class")
)

// TrackerKind selects the segment-tracking implementation.
type TrackerKind int

const (
	// TrackerExact uses the order-statistics ring (ground truth).
	TrackerExact TrackerKind = iota
	// TrackerBloom uses the paper's per-segment Bloom filters.
	TrackerBloom
)

// Config parameterizes the engine.
type Config struct {
	// Geometry is the slab/class layout; zero value means
	// kv.DefaultGeometry.
	Geometry kv.Geometry
	// CacheBytes is the memory budget (must hold >= 1 slab).
	CacheBytes int64
	// StoreValues keeps item bodies; off, the engine is a metadata-only
	// simulator costing a few bytes per item.
	StoreValues bool
	// WindowLen is the value/statistics window in cache accesses
	// (paper: windows are counted in accesses, not wall-clock).
	WindowLen uint64
	// Tracker selects exact or Bloom segment tracking.
	Tracker TrackerKind
	// Now supplies wall-clock unix seconds for TTL expiry; nil uses
	// time.Now. Only consulted for items stored with a TTL.
	Now func() int64
	// StaleValues retains the bytes of recently evicted or expired items
	// in a bounded side buffer so a read-through server can serve them as
	// a degraded response when its backend fails (GetStale). Requires
	// StoreValues.
	StaleValues bool
	// StaleBytes bounds the stale buffer (keys + values + overhead);
	// 0 with StaleValues on defaults to 1 MiB.
	StaleBytes int64
	// Adaptive, when non-nil, turns on the online slab-geometry learner
	// (package geom): the engine feeds it item sizes and applies proposed
	// slot tables through a live re-slab transition (see reslab.go).
	Adaptive *geom.Config
	// Tenant is the id stamped on every item this engine stores (0 =
	// default tenant). Under multi-tenant serving each tenant owns its own
	// engine(s); the tag lets audits prove isolation (see tenant.go).
	Tenant int32
	// AccessBuffer, when > 0, turns on the lock-amortized read path: GET
	// hits record into lock-free access rings of this capacity (rounded up
	// to a power of two) and policy maintenance is applied in batches under
	// one lock acquisition (see accessbuf.go). 0 keeps the immediate path,
	// where every access applies its maintenance inline.
	AccessBuffer int
}

// Stats are engine-level counters; all monotonically increasing.
type Stats struct {
	Gets, Hits, Misses   uint64
	Sets, Deletes        uint64
	Evictions, GhostHits uint64
	Expired              uint64
	// StaleGets counts degraded reads served by GetStale.
	StaleGets         uint64
	TooLarge, NoSpace uint64
	FallbackEvicts    uint64
	WindowRollovers   uint64
	// SlabMigrations counts cross-class slab moves, whatever policy
	// performed them.
	SlabMigrations uint64
	// SlabDonations and SlabReceipts count budget slabs this engine gave
	// to and received from other tenants via the arbiter (tenant.go).
	SlabDonations uint64
	SlabReceipts  uint64
	// Reslabs counts live geometry transitions started; ReslabMoved counts
	// items re-slotted from the outgoing into the target geometry.
	Reslabs     uint64
	ReslabMoved uint64
}

// Policy is an allocation scheme plugged into the engine. Implementations
// live in internal/policy (baselines) and internal/core (PAMA).
type Policy interface {
	// Name labels the policy in reports.
	Name() string
	// SubclassBounds returns penalty edges dividing each class into
	// subclasses (penalty.SubclassBounds for PAMA); nil yields a single
	// subclass per class.
	SubclassBounds() []float64
	// Segments returns how many bottom segments (candidate + reference)
	// the engine must track per stack; 0 disables tracking.
	Segments() int
	// GhostSegments returns the ghost-region depth in segments
	// (receiving + reference); 0 disables ghost regions.
	GhostSegments() int
	// Attach hands the policy its engine; called once by New.
	Attach(c *Cache)
	// MakeRoom must try to produce >= 1 free slot in class via the
	// engine's reallocation primitives. Called with memory exhausted
	// (no free slabs). sub is the subclass of the incoming item.
	MakeRoom(class, sub int)
	// OnHit reports a GET hit and the bottom segment it landed in
	// (-1 when above the tracked region or tracking is off).
	OnHit(it *kv.Item, seg int)
	// OnMiss reports a GET miss. class/sub locate the would-be home of
	// the item (-1 when unknown); ghost is the ghost entry when the key
	// was recently evicted, with ghostSeg its ghost-region segment.
	OnMiss(class, sub int, ghost *kv.Item, ghostSeg int)
	// OnInsert reports a completed SET.
	OnInsert(it *kv.Item)
	// OnEvict reports an eviction (not an explicit delete).
	OnEvict(it *kv.Item)
	// OnWindow fires every WindowLen accesses, before per-window
	// counters reset.
	OnWindow()
}

type subclass struct {
	list  lru.List
	tr    segment.Tracker
	ghost lru.List
	gring *rank.Ring
	gcap  int
}

type class struct {
	spc  int // slots per slab
	subs []subclass
}

// Cache is the engine. All methods are safe for concurrent use; the engine
// serializes internally (cache state is a single logical object — the lock
// is the same design point as Memcached's cache_lock).
type Cache struct {
	mu     sync.Mutex
	cfg    Config
	geom   kv.Geometry
	policy Policy
	slabs  *slab.Manager
	index  *hashtable.Table
	gindex *hashtable.Table

	classes []class
	bounds  []float64

	clock   uint64
	winTick uint64
	winReqs []uint64
	winMiss []uint64

	stats Stats
	// subHits/subMiss attribute GETs to (class, penalty subclass) and
	// moves counts slab migrations by [src][dst] class — the introspection
	// matrices behind Introspect (see introspect.go).
	subHits [][]uint64
	subMiss [][]uint64
	moves   [][]uint64
	pool    []*kv.Item
	// casCounter issues unique CAS tokens; incremented per store.
	casCounter uint64

	// holes[cl] is the current era's internal fragmentation: bytes of slot
	// capacity occupied by resident items but unused (slot size − item
	// size, summed). The "memory holes" the adaptive geometry attacks.
	holes []int64
	// totalBudget pins the slab budget from New; during a re-slab
	// transition it is split between the two eras' managers but their sum
	// never changes.
	totalBudget int
	// gen is the geometry generation; items with Gen != gen while old is
	// non-nil still live in the outgoing era (see reslab.go).
	gen uint32
	// old is the outgoing era of a live re-slab transition; nil when no
	// transition is active.
	old *oldEra
	// learner proposes better slot tables from observed sizes (nil when
	// Config.Adaptive is off); stepItems bounds migration work per op.
	learner   *geom.Learner
	stepItems int

	// Stale buffer (see stale.go); staleIdx nil when disabled.
	staleIdx  *hashtable.Table
	staleLst  lru.List
	staleSize int64

	// accessState is the lock-amortized read path (accessbuf.go): the MPSC
	// access rings, the drain counters, and the background maintainer.
	accessState
	// nowCache is the coarse expiry clock in unix seconds: refreshed by
	// drains and the maintainer, read lock-free by expired(). 0 means cold
	// (fall back to a wall-clock read per check).
	nowCache atomic.Int64
}

// New builds an engine bound to the given policy.
func New(cfg Config, pol Policy) (*Cache, error) {
	if pol == nil {
		return nil, errors.New("cache: nil policy")
	}
	if cfg.Geometry.IsZero() {
		cfg.Geometry = kv.DefaultGeometry()
	}
	if cfg.WindowLen == 0 {
		cfg.WindowLen = 100_000
	}
	if cfg.StaleValues && !cfg.StoreValues {
		return nil, errors.New("cache: StaleValues requires StoreValues")
	}
	if cfg.StaleValues && cfg.StaleBytes == 0 {
		cfg.StaleBytes = 1 << 20
	}
	mgr, err := slab.NewManager(cfg.Geometry, cfg.CacheBytes)
	if err != nil {
		return nil, err
	}
	c := &Cache{
		cfg:    cfg,
		geom:   cfg.Geometry,
		policy: pol,
		slabs:  mgr,
		index:  hashtable.New(1 << 12),
		gindex: hashtable.New(1 << 10),
		bounds: pol.SubclassBounds(),
	}
	nsub := len(c.bounds)
	if nsub == 0 {
		nsub = 1
	}
	c.classes = buildClasses(c.geom, nsub, pol.Segments(), pol.GhostSegments(), cfg.Tracker, true)
	c.resetAttribution(nsub)
	c.holes = make([]int64, c.geom.NumClasses)
	c.totalBudget = mgr.TotalSlabs()
	if cfg.StaleValues {
		c.staleIdx = hashtable.New(1 << 8)
	}
	if cfg.Adaptive != nil {
		acfg := cfg.Adaptive.Normalize()
		c.learner = geom.NewLearner(acfg, c.geom.MaxItemSize())
		c.stepItems = acfg.StepItems
	} else {
		c.stepItems = 64
	}
	c.initAccessBuf(cfg.AccessBuffer)
	pol.Attach(c)
	return c, nil
}

// buildClasses constructs the per-class subclass stacks for a geometry.
// withTrackers=false defers segment trackers (a re-slab transition's target
// era runs tracker-less until finishReslabLocked rebuilds them, because the
// exact tracker's rank order only stays valid for MRU-end insertions).
func buildClasses(g kv.Geometry, nsub, nseg, gseg int, tracker TrackerKind, withTrackers bool) []class {
	classes := make([]class, g.NumClasses)
	for ci := range classes {
		cl := &classes[ci]
		cl.spc = g.SlotsPerSlab(ci)
		cl.subs = make([]subclass, nsub)
		for si := range cl.subs {
			s := &cl.subs[si]
			if nseg > 0 && withTrackers {
				switch tracker {
				case TrackerBloom:
					s.tr = segment.NewBloom(&s.list, cl.spc, nseg)
				default:
					s.tr = segment.NewExact(&s.list, cl.spc, nseg)
				}
			}
			if gseg > 0 {
				s.gcap = gseg * cl.spc
				s.gring = rank.New(256)
			}
		}
	}
	return classes
}

// resetAttribution (re)allocates the window counters and attribution
// matrices for the current geometry's dimensions.
func (c *Cache) resetAttribution(nsub int) {
	nc := c.geom.NumClasses
	c.winReqs = make([]uint64, nc)
	c.winMiss = make([]uint64, nc)
	c.subHits = make([][]uint64, nc)
	c.subMiss = make([][]uint64, nc)
	c.moves = make([][]uint64, nc)
	for ci := range c.subHits {
		c.subHits[ci] = make([]uint64, nsub)
		c.subMiss[ci] = make([]uint64, nsub)
		c.moves[ci] = make([]uint64, nc)
	}
}

// ---- Public request API ----

// Get looks key up. sizeHint/penHint describe the item a miss would fetch
// (replayers know them; servers pass 0) and only affect per-class miss
// attribution. When StoreValues is on and the key hits, the value is
// appended to buf.
func (c *Cache) Get(key string, sizeHint int, penHint float64, buf []byte) (val []byte, flags uint32, hit bool) {
	h := kv.HashString(key)
	c.mu.Lock()
	if c.rings != nil {
		// Batched read path: a live hit is served under this short critical
		// section and its policy maintenance deferred into an access ring
		// (published after unlock — producers never touch rings while
		// holding the lock). Misses and expired finds fall through to the
		// immediate path below, draining first so attribution ordering
		// matches the accesses that preceded them.
		if it := c.index.Get(h, key); it != nil && !c.expired(it) {
			c.stats.Gets++
			c.stats.Hits++
			if c.cfg.StoreValues {
				buf = append(buf, it.Value...)
			}
			flags = it.Flags
			rec := accessbuf.Record{It: it, CAS: it.CAS, Pen: it.Penalty}
			c.mu.Unlock()
			c.record(h, rec)
			return buf, flags, true
		}
		c.drainLocked()
	}
	defer c.mu.Unlock()
	c.tick()
	c.stats.Gets++
	if it := c.index.Get(h, key); it != nil && c.expired(it) {
		// Lazy expiry, as in Memcached: the GET that finds a stale
		// item reaps it and proceeds as a miss (no ghost entry — the
		// value is dead, not a victim of space pressure).
		c.pushStaleLocked(it)
		c.unlinkResident(it)
		c.release(it)
		c.stats.Expired++
	}
	if it := c.index.Get(h, key); it != nil {
		seg, acl := c.touchResident(it)
		it.LastAccess = c.clock
		c.winReqs[acl]++
		c.stats.Hits++
		c.subHits[acl][it.Sub]++
		c.polOnHit(it, seg)
		if c.cfg.StoreValues {
			buf = append(buf, it.Value...)
		}
		return buf, it.Flags, true
	}
	c.stats.Misses++
	var g *kv.Item
	gseg := -1
	clHint, subHint := -1, -1
	if g = c.gindex.Get(h, key); g != nil {
		c.stats.GhostHits++
		clHint, subHint = g.Class, g.Sub
		gseg = c.ghostSeg(g)
	} else if sizeHint > 0 {
		clHint = c.geom.ClassFor(sizeHint)
		subHint = c.subclassFor(penHint)
	}
	if clHint >= 0 {
		c.winReqs[clHint]++
		c.winMiss[clHint]++
		if subHint >= 0 {
			c.subMiss[clHint][subHint]++
		}
	}
	c.polOnMiss(clHint, subHint, g, gseg)
	return buf, 0, false
}

// Set inserts or replaces key with the given logical size, miss penalty,
// client flags, and (when StoreValues) value bytes. The item never expires;
// use SetTTL for expiring items.
func (c *Cache) Set(key string, size int, pen float64, flags uint32, value []byte) error {
	return c.SetTTL(key, size, pen, flags, 0, value)
}

// SetTTL is Set with an expiry deadline in unix seconds (0 = never).
func (c *Cache) SetTTL(key string, size int, pen float64, flags uint32, expireAt int64, value []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drainLocked()
	c.tick()
	c.stats.Sets++
	cl := c.geom.ClassFor(size)
	if cl < 0 {
		c.stats.TooLarge++
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, size)
	}
	sub := c.subclassFor(pen)
	h := kv.HashString(key)

	// A refill supersedes any ghost memory or stale copy of the key.
	if g := c.gindex.Get(h, key); g != nil {
		c.dropGhost(g)
	}
	c.dropStaleLocked(h, key)
	// Replace semantics: free the old incarnation first (it may live in a
	// different class if the size changed).
	if old := c.index.Get(h, key); old != nil {
		c.unlinkResident(old)
		c.release(old)
	}

	if c.slabs.FreeSlots(cl) == 0 {
		if c.slabs.FreeSlabs() > 0 {
			// Growth phase: grant a free slab, as Memcached does.
			_ = c.slabs.AllocSlab(cl)
		} else if c.old != nil {
			// Mid-transition the policy is quiesced; free budget by
			// draining the outgoing era instead.
			c.reclaimOldForSpaceLocked()
			if c.slabs.FreeSlabs() > 0 {
				_ = c.slabs.AllocSlab(cl)
			}
		} else {
			c.policy.MakeRoom(cl, sub)
		}
	}
	if c.slabs.FreeSlots(cl) == 0 {
		// Policy produced nothing; keep the engine live by evicting
		// within the class, or fail if the class owns nothing.
		if !c.evictOneInClassLocked(cl) {
			c.stats.NoSpace++
			return fmt.Errorf("%w %d", ErrNoSpace, cl)
		}
		c.stats.FallbackEvicts++
	}
	if err := c.slabs.UseSlot(cl); err != nil {
		// Unreachable: a slot was just guaranteed.
		return err
	}
	it := c.acquire()
	it.Key = key
	it.Hash = h
	it.Size = size
	it.Penalty = pen
	it.Flags = flags
	it.Tenant = c.cfg.Tenant
	it.Class = cl
	it.Sub = sub
	it.LastAccess = c.clock
	it.ExpireAt = expireAt
	c.casCounter++
	it.CAS = c.casCounter
	if c.cfg.StoreValues {
		it.Value = append(it.Value[:0], value...)
	}
	it.Gen = c.gen
	c.holes[cl] += int64(c.geom.SlotSize(cl) - size)
	c.index.Put(it)
	s := &c.classes[cl].subs[sub]
	s.list.PushFront(it)
	if s.tr != nil {
		s.tr.Insert(it)
	}
	c.polOnInsert(it)
	if c.learner != nil {
		c.learner.Observe(size)
		if c.old == nil {
			if g, ok := c.learner.Propose(c.geom); ok {
				_ = c.beginReslabLocked(g)
			}
		}
	}
	return nil
}

// Delete removes key if resident (and forgets any ghost memory of it). It
// reports whether a resident item was removed.
func (c *Cache) Delete(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drainLocked()
	c.tick()
	c.stats.Deletes++
	h := kv.HashString(key)
	if g := c.gindex.Get(h, key); g != nil {
		c.dropGhost(g)
	}
	c.dropStaleLocked(h, key)
	it := c.index.Get(h, key)
	if it == nil {
		return false
	}
	c.unlinkResident(it)
	c.release(it)
	return true
}

// Flush evicts every resident item and drops all ghost memory (the
// protocol's flush_all). Slab ownership is retained, matching Memcached,
// whose flush does not return slabs to the global pool.
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drainLocked()
	for ci := range c.classes {
		cl := &c.classes[ci]
		for si := range cl.subs {
			s := &cl.subs[si]
			for it := s.list.PopFront(); it != nil; it = s.list.PopFront() {
				if s.tr != nil {
					s.tr.Remove(it)
				}
				c.index.Delete(it.Hash, it.Key)
				_ = c.slabs.FreeSlot(ci)
				c.polOnRemove(it)
				c.release(it)
			}
			if s.gcap > 0 {
				for g := s.ghost.PopFront(); g != nil; g = s.ghost.PopFront() {
					s.gring.Remove(g)
					c.gindex.Delete(g.Hash, g.Key)
					c.releaseRaw(g)
				}
			}
		}
		c.holes[ci] = 0
	}
	if c.old != nil {
		// A flush ends any transition instantly: drop the outgoing era's
		// items too, then hand its whole budget over and finish.
		o := c.old
		for ci := range o.classes {
			for si := range o.classes[ci].subs {
				s := &o.classes[ci].subs[si]
				for it := s.list.PopFront(); it != nil; it = s.list.PopFront() {
					c.index.Delete(it.Hash, it.Key)
					_ = o.mgr.FreeSlot(ci)
					c.release(it)
				}
			}
			o.holes[ci] = 0
		}
		o.items = 0
		c.finishReslabLocked()
	}
	c.flushStaleLocked()
}

// Contains reports residency without touching LRU state or stats (tests and
// tools).
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.index.Get(kv.HashString(key), key) != nil
}

// ---- Policy-facing primitives ----
// These are called from Policy hooks, which run with c.mu held.

// TakeFreeSlab grants a free slab to class cl, reporting success.
func (c *Cache) TakeFreeSlab(cl int) bool {
	if c.slabs.FreeSlabs() == 0 {
		return false
	}
	return c.slabs.AllocSlab(cl) == nil
}

// EvictBottom evicts the LRU item of (class, sub) into its ghost region,
// reporting success.
func (c *Cache) EvictBottom(class, sub int) bool {
	return c.evictBottomLocked(class, sub) != nil
}

// EvictOneInClass evicts one item from the most populated subclass of the
// class, reporting success.
func (c *Cache) EvictOneInClass(class int) bool {
	return c.evictOneInClassLocked(class)
}

// MigrateSlab evicts the candidate segment of (fromClass, fromSub) — and,
// if that stack runs dry, bottoms of the class's other stacks — until the
// donor class has one slab's worth of free slots, then moves the slab to
// toClass. This is the paper's "discard the virtual slab's items in their
// physical slabs, compact, and hand over an empty slab".
func (c *Cache) MigrateSlab(fromClass, fromSub, toClass int) error {
	if fromClass == toClass {
		return fmt.Errorf("cache: migrate within class %d", fromClass)
	}
	spc := c.classes[fromClass].spc
	sub := fromSub
	for c.slabs.FreeSlots(fromClass) < spc {
		if c.evictBottomLocked(fromClass, sub) == nil {
			next := c.largestSub(fromClass)
			if next < 0 {
				return fmt.Errorf("cache: class %d cannot free a slab", fromClass)
			}
			sub = next
		}
	}
	if err := c.slabs.MoveSlab(fromClass, toClass); err != nil {
		return err
	}
	c.moves[fromClass][toClass]++
	return nil
}

// ---- Policy-facing accessors ----

// NumClasses returns the class count.
func (c *Cache) NumClasses() int { return c.geom.NumClasses }

// NumSubclasses returns subclasses per class.
func (c *Cache) NumSubclasses() int { return len(c.classes[0].subs) }

// SlotsPerSlab returns the slot yield of one slab in class cl.
func (c *Cache) SlotsPerSlab(cl int) int { return c.classes[cl].spc }

// Slabs returns slabs owned by class cl.
func (c *Cache) Slabs(cl int) int { return c.slabs.Slabs(cl) }

// FreeSlabs returns the unassigned slab count.
func (c *Cache) FreeSlabs() int { return c.slabs.FreeSlabs() }

// TotalSlabsBudget returns the cache's total slab budget. Like the other
// accessors here it reads without the lock; concurrent readers (the tenant
// arbiter, stats paths) must use SlabBudget instead.
func (c *Cache) TotalSlabsBudget() int { return c.slabs.TotalSlabs() }

// SlabBudget returns the total slab budget under the cache lock — safe to
// call concurrently with traffic and with slab donations.
func (c *Cache) SlabBudget() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.slabs.TotalSlabs()
}

// FreeSlots returns unoccupied slots in class cl.
func (c *Cache) FreeSlots(cl int) int { return c.slabs.FreeSlots(cl) }

// UsedSlots returns occupied slots in class cl.
func (c *Cache) UsedSlots(cl int) int { return c.slabs.Used(cl) }

// SubLen returns the resident population of (class, sub).
func (c *Cache) SubLen(class, sub int) int { return c.classes[class].subs[sub].list.Len() }

// SubTail returns the LRU item of (class, sub), or nil (read-only peek).
func (c *Cache) SubTail(class, sub int) *kv.Item { return c.classes[class].subs[sub].list.Back() }

// Clock returns the access clock.
func (c *Cache) Clock() uint64 { return c.clock }

// WindowReqs returns requests attributed to class cl in the current window.
func (c *Cache) WindowReqs(cl int) uint64 { return c.winReqs[cl] }

// WindowMisses returns misses attributed to class cl in the current window.
func (c *Cache) WindowMisses(cl int) uint64 { return c.winMiss[cl] }

// Geometry returns the class geometry.
func (c *Cache) Geometry() kv.Geometry { return c.geom }

// PolicyName returns the attached policy's name.
func (c *Cache) PolicyName() string { return c.policy.Name() }

// ---- Snapshots (taken under the lock; callers may race with traffic) ----

// SnapshotSlabs returns per-class slab counts.
func (c *Cache) SnapshotSlabs() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.slabs.Snapshot()
}

// SnapshotSubSlabs returns, for class cl, each subclass's slab-equivalent
// share (resident items / slots per slab) — Fig. 4's per-subclass series.
func (c *Cache) SnapshotSubSlabs(cl int) []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drainLocked()
	out := make([]float64, len(c.classes[cl].subs))
	for i := range c.classes[cl].subs {
		out[i] = float64(c.classes[cl].subs[i].list.Len()) / float64(c.classes[cl].spc)
	}
	return out
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drainLocked()
	st := c.stats
	st.SlabMigrations = c.slabs.Migrations
	return st
}

// Items returns the resident item count.
func (c *Cache) Items() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.index.Len()
}

// CheckInvariants validates engine-wide accounting; tests call it between
// operation batches.
func (c *Cache) CheckInvariants() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drainLocked()
	if err := c.slabs.CheckInvariants(); err != nil {
		return err
	}
	total := 0
	for ci := range c.classes {
		n := 0
		var holes int64
		for si := range c.classes[ci].subs {
			l := &c.classes[ci].subs[si].list
			n += l.Len()
			l.AscendFromBack(func(it *kv.Item) bool {
				holes += int64(c.geom.SlotSize(ci) - it.Size)
				return true
			})
		}
		if n != c.slabs.Used(ci) {
			return fmt.Errorf("cache: class %d lists hold %d items, slab accounting says %d",
				ci, n, c.slabs.Used(ci))
		}
		if holes != c.holes[ci] {
			return fmt.Errorf("cache: class %d holes gauge %d, lists say %d",
				ci, c.holes[ci], holes)
		}
		total += n
	}
	budget := c.slabs.TotalSlabs()
	if o := c.old; o != nil {
		if err := o.mgr.CheckInvariants(); err != nil {
			return err
		}
		budget += o.mgr.TotalSlabs()
		oldTotal := 0
		for ci := range o.classes {
			n := 0
			var holes int64
			for si := range o.classes[ci].subs {
				l := &o.classes[ci].subs[si].list
				n += l.Len()
				l.AscendFromBack(func(it *kv.Item) bool {
					holes += int64(o.geom.SlotSize(ci) - it.Size)
					return true
				})
			}
			if n != o.mgr.Used(ci) {
				return fmt.Errorf("cache: old-era class %d lists hold %d items, slab accounting says %d",
					ci, n, o.mgr.Used(ci))
			}
			if holes != o.holes[ci] {
				return fmt.Errorf("cache: old-era class %d holes gauge %d, lists say %d",
					ci, o.holes[ci], holes)
			}
			oldTotal += n
		}
		if oldTotal != o.items {
			return fmt.Errorf("cache: old era holds %d items, counter says %d", oldTotal, o.items)
		}
		total += oldTotal
	}
	if budget != c.totalBudget {
		return fmt.Errorf("cache: era budgets sum to %d slabs, cache owns %d", budget, c.totalBudget)
	}
	if total != c.index.Len() {
		return fmt.Errorf("cache: lists hold %d items, index holds %d", total, c.index.Len())
	}
	if c.staleIdx != nil {
		if c.staleLst.Len() != c.staleIdx.Len() {
			return fmt.Errorf("cache: stale list holds %d entries, stale index holds %d",
				c.staleLst.Len(), c.staleIdx.Len())
		}
		if c.staleSize < 0 || (c.staleLst.Len() == 0 && c.staleSize != 0) {
			return fmt.Errorf("cache: stale byte accounting off (%d bytes, %d entries)",
				c.staleSize, c.staleLst.Len())
		}
	}
	return nil
}

// ---- Internals ----

// expired reports whether it carries a TTL that has passed. An injected
// Config.Now always wins (test clocks); otherwise the coarse cached second
// (refreshed by drains and the maintainer) keeps the wall-clock read off
// the per-item path, falling back to a live read only while the cache is
// cold. Staleness is bounded by the drain/maintainer cadence — well under
// the protocol's one-second TTL granularity.
func (c *Cache) expired(it *kv.Item) bool {
	if it.ExpireAt == 0 {
		return false
	}
	if now := c.cfg.Now; now != nil {
		return it.ExpireAt <= now()
	}
	if cached := c.nowCache.Load(); cached != 0 {
		return it.ExpireAt <= cached
	}
	return it.ExpireAt <= time.Now().Unix()
}

func (c *Cache) subclassFor(pen float64) int {
	if len(c.bounds) == 0 {
		return 0
	}
	return penalty.SubclassFor(pen, c.bounds)
}

func (c *Cache) tick() {
	c.clock++
	if c.old != nil {
		// Pump the live re-slab transition: a bounded slice of migration
		// work per operation, Redis-rehash style.
		c.reslabStepLocked(c.stepItems)
	}
	c.winTick++
	if c.winTick >= c.cfg.WindowLen {
		c.stats.WindowRollovers++
		if c.old == nil {
			// Deferred hits must reach the policy before the window closes,
			// or a drain straddling a rollover would attribute them to the
			// wrong window.
			c.flushPolicyHitsLocked()
			c.policy.OnWindow()
		}
		for ci := range c.classes {
			for si := range c.classes[ci].subs {
				if tr := c.classes[ci].subs[si].tr; tr != nil {
					tr.Rollover()
				}
			}
			c.winReqs[ci] = 0
			c.winMiss[ci] = 0
		}
		c.winTick = 0
	}
}

// unlinkResident detaches a resident item from list, tracker, index, and
// slot accounting, without ghost bookkeeping. It handles items in either
// era of a live re-slab transition and notifies a RemovalObserver policy.
func (c *Cache) unlinkResident(it *kv.Item) {
	e := c.eraFor(it)
	s := &e.classes[it.Class].subs[it.Sub]
	if s.tr != nil {
		s.tr.Remove(it)
	}
	s.list.Remove(it)
	c.index.Delete(it.Hash, it.Key)
	_ = e.mgr.FreeSlot(it.Class)
	e.holes[it.Class] -= int64(e.geom.SlotSize(it.Class) - it.Size)
	c.polOnRemove(it)
	if e.old {
		c.old.items--
		if c.old.items == 0 {
			c.harvestOldLocked()
			c.finishReslabLocked()
		}
	}
}

func (c *Cache) evictBottomLocked(class, sub int) *kv.Item {
	s := &c.classes[class].subs[sub]
	it := s.list.Back()
	if it == nil {
		return nil
	}
	c.evictResidentLocked(it, s)
	return it
}

// evictResidentLocked performs full eviction bookkeeping for a current-era
// resident: stale push, unlink, stats, policy notification, ghost entry.
func (c *Cache) evictResidentLocked(it *kv.Item, s *subclass) {
	c.pushStaleLocked(it)
	if s.tr != nil {
		s.tr.Remove(it)
	}
	s.list.Remove(it)
	c.index.Delete(it.Hash, it.Key)
	_ = c.slabs.FreeSlot(it.Class)
	c.holes[it.Class] -= int64(c.geom.SlotSize(it.Class) - it.Size)
	c.stats.Evictions++
	c.polOnEvict(it)
	c.pushGhost(it)
}

func (c *Cache) evictOneInClassLocked(class int) bool {
	sub := c.largestSub(class)
	if sub < 0 {
		return false
	}
	return c.evictBottomLocked(class, sub) != nil
}

func (c *Cache) largestSub(class int) int {
	best, bestN := -1, 0
	for si := range c.classes[class].subs {
		if n := c.classes[class].subs[si].list.Len(); n > bestN {
			best, bestN = si, n
		}
	}
	return best
}

// pushGhost turns an evicted item into a ghost entry (key + penalty only),
// or releases it when ghost regions are disabled.
func (c *Cache) pushGhost(it *kv.Item) {
	s := &c.classes[it.Class].subs[it.Sub]
	if s.gcap == 0 {
		c.release(it)
		return
	}
	it.Ghost = true
	it.Value = nil
	if old := c.gindex.Put(it); old != nil {
		// A stale ghost with the same key: drop the old entry.
		s2 := &c.classes[old.Class].subs[old.Sub]
		s2.gring.Remove(old)
		s2.ghost.Remove(old)
		c.releaseRaw(old)
	}
	s.ghost.PushFront(it)
	if s.gring.Full() {
		s.gring.Reset()
		s.ghost.AscendFromBack(func(x *kv.Item) bool {
			if x != it {
				s.gring.Insert(x)
			}
			return true
		})
	}
	s.gring.Insert(it)
	for s.ghost.Len() > s.gcap {
		oldest := s.ghost.PopBack()
		s.gring.Remove(oldest)
		c.gindex.Delete(oldest.Hash, oldest.Key)
		c.releaseRaw(oldest)
	}
}

// ghostSeg returns the ghost-region segment of g: 0 is the receiving
// segment (most recent evictions).
func (c *Cache) ghostSeg(g *kv.Item) int {
	s := &c.classes[g.Class].subs[g.Sub]
	if s.gring == nil {
		return -1
	}
	posFromFront := s.ghost.Len() - 1 - s.gring.Rank(g)
	return posFromFront / c.classes[g.Class].spc
}

// dropGhost removes a ghost entry entirely.
func (c *Cache) dropGhost(g *kv.Item) {
	s := &c.classes[g.Class].subs[g.Sub]
	s.gring.Remove(g)
	s.ghost.Remove(g)
	c.gindex.Delete(g.Hash, g.Key)
	c.releaseRaw(g)
}

func (c *Cache) acquire() *kv.Item {
	if n := len(c.pool); n > 0 {
		it := c.pool[n-1]
		c.pool = c.pool[:n-1]
		return it
	}
	return &kv.Item{}
}

// release returns a detached item to the pool.
func (c *Cache) release(it *kv.Item) { c.releaseRaw(it) }

func (c *Cache) releaseRaw(it *kv.Item) {
	if len(c.pool) >= 8192 {
		return
	}
	it.Reset()
	c.pool = append(c.pool, it)
}
