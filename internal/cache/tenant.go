package cache

import (
	"fmt"

	"pamakv/internal/penalty"
)

// This file holds the engine surface used by the multi-tenant arbiter
// (package tenant). Under multi-tenant serving each tenant owns its own
// engine(s); the arbiter compares marginal slab utilities across tenants and
// transfers one slab's worth of budget at a time from the tenant losing the
// least to the tenant gaining the most (Memshare's arbitrated pool, priced
// with PAMA's incoming/outgoing slab values).

// TenantValuer is optionally implemented by policies (PAMA) that can price
// slabs for cross-tenant arbitration. All methods are called with the
// engine lock held, like every other Policy hook.
type TenantValuer interface {
	// CheapestOutgoing returns the cheapest candidate slab the cache could
	// give up — its (class, subclass) and the expected penalty lost per
	// window — or ok=false when no class can free a slab while keeping one.
	CheapestOutgoing() (class, sub int, v float64, ok bool)
	// BestIncoming returns the largest expected penalty saved per window
	// were the cache granted one more slab, over all (class, subclass).
	BestIncoming() float64
	// NoteDonated reports that a slab's worth of (class, sub) was evicted
	// and the slab left the cache, so the policy can roll its outgoing
	// value accumulators exactly as it does for an internal migration.
	NoteDonated(class, sub int)
}

// ArbiterValues returns this engine's marginal slab utilities: incoming is
// the expected penalty saved per window if the engine gained one slab,
// outgoing the expected penalty lost per window if it gave one up, and
// canDonate whether DonateSlab could currently succeed. When the attached
// policy does not implement TenantValuer, a crude window-statistics
// estimate is substituted so mixed-policy fleets still arbitrate.
func (c *Cache) ArbiterValues() (incoming, outgoing float64, canDonate bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drainLocked()
	if tv, ok := c.policy.(TenantValuer); ok {
		incoming = tv.BestIncoming()
		if _, _, v, vok := tv.CheapestOutgoing(); vok {
			outgoing, canDonate = v, true
		}
	} else {
		incoming, outgoing, canDonate = c.fallbackValuesLocked()
	}
	if c.slabs.FreeSlabs() > 0 {
		// A free slab costs nothing to give away.
		outgoing, canDonate = 0, true
	}
	if c.old != nil || c.totalBudget <= 1 {
		// Mid-re-slab the budget is split across two eras; and the last
		// slab keeps the engine servable.
		canDonate = false
	}
	return incoming, outgoing, canDonate
}

// fallbackValuesLocked prices slabs for policies without a TenantValuer:
// incoming is the window's miss volume priced at the default unknown
// penalty, outgoing the window's hit volume amortized over the slab budget.
// Both are crude, but they are in the same units as PAMA's values and
// comparable between two fallback tenants.
func (c *Cache) fallbackValuesLocked() (incoming, outgoing float64, canDonate bool) {
	var reqs, misses uint64
	for cl := 0; cl < c.geom.NumClasses; cl++ {
		reqs += c.winReqs[cl]
		misses += c.winMiss[cl]
	}
	incoming = float64(misses) * penalty.DefaultUnknown
	if n := c.slabs.TotalSlabs(); n > 0 {
		outgoing = float64(reqs-misses) * penalty.DefaultUnknown / float64(n)
	}
	_, _, canDonate = c.donationVictimLocked()
	return incoming, outgoing, canDonate
}

// donationVictimLocked picks the (class, sub) to drain when a slab must
// leave the cache and no free slab exists: the policy's cheapest outgoing
// candidate if it prices slabs, else a class that can already release a
// slab for free, else the class with the most slabs (its most populated
// subclass). ok=false when no class owns a releasable slab.
func (c *Cache) donationVictimLocked() (class, sub int, ok bool) {
	if tv, isValuer := c.policy.(TenantValuer); isValuer {
		cl, s, _, vok := tv.CheapestOutgoing()
		return cl, s, vok
	}
	bestC, bestS, bestSlabs := -1, -1, 0
	for cl := 0; cl < c.geom.NumClasses; cl++ {
		n := c.slabs.Slabs(cl)
		if n == 0 {
			continue
		}
		if c.slabs.FreeSlots(cl) >= c.classes[cl].spc {
			return cl, c.largestSub(cl), true
		}
		if n > bestSlabs {
			bestC, bestSlabs = cl, n
		}
	}
	if bestC < 0 {
		return 0, 0, false
	}
	if bestS = c.largestSub(bestC); bestS < 0 {
		// Slabs but no resident items: free slots cover the release.
		bestS = 0
	}
	return bestC, bestS, true
}

// DonateSlab removes one slab from this engine's budget so the arbiter can
// grant it to another tenant: it frees a slab (evicting the donation
// victim's candidate region if none is free, exactly as MigrateSlab drains
// a donor class) and shrinks the budget by one. The engine keeps at least
// one slab, and donation is refused mid-re-slab.
func (c *Cache) DonateSlab() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drainLocked()
	if c.old != nil {
		return fmt.Errorf("cache: slab donation refused during re-slab transition")
	}
	if c.totalBudget <= 1 {
		return fmt.Errorf("cache: cannot donate the last slab")
	}
	if c.slabs.FreeSlabs() == 0 {
		cl, sub, ok := c.donationVictimLocked()
		if !ok {
			return fmt.Errorf("cache: no class can free a slab")
		}
		spc := c.classes[cl].spc
		for c.slabs.FreeSlots(cl) < spc {
			if c.evictBottomLocked(cl, sub) == nil {
				next := c.largestSub(cl)
				if next < 0 {
					return fmt.Errorf("cache: class %d cannot free a slab", cl)
				}
				sub = next
			}
		}
		if err := c.slabs.ReleaseSlab(cl); err != nil {
			return err
		}
		if tv, isValuer := c.policy.(TenantValuer); isValuer {
			tv.NoteDonated(cl, sub)
		}
	}
	if err := c.slabs.ShrinkBudget(1); err != nil {
		return err
	}
	c.totalBudget--
	c.stats.SlabDonations++
	return nil
}

// ReceiveSlab grows this engine's budget by one slab granted by the
// arbiter. The slab lands in the free pool and is claimed by whichever
// class next needs a slot, through the engine's normal growth path.
func (c *Cache) ReceiveSlab() {
	c.mu.Lock()
	defer c.mu.Unlock()
	_ = c.slabs.GrowBudget(1)
	c.totalBudget++
	c.stats.SlabReceipts++
}
