package cache

import (
	"errors"
	"fmt"
	"math"
	"strconv"

	"pamakv/internal/accessbuf"
	"pamakv/internal/kv"
)

// Errors for conditional and numeric operations.
var (
	// ErrNotStored reports a failed add/replace precondition.
	ErrNotStored = errors.New("cache: precondition failed, not stored")
	// ErrCASMismatch reports a compare-and-set against a changed item.
	ErrCASMismatch = errors.New("cache: cas token mismatch")
	// ErrNotNumeric reports incr/decr on a non-numeric value.
	ErrNotNumeric = errors.New("cache: value is not a number")
)

// SetMode selects the precondition of a conditional store.
type SetMode int

const (
	// ModeSet stores unconditionally.
	ModeSet SetMode = iota
	// ModeAdd stores only when the key is absent.
	ModeAdd
	// ModeReplace stores only when the key is present.
	ModeReplace
	// ModeCAS stores only when the resident item's CAS token matches.
	ModeCAS
)

// GetWithCAS is Get returning the item's CAS token as well. The token
// changes on every store of the key.
func (c *Cache) GetWithCAS(key string, buf []byte) (val []byte, flags uint32, cas uint64, hit bool) {
	h := kv.HashString(key)
	c.mu.Lock()
	if c.rings != nil {
		// Batched read path; mirrors Get (see cache.go and accessbuf.go).
		if it := c.index.Get(h, key); it != nil && !c.expired(it) {
			c.stats.Gets++
			c.stats.Hits++
			if c.cfg.StoreValues {
				buf = append(buf, it.Value...)
			}
			flags, cas = it.Flags, it.CAS
			rec := accessbuf.Record{It: it, CAS: it.CAS, Pen: it.Penalty}
			c.mu.Unlock()
			c.record(h, rec)
			return buf, flags, cas, true
		}
		c.drainLocked()
	}
	defer c.mu.Unlock()
	c.tick()
	c.stats.Gets++
	it := c.index.Get(h, key)
	if it != nil && c.expired(it) {
		c.pushStaleLocked(it)
		c.unlinkResident(it)
		c.release(it)
		c.stats.Expired++
		it = nil
	}
	if it == nil {
		c.stats.Misses++
		var g *kv.Item
		gseg := -1
		if g = c.gindex.Get(h, key); g != nil {
			c.stats.GhostHits++
			gseg = c.ghostSeg(g)
		}
		c.polOnMiss(-1, -1, g, gseg)
		return buf, 0, 0, false
	}
	seg, acl := c.touchResident(it)
	it.LastAccess = c.clock
	c.winReqs[acl]++
	c.stats.Hits++
	c.subHits[acl][it.Sub]++
	c.polOnHit(it, seg)
	if c.cfg.StoreValues {
		buf = append(buf, it.Value...)
	}
	return buf, it.Flags, it.CAS, true
}

// SetMode stores key under a precondition. For ModeCAS, cas must be the
// token returned by GetWithCAS. Returns ErrNotStored (add/replace) or
// ErrCASMismatch when the precondition fails.
func (c *Cache) SetMode(key string, mode SetMode, cas uint64, size int, pen float64, flags uint32, expireAt int64, value []byte) error {
	c.mu.Lock()
	present, tok := c.peekLocked(key)
	switch mode {
	case ModeAdd:
		if present {
			c.mu.Unlock()
			return fmt.Errorf("%w: key exists", ErrNotStored)
		}
	case ModeReplace:
		if !present {
			c.mu.Unlock()
			return fmt.Errorf("%w: key absent", ErrNotStored)
		}
	case ModeCAS:
		if !present {
			c.mu.Unlock()
			return fmt.Errorf("%w: key absent", ErrNotStored)
		}
		if tok != cas {
			c.mu.Unlock()
			return ErrCASMismatch
		}
	}
	c.mu.Unlock()
	// The precondition check and the store are two critical sections; a
	// concurrent writer could race between them, exactly as in Memcached,
	// where the item can change between the cas check and the swap only
	// if the server applied another write first — the token comparison
	// above is the linearization point for correctness of the reply.
	return c.SetTTL(key, size, pen, flags, expireAt, value)
}

// peekLocked reports presence and CAS token without touching LRU state.
// Caller holds c.mu.
func (c *Cache) peekLocked(key string) (bool, uint64) {
	h := kv.HashString(key)
	it := c.index.Get(h, key)
	if it == nil || c.expired(it) {
		return false, 0
	}
	return true, it.CAS
}

// Touch updates the expiry deadline of a resident item without disturbing
// its LRU position, reporting whether the key was found.
func (c *Cache) Touch(key string, expireAt int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drainLocked()
	c.tick()
	h := kv.HashString(key)
	it := c.index.Get(h, key)
	if it == nil || c.expired(it) {
		return false
	}
	it.ExpireAt = expireAt
	return true
}

// ReapExpired proactively removes up to max expired items (Memcached's
// lazy expiry only reaps items that GETs stumble on; a periodic reap keeps
// slots of never-again-touched expired items from lingering). It returns
// the number of items removed. max <= 0 scans everything.
func (c *Cache) ReapExpired(max int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drainLocked()
	var victims []*kv.Item
	c.index.Range(func(it *kv.Item) bool {
		if c.expired(it) {
			victims = append(victims, it)
			if max > 0 && len(victims) >= max {
				return false
			}
		}
		return true
	})
	for _, it := range victims {
		c.pushStaleLocked(it)
		c.unlinkResident(it)
		c.release(it)
		c.stats.Expired++
	}
	return len(victims)
}

// ScanKeys reports every live (non-expired) resident item's key, miss
// penalty, size, and absolute expiry to fn; fn returning false stops the
// walk. Unlike RangeItems (a policy-facing primitive that assumes the
// lock is already held) this is safe to call from outside the engine — it
// is the membership layer's handoff scan: on a ring change the old owner
// collects (key, penalty) pairs here, sorts them highest penalty first,
// and streams them to the new owner. The engine lock is held only while
// the tuples are snapshotted, not while fn runs, so per-key callback work
// (the handoff scan computes ring routing for every resident) never
// stalls cache operations for the duration of the walk — that stall
// would land exactly at cutover time, when latency matters most. The
// consequence: fn sees a point-in-time snapshot (a key may be gone by the
// time fn sees it; the handoff re-reads at send time anyway) and fn may
// call back into the engine. The key strings are the engine's interned
// keys and may be retained.
func (c *Cache) ScanKeys(fn func(key string, pen float64, size int, expireAt int64) bool) {
	type entry struct {
		key      string
		pen      float64
		size     int
		expireAt int64
	}
	c.mu.Lock()
	c.drainLocked()
	snap := make([]entry, 0, 1024)
	c.index.Range(func(it *kv.Item) bool {
		if !c.expired(it) {
			snap = append(snap, entry{it.Key, it.Penalty, it.Size, it.ExpireAt})
		}
		return true
	})
	c.mu.Unlock()
	for _, e := range snap {
		if !fn(e.key, e.pen, e.size, e.expireAt) {
			return
		}
	}
}

// Delta implements incr/decr: the resident value must be an ASCII unsigned
// integer; it is adjusted by delta (clamped at zero for decrements, wrapping
// per Memcached for increments) and rewritten in place. Requires
// StoreValues.
func (c *Cache) Delta(key string, delta uint64, decr bool) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drainLocked()
	c.tick()
	h := kv.HashString(key)
	it := c.index.Get(h, key)
	if it == nil || c.expired(it) {
		return 0, ErrNotStored
	}
	cur, ok := parseUintValue(it.Value)
	if !ok {
		return 0, ErrNotNumeric
	}
	var next uint64
	if decr {
		if delta > cur {
			next = 0 // Memcached clamps decrements at zero
		} else {
			next = cur - delta
		}
	} else {
		next = cur + delta // wraps at 2^64, as Memcached does
	}
	it.Value = strconv.AppendUint(it.Value[:0], next, 10)
	return next, nil
}

// parseUintValue parses an ASCII unsigned decimal directly from the value
// bytes — the incr/decr hot path must not materialize a string per request.
// Semantics match strconv.ParseUint(string(b), 10, 64): empty, signed,
// non-digit, and overflowing inputs are rejected.
func parseUintValue(b []byte) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if n > (math.MaxUint64-d)/10 {
			return 0, false
		}
		n = n*10 + d
	}
	return n, true
}
