package cache

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"pamakv/internal/kv"
)

// Snapshot format: magic, then one record per resident item in recency
// order (least recently used first), so replaying the records through the
// normal Set path rebuilds both contents and LRU ordering. Ghost regions
// and window statistics are deliberately not persisted — they are
// short-horizon signals that a restarted cache re-learns within a window.
var snapMagic = [8]byte{'P', 'A', 'M', 'A', 'S', 'N', 'P', '1'}

// SaveSnapshot writes every resident item to w, least recently used first.
// The cache stays locked for the duration; callers snapshot at quiet
// moments (shutdown) or accept the pause.
func (c *Cache) SaveSnapshot(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Deferred recency touches change LRU order; apply them so the saved
	// stack order matches what the immediate path would have persisted.
	c.drainLocked()
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(snapMagic[:]); err != nil {
		return fmt.Errorf("cache: writing snapshot header: %w", err)
	}
	var scratch [8]byte
	writeU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:], v)
		_, err := bw.Write(scratch[:])
		return err
	}
	n := uint64(c.index.Len())
	if err := writeU64(n); err != nil {
		return err
	}
	write := func(it *kv.Item) error {
		if err := writeU64(uint64(len(it.Key))); err != nil {
			return err
		}
		if _, err := bw.WriteString(it.Key); err != nil {
			return err
		}
		if err := writeU64(uint64(it.Size)); err != nil {
			return err
		}
		if err := writeU64(uint64(it.Flags)); err != nil {
			return err
		}
		if err := writeU64(uint64(it.ExpireAt)); err != nil {
			return err
		}
		if err := writeU64(binaryFloat(it.Penalty)); err != nil {
			return err
		}
		if err := writeU64(uint64(len(it.Value))); err != nil {
			return err
		}
		_, err := bw.Write(it.Value)
		return err
	}
	// LRU-first within each stack; stacks are interleaved class by class,
	// which preserves the ordering that matters (within-stack recency).
	for ci := range c.classes {
		for si := range c.classes[ci].subs {
			var err error
			c.classes[ci].subs[si].list.AscendFromBack(func(it *kv.Item) bool {
				err = write(it)
				return err == nil
			})
			if err != nil {
				return fmt.Errorf("cache: writing snapshot record: %w", err)
			}
		}
	}
	return bw.Flush()
}

// LoadSnapshot replays a snapshot through the normal store path. It is
// meant for a freshly constructed cache; loading into a non-empty cache
// merges (snapshot items become most recent). Items that no longer fit
// (smaller cache than at save time) fall out through ordinary eviction.
func (c *Cache) LoadSnapshot(r io.Reader) error {
	br := bufio.NewReaderSize(r, 1<<16)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return fmt.Errorf("cache: reading snapshot header: %w", err)
	}
	if got != snapMagic {
		return fmt.Errorf("cache: bad snapshot magic %q", got[:])
	}
	var scratch [8]byte
	readU64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(scratch[:]), nil
	}
	n, err := readU64()
	if err != nil {
		return fmt.Errorf("cache: reading snapshot count: %w", err)
	}
	var keyBuf, valBuf []byte
	for i := uint64(0); i < n; i++ {
		klen, err := readU64()
		if err != nil {
			return fmt.Errorf("cache: truncated snapshot at record %d: %w", i, err)
		}
		if klen > 1<<20 {
			return fmt.Errorf("cache: implausible key length %d in snapshot", klen)
		}
		if uint64(cap(keyBuf)) < klen {
			keyBuf = make([]byte, klen)
		}
		keyBuf = keyBuf[:klen]
		if _, err := io.ReadFull(br, keyBuf); err != nil {
			return fmt.Errorf("cache: truncated snapshot key: %w", err)
		}
		size, err := readU64()
		if err != nil {
			return err
		}
		flags, err := readU64()
		if err != nil {
			return err
		}
		expire, err := readU64()
		if err != nil {
			return err
		}
		penBits, err := readU64()
		if err != nil {
			return err
		}
		vlen, err := readU64()
		if err != nil {
			return err
		}
		if vlen > uint64(c.geom.MaxItemSize()) {
			return fmt.Errorf("cache: implausible value length %d in snapshot", vlen)
		}
		if uint64(cap(valBuf)) < vlen {
			valBuf = make([]byte, vlen)
		}
		valBuf = valBuf[:vlen]
		if _, err := io.ReadFull(br, valBuf); err != nil {
			return fmt.Errorf("cache: truncated snapshot value: %w", err)
		}
		err = c.SetTTL(string(keyBuf), int(size), floatBinary(penBits), uint32(flags), int64(expire), valBuf)
		if err != nil && !errors.Is(err, ErrNoSpace) && !errors.Is(err, ErrTooLarge) {
			return err
		}
	}
	return nil
}

// binaryFloat and floatBinary round-trip a float64 through its IEEE bits.
func binaryFloat(f float64) uint64    { return math.Float64bits(f) }
func floatBinary(bits uint64) float64 { return math.Float64frombits(bits) }
