package cache

import (
	"errors"
	"fmt"
	"testing"
)

func newOpsCache(t *testing.T) *Cache {
	t.Helper()
	c, err := New(Config{
		Geometry:    smallGeom(),
		CacheBytes:  4 * 4096,
		StoreValues: true,
		WindowLen:   1 << 50,
	}, &nullPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGetWithCASTokens(t *testing.T) {
	c := newOpsCache(t)
	c.Set("k", 10, 0.01, 0, []byte("v1"))
	_, _, cas1, hit := c.GetWithCAS("k", nil)
	if !hit || cas1 == 0 {
		t.Fatalf("cas1=%d hit=%v", cas1, hit)
	}
	// A read does not change the token.
	_, _, cas2, _ := c.GetWithCAS("k", nil)
	if cas2 != cas1 {
		t.Fatal("reads must not change the CAS token")
	}
	// A write does.
	c.Set("k", 10, 0.01, 0, []byte("v2"))
	_, _, cas3, _ := c.GetWithCAS("k", nil)
	if cas3 == cas1 {
		t.Fatal("writes must change the CAS token")
	}
	if _, _, _, hit := c.GetWithCAS("absent", nil); hit {
		t.Fatal("phantom CAS hit")
	}
}

func TestGetWithCASValueCopied(t *testing.T) {
	c := newOpsCache(t)
	c.Set("k", 5, 0.01, 0, []byte("hello"))
	val, _, _, _ := c.GetWithCAS("k", nil)
	val[0] = 'X'
	val2, _, _, _ := c.GetWithCAS("k", nil)
	if string(val2) != "hello" {
		t.Fatal("GetWithCAS returned aliased value")
	}
}

func TestSetModeAdd(t *testing.T) {
	c := newOpsCache(t)
	if err := c.SetMode("k", ModeAdd, 0, 10, 0.01, 0, 0, []byte("a")); err != nil {
		t.Fatal(err)
	}
	err := c.SetMode("k", ModeAdd, 0, 10, 0.01, 0, 0, []byte("b"))
	if !errors.Is(err, ErrNotStored) {
		t.Fatalf("second add: %v", err)
	}
	val, _, _ := c.Get("k", 0, 0, nil)
	if string(val) != "a" {
		t.Fatal("add overwrote existing value")
	}
}

func TestSetModeReplace(t *testing.T) {
	c := newOpsCache(t)
	if err := c.SetMode("k", ModeReplace, 0, 10, 0.01, 0, 0, []byte("x")); !errors.Is(err, ErrNotStored) {
		t.Fatalf("replace of absent key: %v", err)
	}
	c.Set("k", 10, 0.01, 0, []byte("a"))
	if err := c.SetMode("k", ModeReplace, 0, 10, 0.01, 0, 0, []byte("b")); err != nil {
		t.Fatal(err)
	}
	val, _, _ := c.Get("k", 0, 0, nil)
	if string(val) != "b" {
		t.Fatal("replace did not store")
	}
}

func TestSetModeCAS(t *testing.T) {
	c := newOpsCache(t)
	if err := c.SetMode("k", ModeCAS, 1, 10, 0.01, 0, 0, nil); !errors.Is(err, ErrNotStored) {
		t.Fatalf("cas on absent key: %v", err)
	}
	c.Set("k", 10, 0.01, 0, []byte("v1"))
	_, _, cas, _ := c.GetWithCAS("k", nil)
	if err := c.SetMode("k", ModeCAS, cas+99, 10, 0.01, 0, 0, []byte("bad")); !errors.Is(err, ErrCASMismatch) {
		t.Fatalf("stale cas: %v", err)
	}
	if err := c.SetMode("k", ModeCAS, cas, 10, 0.01, 0, 0, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	val, _, _ := c.Get("k", 0, 0, nil)
	if string(val) != "v2" {
		t.Fatal("cas did not store")
	}
	// The winning cas bumped the token; replaying the old token fails.
	if err := c.SetMode("k", ModeCAS, cas, 10, 0.01, 0, 0, []byte("v3")); !errors.Is(err, ErrCASMismatch) {
		t.Fatalf("replayed cas: %v", err)
	}
}

func TestTouch(t *testing.T) {
	now := int64(1000)
	c, err := New(Config{
		Geometry:    smallGeom(),
		CacheBytes:  4 * 4096,
		StoreValues: true,
		WindowLen:   1 << 50,
		Now:         func() int64 { return now },
	}, &nullPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	c.SetTTL("k", 10, 0.01, 0, 1010, []byte("v"))
	if !c.Touch("k", 2000) {
		t.Fatal("touch of resident key failed")
	}
	now = 1500 // would have expired without the touch
	if _, _, hit := c.Get("k", 0, 0, nil); !hit {
		t.Fatal("touched item expired")
	}
	if c.Touch("absent", 2000) {
		t.Fatal("touch of absent key reported success")
	}
	now = 3000
	if c.Touch("k", 4000) {
		t.Fatal("touch of expired key reported success")
	}
}

func TestDeltaIncrDecr(t *testing.T) {
	c := newOpsCache(t)
	c.Set("n", 10, 0.01, 0, []byte("10"))
	if v, err := c.Delta("n", 5, false); err != nil || v != 15 {
		t.Fatalf("incr: %d %v", v, err)
	}
	if v, err := c.Delta("n", 20, true); err != nil || v != 0 {
		t.Fatalf("decr should clamp at 0: %d %v", v, err)
	}
	val, _, _ := c.Get("n", 0, 0, nil)
	if string(val) != "0" {
		t.Fatalf("stored value = %q", val)
	}
	if _, err := c.Delta("missing", 1, false); !errors.Is(err, ErrNotStored) {
		t.Fatalf("delta on absent key: %v", err)
	}
	c.Set("s", 10, 0.01, 0, []byte("pears"))
	if _, err := c.Delta("s", 1, false); !errors.Is(err, ErrNotNumeric) {
		t.Fatalf("delta on text: %v", err)
	}
}

func TestReapExpired(t *testing.T) {
	now := int64(1000)
	c, err := New(Config{
		Geometry:    smallGeom(),
		CacheBytes:  4 * 4096,
		StoreValues: true,
		WindowLen:   1 << 50,
		Now:         func() int64 { return now },
	}, &nullPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		exp := int64(0)
		if i%2 == 0 {
			exp = 1500 // half the items expire at t=1500
		}
		c.SetTTL(kvKey(i), 50, 0.01, 0, exp, nil)
	}
	if n := c.ReapExpired(0); n != 0 {
		t.Fatalf("reaped %d before expiry", n)
	}
	now = 2000
	if n := c.ReapExpired(3); n != 3 {
		t.Fatalf("bounded reap removed %d, want 3", n)
	}
	if n := c.ReapExpired(0); n != 7 {
		t.Fatalf("full reap removed %d, want remaining 7", n)
	}
	if c.Items() != 10 {
		t.Fatalf("items = %d, want the 10 immortal ones", c.Items())
	}
	if c.Stats().Expired != 10 {
		t.Fatalf("Expired = %d", c.Stats().Expired)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func kvKey(i int) string { return string(rune('a'+i/26)) + string(rune('a'+i%26)) }

func TestDeltaWraps(t *testing.T) {
	c := newOpsCache(t)
	c.Set("n", 20, 0.01, 0, []byte("18446744073709551615")) // 2^64-1
	if v, err := c.Delta("n", 1, false); err != nil || v != 0 {
		t.Fatalf("incr should wrap: %d %v", v, err)
	}
}

// TestDeltaAllocs pins the incr/decr hot path at zero heap allocations: the
// value is parsed directly from its resident bytes and rewritten in place.
// The delta alternates so the digit width never changes and the rewrite
// always fits the value's existing capacity.
func TestDeltaAllocs(t *testing.T) {
	c := newOpsCache(t)
	c.Set("n", 10, 0.01, 0, []byte("500"))
	allocs := testing.AllocsPerRun(2000, func() {
		if _, err := c.Delta("n", 1, false); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Delta("n", 1, true); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.5 {
		t.Fatalf("Delta allocates %.2f objects per incr/decr pair, want 0", allocs)
	}
}

// TestDeltaParseEdges pins parseUintValue against strconv semantics: signs,
// blanks, and overflow are ErrNotNumeric, exact MaxUint64 is accepted.
func TestDeltaParseEdges(t *testing.T) {
	c := newOpsCache(t)
	for _, bad := range []string{"", " 1", "+1", "-1", "1 ", "1x", "18446744073709551616"} {
		c.Set("e", 30, 0.01, 0, []byte(bad))
		if _, err := c.Delta("e", 1, false); !errors.Is(err, ErrNotNumeric) {
			t.Fatalf("Delta on %q: %v, want ErrNotNumeric", bad, err)
		}
	}
}

// TestScanKeysRunsCallbackOutsideEngineLock: the handoff scan computes
// ring routing inside fn, so fn must run with the engine unlocked — a
// re-entrant engine call from fn (deadlock before the snapshot split)
// is the sharpest way to pin that.
func TestScanKeysRunsCallbackOutsideEngineLock(t *testing.T) {
	c := newOpsCache(t)
	for i := 0; i < 8; i++ {
		c.Set(fmt.Sprintf("s%d", i), 10, float64(i), 0, []byte("v"))
	}
	seen := 0
	c.ScanKeys(func(key string, pen float64, size int, expireAt int64) bool {
		seen++
		// Re-entrant engine ops: these deadlock if ScanKeys still holds
		// c.mu while calling fn.
		if _, _, hit := c.Get(key, 10, pen, nil); !hit {
			t.Errorf("scan-reported key %q missing", key)
		}
		return key != "s3" // early stop must also work
	})
	if seen == 0 || seen > 8 {
		t.Fatalf("scanned %d keys", seen)
	}
}
