// Package hashtable implements the chained hash index that maps keys to
// cached items, in the style of Memcached's item hash table: power-of-two
// bucket array, intrusive chains through kv.Item.HNext, and doubling growth
// once chains average two items.
//
// The index stores *kv.Item directly, so a lookup that hits returns the live
// cache item with no further indirection, and delete/insert never allocate.
package hashtable

import "pamakv/internal/kv"

// Table is a chained hash index over kv.Items. The zero value is unusable;
// call New.
type Table struct {
	buckets []*kv.Item
	mask    uint64
	n       int
}

// New returns a table pre-sized for capHint items.
func New(capHint int) *Table {
	b := 16
	for b*2 < capHint {
		b <<= 1
	}
	return &Table{buckets: make([]*kv.Item, b), mask: uint64(b - 1)}
}

// Len returns the number of stored items.
func (t *Table) Len() int { return t.n }

// Buckets returns the current bucket count (diagnostics and tests).
func (t *Table) Buckets() int { return len(t.buckets) }

// Get returns the item with the given hash and key, or nil.
func (t *Table) Get(hash uint64, key string) *kv.Item {
	for it := t.buckets[hash&t.mask]; it != nil; it = it.HNext {
		if it.Hash == hash && it.Key == key {
			return it
		}
	}
	return nil
}

// Put inserts it, replacing and returning any existing item with the same
// key (nil if none). it.Hash must already be set.
func (t *Table) Put(it *kv.Item) *kv.Item {
	if old := t.remove(it.Hash, it.Key); old != nil {
		t.insert(it)
		return old
	}
	if t.n >= 2*len(t.buckets) {
		t.grow()
	}
	t.insert(it)
	return nil
}

// Delete removes and returns the item with the given key, or nil.
func (t *Table) Delete(hash uint64, key string) *kv.Item {
	return t.remove(hash, key)
}

// Range calls fn for every stored item until fn returns false. The table
// must not be mutated during the walk.
func (t *Table) Range(fn func(*kv.Item) bool) {
	for _, head := range t.buckets {
		for it := head; it != nil; it = it.HNext {
			if !fn(it) {
				return
			}
		}
	}
}

func (t *Table) insert(it *kv.Item) {
	b := it.Hash & t.mask
	it.HNext = t.buckets[b]
	t.buckets[b] = it
	t.n++
}

func (t *Table) remove(hash uint64, key string) *kv.Item {
	b := hash & t.mask
	var prev *kv.Item
	for it := t.buckets[b]; it != nil; it = it.HNext {
		if it.Hash == hash && it.Key == key {
			if prev == nil {
				t.buckets[b] = it.HNext
			} else {
				prev.HNext = it.HNext
			}
			it.HNext = nil
			t.n--
			return it
		}
		prev = it
	}
	return nil
}

func (t *Table) grow() {
	old := t.buckets
	t.buckets = make([]*kv.Item, len(old)*2)
	t.mask = uint64(len(t.buckets) - 1)
	t.n = 0
	for _, head := range old {
		for it := head; it != nil; {
			next := it.HNext
			t.insert(it)
			it = next
		}
	}
}
