package hashtable

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"pamakv/internal/kv"
)

func item(key string) *kv.Item {
	return &kv.Item{Key: key, Hash: kv.HashString(key)}
}

func TestGetMissing(t *testing.T) {
	tb := New(4)
	if tb.Get(kv.HashString("nope"), "nope") != nil {
		t.Fatal("Get on empty table should return nil")
	}
}

func TestPutGetDelete(t *testing.T) {
	tb := New(4)
	a := item("a")
	if tb.Put(a) != nil {
		t.Fatal("first Put should not replace")
	}
	if got := tb.Get(a.Hash, "a"); got != a {
		t.Fatal("Get did not return stored item")
	}
	if got := tb.Delete(a.Hash, "a"); got != a {
		t.Fatal("Delete did not return stored item")
	}
	if tb.Get(a.Hash, "a") != nil || tb.Len() != 0 {
		t.Fatal("item still present after Delete")
	}
	if tb.Delete(a.Hash, "a") != nil {
		t.Fatal("second Delete should return nil")
	}
}

func TestPutReplaces(t *testing.T) {
	tb := New(4)
	a1, a2 := item("a"), item("a")
	tb.Put(a1)
	if got := tb.Put(a2); got != a1 {
		t.Fatal("Put should return replaced item")
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tb.Len())
	}
	if got := tb.Get(a2.Hash, "a"); got != a2 {
		t.Fatal("Get should return the replacement")
	}
}

func TestGrowthPreservesItems(t *testing.T) {
	tb := New(4)
	const n = 5000
	for i := 0; i < n; i++ {
		tb.Put(item(fmt.Sprintf("key-%d", i)))
	}
	if tb.Len() != n {
		t.Fatalf("Len = %d, want %d", tb.Len(), n)
	}
	if tb.Buckets() < n/2 {
		t.Fatalf("table did not grow: %d buckets for %d items", tb.Buckets(), n)
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%d", i)
		if got := tb.Get(kv.HashString(k), k); got == nil || got.Key != k {
			t.Fatalf("lost key %q after growth", k)
		}
	}
}

func TestCollidingHashesDistinctKeys(t *testing.T) {
	// Force two different keys into the same chain with identical Hash
	// values: the table must distinguish them by key comparison.
	tb := New(4)
	a := &kv.Item{Key: "a", Hash: 12345}
	b := &kv.Item{Key: "b", Hash: 12345}
	tb.Put(a)
	tb.Put(b)
	if tb.Get(12345, "a") != a || tb.Get(12345, "b") != b {
		t.Fatal("hash-colliding keys confused")
	}
	if tb.Delete(12345, "a") != a {
		t.Fatal("failed to delete first collider")
	}
	if tb.Get(12345, "b") != b {
		t.Fatal("deleting one collider removed the other")
	}
}

func TestRangeVisitsAll(t *testing.T) {
	tb := New(4)
	want := map[string]bool{}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%d", i)
		want[k] = true
		tb.Put(item(k))
	}
	got := map[string]bool{}
	tb.Range(func(it *kv.Item) bool {
		got[it.Key] = true
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d items, want %d", len(got), len(want))
	}
}

func TestRangeEarlyStop(t *testing.T) {
	tb := New(4)
	for i := 0; i < 10; i++ {
		tb.Put(item(fmt.Sprintf("k%d", i)))
	}
	count := 0
	tb.Range(func(*kv.Item) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("Range visited %d after stop, want 3", count)
	}
}

// TestAgainstMapModel mirrors random operations in a builtin map and checks
// full agreement, including Len.
func TestAgainstMapModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := New(4)
		model := map[string]*kv.Item{}
		keyOf := func() string { return fmt.Sprintf("k%d", rng.Intn(200)) }
		for op := 0; op < 1000; op++ {
			k := keyOf()
			h := kv.HashString(k)
			switch rng.Intn(3) {
			case 0:
				it := item(k)
				old := tb.Put(it)
				if (old != nil) != (model[k] != nil) || (old != nil && old != model[k]) {
					return false
				}
				model[k] = it
			case 1:
				if tb.Get(h, k) != model[k] {
					return false
				}
			case 2:
				old := tb.Delete(h, k)
				if old != model[k] {
					return false
				}
				delete(model, k)
			}
			if tb.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTableGet(b *testing.B) {
	tb := New(1 << 16)
	keys := make([]string, 1<<16)
	hashes := make([]uint64, 1<<16)
	for i := range keys {
		keys[i] = kv.KeyString(uint64(i))
		hashes[i] = kv.HashString(keys[i])
		tb.Put(&kv.Item{Key: keys[i], Hash: hashes[i]})
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j := i & (1<<16 - 1)
		if tb.Get(hashes[j], keys[j]) == nil {
			b.Fatal("miss")
		}
	}
}
