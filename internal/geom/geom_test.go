package geom

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"pamakv/internal/kv"
)

func TestHistogramObserveAndBuckets(t *testing.T) {
	h := NewHistogram(1 << 20)
	if h.MaxItem() != 1<<20 {
		t.Fatalf("MaxItem = %d", h.MaxItem())
	}
	sizes := []int{1, 8, 9, 64, 65, 100, 1 << 20, 1<<20 + 5, -3, 0}
	for _, s := range sizes {
		h.Observe(s)
	}
	if h.Total() != uint64(len(sizes)) {
		t.Fatalf("Total = %d, want %d", h.Total(), len(sizes))
	}
	if h.MaxObserved() != 1<<20 {
		t.Fatalf("MaxObserved = %d (oversize must clamp to MaxItem)", h.MaxObserved())
	}
	// Edges strictly increasing, last == maxItem.
	prev := 0
	for _, e := range h.edges {
		if e <= prev {
			t.Fatalf("edges not strictly increasing: %d after %d", e, prev)
		}
		prev = e
	}
	if prev != 1<<20 {
		t.Fatalf("last edge %d != maxItem", prev)
	}
}

func TestSolveSinglePointDistribution(t *testing.T) {
	// All items are 100 bytes: the best table has a boundary right at the
	// bucket containing 100, so per-item waste is tiny.
	h := NewHistogram(4096)
	for i := 0; i < 10000; i++ {
		h.Observe(100)
	}
	g, err := h.Solve(8, 4096, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.MaxItemSize() != 4096 {
		t.Fatalf("final slot %d, want forced 4096", g.MaxItemSize())
	}
	cl := g.ClassFor(100)
	if cl < 0 {
		t.Fatal("100-byte item does not fit")
	}
	// The chosen slot for 100-byte items must waste < 10% (one histogram
	// bucket of slack), far better than the power-of-two 128-byte slot's 28%.
	if slot := g.SlotSize(cl); slot > 110 {
		t.Fatalf("slot for 100-byte items is %d, want <= 110", slot)
	}
	if w := h.PredictedWaste(g); w > 10 {
		t.Fatalf("predicted waste %f bytes/item, want <= 10", w)
	}
}

func TestSolveBeatsPowerOfTwoOnUniformSizes(t *testing.T) {
	// Uniform sizes in [1, 64 KiB]: power-of-two wastes ~25% of each item;
	// a learned 15-class table should cut that substantially.
	h := NewHistogram(1 << 20)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200000; i++ {
		h.Observe(1 + rng.Intn(1<<16))
	}
	p2 := kv.DefaultGeometry()
	learned, err := h.Solve(p2.NumClasses, p2.SlabSize, p2.MaxItemSize())
	if err != nil {
		t.Fatal(err)
	}
	if err := learned.Validate(); err != nil {
		t.Fatal(err)
	}
	wp2 := h.PredictedWaste(p2)
	wl := h.PredictedWaste(learned)
	if wl >= wp2*0.8 {
		t.Fatalf("learned waste %.1f not >=20%% below power-of-two %.1f", wl, wp2)
	}
}

func TestSolveEmptyHistogramFallback(t *testing.T) {
	h := NewHistogram(1 << 20)
	g, err := h.Solve(15, 1<<20, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.MaxItemSize() != 1<<20 {
		t.Fatalf("fallback max slot %d", g.MaxItemSize())
	}
}

func TestSolveRespectsClassBudget(t *testing.T) {
	h := NewHistogram(1 << 16)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50000; i++ {
		h.Observe(1 + rng.Intn(1<<16))
	}
	for _, budget := range []int{1, 2, 3, 8, 40} {
		g, err := h.Solve(budget, 1<<20, 1<<16)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if g.NumClasses > budget {
			t.Fatalf("budget %d: got %d classes", budget, g.NumClasses)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if g.MaxItemSize() != 1<<16 {
			t.Fatalf("budget %d: max slot %d", budget, g.MaxItemSize())
		}
	}
}

func TestSolveMoreClassesNeverWorse(t *testing.T) {
	h := NewHistogram(1 << 16)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 30000; i++ {
		h.Observe(1 + rng.Intn(1<<14))
	}
	prev := -1.0
	for _, budget := range []int{1, 2, 4, 8, 16} {
		g, err := h.Solve(budget, 1<<20, 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		w := h.PredictedWaste(g)
		if prev >= 0 && w > prev+1e-9 {
			t.Fatalf("budget %d waste %.3f worse than smaller budget %.3f", budget, w, prev)
		}
		prev = w
	}
}

func TestDecayHalves(t *testing.T) {
	h := NewHistogram(1024)
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	h.Decay()
	if h.Total() != 50 {
		t.Fatalf("Total after decay = %d, want 50", h.Total())
	}
	if h.MaxObserved() != 100 {
		t.Fatal("Decay must keep MaxObserved")
	}
}

func TestLearnerProposalCadenceAndGain(t *testing.T) {
	cfg := Config{MinSamples: 100, Every: 200, MinGain: 0.10}
	cur := kv.DefaultGeometry()
	l := NewLearner(cfg, cur.MaxItemSize())

	// Not enough observations yet: no proposal.
	for i := 0; i < 150; i++ {
		l.Observe(100)
	}
	if _, ok := l.Propose(cur); ok {
		t.Fatal("proposed before Every observations")
	}
	for i := 0; i < 200; i++ {
		l.Observe(100)
	}
	g, ok := l.Propose(cur)
	if !ok {
		t.Fatal("expected a proposal: all-100-byte items waste 28 B each under power-of-two")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.MaxItemSize() != cur.MaxItemSize() {
		t.Fatalf("proposal changed MaxItemSize to %d", g.MaxItemSize())
	}
	// Immediately after, the cadence gate is closed again.
	if _, ok := l.Propose(cur); ok {
		t.Fatal("cadence did not reset after proposal")
	}

	// When the current geometry is already the learned one, a fresh learner
	// over the same data must not flap back.
	l2 := NewLearner(cfg, cur.MaxItemSize())
	for i := 0; i < 300; i++ {
		l2.Observe(100)
	}
	if g2, ok := l2.Propose(g); ok {
		t.Fatalf("flapped from learned geometry to %+v", g2)
	}
}

// mustFit asserts the geometry fits every size in the list.
func mustFit(t *testing.T, g kv.Geometry, sizes []int) {
	t.Helper()
	for _, s := range sizes {
		c := g.ClassFor(s)
		if c < 0 {
			t.Fatalf("size %d does not fit geometry (max %d)", s, g.MaxItemSize())
		}
		if s > g.SlotSize(c) {
			t.Fatalf("size %d assigned slot %d", s, g.SlotSize(c))
		}
	}
}

func FuzzBoundarySolver(f *testing.F) {
	// Seeds: empty, single bucket, max-item spike, and fig-trace-like size
	// mixes (the workload generator draws uniform within power-of-two bands,
	// so band edges ± jitter are representative).
	seed := func(sizes ...uint32) []byte {
		b := make([]byte, 4*len(sizes))
		for i, s := range sizes {
			binary.LittleEndian.PutUint32(b[4*i:], s)
		}
		return b
	}
	f.Add(uint16(15), seed())
	f.Add(uint16(1), seed(100))
	f.Add(uint16(8), seed(1<<20, 1<<20, 1<<20))
	f.Add(uint16(15), seed(64, 65, 100, 128, 129, 333, 1024, 4096, 65536))
	f.Add(uint16(3), seed(80, 80, 80, 80, 200, 200, 1000))
	f.Add(uint16(0), seed(1, 2, 3))
	f.Add(uint16(40), seed(512, 700, 900, 1100, 1500, 2100, 3000, 4200, 6000))

	f.Fuzz(func(t *testing.T, budget uint16, data []byte) {
		classes := int(budget%62) + 1
		h := NewHistogram(1 << 20)
		var sizes []int
		for i := 0; i+4 <= len(data) && len(sizes) < 4096; i += 4 {
			s := int(binary.LittleEndian.Uint32(data[i:]) % (1<<20 + 7))
			h.Observe(s)
			if s < 1 {
				s = 1
			}
			if s > 1<<20 {
				s = 1 << 20
			}
			sizes = append(sizes, s)
		}
		g, err := h.Solve(classes, 1<<20, 1<<20)
		if err != nil {
			t.Fatalf("Solve failed: %v", err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("invalid geometry %+v: %v", g, err)
		}
		if g.NumClasses > classes {
			t.Fatalf("budget %d exceeded: %d classes", classes, g.NumClasses)
		}
		// Strictly monotone table (Validate checks it, but assert explicitly
		// since that is the fuzz contract).
		for c := 1; c < g.NumClasses; c++ {
			if g.SlotSize(c) <= g.SlotSize(c-1) {
				t.Fatalf("slots not monotone at class %d", c)
			}
		}
		mustFit(t, g, sizes)
		if w := h.PredictedWaste(g); w < 0 {
			t.Fatalf("negative predicted waste %f", w)
		}
	})
}
