package geom

import "pamakv/internal/kv"

// Config parameterizes the online boundary Learner. The zero value is
// usable: Normalize fills defaults.
type Config struct {
	// Classes is the class-count budget for proposed geometries. 0 means
	// "same as the current geometry" at Propose time.
	Classes int
	// MinSamples is the minimum number of observed sizes before the
	// learner will propose anything.
	MinSamples uint64
	// Every is the observation cadence between proposals; Propose returns
	// nothing until this many new observations arrived since the last
	// proposal (or since start).
	Every uint64
	// MinGain is the fractional predicted-waste reduction a candidate
	// geometry must achieve over the current one to be proposed
	// (hysteresis against flapping). 0.10 means "10% fewer hole bytes
	// per item".
	MinGain float64
	// StepItems bounds how many items a single re-slab pump step migrates;
	// the cache uses it to spread transition work across operations.
	StepItems int
}

// Normalize fills zero fields with defaults tuned for the simulator scale.
func (c Config) Normalize() Config {
	if c.MinSamples == 0 {
		c.MinSamples = 4096
	}
	if c.Every == 0 {
		c.Every = 65536
	}
	if c.MinGain == 0 {
		c.MinGain = 0.10
	}
	if c.StepItems == 0 {
		c.StepItems = 64
	}
	return c
}

// Learner observes item sizes and periodically proposes a better slot-size
// table. It has no locking of its own; the cache engine calls it under the
// engine lock.
type Learner struct {
	cfg  Config
	hist *Histogram
	// sinceProposal counts observations since the last Propose attempt.
	sinceProposal uint64
}

// NewLearner builds a learner whose histogram covers 1..maxItem (typically
// Geometry.MaxItemSize()).
func NewLearner(cfg Config, maxItem int) *Learner {
	return &Learner{cfg: cfg.Normalize(), hist: NewHistogram(maxItem)}
}

// Config returns the normalized configuration.
func (l *Learner) Config() Config { return l.cfg }

// Histogram exposes the underlying histogram (for gauges and tests).
func (l *Learner) Histogram() *Histogram { return l.hist }

// Observe records one stored item's size.
func (l *Learner) Observe(size int) {
	l.hist.Observe(size)
	l.sinceProposal++
}

// Propose returns a geometry strictly better than cur — predicted waste at
// least MinGain lower — or ok == false when it is not yet time, there is
// not enough data, or no candidate clears the bar. A successful or failed
// attempt both reset the cadence and decay the histogram so the learner
// keeps tracking the live size mix.
func (l *Learner) Propose(cur kv.Geometry) (g kv.Geometry, ok bool) {
	if l.sinceProposal < l.cfg.Every || l.hist.Total() < l.cfg.MinSamples {
		return kv.Geometry{}, false
	}
	l.sinceProposal = 0
	defer l.hist.Decay()

	classes := l.cfg.Classes
	if classes <= 0 {
		classes = cur.NumClasses
	}
	cand, err := l.hist.Solve(classes, cur.SlabSize, cur.MaxItemSize())
	if err != nil || cand.Equal(cur) {
		return kv.Geometry{}, false
	}
	curWaste := l.hist.PredictedWaste(cur)
	newWaste := l.hist.PredictedWaste(cand)
	if curWaste <= 0 || newWaste > curWaste*(1-l.cfg.MinGain) {
		return kv.Geometry{}, false
	}
	return cand, true
}
