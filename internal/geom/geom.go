// Package geom learns slab-class slot-size tables from the observed item
// size distribution, replacing the fixed power-of-two law that leaves
// "memory holes": a 65-byte item in a 128-byte slot wastes almost half its
// slot. Following "Learning Slab Classes to Alleviate Memory Holes in
// Memcached" (PAPERS.md), the package keeps a compact log-scale size
// histogram and runs a dynamic-programming boundary solver that places a
// budgeted number of class boundaries to minimize expected internal
// fragmentation, always keeping the largest slot big enough for every
// observed item.
//
// The Learner wraps histogram + solver into the online loop the cache
// engine drives: Observe on every store, Propose on a cadence; a proposal
// is only made when the predicted waste reduction clears a hysteresis
// threshold, so geometries do not flap. Nothing here locks — the cache
// calls it under its own engine lock.
package geom

import (
	"fmt"
	"sort"

	"pamakv/internal/kv"
)

// bucketRatioBits subdivides each size octave into 2^bucketRatioBits
// histogram buckets (8 per octave: ~9% relative resolution, ~170 buckets
// across 8 B .. 1 MiB — fine enough that class boundaries land within a few
// percent of optimal, small enough that the O(classes * buckets^2) solver
// is microseconds).
const bucketRatioBits = 3

// Histogram is a log-scale item-size histogram: per-bucket request counts
// and size sums, so the solver can compute exact expected waste for any
// boundary placed on a bucket edge. The zero value is not usable; call
// NewHistogram.
type Histogram struct {
	edges  []int // ascending inclusive upper edges; edges[len-1] == maxItem
	counts []uint64
	sums   []uint64
	total  uint64
	maxObs int // largest size observed so far
}

// NewHistogram covers sizes 1..maxItem.
func NewHistogram(maxItem int) *Histogram {
	if maxItem < 1 {
		maxItem = 1
	}
	var edges []int
	e := 8
	if maxItem < e {
		e = maxItem
	}
	for e < maxItem {
		edges = append(edges, e)
		// Next edge: multiply by 2^(1/2^bucketRatioBits), at least +1.
		next := e + e>>bucketRatioBits
		if next <= e {
			next = e + 1
		}
		e = next
	}
	edges = append(edges, maxItem)
	return &Histogram{
		edges:  edges,
		counts: make([]uint64, len(edges)),
		sums:   make([]uint64, len(edges)),
	}
}

// MaxItem returns the histogram's size ceiling.
func (h *Histogram) MaxItem() int { return h.edges[len(h.edges)-1] }

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// MaxObserved returns the largest size observed (0 when empty).
func (h *Histogram) MaxObserved() int { return h.maxObs }

// bucketOf returns the index of the first bucket whose upper edge fits
// size.
func (h *Histogram) bucketOf(size int) int {
	return sort.SearchInts(h.edges, size)
}

// Observe records one item of the given size. Sizes outside [1, MaxItem]
// are clamped.
func (h *Histogram) Observe(size int) {
	if size < 1 {
		size = 1
	}
	if size > h.MaxItem() {
		size = h.MaxItem()
	}
	b := h.bucketOf(size)
	h.counts[b]++
	h.sums[b] += uint64(size)
	h.total++
	if size > h.maxObs {
		h.maxObs = size
	}
}

// Decay halves every bucket, aging out stale history so the histogram
// tracks the current size mix. MaxObserved is kept: a slot table must keep
// fitting items the cache may still hold.
func (h *Histogram) Decay() {
	h.total = 0
	for i := range h.counts {
		h.counts[i] /= 2
		h.sums[i] /= 2
		h.total += h.counts[i]
	}
}

// Solve places at most classes boundaries to minimize expected internal
// fragmentation (bytes of slot beyond item size, summed over the observed
// distribution), returning a table geometry for slabSize-byte slabs whose
// largest slot is exactly maxSlot — so any item the current geometry can
// hold still fits. maxSlot is clamped to [MaxObserved, slabSize]. An empty
// histogram yields a geometric (power-of-two-like) fallback table.
func (h *Histogram) Solve(classes, slabSize, maxSlot int) (kv.Geometry, error) {
	if classes < 1 {
		return kv.Geometry{}, fmt.Errorf("geom: class budget %d must be positive", classes)
	}
	if slabSize < 1 {
		return kv.Geometry{}, fmt.Errorf("geom: slab size %d must be positive", slabSize)
	}
	if maxSlot < h.maxObs {
		maxSlot = h.maxObs
	}
	if maxSlot > slabSize {
		maxSlot = slabSize
	}
	if maxSlot < 1 {
		maxSlot = 1
	}
	if h.total == 0 {
		return fallbackGeometry(classes, slabSize, maxSlot)
	}

	// Candidate boundaries: the upper edge of every non-empty prefix of
	// buckets strictly below maxSlot, plus maxSlot itself as the forced
	// final boundary. Working on edges keeps the DP exact: every item in
	// buckets <= j fits a slot of edge[j].
	type cand struct {
		edge     int
		cnt, sum uint64 // cumulative counts/sums up to this edge
	}
	var cands []cand
	var ccnt, csum uint64
	for i, e := range h.edges {
		if e >= maxSlot {
			break
		}
		ccnt += h.counts[i]
		csum += h.sums[i]
		cands = append(cands, cand{edge: e, cnt: ccnt, sum: csum})
	}
	// The final forced boundary absorbs everything at or above the last
	// sub-maxSlot edge.
	for i := range h.edges {
		if h.edges[i] >= maxSlot {
			ccnt += h.counts[i]
			csum += h.sums[i]
		}
	}
	cands = append(cands, cand{edge: maxSlot, cnt: ccnt, sum: csum})

	n := len(cands)
	if classes > n {
		classes = n
	}
	// waste(i, j): fragmentation of one class with boundary cands[j].edge
	// covering items in (cands[i].edge, cands[j].edge] (i == -1 means from
	// the bottom).
	waste := func(i, j int) uint64 {
		cnt, sum := cands[j].cnt, cands[j].sum
		if i >= 0 {
			cnt -= cands[i].cnt
			sum -= cands[i].sum
		}
		return cnt*uint64(cands[j].edge) - sum
	}
	const inf = ^uint64(0)
	// dp[c][j]: min waste covering candidates 0..j with c+1 classes, the
	// last boundary at cands[j].
	dp := make([][]uint64, classes)
	choice := make([][]int, classes)
	for c := range dp {
		dp[c] = make([]uint64, n)
		choice[c] = make([]int, n)
		for j := range dp[c] {
			dp[c][j] = inf
			choice[c][j] = -1
		}
	}
	for j := 0; j < n; j++ {
		dp[0][j] = waste(-1, j)
	}
	for c := 1; c < classes; c++ {
		for j := c; j < n; j++ {
			for i := c - 1; i < j; i++ {
				if dp[c-1][i] == inf {
					continue
				}
				w := dp[c-1][i] + waste(i, j)
				if w < dp[c][j] {
					dp[c][j] = w
					choice[c][j] = i
				}
			}
		}
	}
	// Best class count ending at the forced final boundary (fewer classes
	// can never beat more under this objective, but guard against inf).
	bestC := 0
	for c := classes - 1; c >= 0; c-- {
		if dp[c][n-1] != inf {
			bestC = c
			break
		}
	}
	slots := make([]int, 0, bestC+1)
	for c, j := bestC, n-1; j >= 0 && c >= 0; c-- {
		slots = append(slots, cands[j].edge)
		j = choice[c][j]
	}
	// Reverse into ascending order.
	for l, r := 0, len(slots)-1; l < r; l, r = l+1, r-1 {
		slots[l], slots[r] = slots[r], slots[l]
	}
	return kv.NewTableGeometry(slabSize, slots)
}

// fallbackGeometry builds a doubling table from maxSlot downward — the
// shape DefaultGeometry has — honoring the class budget.
func fallbackGeometry(classes, slabSize, maxSlot int) (kv.Geometry, error) {
	var slots []int
	s := maxSlot
	for len(slots) < classes && s >= 1 {
		slots = append(slots, s)
		if s == 1 {
			break
		}
		s /= 2
	}
	for l, r := 0, len(slots)-1; l < r; l, r = l+1, r-1 {
		slots[l], slots[r] = slots[r], slots[l]
	}
	return kv.NewTableGeometry(slabSize, slots)
}

// PredictedWaste returns the expected internal fragmentation, in bytes per
// observed item, that geometry g would suffer on this histogram's size
// distribution (0 when the histogram is empty). Items too large for g are
// charged the largest slot.
func (h *Histogram) PredictedWaste(g kv.Geometry) float64 {
	if h.total == 0 {
		return 0
	}
	var wasted uint64
	for i, e := range h.edges {
		if h.counts[i] == 0 {
			continue
		}
		cl := g.ClassFor(e)
		if cl < 0 {
			cl = g.NumClasses - 1
		}
		slot := uint64(g.SlotSize(cl))
		w := h.counts[i] * slot
		if s := h.sums[i]; s < w {
			w -= s
		} else {
			w = 0
		}
		wasted += w
	}
	return float64(wasted) / float64(h.total)
}
