package mrc

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"pamakv/internal/kv"
)

func access(t *Tracker, key string) {
	t.Access(key, kv.HashString(key))
}

func TestFirstTouchesAreInfinite(t *testing.T) {
	tr := NewTracker(4, 2)
	for i := 0; i < 5; i++ {
		access(tr, fmt.Sprintf("k%d", i))
	}
	if tr.Infinite != 5 {
		t.Fatalf("Infinite = %d, want 5", tr.Infinite)
	}
	for _, h := range tr.Hist() {
		if h != 0 {
			t.Fatal("first touches must not land in finite buckets")
		}
	}
}

func TestReuseDistanceBuckets(t *testing.T) {
	tr := NewTracker(2, 3) // buckets of 2 items, depth 3 slabs (6 keys)
	keys := []string{"a", "b", "c", "d", "e"}
	for _, k := range keys {
		access(tr, k)
	}
	// Stack (top..bottom): e d c b a.
	access(tr, "e") // distance 0 -> bucket 0
	access(tr, "d") // e above it -> distance 1 -> bucket 0
	access(tr, "a") // d e c b above -> distance 4 -> bucket 2
	want := []uint64{2, 0, 1}
	for i, w := range want {
		if tr.Hist()[i] != w {
			t.Fatalf("hist = %v, want %v", tr.Hist(), want)
		}
	}
}

func TestShadowDepthBounded(t *testing.T) {
	tr := NewTracker(2, 2) // 4 keys deep
	for i := 0; i < 100; i++ {
		access(tr, fmt.Sprintf("k%d", i))
	}
	if tr.Len() != 4 {
		t.Fatalf("shadow len = %d, want 4", tr.Len())
	}
	// k96..k99 resident; k0 long gone -> re-access is Infinite.
	inf := tr.Infinite
	access(tr, "k0")
	if tr.Infinite != inf+1 {
		t.Fatal("evicted-from-shadow key should count as infinite")
	}
}

// TestDistancesMatchNaive cross-checks the ring-based distances against a
// brute-force stack simulation.
func TestDistancesMatchNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const depth, spc = 8, 4
		tr := NewTracker(spc, depth)
		var stack []string // 0 = top
		naiveHist := make([]uint64, depth)
		var naiveInf uint64
		for op := 0; op < 800; op++ {
			k := fmt.Sprintf("k%d", rng.Intn(40))
			// Naive model.
			pos := -1
			for i, s := range stack {
				if s == k {
					pos = i
					break
				}
			}
			if pos < 0 {
				naiveInf++
				stack = append([]string{k}, stack...)
				if len(stack) > depth*spc {
					stack = stack[:depth*spc]
				}
			} else {
				if b := pos / spc; b < depth {
					naiveHist[b]++
				} else {
					naiveInf++
				}
				stack = append(stack[:pos], stack[pos+1:]...)
				stack = append([]string{k}, stack...)
			}
			access(tr, k)
		}
		if tr.Infinite != naiveInf {
			return false
		}
		for i := range naiveHist {
			if tr.Hist()[i] != naiveHist[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestHitCurveCumulative(t *testing.T) {
	tr := NewTracker(1, 3)
	access(tr, "a")
	access(tr, "b")
	access(tr, "a") // dist 1 -> bucket 1
	access(tr, "a") // dist 0 -> bucket 0
	curve := tr.HitCurve()
	want := []float64{0, 1, 2, 2}
	for i := range want {
		if curve[i] != want[i] {
			t.Fatalf("curve = %v, want %v", curve, want)
		}
	}
}

func TestResetWindowKeepsStack(t *testing.T) {
	tr := NewTracker(1, 4)
	access(tr, "a")
	access(tr, "b")
	tr.ResetWindow()
	if tr.Infinite != 0 {
		t.Fatal("ResetWindow should clear Infinite")
	}
	access(tr, "a") // stack survived: finite distance 1
	if tr.Hist()[1] != 1 {
		t.Fatalf("hist after reset = %v", tr.Hist())
	}
}

func TestTinyParamsClamped(t *testing.T) {
	tr := NewTracker(0, 0)
	access(tr, "x")
	if tr.Depth() != 1 || tr.Len() != 1 {
		t.Fatalf("clamped tracker depth=%d len=%d", tr.Depth(), tr.Len())
	}
}

func TestWaterfillConcaveOptimal(t *testing.T) {
	// Two concave curves; brute force the optimum and compare.
	a := []float64{0, 10, 16, 19, 20, 20}
	b := []float64{0, 6, 11, 15, 18, 20}
	curves := [][]float64{a, b}
	w := []float64{1, 1}
	const total = 6
	bestVal, bestKA := -1.0, -1
	for ka := 0; ka <= total; ka++ {
		kb := total - ka
		va, vb := 0.0, 0.0
		if ka < len(a) {
			va = a[ka]
		} else {
			va = a[len(a)-1]
		}
		if kb < len(b) {
			vb = b[kb]
		} else {
			vb = b[len(b)-1]
		}
		if va+vb > bestVal {
			bestVal, bestKA = va+vb, ka
		}
	}
	alloc := Waterfill(curves, w, total, 0)
	if alloc[0]+alloc[1] != total {
		t.Fatalf("allocation %v does not sum to %d", alloc, total)
	}
	gotVal := a[alloc[0]] + b[alloc[1]]
	if gotVal != bestVal {
		t.Fatalf("waterfill alloc %v value %v, brute force ka=%d value %v",
			alloc, gotVal, bestKA, bestVal)
	}
}

func TestWaterfillWeights(t *testing.T) {
	// Identical curves, one class weighted 10x: it should get the slabs
	// that matter.
	c1 := []float64{0, 10, 12}
	c2 := []float64{0, 10, 12}
	alloc := Waterfill([][]float64{c1, c2}, []float64{1, 10}, 2, 0)
	if alloc[1] < alloc[0] {
		t.Fatalf("weighted class under-allocated: %v", alloc)
	}
}

func TestWaterfillMinPerAndBudget(t *testing.T) {
	curves := [][]float64{{0, 5}, {0, 1}, {0, 0}}
	alloc := Waterfill(curves, []float64{1, 1, 1}, 5, 1)
	if alloc[0] < 1 || alloc[1] < 1 || alloc[2] < 1 {
		t.Fatalf("minPer violated: %v", alloc)
	}
	if alloc[0]+alloc[1]+alloc[2] != 5 {
		t.Fatalf("budget violated: %v", alloc)
	}
	// Budget smaller than minPer * classes: spread what exists.
	alloc = Waterfill(curves, []float64{1, 1, 1}, 2, 1)
	if alloc[0]+alloc[1]+alloc[2] != 2 {
		t.Fatalf("tight budget violated: %v", alloc)
	}
	// Degenerate inputs.
	if got := Waterfill(nil, nil, 10, 1); len(got) != 0 {
		t.Fatal("empty input should give empty allocation")
	}
	if got := Waterfill(curves, []float64{1, 1, 1}, 0, 1); got[0]+got[1]+got[2] != 0 {
		t.Fatal("zero budget should allocate nothing")
	}
}

func BenchmarkTrackerAccess(b *testing.B) {
	tr := NewTracker(64, 32)
	keys := make([]string, 4096)
	hashes := make([]uint64, 4096)
	for i := range keys {
		keys[i] = kv.KeyString(uint64(i))
		hashes[i] = kv.HashString(keys[i])
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j := rng.Intn(len(keys))
		tr.Access(keys[j], hashes[j])
	}
}
