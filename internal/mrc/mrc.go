// Package mrc builds per-class miss-ratio curves from reuse (stack)
// distances, and solves the slab-allocation problem over them — the
// machinery behind LAMA (Hu et al., USENIX ATC 2015), which the paper
// discusses as related work (§II): "use miss ratio curve for quantifying
// access locality and use the curve to determine the optimal space
// allocation for each class."
//
// A Tracker is a shadow LRU of keys only (no values), deeper than the
// class's current allocation, with an order-statistics ring giving each
// re-access's exact stack distance in O(log n). Distances are histogrammed
// in slab-sized buckets: hist[b] counts hits that an allocation of at least
// b+1 slabs would capture, so the cumulative histogram *is* the class's hit
// curve and 1-curve the miss-ratio curve.
//
// Waterfill allocates a slab budget across classes by repeatedly granting
// the next slab to the class with the largest marginal (optionally
// weighted) hit gain — the exact optimum when curves are concave, which
// LRU hit curves essentially are, and the same answer LAMA's dynamic
// program produces there.
package mrc

import (
	"pamakv/internal/hashtable"
	"pamakv/internal/kv"
	"pamakv/internal/lru"
	"pamakv/internal/rank"
)

// Tracker records reuse distances for one class.
type Tracker struct {
	spc     int // slots (items) per slab-sized bucket
	maxKeys int // shadow depth in items
	list    lru.List
	ring    *rank.Ring
	idx     *hashtable.Table
	hist    []uint64
	// Infinite counts accesses whose reuse distance exceeds the shadow
	// depth, plus first-touches (cold misses) — unconvertible by any
	// allocation the tracker can see.
	Infinite uint64
	pool     []*kv.Item
}

// NewTracker builds a tracker with buckets of spc items covering depth
// slabs.
func NewTracker(spc, depth int) *Tracker {
	if spc < 1 {
		spc = 1
	}
	if depth < 1 {
		depth = 1
	}
	return &Tracker{
		spc:     spc,
		maxKeys: spc * depth,
		ring:    rank.New(256),
		idx:     hashtable.New(1 << 8),
		hist:    make([]uint64, depth),
	}
}

// Depth returns the shadow depth in slabs.
func (t *Tracker) Depth() int { return len(t.hist) }

// Len returns the current shadow population.
func (t *Tracker) Len() int { return t.list.Len() }

// Access records one request for key: its stack distance is histogrammed
// and the key is promoted to the shadow's MRU end.
func (t *Tracker) Access(key string, hash uint64) {
	if it := t.idx.Get(hash, key); it != nil {
		// Distance from the top: number of items above it in the
		// stack = live items younger than it.
		dist := t.list.Len() - 1 - t.ring.Rank(it)
		b := dist / t.spc
		if b < len(t.hist) {
			t.hist[b]++
		} else {
			t.Infinite++
		}
		t.ring.Remove(it)
		t.list.MoveToFront(it)
		t.reinsert(it)
		return
	}
	t.Infinite++ // first touch within the shadow's memory
	it := t.acquire()
	it.Key = key
	it.Hash = hash
	t.idx.Put(it)
	t.list.PushFront(it)
	t.reinsert(it)
	for t.list.Len() > t.maxKeys {
		old := t.list.PopBack()
		t.ring.Remove(old)
		t.idx.Delete(old.Hash, old.Key)
		t.release(old)
	}
}

func (t *Tracker) reinsert(it *kv.Item) {
	if t.ring.Full() {
		t.ring.Reset()
		t.list.AscendFromBack(func(x *kv.Item) bool {
			t.ring.Insert(x)
			return true
		})
		return
	}
	t.ring.Insert(it)
}

// Hist returns the distance histogram (bucket b = hits needing b+1 slabs).
// The returned slice is the tracker's own; copy before mutating.
func (t *Tracker) Hist() []uint64 { return t.hist }

// HitCurve returns the cumulative hit counts H(k) for allocations of
// k = 0..Depth slabs (H(0) = 0).
func (t *Tracker) HitCurve() []float64 {
	out := make([]float64, len(t.hist)+1)
	for i, h := range t.hist {
		out[i+1] = out[i] + float64(h)
	}
	return out
}

// ResetWindow clears the histogram (the shadow stack itself persists, so
// distances stay exact across windows).
func (t *Tracker) ResetWindow() {
	for i := range t.hist {
		t.hist[i] = 0
	}
	t.Infinite = 0
}

func (t *Tracker) acquire() *kv.Item {
	if n := len(t.pool); n > 0 {
		it := t.pool[n-1]
		t.pool = t.pool[:n-1]
		return it
	}
	return &kv.Item{}
}

func (t *Tracker) release(it *kv.Item) {
	if len(t.pool) >= 4096 {
		return
	}
	it.Reset()
	t.pool = append(t.pool, it)
}

// Waterfill distributes total slabs across classes to maximize
// Σ weights[c] * curves[c][k_c], granting every class at least minPer slabs
// (when the budget allows). Allocations beyond a curve's depth have zero
// marginal gain and are only used to park surplus budget. curves[c] must be
// cumulative hit curves as returned by HitCurve. The result sums exactly to
// total.
func Waterfill(curves [][]float64, weights []float64, total, minPer int) []int {
	mins := make([]int, len(curves))
	for i := range mins {
		mins[i] = minPer
	}
	return WaterfillMin(curves, weights, total, mins)
}

// WaterfillMin is Waterfill with a per-class minimum (e.g. zero for classes
// with no traffic, one for active classes that must stay servable).
func WaterfillMin(curves [][]float64, weights []float64, total int, mins []int) []int {
	n := len(curves)
	alloc := make([]int, n)
	if n == 0 || total <= 0 {
		return alloc
	}
	left := total
	for c := 0; c < n && left > 0; c++ {
		give := mins[c]
		if give < 0 {
			give = 0
		}
		if give > left {
			give = left
		}
		alloc[c] = give
		left -= give
	}
	marginal := func(c int) float64 {
		k := alloc[c]
		cv := curves[c]
		if k+1 >= len(cv) {
			return 0
		}
		return weights[c] * (cv[k+1] - cv[k])
	}
	for ; left > 0; left-- {
		best, bestGain := 0, -1.0
		for c := 0; c < n; c++ {
			if g := marginal(c); g > bestGain {
				best, bestGain = c, g
			}
		}
		alloc[best]++
	}
	return alloc
}
