// Package client is the first-class Go client for pamakv (and any other
// Memcached-text-protocol server): connection pooling with health-checked
// idle reaping, request pipelining over the zero-allocation proto.RespReader,
// optional client-side sharding over the cluster tier's Selector, and
// penalty-derived hedged reads.
//
// The client speaks the same wire protocol the server's fuzzed parsers
// implement, so anything pama-server accepts is reachable from here: get,
// gets, set, add, replace, append, prepend, cas, delete, incr, decr, touch,
// stats, flush_all, and version.
//
// # Sharding
//
// With one address the client is a plain single-server client. With several
// it builds a cluster.Selector ("ring" by default, "rendezvous" on request)
// over the member list and routes every key to its owner — the same
// ownership function pama-server nodes compute, so a sharded client sends
// each key straight to the node that would otherwise have to forward it.
//
// # Hedged reads
//
// When Config.PenaltyOf is set, single-key Gets hedge the way the cluster
// tier's peer reads do: a key whose recompute penalty is high gets a
// duplicate request raced after a short delay (cluster.HedgePolicy), because
// a slow read on an expensive key risks a backend recompute orders of
// magnitude costlier than the duplicate. Cheap keys never hedge.
//
// # Pipelining
//
// Pipeline batches many operations into one write per connection and reads
// the responses back in order — see Client.Pipeline. The pipelined read path
// is allocation-free in steady state; the alloc gate in allocs_test.go pins
// it.
package client

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"pamakv/internal/cluster"
	"pamakv/internal/proto"
	"pamakv/internal/tenant"
)

// Defaults for Config fields left zero.
const (
	DefaultPoolSize         = 4
	DefaultDialTimeout      = 500 * time.Millisecond
	DefaultOpTimeout        = 3 * time.Second
	DefaultRetries          = 1
	DefaultIdleTimeout      = 90 * time.Second
	DefaultHealthCheckAfter = time.Second
)

// Sentinel errors. Response-level conditions (miss, not stored, CAS
// conflict) are sentinels so callers can errors.Is them; transport failures
// surface as the underlying net error.
var (
	// ErrCacheMiss reports a get/gets on an absent key, or a delete/touch/
	// incr/decr/cas whose key vanished.
	ErrCacheMiss = errors.New("client: cache miss")
	// ErrNotStored reports an add on a present key, a replace on an absent
	// one, or an append/prepend on an absent one.
	ErrNotStored = errors.New("client: item not stored")
	// ErrCASConflict reports a cas whose token lost the race.
	ErrCASConflict = errors.New("client: cas conflict")
	// ErrServerBusy reports a deliberate overload shed (SERVER_ERROR busy
	// (shed)) — the request was refused, not failed; backing off and
	// retrying is appropriate.
	ErrServerBusy = errors.New("client: server busy (shed)")
	// ErrClientClosed reports an operation on a closed client.
	ErrClientClosed = errors.New("client: closed")
	// ErrValueTooLarge reports a value exceeding proto.MaxDataLen, rejected
	// before touching the wire.
	ErrValueTooLarge = errors.New("client: value exceeds protocol maximum")
)

// ServerError is a SERVER_ERROR response other than an overload shed.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "client: server error: " + e.Msg }

// Config tunes a Client. The zero value of every field selects a sensible
// default; only Addrs is required.
type Config struct {
	// Addrs is the server list. One address means a plain client; several
	// mean client-side sharding over a cluster.Selector.
	Addrs []string
	// Shard selects the sharding function for multi-address clients:
	// "ring" (default) or "rendezvous", matching pama-server's own
	// -cluster-selector.
	Shard string
	// VNodes is the ring's virtual-node count; <= 0 means
	// cluster.DefaultVNodes. Must match the server cluster's setting for
	// client-side routing to agree with server-side ownership.
	VNodes int
	// PoolSize caps idle pooled connections per server; <= 0 means
	// DefaultPoolSize. In-flight connections are unbounded (each concurrent
	// operation holds at most one).
	PoolSize int
	// DialTimeout bounds establishing a connection; <= 0 means
	// DefaultDialTimeout.
	DialTimeout time.Duration
	// OpTimeout is the per-attempt deadline covering write + server-side
	// service + read (a whole batch, for pipelines); <= 0 means
	// DefaultOpTimeout.
	OpTimeout time.Duration
	// Retries is how many extra attempts a single operation gets after a
	// transport failure, each on a fresh connection; 0 means
	// DefaultRetries, < 0 means none. Pipelines never auto-retry: a
	// mid-batch transport failure leaves the outcome of unacknowledged
	// writes unknown, so the batch's remaining results carry the error and
	// the caller decides.
	Retries int
	// IdleTimeout is how long a pooled connection may sit idle before the
	// reaper closes it; 0 means DefaultIdleTimeout, < 0 disables reaping.
	IdleTimeout time.Duration
	// HealthCheckAfter is the idle age beyond which an acquired connection
	// is liveness-probed before reuse; 0 means DefaultHealthCheckAfter,
	// < 0 disables probing.
	HealthCheckAfter time.Duration
	// Hedge maps a key's miss penalty to its hedge delay. The zero value
	// never hedges; DefaultHedgePolicy hedges expensive keys early. Only
	// consulted when PenaltyOf is set.
	Hedge cluster.HedgePolicy
	// PenaltyOf reports a key's backend miss penalty in seconds, enabling
	// penalty-derived hedged Gets. Nil disables hedging.
	PenaltyOf func(key string) float64
	// Tenant namespaces every key as "tenant/key" before validation and
	// routing, so the client lands in that tenant's partition on a server
	// run with -tenants. Empty means keys pass through untouched (the
	// server's default tenant). Responses carry the fully-qualified key.
	Tenant string
}

func (cfg Config) withDefaults() Config {
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = DefaultPoolSize
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = DefaultOpTimeout
	}
	switch {
	case cfg.Retries == 0:
		cfg.Retries = DefaultRetries
	case cfg.Retries < 0:
		cfg.Retries = 0
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	if cfg.HealthCheckAfter == 0 {
		cfg.HealthCheckAfter = DefaultHealthCheckAfter
	} else if cfg.HealthCheckAfter < 0 {
		// Never probe: no idle connection is older than a deadline that
		// far out.
		cfg.HealthCheckAfter = 1<<62 - 1
	}
	return cfg
}

// Item is one cache entry as the client sees it. Value is owned by the
// caller (single-key reads copy out of the connection's parse arena).
type Item struct {
	Key   string
	Value []byte
	Flags uint32
	// CAS is the compare-and-swap token; only Gets populates it.
	CAS uint64
}

// Client is a pooled, optionally sharded pamakv/Memcached client. It is
// safe for concurrent use by any number of goroutines.
type Client struct {
	cfg   Config
	pools []*pool
	index map[string]int
	// sel routes keys to members; nil for a single-address client.
	sel cluster.Selector

	closed    atomic.Bool
	hedges    atomic.Uint64
	hedgeWins atomic.Uint64
}

// New builds a client for the given servers. No connection is dialed until
// the first operation.
func New(cfg Config) (*Client, error) {
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("client: no server addresses")
	}
	if cfg.Tenant != "" {
		if strings.ContainsRune(cfg.Tenant, tenant.Separator) {
			return nil, errors.New("client: tenant name must not contain '/'")
		}
		if err := proto.CheckKey(cfg.Tenant + string(tenant.Separator) + "k"); err != nil {
			return nil, fmt.Errorf("client: bad tenant name %q: %w", cfg.Tenant, err)
		}
	}
	cfg = cfg.withDefaults()
	c := &Client{cfg: cfg}
	members := cfg.Addrs
	if len(cfg.Addrs) > 1 {
		sel, err := cluster.NewSelector(cfg.Shard, cfg.Addrs, cfg.VNodes)
		if err != nil {
			return nil, err
		}
		c.sel = sel
		// The selector normalizes (sorts, dedupes) the member list; pools
		// must index the same view it routes over.
		members = sel.Members()
	}
	c.pools = make([]*pool, len(members))
	c.index = make(map[string]int, len(members))
	for i, addr := range members {
		c.pools[i] = newPool(addr, &c.cfg)
		c.index[addr] = i
	}
	return c, nil
}

// Close closes every pooled connection and stops the idle reapers.
// In-flight operations finish on their own connections (closed on return);
// subsequent operations fail with ErrClientClosed.
func (c *Client) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	for _, p := range c.pools {
		p.close()
	}
}

// Addrs returns the (normalized) member list the client routes over.
func (c *Client) Addrs() []string {
	addrs := make([]string, len(c.pools))
	for i, p := range c.pools {
		addrs[i] = p.addr
	}
	return addrs
}

// qual applies the configured tenant namespace to a key. It runs before
// CheckKey and before pool routing, so validation and sharding both see the
// key the server will see.
func (c *Client) qual(key string) string {
	if c.cfg.Tenant == "" {
		return key
	}
	return c.cfg.Tenant + string(tenant.Separator) + key
}

// poolFor routes a key to its owning server's pool.
func (c *Client) poolFor(key string) *pool {
	if c.sel == nil {
		return c.pools[0]
	}
	return c.pools[c.index[c.sel.Owner(key)]]
}

// isFinal reports whether an error from reading a response is a protocol
// verdict (malformed or over-long response — the stream is gone, retrying
// on a fresh connection would resend a request the server may have already
// applied for no better answer) rather than a transport failure.
func isFinal(err error) bool {
	var ce *proto.ClientError
	return errors.As(err, &ce) || errors.Is(err, proto.ErrLineTooLong)
}

// once runs one request/response exchange on one pooled connection. final
// reports whether the outcome is authoritative: a parsed response (err is
// then handle's verdict) or a protocol violation. Transport failures close
// the connection and return final == false.
func (c *Client) once(p *pool, req []byte, handle func(*proto.Resp) error) (final bool, err error) {
	cn, err := p.get()
	if err != nil {
		return errors.Is(err, ErrClientClosed), err
	}
	cn.nc.SetDeadline(time.Now().Add(c.cfg.OpTimeout))
	if _, err := cn.bw.Write(req); err != nil {
		cn.nc.Close()
		return false, err
	}
	if err := cn.bw.Flush(); err != nil {
		cn.nc.Close()
		return false, err
	}
	resp, err := cn.rr.Next()
	if err != nil {
		cn.nc.Close()
		return isFinal(err), err
	}
	// handle runs while the connection is held: resp's views die at the
	// next rr.Next, so anything kept must be copied inside handle.
	herr := handle(resp)
	p.put(cn)
	return true, herr
}

// do runs once with the configured transport-retry budget, each retry on a
// fresh connection (the failed one was closed, which also flushes stale
// pooled connections the server idled out).
func (c *Client) do(p *pool, req []byte, handle func(*proto.Resp) error) error {
	if c.closed.Load() {
		return ErrClientClosed
	}
	for try := 0; ; try++ {
		final, err := c.once(p, req, handle)
		if final || err == nil || try >= c.cfg.Retries {
			return err
		}
	}
}

// respErr maps an unexpected terminal status to a client error. Shed
// responses map to ErrServerBusy so backoff logic can single out overload.
func respErr(r *proto.Resp) error {
	if r.IsShed() {
		return ErrServerBusy
	}
	switch r.Status {
	case proto.StatusServerError:
		return &ServerError{Msg: string(r.Msg)}
	case proto.StatusClientError:
		return fmt.Errorf("client: server rejected request: %s", r.Msg)
	default:
		return fmt.Errorf("client: unexpected response %v", r.Status)
	}
}

// Get retrieves key. A present key returns its Item (Value owned by the
// caller); an absent one returns ErrCacheMiss. When Config.PenaltyOf is
// set, expensive keys hedge per Config.Hedge.
func (c *Client) Get(key string) (Item, error) { return c.get(key, false) }

// Gets is Get with the CAS token populated for a later CompareAndSwap.
func (c *Client) Gets(key string) (Item, error) { return c.get(key, true) }

func (c *Client) get(key string, withCAS bool) (Item, error) {
	key = c.qual(key)
	if err := proto.CheckKey(key); err != nil {
		return Item{}, err
	}
	verb := "get"
	if withCAS {
		verb = "gets"
	}
	req := make([]byte, 0, len(verb)+len(key)+3)
	req = append(req, verb...)
	req = append(req, ' ')
	req = append(req, key...)
	req = append(req, '\r', '\n')
	p := c.poolFor(key)
	if c.cfg.PenaltyOf != nil {
		if delay := c.cfg.Hedge.DelayFor(c.cfg.PenaltyOf(key)); delay > 0 {
			return c.hedgedGet(p, key, req, delay)
		}
	}
	var it Item
	err := c.do(p, req, func(r *proto.Resp) error {
		return readItem(&it, key, r)
	})
	return it, err
}

// readItem extracts a single-key get/gets response into it, copying the
// value out of the connection's arena.
func readItem(it *Item, key string, r *proto.Resp) error {
	if r.Status != proto.StatusEnd {
		return respErr(r)
	}
	if len(r.Values) == 0 {
		return ErrCacheMiss
	}
	v := r.Values[0]
	*it = Item{
		Key:   key,
		Value: append([]byte(nil), v.Data...),
		Flags: v.Flags,
		CAS:   v.CAS,
	}
	return nil
}

// hedgedGet races the primary attempt against a duplicate fired after the
// hedge delay. The first authoritative response (hit, miss, or error reply)
// wins; GETs are idempotent, so the loser is discarded when it lands.
func (c *Client) hedgedGet(p *pool, key string, req []byte, delay time.Duration) (Item, error) {
	type result struct {
		it     Item
		err    error
		final  bool
		hedged bool
	}
	ch := make(chan result, 2)
	run := func(hedged bool) {
		var it Item
		final, err := c.once(p, req, func(r *proto.Resp) error {
			return readItem(&it, key, r)
		})
		ch <- result{it, err, final, hedged}
	}
	go run(false)
	t := time.NewTimer(delay)
	defer t.Stop()
	launched := 1
	var lastErr error
	for {
		select {
		case r := <-ch:
			if r.final || r.err == nil {
				if r.hedged {
					c.hedgeWins.Add(1)
				}
				return r.it, r.err
			}
			lastErr = r.err
			launched--
			if launched == 0 {
				return Item{}, lastErr
			}
		case <-t.C:
			if launched == 1 {
				c.hedges.Add(1)
				launched++
				go run(true)
			}
		}
	}
}

// Set unconditionally stores value under key. exptime follows Memcached
// semantics: 0 never expires, <= 30 days is relative seconds, larger is an
// absolute unix time.
func (c *Client) Set(key string, flags uint32, exptime int64, value []byte) error {
	return c.store("set", key, flags, exptime, 0, value)
}

// Add stores value only if key is absent; ErrNotStored otherwise.
func (c *Client) Add(key string, flags uint32, exptime int64, value []byte) error {
	return c.store("add", key, flags, exptime, 0, value)
}

// Replace stores value only if key is present; ErrNotStored otherwise.
func (c *Client) Replace(key string, flags uint32, exptime int64, value []byte) error {
	return c.store("replace", key, flags, exptime, 0, value)
}

// Append concatenates value after the present value; ErrNotStored if absent.
func (c *Client) Append(key string, value []byte) error {
	return c.store("append", key, 0, 0, 0, value)
}

// Prepend concatenates value before the present value; ErrNotStored if
// absent.
func (c *Client) Prepend(key string, value []byte) error {
	return c.store("prepend", key, 0, 0, 0, value)
}

// CompareAndSwap stores value only if the item's CAS token still equals cas
// (from a prior Gets). ErrCASConflict means a racing writer got there first;
// ErrCacheMiss means the item vanished.
func (c *Client) CompareAndSwap(key string, flags uint32, exptime int64, value []byte, cas uint64) error {
	return c.store("cas", key, flags, exptime, cas, value)
}

func (c *Client) store(verb, key string, flags uint32, exptime int64, cas uint64, value []byte) error {
	key = c.qual(key)
	if err := proto.CheckKey(key); err != nil {
		return err
	}
	if len(value) > proto.MaxDataLen {
		return ErrValueTooLarge
	}
	req := appendStore(nil, verb, key, flags, exptime, cas, value)
	return c.do(c.poolFor(key), req, func(r *proto.Resp) error {
		switch r.Status {
		case proto.StatusStored:
			return nil
		case proto.StatusNotStored:
			return ErrNotStored
		case proto.StatusExists:
			return ErrCASConflict
		case proto.StatusNotFound:
			return ErrCacheMiss
		default:
			return respErr(r)
		}
	})
}

// appendStore renders a storage command; shared by the single-op and
// pipelined paths.
func appendStore(dst []byte, verb, key string, flags uint32, exptime int64, cas uint64, value []byte) []byte {
	dst = append(dst, verb...)
	dst = append(dst, ' ')
	dst = append(dst, key...)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, uint64(flags), 10)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, exptime, 10)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(len(value)), 10)
	if verb == "cas" {
		dst = append(dst, ' ')
		dst = strconv.AppendUint(dst, cas, 10)
	}
	dst = append(dst, '\r', '\n')
	dst = append(dst, value...)
	return append(dst, '\r', '\n')
}

// Delete removes key; ErrCacheMiss if it was absent.
func (c *Client) Delete(key string) error {
	key = c.qual(key)
	if err := proto.CheckKey(key); err != nil {
		return err
	}
	req := appendKeyed(nil, "delete", key)
	return c.do(c.poolFor(key), req, func(r *proto.Resp) error {
		switch r.Status {
		case proto.StatusDeleted:
			return nil
		case proto.StatusNotFound:
			return ErrCacheMiss
		default:
			return respErr(r)
		}
	})
}

// Incr atomically adds delta to the numeric value at key, returning the new
// value; ErrCacheMiss if absent. The value wraps at 2^64.
func (c *Client) Incr(key string, delta uint64) (uint64, error) { return c.delta("incr", key, delta) }

// Decr atomically subtracts delta, clamping at zero; ErrCacheMiss if absent.
func (c *Client) Decr(key string, delta uint64) (uint64, error) { return c.delta("decr", key, delta) }

func (c *Client) delta(verb, key string, delta uint64) (uint64, error) {
	key = c.qual(key)
	if err := proto.CheckKey(key); err != nil {
		return 0, err
	}
	req := append([]byte(verb), ' ')
	req = append(req, key...)
	req = append(req, ' ')
	req = strconv.AppendUint(req, delta, 10)
	req = append(req, '\r', '\n')
	var out uint64
	err := c.do(c.poolFor(key), req, func(r *proto.Resp) error {
		switch r.Status {
		case proto.StatusNumber:
			out = r.Number
			return nil
		case proto.StatusNotFound:
			return ErrCacheMiss
		default:
			return respErr(r)
		}
	})
	return out, err
}

// Touch rearms key's expiry without reading it; ErrCacheMiss if absent.
func (c *Client) Touch(key string, exptime int64) error {
	key = c.qual(key)
	if err := proto.CheckKey(key); err != nil {
		return err
	}
	req := append([]byte("touch "), key...)
	req = append(req, ' ')
	req = strconv.AppendInt(req, exptime, 10)
	req = append(req, '\r', '\n')
	return c.do(c.poolFor(key), req, func(r *proto.Resp) error {
		switch r.Status {
		case proto.StatusTouched:
			return nil
		case proto.StatusNotFound:
			return ErrCacheMiss
		default:
			return respErr(r)
		}
	})
}

// appendKeyed renders "<verb> <key>\r\n".
func appendKeyed(dst []byte, verb, key string) []byte {
	dst = append(dst, verb...)
	dst = append(dst, ' ')
	dst = append(dst, key...)
	return append(dst, '\r', '\n')
}

// FlushAll invalidates every item on every member. The first failure stops
// the broadcast.
func (c *Client) FlushAll() error {
	req := []byte("flush_all\r\n")
	for _, p := range c.pools {
		err := c.do(p, req, func(r *proto.Resp) error {
			if r.Status != proto.StatusOK {
				return respErr(r)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Version returns the first member's version string.
func (c *Client) Version() (string, error) {
	var v string
	err := c.do(c.pools[0], []byte("version\r\n"), func(r *proto.Resp) error {
		if r.Status != proto.StatusVersion {
			return respErr(r)
		}
		v = string(r.Msg)
		return nil
	})
	return v, err
}

// ServerStats returns each member's stats, keyed by address then stat name.
func (c *Client) ServerStats() (map[string]map[string]string, error) {
	out := make(map[string]map[string]string, len(c.pools))
	req := []byte("stats\r\n")
	for _, p := range c.pools {
		m := make(map[string]string)
		err := c.do(p, req, func(r *proto.Resp) error {
			if r.Status != proto.StatusEnd {
				return respErr(r)
			}
			for _, st := range r.Stats {
				m[string(st[0])] = string(st[1])
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		out[p.addr] = m
	}
	return out, nil
}

// Stats is a point-in-time snapshot of the client's internal counters,
// aggregated across member pools.
type Stats struct {
	// Dials counts connections established; Reaps idle connections the
	// reaper closed; HealthFails stale pooled connections that failed the
	// liveness probe on acquire.
	Dials       uint64 `json:"dials"`
	Reaps       uint64 `json:"reaps"`
	HealthFails uint64 `json:"health_fails"`
	// Idle is the current pooled-connection count.
	Idle int `json:"idle"`
	// Hedges counts hedged duplicates fired; HedgeWins the subset that
	// answered before the primary.
	Hedges    uint64 `json:"hedges"`
	HedgeWins uint64 `json:"hedge_wins"`
}

// Stats snapshots the client's counters.
func (c *Client) Stats() Stats {
	var s Stats
	for _, p := range c.pools {
		s.Dials += p.dials.Load()
		s.Reaps += p.reaps.Load()
		s.HealthFails += p.healthFails.Load()
		s.Idle += p.idleCount()
	}
	s.Hedges = c.hedges.Load()
	s.HedgeWins = c.hedgeWins.Load()
	return s
}
