package client_test

import (
	"net"
	"testing"

	"pamakv/internal/cache"
	"pamakv/internal/core"
	"pamakv/internal/kv"
	"pamakv/internal/server"
)

// newCache builds a small, store-everything engine for in-process servers.
func newCache(t testing.TB) *cache.Cache {
	t.Helper()
	c, err := cache.New(cache.Config{
		Geometry:    kv.Geometry{SlabSize: 1 << 16, Base: 64, NumClasses: 8},
		CacheBytes:  1 << 22,
		StoreValues: true,
		WindowLen:   10_000,
	}, core.New(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// startServer runs an in-process pama-server on a fresh port and returns
// its address.
func startServer(t testing.TB, opts server.Options) string {
	t.Helper()
	addr, _ := startServerOn(t, "127.0.0.1:0", newCache(t), opts)
	return addr
}

// startServerOn runs a pama-server over an existing engine on a specific
// address (pass "127.0.0.1:0" for any). Reusing one engine across
// start/stop cycles is how the restart tests check that acknowledged writes
// survive a server bounce.
func startServerOn(t testing.TB, addr string, c *cache.Cache, opts server.Options) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(c, opts)
	go srv.Serve(ln)
	stopped := false
	stop := func() {
		if !stopped {
			stopped = true
			srv.Shutdown()
		}
	}
	t.Cleanup(stop)
	return ln.Addr().String(), stop
}
