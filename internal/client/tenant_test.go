package client_test

import (
	"errors"
	"net"
	"testing"

	"pamakv/internal/cache"
	"pamakv/internal/client"
	"pamakv/internal/core"
	"pamakv/internal/kv"
	"pamakv/internal/server"
	"pamakv/internal/tenant"
)

// startTenantServer runs an in-process server over a two-tenant router and
// returns its address.
func startTenantServer(t *testing.T) (string, *tenant.Router) {
	t.Helper()
	reg, err := tenant.NewRegistry([]tenant.Config{
		{Name: "alpha"},
		{Name: "beta", SLOClass: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	stores := make([]tenant.Store, reg.Len())
	members := make([]tenant.Member, reg.Len())
	for id := 0; id < reg.Len(); id++ {
		eng, err := cache.New(cache.Config{
			Geometry:    kv.Geometry{SlabSize: 1 << 16, Base: 64, NumClasses: 8},
			CacheBytes:  1 << 22,
			StoreValues: true,
			WindowLen:   10_000,
			Tenant:      int32(id),
		}, core.New(core.DefaultConfig()))
		if err != nil {
			t.Fatal(err)
		}
		stores[id] = eng
		members[id] = tenant.Member{ID: id, Cfg: reg.Config(id), Engines: []*cache.Cache{eng}}
	}
	router, err := tenant.NewRouter(reg, stores, members)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(router, server.Options{Tenants: reg})
	go srv.Serve(ln)
	t.Cleanup(srv.Shutdown)
	return ln.Addr().String(), router
}

// TestTenantClientIsolation drives two tenant-scoped clients and one plain
// client at the same bare key and checks that each lands in (and only in)
// its own partition.
func TestTenantClientIsolation(t *testing.T) {
	addr, router := startTenantServer(t)

	newc := func(ten string) *client.Client {
		c, err := client.New(client.Config{Addrs: []string{addr}, Tenant: ten})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		return c
	}
	alpha, beta, plain := newc("alpha"), newc("beta"), newc("")

	for _, tc := range []struct {
		c   *client.Client
		val string
	}{{alpha, "from-alpha"}, {beta, "from-beta"}, {plain, "from-default"}} {
		if err := tc.c.Set("shared", 0, 0, []byte(tc.val)); err != nil {
			t.Fatalf("set %q: %v", tc.val, err)
		}
	}
	for _, tc := range []struct {
		c    *client.Client
		want string
	}{{alpha, "from-alpha"}, {beta, "from-beta"}, {plain, "from-default"}} {
		it, err := tc.c.Get("shared")
		if err != nil {
			t.Fatalf("get (%s): %v", tc.want, err)
		}
		if string(it.Value) != tc.want {
			t.Fatalf("got %q, want %q", it.Value, tc.want)
		}
	}
	// The qualified key is what the wire carries and what the Item reports.
	if it, _ := alpha.Get("shared"); it.Key != "alpha/shared" {
		t.Fatalf("Item.Key = %q, want alpha/shared", it.Key)
	}
	// Deleting through one tenant must not reach the others.
	if err := alpha.Delete("shared"); err != nil {
		t.Fatal(err)
	}
	if _, err := alpha.Get("shared"); !errors.Is(err, client.ErrCacheMiss) {
		t.Fatalf("alpha still sees deleted key: %v", err)
	}
	if _, err := beta.Get("shared"); err != nil {
		t.Fatalf("beta lost its key to alpha's delete: %v", err)
	}

	// Pipelines qualify at queue time, so batches land in the right tenant
	// too.
	p := beta.Pipeline()
	p.Set("pk", 0, 0, []byte("pv"))
	p.Get("pk")
	res, err := p.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil || res[1].Err != nil {
		t.Fatalf("pipeline errs: %v %v", res[0].Err, res[1].Err)
	}
	if string(res[1].Value) != "pv" {
		t.Fatalf("pipeline get = %q", res[1].Value)
	}
	if _, err := alpha.Get("pk"); !errors.Is(err, client.ErrCacheMiss) {
		t.Fatalf("alpha sees beta's pipelined key: %v", err)
	}

	// The per-tenant snapshots attribute items where the clients put them.
	for _, sn := range router.TenantSnapshots() {
		switch sn.Name {
		case "beta":
			if sn.Items != 2 {
				t.Fatalf("beta items = %d, want 2", sn.Items)
			}
		case "alpha":
			if sn.Items != 0 {
				t.Fatalf("alpha items = %d, want 0", sn.Items)
			}
		}
	}
	if err := router.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestTenantClientValidation pins the constructor's tenant-name checks.
func TestTenantClientValidation(t *testing.T) {
	if _, err := client.New(client.Config{Addrs: []string{"x:1"}, Tenant: "a/b"}); err == nil {
		t.Fatal("tenant name with separator accepted")
	}
	if _, err := client.New(client.Config{Addrs: []string{"x:1"}, Tenant: "bad name"}); err == nil {
		t.Fatal("tenant name with space accepted")
	}
}
