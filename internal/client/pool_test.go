package client_test

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pamakv/internal/client"
	"pamakv/internal/cluster"
	"pamakv/internal/proto"
	"pamakv/internal/server"
)

// waitFor polls cond for up to two seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestPoolRestartNoLostWrites hammers one server from N goroutines running
// pipelined mixed ops, bounces the server mid-test (same engine, same
// address), and then verifies every acknowledged write is still readable:
// errors during the bounce are expected, silently lost acks are not. Run
// under -race this also exercises the pool's concurrency.
func TestPoolRestartNoLostWrites(t *testing.T) {
	engine := newCache(t)
	addr, stop := startServerOn(t, "127.0.0.1:0", engine, server.Options{})

	base := runtime.NumGoroutine()
	c := newClient(t, client.Config{
		Addrs:            []string{addr},
		PoolSize:         8,
		HealthCheckAfter: time.Nanosecond, // always probe idle conns
		IdleTimeout:      time.Second,
		Retries:          -1, // pipeline path never retries anyway; keep singles strict too
	})

	const (
		workers = 8
		rounds  = 60
		batch   = 16
	)
	acked := make([]map[string]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		acked[w] = make(map[string]string)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := c.Pipeline()
			for r := 0; r < rounds; r++ {
				type queued struct{ key, val string }
				var sets []queued
				for b := 0; b < batch; b++ {
					key := fmt.Sprintf("w%d.r%d.b%d", w, r, b)
					if b%4 == 3 {
						p.Get(key) // mixes reads into the batch
						continue
					}
					val := fmt.Sprintf("v%d.%d.%d", w, r, b)
					p.Set(key, uint32(w), 0, []byte(val))
					sets = append(sets, queued{key, val})
				}
				results, err := p.Exec()
				if err != nil {
					t.Errorf("worker %d: Exec: %v", w, err)
					return
				}
				// Walk results in queue order, pairing set slots with their
				// queued keys (gets occupy the b%4==3 slots).
				si, ri := 0, 0
				for b := 0; b < batch; b++ {
					if b%4 == 3 {
						ri++
						continue
					}
					if results[ri].Err == nil {
						acked[w][sets[si].key] = sets[si].val
					}
					si++
					ri++
				}
				if r == rounds/2 && w == 0 {
					// Bounce the server mid-test from one worker; the
					// others keep hammering through the outage.
					stop()
					_, _ = startServerOn(t, addr, engine, server.Options{})
				}
			}
		}(w)
	}
	wg.Wait()

	// Every acknowledged write must be present with its exact value.
	verify := newClient(t, client.Config{Addrs: []string{addr}})
	total, lost := 0, 0
	for w := range acked {
		for key, val := range acked[w] {
			total++
			it, err := verify.Get(key)
			if err != nil || string(it.Value) != val {
				lost++
				if lost <= 5 {
					t.Errorf("acked write lost: %s (want %q, got %q, err %v)", key, val, it.Value, err)
				}
			}
		}
	}
	if lost > 0 {
		t.Fatalf("%d of %d acknowledged writes lost across restart", lost, total)
	}
	if total == 0 {
		t.Fatal("no writes acknowledged; test proved nothing")
	}

	// Pool size converged: idle connections never exceed PoolSize.
	if idle := c.Stats().Idle; idle > 8 {
		t.Fatalf("idle pool %d exceeds PoolSize", idle)
	}

	// No goroutine leaks: closing the clients tears down reapers and leaves
	// us at (or below) the pre-client baseline.
	c.Close()
	verify.Close()
	waitFor(t, "goroutines to drain", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= base
	})
}

// TestPoolHealthCheckRecovers kills every pooled connection by bouncing the
// server and checks the acquire-time liveness probe discards the corpses
// instead of handing them out.
func TestPoolHealthCheckRecovers(t *testing.T) {
	engine := newCache(t)
	addr, stop := startServerOn(t, "127.0.0.1:0", engine, server.Options{})
	c := newClient(t, client.Config{
		Addrs:            []string{addr},
		HealthCheckAfter: time.Nanosecond,
	})
	if err := c.Set("k", 0, 0, []byte("v")); err != nil {
		t.Fatal(err)
	}
	stop()
	_, _ = startServerOn(t, addr, engine, server.Options{})
	// The pooled connection is dead; the probe must detect it and dial
	// fresh, making the op succeed without surfacing the stale socket.
	waitFor(t, "op to succeed after bounce", func() bool {
		_, err := c.Get("k")
		return err == nil
	})
	if c.Stats().HealthFails == 0 {
		t.Fatal("no health-check failures recorded; dead conns were not probed out")
	}
}

// TestPoolIdleReaping checks a burst's worth of pooled connections decays
// back to zero once traffic stops.
func TestPoolIdleReaping(t *testing.T) {
	addr := startServer(t, server.Options{})
	c := newClient(t, client.Config{
		Addrs:       []string{addr},
		PoolSize:    8,
		IdleTimeout: 50 * time.Millisecond,
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := c.Set(fmt.Sprintf("burst%d", i), 0, 0, []byte("v")); err != nil {
				t.Errorf("set: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if idle := c.Stats().Idle; idle == 0 {
		t.Fatal("burst left no idle connections; pool is not pooling")
	}
	waitFor(t, "idle pool to be reaped", func() bool {
		s := c.Stats()
		return s.Idle == 0 && s.Reaps > 0
	})
}

// shedEvery starts a fake server that answers storage commands with STORED
// except every nth op, which it sheds with SERVER_ERROR busy (shed) — the
// overload controller's mid-pipeline refusal, scripted deterministically.
func shedEvery(t *testing.T, n int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				p := proto.NewParser(bufio.NewReaderSize(nc, 1<<14))
				ops := 0
				var out []byte
				for {
					cmd, err := p.ReadCommand()
					if err != nil {
						return
					}
					ops++
					out = out[:0]
					switch cmd.Name {
					case "set":
						if ops%n == 0 {
							out = proto.AppendShed(out)
						} else {
							out = proto.AppendLine(out, "STORED")
						}
					case "get":
						out = proto.AppendEnd(out)
					default:
						out = proto.AppendLine(out, "ERROR")
					}
					if _, err := nc.Write(out); err != nil {
						return
					}
				}
			}(nc)
		}
	}()
	return ln.Addr().String()
}

// TestPipelineShedMidBatch scripts an overloaded server that sheds every
// third write and checks the pipeline keeps its framing: shed slots carry
// ErrServerBusy, every other slot completes, and the connection survives
// for the next batch.
func TestPipelineShedMidBatch(t *testing.T) {
	addr := shedEvery(t, 3)
	c := newClient(t, client.Config{Addrs: []string{addr}})
	p := c.Pipeline()
	for round := 0; round < 3; round++ {
		const n = 9
		for i := 0; i < n; i++ {
			p.Set(fmt.Sprintf("k%d", i), 0, 0, []byte("v"))
		}
		results, err := p.Exec()
		if err != nil {
			t.Fatal(err)
		}
		shed := 0
		for i, r := range results {
			if errors.Is(r.Err, client.ErrServerBusy) {
				shed++
			} else if r.Err != nil {
				t.Fatalf("round %d slot %d: unexpected %v", round, i, r.Err)
			}
		}
		if shed != n/3 {
			t.Fatalf("round %d: %d shed slots, want %d", round, shed, n/3)
		}
	}
	// One connection served all three batches: sheds are responses, not
	// transport failures.
	if dials := c.Stats().Dials; dials != 1 {
		t.Fatalf("sheds forced %d dials, want 1", dials)
	}
}

// TestHedgedGetWinsOnStall stalls the first connection's reads and checks
// an expensive key's hedged duplicate answers on a second connection well
// before the stalled primary would.
func TestHedgedGetWinsOnStall(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var conns atomic.Int32
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			slow := conns.Add(1) == 1
			go func(nc net.Conn, slow bool) {
				defer nc.Close()
				br := bufio.NewReader(nc)
				for {
					line, err := br.ReadString('\n')
					if err != nil {
						return
					}
					if strings.HasPrefix(line, "get ") {
						if slow {
							time.Sleep(500 * time.Millisecond)
						}
						if _, err := nc.Write([]byte("VALUE k 0 1\r\nv\r\nEND\r\n")); err != nil {
							return
						}
					}
				}
			}(nc, slow)
		}
	}()

	cfg := client.Config{
		Addrs:     []string{ln.Addr().String()},
		PenaltyOf: func(key string) float64 { return 2.0 }, // (1s,5s] subclass
		Hedge:     cluster.DefaultHedgePolicy(),            // 3ms hedge there
	}
	c := newClient(t, cfg)
	start := time.Now()
	it, err := c.Get("k")
	if err != nil || string(it.Value) != "v" {
		t.Fatalf("hedged get: %q, %v", it.Value, err)
	}
	if elapsed := time.Since(start); elapsed > 400*time.Millisecond {
		t.Fatalf("hedge did not rescue the stalled primary (took %v)", elapsed)
	}
	s := c.Stats()
	if s.Hedges == 0 || s.HedgeWins == 0 {
		t.Fatalf("hedge counters: %+v", s)
	}
}
