//go:build memcached

package client_test

// The same conformance matrix, pointed at a real memcached. Build with
// -tags memcached and set MEMCACHED_ADDR (e.g. 127.0.0.1:11211); the keys
// are namespaced per run so a shared daemon stays usable. This is the
// interoperability proof: everything the client promises against
// pama-server it must also deliver against the protocol's reference
// implementation.

import (
	"fmt"
	"os"
	"testing"
	"time"

	"pamakv/internal/client"
)

func liveMemcached(t *testing.T) *client.Client {
	t.Helper()
	addr := os.Getenv("MEMCACHED_ADDR")
	if addr == "" {
		t.Skip("MEMCACHED_ADDR not set")
	}
	c := newClient(t, client.Config{Addrs: []string{addr}})
	if _, err := c.Version(); err != nil {
		t.Fatalf("memcached at %s unreachable: %v", addr, err)
	}
	return c
}

func runPrefix() string { return fmt.Sprintf("pamakv%d.", time.Now().UnixNano()) }

func TestMemcachedConformanceDirect(t *testing.T) {
	runMatrixDirect(t, liveMemcached(t), runPrefix())
}

func TestMemcachedConformancePipelined(t *testing.T) {
	runMatrixPipelined(t, liveMemcached(t), runPrefix())
}
