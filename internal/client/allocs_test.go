package client_test

import (
	"fmt"
	"testing"

	"pamakv/internal/client"
	"pamakv/internal/server"
)

// TestPipelinedGetHitAllocs is the client tentpole's alloc gate: a warm
// pipelined batch of GET hits over live TCP must cost at most one heap
// allocation per operation — and since the in-process server's own pipelined
// GET path is separately gated near zero, the budget is effectively the
// client's. The pipeline arena, result slices, op queue, and the pooled
// connection's render buffer all reuse their backing arrays once warm.
func TestPipelinedGetHitAllocs(t *testing.T) {
	const depth = 64
	addr := startServer(t, server.Options{})
	c := newClient(t, client.Config{Addrs: []string{addr}, PoolSize: 1})

	keys := make([]string, depth)
	body := make([]byte, 100)
	for i := range body {
		body[i] = 'v'
	}
	for i := range keys {
		keys[i] = fmt.Sprintf("key%03d", i)
		if err := c.Set(keys[i], 0, 0, body); err != nil {
			t.Fatal(err)
		}
	}

	p := c.Pipeline()
	batch := func() {
		for _, k := range keys {
			p.Get(k)
		}
		results, err := p.Exec()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range results {
			if r.Err != nil || len(r.Value) != len(body) {
				t.Fatalf("get: %d bytes, %v", len(r.Value), r.Err)
			}
		}
	}
	// Warm the pool, the pipeline's slices, and the connection's buffers.
	for i := 0; i < 3; i++ {
		batch()
	}
	allocs := testing.AllocsPerRun(100, batch)
	if perOp := allocs / depth; perOp > 1 {
		t.Fatalf("pipelined GET hit allocates %.2f objects per op end to end, want <= 1", perOp)
	}
}
