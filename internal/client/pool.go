package client

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"pamakv/internal/proto"
)

// maxRetainedReq caps the per-connection request render buffer kept across
// batches; a one-off giant pipeline must not pin its buffer on an idle
// connection forever.
const maxRetainedReq = 1 << 18

// conn is one pooled connection with its buffered endpoints, response
// reader, and request render scratch. A conn is owned by exactly one
// goroutine between pool.get and pool.put.
type conn struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer
	rr *proto.RespReader

	// req is the reusable request render buffer for pipelined batches.
	req []byte
	// idleSince is when the conn was last returned to the pool.
	idleSince time.Time
	// probe is the scratch byte for liveness probing.
	probe [1]byte
}

// healthy reports whether an idle connection is still usable: no bytes may
// be pending (a response we never asked for means the stream is
// desynchronized) and a non-blocking read must see an empty-but-open socket.
// The probe is a raw syscall read, not a deadline-bounded net.Conn read: an
// expired deadline fails the read before the poller ever looks at the
// socket, which would report a connection with a queued FIN as alive.
func (cn *conn) healthy() bool {
	if cn.br.Buffered() > 0 {
		return false
	}
	sc, ok := cn.nc.(syscall.Conn)
	if !ok {
		return true
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return false
	}
	alive := false
	rerr := rc.Read(func(fd uintptr) bool {
		n, err := syscall.Read(int(fd), cn.probe[:])
		// EAGAIN means open with nothing pending — the one healthy case.
		// Readable bytes mean a response nobody asked for (desynchronized
		// stream); n == 0 with a nil error means EOF; anything else is a
		// socket error.
		alive = n < 0 && (errors.Is(err, syscall.EAGAIN) || errors.Is(err, syscall.EWOULDBLOCK))
		return true // never block: one shot decides
	})
	return rerr == nil && alive
}

// pool is a LIFO idle-connection pool for one server address. LIFO keeps the
// working set hot: under steady load the same few connections cycle and the
// rest age toward the idle reaper.
type pool struct {
	addr string
	cfg  *Config

	mu     sync.Mutex
	idle   []*conn // index 0 is the oldest, the end is the LIFO top
	closed bool

	stop chan struct{}
	wg   sync.WaitGroup

	dials       atomic.Uint64
	reaps       atomic.Uint64
	healthFails atomic.Uint64
}

// newPool builds the pool and starts its idle reaper (unless reaping is
// disabled by IdleTimeout < 0).
func newPool(addr string, cfg *Config) *pool {
	p := &pool{addr: addr, cfg: cfg, stop: make(chan struct{})}
	if cfg.IdleTimeout > 0 {
		p.wg.Add(1)
		go p.reaper()
	}
	return p
}

// get returns a healthy pooled connection or dials a new one. Stale idle
// connections (older than HealthCheckAfter) are probed first; dead ones are
// discarded and the next candidate tried, so one acquire never hands out a
// connection that is already known broken.
func (p *pool) get() (*conn, error) {
	now := time.Now()
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, ErrClientClosed
		}
		n := len(p.idle)
		if n == 0 {
			p.mu.Unlock()
			break
		}
		cn := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		if now.Sub(cn.idleSince) < p.cfg.HealthCheckAfter || cn.healthy() {
			return cn, nil
		}
		p.healthFails.Add(1)
		cn.nc.Close()
	}
	nc, err := net.DialTimeout("tcp", p.addr, p.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	p.dials.Add(1)
	br := bufio.NewReaderSize(nc, 1<<14)
	return &conn{
		nc: nc,
		br: br,
		bw: bufio.NewWriterSize(nc, 1<<14),
		rr: proto.NewRespReader(br),
	}, nil
}

// put returns a connection to the pool, closing it when the pool is full or
// closed. Only connections with a clean stream (no half-read response) may
// be returned.
func (p *pool) put(cn *conn) {
	cn.idleSince = time.Now()
	if cap(cn.req) > maxRetainedReq {
		cn.req = nil
	}
	p.mu.Lock()
	if p.closed || len(p.idle) >= p.cfg.PoolSize {
		p.mu.Unlock()
		cn.nc.Close()
		return
	}
	p.idle = append(p.idle, cn)
	p.mu.Unlock()
}

// reaper closes idle connections older than IdleTimeout. LIFO ordering means
// the oldest connections collect at the front of the slice, so under partial
// load the pool converges down to its working set instead of pinning
// PoolSize sockets forever.
func (p *pool) reaper() {
	defer p.wg.Done()
	period := p.cfg.IdleTimeout / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			cut := time.Now().Add(-p.cfg.IdleTimeout)
			var dead []*conn
			p.mu.Lock()
			keep := p.idle[:0]
			for _, cn := range p.idle {
				if cn.idleSince.Before(cut) {
					dead = append(dead, cn)
				} else {
					keep = append(keep, cn)
				}
			}
			p.idle = keep
			p.mu.Unlock()
			for _, cn := range dead {
				cn.nc.Close()
				p.reaps.Add(1)
			}
		}
	}
}

// idleCount returns the current idle-connection count.
func (p *pool) idleCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle)
}

// close shuts the pool: idle connections are closed, the reaper exits, and
// subsequent gets fail with ErrClientClosed. In-flight connections are
// closed by their owners on put.
func (p *pool) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	close(p.stop)
	for _, cn := range idle {
		cn.nc.Close()
	}
	p.wg.Wait()
}
